// Package repro reproduces "Slim NoC: A Low-Diameter On-Chip Network
// Topology for High Energy Efficiency and Scalability" (ASPLOS 2018).
//
// The implementation lives under internal/: the Slim NoC construction and
// layout models in internal/core, the finite fields in internal/gf, the
// baseline topologies in internal/topo, the cycle-accurate simulator in
// internal/sim, the DSENT-substitute power models in internal/power, and
// the per-figure experiment harness in internal/exp. The root package holds
// the benchmark harness (bench_test.go) that regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded results.
package repro
