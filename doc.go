// Package repro reproduces "Slim NoC: A Low-Diameter On-Chip Network
// Topology for High Energy Efficiency and Scalability" (ASPLOS 2018).
//
// The public API is the slimnoc package: declarative, JSON-round-trippable
// run specs and sweep campaigns, string-keyed registries for topologies /
// layouts / routing algorithms / traffic patterns / buffering schemes, a
// context-aware Runner with streaming progress, and a parallel Campaign
// engine that executes whole evaluation grids with deterministic per-point
// seeds. Campaigns are restartable: slimnoc/store is a content-addressed
// JSONL result store (points keyed by the hash of their expanded spec plus
// the engine version), and a Campaign with WithStore skips stored points
// and durably appends fresh ones, so an interrupted sweep resumes
// byte-identically. Start there (and with README.md, which maps every
// registry name to its paper section).
//
// The implementation lives under internal/: the Slim NoC construction and
// layout models in internal/core, the finite fields in internal/gf, the
// baseline topologies in internal/topo, the cycle-accurate simulator in
// internal/sim (an active-set engine whose steady-state loop is
// allocation-free), the static-route compiler in internal/routing (whose
// RouteTable interns per-pair paths that packets borrow and campaigns
// share), the DSENT-substitute power models in internal/power, and the
// per-figure experiment harness in internal/exp — which also carries the
// reproduction manifest mapping every figure to its declarative sweeps
// (consumed by cmd/snrepro, the resumable paper-reproduction driver; see
// docs/REPRODUCING.md). The root package holds the benchmark harness
// (bench_test.go) that regenerates every table and figure of the paper's
// evaluation plus the engine/campaign performance benchmarks recorded in
// BENCH_sim.json; run `go run ./cmd/snexp -list` for the experiment index
// and `go run ./cmd/snrepro -list` for the reproducible-figure manifest.
package repro
