// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark executes the corresponding experiment from
// internal/exp in quick mode and reports a headline metric so regressions in
// the reproduced trends are visible from `go test -bench`. Run
// `go run ./cmd/snexp -exp <id> -full` for the full-methodology tables.
package repro_test

import (
	"context"
	"encoding/json"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/exp"
	"repro/internal/stats"
	"repro/slimnoc"
)

func opts() exp.Options { return exp.Options{Quick: true, Seed: 1} }

// runExp executes one registered experiment and returns its tables.
func runExp(b *testing.B, id string) []*stats.Table {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables []*stats.Table
	for i := 0; i < b.N; i++ {
		tables = e.Run(context.Background(), opts())
	}
	if len(tables) == 0 {
		b.Fatalf("%s produced no tables", id)
	}
	return tables
}

// cell parses a numeric table cell; saturated points return +inf.
func cell(b *testing.B, t *stats.Table, row, col int) float64 {
	b.Helper()
	s := t.Rows[row][col]
	if s == "sat" {
		return 1e18
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell [%d][%d] = %q not numeric", row, col, s)
	}
	return v
}

func BenchmarkFig01aAdversarialLatency(b *testing.B) {
	t := runExp(b, "fig1a")[0]
	// Columns: load, cm9, t2d9, fbf9, sn_gr_1296. Report SN's low-load
	// latency and its ratio to the torus (paper: ~64% lower than torus).
	sn := cell(b, t, 0, 4)
	t2d := cell(b, t, 0, 2)
	b.ReportMetric(sn, "sn-latency-cycles")
	b.ReportMetric(sn/t2d, "sn-vs-torus-ratio")
	if sn >= t2d {
		b.Errorf("SN low-load ADV1 latency %.1f should beat torus %.1f", sn, t2d)
	}
}

func BenchmarkFig01bcThroughputPerPower(b *testing.B) {
	t := runExp(b, "fig1bc")[0]
	// Rows: sn, fbf9, t2d9, cm9. Paper: SN highest at both nodes.
	sn45 := cell(b, t, 0, 1)
	fbf45 := cell(b, t, 1, 1)
	t2d45 := cell(b, t, 2, 1)
	b.ReportMetric(sn45/fbf45, "sn-vs-fbf-45nm")
	b.ReportMetric(sn45/t2d45, "sn-vs-t2d-45nm")
	if sn45 <= t2d45 {
		b.Errorf("SN thr/power %.0f should beat torus %.0f (paper: >150%%)", sn45, t2d45)
	}
}

func BenchmarkFig03SlimFlyDragonflyOnChip(b *testing.B) {
	tables := runExp(b, "fig3")
	// fig3b rows: FBF, PFBF, T2D, CM, SF, DF. SF straight on-chip costs
	// more than PFBF (the paper's motivating observation).
	area := tables[1]
	sf := cell(b, area, 4, 4)
	pfbf := cell(b, area, 1, 4)
	b.ReportMetric(sf/pfbf, "sf-vs-pfbf-area")
	if sf <= pfbf {
		b.Error("straight SF should cost more area than PFBF")
	}
}

func BenchmarkTable2Configurations(b *testing.B) {
	t := runExp(b, "tab2")[0]
	b.ReportMetric(float64(len(t.Rows)), "config-rows")
	if len(t.Rows) != 24 {
		b.Errorf("Table 2 has %d rows, want 24", len(t.Rows))
	}
}

func BenchmarkTable3FieldTables(b *testing.B) {
	tables := runExp(b, "tab3")
	if len(tables) != 6 {
		b.Fatalf("want 6 operation tables, got %d", len(tables))
	}
}

func BenchmarkTable4Configurations(b *testing.B) {
	t := runExp(b, "tab4")[0]
	if len(t.Rows) != 18 {
		b.Errorf("Table 4 rows = %d, want 18", len(t.Rows))
	}
}

func BenchmarkFig05LayoutCostSweep(b *testing.B) {
	tables := runExp(b, "fig5")
	// fig5a: last row, columns rand/basic/gr/subgr (2..5): subgroup layout
	// must cut M versus rand.
	mt := tables[0]
	last := len(mt.Rows) - 1
	rand := cell(b, mt, last, 2)
	subgr := cell(b, mt, last, 5)
	b.ReportMetric(1-subgr/rand, "M-reduction-vs-rand")
	if subgr >= rand {
		b.Error("sn_subgr should reduce M vs sn_rand (paper: ~25%)")
	}
}

func BenchmarkFig06DistanceDistributions(b *testing.B) {
	tables := runExp(b, "fig6")
	if len(tables) != 3 {
		b.Fatalf("want 3 size tables, got %d", len(tables))
	}
	// Short links dominate: first bin probability far above the longest.
	t200 := tables[0]
	b.ReportMetric(cell(b, t200, 0, 2), "subgr-shortlink-prob")
}

func BenchmarkFig10LayoutLatency(b *testing.B) {
	tables := runExp(b, "fig10a")
	// RND table, low load: subgr (col 4) beats basic (col 1).
	rnd := tables[1]
	basic := cell(b, rnd, 0, 1)
	subgr := cell(b, rnd, 0, 4)
	b.ReportMetric(subgr/basic, "subgr-vs-basic")
	if subgr >= basic {
		b.Error("sn_subgr should have lower latency than sn_basic (paper: ~5%)")
	}
}

func BenchmarkFig11BufferSchemes(b *testing.B) {
	tables := runExp(b, "fig11")
	// N=200 no-SMART table at low load: EB-Small (col 1) close to others;
	// at the highest load small buffers hurt. Report CBR-6 vs EB-Large.
	t := tables[0]
	last := len(t.Rows) - 1
	ebLarge := cell(b, t, last, 3)
	cbr6 := cell(b, t, last, 6)
	b.ReportMetric(cbr6/ebLarge, "cbr6-vs-eblarge-highload")
}

func BenchmarkFig12SmallSmart(b *testing.B) {
	tables := runExp(b, "fig12")
	// RND table (index 2), low load: SN (col 5) beats cm3 (col 1) and t2d3
	// (col 2) — the paper's 71%/86% ratios.
	rnd := tables[2]
	cm := cell(b, rnd, 0, 1)
	t2d := cell(b, rnd, 0, 2)
	sn := cell(b, rnd, 0, 5)
	b.ReportMetric(sn/cm, "sn-vs-cm")
	b.ReportMetric(sn/t2d, "sn-vs-t2d")
	if sn >= cm || sn >= t2d {
		b.Error("SN should beat CM and T2D at low load")
	}
}

func BenchmarkFig13LargeSmart(b *testing.B) {
	tables := runExp(b, "fig13")
	rnd := tables[2]
	cm := cell(b, rnd, 0, 1)
	sn := cell(b, rnd, 0, 4)
	b.ReportMetric(sn/cm, "sn-vs-cm9")
	if sn >= cm {
		b.Error("SN should beat cm9 at low load (paper: 54%)")
	}
}

func BenchmarkFig14SmallNoSmart(b *testing.B) {
	tables := runExp(b, "fig14")
	if len(tables) != 4 {
		b.Fatalf("want 4 pattern tables, got %d", len(tables))
	}
	rnd := tables[2]
	cm := cell(b, rnd, 0, 1)
	sn := cell(b, rnd, 0, 4)
	b.ReportMetric(sn/cm, "sn-vs-cm-nosmart")
}

func BenchmarkFig15AreaPowerNoSmart(b *testing.B) {
	tables := runExp(b, "fig15")
	// fig15b rows: fbf4, pfbf4, sn, t2d4, cm4; total in last column.
	nets := tables[1]
	fbf := cell(b, nets, 0, 5)
	sn := cell(b, nets, 2, 5)
	b.ReportMetric(1-sn/fbf, "area-reduction-vs-fbf")
	if sn >= fbf {
		b.Error("SN area should be below FBF (paper: 34%)")
	}
}

func BenchmarkFig16AreaPowerSmallSmart(b *testing.B) {
	tables := runExp(b, "fig16")
	if len(tables) != 6 {
		b.Fatalf("want 6 tables (area/static/dynamic x 2 nodes), got %d", len(tables))
	}
	// 45nm static (index 1): sn row 3 vs fbf3 row 0, total col 3.
	st := tables[1]
	fbf := cell(b, st, 0, 3)
	sn := cell(b, st, 3, 3)
	b.ReportMetric(1-sn/fbf, "static-reduction-vs-fbf")
	if sn >= fbf {
		b.Error("SN static power/node should be below FBF (paper: 46%)")
	}
}

func BenchmarkFig17AreaPowerLargeSmart(b *testing.B) {
	tables := runExp(b, "fig17")
	st := tables[1] // 45nm static
	fbf8 := cell(b, st, 0, 3)
	sn := cell(b, st, 3, 3)
	b.ReportMetric(1-sn/fbf8, "static-reduction-vs-fbf8")
	if sn >= fbf8 {
		b.Error("SN-L static power should be below fbf8 (paper: 41-44%)")
	}
}

func BenchmarkTable5ThroughputPerPower(b *testing.B) {
	t := runExp(b, "tab5")[0]
	// Every row is SN's gain over a baseline; the low-radix gains must be
	// positive and large.
	positive := 0
	for _, row := range t.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			b.Fatal(err)
		}
		if v > 0 {
			positive++
		}
	}
	b.ReportMetric(float64(positive)/float64(len(t.Rows)), "positive-gain-fraction")
}

func BenchmarkFig18EnergyDelay(b *testing.B) {
	t := runExp(b, "fig18")[0]
	// Last row is the geomean; columns: bench, fbf3, pfbf3, cm3, sn.
	last := len(t.Rows) - 1
	sn := cell(b, t, last, 4)
	b.ReportMetric(sn, "sn-edp-vs-fbf")
	if sn >= 1 {
		b.Errorf("SN normalised EDP %.2f should be < 1 vs FBF (paper: ~0.45)", sn)
	}
}

func BenchmarkFig19SmallScale(b *testing.B) {
	tables := runExp(b, "fig19")
	// Latency table first: fbf54, pfbf54, sn, t2d54; SN beats T2D at low
	// load (paper: ~15%).
	lt := tables[0]
	sn := cell(b, lt, 0, 3)
	t2d := cell(b, lt, 0, 4)
	b.ReportMetric(sn/t2d, "sn-vs-t2d-54")
	if sn >= t2d {
		b.Error("SN should beat T2D at N=54")
	}
}

func BenchmarkTable6SmartGain(b *testing.B) {
	t := runExp(b, "tab6")[0]
	// Rows: fbf3, pfbf3, cm3, sn. CM gains ~0 (single-cycle wires); SN
	// gains the most (paper: ~10-13%).
	nCols := len(t.Header)
	cmGain := cell(b, t, 2, 1)
	snGain := cell(b, t, 3, 1)
	b.ReportMetric(snGain, "sn-smart-gain-pct")
	b.ReportMetric(cmGain, "cm-smart-gain-pct")
	_ = nCols
	if snGain <= cmGain {
		b.Error("SMART should help SN more than the single-cycle-wire CM")
	}
}

func BenchmarkFig20AdaptiveRouting(b *testing.B) {
	tables := runExp(b, "fig20")
	if len(tables) != 2 {
		b.Fatalf("want RND and ASYM tables, got %d", len(tables))
	}
	// RND at low load: SN_MIN (col 1) should be at or below FBF_MIN (col 4)
	// — the paper's UGAL study shows SN MIN outperforming FBF MIN.
	rnd := tables[0]
	snMin := cell(b, rnd, 0, 1)
	fbfMin := cell(b, rnd, 0, 4)
	b.ReportMetric(snMin/fbfMin, "snmin-vs-fbfmin")
}

func BenchmarkSec55FoldedClos(b *testing.B) {
	t := runExp(b, "sec55")[0]
	gain := cell(b, t, 0, 3)
	b.ReportMetric(gain, "sn-smaller-than-clos-pct")
	if gain <= 0 {
		b.Error("SN should use less area than the folded Clos (paper: ~24-26%)")
	}
}

func BenchmarkSensNetworkSizes(b *testing.B) {
	t := runExp(b, "sens-sizes")[0]
	// Quick mode: N=1024 rows (sn, t2d, fbf). SN should beat the torus in
	// nanosecond latency.
	sn := cell(b, t, 0, 4)
	t2d := cell(b, t, 1, 4)
	b.ReportMetric(sn/t2d, "sn-vs-t2d-ns-1024")
	if sn >= t2d {
		b.Error("SN should beat the torus at N=1024 (§5.5: advantages consistent)")
	}
}

func BenchmarkSensConcentration(b *testing.B) {
	t := runExp(b, "sens-conc")[0]
	if len(t.Rows) == 0 {
		b.Fatal("empty concentration sweep")
	}
}

func BenchmarkSensCycleTime(b *testing.B) {
	runExp(b, "sens-cycle")
}

func BenchmarkResilience(b *testing.B) {
	t := runExp(b, "resil")[0]
	// SN at 10% failures: still connected, diameter <= 4.
	for _, row := range t.Rows {
		if row[0] == "10" && row[1] == "sn_subgr_200" {
			conn, _ := strconv.ParseFloat(row[2], 64)
			b.ReportMetric(conn, "sn-connectivity-10pct")
			if conn < 0.99 {
				b.Errorf("SN connectivity %.3f at 10%% link failures", conn)
			}
		}
	}
}

func BenchmarkAblCentralBufferSize(b *testing.B) {
	tables := runExp(b, "abl-cbsize")
	// SN-S table: small CBs should not lose to CB-100 at high load
	// (paper §5.2.1: large CBs hold more packets, raising latency).
	t := tables[0]
	lat6 := cell(b, t, 0, 1)
	lat100 := cell(b, t, len(t.Rows)-1, 1)
	b.ReportMetric(lat6/lat100, "cb6-vs-cb100-latency")
}

func BenchmarkAblVirtualChannels(b *testing.B) {
	t := runExp(b, "abl-vcs")[0]
	if len(t.Rows) != 3 {
		b.Fatal("want 3 VC rows")
	}
}

func BenchmarkAblSmartHopFactor(b *testing.B) {
	t := runExp(b, "abl-smarth")[0]
	h1 := cell(b, t, 0, 1)
	h9 := cell(b, t, 1, 1)
	b.ReportMetric(1-h9/h1, "smart-latency-reduction")
	if h9 >= h1 {
		b.Error("SMART (H=9) should reduce latency on long-wire layouts")
	}
}

// BenchmarkEngine measures raw single-point simulator throughput on
// fig12-style configurations: the SN-S network under uniform random traffic
// at low, mid and high load, with and without SMART. Low and mid load are
// where idle-scan waste dominated the pre-active-set engine; high and
// saturated load are where per-flit router work dominates, which the SoA
// state layout plus domain-parallel stepping attack (every run here uses
// WithEngineJobs(-1), all cores — results are byte-identical to serial, so
// the fixture stays comparable across machine shapes). These sub-benchmarks
// are the headline numbers for engine-core optimisations (tracked in
// BENCH_sim.json).
func BenchmarkEngine(b *testing.B) {
	for _, bc := range []struct {
		name  string
		rate  float64
		smart bool
	}{
		{"low-load", 0.008, true},
		{"mid-load", 0.06, true},
		{"high-load", 0.24, true},
		{"sat-load", 0.40, true},
		{"low-load-nosmart", 0.008, false},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			spec := slimnoc.RunSpec{
				Network: slimnoc.NetworkSpec{Preset: "sn_subgr_200"},
				Traffic: slimnoc.TrafficSpec{Pattern: "rnd", Rate: bc.rate},
				SMART:   bc.smart,
				Sim:     slimnoc.QuickSim(),
			}
			spec.Sim.Seed = 1
			// One untimed warmup run: page in the preset's network and
			// route table caches, warm the allocator and scheduler, and
			// let CPU frequency settle, so with -benchtime 1x -count=N
			// the recorded samples measure the engine rather than
			// first-run effects (mid-load spread was 0.33 without it).
			if _, err := slimnoc.Run(context.Background(), spec, slimnoc.WithEngineJobs(-1)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := slimnoc.Run(context.Background(), spec, slimnoc.WithEngineJobs(-1))
				if err != nil {
					b.Fatal(err)
				}
				if res.Metrics.Delivered == 0 {
					b.Fatal("nothing delivered")
				}
			}
		})
	}

	// The idle-drain pair is the event calendar's headline: near-zero load
	// followed by a long drain window that is almost entirely dead cycles,
	// run once through the calendar (the default) and once with
	// WithCycleStep forcing the classic loop. The ns/op ratio between the
	// two is the calendar speedup on idle-heavy runs; both stay serial so
	// the ratio isolates skipping from domain parallelism, and both must
	// deliver identical traffic.
	idleSpec := slimnoc.RunSpec{
		Network: slimnoc.NetworkSpec{Preset: "sn_subgr_200"},
		Traffic: slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.002},
		SMART:   true,
		Sim:     slimnoc.SimSpec{WarmupCycles: 200, MeasureCycles: 800, DrainCycles: 500000, Seed: 1},
	}
	for _, bc := range []struct {
		name string
		opts []slimnoc.Option
	}{
		{"idle-drain", nil},
		{"idle-drain-cyclestep", []slimnoc.Option{slimnoc.WithCycleStep()}},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			// Untimed warmup, as above: the first run pays one-off cache
			// population that would otherwise inflate sample spread.
			if _, err := slimnoc.Run(context.Background(), idleSpec, bc.opts...); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := slimnoc.Run(context.Background(), idleSpec, bc.opts...)
				if err != nil {
					b.Fatal(err)
				}
				if res.Metrics.Delivered == 0 {
					b.Fatal("nothing delivered")
				}
			}
		})
	}
}

// campaignBenchPoints expands a quick fig12-style sweep: the small-network
// SMART comparison at three loads under uniform random traffic.
func campaignBenchPoints(b *testing.B) []slimnoc.RunSpec {
	b.Helper()
	sweep := slimnoc.SweepSpec{
		Name: "bench-fig12",
		Base: slimnoc.RunSpec{
			SMART: true,
			Sim:   slimnoc.QuickSim(),
		},
		Axes: slimnoc.SweepAxes{
			Presets:  []string{"cm3", "t2d3", "sn_subgr_200", "fbf3"},
			Patterns: []string{"rnd"},
			Loads:    []float64{0.008, 0.06, 0.24},
		},
	}
	sweep.Base.Sim.Seed = 1
	points, err := sweep.Points()
	if err != nil {
		b.Fatal(err)
	}
	return points
}

// runCampaignBench executes the sweep with the given worker count and
// returns the per-point metrics serialized for comparison.
func runCampaignBench(b *testing.B, points []slimnoc.RunSpec, jobs int) []string {
	b.Helper()
	results, err := slimnoc.RunCampaign(context.Background(), points, slimnoc.WithJobs(jobs))
	if err != nil {
		b.Fatal(err)
	}
	out := make([]string, len(results))
	for i, p := range results {
		if p.Err != nil {
			b.Fatalf("point %d (%s): %v", i, p.Spec.Name, p.Err)
		}
		m, err := json.Marshal(p.Result.Metrics)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = string(m)
	}
	return out
}

// BenchmarkCampaign compares serial against all-cores execution of a quick
// fig12-style sweep through the Campaign engine, and asserts the contract
// behind the parallelism: per-point metrics are byte-identical at any job
// count (seeds are fixed at sweep expansion, never derived from execution
// order). Compare the two sub-benchmarks' ns/op for the campaign speedup.
func BenchmarkCampaign(b *testing.B) {
	points := campaignBenchPoints(b)
	var serial, parallel []string
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serial = runCampaignBench(b, points, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportMetric(float64(runtime.NumCPU()), "jobs")
		for i := 0; i < b.N; i++ {
			parallel = runCampaignBench(b, points, runtime.NumCPU())
		}
	})
	// Filtering to one sub-benchmark (-bench BenchmarkCampaign/serial)
	// leaves the other slice empty; only compare when both actually ran.
	if len(serial) == 0 || len(parallel) == 0 {
		return
	}
	if len(serial) != len(parallel) {
		b.Fatalf("serial ran %d points, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			b.Errorf("point %d: serial metrics %s != parallel %s", i, serial[i], parallel[i])
		}
	}
}
