// Trace-driven workloads: replays the synthetic PARSEC/SPLASH traces (the
// paper's §5.1 "Real Traffic" substitute) on SN-S under different layouts —
// the Fig. 10b experiment — and demonstrates trace record/replay round
// trips. Benchmarks are selected declaratively (traffic pattern "trace");
// the recorded-event replay plugs in through the WithSource escape hatch.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/internal/trace"
	"repro/slimnoc"
)

func main() {
	layouts := []string{"sn_basic_200", "sn_gr_200", "sn_subgr_200"}
	benches := []string{"barnes", "fft", "radix", "water-s"}

	fmt.Println("PARSEC/SPLASH latency [cycles] per SN layout (cf. Fig. 10b):")
	fmt.Printf("%-10s", "bench")
	for _, l := range layouts {
		fmt.Printf("  %-14s", l)
	}
	fmt.Println()
	for _, bname := range benches {
		fmt.Printf("%-10s", bname)
		for _, lname := range layouts {
			spec := slimnoc.RunSpec{
				Network: slimnoc.NetworkSpec{Preset: lname},
				Traffic: slimnoc.TrafficSpec{Pattern: "trace", Trace: bname},
				Sim:     slimnoc.QuickSim(),
			}
			spec.Sim.Seed = 2
			res, err := slimnoc.Run(context.Background(), spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14.1f", res.Metrics.AvgLatencyCycles)
		}
		fmt.Println()
	}

	// Record/replay round trip: store a trace, reload it, and drive the
	// simulator from the recorded events via WithSource.
	b := trace.BenchmarkByName("fft")
	src := trace.NewSource(*b, 192)
	events := trace.Record(src, 5000, 42)
	var buf bytes.Buffer
	if err := trace.Write(&buf, events); err != nil {
		log.Fatal(err)
	}
	stored := buf.Len()
	loaded, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d fft events (%d bytes); replaying on sn_subgr_200...\n",
		len(loaded), stored)
	spec := slimnoc.RunSpec{
		Network: slimnoc.NetworkSpec{Preset: "sn_subgr_200"},
		Sim:     slimnoc.QuickSim(),
	}
	spec.Sim.Seed = 2
	res, err := slimnoc.Run(context.Background(), spec,
		slimnoc.WithSource(&trace.Replay{Events: loaded, Loop: true}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: latency %.1f cycles, throughput %.4f flits/node/cycle\n",
		res.Metrics.AvgLatencyCycles, res.Metrics.Throughput)
}
