// Trace-driven workloads: replays the synthetic PARSEC/SPLASH traces (the
// paper's §5.1 "Real Traffic" substitute) on SN-S under different layouts —
// the Fig. 10b experiment — and demonstrates trace record/replay round
// trips.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/trace"
)

func main() {
	layouts := []string{"sn_basic_200", "sn_gr_200", "sn_subgr_200"}
	benches := []string{"barnes", "fft", "radix", "water-s"}
	opts := exp.Options{Quick: true, Seed: 1}

	fmt.Println("PARSEC/SPLASH latency [cycles] per SN layout (cf. Fig. 10b):")
	fmt.Printf("%-10s", "bench")
	for _, l := range layouts {
		fmt.Printf("  %-14s", l)
	}
	fmt.Println()
	for _, bname := range benches {
		b := trace.BenchmarkByName(bname)
		if b == nil {
			log.Fatalf("unknown benchmark %s", bname)
		}
		fmt.Printf("%-10s", bname)
		for _, lname := range layouts {
			spec, err := exp.BuildNet(lname)
			if err != nil {
				log.Fatal(err)
			}
			src := trace.NewSource(*b, spec.Net.N())
			res, err := exp.Run(exp.RunSpec{Spec: spec, Source: src, Opts: opts})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14.1f", res.AvgLatency)
		}
		fmt.Println()
	}

	// Record/replay round trip: store a trace, reload it, and drive the
	// simulator from the recorded events.
	b := trace.BenchmarkByName("fft")
	src := trace.NewSource(*b, 192)
	events := trace.Record(src, 5000, 42)
	var buf bytes.Buffer
	if err := trace.Write(&buf, events); err != nil {
		log.Fatal(err)
	}
	stored := buf.Len()
	loaded, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d fft events (%d bytes); replaying on sn_subgr_200...\n",
		len(loaded), stored)
	spec, err := exp.BuildNet("sn_subgr_200")
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(exp.RunSpec{
		Spec:   spec,
		Source: &trace.Replay{Events: loaded, Loop: true},
		Opts:   opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: latency %.1f cycles, throughput %.4f flits/node/cycle\n",
		res.AvgLatency, res.Throughput)
}
