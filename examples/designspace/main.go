// Design-space exploration: walks Table 2 to pick a Slim NoC for a target
// core count, compares all registered layouts with the §3.2 cost models,
// verifies the Eq. 3 wiring constraints, budgets the chip at 22 nm, and
// validates the chosen design with a short simulation through the slimnoc
// facade — the §3.4 workflow a chip architect would follow.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/power"
	"repro/slimnoc"
)

func main() {
	const targetCores = 1024

	// 1. Enumerate feasible configurations (Table 2) and pick one whose N
	//    matches the target.
	var pick *core.ConfigRow
	for _, r := range core.EnumerateConfigs(1300) {
		if r.N == targetCores {
			r := r
			pick = &r
			break
		}
	}
	if pick == nil {
		log.Fatalf("no Slim NoC configuration with %d cores", targetCores)
	}
	fmt.Printf("target %d cores -> q=%d (k'=%d, p=%d, %d routers, power-of-two N: %v)\n",
		targetCores, pick.Q, pick.KPrime, pick.P, pick.Nr, pick.PowerOfTwoN)

	build := func(layout string) *slimnoc.Network {
		net, _, err := slimnoc.BuildNetwork(slimnoc.NetworkSpec{
			Topology: "sn", Q: pick.Q, Conc: pick.P, Layout: layout,
		})
		if err != nil {
			log.Fatal(err)
		}
		return net
	}

	// 2. Compare layouts with the cost model (§3.2.3).
	model := core.DefaultBufferModel()
	fmt.Println("\nlayout comparison (no SMART):")
	fmt.Printf("  %-10s %8s %8s %12s %8s\n", "layout", "die", "M", "Δeb [flits]", "max W")
	best := ""
	bestM := -1.0
	for _, l := range slimnoc.Layouts() {
		net := build(l)
		x, y := net.GridDims()
		m := net.AvgWireLength()
		fmt.Printf("  %-10s %8s %8.2f %12d %8d\n",
			"sn_"+l, fmt.Sprintf("%dx%d", x, y), m,
			model.TotalEdgeBuffers(net), core.MaxWireCrossing(net))
		if bestM < 0 || m < bestM {
			best, bestM = l, m
		}
	}
	fmt.Printf("  -> choosing sn_%s (lowest average wire length)\n", best)

	// 3. Verify manufacturability (Eq. 3) at every technology node.
	net := build(best)
	fmt.Println("\nwiring constraints:")
	for _, wc := range core.WiringConstraints() {
		ok, got := core.SatisfiesConstraint(net, wc)
		fmt.Printf("  %-5s observed %5d vs W=%6d -> ok=%v\n", wc.Node, got, wc.MaxWires(), ok)
	}

	// 4. Budget the chip: area and leakage for edge- vs central-buffer
	//    routers at 22 nm.
	t22 := power.Tech22()
	eb := power.EdgeBufferConfig(net, model, 128)
	cb := power.CentralBufferConfig(net, model, 20, 128)
	fmt.Println("\n22nm budget (2 VCs, 128-bit flits):")
	for _, c := range []struct {
		name string
		buf  power.BufferConfig
	}{{"edge buffers (EB-Var)", eb}, {"central buffers (CBR-20)", cb}} {
		a := power.Area(net, c.buf, 2, t22)
		s := power.Static(net, c.buf, 2, t22)
		fmt.Printf("  %-24s area %.3f cm^2, leakage %.2f W (%.0f flits of storage)\n",
			c.name, a.Total(), s.Total(), c.buf.TotalFlits)
	}

	// 5. Validate the pick end-to-end: a short uniform-random run through
	//    the facade on the exact chosen network.
	spec := slimnoc.RunSpec{
		Name:    fmt.Sprintf("designspace-sn-%d", targetCores),
		Network: slimnoc.NetworkSpec{Topology: "sn", Q: pick.Q, Conc: pick.P, Layout: best},
		Traffic: slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.06},
		Sim:     slimnoc.QuickSim(),
	}
	spec.Sim.Seed = 1
	res, err := slimnoc.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidation run (RND at 0.06): latency %.1f cycles, throughput %.3f, saturated=%v\n",
		res.Metrics.AvgLatencyCycles, res.Metrics.Throughput, res.Metrics.Saturated)
}
