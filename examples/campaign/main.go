// Campaign tour: declare a Fig. 12-style evaluation grid as a SweepSpec,
// persist it as sweep.json (the same file `snsim -sweep` consumes), and
// execute it twice through the Campaign engine — serially, then on every
// core — to show that parallelism changes wall-clock only: per-point seeds
// are fixed at expansion time, so the metrics are byte-identical. The final
// act demonstrates resumable campaigns: a store-backed run is "Ctrl-C'd"
// mid-sweep, then rerun to completion from the store, byte-identical to the
// uninterrupted runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/slimnoc"
	"repro/slimnoc/store"
)

func main() {
	// 1. Declare the grid: three N=54 networks x two patterns x three
	//    loads (18 points), quick cycles. Axes expand network-slowest, so
	//    consecutive points share a cached network build.
	sweep := slimnoc.SweepSpec{
		Name: "fig12-mini",
		Base: slimnoc.RunSpec{
			SMART: true,
			Sim:   slimnoc.SimSpec{WarmupCycles: 500, MeasureCycles: 1500, DrainCycles: 2000, Seed: 1},
		},
		Axes: slimnoc.SweepAxes{
			Presets:  []string{"sn_subgr_54", "fbf54", "t2d54"},
			Patterns: []string{"rnd", "adv1"},
			Loads:    []float64{0.02, 0.06, 0.12},
		},
	}

	// 2. Round-trip it through disk: sweep.json is what snsim -sweep runs.
	dir, err := os.MkdirTemp("", "campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sweep.json")
	if err := slimnoc.SaveSweep(path, sweep); err != nil {
		log.Fatal(err)
	}
	loaded, err := slimnoc.LoadSweep(path)
	if err != nil {
		log.Fatal(err)
	}
	points, err := loaded.Points()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep %s: %d points (also runnable via: snsim -sweep %s)\n",
		loaded.Name, len(points), path)

	// 3. Run serially, then in parallel, with a JSONL sink on the parallel
	//    pass (one line per completed point, in completion order).
	run := func(jobs int, opts ...slimnoc.CampaignOption) ([]slimnoc.PointResult, time.Duration) {
		start := time.Now()
		results, err := slimnoc.RunCampaign(context.Background(), points,
			append(opts, slimnoc.WithJobs(jobs))...)
		if err != nil {
			log.Fatal(err)
		}
		return results, time.Since(start)
	}
	serial, serialDur := run(1)

	out, err := os.Create(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	parallel, parallelDur := run(runtime.NumCPU(), slimnoc.WithSink(slimnoc.NewJSONLSink(out)))
	out.Close()

	// 4. Verify determinism: identical metrics at any job count.
	for i := range serial {
		s, _ := json.Marshal(serial[i].Result.Metrics)
		p, _ := json.Marshal(parallel[i].Result.Metrics)
		if string(s) != string(p) {
			log.Fatalf("point %d: serial and parallel metrics differ", i)
		}
	}

	// 5. Report the grid, a latency table per pattern.
	fmt.Printf("\n%-14s %-6s", "network", "pattern")
	for _, l := range sweep.Axes.Loads {
		fmt.Printf(" %8s", fmt.Sprintf("@%.2f", l))
	}
	fmt.Println(" [avg latency, cycles]")
	nl := len(sweep.Axes.Loads)
	for i := 0; i < len(parallel); i += nl {
		spec := parallel[i].Spec
		fmt.Printf("%-14s %-6s", spec.Network.Preset, spec.Traffic.Pattern)
		for j := 0; j < nl; j++ {
			m := parallel[i+j].Result.Metrics
			if m.Saturated {
				fmt.Printf(" %8s", "sat")
			} else {
				fmt.Printf(" %8.1f", m.AvgLatencyCycles)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nserial %v, parallel (%d jobs) %v — %.1fx speedup, identical metrics\n",
		serialDur.Round(time.Millisecond), runtime.NumCPU(),
		parallelDur.Round(time.Millisecond),
		float64(serialDur)/float64(parallelDur))

	// 6. Resume demo. Attach a content-addressed result store (WithStore)
	//    and interrupt the campaign after its first completed point — the
	//    programmatic equivalent of hitting Ctrl-C mid-sweep. Every point
	//    that finished is already durable in store.jsonl, keyed by the hash
	//    of its expanded spec plus the engine version.
	storePath := filepath.Join(dir, "store.jsonl")
	st, err := store.Open(storePath)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	interrupted, err := slimnoc.RunCampaign(ctx, points,
		slimnoc.WithJobs(2),
		slimnoc.WithStore(st),
		// Cancel as soon as anything completes, so most of the sweep is
		// still pending when the "process" dies.
		slimnoc.WithOnPoint(func(slimnoc.PointResult) { once.Do(cancel) }))
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected a cancelled campaign, got %v", err)
	}
	cancel()
	saved := 0
	for _, p := range interrupted {
		if p.Err == nil {
			saved++
		}
	}
	st.Close() // the "crash": the store file is all that survives
	fmt.Printf("\ninterrupted mid-sweep: %d of %d points durable in %s\n",
		saved, len(points), filepath.Base(storePath))

	// 7. Resume in a "new process": reopen the same store and rerun the
	//    identical sweep. Stored points are served without simulating
	//    (PointResult.Cached), only the missing ones run, and the final
	//    result set is byte-identical to the cold runs above — which is
	//    exactly how `snrepro -store` resumes a killed reproduction.
	st2, err := store.Open(storePath)
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	resumed, err := slimnoc.RunCampaign(context.Background(), points,
		slimnoc.WithJobs(2), slimnoc.WithStore(st2))
	if err != nil {
		log.Fatal(err)
	}
	cachedN := 0
	for i := range resumed {
		if resumed[i].Cached {
			cachedN++
		}
		s, _ := json.Marshal(serial[i].Result)
		r, _ := json.Marshal(resumed[i].Result)
		if string(s) != string(r) {
			log.Fatalf("point %d: resumed result differs from the cold run", i)
		}
	}
	fmt.Printf("resumed: %d points served from the store, %d simulated — byte-identical to the cold run\n",
		cachedN, len(points)-cachedN)
}
