// Co-simulation walkthrough: a toy host execution engine (a four-stage
// pipeline of dependent DMA transfers) uses the serve client as its latency
// oracle. Each stage may only start when its input transfer has finished,
// and transfers sharing links push each other back via occupancy windows —
// the uPIMulator-style coupling, here over an in-process pipe instead of a
// snserve subprocess. A second pass over the same transfers then shows the
// store-backed cache serving every estimate without simulating.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"repro/slimnoc"
	"repro/slimnoc/serve"
	"repro/slimnoc/store"
)

func main() {
	// 1. Stand up the oracle: a server with a persistent response cache,
	//    served over an in-process pipe. Swapping the pipe for a TCP
	//    connection (serve.Dial) or a snserve subprocess changes nothing
	//    below this block.
	dir, err := os.MkdirTemp("", "snserve-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "serve.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	srv := serve.NewServer(serve.WithCache(serve.NewCache(st)))

	session := func() *serve.Client {
		sc, cc := net.Pipe()
		go srv.ServeConn(context.Background(), sc)
		// The hello handshake negotiates the engine: the paper's SN-S
		// network (200 nodes) with its defaults, 16-byte flits.
		c, err := serve.NewClient(cc, slimnoc.RunSpec{
			Network: slimnoc.NetworkSpec{Topology: "sn", Q: 5, Conc: 4, Layout: "subgr"},
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	c := session()
	n := c.Network()
	fmt.Printf("oracle ready: %s — %d routers, %d nodes, engine %s\n\n",
		n.Name, n.Routers, n.Nodes, c.Engine())

	// 2. The host's workload: a load fans out to two compute stages that
	//    both read the loaded buffer, and a store drains the first stage's
	//    output. The host only tracks data dependencies (a stage starts when
	//    its input is ready); link contention is the oracle's job — both
	//    compute stages leave router B over the same links, so the oracle
	//    pushes the second one back (waited > 0) even though the host issued
	//    them for the same cycle.
	type transfer struct {
		name     string
		src, dst int
		bytes    int64
	}
	run := func(c *serve.Client) int64 {
		occupy := func(tr transfer, at int64) serve.Grant {
			g, err := c.Occupy(tr.src, tr.dst, tr.bytes, at)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-15s start %5d  finish %5d  latency %4d cycles  waited %3d  (%d hops)\n",
				tr.name, g.Start, g.Finish, g.LatencyCycles, g.Waited, g.Hops)
			return g
		}
		load := occupy(transfer{"load   A -> B", 0, 77, 4096}, 0)
		s1 := occupy(transfer{"stage1 B -> C", 77, 150, 2048}, load.Finish)
		s2 := occupy(transfer{"stage2 B -> C'", 77, 151, 2048}, load.Finish)
		st := occupy(transfer{"store  C -> D", 150, 199, 1024}, s1.Finish)
		makespan := st.Finish
		if s2.Finish > makespan {
			makespan = s2.Finish
		}
		return makespan
	}

	fmt.Println("cold pass (every estimate simulates):")
	makespan := run(c)
	stats, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline makespan: %d cycles (%.1f ns); %d engine episodes\n\n",
		makespan, float64(makespan)*n.CycleTimeNs, stats.Simulated)

	// 3. Warm pass: a fresh session replays the same pipeline. Every
	//    latency now comes from the content-addressed cache — byte-identical
	//    grants, zero new simulations.
	before := stats.Simulated
	c2 := session()
	fmt.Println("warm pass (fresh session, same store):")
	makespan = run(c2)
	stats, err = c2.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %d cycles again, %d new simulations, %d cache hits\n",
		makespan, stats.Simulated-before, stats.CacheHits)

	c.Close()
	c2.Close()
}
