// Adversarial traffic comparison: the Fig. 1a scenario. Sweeps load under
// the ADV1 pattern and compares Slim NoC against a concentrated mesh, a
// torus and a flattened butterfly, all with SMART links — showing SN's
// latency advantage at every load point and its later saturation than the
// low-radix designs.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	opts := exp.Options{Quick: true, Seed: 1}
	names := []string{"cm9", "t2d9", "fbf9", "sn_gr_1296"}
	fmt.Println("ADV1 latency [cycles] at N=1296, SMART links (cf. Fig. 1a):")
	fmt.Printf("%-8s", "load")
	for _, n := range names {
		fmt.Printf("  %-12s", n)
	}
	fmt.Println()
	for _, load := range []float64{0.008, 0.024, 0.08} {
		fmt.Printf("%-8.3f", load)
		for _, name := range names {
			spec, err := exp.BuildNet(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := exp.Run(exp.RunSpec{
				Spec: spec, Pattern: "ADV1", Rate: load, SMART: true, Opts: opts,
			})
			if err != nil {
				log.Fatal(err)
			}
			cell := fmt.Sprintf("%.1f", res.AvgLatency)
			if res.Saturated {
				cell = "saturated"
			}
			fmt.Printf("  %-12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape: SN below FBF slightly and far below mesh/torus,")
	fmt.Println("with the mesh saturating first (its average path is much longer).")
}
