// Adversarial traffic comparison: the Fig. 1a scenario. Sweeps load under
// the ADV1 pattern and compares Slim NoC against a concentrated mesh, a
// torus and a flattened butterfly, all with SMART links — showing SN's
// latency advantage at every load point and its later saturation than the
// low-radix designs. Each network is a slimnoc preset, built once and
// reused across the sweep via WithNetwork.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/slimnoc"
)

func main() {
	names := []string{"cm9", "t2d9", "fbf9", "sn_gr_1296"}
	fmt.Println("ADV1 latency [cycles] at N=1296, SMART links (cf. Fig. 1a):")
	fmt.Printf("%-8s", "load")
	for _, n := range names {
		fmt.Printf("  %-12s", n)
	}
	fmt.Println()

	type built struct {
		net  *slimnoc.Network
		opts []slimnoc.Option
	}
	nets := make(map[string]built)
	for _, name := range names {
		net, kind, err := slimnoc.BuildNetwork(slimnoc.NetworkSpec{Preset: name})
		if err != nil {
			log.Fatal(err)
		}
		nets[name] = built{net: net, opts: []slimnoc.Option{slimnoc.WithNetwork(net, kind)}}
	}

	for _, load := range []float64{0.008, 0.024, 0.08} {
		fmt.Printf("%-8.3f", load)
		for _, name := range names {
			spec := slimnoc.RunSpec{
				Network: slimnoc.NetworkSpec{Preset: name},
				Traffic: slimnoc.TrafficSpec{Pattern: "adv1", Rate: load},
				SMART:   true,
				Sim:     slimnoc.QuickSim(),
			}
			spec.Sim.Seed = 2
			res, err := slimnoc.Run(context.Background(), spec, nets[name].opts...)
			if err != nil {
				log.Fatal(err)
			}
			cell := fmt.Sprintf("%.1f", res.Metrics.AvgLatencyCycles)
			if res.Metrics.Saturated {
				cell = "saturated"
			}
			fmt.Printf("  %-12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape: SN below FBF slightly and far below mesh/torus,")
	fmt.Println("with the mesh saturating first (its average path is much longer).")
}
