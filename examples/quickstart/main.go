// Quickstart: build the paper's SN-S design (200 nodes, 50 routers,
// diameter 2), inspect its structure, and run a short uniform-random
// simulation — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/traffic"
)

func main() {
	// 1. Build the Slim NoC graph: q=5 gives 2q^2 = 50 routers; with
	//    concentration p=4 that is 200 cores (§3.4, SN-S).
	sn, err := core.New(core.Params{Q: 5, P: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SN-S: %d routers, %d nodes, network radix k'=%d, u=%d\n",
		sn.Nr(), sn.N(), sn.KPrime, sn.U)
	fmt.Printf("generator sets over GF(%d): X=%v X'=%v\n",
		sn.Q, sn.X, sn.Xp)

	// 2. Place it with the subgroup layout (the best layout for SN-S).
	net, err := sn.Network(core.LayoutSubgroup, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout: die %s, diameter %d, avg wire length %.2f hops\n",
		dims(net.GridDims()), net.Diameter(), net.AvgWireLength())

	// 3. Check the buffer budget (§3.2.2).
	model := core.DefaultBufferModel()
	fmt.Printf("edge buffers: %d flits total; central buffers (CB=20): %d flits\n",
		model.TotalEdgeBuffers(net), model.TotalCentralBuffers(net, 20))

	// 4. Simulate uniform random traffic at a moderate load.
	cfg := sim.Config{
		Net:     net,
		Routing: &routing.MinimalRouting{P: routing.NewMinimal(net), VCs: 2},
		Traffic: &traffic.Synthetic{
			N: net.N(), Rate: 0.1, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()},
		},
		Seed:          1,
		WarmupCycles:  2000,
		MeasureCycles: 10000,
		DrainCycles:   10000,
	}
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := s.Run()
	fmt.Printf("simulated RND at 0.10 flits/node/cycle: latency %.1f cycles, throughput %.3f, avg hops %.2f\n",
		res.AvgLatency, res.Throughput, res.AvgHops)
}

func dims(x, y int) string { return fmt.Sprintf("%dx%d", x, y) }
