// Quickstart: describe the paper's SN-S design (200 nodes, 50 routers,
// diameter 2) as a declarative slimnoc run spec, execute it with progress
// streaming, and show that the spec round-trips through JSON — the smallest
// end-to-end use of the public facade.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/slimnoc"
)

func main() {
	// 1. Declare the run: q=5 gives 2q^2 = 50 routers; with concentration
	//    p=4 that is 200 cores (§3.4, SN-S), placed with the subgroup
	//    layout (the best layout for SN-S), under uniform random traffic.
	spec := slimnoc.RunSpec{
		Name:    "quickstart-sn-s",
		Network: slimnoc.NetworkSpec{Topology: "sn", Q: 5, Conc: 4, Layout: "subgr"},
		Traffic: slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.1},
		Sim:     slimnoc.SimSpec{WarmupCycles: 2000, MeasureCycles: 10000, DrainCycles: 10000, Seed: 1},
	}

	// 2. Run it. The context cancels long sweeps; the progress option
	//    streams telemetry while the simulator works.
	res, err := slimnoc.Run(context.Background(), spec,
		slimnoc.WithProgress(8000, func(p slimnoc.Progress) {
			fmt.Printf("  ... cycle %d/%d, %d packets delivered\n", p.Cycle, p.TotalCycles, p.Delivered)
		}))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the structural summary and the measured metrics.
	n, m := res.Network, res.Metrics
	fmt.Printf("SN-S: %d routers, %d nodes, network radix k'=%d, diameter %d, avg wire length %.2f hops\n",
		n.Routers, n.Nodes, n.NetworkRadix, n.Diameter, n.AvgWireLength)
	fmt.Printf("simulated RND at 0.10 flits/node/cycle: latency %.1f cycles, throughput %.3f, avg hops %.2f\n",
		m.AvgLatencyCycles, m.Throughput, m.AvgHops)

	// 4. Specs are declarative documents: serialize, re-load, re-run — the
	//    same seed reproduces the same metrics exactly.
	data, err := res.Spec.JSON()
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := slimnoc.ParseSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := slimnoc.Run(context.Background(), reloaded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON round trip (%d bytes): latency %.1f cycles, reproducible=%v\n",
		len(data), res2.Metrics.AvgLatencyCycles, res2.Metrics == res.Metrics)
}
