package trace

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBenchmarksWellFormed(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 14 {
		t.Fatalf("got %d benchmarks, want 14 (Fig. 10b/18)", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Rate <= 0 || b.Rate > 0.2 {
			t.Errorf("%s: implausible rate %v", b.Name, b.Rate)
		}
		if b.ReadFrac+b.WriteFrac >= 1 {
			t.Errorf("%s: read+write fraction %.2f leaves no coherence traffic",
				b.Name, b.ReadFrac+b.WriteFrac)
		}
		if b.Locality+b.Hotspot >= 1 {
			t.Errorf("%s: locality+hotspot %.2f >= 1", b.Name, b.Locality+b.Hotspot)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	if b := BenchmarkByName("fft"); b == nil || b.Name != "fft" {
		t.Error("fft lookup failed")
	}
	if BenchmarkByName("nope") != nil {
		t.Error("unknown benchmark should return nil")
	}
}

func TestSourceMultiprogrammed(t *testing.T) {
	s := NewSource(*BenchmarkByName("fft"), 192)
	if s.Copies != 3 || s.ThreadsPerCopy != 64 {
		t.Fatalf("192 cores should run 3x64 threads, got %dx%d", s.Copies, s.ThreadsPerCopy)
	}
	small := NewSource(*BenchmarkByName("fft"), 54)
	if small.Copies != 1 || small.ThreadsPerCopy != 54 {
		t.Fatalf("54 cores should run 1x54, got %dx%d", small.Copies, small.ThreadsPerCopy)
	}
}

// TestDestinationsStayInCopy: the multiprogrammed copies must not talk to
// each other.
func TestDestinationsStayInCopy(t *testing.T) {
	s := NewSource(*BenchmarkByName("radix"), 192)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		src := rng.Intn(192)
		d := s.dest(rng, src)
		if d/64 != src/64 {
			t.Fatalf("dest %d leaves copy of src %d", d, src)
		}
		if d == src {
			t.Fatal("self destination")
		}
	}
}

// TestMessageMix: generated classes follow the configured fractions and the
// paper's flit sizes.
func TestMessageMix(t *testing.T) {
	s := NewSource(*BenchmarkByName("canneal"), 192)
	rng := rand.New(rand.NewSource(2))
	counts := map[int]int{}
	flits := map[int]int{}
	for cyc := int64(0); cyc < 3000; cyc++ {
		s.Generate(cyc, rng, func(src, dst, f, class int) {
			counts[class]++
			flits[class] = f
		})
	}
	total := counts[ClassRead] + counts[ClassWrite] + counts[ClassCoh]
	if total == 0 {
		t.Fatal("no messages generated")
	}
	readFrac := float64(counts[ClassRead]) / float64(total)
	if readFrac < 0.58 || readFrac > 0.78 {
		t.Errorf("read fraction %.2f, configured 0.68", readFrac)
	}
	if flits[ClassRead] != 2 || flits[ClassCoh] != 2 || flits[ClassWrite] != 6 {
		t.Errorf("flit sizes read/coh/write = %d/%d/%d, want 2/2/6",
			flits[ClassRead], flits[ClassCoh], flits[ClassWrite])
	}
}

func TestRepliesOnReadsOnly(t *testing.T) {
	s := NewSource(*BenchmarkByName("fft"), 192)
	got := 0
	emit := func(src, dst, flits, class int) {
		got++
		if class != ClassReply || flits != FlitsReply {
			t.Errorf("reply class/flits = %d/%d", class, flits)
		}
	}
	s.OnDelivered(0, 1, 2, FlitsRead, ClassRead, emit)
	s.OnDelivered(0, 1, 2, FlitsWrite, ClassWrite, emit)
	s.OnDelivered(0, 1, 2, FlitsCoh, ClassCoh, emit)
	s.OnDelivered(0, 1, 2, FlitsReply, ClassReply, emit)
	if got != 1 {
		t.Errorf("got %d replies, want 1 (reads only)", got)
	}
}

func TestRecordDeterministic(t *testing.T) {
	mk := func() []Event {
		s := NewSource(*BenchmarkByName("dedup"), 192)
		return Record(s, 500, 99)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewSource(*BenchmarkByName("vips"), 192)
	events := Record(s, 300, 7)
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d differs after round trip", i)
		}
	}
}

func TestReplayEmitsInOrder(t *testing.T) {
	events := []Event{
		{Cycle: 0, Src: 1, Dst: 2, Flits: 2, Class: ClassRead},
		{Cycle: 0, Src: 3, Dst: 4, Flits: 6, Class: ClassWrite},
		{Cycle: 5, Src: 5, Dst: 6, Flits: 2, Class: ClassCoh},
	}
	r := &Replay{Events: events}
	rng := rand.New(rand.NewSource(1))
	var got []Event
	for tt := int64(0); tt < 10; tt++ {
		r.Generate(tt, rng, func(src, dst, flits, class int) {
			got = append(got, Event{Cycle: tt, Src: int32(src), Dst: int32(dst),
				Flits: int16(flits), Class: int16(class)})
		})
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d events, want 3", len(got))
	}
	if got[2].Cycle != 5 {
		t.Errorf("third event at cycle %d, want 5", got[2].Cycle)
	}
}

func TestReplayLoop(t *testing.T) {
	events := []Event{{Cycle: 0, Src: 1, Dst: 2, Flits: 2, Class: ClassCoh}}
	r := &Replay{Events: events, Loop: true}
	rng := rand.New(rand.NewSource(1))
	count := 0
	for tt := int64(0); tt < 5; tt++ {
		r.Generate(tt, rng, func(src, dst, flits, class int) { count++ })
	}
	if count < 2 {
		t.Errorf("looped replay emitted %d events, want repeated injection", count)
	}
}
