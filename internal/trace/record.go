// Trace recording and replay: the on-disk format lets a generated trace be
// stored once and replayed deterministically across experiments, mirroring
// the paper's record-once/replay-many methodology.

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Event is one injected message.
type Event struct {
	Cycle int64
	Src   int32
	Dst   int32
	Flits int16
	Class int16
}

// Record runs a Source standalone for the given number of cycles and
// captures the primary (non-reply) messages it would inject.
func Record(src *Source, cycles int64, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	var out []Event
	for t := int64(0); t < cycles; t++ {
		src.Generate(t, rng, func(s, d, flits, class int) {
			out = append(out, Event{Cycle: t, Src: int32(s), Dst: int32(d),
				Flits: int16(flits), Class: int16(class)})
		})
	}
	return out
}

// Write stores events in a compact binary stream.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, int64(len(events))); err != nil {
		return err
	}
	for _, e := range events {
		if err := binary.Write(bw, binary.LittleEndian, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read loads events written by Write.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var n int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("trace: implausible event count %d", n)
	}
	events := make([]Event, n)
	for i := range events {
		if err := binary.Read(br, binary.LittleEndian, &events[i]); err != nil {
			return nil, err
		}
	}
	return events, nil
}

// Replay is a sim.Source that re-injects a recorded event stream, still
// generating read replies dynamically.
type Replay struct {
	Events []Event
	pos    int
	// Loop restarts the trace when exhausted (events' cycles are offset).
	Loop   bool
	offset int64

	Replies int64
}

var _ sim.Source = (*Replay)(nil)
var _ sim.NextFirer = (*Replay)(nil)

// NextFire implements sim.NextFirer: the recorded stream knows the exact
// cycle of its next injection and Generate draws no RNG, so the event
// calendar may skip the gaps of a sparse trace. A looping trace that has
// just exhausted must fire next cycle — the restart offset is pinned by the
// next Generate call and skipping it would shift every replayed cycle.
func (r *Replay) NextFire(t int64) int64 {
	if r.pos >= len(r.Events) {
		if !r.Loop || len(r.Events) == 0 {
			return math.MaxInt64
		}
		return t + 1
	}
	if at := r.Events[r.pos].Cycle + r.offset; at > t+1 {
		return at
	}
	return t + 1
}

// Generate implements sim.Source.
func (r *Replay) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	for {
		if r.pos >= len(r.Events) {
			if !r.Loop || len(r.Events) == 0 {
				return
			}
			// Restart strictly in the next cycle so a trace shorter than
			// the wall clock cannot loop forever within one call.
			r.offset = t + 1
			r.pos = 0
		}
		e := r.Events[r.pos]
		if e.Cycle+r.offset > t {
			return
		}
		emit(int(e.Src), int(e.Dst), int(e.Flits), int(e.Class))
		r.pos++
	}
}

// OnDelivered implements sim.Source.
func (r *Replay) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
	if class == ClassRead {
		emit(dst, src, FlitsReply, ClassReply)
		r.Replies++
	}
}
