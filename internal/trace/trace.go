// Package trace is the reproduction's substitute for the paper's
// PARSEC/SPLASH traces (§5.1). The paper collects message traces at the L1
// back side with Manifold + DRAMSim2; we cannot rerun those binaries, so
// this package generates seeded synthetic traces with the same message
// model: read requests and coherence messages of 2 flits, write messages of
// 6 flits, and a 6-flit reply for every read (§5.1 "Real Traffic"). Each of
// the 14 benchmarks has its own injection intensity, read/write/coherence
// mix, and spatial locality, chosen to span the behaviours the suite is
// known for (memory-intensive vs compute-bound, local vs global sharing).
// Three 64-thread copies run side by side on 192 cores to model the paper's
// multiprogrammed scenario.
package trace

import (
	"math/rand"

	"repro/internal/sim"
)

// Message classes carried through the simulator.
const (
	ClassRead  = 1 // 2 flits, triggers a 6-flit reply
	ClassWrite = 2 // 6 flits
	ClassCoh   = 3 // 2 flits
	ClassReply = 4 // 6 flits, generated at the read destination
)

// Flit sizes per class (§5.1).
const (
	FlitsRead  = 2
	FlitsWrite = 6
	FlitsCoh   = 2
	FlitsReply = 6
)

// Benchmark describes one synthetic workload.
type Benchmark struct {
	Name string
	// Rate is the request injection probability per node per cycle.
	Rate float64
	// ReadFrac/WriteFrac of requests; the rest are coherence messages.
	ReadFrac, WriteFrac float64
	// Locality is the probability a destination falls in the source's
	// quarter of its application copy (directory/bank locality).
	Locality float64
	// Hotspot is the probability a destination is one of the copy's few
	// "home" nodes (e.g. a lock or a reduction root).
	Hotspot float64
}

// Benchmarks returns the 14 PARSEC/SPLASH workloads in the paper's Fig. 10b
// order with per-benchmark parameters. Rates span light (barnes, water) to
// heavy (fft, radix) network use; sharing structure varies from
// nearest-neighbour (ocean) to all-to-all (radix) to hotspot-heavy
// (radiosity, volrend).
func Benchmarks() []Benchmark {
	// Rates are requests/node/cycle at the L1 back side; with replies the
	// resulting flit loads span ~0.02-0.12 flits/node/cycle — the regime
	// real PARSEC traces exercise (all topologies below saturation except
	// the mesh on the heaviest workloads, as in the paper's Fig. 10b).
	return []Benchmark{
		{Name: "barnes", Rate: 0.004, ReadFrac: 0.62, WriteFrac: 0.18, Locality: 0.55, Hotspot: 0.05},
		{Name: "canneal", Rate: 0.012, ReadFrac: 0.68, WriteFrac: 0.22, Locality: 0.15, Hotspot: 0.02},
		{Name: "cholesky", Rate: 0.007, ReadFrac: 0.60, WriteFrac: 0.25, Locality: 0.45, Hotspot: 0.06},
		{Name: "dedup", Rate: 0.008, ReadFrac: 0.55, WriteFrac: 0.30, Locality: 0.35, Hotspot: 0.08},
		{Name: "ferret", Rate: 0.008, ReadFrac: 0.58, WriteFrac: 0.27, Locality: 0.30, Hotspot: 0.07},
		{Name: "fft", Rate: 0.016, ReadFrac: 0.65, WriteFrac: 0.25, Locality: 0.10, Hotspot: 0.02},
		{Name: "fluidan.", Rate: 0.006, ReadFrac: 0.60, WriteFrac: 0.25, Locality: 0.60, Hotspot: 0.03},
		{Name: "ocean-c", Rate: 0.010, ReadFrac: 0.63, WriteFrac: 0.24, Locality: 0.70, Hotspot: 0.02},
		{Name: "radios.", Rate: 0.007, ReadFrac: 0.58, WriteFrac: 0.22, Locality: 0.25, Hotspot: 0.15},
		{Name: "radix", Rate: 0.018, ReadFrac: 0.55, WriteFrac: 0.35, Locality: 0.08, Hotspot: 0.02},
		{Name: "streamcl.", Rate: 0.012, ReadFrac: 0.66, WriteFrac: 0.22, Locality: 0.20, Hotspot: 0.04},
		{Name: "vips", Rate: 0.007, ReadFrac: 0.57, WriteFrac: 0.28, Locality: 0.40, Hotspot: 0.05},
		{Name: "volrend", Rate: 0.005, ReadFrac: 0.64, WriteFrac: 0.18, Locality: 0.30, Hotspot: 0.12},
		{Name: "water-s", Rate: 0.004, ReadFrac: 0.60, WriteFrac: 0.22, Locality: 0.55, Hotspot: 0.04},
	}
}

// BenchmarkByName looks a benchmark up (nil if unknown).
func BenchmarkByName(name string) *Benchmark {
	for _, b := range Benchmarks() {
		if b.Name == name {
			b := b
			return &b
		}
	}
	return nil
}

// Source drives the simulator with one benchmark's synthetic trace, running
// `Copies` application copies of `ThreadsPerCopy` threads each on the first
// Copies*ThreadsPerCopy nodes (paper: 3 x 64 threads on 192 cores).
type Source struct {
	B              Benchmark
	N              int // total nodes in the network
	Copies         int
	ThreadsPerCopy int

	// Stats.
	Requests int64
	Replies  int64
}

var _ sim.Source = (*Source)(nil)

// NewSource builds the paper's multiprogrammed configuration for a network
// of n nodes: three 64-thread copies when they fit, otherwise one copy
// spanning all nodes.
func NewSource(b Benchmark, n int) *Source {
	copies, threads := 3, 64
	if copies*threads > n {
		copies, threads = 1, n
	}
	return &Source{B: b, N: n, Copies: copies, ThreadsPerCopy: threads}
}

// Generate implements sim.Source.
func (s *Source) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	active := s.Copies * s.ThreadsPerCopy
	for node := 0; node < active; node++ {
		if rng.Float64() >= s.B.Rate {
			continue
		}
		dst := s.dest(rng, node)
		r := rng.Float64()
		switch {
		case r < s.B.ReadFrac:
			emit(node, dst, FlitsRead, ClassRead)
		case r < s.B.ReadFrac+s.B.WriteFrac:
			emit(node, dst, FlitsWrite, ClassWrite)
		default:
			emit(node, dst, FlitsCoh, ClassCoh)
		}
		s.Requests++
	}
}

// dest picks a destination within the source's application copy using the
// benchmark's locality/hotspot structure.
func (s *Source) dest(rng *rand.Rand, src int) int {
	copyID := src / s.ThreadsPerCopy
	base := copyID * s.ThreadsPerCopy
	local := src - base
	var d int
	switch r := rng.Float64(); {
	case r < s.B.Hotspot:
		// Home nodes: the first four threads of the copy.
		d = rng.Intn(4)
	case r < s.B.Hotspot+s.B.Locality:
		// Same quarter of the copy.
		quarter := s.ThreadsPerCopy / 4
		if quarter == 0 {
			quarter = 1
		}
		d = (local/quarter)*quarter + rng.Intn(quarter)
	default:
		d = rng.Intn(s.ThreadsPerCopy)
	}
	d += base
	if d == src {
		d = base + (local+1)%s.ThreadsPerCopy
	}
	return d
}

// OnDelivered implements sim.Source: reads trigger 6-flit replies (§5.1).
func (s *Source) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
	if class == ClassRead {
		emit(dst, src, FlitsReply, ClassReply)
		s.Replies++
	}
}
