package detlint

// Golden-diagnostic tests in the style of x/tools' analysistest: each
// analyzer runs over a fixture package under testdata/src, and every
// expected finding is declared in place with a `// want "regex"` comment
// on the offending line. The harness fails on any missing, unexpected or
// mismatched diagnostic, so the fixtures double as the analyzers'
// behavioral spec — including the waiver and annotation-propagation
// cases.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// stdExportPkgs are the std packages the fixtures import; export data for
// them (and their dependencies) comes from one `go list -deps -export`.
var stdExportPkgs = []string{"sort", "slices", "fmt", "math/rand", "time"}

var (
	stdOnce sync.Once
	stdExp  map[string]string
	stdErr  error
)

func stdExports(t *testing.T) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		args := append([]string{"list", "-deps", "-export", "-json"}, stdExportPkgs...)
		var stdout, stderr bytes.Buffer
		cmd := exec.Command("go", args...)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			stdErr = fmt.Errorf("go list std exports: %v\n%s", err, stderr.String())
			return
		}
		stdExp = make(map[string]string)
		dec := json.NewDecoder(&stdout)
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdErr = err
				return
			}
			if p.Export != "" {
				stdExp[p.ImportPath] = p.Export
			}
		}
	})
	if stdErr != nil {
		t.Fatal(stdErr)
	}
	return stdExp
}

// tdLoader loads fixture packages from testdata/src, resolving std imports
// through gc export data and fixture-to-fixture imports recursively from
// source. It implements types.Importer.
type tdLoader struct {
	t    *testing.T
	fset *token.FileSet
	root string
	std  map[string]string
	gc   types.Importer
	pkgs map[string]*Package
}

func newLoader(t *testing.T) *tdLoader {
	t.Helper()
	std := stdExports(t)
	fset := token.NewFileSet()
	l := &tdLoader{
		t:    t,
		fset: fset,
		root: filepath.Join("testdata", "src"),
		std:  std,
		pkgs: make(map[string]*Package),
	}
	l.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := std[path]
		if !ok {
			return nil, fmt.Errorf("no std export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

func (l *tdLoader) Import(path string) (*types.Package, error) {
	if _, ok := l.std[path]; ok {
		return l.gc.Import(path)
	}
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

func (l *tdLoader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// wantRe extracts the quoted regexes of a `// want "a" "b"` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectations collects file-base:line -> expected-message regexes from
// the fixtures' // want comments.
func expectations(t *testing.T, pkgs []*Package) map[string][]string {
	t.Helper()
	want := make(map[string][]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Both comment forms carry expectations; the block
					// form lets a want share a line with a line-comment
					// directive under test.
					text := strings.TrimPrefix(c.Text, "//")
					if strings.HasPrefix(text, "/*") {
						text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
					}
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
						want[key] = append(want[key], m[1])
					}
				}
			}
		}
	}
	return want
}

func runGolden(t *testing.T, a *Analyzer, cfg *Config, paths ...string) {
	t.Helper()
	l := newLoader(t)
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	diags, err := Run(cfg, pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string][]string)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Message)
	}
	want := expectations(t, pkgs)

	keys := make(map[string]bool)
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		w, g := want[k], got[k]
		if len(w) != len(g) {
			t.Errorf("%s: want %d diagnostic(s) %q, got %d %q", k, len(w), w, len(g), g)
			continue
		}
		for i := range w {
			re, err := regexp.Compile(w[i])
			if err != nil {
				t.Fatalf("%s: bad want regex %q: %v", k, w[i], err)
			}
			if !re.MatchString(g[i]) {
				t.Errorf("%s: diagnostic %q does not match want %q", k, g[i], w[i])
			}
		}
	}
}

func TestMapOrderGolden(t *testing.T) {
	runGolden(t, MapOrder, &Config{}, "maporder")
}

func TestRNGSourceGolden(t *testing.T) {
	runGolden(t, RNGSource, &Config{}, "rngsource")
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, HotAlloc, &Config{}, "hotalloc")
}

func TestSharedReadGolden(t *testing.T) {
	cfg := &Config{
		SharedTypes:   []string{"sharedread/netpkg.Network"},
		SharedWriters: []string{"sharedread/netpkg"},
		LabelFields:   []string{"Name"},
	}
	runGolden(t, SharedRead, cfg, "sharedread/netpkg", "sharedread/use")
}

func TestDomainSharedGolden(t *testing.T) {
	cfg := &Config{
		DomainSharedFields: []string{
			"sharedread/dompkg.link.pending",
			"sharedread/dompkg.link.inFly",
			"sharedread/dompkg.engine.count",
		},
	}
	runGolden(t, SharedRead, cfg, "sharedread/dompkg")
}

func TestFloatKeyGolden(t *testing.T) {
	runGolden(t, FloatKey, &Config{}, "floatkey")
}

func TestHotCoverGolden(t *testing.T) {
	cfg := &Config{HotPackages: []string{"hotcover/hot", "hotcover/empty"}}
	runGolden(t, HotCover, cfg, "hotcover/hot", "hotcover/empty")
}

func TestParseWaiver(t *testing.T) {
	cases := []struct {
		text     string
		ok       bool
		analyzer string
	}{
		{"//detlint:ordered commutative sum", true, "maporder"},
		{"//detlint:ordered", false, ""},
		{"//detlint:ordered   ", false, ""},
		{"//detlint:allow hotalloc freelist miss only", true, "hotalloc"},
		{"//detlint:allow hotalloc", false, ""},
		{"//detlint:allow", false, ""},
		{"// regular comment", false, ""},
		{"//sim:hot", false, ""},
	}
	for _, c := range cases {
		w, ok := parseWaiver(c.text)
		if ok != c.ok || (ok && w.analyzer != c.analyzer) {
			t.Errorf("parseWaiver(%q) = (%+v, %v), want ok=%v analyzer=%q", c.text, w, ok, c.ok, c.analyzer)
		}
	}
}

func TestAnalyzerByName(t *testing.T) {
	for _, a := range Analyzers() {
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) did not return the suite analyzer", a.Name)
		}
	}
	if AnalyzerByName("nosuch") != nil {
		t.Error("AnalyzerByName of unknown name should be nil")
	}
}

// TestSuiteCleanOnTree is the acceptance check the CI lint job enforces:
// the full suite runs clean over the repository's determinism-critical
// packages, and the //sim:hot annotation set is non-empty.
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole tree; skipped in -short")
	}
	pkgs, err := Load("../..", []string{"./internal/...", "./slimnoc/...", "./cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(DefaultConfig(), pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	hot := 0
	for _, p := range pkgs {
		hot += HotFunctionCount(p)
	}
	if hot == 0 {
		t.Error("no //sim:hot functions found anywhere; the engine annotation set is missing")
	}
}
