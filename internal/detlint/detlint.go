// Package detlint is the repository's determinism and zero-allocation
// static-analysis suite. Every load-bearing property of the reproduction —
// golden byte-identity of sim Results, parallel==serial campaign bytes,
// PointKey/store stability, the zero-allocation steady-state cycle loop —
// is otherwise enforced only dynamically, by tests that catch a violation
// after it ships as a flaky diff or a silent performance cliff. detlint
// machine-checks those contracts at the source level, before a run ever
// happens.
//
// The suite is modelled on golang.org/x/tools/go/analysis but built on the
// standard library alone (the module is dependency-free by design): an
// Analyzer inspects one type-checked package through a Pass and reports
// position-anchored Diagnostics. Six analyzers ship:
//
//   - maporder:   no `range` over a map in determinism-critical code unless
//     the keys are collected and sorted (the sorted-keys idiom) or the site
//     carries a `//detlint:ordered <reason>` waiver.
//   - rngsource:  all randomness flows from an explicitly seeded *rand.Rand
//     (the DeriveSeed discipline); global math/rand draws and wall-clock
//     reads (time.Now and friends) are forbidden.
//   - hotalloc:   functions annotated `//sim:hot` (the engine cycle-loop
//     call graph) must not contain allocation-causing constructs, turning
//     the aggregate AllocsPerRun==0 tests into line-precise diagnostics.
//   - sharedread: the read-only WithNetwork/WithRouteTable/Estimator
//     sharing contracts — writes to network or route-table state outside
//     their constructor packages are flagged. A second mode guards the
//     domain-parallel engine: inside functions annotated `//sim:domain`
//     (code that runs concurrently across router domains each cycle),
//     writes to the configured cross-domain shared fields
//     (Config.DomainSharedFields — link handshake state, the timing
//     wheels, the Sim counters) are flagged unless waived in place with
//     the reason the write is race-free (sender-/receiver-exclusive
//     sides of a directed link, or effects staged per domain and merged
//     serially).
//   - floatkey:   no floating-point map keys, and no `==`/`!=` on
//     float-bearing structs, anywhere near canonical encoding or PointKey
//     derivation (floats make key identity platform- and history-dependent).
//   - hotcover:   the self-check that the `//sim:hot` annotation set is
//     non-empty in the engine packages and every `//sim:hot` or
//     `//sim:domain` annotation sits on a function declaration (a
//     misplaced directive silently guards nothing).
//
// Any diagnostic can be waived at its line (or the line below a standalone
// comment) with `//detlint:allow <analyzer> <reason>`; maporder accepts the
// shorthand `//detlint:ordered <reason>`. A waiver without a reason does
// not waive — the contract is that every exception is explained in place.
//
// The suite runs in CI via the internal/tools/detlint command and is tested
// by golden-diagnostic packages under testdata (// want comments), in the
// style of x/tools' analysistest.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver comments.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	// Pos locates the finding (file:line:column).
	Pos token.Position
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Message states the contract violation.
	Message string
}

// String renders the diagnostic in the go vet file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package plus the report sink.
type Pass struct {
	// Analyzer is the check currently running.
	Analyzer *Analyzer
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package
	// Cfg is the suite configuration (shared-type lists, hot packages...).
	Cfg *Config

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an effective waiver covers the
// position's line. A waiver is effective only when it names this analyzer
// (or is the //detlint:ordered shorthand for maporder) and carries a
// non-empty reason.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.waived(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config parameterises the suite: which types are shared read-only and who
// may write them, which packages must carry hot annotations, and which
// package-path prefixes are out of scope entirely.
type Config struct {
	// SharedTypes lists "pkgpath.TypeName" named types whose state is
	// shared read-only after construction (sharedread).
	SharedTypes []string
	// SharedWriters lists package paths allowed to write SharedTypes
	// fields — the constructor packages.
	SharedWriters []string
	// LabelFields lists field names exempt from sharedread: pure labels
	// (display names) that carry no structural or routed state.
	LabelFields []string
	// DomainSharedFields lists "pkgpath.TypeName.Field" fields that are
	// shared across router domains during the engine's parallel phases.
	// sharedread flags writes to them inside //sim:domain functions; each
	// legitimate write site carries a waiver explaining why it is race-free
	// (exclusive link side, or staged-and-merged effect).
	DomainSharedFields []string
	// HotPackages lists package paths that must declare at least one
	// //sim:hot function (hotcover): the engine cycle loop lives there.
	HotPackages []string
	// Skip lists package-path prefixes excluded from every analyzer.
	Skip []string
}

// DefaultConfig returns the repository configuration: topo networks and
// compiled routing state are the shared read-only types, their declaring
// packages (plus internal/core, which assembles Slim NoC networks) the
// writers, and internal/sim + internal/traffic the packages required to
// carry the hot-path annotation set.
func DefaultConfig() *Config {
	return &Config{
		SharedTypes: []string{
			"repro/internal/topo.Network",
			"repro/internal/routing.RouteTable",
			"repro/internal/routing.Paths",
		},
		SharedWriters: []string{
			"repro/internal/topo",
			"repro/internal/routing",
			"repro/internal/core",
		},
		LabelFields: []string{"Name"},
		// The cross-domain surface of the parallel engine: link handshake
		// and occupancy state (written by exactly one side per phase), the
		// input-stage readiness mirrors filled at link delivery, the
		// shared timing wheels, the Sim-level counters (updated only
		// through per-domain staging merged serially), and the per-domain
		// calendar cache (own-domain fields recomputed locally; foreign
		// domains are dirtied only through staged touch marks).
		DomainSharedFields: []string{
			"repro/internal/sim.link.pending",
			"repro/internal/sim.link.nextArrive",
			"repro/internal/sim.link.occupancy",
			"repro/internal/sim.Sim.occIn",
			"repro/internal/sim.wheel.buckets",
			"repro/internal/sim.wheel.pending",
			"repro/internal/sim.wheel.peak",
			"repro/internal/sim.Sim.forwardedFlits",
			"repro/internal/sim.Sim.bypassFlits",
			"repro/internal/sim.Sim.bufferedFlits",
			"repro/internal/sim.domain.calDirty",
			"repro/internal/sim.domain.calArrive",
			"repro/internal/sim.domain.calPending",
			"repro/internal/sim.domain.touched",
			"repro/internal/sim.domain.touchedList",
		},
		HotPackages: []string{"repro/internal/sim", "repro/internal/traffic", "repro/internal/routing"},
	}
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		RNGSource,
		HotAlloc,
		SharedRead,
		FloatKey,
		HotCover,
	}
}

// AnalyzerByName returns the suite analyzer with the given name, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages and returns every finding,
// sorted by file, line, column and analyzer name. Packages whose import
// path starts with a cfg.Skip prefix are not analyzed.
func Run(cfg *Config, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if skipped(cfg, pkg.Path) {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Cfg: cfg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("detlint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

func skipped(cfg *Config, path string) bool {
	for _, pre := range cfg.Skip {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

// HotAnnotation is the directive that marks a function as part of the
// engine's steady-state cycle loop, placing it under hotalloc's
// zero-allocation rules. It must appear as its own line inside the
// function's doc comment.
const HotAnnotation = "//sim:hot"

// DomainAnnotation marks a function as running concurrently across router
// domains during the engine's parallel phases, placing its writes under
// sharedread's cross-domain rules (Config.DomainSharedFields). Same
// placement contract as HotAnnotation: a line of the function's doc
// comment.
const DomainAnnotation = "//sim:domain"

// waiverPrefix introduces the generic waiver directive; orderedDirective is
// the maporder shorthand from the issue-tracker contract.
const (
	waiverPrefix     = "//detlint:allow"
	orderedDirective = "//detlint:ordered"
)

// waiver is one parsed //detlint: directive.
type waiver struct {
	analyzer string
	reason   string
}

// waivers builds (once) the file/line index of waiver directives. A
// directive waives findings on its own line; a standalone comment line also
// waives the line directly below it.
func (p *Package) waivers() map[string]map[int][]waiver {
	if p.waiverIdx != nil {
		return p.waiverIdx
	}
	idx := make(map[string]map[int][]waiver)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				w, ok := parseWaiver(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]waiver)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], w)
			}
		}
	}
	p.waiverIdx = idx
	return idx
}

// parseWaiver decodes one comment as a waiver directive. A directive with
// an empty reason parses as invalid (ok=false): unexplained waivers do not
// waive.
func parseWaiver(text string) (waiver, bool) {
	switch {
	case strings.HasPrefix(text, orderedDirective):
		reason := strings.TrimSpace(strings.TrimPrefix(text, orderedDirective))
		if reason == "" {
			return waiver{}, false
		}
		return waiver{analyzer: "maporder", reason: reason}, true
	case strings.HasPrefix(text, waiverPrefix):
		rest := strings.TrimSpace(strings.TrimPrefix(text, waiverPrefix))
		name, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
		if name == "" || reason == "" {
			return waiver{}, false
		}
		return waiver{analyzer: name, reason: reason}, true
	}
	return waiver{}, false
}

// waived reports whether an effective directive covers (analyzer, line):
// one on the line itself, or one on the line above (a standalone waiver
// comment preceding the statement).
func (p *Package) waived(analyzer string, pos token.Position) bool {
	byLine := p.waivers()[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, w := range byLine[line] {
			if w.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// qualifiedName renders a named type as "pkgpath.TypeName" for matching
// against Config.SharedTypes.
func qualifiedName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// derefNamed unwraps pointers and aliases down to a named type, or nil.
func derefNamed(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Alias:
			t = types.Unalias(x)
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// pkgNameOf resolves a call's receiver expression to an imported package
// path, or "" when the expression is not a package qualifier.
func pkgNameOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// funcDocHas reports whether a function declaration carries the annotation
// as a line of its doc comment.
func funcDocHas(d *ast.FuncDecl, annotation string) bool {
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		if strings.TrimSpace(c.Text) == annotation {
			return true
		}
	}
	return false
}

// funcDocHot reports whether a function declaration carries the //sim:hot
// annotation as a line of its doc comment.
func funcDocHot(d *ast.FuncDecl) bool { return funcDocHas(d, HotAnnotation) }

// hotFuncs returns the package's annotated functions (by type object) and
// all declared functions, so callers can distinguish "declared here but not
// hot" from "declared elsewhere".
func hotFuncs(pkg *Package) (hot map[*types.Func]bool, declared map[*types.Func]*ast.FuncDecl) {
	hot = make(map[*types.Func]bool)
	declared = make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			declared[obj] = fd
			if funcDocHot(fd) {
				hot[obj] = true
			}
		}
	}
	return hot, declared
}
