package detlint

import (
	"go/ast"
	"go/types"
)

// RNGSource enforces the DeriveSeed discipline: every random draw must
// flow from an explicitly seeded *rand.Rand handed down by the campaign
// layer, and no code may read the wall clock. The global math/rand
// functions draw from a process-wide shared source whose state depends on
// everything else that ran, and time.Now injects the host's clock — either
// one silently breaks run-to-run byte identity.
var RNGSource = &Analyzer{
	Name: "rngsource",
	Doc:  "no global math/rand draws or wall-clock reads; randomness comes from a seeded *rand.Rand",
	Run:  runRNGSource,
}

// randConstructors are the math/rand package-level functions that build an
// explicit generator rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// clockFuncs are the time functions that observe or schedule against the
// wall clock.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runRNGSource(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only function references count: *rand.Rand and time.Duration
			// in signatures are type names, not draws.
			if _, isFunc := info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			switch pkgNameOf(info, sel.X) {
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "global math/rand.%s draws from shared process state; use an explicitly seeded *rand.Rand (DeriveSeed discipline)", sel.Sel.Name)
				}
			case "time":
				if clockFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulated time must come from the engine's cycle counter", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
