package detlint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map. Go randomises map iteration order per
// run, so any map range whose body's effect depends on visit order (output
// bytes, float accumulation, slice append of values, first-match selection)
// breaks the golden byte-identity and parallel==serial contracts
// non-deterministically. Two shapes are accepted without a waiver: the
// sorted-keys idiom (the body only appends the key to a slice that the
// function later sorts) and sites carrying `//detlint:ordered <reason>`.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map must sort keys first or carry a //detlint:ordered waiver",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := info.Types[rng.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if keys := sortedKeysIdiom(info, rng); keys != nil && sortCalledAfter(info, fd.Body, rng, keys) {
					return true
				}
				pass.Reportf(rng.Pos(), "range over map: iteration order is nondeterministic; collect and sort keys, or waive with //detlint:ordered <reason>")
				return true
			})
		}
	}
	return nil
}

// sortedKeysIdiom recognises a range body that is exactly one statement of
// the form `keys = append(keys, k)` where k is the range's key variable,
// and returns the keys slice's object (nil otherwise). Such a loop is
// order-insensitive on its own; the caller must still confirm the slice is
// sorted afterwards.
func sortedKeysIdiom(info *types.Info, rng *ast.RangeStmt) types.Object {
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil {
		return nil
	}
	keyObj := info.Defs[keyID]
	if keyObj == nil {
		keyObj = info.Uses[keyID]
	}
	if keyObj == nil || len(rng.Body.List) != 1 {
		return nil
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return nil
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" || info.Uses[fn] != types.Universe.Lookup("append") {
		return nil
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return nil
	}
	lhsObj := info.Uses[lhs]
	if lhsObj == nil || lhsObj != info.Uses[arg0] || info.Uses[arg1] != keyObj {
		return nil
	}
	return lhsObj
}

// sortFuncs maps importable package paths to the sort entry points whose
// first argument is the slice being ordered.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortCalledAfter reports whether the function body contains, after the
// range statement, a recognised sort call whose first argument is the keys
// slice.
func sortCalledAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, keys types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		names := sortFuncs[pkgNameOf(info, sel.X)]
		if names == nil || !names[sel.Sel.Name] {
			return true
		}
		arg, ok := call.Args[0].(*ast.Ident)
		if ok && info.Uses[arg] == keys {
			found = true
		}
		return true
	})
	return found
}
