package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc turns the engine's aggregate zero-allocation tests
// (AllocsPerRun==0 over the steady-state cycle loop) into line-precise
// diagnostics. Inside functions annotated `//sim:hot` it flags the
// constructs that cause heap allocation: make/new, composite literals,
// append that can grow its backing array, interface boxing, fmt calls,
// non-constant string concatenation, and escaping closures. It also
// enforces annotation propagation: a hot function may only call
// same-package functions that are themselves annotated, so the `//sim:hot`
// set stays closed over the real call graph.
//
// Two amortised shapes pass without a waiver: self-append
// (`x = append(x, ...)`, the freelist/ring recycling pattern whose
// capacity is retained across cycles) and a function literal passed
// directly as a call argument (the engine's forEachSorted visitors, which
// do not escape and are measured allocation-free).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//sim:hot functions must not contain allocation-causing constructs",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	hot, declared := hotFuncs(pass.Pkg)
	//detlint:ordered diagnostics are position-sorted by Run before reporting; visit order cannot reach the output
	for fn, fd := range declared {
		if hot[fn] && fd.Body != nil {
			checkHotBody(pass, fd, hot, declared)
		}
	}
	return nil
}

// checkHotBody inspects one annotated function body for allocating
// constructs and calls out of the annotated set.
func checkHotBody(pass *Pass, fd *ast.FuncDecl, hot map[*types.Func]bool, declared map[*types.Func]*ast.FuncDecl) {
	info := pass.Pkg.Info
	body := fd.Body

	// Pre-pass: find the amortised shapes that are exempt (self-appends,
	// immediate-call-argument closures) and the composite literals whose
	// address is taken (&T{} always heap-allocates; a plain value literal
	// does not).
	selfAppend := make(map[*ast.CallExpr]bool)
	immediateLit := make(map[*ast.FuncLit]bool)
	addrLit := make(map[*ast.CompositeLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(x.Lhs) || !isBuiltin(info, call.Fun, "append") {
					continue
				}
				if len(call.Args) > 0 && types.ExprString(call.Args[0]) == types.ExprString(x.Lhs[i]) {
					selfAppend[call] = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					immediateLit[lit] = true
				}
			}
		case *ast.UnaryExpr:
			if lit, ok := x.X.(*ast.CompositeLit); ok && x.Op == token.AND {
				addrLit[lit] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			// Value struct/array literals live on the stack; the heap
			// allocations are slice and map literals and &T{}.
			if addrLit[x] {
				pass.Reportf(x.Pos(), "&-of composite literal allocates in //sim:hot function %s", fd.Name.Name)
			} else if tv, ok := info.Types[x]; ok && allocLit(tv.Type) {
				pass.Reportf(x.Pos(), "%s literal allocates in //sim:hot function %s", litKind(tv.Type), fd.Name.Name)
			}
		case *ast.FuncLit:
			if !immediateLit[x] {
				pass.Reportf(x.Pos(), "closure may escape and allocate in //sim:hot function %s", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, x, selfAppend, hot, declared)
		case *ast.AssignStmt:
			if x.Tok == token.ASSIGN {
				for i, rhs := range x.Rhs {
					if i < len(x.Lhs) && boxes(info, x.Lhs[i], rhs) {
						pass.Reportf(rhs.Pos(), "assignment boxes %s into an interface in //sim:hot function %s", types.ExprString(rhs), fd.Name.Name)
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && tv.Value == nil && isString(tv.Type) {
					pass.Reportf(x.Pos(), "string concatenation allocates in //sim:hot function %s", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// checkHotCall classifies one call inside a hot body: builtin allocators,
// fmt, interface-boxing conversions, and propagation to non-hot
// same-package callees.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool, hot map[*types.Func]bool, declared map[*types.Func]*ast.FuncDecl) {
	info := pass.Pkg.Info

	// Type conversion, not a call: T(x) boxes when T is an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxesType(info, tv.Type, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion boxes %s into an interface in //sim:hot function %s", types.ExprString(call.Args[0]), fd.Name.Name)
		}
		return
	}

	switch {
	case isBuiltin(info, call.Fun, "make"):
		pass.Reportf(call.Pos(), "make allocates in //sim:hot function %s", fd.Name.Name)
		return
	case isBuiltin(info, call.Fun, "new"):
		pass.Reportf(call.Pos(), "new allocates in //sim:hot function %s", fd.Name.Name)
		return
	case isBuiltin(info, call.Fun, "append"):
		if !selfAppend[call] {
			pass.Reportf(call.Pos(), "append may grow and allocate in //sim:hot function %s; use the self-append recycling form or preallocate", fd.Name.Name)
		}
		return
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && pkgNameOf(info, sel.X) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates in //sim:hot function %s", sel.Sel.Name, fd.Name.Name)
		return
	}

	// Propagation: a hot function may only call same-package declared
	// functions that are themselves annotated. Interface methods,
	// func-valued variables and cross-package calls are outside the
	// annotation set and are not checked here.
	callee := calleeFunc(info, call.Fun)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() != pass.Pkg.Types {
		return
	}
	if _, declaredHere := declared[callee]; declaredHere && !hot[callee] {
		pass.Reportf(call.Pos(), "//sim:hot function %s calls %s, which is not annotated //sim:hot", fd.Name.Name, callee.Name())
	}
}

// calleeFunc resolves a call's function expression to the declared
// *types.Func it names (generic instantiations resolve to their origin),
// or nil for func values, builtins and interface dispatch.
func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		return calleeFunc(info, x.X)
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// isBuiltin reports whether fun names the given universe builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	return ok && id.Name == name && info.Uses[id] == types.Universe.Lookup(name)
}

// boxes reports whether assigning rhs to lhs stores a concrete value into
// an interface, forcing a heap allocation for the boxed copy.
func boxes(info *types.Info, lhs, rhs ast.Expr) bool {
	ltv, ok := info.Types[lhs]
	if !ok {
		return false
	}
	return boxesType(info, ltv.Type, rhs)
}

// boxesType reports whether storing rhs into a value of type dst boxes a
// concrete value into an interface.
func boxesType(info *types.Info, dst types.Type, rhs ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	rtv, ok := info.Types[rhs]
	if !ok || rtv.Type == nil {
		return false
	}
	if rtv.IsNil() || types.IsInterface(rtv.Type) {
		return false
	}
	// Pointer-free word-sized values (small ints held in pointer-shaped
	// boxes) still allocate in the general case; report uniformly.
	return true
}

// allocLit reports whether a composite literal of type t heap-allocates
// its backing storage regardless of how the value is used.
func allocLit(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// litKind names the allocating literal kind for diagnostics.
func litKind(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
