package detlint

import (
	"go/ast"
	"strings"
)

// HotCover is the suite's self-check: hotalloc only guards what `//sim:hot`
// covers and sharedread's cross-domain mode only guards what `//sim:domain`
// covers, so an empty or misplaced annotation set silently turns those
// analyzers off. HotCover fails when a configured hot package (the engine
// cycle-loop packages) declares no annotated function, and flags any
// `//sim:hot` or `//sim:domain` comment that is not attached to a function
// declaration's doc block — a directive floating above a blank line or
// inside a body guards nothing.
var HotCover = &Analyzer{
	Name: "hotcover",
	Doc:  "the //sim:hot annotation set must be non-empty in engine packages, and //sim:hot///sim:domain directives attached to function declarations",
	Run:  runHotCover,
}

func runHotCover(pass *Pass) error {
	hot, declared := hotFuncs(pass.Pkg)

	// Comments legitimately carrying the directive: lines of a FuncDecl
	// doc block.
	attached := make(map[*ast.Comment]bool)
	//detlint:ordered builds a membership set; no output depends on visit order
	for _, fd := range declared {
		if fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			attached[c] = true
		}
	}
	for _, file := range pass.Pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if (text == HotAnnotation || text == DomainAnnotation) && !attached[c] {
					pass.Reportf(c.Pos(), "misplaced %s: the directive only takes effect as a line of a function declaration's doc comment", text)
				}
			}
		}
	}

	for _, p := range pass.Cfg.HotPackages {
		if pass.Pkg.Path != p {
			continue
		}
		if len(hot) == 0 {
			pass.Reportf(pass.Pkg.Files[0].Package, "package %s is configured as a hot package but declares no %s functions; the engine cycle loop must carry the annotation set", pass.Pkg.Path, HotAnnotation)
		}
	}
	return nil
}

// HotFunctionCount returns how many functions in pkg carry the //sim:hot
// annotation (the CLI reports this so CI shows the guarded surface).
func HotFunctionCount(pkg *Package) int {
	hot, _ := hotFuncs(pkg)
	return len(hot)
}
