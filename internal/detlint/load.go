package detlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path (e.g. repro/internal/sim).
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset maps AST positions back to file:line:column.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's per-expression facts.
	Info *types.Info

	waiverIdx map[string]map[int][]waiver
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// Load resolves the go-list patterns relative to dir, builds export data
// for every dependency via the go tool, and parses + type-checks each
// matched package with the standard gc importer reading that export data.
// It needs no module downloads: everything comes from the toolchain's
// build cache. Test files are not loaded — the suite analyzes shipped
// code, and testdata fixtures carry their own expectations.
func Load(dir string, patterns []string) ([]*Package, error) {
	all, err := goList(dir, append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(all))
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("detlint: no export data for %q", path)
		}
		return os.Open(file)
	}

	var pkgs []*Package
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("detlint: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("detlint: typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goList runs `go list -json` with the given extra args in dir and decodes
// the JSON stream.
func goList(dir string, args []string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("detlint: go list: %s", msg)
	}
	var out []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("detlint: decode go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
