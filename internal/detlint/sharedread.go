package detlint

import (
	"go/ast"
	"go/types"
)

// SharedRead enforces the read-only sharing contracts behind
// WithNetwork/WithRouteTable and the serve pool's Estimator reuse:
// campaign workers and sessions share one topo.Network and one compiled
// routing.RouteTable by pointer, so a post-construction write from any
// consumer is a data race and a cross-run determinism leak. The analyzer
// flags assignments (including op-assign, increment/decrement, and writes
// through index or dereference) to fields of the configured shared types
// from any package outside the configured constructor set. Pure label
// fields (display names carrying no structural or routed state) are
// exempt via Config.LabelFields.
var SharedRead = &Analyzer{
	Name: "sharedread",
	Doc:  "no writes to shared network/route-table state outside constructor packages",
	Run:  runSharedRead,
}

func runSharedRead(pass *Pass) error {
	for _, w := range pass.Cfg.SharedWriters {
		if pass.Pkg.Path == w {
			return nil
		}
	}
	shared := make(map[string]bool, len(pass.Cfg.SharedTypes))
	for _, t := range pass.Cfg.SharedTypes {
		shared[t] = true
	}
	labels := make(map[string]bool, len(pass.Cfg.LabelFields))
	for _, f := range pass.Cfg.LabelFields {
		labels[f] = true
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					checkSharedWrite(pass, shared, labels, lhs)
				}
			case *ast.IncDecStmt:
				checkSharedWrite(pass, shared, labels, x.X)
			}
			return true
		})
	}
	return nil
}

// checkSharedWrite reports when the written expression bottoms out in a
// field selection on one of the shared read-only types.
func checkSharedWrite(pass *Pass, shared, labels map[string]bool, lhs ast.Expr) {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			sel, ok := pass.Pkg.Info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				// Not a field selection: a package-qualified name or a
				// method value; follow the receiver side no further.
				return
			}
			named := derefNamed(sel.Recv())
			if named == nil {
				return
			}
			name := qualifiedName(named)
			if shared[name] && !labels[x.Sel.Name] {
				pass.Reportf(x.Pos(), "write to %s.%s outside its constructor packages: %s is shared read-only across workers (WithNetwork/WithRouteTable contract)", name, x.Sel.Name, named.Obj().Name())
				return
			}
			// The selected field may itself live inside a shared struct
			// further out (rare); keep unwrapping the receiver.
			lhs = x.X
		default:
			return
		}
	}
}
