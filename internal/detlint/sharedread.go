package detlint

import (
	"go/ast"
	"go/types"
)

// SharedRead enforces two read-only/exclusive-write sharing contracts.
//
// Cross-worker: campaign workers and serve sessions share one topo.Network
// and one compiled routing.RouteTable by pointer (WithNetwork /
// WithRouteTable / Estimator reuse), so a post-construction write from any
// consumer is a data race and a cross-run determinism leak. The analyzer
// flags assignments (including op-assign, increment/decrement, and writes
// through index or dereference) to fields of the configured shared types
// from any package outside the configured constructor set. Pure label
// fields (display names carrying no structural or routed state) are exempt
// via Config.LabelFields.
//
// Cross-domain: the engine's domain-parallel phases run //sim:domain
// functions concurrently, one per router domain, against engine state that
// is mostly partitioned but not entirely — link handshake state, the
// timing wheels and the Sim counters are reachable from every domain
// (Config.DomainSharedFields). A write to one of those fields inside a
// //sim:domain function is flagged unless the site carries a waiver
// stating why it is race-free: the write is on a link side owned
// exclusively by this domain in this phase, or the effect is staged in
// the domain's buffers and merged serially.
var SharedRead = &Analyzer{
	Name: "sharedread",
	Doc:  "no writes to shared network/route-table state outside constructors, nor to cross-domain engine state inside //sim:domain functions",
	Run:  runSharedRead,
}

func runSharedRead(pass *Pass) error {
	runDomainShared(pass)
	for _, w := range pass.Cfg.SharedWriters {
		if pass.Pkg.Path == w {
			return nil
		}
	}
	shared := make(map[string]bool, len(pass.Cfg.SharedTypes))
	for _, t := range pass.Cfg.SharedTypes {
		shared[t] = true
	}
	labels := make(map[string]bool, len(pass.Cfg.LabelFields))
	for _, f := range pass.Cfg.LabelFields {
		labels[f] = true
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					checkSharedWrite(pass, shared, labels, lhs)
				}
			case *ast.IncDecStmt:
				checkSharedWrite(pass, shared, labels, x.X)
			}
			return true
		})
	}
	return nil
}

// runDomainShared walks every //sim:domain function and flags writes to the
// configured cross-domain shared fields. Constructor-package membership is
// irrelevant here: the contract is about phase-concurrent code, wherever it
// lives.
func runDomainShared(pass *Pass) {
	if len(pass.Cfg.DomainSharedFields) == 0 {
		return
	}
	fields := make(map[string]bool, len(pass.Cfg.DomainSharedFields))
	for _, f := range pass.Cfg.DomainSharedFields {
		fields[f] = true
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !funcDocHas(fd, DomainAnnotation) || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						checkDomainWrite(pass, fields, lhs)
					}
				case *ast.IncDecStmt:
					checkDomainWrite(pass, fields, x.X)
				}
				return true
			})
		}
	}
}

// checkDomainWrite reports when the written expression bottoms out in one
// of the cross-domain shared fields.
func checkDomainWrite(pass *Pass, fields map[string]bool, lhs ast.Expr) {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			sel, ok := pass.Pkg.Info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return
			}
			named := derefNamed(sel.Recv())
			if named == nil {
				return
			}
			key := qualifiedName(named) + "." + x.Sel.Name
			if fields[key] {
				pass.Reportf(x.Pos(), "write to cross-domain shared field %s inside a %s function: domains run this phase concurrently — stage the effect per domain and merge serially, or waive with the exclusivity argument", key, DomainAnnotation)
				return
			}
			lhs = x.X
		default:
			return
		}
	}
}

// checkSharedWrite reports when the written expression bottoms out in a
// field selection on one of the shared read-only types.
func checkSharedWrite(pass *Pass, shared, labels map[string]bool, lhs ast.Expr) {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			sel, ok := pass.Pkg.Info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				// Not a field selection: a package-qualified name or a
				// method value; follow the receiver side no further.
				return
			}
			named := derefNamed(sel.Recv())
			if named == nil {
				return
			}
			name := qualifiedName(named)
			if shared[name] && !labels[x.Sel.Name] {
				pass.Reportf(x.Pos(), "write to %s.%s outside its constructor packages: %s is shared read-only across workers (WithNetwork/WithRouteTable contract)", name, x.Sel.Name, named.Obj().Name())
				return
			}
			// The selected field may itself live inside a shared struct
			// further out (rare); keep unwrapping the receiver.
			lhs = x.X
		default:
			return
		}
	}
}
