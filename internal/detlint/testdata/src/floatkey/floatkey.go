// Package floatkey is the golden fixture for the floatkey analyzer.
package floatkey

type spec struct {
	Rate float64
	Name string
}

type intSpec struct {
	N int
}

type nested struct {
	S spec
}

type rateKey float64

func mapKeys() {
	var a map[float64]int      // want "floating-point map key"
	b := map[spec]bool{}       // want "floating-point map key"
	c := make(map[rateKey]int) // want "floating-point map key"
	var d map[[2]float64]int   // want "floating-point map key"
	var e map[string]float64   // float value, not key: no finding
	var f map[intSpec]int      // no float component: no finding
	var g map[*spec]int        // pointer key compares by address: no finding
	_, _, _, _, _, _, _ = a, b, c, d, e, f, g
}

func compares(x, y spec, p, q intSpec, n, m nested) bool {
	if x == y { // want "on float-bearing struct"
		return true
	}
	if n != m { // want "on float-bearing struct"
		return false
	}
	return p == q // no float component: no finding
}

func floatScalarCompare(a, b float64) bool {
	return a == b // the scalar compare is explicit at the site: no finding
}

func waived(x, y spec) bool {
	//detlint:allow floatkey fixture compares fully-pinned literals
	return x == y
}
