// Package rngsource is the golden fixture for the rngsource analyzer.
package rngsource

import (
	"math/rand"
	"time"
)

func globalDraws() int {
	n := rand.Intn(10)                 // want "global math/rand.Intn"
	f := rand.Float64()                // want "global math/rand.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand.Shuffle"
	return n + int(f)
}

func seededIsFine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) + int(rng.Float64()*10)
}

func typeReferencesAreFine(rng *rand.Rand, d time.Duration) *rand.Zipf {
	_ = d
	return rand.NewZipf(rng, 1.1, 1.0, 100)
}

func wallClock() time.Time {
	t := time.Now()   // want "time.Now reads the wall clock"
	_ = time.Since(t) // want "time.Since reads the wall clock"
	return t
}

func clockFuncValue() func() time.Time {
	return time.Now // want "time.Now reads the wall clock"
}

func waived() time.Time {
	//detlint:allow rngsource telemetry timestamp outside any simulated path
	return time.Now()
}

func waiverNeedsReason() time.Time {
	//detlint:allow rngsource
	return time.Now() // want "time.Now reads the wall clock"
}
