// Package empty is configured as a hot package but annotates nothing, so
// hotcover must flag the empty annotation set.
package empty // want "declares no //sim:hot functions"

func cold() {}

var _ = cold
