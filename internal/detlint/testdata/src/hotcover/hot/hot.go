// Package hot carries a valid //sim:hot annotation set plus misplaced
// directives for the hotcover fixture.
package hot

//sim:hot
func annotated() {}

// step advances the fixture loop.
//
//sim:hot
func annotatedWithDoc() { annotated() }

/* want "misplaced //sim:hot" */ //sim:hot
type notAFunc int

func body() int {
	/* want "misplaced //sim:hot" */ //sim:hot
	return int(notAFunc(0))
}

// stepDomain runs per domain in the fixture's parallel phase.
//
//sim:domain
func stepDomain() { annotated() }

/* want "misplaced //sim:domain" */ //sim:domain
var notAFuncEither int
