// Package maporder is the golden fixture for the maporder analyzer.
package maporder

import (
	"slices"
	"sort"
)

func plainRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

func keyOnlyRangeUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

func sortedKeysIdiom(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysSlicesIdiom(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func sortedWrongSlice(m map[string]int) []string {
	var keys, other []string
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys
}

func sortBeforeNotAfter(m map[string]int) []string {
	var keys []string
	sort.Strings(keys)
	for k := range m { // want "range over map"
		keys = append(keys, k)
	}
	return keys
}

func waivedInline(m map[string]int) int {
	n := 0
	for range m { //detlint:ordered commutative count; order cannot reach the result
		n++
	}
	return n
}

func waivedAbove(m map[string]int) int {
	n := 0
	//detlint:ordered commutative count; order cannot reach the result
	for range m {
		n++
	}
	return n
}

// A reason-less directive does not waive: every exception must be
// explained in place.
func waiverWithoutReason(m map[string]int) int {
	n := 0
	//detlint:ordered
	for range m { // want "range over map"
		n++
	}
	return n
}

func genericAllowWaiver(m map[string]int) int {
	n := 0
	//detlint:allow maporder commutative count; order cannot reach the result
	for range m {
		n++
	}
	return n
}

func wrongAnalyzerWaiver(m map[string]int) int {
	n := 0
	//detlint:allow hotalloc this waiver names another analyzer
	for range m { // want "range over map"
		n++
	}
	return n
}

func rangeOverSlice(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

type bag map[string]int

func namedMapType(b bag) int {
	n := 0
	for range b { // want "range over map"
		n++
	}
	return n
}
