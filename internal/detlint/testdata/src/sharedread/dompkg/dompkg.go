// Package dompkg exercises sharedread's cross-domain mode: inside
// //sim:domain functions, writes to the configured DomainSharedFields are
// flagged unless waived with the exclusivity argument; the same writes in
// unannotated (serial) code are fine.
package dompkg

type link struct {
	pending int
	inFly   [2]int
}

type engine struct {
	links []link
	count int64
	local int64
}

// stepLink runs once per domain, concurrently, during the link phase.
//
//sim:domain
func (e *engine) stepLink(li int) {
	l := &e.links[li]
	l.pending-- // want "write to cross-domain shared field sharedread/dompkg.link.pending"
	//detlint:allow sharedread receiver-exclusive: one receiving router per directed link
	l.inFly[0]--
	e.count++ // want "write to cross-domain shared field sharedread/dompkg.engine.count"
	e.local++ // not configured as shared: no finding
}

// mergeSerial replays staged effects on the main goroutine; it is not
// annotated, so the same writes are out of the cross-domain contract.
func (e *engine) mergeSerial() {
	e.links[0].pending--
	e.count++
}
