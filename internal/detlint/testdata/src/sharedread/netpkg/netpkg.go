// Package netpkg declares the shared read-only fixture type, standing in
// for the repository's topo.Network.
package netpkg

// Network is shared read-only after construction; only this package (the
// configured constructor set) may write its fields.
type Network struct {
	Name string
	N    int
	Adj  [][]int
}

// New builds a Network. Constructor-package writes are unrestricted.
func New(n int) *Network {
	net := &Network{N: n}
	net.Adj = make([][]int, n)
	net.Name = "fixture"
	return net
}
