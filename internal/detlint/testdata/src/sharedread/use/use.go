// Package use exercises consumer-side writes to the shared type.
package use

import "sharedread/netpkg"

type local struct{ N int }

func mutate(net *netpkg.Network) {
	net.N = 5              // want "write to sharedread/netpkg.Network.N outside"
	net.Adj[0] = nil       // want "write to sharedread/netpkg.Network.Adj outside"
	net.Adj[1][2] = 3      // want "write to sharedread/netpkg.Network.Adj outside"
	net.N++                // want "write to sharedread/netpkg.Network.N outside"
	net.Name = "relabeled" // label field carries no structural state: no finding
}

func read(net *netpkg.Network) int {
	return net.N + len(net.Adj)
}

func localWrite(l *local) {
	l.N = 1 // not a shared type: no finding
}

func waived(net *netpkg.Network) {
	//detlint:allow sharedread fixture mutates a private clone
	net.N = 9
}
