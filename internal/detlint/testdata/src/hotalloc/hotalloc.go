// Package hotalloc is the golden fixture for the hotalloc analyzer.
package hotalloc

import "fmt"

type iface interface{ M() }

type impl struct{ x int }

func (impl) M() {}

//sim:hot
func hotMake(n int) []int {
	return make([]int, n) // want "make allocates"
}

//sim:hot
func hotNew() *int {
	return new(int) // want "new allocates"
}

//sim:hot
func hotAddrLit() *impl {
	return &impl{} // want "&-of composite literal allocates"
}

//sim:hot
func hotSliceLit() []int {
	return []int{1, 2} // want "slice literal allocates"
}

//sim:hot
func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // want "map literal allocates"
}

//sim:hot
func hotValueLit() impl {
	return impl{x: 1} // value literal stays on the stack: no finding
}

//sim:hot
func hotSelfAppend(xs []int, v int) []int {
	xs = append(xs, v) // self-append recycling form: no finding
	return xs
}

//sim:hot
func hotGrowingAppend(xs, ys []int) []int {
	zs := append(xs, ys...) // want "append may grow"
	return zs
}

//sim:hot
func hotFmt(v int) {
	fmt.Println(v) // want "fmt.Println allocates"
}

//sim:hot
func hotConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//sim:hot
func hotConstConcat() string {
	return "a" + "b" // constant-folded at compile time: no finding
}

//sim:hot
func hotImmediateClosure(xs []int) int {
	total := 0
	forEach(xs, func(v int) { total += v }) // immediate call argument: no finding
	return total
}

//sim:hot
func forEach(xs []int, f func(int)) {
	for _, v := range xs {
		f(v)
	}
}

//sim:hot
func hotEscapingClosure() func() int {
	n := 0
	f := func() int { n++; return n } // want "closure may escape"
	return f
}

//sim:hot
func hotBoxAssign(v impl) {
	var i iface
	i = v // want "assignment boxes v into an interface"
	_ = i
}

//sim:hot
func hotBoxConvert(v impl) iface {
	return iface(v) // want "conversion boxes v into an interface"
}

//sim:hot
func hotNilAssign() {
	var i iface
	i = nil // nil stores no concrete value: no finding
	_ = i
}

//sim:hot
func hotIfaceToIface(i iface) any {
	var a any
	a = i // interface-to-interface carries the existing box: no finding
	return a
}

func coldHelper(v int) int { return v + 1 }

//sim:hot
func hotHelper(v int) int { return v - 1 }

// Annotation propagation: the //sim:hot set must be closed over the
// same-package call graph.

//sim:hot
func hotCallsCold(v int) int {
	return coldHelper(v) // want "calls coldHelper, which is not annotated"
}

//sim:hot
func hotCallsHot(v int) int {
	return hotHelper(v) // annotated callee: no finding
}

//sim:hot
func hotCallsConcreteColdMethod(v impl) {
	v.M() // want "calls M, which is not annotated"
}

//sim:hot
func hotCallsInterfaceMethod(i iface) {
	i.M() // interface dispatch is outside the annotation set: no finding
}

//sim:hot
func hotWaivedMake(n int) []int {
	//detlint:allow hotalloc one-time growth amortised across the run
	return make([]int, n)
}

func coldMake(n int) []int {
	return make([]int, n) // not annotated: hotalloc does not apply
}
