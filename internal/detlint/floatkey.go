package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatKey guards the canonical-encoding and PointKey paths against
// floating-point identity. A float map key (or a `==` over a float-bearing
// spec struct) makes equality depend on the bit pattern a value happened
// to arrive with — +0 vs -0 compare equal but hash apart over history, NaN
// never matches itself, and a value recomputed through a different
// arithmetic route may differ in the last ulp. Canonical bytes and store
// keys must instead compare through the canonical JSON encoding, which
// fixes one representation per value.
var FloatKey = &Analyzer{
	Name: "floatkey",
	Doc:  "no floating-point map keys, and no ==/!= over float-bearing structs",
	Run:  runFloatKey,
}

func runFloatKey(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.MapType:
				tv, ok := info.Types[x.Key]
				if ok && tv.Type != nil && hasFloat(tv.Type, nil) {
					pass.Reportf(x.Key.Pos(), "floating-point map key %s: float identity is representation-dependent; key by the canonical encoding instead", types.ExprString(x.Key))
				}
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				tv, ok := info.Types[x.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isStruct := tv.Type.Underlying().(*types.Struct); isStruct && hasFloat(tv.Type, nil) {
					pass.Reportf(x.Pos(), "%s on float-bearing struct %s: compare through the canonical encoding instead", x.Op, tv.Type)
				}
			}
			return true
		})
	}
	return nil
}

// hasFloat reports whether t contains a floating-point or complex
// component reachable through structs, arrays, named types and aliases.
// Pointers, slices, maps, channels, funcs and interfaces are boundaries:
// they compare by reference, not by float value.
func hasFloat(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	switch x := t.(type) {
	case *types.Basic:
		return x.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Named, *types.Alias:
		if seen == nil {
			seen = make(map[types.Type]bool)
		}
		seen[t] = true
		return hasFloat(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if hasFloat(x.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return hasFloat(x.Elem(), seen)
	}
	return false
}
