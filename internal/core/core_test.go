package core

import (
	"testing"
	"testing/quick"

	"repro/internal/topo"
)

func mustSN(t testing.TB, q, p int) *SlimNoC {
	t.Helper()
	s, err := New(Params{Q: q, P: p})
	if err != nil {
		t.Fatalf("New(q=%d,p=%d): %v", q, p, err)
	}
	return s
}

func mustNet(t testing.TB, s *SlimNoC, l Layout) *topo.Network {
	t.Helper()
	n, err := s.Network(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTable2Structure verifies the structural parameters of every Table 2
// configuration: router count Nr = 2q^2 and network radix k' as listed.
func TestTable2Structure(t *testing.T) {
	cases := []struct{ q, kp, nr int }{
		{2, 3, 8}, {3, 5, 18}, {4, 6, 32}, {5, 7, 50},
		{7, 11, 98}, {8, 12, 128}, {9, 13, 162},
	}
	for _, c := range cases {
		s := mustSN(t, c.q, 1)
		if s.KPrime != c.kp {
			t.Errorf("q=%d: k' = %d, want %d", c.q, s.KPrime, c.kp)
		}
		if s.Nr() != c.nr {
			t.Errorf("q=%d: Nr = %d, want %d", c.q, s.Nr(), c.nr)
		}
		for i, a := range s.Adj {
			if len(a) != c.kp {
				t.Fatalf("q=%d: router %d has degree %d, want %d", c.q, i, len(a), c.kp)
			}
		}
	}
}

// TestDiameterTwo verifies the headline property: diameter exactly 2 (the
// network is not fully connected, so diameter cannot be 1) for every
// evaluation-relevant q.
func TestDiameterTwo(t *testing.T) {
	for _, q := range []int{3, 4, 5, 7, 8, 9, 11, 13} {
		s := mustSN(t, q, 1)
		n := mustNet(t, s, LayoutBasic)
		if d := n.Diameter(); d != 2 {
			t.Errorf("q=%d: diameter = %d, want 2", q, d)
		}
	}
}

// TestPaperDesigns validates §3.4: SN-S (N=200, Nr=50, k'=7, p=4),
// SN-L (N=1296, Nr=162, k'=13, p=8), SN-1024 (N=1024, Nr=128, k'=12), and
// SN-54.
func TestPaperDesigns(t *testing.T) {
	cases := []struct {
		d              Design
		n, nr, kp, rad int
	}{
		{SNS(), 200, 50, 7, 11},
		{SNL(), 1296, 162, 13, 21},
		{SN1024(), 1024, 128, 12, 20},
		{SN54(), 54, 18, 5, 8},
	}
	for _, c := range cases {
		s, net, err := c.d.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.d.Name, err)
		}
		if s.N() != c.n || net.N() != c.n {
			t.Errorf("%s: N = %d/%d, want %d", c.d.Name, s.N(), net.N(), c.n)
		}
		if s.Nr() != c.nr {
			t.Errorf("%s: Nr = %d, want %d", c.d.Name, s.Nr(), c.nr)
		}
		if s.KPrime != c.kp {
			t.Errorf("%s: k' = %d, want %d", c.d.Name, s.KPrime, c.kp)
		}
		if got := net.RouterRadix(); got != c.rad {
			t.Errorf("%s: k = %d, want %d", c.d.Name, got, c.rad)
		}
		if d := net.Diameter(); d != 2 {
			t.Errorf("%s: diameter = %d, want 2", c.d.Name, d)
		}
	}
}

// TestSubgroupStructure verifies the §2.1 structure: subgroups of the same
// type are never directly connected across different subgroup IDs, and every
// pair of opposite-type subgroups is connected by exactly q links.
func TestSubgroupStructure(t *testing.T) {
	s := mustSN(t, 5, 1)
	q := 5
	linkCount := make(map[[4]int]int) // (G,a)->(G',a') link counts
	for i, a := range s.Adj {
		li := s.LabelOf(i)
		for _, j := range a {
			lj := s.LabelOf(j)
			if li.G == lj.G && li.A != lj.A {
				t.Fatalf("link between same-type subgroups %v-%v", li, lj)
			}
			if li.G != lj.G || li.A != lj.A {
				key := [4]int{li.G, li.A, lj.G, lj.A}
				linkCount[key]++
			}
		}
	}
	for a := 0; a < q; a++ {
		for m := 0; m < q; m++ {
			if got := linkCount[[4]int{0, a, 1, m}]; got != q {
				t.Errorf("subgroups (0,%d)-(1,%d) share %d links, want %d", a, m, got, q)
			}
		}
	}
}

// TestIndexLabelRoundTrip property-checks Index/LabelOf.
func TestIndexLabelRoundTrip(t *testing.T) {
	s := mustSN(t, 9, 8)
	prop := func(raw uint32) bool {
		i := int(raw) % s.Nr()
		return s.Index(s.LabelOf(i)) == i
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestGeneratorSetSymmetry: X and X' must be symmetric (closed under
// negation) and zero-free — otherwise the adjacency would not be undirected.
func TestGeneratorSetSymmetry(t *testing.T) {
	for _, q := range []int{3, 4, 5, 7, 8, 9, 11, 13} {
		s := mustSN(t, q, 1)
		for _, set := range [][]int{s.X, s.Xp} {
			in := make(map[int]bool)
			for _, e := range set {
				in[e] = true
			}
			for _, e := range set {
				if e == 0 {
					t.Fatalf("q=%d: generator set contains 0", q)
				}
				if !in[s.Field.Neg(e)] {
					t.Fatalf("q=%d: set not symmetric: -%d missing", q, e)
				}
			}
			if len(set) != (q-s.U)/2 {
				t.Fatalf("q=%d: |set| = %d, want %d", q, len(set), (q-s.U)/2)
			}
		}
	}
}

// TestMooreBoundProximity: SN should attach at least ~50% of the Moore bound
// for diameter 2 (the MMS graphs achieve asymptotically ~8/9 of it; small
// instances are lower but must stay well above random graphs).
func TestMooreBoundProximity(t *testing.T) {
	for _, q := range []int{5, 7, 9, 11, 13} {
		s := mustSN(t, q, 1)
		mb := 1 + s.KPrime*s.KPrime // Moore bound for D=2: k^2+1
		frac := float64(s.Nr()) / float64(mb)
		if frac < 0.5 {
			t.Errorf("q=%d: Nr=%d is %.2f of Moore bound %d, want >= 0.5", q, s.Nr(), frac, mb)
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(Params{Q: 6, P: 1}); err == nil {
		t.Error("q=6 (not a prime power) should fail")
	}
	if _, err := New(Params{Q: 1, P: 1}); err == nil {
		t.Error("q=1 should fail")
	}
	if _, err := New(Params{Q: 5, P: 0}); err == nil {
		t.Error("p=0 should fail")
	}
}

func TestKPrimeFor(t *testing.T) {
	cases := map[int]int{2: 3, 3: 5, 4: 6, 5: 7, 7: 11, 8: 12, 9: 13, 11: 17, 13: 19}
	for q, want := range cases {
		got, err := KPrimeFor(q)
		if err != nil {
			t.Fatalf("KPrimeFor(%d): %v", q, err)
		}
		if got != want {
			t.Errorf("KPrimeFor(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestEnumerateConfigsMatchesTable2(t *testing.T) {
	rows := EnumerateConfigs(1300)
	// Key rows from Table 2 (k', p, N, Nr, q).
	want := []ConfigRow{
		{KPrime: 3, P: 2, N: 16, Nr: 8, Q: 2},
		{KPrime: 5, P: 3, N: 54, Nr: 18, Q: 3},
		{KPrime: 6, P: 3, N: 96, Nr: 32, Q: 4},
		{KPrime: 6, P: 4, N: 128, Nr: 32, Q: 4},
		{KPrime: 7, P: 4, N: 200, Nr: 50, Q: 5},
		{KPrime: 11, P: 6, N: 588, Nr: 98, Q: 7},
		{KPrime: 12, P: 8, N: 1024, Nr: 128, Q: 8},
		{KPrime: 13, P: 8, N: 1296, Nr: 162, Q: 9},
	}
	find := func(kp, p int) *ConfigRow {
		for i := range rows {
			if rows[i].KPrime == kp && rows[i].P == p {
				return &rows[i]
			}
		}
		return nil
	}
	for _, w := range want {
		got := find(w.KPrime, w.P)
		if got == nil {
			t.Errorf("missing Table 2 row k'=%d p=%d", w.KPrime, w.P)
			continue
		}
		if got.N != w.N || got.Nr != w.Nr || got.Q != w.Q {
			t.Errorf("row k'=%d p=%d: N/Nr/q = %d/%d/%d, want %d/%d/%d",
				w.KPrime, w.P, got.N, got.Nr, got.Q, w.N, w.Nr, w.Q)
		}
	}
	// Flags: N=1024 is bold (power of two); q=9 rows are grey (square group
	// grid); no row exceeds 1300 nodes.
	for _, r := range rows {
		if r.N > 1300 {
			t.Errorf("row with N=%d exceeds the limit", r.N)
		}
		if r.N == 1024 && !r.PowerOfTwoN {
			t.Error("N=1024 should be flagged power-of-two")
		}
		if r.Q == 9 && !r.SquareGroups {
			t.Error("q=9 should be flagged square-groups")
		}
		if r.Q == 8 && r.SquareGroups {
			t.Error("q=8 should not be flagged square-groups")
		}
	}
	// Table 2 has 12 non-prime and 12 prime rows.
	np, pr := 0, 0
	for _, r := range rows {
		if r.NonPrime {
			np++
		} else {
			pr++
		}
	}
	if np != 12 || pr != 12 {
		t.Errorf("got %d non-prime and %d prime rows, Table 2 has 12/12", np, pr)
	}
}

func TestFromNetworkSize(t *testing.T) {
	cases := []struct{ n, q, p int }{
		{200, 5, 4},
		{1296, 9, 8},
		{1024, 8, 8},
		{54, 3, 3},
	}
	for _, c := range cases {
		got, err := FromNetworkSize(c.n)
		if err != nil {
			t.Fatalf("FromNetworkSize(%d): %v", c.n, err)
		}
		if got.Q != c.q || got.P != c.p {
			t.Errorf("FromNetworkSize(%d) = q%d p%d, want q%d p%d", c.n, got.Q, got.P, c.q, c.p)
		}
	}
	if _, err := FromNetworkSize(17); err == nil {
		t.Error("FromNetworkSize(17) should fail")
	}
}

// TestInterGroupCables: groups (merged opposite-type subgroup pairs) form a
// fully connected graph with 2(q-1)... the paper says 2(q-1) cables per
// group pair for prime q designs; verify connectivity is uniform.
func TestInterGroupCablesUniform(t *testing.T) {
	s := mustSN(t, 5, 1)
	q := 5
	// Group g = subgroup pair (0,g) ∪ (1,g).
	group := func(i int) int { return s.LabelOf(i).A }
	count := map[[2]int]int{}
	for i, a := range s.Adj {
		for _, j := range a {
			gi, gj := group(i), group(j)
			if gi != gj {
				key := [2]int{minInt(gi, gj), maxInt(gi, gj)}
				count[key]++
			}
		}
	}
	if len(count) != q*(q-1)/2 {
		t.Fatalf("connected group pairs = %d, want %d", len(count), q*(q-1)/2)
	}
	first := -1
	for k, c := range count {
		if c%2 != 0 {
			t.Fatalf("odd directed count for pair %v", k)
		}
		if first < 0 {
			first = c
		}
		if c != first {
			t.Fatalf("non-uniform inter-group cabling: %d vs %d", c, first)
		}
	}
}

func BenchmarkNewSNL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(Params{Q: 9, P: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLargeQConstruction verifies generator-set search across the full
// sweep range used by Fig. 5 (1 <= q <= 37): every prime power must yield a
// verified diameter-2 graph. Skipped in -short mode.
func TestLargeQConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("large-q sweep")
	}
	for _, q := range []int{11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32, 37} {
		q := q
		t.Run(itoa2(q), func(t *testing.T) {
			s, err := New(Params{Q: q, P: 1})
			if err != nil {
				t.Fatalf("q=%d: %v", q, err)
			}
			// Degree check is built into construction; verify diameter via
			// the network for a couple of representatives only (BFS on
			// Nr=2738 x 55 edges is fine).
			if q <= 17 {
				n := mustNet(t, s, LayoutSubgroup)
				if d := n.Diameter(); d != 2 {
					t.Errorf("q=%d diameter = %d", q, d)
				}
			}
		})
	}
}

func itoa2(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
