package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRTT(t *testing.T) {
	m := DefaultBufferModel()
	// Tij = 2*ceil(d/H) + 3 with H=1.
	cases := map[int]int{1: 5, 2: 7, 5: 13, 10: 23}
	for d, want := range cases {
		if got := m.RTT(d); got != want {
			t.Errorf("RTT(%d) = %d, want %d", d, got, want)
		}
	}
	sm := m.WithSMART()
	// H=9: distances 1..9 take one link cycle.
	for d := 1; d <= 9; d++ {
		if got := sm.RTT(d); got != 5 {
			t.Errorf("SMART RTT(%d) = %d, want 5", d, got)
		}
	}
	if got := sm.RTT(10); got != 7 {
		t.Errorf("SMART RTT(10) = %d, want 7", got)
	}
}

// TestSMARTReducesRTTQuick: SMART RTT is never larger and RTT is monotone in
// distance.
func TestSMARTReducesRTTQuick(t *testing.T) {
	m := DefaultBufferModel()
	sm := m.WithSMART()
	prop := func(raw uint16) bool {
		d := int(raw)%60 + 1
		if sm.RTT(d) > m.RTT(d) {
			return false
		}
		return m.RTT(d+1) >= m.RTT(d) && sm.RTT(d+1) >= sm.RTT(d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEdgeBufferFlits(t *testing.T) {
	m := DefaultBufferModel() // 2 VCs, 1 flit/cycle
	if got := m.EdgeBufferFlits(1); got != 10 {
		t.Errorf("EdgeBufferFlits(1) = %d, want 10 (RTT 5 x 2 VCs)", got)
	}
	if got := m.EdgeBufferFlits(5); got != 26 {
		t.Errorf("EdgeBufferFlits(5) = %d, want 26", got)
	}
}

// TestLayoutReducesTotalBuffers: sn_subgr/sn_gr reduce Δeb versus sn_basic
// (the paper reports ≈18% for sn_gr on the sweep).
func TestLayoutReducesTotalBuffers(t *testing.T) {
	m := DefaultBufferModel()
	for _, q := range []int{5, 9} {
		s := mustSN(t, q, 1)
		basic := m.TotalEdgeBuffers(mustNet(t, s, LayoutBasic))
		subgr := m.TotalEdgeBuffers(mustNet(t, s, LayoutSubgroup))
		if subgr >= basic {
			t.Errorf("q=%d: Δeb subgr=%d not below basic=%d", q, subgr, basic)
		}
	}
}

// TestSMARTReducesBuffers: with SMART, total edge buffers shrink.
func TestSMARTReducesBuffers(t *testing.T) {
	s := mustSN(t, 9, 8)
	n := mustNet(t, s, LayoutSubgroup)
	m := DefaultBufferModel()
	if sm := m.WithSMART(); sm.TotalEdgeBuffers(n) >= m.TotalEdgeBuffers(n) {
		t.Error("SMART should reduce Δeb")
	}
}

// TestCentralBufferIndependentOfWires: Δcb does not depend on layout (it is
// a function of Nr, k' and |VC| only) — the §3.3.1 observation that CBs give
// the lowest and layout-independent buffer budget.
func TestCentralBufferIndependentOfWires(t *testing.T) {
	s := mustSN(t, 5, 4)
	m := DefaultBufferModel()
	a := m.TotalCentralBuffers(mustNet(t, s, LayoutBasic), 20)
	b := m.TotalCentralBuffers(mustNet(t, s, LayoutSubgroup), 20)
	if a != b {
		t.Errorf("Δcb differs across layouts: %d vs %d", a, b)
	}
	// Formula check: Nr*(δcb + 2k'|VC|) = 50*(20+2*7*2) = 50*48.
	if a != 50*48 {
		t.Errorf("Δcb = %d, want %d", a, 50*48)
	}
}

// TestCBBeatsEBForLargeNets: with SMART, central buffers use less space than
// edge buffers for the large design (Fig. 5c shows CBR clearly below EB
// curves at scale).
func TestCBBeatsEBForLargeNets(t *testing.T) {
	s := mustSN(t, 9, 8)
	n := mustNet(t, s, LayoutSubgroup)
	m := DefaultBufferModel().WithSMART()
	cb := m.TotalCentralBuffers(n, 20)
	eb := m.TotalEdgeBuffers(n)
	if cb >= eb {
		t.Errorf("CBR-20 Δcb=%d should be below Δeb=%d for SN-L", cb, eb)
	}
}

func TestCostOf(t *testing.T) {
	s := mustSN(t, 5, 4)
	n := mustNet(t, s, LayoutSubgroup)
	c := CostOf(n, DefaultBufferModel(), 20)
	if c.M <= 0 || c.TotalEB <= 0 || c.TotalCB <= 0 || c.MaxWires <= 0 {
		t.Errorf("degenerate cost: %+v", c)
	}
}

// TestDeltaScaling checks Δeb = Θ(N·∛N) from Theorem 1: the exponent of Δeb
// growth between successive sizes should be near 4/3.
func TestDeltaScaling(t *testing.T) {
	m := DefaultBufferModel()
	// Theorem 1 states Δ = Θ(N·∛N) for N at the ideal concentration, i.e.
	// N ∝ q^3, so Δ ∝ q^4: the growth exponent in q should approach 4.
	type pt struct{ q, d float64 }
	var pts []pt
	for _, q := range []int{5, 9, 13} {
		s := mustSN(t, q, 1)
		net := mustNet(t, s, LayoutSubgroup)
		pts = append(pts, pt{float64(q), float64(m.TotalEdgeBuffers(net))})
	}
	for i := 1; i < len(pts); i++ {
		e := (math.Log(pts[i].d) - math.Log(pts[i-1].d)) / (math.Log(pts[i].q) - math.Log(pts[i-1].q))
		if e < 3.0 || e > 4.8 {
			t.Errorf("Δeb growth exponent in q = %.2f outside [3.0, 4.8] (want ≈4)", e)
		}
	}
}
