// Buffer-size and cost models of §3.2.2 and §3.2.3.

package core

import "repro/internal/topo"

// BufferModel captures the parameters of the edge-buffer size equation
// δij = Tij * b * |VC| / L (§3.2.2). FlitsPerCycle is b/L: the number of
// flits one link delivers per cycle (1 for the paper's 128-bit links).
type BufferModel struct {
	VCs           int     // |VC|: virtual channels per physical link
	FlitsPerCycle float64 // b / L
	H             int     // grid hops traversed per link cycle (1, or ~9 with SMART)
}

// DefaultBufferModel matches the paper's evaluation setup: 2 VCs, one flit
// per cycle, no SMART.
func DefaultBufferModel() BufferModel {
	return BufferModel{VCs: 2, FlitsPerCycle: 1, H: 1}
}

// WithSMART returns a copy of the model with SMART links enabled at the
// paper's H = 9 (45 nm, 1 GHz; §5.1).
func (m BufferModel) WithSMART() BufferModel {
	m.H = 9
	return m
}

// RTT returns Tij in cycles for a wire of the given Manhattan length:
// 2*ceil(dist/H) + 3 (two cycles of router processing plus one serialization
// cycle; §3.2.2).
func (m BufferModel) RTT(dist int) int {
	h := m.H
	if h < 1 {
		h = 1
	}
	return 2*((dist+h-1)/h) + 3
}

// EdgeBufferFlits returns δij for a single edge buffer on a wire of the
// given Manhattan length, rounded up to whole flits.
func (m BufferModel) EdgeBufferFlits(dist int) int {
	size := float64(m.RTT(dist)) * m.FlitsPerCycle * float64(m.VCs)
	return int(size + 0.999999)
}

// TotalEdgeBuffers returns Δeb (Eq. 5): the sum of δij over all directed
// links, i.e. over every input buffer in the network.
func (m BufferModel) TotalEdgeBuffers(n *topo.Network) int {
	total := 0
	for i := 0; i < n.Nr; i++ {
		for _, j := range n.Adj[i] {
			total += m.EdgeBufferFlits(topo.ManhattanDist(n.Coords[i], n.Coords[j]))
		}
	}
	return total
}

// PerRouterEdgeBuffers returns Δeb / Nr, the average per-router buffer space
// plotted in Fig. 5b-c.
func (m BufferModel) PerRouterEdgeBuffers(n *topo.Network) float64 {
	return float64(m.TotalEdgeBuffers(n)) / float64(n.Nr)
}

// TotalCentralBuffers returns Δcb (Eq. 6) for central-buffer routers with a
// CB of cbFlits plus per-VC I/O staging (2 k' |VC| per router).
func (m BufferModel) TotalCentralBuffers(n *topo.Network, cbFlits int) int {
	return n.Nr * (cbFlits + 2*n.NetworkRadix()*m.VCs)
}

// PerRouterCentralBuffers returns Δcb / Nr.
func (m BufferModel) PerRouterCentralBuffers(n *topo.Network, cbFlits int) float64 {
	return float64(m.TotalCentralBuffers(n, cbFlits)) / float64(n.Nr)
}

// Cost summarises the §3.2.3 cost model for one placed network: the average
// wire length M (Eq. 4) and the total buffer sizes under edge and central
// buffering.
type Cost struct {
	M        float64 // average Manhattan wire length, grid hops
	TotalEB  int     // Δeb, flits
	TotalCB  int     // Δcb, flits
	MaxWires int     // max W over grid cells (Eq. 3 left side)
}

// CostOf evaluates the cost model on a placed network. cbFlits is the
// central-buffer capacity used for Δcb (the paper analyses 20 and 40).
func CostOf(n *topo.Network, m BufferModel, cbFlits int) Cost {
	return Cost{
		M:        n.AvgWireLength(),
		TotalEB:  m.TotalEdgeBuffers(n),
		TotalCB:  m.TotalCentralBuffers(n, cbFlits),
		MaxWires: MaxWireCrossing(n),
	}
}
