package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/topo"
)

// TestCoordinatesBijective: every layout must place routers on distinct
// cells.
func TestCoordinatesBijective(t *testing.T) {
	for _, q := range []int{3, 4, 5, 8, 9} {
		s := mustSN(t, q, 1)
		for _, l := range Layouts() {
			coords, err := s.Coordinates(l, 42)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[topo.Coord]int)
			for i, c := range coords {
				if c.X < 1 || c.Y < 1 {
					t.Fatalf("q=%d %s: coordinate %v not 1-indexed", q, l, c)
				}
				if prev, dup := seen[c]; dup {
					t.Fatalf("q=%d %s: routers %d and %d share cell %v", q, l, prev, i, c)
				}
				seen[c] = i
			}
		}
	}
}

// TestRectangularLayouts: basic, subgroup and rand use a q x 2q die.
func TestRectangularLayouts(t *testing.T) {
	s := mustSN(t, 5, 4)
	for _, l := range []Layout{LayoutBasic, LayoutSubgroup, LayoutRand} {
		n := mustNet(t, s, l)
		x, y := n.GridDims()
		if x != 5 || y != 10 {
			t.Errorf("%s: die is %dx%d, want 5x10", l, x, y)
		}
	}
}

// TestGroupLayoutNearSquare: the group layout of SN-L (q=9) must arrange the
// 9 groups on a 3x3 grid, giving a die close to square.
func TestGroupLayoutNearSquare(t *testing.T) {
	s := mustSN(t, 9, 8)
	n := mustNet(t, s, LayoutGroup)
	x, y := n.GridDims()
	ratio := float64(x) / float64(y)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("group layout die %dx%d is far from square", x, y)
	}
	// All 162 routers fit in the blocks.
	if x*y < 162 {
		t.Errorf("die %dx%d cannot hold 162 routers", x, y)
	}
}

// TestLayoutImprovesWireLength reproduces the headline §3.3 result: the
// subgroup and group layouts reduce average wire length versus basic and
// rand (≈25% in the paper).
func TestLayoutImprovesWireLength(t *testing.T) {
	for _, q := range []int{5, 8, 9} {
		s := mustSN(t, q, 1)
		m := map[Layout]float64{}
		for _, l := range Layouts() {
			m[l] = mustNet(t, s, l).AvgWireLength()
		}
		if m[LayoutSubgroup] >= m[LayoutBasic] {
			t.Errorf("q=%d: sn_subgr M=%.2f not better than sn_basic M=%.2f",
				q, m[LayoutSubgroup], m[LayoutBasic])
		}
		if m[LayoutSubgroup] >= m[LayoutRand] {
			t.Errorf("q=%d: sn_subgr M=%.2f not better than sn_rand M=%.2f",
				q, m[LayoutSubgroup], m[LayoutRand])
		}
	}
}

// TestSubgroupReductionMagnitude: for SN-S the paper reports ~25% reduction
// of M by sn_subgr/sn_gr vs sn_rand/sn_basic. Accept 10%..45%.
func TestSubgroupReductionMagnitude(t *testing.T) {
	s := mustSN(t, 5, 4)
	basic := mustNet(t, s, LayoutBasic).AvgWireLength()
	subgr := mustNet(t, s, LayoutSubgroup).AvgWireLength()
	red := 1 - subgr/basic
	if red < 0.10 || red > 0.45 {
		t.Errorf("sn_subgr reduces M by %.1f%%, expected roughly 25%%", red*100)
	}
}

// TestWireCrossingsConservation: summing the per-cell crossing counts of a
// single horizontal wire equals its path length in cells.
func TestWireCrossingsConservation(t *testing.T) {
	n := &topo.Network{
		Name: "pair", Nr: 2, P: 1,
		Adj:    [][]int{{1}, {0}},
		Coords: []topo.Coord{{X: 1, Y: 1}, {X: 4, Y: 1}},
	}
	cr := WireCrossings(n)
	total := 0
	for _, col := range cr {
		for _, c := range col {
			total += c
		}
	}
	// Two directed wires, each crossing 4 cells (endpoints included).
	if total != 8 {
		t.Errorf("crossing total = %d, want 8", total)
	}
}

// TestWireCrossingsLShape: a diagonal wire takes an L path; the corner cell
// depends on which distance dominates.
func TestWireCrossingsLShape(t *testing.T) {
	n := &topo.Network{
		Name: "L", Nr: 2, P: 1,
		Adj:    [][]int{{1}, {0}},
		Coords: []topo.Coord{{X: 1, Y: 1}, {X: 4, Y: 2}},
	}
	cr := WireCrossings(n)
	// |dx|=3 > |dy|=1: vertical-first from each source.
	// Wire from (1,1): (1,1),(1,2),(2,2),(3,2),(4,2).
	if cr[0][1] == 0 {
		t.Error("expected wire over (1,2)")
	}
	// Wire from (4,2): (4,2),(4,1),(3,1),(2,1),(1,1).
	if cr[3][0] == 0 {
		t.Error("expected wire over (4,1)")
	}
}

// TestWiringConstraintsSatisfied reproduces §3.3.2: no SN layout violates
// Eq. 3 at 45/22/11 nm for the paper's design points.
func TestWiringConstraintsSatisfied(t *testing.T) {
	for _, d := range []Design{SNS(), SNL(), SN1024()} {
		s := mustSN(t, d.Q, d.P)
		for _, l := range Layouts() {
			n := mustNet(t, s, l)
			for _, wc := range WiringConstraints() {
				ok, got := SatisfiesConstraint(n, wc)
				if !ok {
					t.Errorf("%s %s at %s: max crossings %d exceed W=%d",
						d.Name, l, wc.Node, got, wc.MaxWires())
				}
			}
		}
	}
}

// TestDistanceDistribution sums to 1 and favours short links under sn_subgr.
func TestDistanceDistribution(t *testing.T) {
	s := mustSN(t, 5, 4)
	n := mustNet(t, s, LayoutSubgroup)
	dist := DistanceDistribution(n)
	sum := 0.0
	for _, p := range dist {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
	if len(dist) == 0 || dist[0] <= 0 {
		t.Error("expected mass on the shortest distance bin")
	}
}

// TestFewerLongestWires reproduces the Fig. 6 observation: sn_subgr uses
// fewer of the longest links than sn_basic for SN-S.
func TestFewerLongestWires(t *testing.T) {
	s := mustSN(t, 5, 4)
	long := func(l Layout) int {
		n := mustNet(t, s, l)
		count := 0
		for i := 0; i < n.Nr; i++ {
			for _, j := range n.Adj[i] {
				if j > i && topo.ManhattanDist(n.Coords[i], n.Coords[j]) >= 9 {
					count++
				}
			}
		}
		return count
	}
	if long(LayoutSubgroup) > long(LayoutBasic) {
		t.Errorf("sn_subgr has %d longest wires vs sn_basic %d", long(LayoutSubgroup), long(LayoutBasic))
	}
}

// TestTheorem1Scaling checks M = Θ(∛N) (§3.3.3, Theorem 1). With the ideal
// concentration, N ∝ q^3, so ∛N ∝ q and the ratio M/q must stay within a
// constant band across sizes for the subgroup layout.
func TestTheorem1Scaling(t *testing.T) {
	var ratios []float64
	for _, q := range []int{5, 7, 9, 11, 13} {
		s := mustSN(t, q, 1)
		n := mustNet(t, s, LayoutSubgroup)
		m := n.AvgWireLength()
		ratios = append(ratios, m/float64(q))
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi/lo > 3 {
		t.Errorf("M/∛N ratios %v vary by more than 3x: not Θ(∛N)-like", ratios)
	}
}

func TestUnknownLayout(t *testing.T) {
	s := mustSN(t, 3, 1)
	if _, err := s.Coordinates(Layout("bogus"), 0); err == nil {
		t.Error("unknown layout should fail")
	}
}

func TestRandLayoutDeterministic(t *testing.T) {
	s := mustSN(t, 5, 1)
	a, _ := s.Coordinates(LayoutRand, 7)
	b, _ := s.Coordinates(LayoutRand, 7)
	c, _ := s.Coordinates(LayoutRand, 8)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must give the same placement")
	}
	if !diff {
		t.Error("different seeds should give different placements")
	}
}

func TestRenderPlacement(t *testing.T) {
	s := mustSN(t, 3, 1)
	for _, l := range Layouts() {
		out, err := s.RenderPlacement(l, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Every router appears: count group glyphs in the grid body
		// (skipping the header line).
		body := out[strings.IndexByte(out, '\n')+1:]
		count := 0
		for _, r := range body {
			switch r {
			case '0', '1', '2':
				count++
			}
		}
		if count != s.Nr() {
			t.Errorf("%s: rendered %d routers, want %d\n%s", l, count, s.Nr(), out)
		}
		// Both subgroup types are visible.
		if !strings.Contains(body, "'") {
			t.Errorf("%s: type-1 subgroup marker missing\n%s", l, out)
		}
	}
	if _, err := s.RenderPlacement(Layout("zzz"), 1); err == nil {
		t.Error("unknown layout should fail")
	}
}

func TestRenderHeatmap(t *testing.T) {
	s := mustSN(t, 5, 4)
	n := mustNet(t, s, LayoutSubgroup)
	out := RenderHeatmap(n)
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Fatal("empty or unterminated heatmap")
	}
	// The hottest glyph must appear exactly where MaxWireCrossing says.
	if MaxWireCrossing(n) <= 0 {
		t.Fatal("expected positive crossings")
	}
	found := false
	for _, r := range out {
		if r == '@' {
			found = true
		}
	}
	if !found {
		t.Error("heatmap should contain the maximum-intensity glyph")
	}
}
