// Physical layouts and the placement model of §3.2.1 and §3.3.

package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/topo"
)

// Layout selects one of the paper's physical router placements (§3.3).
type Layout string

// The four layouts analysed in the paper. Basic and Subgroup use a
// rectangular q x 2q die; Group arranges the q merged groups on a
// near-square grid of near-square blocks; Rand permutes routers over the
// q x 2q slots (the paper's strawman).
const (
	LayoutBasic    Layout = "basic"
	LayoutSubgroup Layout = "subgr"
	LayoutGroup    Layout = "gr"
	LayoutRand     Layout = "rand"
)

// Layouts lists all layouts in the paper's presentation order.
func Layouts() []Layout {
	return []Layout{LayoutRand, LayoutBasic, LayoutGroup, LayoutSubgroup}
}

// Coordinates assigns every router a 2D grid coordinate under the given
// layout. Seed is used only by LayoutRand. Coordinates are 1-indexed as in
// the paper's placement model.
func (s *SlimNoC) Coordinates(l Layout, seed int64) ([]topo.Coord, error) {
	q := s.Q
	coords := make([]topo.Coord, s.Nr())
	switch l {
	case LayoutBasic:
		// [G|a,b] -> (b, a + G*q): subgroups of the same type stacked.
		for i := range coords {
			lb := s.LabelOf(i)
			coords[i] = topo.Coord{X: lb.B + 1, Y: lb.A + 1 + lb.G*q}
		}
	case LayoutSubgroup:
		// [G|a,b] -> (b, 2a - (1-G)): subgroups of different types
		// interleaved pairwise to shorten inter-subgroup wires.
		for i := range coords {
			lb := s.LabelOf(i)
			coords[i] = topo.Coord{X: lb.B + 1, Y: 2*(lb.A+1) - (1 - lb.G)}
		}
	case LayoutGroup:
		// Groups (pairs of subgroups with the same ID a) are merged and
		// placed as blocks of width ceil(sqrt(2q)) on a grid of
		// ceil(sqrt(q)) block columns, keeping the die near-square.
		s2q := int(math.Ceil(math.Sqrt(float64(2 * q))))
		gcols := int(math.Ceil(math.Sqrt(float64(q))))
		bh := (2*q + s2q - 1) / s2q
		for i := range coords {
			lb := s.LabelOf(i)
			r := lb.B + lb.G*q // 0..2q-1: position within the merged group
			gx, gy := lb.A%gcols, lb.A/gcols
			coords[i] = topo.Coord{
				X: gx*s2q + r%s2q + 1,
				Y: gy*bh + r/s2q + 1,
			}
		}
	case LayoutRand:
		// Random placement over the q x 2q slots.
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(s.Nr())
		for i := range coords {
			slot := perm[i]
			coords[i] = topo.Coord{X: slot%q + 1, Y: slot/q + 1}
		}
	default:
		return nil, fmt.Errorf("core: unknown layout %q", l)
	}
	return coords, nil
}

// WireCrossings implements the placement-constraint model of §3.2.1
// (Eq. 1-3). Each directed link (i, j) is routed as an L-shaped Manhattan
// path: vertical-first from i when |xi-xj| > |yi-yj|, horizontal-first
// otherwise. The result counts, for every grid cell, the number of wires
// placed over it; cells are indexed [x][y], 0-based on a grid sized by the
// placement's extents.
func WireCrossings(n *topo.Network) [][]int {
	mx, my := n.GridDims()
	count := make([][]int, mx)
	for x := range count {
		count[x] = make([]int, my)
	}
	mark := func(x, y int) { count[x-1][y-1]++ }
	for i := 0; i < n.Nr; i++ {
		for _, j := range n.Adj[i] {
			ci, cj := n.Coords[i], n.Coords[j]
			dx, dy := absInt(ci.X-cj.X), absInt(ci.Y-cj.Y)
			if dx > dy {
				// Vertical-first: (xi,yi) -> (xi,yj) -> (xj,yj).
				for y := minInt(ci.Y, cj.Y); y <= maxInt(ci.Y, cj.Y); y++ {
					mark(ci.X, y)
				}
				for x := minInt(ci.X, cj.X); x <= maxInt(ci.X, cj.X); x++ {
					if x != ci.X {
						mark(x, cj.Y)
					}
				}
			} else {
				// Horizontal-first: (xi,yi) -> (xj,yi) -> (xj,yj).
				for x := minInt(ci.X, cj.X); x <= maxInt(ci.X, cj.X); x++ {
					mark(x, ci.Y)
				}
				for y := minInt(ci.Y, cj.Y); y <= maxInt(ci.Y, cj.Y); y++ {
					if y != ci.Y {
						mark(cj.X, y)
					}
				}
			}
		}
	}
	return count
}

// MaxWireCrossing returns max W over all grid cells (the left side of
// Eq. 3).
func MaxWireCrossing(n *topo.Network) int {
	max := 0
	for _, col := range WireCrossings(n) {
		for _, c := range col {
			if c > max {
				max = c
			}
		}
	}
	return max
}

// WiringConstraint holds the technology parameters of Eq. 3 (§3.3.2): the
// wiring density of one intermediate metal layer and the side length of a
// processing core, per technology node.
type WiringConstraint struct {
	Node       string
	WiresPerMM float64
	CoreSideMM float64
}

// WiringConstraints returns the paper's assumed technology points (§3.3.2):
// 3.5k/7k/14k wires/mm and 4/1/0.25 mm^2 cores at 45/22/11 nm.
func WiringConstraints() []WiringConstraint {
	return []WiringConstraint{
		{Node: "45nm", WiresPerMM: 3500, CoreSideMM: 2.0},
		{Node: "22nm", WiresPerMM: 7000, CoreSideMM: 1.0},
		{Node: "11nm", WiresPerMM: 14000, CoreSideMM: 0.5},
	}
}

// MaxWires returns W, the maximum number of wires that may cross one router
// tile under this constraint (wiring density times tile side).
func (w WiringConstraint) MaxWires() int {
	return int(w.WiresPerMM * w.CoreSideMM)
}

// SatisfiesConstraint reports whether the placed network respects Eq. 3 for
// the given technology, and returns the observed maximum crossing count.
func SatisfiesConstraint(n *topo.Network, w WiringConstraint) (bool, int) {
	got := MaxWireCrossing(n)
	return got <= w.MaxWires(), got
}

// DistanceDistribution returns the histogram of link Manhattan distances in
// 2-wide bins as in Fig. 6: bin i covers distances {2i+1, 2i+2}. Values are
// probabilities (they sum to 1 unless the network has no links).
func DistanceDistribution(n *topo.Network) []float64 {
	var counts []int
	links := 0
	for i := 0; i < n.Nr; i++ {
		for _, j := range n.Adj[i] {
			if j <= i {
				continue
			}
			d := topo.ManhattanDist(n.Coords[i], n.Coords[j])
			if d < 1 {
				d = 1
			}
			bin := (d - 1) / 2
			for len(counts) <= bin {
				counts = append(counts, 0)
			}
			counts[bin]++
			links++
		}
	}
	out := make([]float64, len(counts))
	if links == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(links)
	}
	return out
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
