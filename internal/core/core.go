// Package core implements the paper's primary contribution: the Slim NoC
// topology family. It constructs the underlying MMS degree-diameter graphs
// over prime and non-prime finite fields (§3.1, §3.5), provides the
// NoC-specific physical layouts and placement model (§3.2–3.3), the buffer
// and cost models (§3.2.2–3.2.3), the configuration tables (Table 2), and
// the ready-made SN-S / SN-L / SN-1024 designs (§3.4).
package core

import (
	"fmt"
	"sort"

	"repro/internal/gf"
	"repro/internal/topo"
)

// Params describes one Slim NoC instance before layout selection.
type Params struct {
	Q int // the structural parameter q: a prime power (§2.1)
	P int // concentration: nodes per router
}

// SlimNoC is a constructed Slim NoC: the MMS graph plus the field and
// generator sets that produced it. Router [G|a,b] (G in {0,1}; a, b field
// element indices 0..q-1) has router index G*q^2 + a*q + b.
type SlimNoC struct {
	Params
	U      int // q = 4w + u with u in {-1, 0, 1}
	Field  *gf.Field
	X, Xp  []int // generator sets X and X' (§3.5.1)
	Adj    [][]int
	KPrime int // network radix k' = (3q-u)/2
}

// Label identifies a router in the subgroup view (§3.2.1): subgroup type G,
// subgroup ID A and position B, all as field-element indices 0..q-1. The
// paper's 1-based [G|a,b] uses a = A+1, b = B+1.
type Label struct {
	G, A, B int
}

// Index returns the unique router index for a label (the paper's
// i = G q^2 + (a-1) q + b, zero-based).
func (s *SlimNoC) Index(l Label) int { return l.G*s.Q*s.Q + l.A*s.Q + l.B }

// LabelOf is the inverse of Index.
func (s *SlimNoC) LabelOf(i int) Label {
	q := s.Q
	return Label{G: i / (q * q), A: (i / q) % q, B: i % q}
}

// Nr returns the router count 2q^2.
func (s *SlimNoC) Nr() int { return 2 * s.Q * s.Q }

// N returns the node count Nr * P.
func (s *SlimNoC) N() int { return s.Nr() * s.P }

// uFor returns u with q = 4w + u, u in {-1,0,1}. q ≡ 2 (mod 4) only happens
// for q = 2, which the paper treats as u = 0 (k' = 3).
func uFor(q int) (int, error) {
	switch q % 4 {
	case 0, 2:
		return 0, nil
	case 1:
		return 1, nil
	case 3:
		return -1, nil
	}
	return 0, fmt.Errorf("core: unreachable")
}

// KPrimeFor returns the network radix k' = (3q-u)/2 of a Slim NoC with
// parameter q.
func KPrimeFor(q int) (int, error) {
	u, err := uFor(q)
	if err != nil {
		return 0, err
	}
	return (3*q - u) / 2, nil
}

// New constructs the Slim NoC graph for the given parameters. It builds the
// finite field GF(q), searches for valid generator sets (verified for
// symmetry, size, degree and diameter 2), and materialises the adjacency.
func New(p Params) (*SlimNoC, error) {
	if p.Q < 2 {
		return nil, fmt.Errorf("core: q must be >= 2, got %d", p.Q)
	}
	if p.P < 1 {
		return nil, fmt.Errorf("core: concentration must be >= 1, got %d", p.P)
	}
	f, err := gf.New(p.Q)
	if err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	u, err := uFor(p.Q)
	if err != nil {
		return nil, err
	}
	s := &SlimNoC{Params: p, U: u, Field: f, KPrime: (3*p.Q - u) / 2}
	x, xp, err := generatorSets(f, u)
	if err != nil {
		return nil, fmt.Errorf("core: q=%d: %v", p.Q, err)
	}
	s.X, s.Xp = x, xp
	s.Adj = buildAdj(f, x, xp)
	return s, nil
}

// buildAdj materialises the MMS adjacency from Eq. 8-10:
//
//	[0|a,b] ~ [0|a,b']  iff  b - b' in X
//	[1|m,c] ~ [1|m,c']  iff  c - c' in X'
//	[0|a,b] ~ [1|m,c]   iff  b = m*a + c
func buildAdj(f *gf.Field, x, xp []int) [][]int {
	q := f.Order()
	nr := 2 * q * q
	idx := func(g, a, b int) int { return g*q*q + a*q + b }
	inX := membership(q, x)
	inXp := membership(q, xp)
	adj := make([][]int, nr)
	for a := 0; a < q; a++ {
		for b := 0; b < q; b++ {
			i := idx(0, a, b)
			for b2 := 0; b2 < q; b2++ {
				if b2 != b && inX[f.Sub(b, b2)] {
					adj[i] = append(adj[i], idx(0, a, b2))
				}
			}
			// Inter-subgroup: for every m there is exactly one c with
			// b = m*a + c, namely c = b - m*a.
			for m := 0; m < q; m++ {
				c := f.Sub(b, f.Mul(m, a))
				adj[i] = append(adj[i], idx(1, m, c))
				j := idx(1, m, c)
				adj[j] = append(adj[j], i)
			}
		}
	}
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			i := idx(1, m, c)
			for c2 := 0; c2 < q; c2++ {
				if c2 != c && inXp[f.Sub(c, c2)] {
					adj[i] = append(adj[i], idx(1, m, c2))
				}
			}
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

func membership(q int, set []int) []bool {
	in := make([]bool, q)
	for _, e := range set {
		in[e] = true
	}
	return in
}

// generatorSets finds generator sets (X, X') for GF(q) such that the MMS
// graph they induce is k'-regular with diameter 2. It tries the closed-form
// Hafner/MMS candidates first (even/odd powers of a primitive element, the
// ±-pair variant for q ≡ 3 mod 4, and shifted variants), then falls back to
// a bounded exhaustive search over symmetric subsets for small q. Every
// candidate is verified before being returned.
func generatorSets(f *gf.Field, u int) (x, xp []int, err error) {
	q := f.Order()
	m := (q - u) / 2
	want := (3*q - u) / 2

	var candidates [][2][]int
	addPair := func(a, b []int) {
		if a != nil && b != nil {
			candidates = append(candidates, [2][]int{a, b})
		}
	}
	for _, xi := range f.PrimitiveElements() {
		evens := powerSet(f, xi, 0, m)
		odds := powerSet(f, xi, 1, m)
		addPair(evens, odds)
		addPair(odds, evens)
		// ± variant for q ≡ 3 (mod 4): w pairs of {±ξ^(2i)}.
		if u == -1 && m%2 == 0 {
			pm := plusMinusSet(f, xi, 0, m/2)
			pmOdd := plusMinusSet(f, xi, 1, m/2)
			addPair(pm, pmOdd)
			addPair(pmOdd, pm)
			addPair(pm, scaleSet(f, xi, pm))
			addPair(pmOdd, scaleSet(f, xi, pmOdd))
		}
		// Shifted variants.
		for t := 1; t < q-1 && t <= 6; t++ {
			sh := f.Pow(xi, t)
			addPair(scaleSetBy(f, sh, evens), odds)
			addPair(evens, scaleSetBy(f, sh, odds))
		}
	}
	for _, c := range candidates {
		if validSets(f, c[0], c[1], m) && graphOK(f, c[0], c[1], want) {
			return c[0], c[1], nil
		}
	}
	// Bounded exhaustive fallback over symmetric subsets.
	if q <= 9 {
		symm := symmetricSubsets(f, m)
		for _, a := range symm {
			for _, b := range symm {
				if graphOK(f, a, b, want) {
					return a, b, nil
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("no valid generator sets found (|X|=%d)", m)
}

// powerSet returns {ξ^(start + 2i) : 0 <= i < count} as a sorted set, or nil
// if the powers collide (set smaller than count).
func powerSet(f *gf.Field, xi, start, count int) []int {
	seen := make(map[int]bool, count)
	e := f.Pow(xi, start)
	step := f.Mul(xi, xi)
	for i := 0; i < count; i++ {
		seen[e] = true
		e = f.Mul(e, step)
	}
	if len(seen) != count {
		return nil
	}
	return sortedKeys(seen)
}

// plusMinusSet returns {±ξ^(start+2i) : 0 <= i < count}, or nil on collision.
func plusMinusSet(f *gf.Field, xi, start, count int) []int {
	seen := make(map[int]bool, 2*count)
	e := f.Pow(xi, start)
	step := f.Mul(xi, xi)
	for i := 0; i < count; i++ {
		seen[e] = true
		seen[f.Neg(e)] = true
		e = f.Mul(e, step)
	}
	if len(seen) != 2*count {
		return nil
	}
	return sortedKeys(seen)
}

func scaleSet(f *gf.Field, xi int, set []int) []int { return scaleSetBy(f, xi, set) }

func scaleSetBy(f *gf.Field, c int, set []int) []int {
	if set == nil {
		return nil
	}
	out := make([]int, len(set))
	for i, e := range set {
		out[i] = f.Mul(c, e)
	}
	sort.Ints(out)
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// validSets checks sizes, non-zero membership and symmetry (X = -X).
func validSets(f *gf.Field, x, xp []int, m int) bool {
	if len(x) != m || len(xp) != m {
		return false
	}
	for _, s := range [][]int{x, xp} {
		in := membership(f.Order(), s)
		for _, e := range s {
			if e == 0 || !in[f.Neg(e)] {
				return false
			}
		}
	}
	return true
}

// graphOK builds the candidate graph and verifies k'-regularity and
// diameter <= 2.
func graphOK(f *gf.Field, x, xp []int, kprime int) bool {
	adj := buildAdj(f, x, xp)
	for _, a := range adj {
		if len(a) != kprime {
			return false
		}
	}
	return diameterAtMost2(adj)
}

// diameterAtMost2 reports whether every vertex reaches every other vertex in
// at most two hops, using bitset neighbourhood unions.
func diameterAtMost2(adj [][]int) bool {
	n := len(adj)
	words := (n + 63) / 64
	nb := make([][]uint64, n)
	for v, a := range adj {
		row := make([]uint64, words)
		row[v/64] |= 1 << (uint(v) % 64)
		for _, w := range a {
			row[w/64] |= 1 << (uint(w) % 64)
		}
		nb[v] = row
	}
	reach := make([]uint64, words)
	for v, a := range adj {
		copy(reach, nb[v])
		for _, w := range a {
			for i, bits := range nb[w] {
				reach[i] |= bits
			}
		}
		count := 0
		for _, bits := range reach {
			count += popcount(bits)
		}
		if count != n {
			return false
		}
	}
	return true
}

func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// symmetricSubsets enumerates all symmetric (S = -S) subsets of F_q^* of
// size m, used as the exhaustive fallback for small q.
func symmetricSubsets(f *gf.Field, m int) [][]int {
	q := f.Order()
	// Build orbits {e, -e}.
	var orbits [][]int
	seen := make([]bool, q)
	for e := 1; e < q; e++ {
		if seen[e] {
			continue
		}
		ne := f.Neg(e)
		seen[e] = true
		if ne == e {
			orbits = append(orbits, []int{e})
		} else {
			seen[ne] = true
			orbits = append(orbits, []int{e, ne})
		}
	}
	var out [][]int
	var rec func(i, size int, cur []int)
	rec = func(i, size int, cur []int) {
		if size == m {
			s := append([]int(nil), cur...)
			sort.Ints(s)
			out = append(out, s)
			return
		}
		if i >= len(orbits) || size > m {
			return
		}
		rec(i+1, size, cur)
		if size+len(orbits[i]) <= m {
			rec(i+1, size+len(orbits[i]), append(cur, orbits[i]...))
		}
	}
	rec(0, 0, nil)
	return out
}

// Network converts the Slim NoC into a placed topo.Network using the given
// layout. The cycle time follows §5.1 (0.5 ns).
func (s *SlimNoC) Network(l Layout, seed int64) (*topo.Network, error) {
	coords, err := s.Coordinates(l, seed)
	if err != nil {
		return nil, err
	}
	adj := make([][]int, len(s.Adj))
	for i, a := range s.Adj {
		adj[i] = append([]int(nil), a...)
	}
	return &topo.Network{
		Name:        fmt.Sprintf("sn_%s_q%d_p%d", l, s.Q, s.P),
		Nr:          s.Nr(),
		P:           s.P,
		Adj:         adj,
		Coords:      coords,
		CycleTimeNs: topo.CycleTimeSN,
	}, nil
}
