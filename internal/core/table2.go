// Configuration enumeration reproducing Table 2 (§3.1) and the ready-made
// designs of §3.4.

package core

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/topo"
)

// ConfigRow is one row of Table 2: a feasible Slim NoC configuration.
type ConfigRow struct {
	KPrime       int     // network radix k'
	P            int     // concentration
	IdealP       int     // ceil(k'/2): the zero-κ concentration
	Subscription float64 // P / IdealP (the table's over/under-subscription)
	N            int     // network size
	Nr           int     // router count
	Q            int     // input parameter q
	NonPrime     bool    // q is a non-prime prime power
	PowerOfTwoN  bool    // bold in Table 2
	SquareGroups bool    // grey: equally many groups on each die side (q square)
	SquareN      bool    // dark grey: additionally N is a perfect square
}

// EnumerateConfigs reproduces Table 2: all Slim NoC configurations with
// N <= maxN, over all prime-power q, with concentration within the paper's
// 66%–133% subscription window around ceil(k'/2).
func EnumerateConfigs(maxN int) []ConfigRow {
	var rows []ConfigRow
	for q := 2; 2*q*q <= maxN; q++ {
		_, n, ok := gf.IsPrimePower(q)
		if !ok {
			continue
		}
		kp, err := KPrimeFor(q)
		if err != nil {
			continue
		}
		nr := 2 * q * q
		ideal := (kp + 1) / 2
		for conc := 1; conc <= 2*ideal; conc++ {
			ratio := float64(conc) / float64(ideal)
			if ratio < 0.66 || ratio > 4.0/3.0+1e-9 {
				continue
			}
			size := nr * conc
			if size > maxN {
				continue
			}
			rows = append(rows, ConfigRow{
				KPrime:       kp,
				P:            conc,
				IdealP:       ideal,
				Subscription: ratio,
				N:            size,
				Nr:           nr,
				Q:            q,
				NonPrime:     n > 1,
				PowerOfTwoN:  size&(size-1) == 0,
				SquareGroups: isSquare(q),
				SquareN:      isSquare(q) && isSquare(size),
			})
		}
	}
	// Order as in the paper: non-prime fields first, then prime, by k'.
	sortRows(rows)
	return rows
}

func isSquare(n int) bool {
	for i := 1; i*i <= n; i++ {
		if i*i == n {
			return true
		}
	}
	return false
}

func sortRows(rows []ConfigRow) {
	// Stable three-key sort: non-prime first, then k', then P.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rowLess(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func rowLess(a, b ConfigRow) bool {
	if a.NonPrime != b.NonPrime {
		return a.NonPrime
	}
	if a.KPrime != b.KPrime {
		return a.KPrime < b.KPrime
	}
	return a.P < b.P
}

// Design is a ready-to-use Slim NoC from §3.4.
type Design struct {
	Name   string
	Q, P   int
	Layout Layout
}

// SNS is the paper's small design: N=200, Nr=50, q=5, p=4, subgroup layout,
// targeting SW26010-class chips.
func SNS() Design { return Design{Name: "SN-S", Q: 5, P: 4, Layout: LayoutSubgroup} }

// SNL is the large design: N=1296, Nr=162, q=9, p=8, group layout (9
// identical groups on a 3x3 grid).
func SNL() Design { return Design{Name: "SN-L", Q: 9, P: 8, Layout: LayoutGroup} }

// SN1024 is the power-of-two design: N=1024, Nr=128, q=8, p=8, subgroup
// layout, matching the Epiphany-class core count.
func SN1024() Design { return Design{Name: "SN-1024", Q: 8, P: 8, Layout: LayoutSubgroup} }

// SN54 is the small-scale design of §5.6 (N=54, q=3, p=3), used for the
// Knights-Landing-class comparison.
func SN54() Design { return Design{Name: "SN-54", Q: 3, P: 3, Layout: LayoutSubgroup} }

// Build constructs the design's placed network.
func (d Design) Build() (*SlimNoC, *topo.Network, error) {
	s, err := New(Params{Q: d.Q, P: d.P})
	if err != nil {
		return nil, nil, fmt.Errorf("core: building %s: %v", d.Name, err)
	}
	n, err := s.Network(d.Layout, 1)
	if err != nil {
		return nil, nil, err
	}
	n.Name = d.Name
	return s, n, nil
}

// FromNetworkSize constructs Slim NoC parameters for a requested node count
// (§3.5.3): it finds q and p with N = 2q^2·p, preferring the smallest
// subscription deviation from the ideal concentration. Returns an error if
// no prime-power q divides the request exactly.
func FromNetworkSize(n int) (Params, error) {
	best := Params{}
	bestDev := -1.0
	for q := 2; 2*q*q <= n; q++ {
		if _, _, ok := gf.IsPrimePower(q); !ok {
			continue
		}
		nr := 2 * q * q
		if n%nr != 0 {
			continue
		}
		p := n / nr
		kp, err := KPrimeFor(q)
		if err != nil {
			continue
		}
		ideal := (kp + 1) / 2
		dev := float64(p)/float64(ideal) - 1
		if dev < 0 {
			dev = -dev
		}
		if bestDev < 0 || dev < bestDev {
			best = Params{Q: q, P: p}
			bestDev = dev
		}
	}
	if bestDev < 0 {
		return Params{}, fmt.Errorf("core: no Slim NoC configuration with exactly %d nodes", n)
	}
	return best, nil
}
