// ASCII rendering of placements and wire-crossing heatmaps, used by
// cmd/sngen to visualise the §3.3 layouts (the textual analogue of the
// paper's Fig. 7).

package core

import (
	"fmt"
	"strings"

	"repro/internal/topo"
)

// RenderPlacement draws the placement grid: each cell shows the router's
// merged-group ID (the subgroup ID a, shared by the paired subgroups), or
// "." for an empty cell. Group structure is immediately visible: in the
// group layout, equal digits form contiguous blocks; in the subgroup
// layout, rows alternate between the two subgroup types of each group.
func (s *SlimNoC) RenderPlacement(l Layout, seed int64) (string, error) {
	coords, err := s.Coordinates(l, seed)
	if err != nil {
		return "", err
	}
	mx, my := 0, 0
	for _, c := range coords {
		if c.X > mx {
			mx = c.X
		}
		if c.Y > my {
			my = c.Y
		}
	}
	grid := make([][]string, my)
	for y := range grid {
		grid[y] = make([]string, mx)
		for x := range grid[y] {
			grid[y][x] = " ."
		}
	}
	for i, c := range coords {
		lb := s.LabelOf(i)
		// Subgroup type 0 renders as " g", type 1 as "'g".
		prefix := " "
		if lb.G == 1 {
			prefix = "'"
		}
		grid[c.Y-1][c.X-1] = prefix + groupGlyph(lb.A)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sn_%s layout, q=%d (die %dx%d; glyph = group ID, ' = subgroup type 1):\n",
		l, s.Q, mx, my)
	for _, row := range grid {
		b.WriteString(strings.Join(row, " "))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// groupGlyph names merged group a: digits then letters, so up to 36 groups
// render as single characters.
func groupGlyph(a int) string {
	const glyphs = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if a < len(glyphs) {
		return string(glyphs[a])
	}
	return "#"
}

// RenderHeatmap draws the wire-crossing counts of the placement (the left
// side of Eq. 3) as a logarithmic intensity map, revealing routing
// hotspots. Intensity glyphs: " .:-=+*#%@" from empty to the maximum.
func RenderHeatmap(n *topo.Network) string {
	counts := WireCrossings(n)
	max := 0
	for _, col := range counts {
		for _, c := range col {
			if c > max {
				max = c
			}
		}
	}
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	fmt.Fprintf(&b, "wire crossings per tile (max %d):\n", max)
	if max == 0 {
		return b.String()
	}
	mx := len(counts)
	my := len(counts[0])
	for y := 0; y < my; y++ {
		for x := 0; x < mx; x++ {
			idx := counts[x][y] * (len(ramp) - 1) / max
			b.WriteByte(ramp[idx])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
