// Tests for the Pattern x Process x Sizer decomposition and the ReqReply
// closed loop: wrap semantics, rate preservation, per-seed determinism, and
// source-level allocation behaviour.

package traffic

import (
	"math/rand"
	"testing"
)

// TestShuffleNonPowerOfTwoWrap pins the deliberate `% N` fold: for N not a
// power of two the rotation runs on ceil(log2(N)) bits and out-of-range
// results wrap modulo N instead of being rejected.
func TestShuffleNonPowerOfTwoWrap(t *testing.T) {
	s := Shuffle{N: 10} // 4-bit IDs, values 10..15 reachable before the fold
	rng := rand.New(rand.NewSource(1))
	// src 5 = 0b0101 rotates to 0b1010 = 10, folds to 10 % 10 = 0.
	if got := s.Dest(rng, 5); got != 0 {
		t.Errorf("SHF(5) on N=10 = %d, want 0 (10 %% 10)", got)
	}
	// src 6 = 0b0110 rotates to 0b1100 = 12, folds to 2.
	if got := s.Dest(rng, 6); got != 2 {
		t.Errorf("SHF(6) on N=10 = %d, want 2 (12 %% 10)", got)
	}
	// src 1 = 0b0001 rotates to 0b0010 = 2: in range, no fold.
	if got := s.Dest(rng, 1); got != 2 {
		t.Errorf("SHF(1) on N=10 = %d, want 2", got)
	}
	// Totality: every source has an in-range, non-self destination.
	for _, n := range []int{3, 10, 12, 50, 200} {
		s := Shuffle{N: n}
		for src := 0; src < n; src++ {
			if d := s.Dest(rng, src); d < 0 || d >= n || d == src {
				t.Fatalf("N=%d: SHF(%d) = %d out of range or self", n, src, d)
			}
		}
	}
}

// TestReversalNonPowerOfTwoWrap pins the same fold for bit reversal.
func TestReversalNonPowerOfTwoWrap(t *testing.T) {
	r := Reversal{N: 10}
	rng := rand.New(rand.NewSource(1))
	// src 3 = 0b0011 reverses to 0b1100 = 12, folds to 2.
	if got := r.Dest(rng, 3); got != 2 {
		t.Errorf("REV(3) on N=10 = %d, want 2 (12 %% 10)", got)
	}
	// src 1 = 0b0001 reverses to 0b1000 = 8: in range, no fold.
	if got := r.Dest(rng, 1); got != 8 {
		t.Errorf("REV(1) on N=10 = %d, want 8", got)
	}
	for _, n := range []int{3, 10, 12, 50, 200} {
		r := Reversal{N: n}
		for src := 0; src < n; src++ {
			if d := r.Dest(rng, src); d < 0 || d >= n || d == src {
				t.Fatalf("N=%d: REV(%d) = %d out of range or self", n, src, d)
			}
		}
	}
}

// TestHotspotConcentration checks the overlay sends ~Frac of packets to the
// K hot nodes and delegates the rest to the base pattern.
func TestHotspotConcentration(t *testing.T) {
	h := Hotspot{Frac: 0.3, K: 4, N: 100, Base: Uniform{N: 100}}
	rng := rand.New(rand.NewSource(7))
	hot := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		src := 10 + rng.Intn(80) // keep src off the hot nodes
		d := h.Dest(rng, src)
		if d < 0 || d >= 100 || d == src {
			t.Fatalf("bad dest %d for src %d", d, src)
		}
		if d < 4 {
			hot++
		}
	}
	frac := float64(hot) / trials
	// Expected: 0.3 direct + ~0.7*4/100 from the uniform base.
	if frac < 0.28 || frac > 0.38 {
		t.Errorf("hot-node fraction %.3f, want ~0.33", frac)
	}
}

// injection is one recorded emit call.
type injection struct {
	t                      int64
	src, dst, flits, class int
}

// record runs the source for cycles and returns every emitted packet.
func record(src interface {
	Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int))
}, seed int64, cycles int64) []injection {
	rng := rand.New(rand.NewSource(seed))
	var out []injection
	for t := int64(0); t < cycles; t++ {
		src.Generate(t, rng, func(s, d, f, c int) {
			out = append(out, injection{t, s, d, f, c})
		})
	}
	return out
}

// newWorkloads builds one fresh instance of every new source composition.
func newWorkloads(n int) map[string]*Synthetic {
	return map[string]*Synthetic{
		"burst": {N: n, Rate: 0.06, PacketFlits: 6, Pattern: Uniform{N: n},
			Process: NewOnOff(n, 8, 0.25)},
		"mmpp": {N: n, Rate: 0.06, PacketFlits: 6, Pattern: Uniform{N: n},
			Process: NewModulated(1.8, 100)},
		"hotspot": {N: n, Rate: 0.06, PacketFlits: 6,
			Pattern: Hotspot{Frac: 0.2, K: 4, N: n, Base: Uniform{N: n}}},
		"bimodal": {N: n, Rate: 0.06, PacketFlits: 6, Pattern: Uniform{N: n},
			Sizer: Bimodal{Short: 2, Long: 6, ShortFrac: 0.5}},
	}
}

// TestWorkloadDeterminism pins the contract every source must satisfy for
// reproducible campaigns: the same seed yields the identical injection
// sequence, and a different seed a different one.
func TestWorkloadDeterminism(t *testing.T) {
	const n = 64
	for name := range newWorkloads(n) {
		t.Run(name, func(t *testing.T) {
			a := record(newWorkloads(n)[name], 42, 2000)
			b := record(newWorkloads(n)[name], 42, 2000)
			if len(a) == 0 {
				t.Fatal("source emitted nothing")
			}
			if len(a) != len(b) {
				t.Fatalf("same seed: %d vs %d injections", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same seed diverges at injection %d: %+v vs %+v", i, a[i], b[i])
				}
			}
			c := record(newWorkloads(n)[name], 43, 2000)
			same := len(a) == len(c)
			if same {
				for i := range a {
					if a[i] != c[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Error("different seeds produced identical sequences")
			}
		})
	}
	t.Run("reqreply", func(t *testing.T) {
		mk := func() *ReqReply {
			return &ReqReply{N: n, Window: 4, ReqFlits: 2, ReplyFlits: 6, Pattern: Uniform{N: n}}
		}
		a := record(mk(), 42, 3)
		b := record(mk(), 42, 3)
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("same seed: %d vs %d injections", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same seed diverges at injection %d", i)
			}
		}
	})
}

// TestProcessRatePreserved checks the bursty and modulated processes realise
// the configured mean load: reshaping arrivals in time must not change the
// long-run rate.
func TestProcessRatePreserved(t *testing.T) {
	const n, cycles = 100, 30000
	for _, name := range []string{"burst", "mmpp"} {
		t.Run(name, func(t *testing.T) {
			src := newWorkloads(n)[name]
			flits := 0
			for _, inj := range record(src, 11, cycles) {
				flits += inj.flits
			}
			got := float64(flits) / (n * float64(cycles))
			if got < 0.05 || got > 0.07 {
				t.Errorf("realised load %.4f flits/node/cycle, want ~0.06", got)
			}
		})
	}
}

// TestOnOffBurstiness checks arrivals actually cluster: the per-node
// injection stream under OnOff must have a higher variance-to-mean ratio
// (index of dispersion over windows) than the Bernoulli baseline.
func TestOnOffBurstiness(t *testing.T) {
	const n, cycles, win = 16, 40000, 20
	dispersion := func(src *Synthetic) float64 {
		counts := make([]float64, cycles/win)
		for _, inj := range record(src, 5, cycles) {
			counts[int(inj.t)/win]++
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		var v float64
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		v /= float64(len(counts))
		return v / mean
	}
	bern := &Synthetic{N: n, Rate: 0.24, PacketFlits: 6, Pattern: Uniform{N: n}}
	burst := &Synthetic{N: n, Rate: 0.24, PacketFlits: 6, Pattern: Uniform{N: n},
		Process: NewOnOff(n, 16, 0.1)}
	db, do := dispersion(bern), dispersion(burst)
	if do < 1.5*db {
		t.Errorf("OnOff dispersion %.2f not clearly above Bernoulli %.2f", do, db)
	}
}

// TestBimodalMeanLoad checks the bimodal sizer preserves offered load by
// scaling the packet probability to the mix's mean length.
func TestBimodalMeanLoad(t *testing.T) {
	const n, cycles = 100, 20000
	src := newWorkloads(n)["bimodal"]
	flits, short, long := 0, 0, 0
	for _, inj := range record(src, 3, cycles) {
		flits += inj.flits
		switch inj.flits {
		case 2:
			short++
		case 6:
			long++
		default:
			t.Fatalf("unexpected packet size %d", inj.flits)
		}
	}
	got := float64(flits) / (n * float64(cycles))
	if got < 0.05 || got > 0.07 {
		t.Errorf("realised load %.4f, want ~0.06", got)
	}
	frac := float64(short) / float64(short+long)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("short fraction %.3f, want ~0.5", frac)
	}
}

// TestReqReplyWindow checks the closed-loop invariants: outstanding never
// exceeds the window, replies carry the data-packet size back to the
// requester, and delivered replies free window credit for new requests.
func TestReqReplyWindow(t *testing.T) {
	const n, w = 16, 3
	src := &ReqReply{N: n, Window: w, ReqFlits: 2, ReplyFlits: 6, Pattern: Uniform{N: n}}
	rng := rand.New(rand.NewSource(9))
	var pending []injection
	emit := func(s, d, f, c int) { pending = append(pending, injection{0, s, d, f, c}) }

	src.Generate(0, rng, emit)
	if len(pending) != n*w {
		t.Fatalf("cold start emitted %d requests, want %d", len(pending), n*w)
	}
	for node := 0; node < n; node++ {
		if got := src.Outstanding(node); got != w {
			t.Fatalf("node %d outstanding %d after cold start, want %d", node, got, w)
		}
	}
	// Window full: another cycle emits nothing.
	before := len(pending)
	src.Generate(1, rng, emit)
	if len(pending) != before {
		t.Fatalf("full window still emitted %d requests", len(pending)-before)
	}
	// Deliver one request: the destination must answer with a 6-flit reply.
	req := pending[0]
	pending = pending[:0]
	src.OnDelivered(10, req.src, req.dst, req.flits, req.class, emit)
	if len(pending) != 1 || pending[0].src != req.dst || pending[0].dst != req.src ||
		pending[0].flits != 6 || pending[0].class != ClassReply {
		t.Fatalf("request delivery emitted %+v, want 6-flit reply %d->%d", pending, req.dst, req.src)
	}
	// Deliver the reply: credit returns and the next cycle issues exactly
	// one replacement request from that node.
	reply := pending[0]
	pending = pending[:0]
	src.OnDelivered(20, reply.src, reply.dst, reply.flits, reply.class, emit)
	if got := src.Outstanding(req.src); got != w-1 {
		t.Fatalf("outstanding %d after reply, want %d", got, w-1)
	}
	src.Generate(2, rng, emit)
	if len(pending) != 1 || pending[0].src != req.src || pending[0].class != ClassRequest {
		t.Fatalf("refill emitted %+v, want one request from node %d", pending, req.src)
	}
}

// TestSourceGenerateZeroAllocs pins the source-level half of the
// zero-allocation contract: once their state is warm, Generate and
// OnDelivered allocate nothing (the engine-loop half lives in internal/sim's
// TestSteadyStateZeroAllocsWorkloads).
func TestSourceGenerateZeroAllocs(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(1))
	nop := func(s, d, f, c int) {}
	for name, src := range newWorkloads(n) {
		src := src
		var tt int64
		for ; tt < 50; tt++ { // warm: pin default Process/Sizer, state slices
			src.Generate(tt, rng, nop)
		}
		allocs := testing.AllocsPerRun(200, func() {
			src.Generate(tt, rng, nop)
			tt++
		})
		if allocs != 0 {
			t.Errorf("%s: Generate allocates %.2f per cycle, want 0", name, allocs)
		}
	}
	rr := &ReqReply{N: n, Window: 2, ReqFlits: 2, ReplyFlits: 6, Pattern: Uniform{N: n}}
	rr.Generate(0, rng, nop)
	allocs := testing.AllocsPerRun(200, func() {
		// Steady closed loop: deliver a request and its reply, then refill.
		rr.OnDelivered(1, 0, 5, 2, ClassRequest, nop)
		rr.OnDelivered(2, 5, 0, 6, ClassReply, nop)
		rr.Generate(3, rng, nop)
	})
	if allocs != 0 {
		t.Errorf("reqreply: loop allocates %.2f per cycle, want 0", allocs)
	}
}
