// The closed-loop request-reply source: each node keeps a bounded window of
// outstanding requests and issues a new one only when a reply returns, so
// the offered load self-throttles to whatever the network can deliver —
// the memory-traffic regime of the related crossbar-memory and PIM systems,
// and the workload that exercises the engine's ejection path hardest.

package traffic

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// Message classes carried by ReqReply packets, mirroring the trace package's
// read/reply convention.
const (
	// ClassRequest tags the short control packet a node issues while it has
	// window credit; its delivery triggers a reply.
	ClassRequest = 11
	// ClassReply tags the long data packet sent back to the requester; its
	// delivery returns one unit of window credit.
	ClassReply = 12
)

// ReqReply is a closed-loop source: every node keeps up to Window requests
// outstanding. Each cycle a node issues requests (short control packets of
// ReqFlits, destinations drawn from Pattern) until its window is full; when
// a request is delivered, the destination sends back a reply carrying the
// data-packet size (ReplyFlits), and the reply's delivery frees one window
// slot at the requester. There is no injection rate: throughput is set by
// round-trip latency and Window (the classic latency-bandwidth closed loop),
// so the source can never over-drive the network into open-loop divergence.
//
// Latency statistics track requests (emitted by Generate, so they follow the
// simulator's warmup/measure windows); replies are engine-level untracked
// traffic but their flits count toward accepted and offered throughput,
// exactly like the trace package's read replies.
type ReqReply struct {
	N int
	// Window is the per-node outstanding-request bound W (>= 1).
	Window int
	// ReqFlits is the request length (control packet, paper: 2 flits).
	ReqFlits int
	// ReplyFlits is the reply length (data packet, paper: 6 flits).
	ReplyFlits int
	// Pattern draws request destinations.
	Pattern Pattern

	// Requests and Replies count the packets emitted so far (telemetry).
	Requests, Replies int64

	outstanding []int // per-node in-flight request count
	totalOut    int   // sum of outstanding (next-fire signal)
}

var _ sim.Source = (*ReqReply)(nil)
var _ sim.NextFirer = (*ReqReply)(nil)

// Generate implements sim.Source: top every node's window up with fresh
// requests. On the first cycle this emits Window requests per node (the
// cold-start burst); afterwards it emits one request per reply received, the
// steady closed-loop state.
//
//sim:hot
func (s *ReqReply) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	if s.outstanding == nil {
		//detlint:allow hotalloc one-time lazy init on first cycle, outside the measured steady state
		s.outstanding = make([]int, s.N)
	}
	for node := 0; node < s.N; node++ {
		for s.outstanding[node] < s.Window {
			emit(node, s.Pattern.Dest(rng, node), s.ReqFlits, ClassRequest)
			s.outstanding[node]++
			s.totalOut++
			s.Requests++
		}
	}
}

// NextFire implements sim.NextFirer. Once every node's window is full,
// Generate cannot emit (and draws zero RNG — the per-node loop bodies never
// run) until a reply returns credit, and credit only moves inside a stepped
// cycle — so the window-stalled state persists across any skipped range and
// the calendar may jump straight to the next engine event. With any window
// slot open the source fires next cycle.
//
//sim:hot
func (s *ReqReply) NextFire(t int64) int64 {
	if s.outstanding != nil && s.totalOut >= s.N*s.Window {
		return math.MaxInt64 // stalled until a reply lands
	}
	return t + 1
}

// OnDelivered implements sim.Source: a delivered request triggers the reply
// (data-packet sized, back to the requester), and a delivered reply returns
// window credit to its destination — the original requester — so Generate
// issues a replacement next cycle.
//
//sim:hot
func (s *ReqReply) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
	switch class {
	case ClassRequest:
		emit(dst, src, s.ReplyFlits, ClassReply)
		s.Replies++
	case ClassReply:
		if s.outstanding != nil && dst >= 0 && dst < len(s.outstanding) && s.outstanding[dst] > 0 {
			s.outstanding[dst]--
			s.totalOut--
		}
	}
}

// Outstanding returns node's current in-flight request count (test hook for
// the window invariant).
func (s *ReqReply) Outstanding(node int) int {
	if s.outstanding == nil {
		return 0
	}
	return s.outstanding[node]
}
