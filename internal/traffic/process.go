// Temporal injection processes: the "when" axis of the Pattern x Process x
// Sizer decomposition. A Process decides, per node per cycle, whether the
// node starts a packet; the spatial Pattern then picks the destination and
// the Sizer the length. All processes are deterministic functions of the
// run's RNG stream: Begin is drawn exactly once per cycle and Inject exactly
// once per node per cycle (in ascending node order), so a fixed seed always
// produces the identical injection sequence.

package traffic

import "math/rand"

// Process is the temporal injection process of a Synthetic source. prob is
// the per-cycle packet-start probability that realises the configured mean
// offered load (Rate divided by the sizer's mean packet length); processes
// reshape arrivals around that mean without changing it.
//
// Implementations must be deterministic given the RNG stream and must not
// allocate after their first Generate cycle: the simulator's steady-state
// loop is zero-allocation, and sources are part of it (pinned by
// TestSteadyStateZeroAllocsWorkloads in internal/sim).
type Process interface {
	Name() string
	// Begin is called once at the top of each generation cycle, before any
	// Inject call, so globally modulated processes can advance their state.
	Begin(t int64, rng *rand.Rand)
	// Inject reports whether the node starts a packet this cycle. It is
	// called once per node per cycle, nodes ascending.
	Inject(rng *rand.Rand, node int, prob float64) bool
}

// Bernoulli is the paper's open-loop memoryless process (§5.1): every node
// independently starts a packet with probability prob each cycle. It is the
// default when Synthetic.Process is nil and consumes exactly one RNG draw
// per node per cycle — the draw sequence of the original monolithic source,
// so pre-decomposition specs reproduce byte-identical results (pinned by
// the golden fixtures in internal/sim).
type Bernoulli struct{}

// Name implements Process.
func (Bernoulli) Name() string { return "bernoulli" }

// Begin implements Process (memoryless: no per-cycle state, no RNG draw).
//
//sim:hot
func (Bernoulli) Begin(t int64, rng *rand.Rand) {}

// Inject implements Process.
//
//sim:hot
func (Bernoulli) Inject(rng *rand.Rand, node int, prob float64) bool {
	return rng.Float64() < prob
}

// OnOff is a two-state bursty process: each node alternates independently
// between an "on" state, where it injects at prob/Duty, and a silent "off"
// state. Dwell times are geometric — the mean on-period is BurstLen cycles
// and the off-period is sized so the long-run on-fraction is Duty — so the
// mean offered load equals the configured rate while arrivals cluster into
// bursts. When prob/Duty exceeds 1 the on-state probability saturates at 1
// and the realised load falls below the nominal rate (inherent to bursty
// traffic near the injection bound).
type OnOff struct {
	// BurstLen is the mean on-period in cycles (>= 1).
	BurstLen float64
	// Duty is the long-run fraction of time a node spends on, in (0, 1].
	// Duty 1 degenerates to Bernoulli.
	Duty float64

	exitOn  float64 // per-cycle probability of ending a burst
	exitOff float64 // per-cycle probability of starting a burst
	on      []bool  // per-node state; all nodes start off
}

// NewOnOff builds the bursty process for n nodes, clamping BurstLen to
// >= 1 and Duty to (0, 1].
func NewOnOff(n int, burstLen, duty float64) *OnOff {
	if burstLen < 1 {
		burstLen = 1
	}
	if duty <= 0 || duty > 1 {
		duty = 1
	}
	o := &OnOff{BurstLen: burstLen, Duty: duty, on: make([]bool, n)}
	o.exitOn = 1 / burstLen
	if duty < 1 {
		// Mean off-period BurstLen*(1-Duty)/Duty makes the stationary
		// on-fraction exactly Duty.
		o.exitOff = duty / ((1 - duty) * burstLen)
	} else {
		o.exitOff = 1
	}
	return o
}

// Name implements Process.
func (o *OnOff) Name() string { return "burst" }

// Begin implements Process (state is per node, advanced in Inject).
//
//sim:hot
func (o *OnOff) Begin(t int64, rng *rand.Rand) {}

// Inject implements Process: advance the node's two-state chain, then draw
// the injection decision while on.
//
//sim:hot
func (o *OnOff) Inject(rng *rand.Rand, node int, prob float64) bool {
	if o.on[node] {
		if rng.Float64() < o.exitOn {
			o.on[node] = false
		}
	} else if rng.Float64() < o.exitOff {
		o.on[node] = true
	}
	if !o.on[node] {
		return false
	}
	return rng.Float64() < prob/o.Duty
}

// Modulated is an MMPP-style process: one global two-state Markov chain
// modulates every node's injection probability between a high state
// (prob * Factor) and a low state (prob * (2 - Factor)). Both states have
// the same geometric mean dwell time (Period cycles), so the long-run mean
// offered load equals the configured rate while the network sees
// alternating epochs of elevated and depressed pressure.
type Modulated struct {
	// Factor is the high-state rate multiplier, in [1, 2]; the low state
	// uses 2 - Factor so the mean is preserved. Factor 1 degenerates to
	// Bernoulli.
	Factor float64
	// Period is the mean dwell time per state in cycles (>= 1).
	Period float64

	flip float64 // per-cycle state-flip probability (1/Period)
	high bool    // current state; starts low
}

// NewModulated builds the modulated process, clamping Factor to [1, 2] and
// Period to >= 1.
func NewModulated(factor, period float64) *Modulated {
	if factor < 1 {
		factor = 1
	}
	if factor > 2 {
		factor = 2
	}
	if period < 1 {
		period = 1
	}
	return &Modulated{Factor: factor, Period: period, flip: 1 / period}
}

// Name implements Process.
func (m *Modulated) Name() string { return "mmpp" }

// Begin implements Process: one global state-transition draw per cycle.
//
//sim:hot
func (m *Modulated) Begin(t int64, rng *rand.Rand) {
	if rng.Float64() < m.flip {
		m.high = !m.high
	}
}

// Inject implements Process.
//
//sim:hot
func (m *Modulated) Inject(rng *rand.Rand, node int, prob float64) bool {
	if m.high {
		prob *= m.Factor
	} else {
		prob *= 2 - m.Factor
	}
	return rng.Float64() < prob
}

// Sizer is the packet-length axis of the decomposition: it draws the flit
// count of each generated packet. Mean reports the expected length, which
// the Synthetic source divides into the flit rate to obtain the per-cycle
// packet probability — so the offered load in flits/node/cycle is preserved
// whatever the mix. Like Process implementations, sizers must be
// deterministic and allocation-free after warm-up.
type Sizer interface {
	Name() string
	Mean() float64
	// Draw returns the flit count of one packet.
	Draw(rng *rand.Rand) int
}

// Fixed sizes every packet at Flits (the paper's 6-flit data packet). It
// consumes no RNG draws, preserving the pre-decomposition draw sequence.
type Fixed struct {
	Flits int
}

// Name implements Sizer.
func (Fixed) Name() string { return "fixed" }

// Mean implements Sizer.
//
//sim:hot
func (f Fixed) Mean() float64 { return float64(f.Flits) }

// Draw implements Sizer.
//
//sim:hot
func (f Fixed) Draw(rng *rand.Rand) int { return f.Flits }

// Bimodal mixes short control packets with long data packets: a packet is
// Short flits with probability ShortFrac and Long flits otherwise — the
// read-request/data-reply length mix of coherence traffic (§5.1 "Real
// Traffic" uses 2- and 6-flit messages).
type Bimodal struct {
	Short, Long int
	// ShortFrac is the probability a packet is short, in [0, 1].
	ShortFrac float64
}

// Name implements Sizer.
func (Bimodal) Name() string { return "bimodal" }

// Mean implements Sizer.
//
//sim:hot
func (b Bimodal) Mean() float64 {
	return b.ShortFrac*float64(b.Short) + (1-b.ShortFrac)*float64(b.Long)
}

// Draw implements Sizer.
//
//sim:hot
func (b Bimodal) Draw(rng *rand.Rand) int {
	if rng.Float64() < b.ShortFrac {
		return b.Short
	}
	return b.Long
}
