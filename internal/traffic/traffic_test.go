package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/topo"
)

func snNet(t testing.TB, q, p int) *topo.Network {
	t.Helper()
	s, err := core.New(core.Params{Q: q, P: p})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Network(core.LayoutSubgroup, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestUniformNeverSelf(t *testing.T) {
	u := Uniform{N: 16}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		src := rng.Intn(16)
		d := u.Dest(rng, src)
		if d == src || d < 0 || d >= 16 {
			t.Fatalf("bad dest %d for src %d", d, src)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	u := Uniform{N: 8}
	rng := rand.New(rand.NewSource(2))
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		seen[u.Dest(rng, 0)] = true
	}
	if len(seen) != 7 {
		t.Errorf("uniform covered %d destinations, want 7", len(seen))
	}
}

func TestShuffleDeterministicPermutationLike(t *testing.T) {
	s := Shuffle{N: 16}
	rng := rand.New(rand.NewSource(1))
	// For power-of-two N, bit rotation is a bijection on IDs (except for
	// fixed points remapped by the self-avoidance rule).
	counts := map[int]int{}
	for src := 0; src < 16; src++ {
		d := s.Dest(rng, src)
		if d < 0 || d >= 16 || d == src {
			t.Fatalf("bad dest %d for src %d", d, src)
		}
		counts[d]++
	}
	// Rotation of 0 is 0 -> remapped; allow at most 2 collisions.
	over := 0
	for _, c := range counts {
		if c > 1 {
			over++
		}
	}
	if over > 2 {
		t.Errorf("shuffle far from a permutation: %v", counts)
	}
}

func TestShuffleKnownValues(t *testing.T) {
	s := Shuffle{N: 16}
	rng := rand.New(rand.NewSource(1))
	// 4-bit rotate left: 0b0011 -> 0b0110.
	if got := s.Dest(rng, 3); got != 6 {
		t.Errorf("SHF(3) = %d, want 6", got)
	}
	// 0b1000 -> 0b0001.
	if got := s.Dest(rng, 8); got != 1 {
		t.Errorf("SHF(8) = %d, want 1", got)
	}
}

func TestReversalKnownValues(t *testing.T) {
	r := Reversal{N: 16}
	rng := rand.New(rand.NewSource(1))
	// 4-bit reverse: 0b0001 -> 0b1000.
	if got := r.Dest(rng, 1); got != 8 {
		t.Errorf("REV(1) = %d, want 8", got)
	}
	// 0b0011 -> 0b1100.
	if got := r.Dest(rng, 3); got != 12 {
		t.Errorf("REV(3) = %d, want 12", got)
	}
}

func TestReversalInvolutionQuick(t *testing.T) {
	r := Reversal{N: 256}
	rng := rand.New(rand.NewSource(1))
	prop := func(raw uint8) bool {
		src := int(raw)
		d := r.Dest(rng, src)
		if d == src {
			return true // self-avoidance kicked in
		}
		back := r.Dest(rng, d)
		// Reversal is an involution unless remapped for self-avoidance.
		return back == src || d == (src+1)%256
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdversarialPermutation(t *testing.T) {
	net := snNet(t, 5, 4)
	adv := NewAdversarial(net, 1)
	// ADV1 partners form an injective mapping over routers.
	seen := map[int]bool{}
	for r := 0; r < net.Nr; r++ {
		p := adv.partner[r]
		if p != r && seen[p] {
			t.Fatalf("partner %d reused", p)
		}
		seen[p] = true
	}
	// Node-level: same slot at partner router.
	rng := rand.New(rand.NewSource(1))
	for src := 0; src < net.N(); src++ {
		d := adv.Dest(rng, src)
		if d == src || d < 0 || d >= net.N() {
			t.Fatalf("bad dest %d for %d", d, src)
		}
	}
}

func TestAdversarialVariant2CrossesDie(t *testing.T) {
	net := snNet(t, 5, 4)
	adv := NewAdversarial(net, 2)
	for r := 0; r < net.Nr; r++ {
		if adv.partner[r] != (r+net.Nr/2)%net.Nr {
			t.Fatalf("ADV2 partner of %d = %d", r, adv.partner[r])
		}
	}
	if adv.Name() != "ADV2" {
		t.Error("wrong name")
	}
}

func TestAsymmetricHalves(t *testing.T) {
	a := Asymmetric{N: 100}
	rng := rand.New(rand.NewSource(3))
	low, high := 0, 0
	for i := 0; i < 2000; i++ {
		src := rng.Intn(100)
		d := a.Dest(rng, src)
		if d < 0 || d >= 100 || d == src {
			t.Fatalf("bad dest %d for src %d", d, src)
		}
		if d >= 50 {
			high++
		} else {
			low++
		}
	}
	// Roughly half the destinations land in each half.
	frac := float64(high) / float64(high+low)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("high-half fraction %.2f, want ~0.5", frac)
	}
}

func TestSyntheticRate(t *testing.T) {
	src := &Synthetic{N: 100, Rate: 0.12, PacketFlits: 6, Pattern: Uniform{N: 100}}
	rng := rand.New(rand.NewSource(4))
	packets := 0
	cycles := int64(5000)
	for tt := int64(0); tt < cycles; tt++ {
		src.Generate(tt, rng, func(s, d, f, c int) {
			packets++
			if f != 6 {
				t.Fatalf("packet size %d", f)
			}
		})
	}
	got := float64(packets*6) / (100 * float64(cycles))
	if got < 0.10 || got > 0.14 {
		t.Errorf("offered load %.3f, want ~0.12", got)
	}
}

func TestPatternByName(t *testing.T) {
	net := snNet(t, 3, 3)
	for _, name := range []string{"RND", "SHF", "REV", "ADV1", "ADV2", "ASYM"} {
		p := PatternByName(name, net)
		if p == nil {
			t.Fatalf("PatternByName(%s) = nil", name)
		}
		if p.Name() != name {
			t.Errorf("pattern %s reports name %s", name, p.Name())
		}
	}
	if PatternByName("XXX", net) != nil {
		t.Error("unknown name should return nil")
	}
}

func TestAllPatternsInRangeQuick(t *testing.T) {
	net := snNet(t, 3, 3)
	n := net.N()
	pats := []Pattern{
		Uniform{N: n}, Shuffle{N: n}, Reversal{N: n},
		NewAdversarial(net, 1), NewAdversarial(net, 2), Asymmetric{N: n},
	}
	rng := rand.New(rand.NewSource(5))
	prop := func(raw uint16) bool {
		src := int(raw) % n
		for _, p := range pats {
			d := p.Dest(rng, src)
			if d < 0 || d >= n || d == src {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
