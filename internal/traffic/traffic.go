// Package traffic implements the simulator's workload layer as three
// orthogonal axes composed by the Synthetic source:
//
//   - Pattern (the "where"): the spatial destination distributions of §5.1 —
//     uniform random (RND), bit shuffle (SHF), bit reversal (REV), the two
//     adversarial patterns (ADV1, ADV2), the asymmetric pattern of the
//     Fig. 20 adaptive routing study — plus the Hotspot overlay that
//     concentrates a fraction of any base pattern's traffic on a few hot
//     nodes.
//   - Process (the "when"): the temporal injection process — the paper's
//     open-loop Bernoulli default, the OnOff bursty process with geometric
//     burst lengths, and the MMPP-style Modulated process.
//   - Sizer (the "how much"): the packet-length model — Fixed (the paper's
//     6-flit packets) or the Bimodal short-control/long-data mix.
//
// The ReqReply source sits outside the open-loop composition: it is a
// closed-loop request-reply workload where each node keeps a bounded window
// of outstanding requests, so load self-throttles to delivered bandwidth.
//
// Every component is a deterministic function of the run's RNG stream, and
// the default composition (nil Process, nil Sizer) consumes RNG draws in
// exactly the order the pre-decomposition monolithic source did, so existing
// specs reproduce byte-identical results.
package traffic

import (
	"math/rand"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Pattern maps a source node to a destination node.
type Pattern interface {
	Name() string
	Dest(rng *rand.Rand, src int) int
}

// Uniform is RND: a uniformly random destination other than the source.
type Uniform struct {
	N int
}

// Name implements Pattern.
func (Uniform) Name() string { return "RND" }

// Dest implements Pattern.
//
//sim:hot
func (u Uniform) Dest(rng *rand.Rand, src int) int {
	if u.N < 2 {
		return src
	}
	for {
		d := rng.Intn(u.N)
		if d != src {
			return d
		}
	}
}

// nodeBits returns the number of bits needed to index n nodes.
//
//sim:hot
func nodeBits(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}

// Shuffle is SHF: the destination ID is the source ID with its bits rotated
// left by one position; out-of-range results wrap modulo N.
//
// Non-power-of-two wrap semantics (deliberate, pinned by
// TestShuffleNonPowerOfTwoWrap): the rotation operates on
// ceil(log2(N))-bit IDs, so for N that is not a power of two it can produce
// values in [N, 2^b). Those are folded back with a plain `% N` rather than
// being rejected or re-rotated. The fold keeps Dest total (every source
// has a destination), cheap, and deterministic, at the cost of the folded
// destinations receiving up to twice the uniform share — an acceptable,
// documented skew for a pattern whose purpose is structured (non-uniform)
// stress, and the convention the paper's own simulator inherits from
// classic k-ary n-cube toolkits. The self-avoidance rule (d == src maps to
// d+1 mod N) runs after the fold.
type Shuffle struct {
	N int
}

// Name implements Pattern.
func (Shuffle) Name() string { return "SHF" }

// Dest implements Pattern.
//
//sim:hot
func (s Shuffle) Dest(rng *rand.Rand, src int) int {
	b := nodeBits(s.N)
	if b == 0 {
		return src
	}
	d := ((src << 1) | (src >> (b - 1))) & ((1 << b) - 1)
	d %= s.N
	if d == src {
		d = (d + 1) % s.N
	}
	return d
}

// Reversal is REV: the destination ID is the bit-reversed source ID.
//
// Non-power-of-two N uses the same deliberate `% N` fold as Shuffle (see
// there for the rationale); pinned by TestReversalNonPowerOfTwoWrap.
type Reversal struct {
	N int
}

// Name implements Pattern.
func (Reversal) Name() string { return "REV" }

// Dest implements Pattern.
//
//sim:hot
func (r Reversal) Dest(rng *rand.Rand, src int) int {
	b := nodeBits(r.N)
	d := 0
	for i := 0; i < b; i++ {
		if src&(1<<i) != 0 {
			d |= 1 << (b - 1 - i)
		}
	}
	d %= r.N
	if d == src {
		d = (d + 1) % r.N
	}
	return d
}

// Adversarial pairs every router with a maximally distant partner router;
// all nodes of a router send to the same slot at the partner. Variant 1
// (ADV1) uses the topologically farthest router, concentrating load on the
// deterministic minimal paths between pairs; variant 2 (ADV2) sends across
// the die to router (r + Nr/2) mod Nr, loading many multi-link paths that
// share intermediate links.
type Adversarial struct {
	Variant int // 1 or 2
	net     *topo.Network
	partner []int
}

// NewAdversarial builds ADV1 (variant 1) or ADV2 (variant 2) for a placed
// network.
func NewAdversarial(net *topo.Network, variant int) *Adversarial {
	a := &Adversarial{Variant: variant, net: net, partner: make([]int, net.Nr)}
	switch variant {
	case 1:
		// Greedy maximum-distance matching: a permutation, so ejection
		// bandwidth stays balanced while minimal paths are maximally long
		// and deterministic tie-breaking concentrates them on few links.
		p := routing.NewMinimal(net)
		taken := make([]bool, net.Nr)
		for r := 0; r < net.Nr; r++ {
			best, bestD := -1, -1
			for o := 0; o < net.Nr; o++ {
				if o == r || taken[o] {
					continue
				}
				if d := p.Dist(r, o); d > bestD {
					best, bestD = o, d
				}
			}
			if best < 0 {
				best = r // odd leftover: self maps identity, filtered in Dest
			}
			taken[best] = true
			a.partner[r] = best
		}
	default:
		for r := 0; r < net.Nr; r++ {
			a.partner[r] = (r + net.Nr/2) % net.Nr
		}
	}
	return a
}

// Name implements Pattern.
func (a *Adversarial) Name() string {
	if a.Variant == 1 {
		return "ADV1"
	}
	return "ADV2"
}

// Dest implements Pattern.
//
//sim:hot
func (a *Adversarial) Dest(rng *rand.Rand, src int) int {
	p := a.net.P
	r := a.net.NodeRouter(src)
	slot := src - r*p
	d := a.partner[r]*p + slot
	if d == src {
		d = (d + 1) % a.net.N()
	}
	return d
}

// Asymmetric is the Fig. 20 pattern: with equal probability, destination
// (s mod N/2) + N/2 or (s mod N/2).
type Asymmetric struct {
	N int
}

// Name implements Pattern.
func (Asymmetric) Name() string { return "ASYM" }

// Dest implements Pattern.
//
//sim:hot
func (a Asymmetric) Dest(rng *rand.Rand, src int) int {
	half := a.N / 2
	d := src % half
	if rng.Intn(2) == 1 {
		d += half
	}
	if d == src {
		d = (d + 1) % a.N
	}
	return d
}

// Hotspot overlays any spatial pattern with hot-node concentration: with
// probability Frac the destination is drawn uniformly from the K hot nodes
// (nodes 0..K-1, the convention shared with the trace package's "home
// nodes"), otherwise the base pattern decides — modelling directory homes,
// locks and reduction roots that focus a share of all traffic on a few
// endpoints.
type Hotspot struct {
	// Frac is the probability a packet targets a hot node, in [0, 1].
	Frac float64
	// K is the hot-node count (destinations 0..K-1), >= 1.
	K int
	// N is the total node count (self-avoidance wrap bound).
	N int
	// Base decides the destinations of the remaining 1-Frac share.
	Base Pattern
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "HOT+" + h.Base.Name() }

// Dest implements Pattern.
//
//sim:hot
func (h Hotspot) Dest(rng *rand.Rand, src int) int {
	if rng.Float64() >= h.Frac {
		return h.Base.Dest(rng, src)
	}
	d := rng.Intn(h.K)
	if d == src {
		d = (d + 1) % h.N
	}
	return d
}

// Synthetic is the open-loop composition of the three workload axes: each
// cycle the temporal Process decides which nodes start a packet at the
// configured mean load of Rate flits/node/cycle, the spatial Pattern picks
// each packet's destination, and the Sizer its length. A nil Process is
// Bernoulli and a nil Sizer is Fixed{PacketFlits} — the paper's §5.1 setup,
// with the identical RNG draw sequence as the pre-decomposition source.
type Synthetic struct {
	N           int
	Rate        float64 // flits/node/cycle, mean over the run
	PacketFlits int
	Pattern     Pattern
	// Process reshapes arrivals in time (nil = Bernoulli).
	Process Process
	// Sizer draws per-packet lengths (nil = Fixed{PacketFlits}).
	Sizer Sizer
}

var _ sim.Source = (*Synthetic)(nil)

// Generate implements sim.Source.
//
//sim:hot
func (s *Synthetic) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	// Defaults are pinned on first use (not per cycle) so the interface
	// conversions never allocate inside the steady-state loop.
	if s.Process == nil {
		//detlint:allow hotalloc one-time default pinning on first use; never reassigned in steady state
		s.Process = Bernoulli{}
	}
	if s.Sizer == nil {
		//detlint:allow hotalloc one-time default pinning on first use; never reassigned in steady state
		s.Sizer = Fixed{Flits: s.PacketFlits}
	}
	prob := s.Rate / s.Sizer.Mean()
	s.Process.Begin(t, rng)
	for node := 0; node < s.N; node++ {
		if s.Process.Inject(rng, node, prob) {
			emit(node, s.Pattern.Dest(rng, node), s.Sizer.Draw(rng), 0)
		}
	}
}

// OnDelivered implements sim.Source (synthetic traffic has no replies).
//
//sim:hot
func (s *Synthetic) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
}

// PatternByName builds one of the paper's patterns for a placed network.
func PatternByName(name string, net *topo.Network) Pattern {
	switch name {
	case "RND":
		return Uniform{N: net.N()}
	case "SHF":
		return Shuffle{N: net.N()}
	case "REV":
		return Reversal{N: net.N()}
	case "ADV1":
		return NewAdversarial(net, 1)
	case "ADV2":
		return NewAdversarial(net, 2)
	case "ASYM":
		return Asymmetric{N: net.N()}
	}
	return nil
}
