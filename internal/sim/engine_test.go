// White-box engine tests: the zero-allocation steady-state contract, the
// percentile helper, and the engine containers (ring, wheel, active set).

package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
)

// bernoulliSource mirrors traffic.Synthetic with a uniform pattern. The
// real traffic package imports sim and so cannot be used from white-box
// tests.
type bernoulliSource struct {
	n     int
	rate  float64
	flits int
}

func (b *bernoulliSource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	prob := b.rate / float64(b.flits)
	for node := 0; node < b.n; node++ {
		if rng.Float64() < prob {
			for {
				d := rng.Intn(b.n)
				if d != node {
					emit(node, d, b.flits, 0)
					break
				}
			}
		}
	}
}

func (b *bernoulliSource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
}

func newEngineSim(t testing.TB, scheme BufferScheme, rate float64) *Sim {
	t.Helper()
	sn, err := core.New(core.Params{Q: 5, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sn.Network(core.LayoutSubgroup, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Net:     net,
		Routing: &routing.MinimalRouting{P: routing.NewMinimal(net), VCs: 2},
		VCs:     2,
		Scheme:  scheme,
		Traffic: &bernoulliSource{n: net.N(), rate: rate, flits: 6},
		Seed:    211,
		// Generous sample-capacity hint so latency recording cannot grow
		// the buffer inside the measured window.
		LatSampleCap:  1 << 16,
		WarmupCycles:  2000,
		MeasureCycles: 20000,
		DrainCycles:   4000,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSteadyStateZeroAllocs pins the tentpole contract: once warm, the
// cycle loop performs zero heap allocations — packets come from the
// freelist, routes are borrowed from the compiled table, queues are rings
// that keep their backing arrays, and credits/ejections ride preallocated
// timing-wheel buckets.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, sc := range []struct {
		name   string
		scheme BufferScheme
	}{
		{"EB", EdgeBuffers},
		{"CBR", CentralBuffer},
		{"EL", ElasticLinks},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := newEngineSim(t, sc.scheme, 0.06)
			// The golden SN network is narrow enough for the occupancy
			// bitmask, so these cases pin the bitmask arbitration walk —
			// the allocation-free fast path the router phase runs on.
			if s.occIn == nil {
				t.Fatalf("occupancy bitmask inactive (stride %d x vcs %d); test no longer covers the arbitration fast path", s.stride, s.vcs)
			}
			// Warm up past the warmup phase and into measurement so every
			// ring, pool and wheel bucket has reached its steady-state
			// high-water mark.
			warm := s.cfg.WarmupCycles + 2000
			for s.now = 0; s.now < warm; s.now++ {
				s.step()
			}
			allocs := testing.AllocsPerRun(500, func() {
				s.step()
				s.now++
			})
			if allocs != 0 {
				t.Fatalf("steady-state cycle loop allocates %.2f times per cycle, want 0", allocs)
			}
			if s.doneMeasured == 0 {
				t.Fatal("measurement window delivered nothing; test exercised an idle network")
			}
		})
	}
}

// TestSteadyStateZeroAllocsCompactTable extends the zero-allocation contract
// to the compressed route-table path: route reconstruction at enqueue time
// appends into per-packet buffers that recycle through the freelist, so once
// every pooled packet's buffers have reached the network diameter the cycle
// loop allocates nothing.
func TestSteadyStateZeroAllocsCompactTable(t *testing.T) {
	sn, err := core.New(core.Params{Q: 5, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sn.Network(core.LayoutSubgroup, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := routing.CompileCompact(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Net:           net,
		Table:         tab,
		VCs:           2,
		Scheme:        EdgeBuffers,
		Traffic:       &bernoulliSource{n: net.N(), rate: 0.06, flits: 6},
		Seed:          211,
		LatSampleCap:  1 << 16,
		WarmupCycles:  2000,
		MeasureCycles: 20000,
		DrainCycles:   4000,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.table.Compact() {
		t.Fatal("table is not compact; test no longer covers route reconstruction")
	}
	warm := s.cfg.WarmupCycles + 2000
	for s.now = 0; s.now < warm; s.now++ {
		s.step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		s.step()
		s.now++
	})
	if allocs != 0 {
		t.Fatalf("compact-table steady-state loop allocates %.2f times per cycle, want 0", allocs)
	}
	if s.doneMeasured == 0 {
		t.Fatal("measurement window delivered nothing; test exercised an idle network")
	}
}

// onOffSource mirrors traffic.Synthetic with the OnOff bursty process (the
// traffic package imports sim, so white-box tests re-state the semantics):
// per-node two-state chain, geometric dwell, injection at rate/duty while on.
type onOffSource struct {
	n, flits        int
	rate, duty      float64
	exitOn, exitOff float64
	on              []bool
}

func newOnOffSource(n int, rate, burstLen, duty float64) *onOffSource {
	return &onOffSource{
		n: n, flits: 6, rate: rate, duty: duty,
		exitOn:  1 / burstLen,
		exitOff: duty / ((1 - duty) * burstLen),
		on:      make([]bool, n),
	}
}

func (b *onOffSource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	prob := b.rate / float64(b.flits)
	for node := 0; node < b.n; node++ {
		if b.on[node] {
			if rng.Float64() < b.exitOn {
				b.on[node] = false
			}
		} else if rng.Float64() < b.exitOff {
			b.on[node] = true
		}
		if !b.on[node] || rng.Float64() >= prob/b.duty {
			continue
		}
		for {
			d := rng.Intn(b.n)
			if d != node {
				emit(node, d, b.flits, 0)
				break
			}
		}
	}
}

func (b *onOffSource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
}

// reqReplySource mirrors traffic.ReqReply: a closed loop where every node
// keeps `window` requests outstanding, each delivered request triggers a
// data-sized reply, and each delivered reply returns window credit. Like
// the real source it implements NextFirer: with every window full Generate
// is a zero-RNG no-op until a reply lands.
type reqReplySource struct {
	n, window   int
	outstanding []int
	totalOut    int
}

func (s *reqReplySource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	if s.outstanding == nil {
		s.outstanding = make([]int, s.n)
	}
	for node := 0; node < s.n; node++ {
		for s.outstanding[node] < s.window {
			for {
				d := rng.Intn(s.n)
				if d != node {
					emit(node, d, 2, 1)
					break
				}
			}
			s.outstanding[node]++
			s.totalOut++
		}
	}
}

func (s *reqReplySource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
	switch class {
	case 1:
		emit(dst, src, 6, 2)
	case 2:
		s.outstanding[dst]--
		s.totalOut--
	}
}

func (s *reqReplySource) NextFire(t int64) int64 {
	if s.outstanding != nil && s.totalOut >= s.n*s.window {
		return int64(math.MaxInt64)
	}
	return t + 1
}

// TestSteadyStateZeroAllocsWorkloads extends the zero-allocation contract to
// the new workload shapes: bursty arrivals (idle/active phase churn in the
// active sets) and the request-reply closed loop (OnDelivered-emitted
// replies riding the packet freelist through the ejection path). The cycle
// loop must stay allocation-free under both.
func TestSteadyStateZeroAllocsWorkloads(t *testing.T) {
	sources := []struct {
		name string
		mk   func(n int) Source
	}{
		{"Bursty", func(n int) Source { return newOnOffSource(n, 0.06, 8, 0.25) }},
		{"ReqReply", func(n int) Source { return &reqReplySource{n: n, window: 4} }},
	}
	for _, src := range sources {
		src := src
		t.Run(src.name, func(t *testing.T) {
			s := newEngineSim(t, EdgeBuffers, 0.06)
			s.cfg.Traffic = src.mk(s.net.N())
			warm := s.cfg.WarmupCycles + 2000
			for s.now = 0; s.now < warm; s.now++ {
				s.step()
			}
			allocs := testing.AllocsPerRun(500, func() {
				s.step()
				s.now++
			})
			if allocs != 0 {
				t.Fatalf("steady-state cycle loop allocates %.2f times per cycle, want 0", allocs)
			}
			if s.doneMeasured == 0 {
				t.Fatal("measurement window delivered nothing; test exercised an idle network")
			}
		})
	}
}

// TestSteadyStateZeroAllocsCalendar extends the zero-allocation contract to
// the calendar path: the loop the engine actually runs — step, then a skip
// decision — must stay allocation-free even when skips fire, which they do
// constantly on an idle network. The idle regime is exactly where the
// calendar earns its keep, so an allocating skip would hand back the win.
func TestSteadyStateZeroAllocsCalendar(t *testing.T) {
	for _, sc := range []struct {
		name   string
		scheme BufferScheme
	}{
		{"EB", EdgeBuffers},
		{"CBR", CentralBuffer},
		{"EL", ElasticLinks},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := newEngineSim(t, sc.scheme, 0.06)
			// Step through generation so the measured window covers the
			// drain: live traffic first (skip decisions that must decline),
			// then the drained network (skips that fire).
			genEnd := s.cfg.WarmupCycles + s.cfg.MeasureCycles
			for s.now = 0; s.now < genEnd; s.now++ {
				s.step()
			}
			total := genEnd + s.cfg.DrainCycles
			allocs := testing.AllocsPerRun(500, func() {
				s.step()
				s.skipAhead(total)
				s.now++
			})
			if allocs != 0 {
				t.Fatalf("calendar cycle loop allocates %.2f times per cycle, want 0", allocs)
			}
			if s.eng.cyclesSkipped == 0 {
				t.Fatal("drain phase skipped nothing; skip path not exercised")
			}
		})
	}
}

// TestSkipAccounting pins the CyclesSkipped/CalendarPeak telemetry: nonzero
// on an idle workload (where the drain phase alone is thousands of dead
// cycles), exactly zero at saturation (active sets never empty, so the
// calendar never gets a skip), and exactly zero under Config.CycleStep.
func TestSkipAccounting(t *testing.T) {
	t.Run("IdleSkips", func(t *testing.T) {
		s := newEngineSim(t, EdgeBuffers, 0.002)
		s.cfg.Traffic = &reqReplySource{n: s.net.N(), window: 1}
		s.Run()
		st := s.EngineStats()
		if st.CyclesSkipped == 0 {
			t.Fatalf("idle closed loop skipped nothing: %+v", st)
		}
		if st.CalendarPeak == 0 {
			t.Fatalf("skips fired but no calendar backlog was sampled: %+v", st)
		}
		if st.CyclesSkipped >= st.Cycles {
			t.Fatalf("skipped %d of %d cycles; skips must be a strict subset", st.CyclesSkipped, st.Cycles)
		}
	})
	t.Run("SaturationNeverSkips", func(t *testing.T) {
		s := newEngineSim(t, EdgeBuffers, 0.40)
		s.cfg.DrainCycles = 500 // keep the saturated drain bounded
		s.Run()
		st := s.EngineStats()
		if st.CyclesSkipped != 0 {
			t.Fatalf("saturated run skipped %d cycles, want exactly 0", st.CyclesSkipped)
		}
		if st.CalendarPeak != 0 {
			t.Fatalf("saturated run sampled calendar peak %d, want 0 (no skip decisions)", st.CalendarPeak)
		}
	})
	t.Run("CycleStepNeverSkips", func(t *testing.T) {
		s := newEngineSim(t, EdgeBuffers, 0.002)
		s.cfg.CycleStep = true
		s.calendar = false
		s.Run()
		st := s.EngineStats()
		if st.CyclesSkipped != 0 || st.CalendarPeak != 0 {
			t.Fatalf("CycleStep run reported skip telemetry: %+v", st)
		}
	})
}

// TestPercentile pins the nearest-rank floor semantics of the latency
// percentile on known distributions.
func TestPercentile(t *testing.T) {
	perm := rand.New(rand.NewSource(1)).Perm(100)
	xs := make([]int64, 100)
	for i, v := range perm {
		xs[i] = int64(v + 1) // 1..100 shuffled
	}
	if got := percentile(xs, 0.99); got != 99 {
		// idx = floor(0.99 * 99) = 98 -> sorted[98] = 99.
		t.Errorf("P99 of 1..100 = %v, want 99", got)
	}
	if got := percentile(xs, 1.0); got != 100 {
		t.Errorf("P100 of 1..100 = %v, want 100", got)
	}
	if got := percentile(xs, 0.5); got != 50 {
		// idx = floor(0.5 * 99) = 49 -> sorted[49] = 50.
		t.Errorf("P50 of 1..100 = %v, want 50", got)
	}
	if got := percentile([]int64{7}, 0.99); got != 7 {
		t.Errorf("P99 of a single sample = %v, want 7", got)
	}
	skewed := []int64{1000, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := percentile(skewed, 0.99); got != 1 {
		// idx = floor(0.99 * 9) = 8 -> sorted[8] = 1: with only ten
		// samples the nearest-rank floor lands below the outlier.
		t.Errorf("P99 of ten samples = %v, want 1 (floor semantics)", got)
	}
	if got := percentile(skewed, 1.0); got != 1000 {
		t.Errorf("max of skewed = %v, want 1000", got)
	}
}

func TestRing(t *testing.T) {
	var r ring[int]
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			r.push(i)
		}
		if r.len() != 20 {
			t.Fatalf("len = %d", r.len())
		}
		for i := 0; i < 20; i++ {
			if got := r.at(i); got != i {
				t.Fatalf("at(%d) = %d", i, got)
			}
		}
		for i := 0; i < 20; i++ {
			if got := r.pop(); got != i {
				t.Fatalf("pop %d = %d", i, got)
			}
		}
		if !r.empty() {
			t.Fatal("not empty after drain")
		}
	}
	// Interleaved push/pop wraps the head around the backing array.
	for i := 0; i < 100; i++ {
		r.push(i)
		r.push(i + 1000)
		if got := r.pop(); got != i && i > 0 {
			t.Fatalf("interleaved pop = %d at %d", got, i)
		}
		r.pop()
	}
}

func TestWheel(t *testing.T) {
	w := newWheel[int](5)
	w.schedule(10, 12, 42)
	w.schedule(10, 11, 7)
	w.schedule(10, 12, 43)
	if got := w.take(11); len(got) != 1 || got[0] != 7 {
		t.Fatalf("take(11) = %v", got)
	}
	if got := w.take(12); len(got) != 2 || got[0] != 42 || got[1] != 43 {
		t.Fatalf("take(12) = %v", got)
	}
	if w.pending != 0 {
		t.Fatalf("pending = %d", w.pending)
	}
	if w.peak != 3 {
		t.Fatalf("peak = %d", w.peak)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at or before now must panic")
		}
	}()
	w.schedule(10, 10, 1)
}

// TestWheelOverflow pins the overflow path: an event scheduled beyond the
// horizon used to panic ("wheel event outside horizon"); it now parks in the
// overflow list and still fires at exactly its due cycle — including when
// the clock jumps straight there, as the calendar's skip does.
func TestWheelOverflow(t *testing.T) {
	w := newWheel[int](5)
	w.schedule(10, 30, 1) // far beyond the 5-cycle horizon
	w.schedule(10, 12, 2) // in-horizon neighbour stays on the fast path
	if w.pending != 2 || w.peak != 2 {
		t.Fatalf("pending/peak = %d/%d, want 2/2", w.pending, w.peak)
	}
	if got := w.nextDue(10); got != 12 {
		t.Fatalf("nextDue(10) = %d, want 12", got)
	}
	if got := w.take(12); len(got) != 1 || got[0] != 2 {
		t.Fatalf("take(12) = %v", got)
	}
	if got := w.nextDue(12); got != 30 {
		t.Fatalf("nextDue(12) = %d, want 30", got)
	}
	// Cycle-by-cycle arrival at the due cycle.
	for now := int64(13); now < 30; now++ {
		if got := w.take(now); len(got) != 0 {
			t.Fatalf("take(%d) = %v, want empty", now, got)
		}
	}
	if got := w.take(30); len(got) != 1 || got[0] != 1 {
		t.Fatalf("take(30) = %v, want [1]", got)
	}
	if w.pending != 0 {
		t.Fatalf("pending = %d after drain", w.pending)
	}
	// A skip-style jump: schedule beyond the horizon, then take at the due
	// cycle without visiting the cycles in between.
	w.schedule(30, 95, 7)
	if got := w.nextDue(30); got != 95 {
		t.Fatalf("nextDue(30) = %d, want 95", got)
	}
	if got := w.take(95); len(got) != 1 || got[0] != 7 {
		t.Fatalf("take(95) after jump = %v, want [7]", got)
	}
}

// TestWheelNextDue pins the bucket-to-cycle arithmetic across wraparound.
func TestWheelNextDue(t *testing.T) {
	w := newWheel[int](4)
	if got := w.nextDue(100); got != int64(math.MaxInt64) {
		t.Fatalf("nextDue on empty wheel = %d, want MaxInt64", got)
	}
	w.schedule(100, 103, 1)
	w.schedule(100, 101, 2)
	if got := w.nextDue(100); got != 101 {
		t.Fatalf("nextDue(100) = %d, want 101", got)
	}
	w.take(101)
	if got := w.nextDue(101); got != 103 {
		t.Fatalf("nextDue(101) = %d, want 103", got)
	}
	w.take(102)
	w.take(103)
	if got := w.nextDue(103); got != int64(math.MaxInt64) {
		t.Fatalf("nextDue after drain = %d, want MaxInt64", got)
	}
}

func TestActiveSetSortedDedup(t *testing.T) {
	a := newActiveSet(10)
	for _, i := range []int{7, 3, 7, 1, 3, 9} {
		a.add(i)
	}
	if a.size() != 4 {
		t.Fatalf("size = %d, want 4 (deduplicated)", a.size())
	}
	var seen []int
	a.forEachSorted(func(i int) bool {
		seen = append(seen, i)
		return i == 3 // retain only 3
	})
	if len(seen) != 4 || seen[0] != 1 || seen[1] != 3 || seen[2] != 7 || seen[3] != 9 {
		t.Fatalf("iteration order %v, want ascending [1 3 7 9]", seen)
	}
	seen = nil
	a.forEachSorted(func(i int) bool {
		seen = append(seen, i)
		return false
	})
	if len(seen) != 1 || seen[0] != 3 {
		t.Fatalf("retained %v, want [3]", seen)
	}
	if a.size() != 0 {
		t.Fatalf("size after retire = %d", a.size())
	}
}

// TestEngineStatsPopulated checks the telemetry block reflects a real run:
// packets recycle through the freelist and active sets stay well below the
// topology size at low load.
func TestEngineStatsPopulated(t *testing.T) {
	s := newEngineSim(t, EdgeBuffers, 0.02)
	s.Run()
	st := s.EngineStats()
	if st.Cycles == 0 || st.PacketAllocs == 0 {
		t.Fatalf("empty engine stats: %+v", st)
	}
	if st.PacketReuses == 0 {
		t.Error("no packet reuse in a 26k-cycle run; freelist broken")
	}
	if st.AvgActiveRouters <= 0 || st.AvgActiveRouters >= float64(s.net.Nr) {
		t.Errorf("avg active routers %.1f out of (0, %d)", st.AvgActiveRouters, s.net.Nr)
	}
	if st.PeakCreditEvents == 0 {
		t.Error("credit wheel never held an event under EdgeBuffers")
	}
	if st.PeakEjectEvents == 0 {
		t.Error("ejection wheel never held an event")
	}
}
