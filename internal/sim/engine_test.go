// White-box engine tests: the zero-allocation steady-state contract, the
// percentile helper, and the engine containers (ring, wheel, active set).

package sim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
)

// bernoulliSource mirrors traffic.Synthetic with a uniform pattern. The
// real traffic package imports sim and so cannot be used from white-box
// tests.
type bernoulliSource struct {
	n     int
	rate  float64
	flits int
}

func (b *bernoulliSource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	prob := b.rate / float64(b.flits)
	for node := 0; node < b.n; node++ {
		if rng.Float64() < prob {
			for {
				d := rng.Intn(b.n)
				if d != node {
					emit(node, d, b.flits, 0)
					break
				}
			}
		}
	}
}

func (b *bernoulliSource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
}

func newEngineSim(t testing.TB, scheme BufferScheme, rate float64) *Sim {
	t.Helper()
	sn, err := core.New(core.Params{Q: 5, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sn.Network(core.LayoutSubgroup, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Net:     net,
		Routing: &routing.MinimalRouting{P: routing.NewMinimal(net), VCs: 2},
		VCs:     2,
		Scheme:  scheme,
		Traffic: &bernoulliSource{n: net.N(), rate: rate, flits: 6},
		Seed:    211,
		// Generous sample-capacity hint so latency recording cannot grow
		// the buffer inside the measured window.
		LatSampleCap:  1 << 16,
		WarmupCycles:  2000,
		MeasureCycles: 20000,
		DrainCycles:   4000,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSteadyStateZeroAllocs pins the tentpole contract: once warm, the
// cycle loop performs zero heap allocations — packets come from the
// freelist, routes are borrowed from the compiled table, queues are rings
// that keep their backing arrays, and credits/ejections ride preallocated
// timing-wheel buckets.
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, sc := range []struct {
		name   string
		scheme BufferScheme
	}{
		{"EB", EdgeBuffers},
		{"CBR", CentralBuffer},
		{"EL", ElasticLinks},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := newEngineSim(t, sc.scheme, 0.06)
			// Warm up past the warmup phase and into measurement so every
			// ring, pool and wheel bucket has reached its steady-state
			// high-water mark.
			warm := s.cfg.WarmupCycles + 2000
			for s.now = 0; s.now < warm; s.now++ {
				s.step()
			}
			allocs := testing.AllocsPerRun(500, func() {
				s.step()
				s.now++
			})
			if allocs != 0 {
				t.Fatalf("steady-state cycle loop allocates %.2f times per cycle, want 0", allocs)
			}
			if s.doneMeasured == 0 {
				t.Fatal("measurement window delivered nothing; test exercised an idle network")
			}
		})
	}
}

// onOffSource mirrors traffic.Synthetic with the OnOff bursty process (the
// traffic package imports sim, so white-box tests re-state the semantics):
// per-node two-state chain, geometric dwell, injection at rate/duty while on.
type onOffSource struct {
	n, flits        int
	rate, duty      float64
	exitOn, exitOff float64
	on              []bool
}

func newOnOffSource(n int, rate, burstLen, duty float64) *onOffSource {
	return &onOffSource{
		n: n, flits: 6, rate: rate, duty: duty,
		exitOn:  1 / burstLen,
		exitOff: duty / ((1 - duty) * burstLen),
		on:      make([]bool, n),
	}
}

func (b *onOffSource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	prob := b.rate / float64(b.flits)
	for node := 0; node < b.n; node++ {
		if b.on[node] {
			if rng.Float64() < b.exitOn {
				b.on[node] = false
			}
		} else if rng.Float64() < b.exitOff {
			b.on[node] = true
		}
		if !b.on[node] || rng.Float64() >= prob/b.duty {
			continue
		}
		for {
			d := rng.Intn(b.n)
			if d != node {
				emit(node, d, b.flits, 0)
				break
			}
		}
	}
}

func (b *onOffSource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
}

// reqReplySource mirrors traffic.ReqReply: a closed loop where every node
// keeps `window` requests outstanding, each delivered request triggers a
// data-sized reply, and each delivered reply returns window credit.
type reqReplySource struct {
	n, window   int
	outstanding []int
}

func (s *reqReplySource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	if s.outstanding == nil {
		s.outstanding = make([]int, s.n)
	}
	for node := 0; node < s.n; node++ {
		for s.outstanding[node] < s.window {
			for {
				d := rng.Intn(s.n)
				if d != node {
					emit(node, d, 2, 1)
					break
				}
			}
			s.outstanding[node]++
		}
	}
}

func (s *reqReplySource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
	switch class {
	case 1:
		emit(dst, src, 6, 2)
	case 2:
		s.outstanding[dst]--
	}
}

// TestSteadyStateZeroAllocsWorkloads extends the zero-allocation contract to
// the new workload shapes: bursty arrivals (idle/active phase churn in the
// active sets) and the request-reply closed loop (OnDelivered-emitted
// replies riding the packet freelist through the ejection path). The cycle
// loop must stay allocation-free under both.
func TestSteadyStateZeroAllocsWorkloads(t *testing.T) {
	sources := []struct {
		name string
		mk   func(n int) Source
	}{
		{"Bursty", func(n int) Source { return newOnOffSource(n, 0.06, 8, 0.25) }},
		{"ReqReply", func(n int) Source { return &reqReplySource{n: n, window: 4} }},
	}
	for _, src := range sources {
		src := src
		t.Run(src.name, func(t *testing.T) {
			s := newEngineSim(t, EdgeBuffers, 0.06)
			s.cfg.Traffic = src.mk(s.net.N())
			warm := s.cfg.WarmupCycles + 2000
			for s.now = 0; s.now < warm; s.now++ {
				s.step()
			}
			allocs := testing.AllocsPerRun(500, func() {
				s.step()
				s.now++
			})
			if allocs != 0 {
				t.Fatalf("steady-state cycle loop allocates %.2f times per cycle, want 0", allocs)
			}
			if s.doneMeasured == 0 {
				t.Fatal("measurement window delivered nothing; test exercised an idle network")
			}
		})
	}
}

// TestPercentile pins the nearest-rank floor semantics of the latency
// percentile on known distributions.
func TestPercentile(t *testing.T) {
	perm := rand.New(rand.NewSource(1)).Perm(100)
	xs := make([]int64, 100)
	for i, v := range perm {
		xs[i] = int64(v + 1) // 1..100 shuffled
	}
	if got := percentile(xs, 0.99); got != 99 {
		// idx = floor(0.99 * 99) = 98 -> sorted[98] = 99.
		t.Errorf("P99 of 1..100 = %v, want 99", got)
	}
	if got := percentile(xs, 1.0); got != 100 {
		t.Errorf("P100 of 1..100 = %v, want 100", got)
	}
	if got := percentile(xs, 0.5); got != 50 {
		// idx = floor(0.5 * 99) = 49 -> sorted[49] = 50.
		t.Errorf("P50 of 1..100 = %v, want 50", got)
	}
	if got := percentile([]int64{7}, 0.99); got != 7 {
		t.Errorf("P99 of a single sample = %v, want 7", got)
	}
	skewed := []int64{1000, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := percentile(skewed, 0.99); got != 1 {
		// idx = floor(0.99 * 9) = 8 -> sorted[8] = 1: with only ten
		// samples the nearest-rank floor lands below the outlier.
		t.Errorf("P99 of ten samples = %v, want 1 (floor semantics)", got)
	}
	if got := percentile(skewed, 1.0); got != 1000 {
		t.Errorf("max of skewed = %v, want 1000", got)
	}
}

func TestRing(t *testing.T) {
	var r ring[int]
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			r.push(i)
		}
		if r.len() != 20 {
			t.Fatalf("len = %d", r.len())
		}
		for i := 0; i < 20; i++ {
			if got := r.at(i); got != i {
				t.Fatalf("at(%d) = %d", i, got)
			}
		}
		for i := 0; i < 20; i++ {
			if got := r.pop(); got != i {
				t.Fatalf("pop %d = %d", i, got)
			}
		}
		if !r.empty() {
			t.Fatal("not empty after drain")
		}
	}
	// Interleaved push/pop wraps the head around the backing array.
	for i := 0; i < 100; i++ {
		r.push(i)
		r.push(i + 1000)
		if got := r.pop(); got != i && i > 0 {
			t.Fatalf("interleaved pop = %d at %d", got, i)
		}
		r.pop()
	}
}

func TestWheel(t *testing.T) {
	w := newWheel[int](5)
	w.schedule(10, 12, 42)
	w.schedule(10, 11, 7)
	w.schedule(10, 12, 43)
	if got := w.take(11); len(got) != 1 || got[0] != 7 {
		t.Fatalf("take(11) = %v", got)
	}
	if got := w.take(12); len(got) != 2 || got[0] != 42 || got[1] != 43 {
		t.Fatalf("take(12) = %v", got)
	}
	if w.pending != 0 {
		t.Fatalf("pending = %d", w.pending)
	}
	if w.peak != 3 {
		t.Fatalf("peak = %d", w.peak)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling beyond the horizon must panic")
		}
	}()
	w.schedule(10, 15, 1)
}

func TestActiveSetSortedDedup(t *testing.T) {
	a := newActiveSet(10)
	for _, i := range []int{7, 3, 7, 1, 3, 9} {
		a.add(i)
	}
	if a.size() != 4 {
		t.Fatalf("size = %d, want 4 (deduplicated)", a.size())
	}
	var seen []int
	a.forEachSorted(func(i int) bool {
		seen = append(seen, i)
		return i == 3 // retain only 3
	})
	if len(seen) != 4 || seen[0] != 1 || seen[1] != 3 || seen[2] != 7 || seen[3] != 9 {
		t.Fatalf("iteration order %v, want ascending [1 3 7 9]", seen)
	}
	seen = nil
	a.forEachSorted(func(i int) bool {
		seen = append(seen, i)
		return false
	})
	if len(seen) != 1 || seen[0] != 3 {
		t.Fatalf("retained %v, want [3]", seen)
	}
	if a.size() != 0 {
		t.Fatalf("size after retire = %d", a.size())
	}
}

// TestEngineStatsPopulated checks the telemetry block reflects a real run:
// packets recycle through the freelist and active sets stay well below the
// topology size at low load.
func TestEngineStatsPopulated(t *testing.T) {
	s := newEngineSim(t, EdgeBuffers, 0.02)
	s.Run()
	st := s.EngineStats()
	if st.Cycles == 0 || st.PacketAllocs == 0 {
		t.Fatalf("empty engine stats: %+v", st)
	}
	if st.PacketReuses == 0 {
		t.Error("no packet reuse in a 26k-cycle run; freelist broken")
	}
	if st.AvgActiveRouters <= 0 || st.AvgActiveRouters >= float64(s.net.Nr) {
		t.Errorf("avg active routers %.1f out of (0, %d)", st.AvgActiveRouters, s.net.Nr)
	}
	if st.PeakCreditEvents == 0 {
		t.Error("credit wheel never held an event under EdgeBuffers")
	}
	if st.PeakEjectEvents == 0 {
		t.Error("ejection wheel never held an event")
	}
}
