// The latency-query entry point for co-simulation serving: instead of a
// statistical run over warmup/measure/drain phases, EstimateLatencies
// answers "how many cycles does this transfer take?" by injecting a batch
// of packets into an otherwise idle network at cycle 0 and stepping the
// engine until the last tail flit ejects. Execution-driven platforms (in
// the uPIMulator x BookSim2 style) call this through the slimnoc/serve
// service layer, which owns the warm-engine pooling and response caching.

package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Transfer is one point-to-point message whose delivery latency an
// estimate episode measures: Flits flits from node Src to node Dst.
type Transfer struct {
	Src   int `json:"src"`
	Dst   int `json:"dst"`
	Flits int `json:"flits"`
}

// DefaultEstimateCap bounds an estimate episode when the caller passes
// maxCycles <= 0: generous enough for any deliverable batch on any
// supported topology, small enough to fail fast on a misconfigured one.
const DefaultEstimateCap = 1 << 20

// oneshotSource is the Source behind EstimateLatencies: it emits every
// transfer at cycle 0 (tagged by batch index via the class field) and
// records each tail-flit ejection cycle, which on an idle network with
// genTime 0 is the transfer's end-to-end latency.
type oneshotSource struct {
	transfers []Transfer
	lat       []int64
	delivered int
}

var _ Source = (*oneshotSource)(nil)
var _ NextFirer = (*oneshotSource)(nil)

// Generate implements Source: the whole batch enters at cycle 0, so
// transfers within one episode contend for links and buffers exactly like
// simultaneously issued DMAs.
func (o *oneshotSource) Generate(t int64, _ *rand.Rand, emit func(src, dst, flits, class int)) {
	if t != 0 {
		return
	}
	for i, tr := range o.transfers {
		emit(tr.Src, tr.Dst, tr.Flits, i)
	}
}

// NextFire implements NextFirer: after cycle 0 Generate never acts again
// (and draws no RNG), so the event calendar may skip every dead cycle of an
// episode — the bulk of an estimate against a mostly idle network.
func (o *oneshotSource) NextFire(t int64) int64 {
	if t < 0 {
		return 0
	}
	return math.MaxInt64
}

// OnDelivered implements Source: the ejection cycle of transfer `class` is
// its latency (injection happened at cycle 0). Emit is never called — an
// estimate episode has no replies.
func (o *oneshotSource) OnDelivered(t int64, _, _, _, class int, _ func(src, dst, flits, class int)) {
	if class >= 0 && class < len(o.lat) && o.lat[class] < 0 {
		o.lat[class] = t
		o.delivered++
	}
}

// EstimateLatencies runs one isolated estimate episode: the transfers are
// injected at cycle 0 into an idle network built from cfg (whose Traffic
// must be nil — the episode supplies its own source) and the engine steps
// until every tail flit has ejected. The returned slice holds each
// transfer's delivery latency in cycles, in batch order.
//
// A single-transfer batch measures the pure zero-load latency of that
// route; a multi-transfer batch measures a concurrent burst, contention
// included. Episodes are deterministic: the same cfg and batch always
// yield the same latencies, independent of wall-clock or scheduling (the
// engine RNG is only consulted by adaptive policies, which seed from
// cfg.Seed as usual).
//
// maxCycles bounds the episode (<= 0 selects DefaultEstimateCap); hitting
// the bound reports an error naming the undelivered transfers, the
// estimate-mode analogue of the run loop's deadlock watchdog.
//
// The expensive inputs — cfg.Net and cfg.Table — are read-only here like
// everywhere else in the engine, so any number of concurrent episodes may
// share one network and one compiled route table (the slimnoc/serve engine
// pool relies on this, under the same contract as campaign workers).
func EstimateLatencies(cfg Config, transfers []Transfer, maxCycles int64) ([]int64, error) {
	if cfg.Traffic != nil {
		return nil, fmt.Errorf("sim: estimate: cfg.Traffic must be nil (the episode supplies its own source)")
	}
	if len(transfers) == 0 {
		return nil, fmt.Errorf("sim: estimate: empty transfer batch")
	}
	if cfg.Net == nil {
		return nil, fmt.Errorf("sim: estimate: cfg.Net is required")
	}
	n := cfg.Net.N()
	for i, tr := range transfers {
		if tr.Src < 0 || tr.Src >= n || tr.Dst < 0 || tr.Dst >= n {
			return nil, fmt.Errorf("sim: estimate: transfer %d endpoints (%d -> %d) out of node range [0, %d)",
				i, tr.Src, tr.Dst, n)
		}
		if tr.Flits < 1 {
			return nil, fmt.Errorf("sim: estimate: transfer %d has %d flits, want >= 1", i, tr.Flits)
		}
	}
	src := &oneshotSource{transfers: transfers, lat: make([]int64, len(transfers))}
	for i := range src.lat {
		src.lat[i] = -1
	}
	cfg.Traffic = src
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if maxCycles <= 0 {
		maxCycles = DefaultEstimateCap
	}
	// Drive the cycle loop directly: unlike Run there are no phases — the
	// episode ends the moment the batch is fully delivered. Delayed
	// ejections ride the ejection wheel and complete inside step, so no
	// final flush is needed. Domain workers (cfg.EngineJobs > 1) run for
	// the episode like they do for a full run.
	s.startWorkers()
	defer s.stopWorkers()
	for s.now = 0; src.delivered < len(transfers); s.now++ {
		if s.now >= maxCycles {
			return nil, fmt.Errorf("sim: estimate: %d of %d transfers undelivered after %d cycles (deadlock or unreachable destination)",
				len(transfers)-src.delivered, len(transfers), maxCycles)
		}
		s.step()
		if s.calendar {
			// Skipping is bounded by the episode cap, so a stuck batch hits
			// the watchdog above at the identical cycle count either way.
			s.skipAhead(maxCycles)
		}
	}
	return src.lat, nil
}
