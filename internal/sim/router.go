// Router pipeline: switch allocation, central-buffer management, injection
// and ejection. One call to stepRoutersDomain advances every active router
// of one spatial domain by one cycle; idle routers cost nothing. All state
// touched here is either owned by the router's domain (SoA slices indexed by
// the domain's router range, NIC injection queues of attached nodes, the
// outgoing links' sender side) or staged per domain for the serial merge
// (timing-wheel events, occupancy decrements, cross-domain link wakes) — see
// domain.go for the decomposition contract.

package sim

import "slices"

// routerDelay is the router pipeline latency added to every traversal: the
// paper's 2-stage edge-buffer pipeline and the CBR bypass path both take 2
// cycles; the CBR buffered path takes 4 (§4.1, §5.1).
const (
	routerDelayDirect   = 2
	routerDelayBuffered = 4
)

// stepRoutersDomain performs ejection, central-buffer reads/writes, switch
// allocation and injection for every active router of the domain, in
// ascending router index order (matching the original full scan; the sort
// also makes the list append order of the preceding link phase irrelevant).
//
//sim:hot
//sim:domain
func (s *Sim) stepRoutersDomain(d *domain) {
	slices.Sort(d.routerList)
	keep := d.routerList[:0]
	for _, r := range d.routerList {
		s.stepRouter(d, int(r))
		if s.work[r] > 0 {
			keep = append(keep, r)
		} else {
			s.routerIn[r] = false
		}
	}
	d.routerList = keep
}

//sim:hot
//sim:domain
func (s *Sim) stepRouter(d *domain, r int) {
	now := s.now
	kp := int(s.kp[r])
	pb := r * s.stride

	// 1. Central-buffer read port: drain at most one flit from the CB.
	if s.scheme == CentralBuffer {
		s.cbDrain(d, r)
	}

	// 2. Network inputs: iterate ports with a rotating start for fairness.
	// The rotation advances once per cycle whether or not the router does
	// work, so it is derived from the clock rather than stored (idle
	// routers are skipped entirely but must arbitrate identically).
	cbWrote := false
	if kp > 0 {
		rr := int(now % int64(kp))
		for off := 0; off < kp; off++ {
			pi := (rr + off) % kp
			if s.inUsedAt[pb+pi] == now {
				continue
			}
			vb := (pb + pi) * s.vcs
			for vc := 0; vc < s.vcs; vc++ {
				q := &s.inQ[vb+vc]
				if q.empty() {
					continue
				}
				f := q.front()
				if s.tryAdvance(d, r, f, &cbWrote, pi, vc) {
					s.inUsedAt[pb+pi] = now
					break
				}
			}
		}
	}

	// 3. Injection: each attached node may insert one flit per cycle.
	// Nodes attach contiguously (New rejects node maps), matching the
	// order of Network.RouterNodes without its allocation.
	base := r * s.net.P
	for node := base; node < base+s.net.P; node++ {
		nc := &s.nics[node]
		if nc.injQ.empty() {
			continue
		}
		f := nc.injQ.front()
		p := f.pkt
		if int(f.hop) == len(p.path)-1 {
			// Same-router destination: eject directly.
			slot := s.ejSlot(p.dst)
			if s.ejUsedAt[slot] == now {
				continue
			}
			s.ejUsedAt[slot] = now
			nc.injQ.pop()
			s.ejectWithDelay(d, r, f)
			continue
		}
		outPort := int(p.ports[f.hop])
		outVC := int(p.vcs[f.hop])
		if s.outUsedAt[pb+outPort] == now {
			continue
		}
		if !s.outputReady(r, p, outPort, outVC, f.head()) {
			continue
		}
		nc.injQ.pop()
		s.sendFlit(d, r, f, outPort, outVC, routerDelayDirect)
		s.outUsedAt[pb+outPort] = now
	}
}

// tryAdvance attempts to move the head flit of input (pi, vc). Returns true
// if the flit was consumed.
//
//sim:hot
//sim:domain
func (s *Sim) tryAdvance(d *domain, r int, f flit, cbWrote *bool, pi, vc int) bool {
	p := f.pkt
	if int(p.path[f.hop]) != r {
		panic("sim: flit at wrong router")
	}
	// Ejection.
	if int(f.hop) == len(p.path)-1 {
		slot := s.ejSlot(p.dst)
		if s.ejUsedAt[slot] == s.now {
			return false
		}
		s.ejUsedAt[slot] = s.now
		s.popInput(d, r, pi, vc)
		s.ejectWithDelay(d, r, f)
		return true
	}
	outPort := int(p.ports[f.hop])
	outVC := int(p.vcs[f.hop])

	if s.scheme == CentralBuffer {
		return s.tryAdvanceCBR(d, r, f, cbWrote, pi, vc, outPort, outVC)
	}
	pb := r * s.stride
	if s.outUsedAt[pb+outPort] == s.now {
		return false
	}
	if !s.outputReady(r, p, outPort, outVC, f.head()) {
		return false
	}
	s.popInput(d, r, pi, vc)
	d.forwarded++
	s.sendFlit(d, r, f, outPort, outVC, routerDelayDirect)
	s.outUsedAt[pb+outPort] = s.now
	return true
}

// tryAdvanceCBR handles the central-buffer router's bypass-vs-buffered
// decision (§4.1): head flits pick the 2-cycle bypass when the output VC is
// free and no CB traffic is queued for it; otherwise the whole packet
// reserves CB space atomically (§4.3) and streams through the buffered
// 4-cycle path.
//
//sim:hot
//sim:domain
func (s *Sim) tryAdvanceCBR(d *domain, r int, f flit, cbWrote *bool, pi, vc, outPort, outVC int) bool {
	p := f.pkt
	pb := r * s.stride
	vi := (pb+outPort)*s.vcs + outVC
	q := &s.cbq[vi]
	if f.head() && p.cbState[f.hop] == 0 {
		// Decide once per router visit.
		if q.empty() && s.outOwner[vi] == -1 && s.outUsedAt[pb+outPort] != s.now &&
			s.linkHasRoom(r, outPort, outVC) {
			p.cbState[f.hop] = 1 // bypass
		} else if s.cbFree[r] >= int32(p.flits) {
			s.cbFree[r] -= int32(p.flits)
			p.cbState[f.hop] = 2 // buffered
			cp := s.allocCBPacket(d)
			cp.pkt, cp.outPort, cp.outVC, cp.expected = p, outPort, outVC, p.flits
			q.push(cp)
		} else {
			return false // wait for CB space or the output
		}
	}
	if p.cbState[f.hop] == 0 {
		// Body flit ahead of its head's decision: cannot happen in FIFO
		// order; treat as a stall defensively.
		return false
	}
	if p.cbState[f.hop] == 2 {
		// CB write port: one flit per router per cycle.
		if *cbWrote {
			return false
		}
		for i := 0; i < q.len(); i++ {
			cp := q.at(i)
			if cp.pkt == p {
				s.popInput(d, r, pi, vc)
				cp.stored.push(f)
				cp.expected--
				*cbWrote = true
				return true
			}
		}
		return false
	}
	// Bypass path: behaves like a direct wormhole traversal.
	if s.outUsedAt[pb+outPort] == s.now {
		return false
	}
	if !s.outputReady(r, p, outPort, outVC, f.head()) {
		return false
	}
	s.popInput(d, r, pi, vc)
	d.bypass++
	d.forwarded++
	s.sendFlit(d, r, f, outPort, outVC, routerDelayDirect)
	s.outUsedAt[pb+outPort] = s.now
	return true
}

// allocCBPacket takes a CB packet record from the domain's freelist
// (cbPackets live and die at one router, so the pools are domain-closed).
//
//sim:hot
//sim:domain
func (s *Sim) allocCBPacket(d *domain) *cbPacket {
	if n := len(d.cbPool); n > 0 {
		cp := d.cbPool[n-1]
		d.cbPool[n-1] = nil
		d.cbPool = d.cbPool[:n-1]
		return cp
	}
	//detlint:allow hotalloc freelist miss only; steady state recycles via freeCBPacket (pinned by TestSteadyStateZeroAllocs)
	return &cbPacket{}
}

// freeCBPacket recycles a drained CB packet record, keeping its ring's
// capacity.
//
//sim:hot
//sim:domain
func (s *Sim) freeCBPacket(d *domain, cp *cbPacket) {
	cp.pkt = nil
	//detlint:allow hotalloc amortised freelist growth; capacity is retained across cycles
	d.cbPool = append(d.cbPool, cp)
}

// cbDrain moves at most one flit from the central buffer to an output (the
// CB's single read port), scanning (port, vc) queues in a deterministic
// rotating order.
//
//sim:hot
//sim:domain
func (s *Sim) cbDrain(d *domain, r int) {
	total := int(s.kp[r]) * s.vcs
	start := int(s.now) % maxi(total, 1)
	pb := r * s.stride
	vb := pb * s.vcs
	for off := 0; off < total; off++ {
		slot := (start + off) % total
		outPort, outVC := slot/s.vcs, slot%s.vcs
		q := &s.cbq[vb+slot]
		if q.empty() {
			continue
		}
		cp := q.front()
		if cp.stored.empty() {
			continue
		}
		if s.outUsedAt[pb+outPort] == s.now {
			continue
		}
		f := cp.stored.front()
		if !s.outputReady(r, cp.pkt, outPort, outVC, f.head()) {
			continue
		}
		cp.stored.pop()
		s.cbFree[r]++
		d.buffered++
		d.forwarded++
		s.sendFlit(d, r, f, outPort, outVC, routerDelayBuffered)
		s.outUsedAt[pb+outPort] = s.now
		if f.tail() {
			q.pop()
			s.freeCBPacket(d, cp)
		}
		return // single read port
	}
}

//sim:hot
func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// outputReady checks VC ownership and downstream space for one flit.
//
//sim:hot
//sim:domain
func (s *Sim) outputReady(r int, p *packet, outPort, outVC int, head bool) bool {
	vi := (r*s.stride+outPort)*s.vcs + outVC
	owner := s.outOwner[vi]
	if head {
		if owner != -1 {
			return false
		}
	} else if owner != p.id {
		return false
	}
	if s.scheme == EdgeBuffers {
		return s.credits[vi] > 0
	}
	return s.linkHasRoom(r, outPort, outVC)
}

// linkHasRoom reports whether the elastic link pipeline toward outPort can
// accept another flit on outVC (capacity = latency stages + 1 slave latch).
//
//sim:hot
//sim:domain
func (s *Sim) linkHasRoom(r, outPort, outVC int) bool {
	l := &s.links[s.outLink[r*s.stride+outPort]]
	return l.perVCInFly[outVC] < int(l.latency)+1
}

// sendFlit commits a flit to an output: ownership transitions, credit
// consumption, link occupancy, and the traversal itself. The flit leaves
// the router, so its work counter drops and the link wakes — on its
// receiving domain's list, via the staged linkActs when that domain is not
// ours. The link-side writes are safe in the parallel phase because a
// directed link has exactly one sending router, hence exactly one writing
// domain; the receiver only touches these fields in the (barrier-separated)
// link phase.
//
//sim:hot
//sim:domain
func (s *Sim) sendFlit(d *domain, r int, f flit, outPort, outVC int, delay int64) {
	p := f.pkt
	vi := (r*s.stride+outPort)*s.vcs + outVC
	if f.head() {
		s.outOwner[vi] = p.id
	}
	if f.tail() {
		s.outOwner[vi] = -1
	}
	if s.scheme == EdgeBuffers {
		s.credits[vi]--
		if s.credits[vi] < 0 {
			panic("sim: negative credits")
		}
	}
	lid := s.outLink[r*s.stride+outPort]
	l := &s.links[lid]
	f.hop++
	l.lanes[outVC].push(linkFlit{f: f, arrive: s.now + delay + l.latency})
	//detlint:allow sharedread sender-exclusive: one sending router per directed link, receiver reads only after the phase barrier
	l.pending++
	//detlint:allow sharedread sender-exclusive: one sending router per directed link, receiver reads only after the phase barrier
	l.perVCInFly[outVC]++
	//detlint:allow sharedread sender-exclusive increment; the receiver's decrements are staged in domain.occDecs and merged serially
	l.occupancy++
	if !s.linkIn[lid] {
		s.linkIn[lid] = true
		//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
		d.linkActs = append(d.linkActs, lid)
	}
	s.work[r]--
}

// popInput removes the head flit from input (pi, vc). The upstream credit
// return and the UGAL occupancy decrement both target state shared with
// other domains (the credit wheel; the sender-side occupancy counter), so
// they are staged per domain and replayed at the merge.
//
//sim:hot
//sim:domain
func (s *Sim) popInput(d *domain, r, pi, vc int) {
	s.inQ[(r*s.stride+pi)*s.vcs+vc].pop()
	lid := s.inLink[r*s.stride+pi]
	//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
	d.occDecs = append(d.occDecs, lid)
	if s.scheme == EdgeBuffers {
		l := &s.links[lid]
		//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
		d.credits = append(d.credits, stagedCredit{
			at: s.now + l.latency,
			ev: creditEvent{
				router: int32(l.from),
				port:   s.revPort[r*s.stride+pi],
				vc:     int32(vc),
			},
		})
	}
}

// portToward returns the output port index at router r leading to neighbour
// nxt, panicking if the link does not exist. Route-table ports make this a
// setup-time (enqueue) concern; the per-flit hot path reads packet.ports.
//
//sim:hot
func (s *Sim) portToward(r, nxt int) int {
	pos, ok := s.portTowardOK(r, nxt)
	if !ok {
		panic("sim: route uses a missing link")
	}
	return pos
}

// portTowardOK binary-searches r's sorted adjacency for nxt.
//
//sim:hot
func (s *Sim) portTowardOK(r, nxt int) (int, bool) {
	adj := s.net.Adj[r]
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < nxt {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(adj) || adj[lo] != nxt {
		return 0, false
	}
	return lo, true
}

// ejSlot identifies a node's ejection port (one per node).
//
//sim:hot
func (s *Sim) ejSlot(node int) int { return node }

// ejectWithDelay consumes a flit at its destination, accounting for the
// final router traversal. The wheel insertion is staged: ejection order is
// observable (latency sample order, OnDelivered reply sequencing), and the
// ascending-domain merge reproduces the serial engine's ascending-router
// order exactly.
//
//sim:hot
//sim:domain
func (s *Sim) ejectWithDelay(d *domain, r int, f flit) {
	//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
	d.ejects = append(d.ejects, f)
	s.work[r]--
}

// flushEjections completes delayed ejections whose router traversal is done.
//
//sim:hot
func (s *Sim) flushEjections() {
	evs := s.ejectWheel.take(s.now)
	for _, f := range evs {
		s.eject(f)
	}
	clear(evs)
}

// flushAllEjections drains every pending ejection after the main loop, in
// arrival order (the wheel horizon covers the maximum residual delay).
func (s *Sim) flushAllEjections(stop int64) {
	horizon := int64(len(s.ejectWheel.buckets))
	for t := stop; t <= stop+horizon; t++ {
		evs := s.ejectWheel.take(t)
		for _, f := range evs {
			s.eject(f)
		}
		clear(evs)
	}
}
