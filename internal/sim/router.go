// Router pipeline: switch allocation, central-buffer management, injection
// and ejection. One call to stepRoutersDomain advances every active router
// of one spatial domain by one cycle; idle routers cost nothing. All state
// touched here is either owned by the router's domain (SoA slices indexed by
// the domain's router range, NIC injection queues of attached nodes, the
// outgoing links' sender side) or staged per domain for the serial merge
// (timing-wheel events, occupancy decrements, cross-domain link wakes) — see
// domain.go for the decomposition contract. The 1-domain engine (Sim.single)
// applies the "staged" effects directly, in the same order the merge would.
//
// The arbitration fast path re-derives nothing per flit: the next-hop
// decision rides in the flit (flit.next), output conflicts are one bitmask
// test against the domain's outMask scratch, and downstream readiness is one
// compare of the per-(port,vc) space word — no route-table, packet-array or
// link-struct access until a flit actually moves.

package sim

import (
	"math/bits"
	"slices"
)

// routerDelay is the router pipeline latency added to every traversal: the
// paper's 2-stage edge-buffer pipeline and the CBR bypass path both take 2
// cycles; the CBR buffered path takes 4 (§4.1, §5.1).
const (
	routerDelayDirect   = 2
	routerDelayBuffered = 4
)

// stepRoutersDomain performs ejection, central-buffer reads/writes, switch
// allocation and injection for every active router of the domain, in
// ascending router index order (matching the original full scan; the
// ascending order also makes the list append order of the preceding link
// phase irrelevant). When the active list covers a quarter or more of the
// domain's range — the saturated regime — the per-cycle sort is replaced by
// an ascending scan of the membership flags, which visits the same routers
// in the same order without the O(n log n) comparison sort.
//
//sim:hot
//sim:domain
func (s *Sim) stepRoutersDomain(d *domain) {
	if n := len(d.routerList); n*4 >= int(d.rhi-d.rlo) {
		keep := d.routerList[:0]
		for r := int(d.rlo); r < int(d.rhi); r++ {
			if !s.routerIn[r] {
				continue
			}
			s.stepRouter(d, r)
			if s.work[r] > 0 {
				keep = append(keep, int32(r))
			} else {
				s.routerIn[r] = false
			}
		}
		d.routerList = keep
		return
	}
	slices.Sort(d.routerList)
	keep := d.routerList[:0]
	for _, r := range d.routerList {
		s.stepRouter(d, int(r))
		if s.work[r] > 0 {
			keep = append(keep, r)
		} else {
			s.routerIn[r] = false
		}
	}
	d.routerList = keep
}

//sim:hot
//sim:domain
func (s *Sim) stepRouter(d *domain, r int) {
	now := s.now
	kp := int(s.kp[r])
	pb := r * s.stride

	// Reset the output-conflict scratch: bit p of outMask[p/64] will mean
	// "output port p claimed this cycle". Radix is capped at 255, so this
	// clears at most four words ((kp-1)>>6 is -1 for a port-less router).
	for i := 0; i <= (kp-1)>>6; i++ {
		d.outMask[i] = 0
	}

	// 1. Central-buffer read port: drain at most one flit from the CB.
	// The CBR input scan keeps the flit-carrying slow path (tryAdvanceCBR):
	// its buffered path must make progress even when the output is blocked,
	// so readiness cannot gate the probe.
	if s.scheme == CentralBuffer {
		s.cbDrain(d, r)
		cbWrote := false
		if kp > 0 {
			pi := int(now % int64(kp))
			vb := (pb + pi) * s.vcs
			for off := 0; off < kp; off++ {
				for vc := 0; vc < s.vcs; vc++ {
					if s.inLen[vb+vc] == 0 {
						continue
					}
					if s.tryAdvanceCBR(d, r, s.inFront[vb+vc], &cbWrote, pi, vc) {
						break
					}
				}
				pi++
				vb += s.vcs
				if pi == kp {
					pi = 0
					vb = pb * s.vcs
				}
			}
		}
	} else if kp > 0 {
		// 2. Network inputs, arbitration fast path (EdgeBuffers/elastic):
		// iterate ports with a rotating start for fairness. The rotation
		// advances once per cycle whether or not the router does work, so it
		// is derived from the clock rather than stored (idle routers are
		// skipped entirely but must arbitrate identically). A probe reads the
		// input's next-hop word and tests it against the conflict mask and
		// the readiness word — all dense scalar arrays; the flit itself is
		// only loaded for the VC-ownership check and the move.
		pi := int(now % int64(kp))
		pbv := pb * s.vcs
		// Local views keep the probe loop free of slice-header reloads: the
		// callees mutate elements, never the headers.
		inNext, inFront := s.inNext, s.inFront
		space, outOwner := s.space, s.outOwner
		mask := d.outMask
		if occ := s.occIn; occ != nil {
			// Occupancy-bitmask walk: rotate the router's occupancy word by
			// the cycle's starting port and visit only the set bits, in
			// ascending rotated order — exactly the non-empty slots the
			// port-by-port loop below would probe, in the same order. Port
			// blocks stay contiguous under the rotation (the shift is a
			// multiple of vcs), so "one move per input port per cycle" is a
			// vcs-wide bit clear at the moved port's block.
			m := occ[r]
			nb := uint(kp * s.vcs)
			sb := uint(pi * s.vcs)
			full := ^uint64(0) >> (64 - nb)
			rm := ((m >> sb) | (m << (nb - sb))) & full
			for rm != 0 {
				ro := uint(bits.TrailingZeros64(rm))
				b := ro + sb
				if b >= nb {
					b -= nb
				}
				slot := pbv + int(b)
				nx := inNext[slot]
				if nx == nextEject {
					// Ejection: one flit per node ejection port per cycle.
					f := inFront[slot]
					eslot := s.ejSlot(f.pkt.dst)
					if s.ejUsedAt[eslot] == now {
						rm &= rm - 1
						continue
					}
					s.ejUsedAt[eslot] = now
					vc := int(b) % s.vcs
					s.popInput(d, r, pb+int(b)/s.vcs, slot, vc)
					s.ejectWithDelay(d, r, f)
					rm &= ^(((uint64(1) << uint(s.vcs)) - 1) << (ro - uint(vc)))
					continue
				}
				if mask[nx>>22]&(1<<((nx>>16)&63)) != 0 {
					rm &= rm - 1 // output port claimed this cycle
					continue
				}
				vi := pbv + int(nx&0xffff)
				if space[vi] <= 0 {
					rm &= rm - 1 // downstream not ready
					continue
				}
				f := inFront[slot]
				if owner := outOwner[vi]; f.idx == 0 {
					if owner != -1 {
						rm &= rm - 1 // head flit: output VC taken
						continue
					}
				} else if owner != f.pkt.id {
					rm &= rm - 1 // body flit: not our wormhole
					continue
				}
				vc := int(b) % s.vcs
				s.popInput(d, r, pb+int(b)/s.vcs, slot, vc)
				d.forwarded++
				outPort := int(nx >> 16)
				s.sendFlit(d, r, f, outPort, int(nx&0xffff)-outPort*s.vcs, vi, routerDelayDirect)
				rm &= ^(((uint64(1) << uint(s.vcs)) - 1) << (ro - uint(vc)))
			}
		} else {
			// Wide-router fallback (stride*vcs > 64): probe every slot.
			vb := pbv + pi*s.vcs
			for off := 0; off < kp; off++ {
				for vc := 0; vc < s.vcs; vc++ {
					nx := inNext[vb+vc]
					if nx >= nextNone {
						if nx == nextNone {
							continue // empty input VC
						}
						// Ejection: one flit per node ejection port per cycle.
						f := inFront[vb+vc]
						slot := s.ejSlot(f.pkt.dst)
						if s.ejUsedAt[slot] == now {
							continue
						}
						s.ejUsedAt[slot] = now
						s.popInput(d, r, pb+pi, vb+vc, vc)
						s.ejectWithDelay(d, r, f)
						break
					}
					if mask[nx>>22]&(1<<((nx>>16)&63)) != 0 {
						continue // output port claimed this cycle
					}
					vi := pbv + int(nx&0xffff)
					if space[vi] <= 0 {
						continue // downstream not ready
					}
					f := inFront[vb+vc]
					if owner := outOwner[vi]; f.idx == 0 {
						if owner != -1 {
							continue // head flit: output VC taken
						}
					} else if owner != f.pkt.id {
						continue // body flit: not our wormhole
					}
					s.popInput(d, r, pb+pi, vb+vc, vc)
					d.forwarded++
					outPort := int(nx >> 16)
					s.sendFlit(d, r, f, outPort, int(nx&0xffff)-outPort*s.vcs, vi, routerDelayDirect)
					break
				}
				pi++
				vb += s.vcs
				if pi == kp {
					pi = 0
					vb = pbv
				}
			}
		}
	}

	// 3. Injection: each attached node may insert one flit per cycle.
	// Nodes attach contiguously (New rejects node maps), matching the
	// order of Network.RouterNodes without its allocation. Probes read the
	// dense injNext mirror; the NIC ring is only touched on a move.
	base := r * s.net.P
	for node := base; node < base+s.net.P; node++ {
		nx := s.injNext[node]
		if nx == nextNone {
			continue // empty injection queue
		}
		if nx == nextEject {
			// Same-router destination: eject directly.
			nc := &s.nics[node]
			f := nc.injQ.front()
			slot := s.ejSlot(f.pkt.dst)
			if s.ejUsedAt[slot] == now {
				continue
			}
			s.ejUsedAt[slot] = now
			s.popInj(nc, node)
			s.ejectWithDelay(d, r, f)
			continue
		}
		if d.outMask[nx>>22]&(1<<((nx>>16)&63)) != 0 {
			continue
		}
		vi := pb*s.vcs + int(nx&0xffff)
		if s.space[vi] <= 0 {
			continue
		}
		nc := &s.nics[node]
		f := nc.injQ.front()
		if owner := s.outOwner[vi]; f.idx == 0 {
			if owner != -1 {
				continue
			}
		} else if owner != f.pkt.id {
			continue
		}
		s.popInj(nc, node)
		outPort := int(nx >> 16)
		s.sendFlit(d, r, f, outPort, int(nx&0xffff)-outPort*s.vcs, vi, routerDelayDirect)
	}
}

// popInj removes the front flit of a NIC injection queue, keeping the dense
// injNext mirror coherent.
//
//sim:hot
//sim:domain
func (s *Sim) popInj(nc *nic, node int) {
	nc.injQ.pop()
	if nc.injQ.len() > 0 {
		s.injNext[node] = nc.injQ.front().next
	} else {
		s.injNext[node] = nextNone
	}
}

// tryAdvanceCBR attempts to move the head flit of input (pi, vc) of a
// central-buffer router, handling ejection and the bypass-vs-buffered
// decision (§4.1): head flits pick the 2-cycle bypass when the output VC is
// free and no CB traffic is queued for it; otherwise the whole packet
// reserves CB space atomically (§4.3) and streams through the buffered
// 4-cycle path. Returns true if the flit was consumed.
//
//sim:hot
//sim:domain
func (s *Sim) tryAdvanceCBR(d *domain, r int, f flit, cbWrote *bool, pi, vc int) bool {
	// Ejection.
	if f.next == nextEject {
		slot := s.ejSlot(f.pkt.dst)
		if s.ejUsedAt[slot] == s.now {
			return false
		}
		s.ejUsedAt[slot] = s.now
		pv := r*s.stride + pi
		s.popInput(d, r, pv, pv*s.vcs+vc, vc)
		s.ejectWithDelay(d, r, f)
		return true
	}
	p := f.pkt
	pb := r * s.stride
	outPort := int(f.next >> 16)
	outVC := int(f.next&0xffff) - outPort*s.vcs
	vi := pb*s.vcs + int(f.next&0xffff)
	q := &s.cbq[vi]
	if f.head() && p.cbState[f.hop] == 0 {
		// Decide once per router visit.
		if q.empty() && s.outOwner[vi] == -1 &&
			d.outMask[outPort>>6]&(1<<(outPort&63)) == 0 && s.space[vi] > 0 {
			p.cbState[f.hop] = 1 // bypass
		} else if s.cbFree[r] >= int32(p.flits) {
			s.cbFree[r] -= int32(p.flits)
			p.cbState[f.hop] = 2 // buffered
			cp := s.allocCBPacket(d)
			cp.pkt, cp.outPort, cp.outVC, cp.expected = p, outPort, outVC, p.flits
			q.push(cp)
		} else {
			return false // wait for CB space or the output
		}
	}
	if p.cbState[f.hop] == 0 {
		// Body flit ahead of its head's decision: cannot happen in FIFO
		// order; treat as a stall defensively.
		return false
	}
	if p.cbState[f.hop] == 2 {
		// CB write port: one flit per router per cycle.
		if *cbWrote {
			return false
		}
		for i := 0; i < q.len(); i++ {
			cp := q.at(i)
			if cp.pkt == p {
				s.popInput(d, r, pb+pi, (pb+pi)*s.vcs+vc, vc)
				cp.stored.push(f)
				cp.expected--
				*cbWrote = true
				return true
			}
		}
		return false
	}
	// Bypass path: behaves like a direct wormhole traversal.
	if d.outMask[outPort>>6]&(1<<(outPort&63)) != 0 {
		return false
	}
	if !s.outputReady(p, vi, f.head()) {
		return false
	}
	s.popInput(d, r, pb+pi, (pb+pi)*s.vcs+vc, vc)
	d.bypass++
	d.forwarded++
	s.sendFlit(d, r, f, outPort, outVC, vi, routerDelayDirect)
	return true
}

// allocCBPacket takes a CB packet record from the domain's freelist
// (cbPackets live and die at one router, so the pools are domain-closed).
//
//sim:hot
//sim:domain
func (s *Sim) allocCBPacket(d *domain) *cbPacket {
	if n := len(d.cbPool); n > 0 {
		cp := d.cbPool[n-1]
		d.cbPool[n-1] = nil
		d.cbPool = d.cbPool[:n-1]
		return cp
	}
	//detlint:allow hotalloc freelist miss only; steady state recycles via freeCBPacket (pinned by TestSteadyStateZeroAllocs)
	return &cbPacket{}
}

// freeCBPacket recycles a drained CB packet record, keeping its ring's
// capacity.
//
//sim:hot
//sim:domain
func (s *Sim) freeCBPacket(d *domain, cp *cbPacket) {
	cp.pkt = nil
	//detlint:allow hotalloc amortised freelist growth; capacity is retained across cycles
	d.cbPool = append(d.cbPool, cp)
}

// cbDrain moves at most one flit from the central buffer to an output (the
// CB's single read port), scanning (port, vc) queues in a deterministic
// rotating order.
//
//sim:hot
//sim:domain
func (s *Sim) cbDrain(d *domain, r int) {
	total := int(s.kp[r]) * s.vcs
	start := int(s.now) % maxi(total, 1)
	pb := r * s.stride
	vb := pb * s.vcs
	for off := 0; off < total; off++ {
		slot := (start + off) % total
		outPort, outVC := slot/s.vcs, slot%s.vcs
		q := &s.cbq[vb+slot]
		if q.empty() {
			continue
		}
		cp := q.front()
		if cp.stored.empty() {
			continue
		}
		if d.outMask[outPort>>6]&(1<<(outPort&63)) != 0 {
			continue
		}
		f := cp.stored.front()
		if !s.outputReady(cp.pkt, vb+slot, f.head()) {
			continue
		}
		cp.stored.pop()
		s.cbFree[r]++
		d.buffered++
		d.forwarded++
		s.sendFlit(d, r, f, outPort, outVC, vb+slot, routerDelayBuffered)
		if f.tail() {
			q.pop()
			s.freeCBPacket(d, cp)
		}
		return // single read port
	}
}

//sim:hot
func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// outputReady checks VC ownership and downstream readiness for one flit at
// per-VC output index vi. space already encodes the scheme (credits for
// EdgeBuffers, link pipeline slots for elastic modes), so the check is two
// contiguous loads and two compares.
//
//sim:hot
//sim:domain
func (s *Sim) outputReady(p *packet, vi int, head bool) bool {
	owner := s.outOwner[vi]
	if head {
		if owner != -1 {
			return false
		}
	} else if owner != p.id {
		return false
	}
	return s.space[vi] > 0
}

// sendFlit commits a flit to an output: ownership transitions, readiness
// consumption, link occupancy, and the traversal itself. The flit leaves
// the router, so its work counter drops and the link wakes — on its
// receiving domain's list, via the staged linkActs when that domain is not
// ours. The link-side writes are safe in the parallel phase because a
// directed link has exactly one sending router, hence exactly one writing
// domain; the receiver only touches these fields in the (barrier-separated)
// link phase.
//
//sim:hot
//sim:domain
func (s *Sim) sendFlit(d *domain, r int, f flit, outPort, outVC, vi int, delay int64) {
	p := f.pkt
	if f.head() {
		s.outOwner[vi] = p.id
	}
	if f.tail() {
		s.outOwner[vi] = -1
	}
	//detlint:allow sharedread sender-exclusive decrement; the receiver's slot returns happen in the barrier-separated link phase (elastic) or the serial credit phase (EdgeBuffers)
	s.space[vi]--
	if s.space[vi] < 0 {
		panic("sim: negative output readiness")
	}
	d.outMask[outPort>>6] |= 1 << (outPort & 63)
	lid := s.outLink[r*s.stride+outPort]
	l := &s.links[lid]
	f.hop++
	f.next = p.next[f.hop]
	at := s.now + delay + l.latency
	l.lanes[outVC].push(linkFlit{f: f, arrive: at})
	//detlint:allow sharedread sender-exclusive: one sending router per directed link, receiver reads only after the phase barrier
	l.pending++
	if l.pending == 1 || at < l.nextArrive {
		// Refresh the link's delivery lower bound: an idle link's stale value
		// must not mask the new flit, and an earlier arrival tightens it.
		//detlint:allow sharedread sender-exclusive: one sending router per directed link, the receiver's refresh happens in the barrier-separated link phase
		l.nextArrive = at
	}
	//detlint:allow sharedread sender-exclusive increment; the receiver's decrements are staged in domain.occDecs and merged serially
	l.occupancy++
	// Calendar dirty tracking: the receiving domain's horizon changed.
	if td := s.linkDom[lid]; td == d.di {
		//detlint:allow sharedread own-domain calendar cache: the receiving domain is this one, nobody else touches d's cache during the phase
		d.calDirty = true
	} else if !d.touched[td] {
		//detlint:allow sharedread staged dirty mark in this domain's own buffer, replayed serially by mergeDomains
		d.touched[td] = true
		//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
		//detlint:allow sharedread staged in this domain's own list, merged serially
		d.touchedList = append(d.touchedList, td)
	}
	if !s.linkIn[lid] {
		s.linkIn[lid] = true
		if s.single {
			// 1-domain engine: the receiving list is ours; append directly
			// (same next-cycle visibility as the staged merge).
			//detlint:allow hotalloc amortised active-list growth; capacity is retained across cycles
			d.linkList = append(d.linkList, lid)
		} else {
			//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
			d.linkActs = append(d.linkActs, lid)
		}
	}
	s.work[r]--
}

// popInput removes the head flit from input slot vi (= pv*vcs+vc, where pv =
// r*stride+pi is the flat port index). Callers pass the indices they already
// hold from the probe, so the pop recomputes nothing. The upstream credit
// return and the UGAL occupancy decrement both target state shared with
// other domains (the credit wheel; the sender-side occupancy counter), so
// they are staged per domain and replayed at the merge — except on the
// 1-domain engine, which applies them directly in the identical order.
//
//sim:hot
//sim:domain
func (s *Sim) popInput(d *domain, r, pv, vi, vc int) {
	q := &s.inQ[vi]
	q.pop()
	n := s.inLen[vi] - 1
	s.inLen[vi] = n
	if n > 0 {
		nf := q.front()
		s.inFront[vi] = nf
		s.inNext[vi] = nf.next
	} else {
		s.inNext[vi] = nextNone
		if s.occIn != nil {
			//detlint:allow sharedread owner-exclusive: router r belongs to this domain in the router phase, and the word occIn[r] is only ever written by r's owner (link-phase sets also target the receiving domain's own routers)
			s.occIn[r] &^= 1 << uint(vi-r*s.stride*s.vcs)
		}
	}
	lid := s.inLink[pv]
	if s.single {
		//detlint:allow sharedread 1-domain engine only: no other domain exists to race with
		s.links[lid].occupancy--
		if s.scheme == EdgeBuffers {
			l := &s.links[lid]
			s.creditWheel.schedule(s.now, s.now+l.latency, creditEvent{
				router: int32(l.from),
				port:   s.revPort[pv],
				vc:     int32(vc),
			})
		}
		return
	}
	//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
	d.occDecs = append(d.occDecs, lid)
	if s.scheme == EdgeBuffers {
		l := &s.links[lid]
		//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
		d.credits = append(d.credits, stagedCredit{
			at: s.now + l.latency,
			ev: creditEvent{
				router: int32(l.from),
				port:   s.revPort[pv],
				vc:     int32(vc),
			},
		})
	}
}

// portToward returns the output port index at router r leading to neighbour
// nxt, panicking if the link does not exist. Route-table ports make this a
// setup-time (enqueue) concern; the per-flit hot path reads flit.next.
//
//sim:hot
func (s *Sim) portToward(r, nxt int) int {
	pos, ok := s.portTowardOK(r, nxt)
	if !ok {
		panic("sim: route uses a missing link")
	}
	return pos
}

// portTowardOK binary-searches r's sorted adjacency for nxt.
//
//sim:hot
func (s *Sim) portTowardOK(r, nxt int) (int, bool) {
	adj := s.net.Adj[r]
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < nxt {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(adj) || adj[lo] != nxt {
		return 0, false
	}
	return lo, true
}

// ejSlot identifies a node's ejection port (one per node).
//
//sim:hot
func (s *Sim) ejSlot(node int) int { return node }

// ejectWithDelay consumes a flit at its destination, accounting for the
// final router traversal. The wheel insertion is staged: ejection order is
// observable (latency sample order, OnDelivered reply sequencing), and the
// ascending-domain merge reproduces the serial engine's ascending-router
// order exactly. The 1-domain engine schedules directly — its visit order
// is the staged replay order.
//
//sim:hot
//sim:domain
func (s *Sim) ejectWithDelay(d *domain, r int, f flit) {
	if s.single {
		s.ejectWheel.schedule(s.now, s.now+routerDelayDirect, f)
	} else {
		//detlint:allow hotalloc amortised staging growth; capacity is retained across cycles
		d.ejects = append(d.ejects, f)
	}
	s.work[r]--
}

// flushEjections completes delayed ejections whose router traversal is done.
//
//sim:hot
func (s *Sim) flushEjections() {
	evs := s.ejectWheel.take(s.now)
	for _, f := range evs {
		s.eject(f)
	}
	clear(evs)
}

// flushAllEjections drains every pending ejection after the main loop, in
// arrival order (the wheel horizon covers the maximum residual delay).
func (s *Sim) flushAllEjections(stop int64) {
	horizon := int64(len(s.ejectWheel.buckets))
	for t := stop; t <= stop+horizon; t++ {
		evs := s.ejectWheel.take(t)
		for _, f := range evs {
			s.eject(f)
		}
		clear(evs)
	}
}
