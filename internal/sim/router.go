// Router pipeline: switch allocation, central-buffer management, injection
// and ejection. One call to stepRouters advances every router by one cycle.

package sim

// routerDelay is the router pipeline latency added to every traversal: the
// paper's 2-stage edge-buffer pipeline and the CBR bypass path both take 2
// cycles; the CBR buffered path takes 4 (§4.1, §5.1).
const (
	routerDelayDirect   = 2
	routerDelayBuffered = 4
)

// stepRouters performs ejection, central-buffer reads/writes, switch
// allocation and injection for every router.
func (s *Sim) stepRouters() {
	if s.ejUsed == nil {
		s.ejUsed = make([]bool, s.net.N())
	} else {
		for i := range s.ejUsed {
			s.ejUsed[i] = false
		}
	}
	for r := range s.routers {
		s.stepRouter(&s.routers[r])
	}
}

func (s *Sim) stepRouter(rs *routerState) {
	kp := rs.kp
	outUsed := make([]bool, kp)
	inUsed := make([]bool, kp)

	// 1. Central-buffer read port: drain at most one flit from the CB.
	if s.cfg.Scheme == CentralBuffer {
		s.cbDrain(rs, outUsed)
	}

	// 2. Network inputs: iterate ports with a rotating start for fairness.
	cbWrote := false
	for off := 0; off < kp; off++ {
		pi := (rs.rrIn + off) % kp
		if inUsed[pi] {
			continue
		}
		for vc := 0; vc < s.cfg.VCs; vc++ {
			in := &rs.in[pi][vc]
			if in.q.empty() {
				continue
			}
			f := in.q.front()
			if s.tryAdvance(rs, f, outUsed, &cbWrote, pi, vc) {
				inUsed[pi] = true
				break
			}
		}
	}
	rs.rrIn++
	if rs.rrIn >= kp && kp > 0 {
		rs.rrIn = 0
	}

	// 3. Injection: each attached node may insert one flit per cycle.
	for _, node := range s.net.RouterNodes(rs.id) {
		nc := &s.nics[node]
		if nc.injQ.empty() {
			continue
		}
		f := nc.injQ.front()
		p := f.pkt
		if int(f.hop) == len(p.path)-1 {
			// Same-router destination: eject directly.
			slot := s.ejSlot(p.dst)
			if s.ejUsed[slot] {
				continue
			}
			s.ejUsed[slot] = true
			nc.injQ.pop()
			s.ejectWithDelay(f)
			continue
		}
		outPort := s.portToward(rs.id, int(p.path[f.hop+1]))
		outVC := int(p.vcs[f.hop])
		if outUsed[outPort] {
			continue
		}
		if !s.outputReady(rs, p, outPort, outVC, f.head()) {
			continue
		}
		nc.injQ.pop()
		s.sendFlit(rs, f, outPort, outVC, routerDelayDirect)
		outUsed[outPort] = true
	}
}

// tryAdvance attempts to move the head flit of input (pi, vc). Returns true
// if the flit was consumed.
func (s *Sim) tryAdvance(rs *routerState, f flit, outUsed []bool, cbWrote *bool, pi, vc int) bool {
	p := f.pkt
	if int(p.path[f.hop]) != rs.id {
		panic("sim: flit at wrong router")
	}
	// Ejection.
	if int(f.hop) == len(p.path)-1 {
		slot := s.ejSlot(p.dst)
		if s.ejUsed[slot] {
			return false
		}
		s.ejUsed[slot] = true
		s.popInput(rs, pi, vc)
		s.ejectWithDelay(f)
		return true
	}
	outPort := s.portToward(rs.id, int(p.path[f.hop+1]))
	outVC := int(p.vcs[f.hop])

	if s.cfg.Scheme == CentralBuffer {
		return s.tryAdvanceCBR(rs, f, outUsed, cbWrote, pi, vc, outPort, outVC)
	}
	if outUsed[outPort] {
		return false
	}
	if !s.outputReady(rs, p, outPort, outVC, f.head()) {
		return false
	}
	s.popInput(rs, pi, vc)
	s.sendFlit(rs, f, outPort, outVC, routerDelayDirect)
	outUsed[outPort] = true
	return true
}

// tryAdvanceCBR handles the central-buffer router's bypass-vs-buffered
// decision (§4.1): head flits pick the 2-cycle bypass when the output VC is
// free and no CB traffic is queued for it; otherwise the whole packet
// reserves CB space atomically (§4.3) and streams through the buffered
// 4-cycle path.
func (s *Sim) tryAdvanceCBR(rs *routerState, f flit, outUsed []bool, cbWrote *bool, pi, vc, outPort, outVC int) bool {
	p := f.pkt
	key := cbKey(outPort, outVC)
	if p.cbState == nil {
		p.cbState = make([]uint8, len(p.path))
	}
	if f.head() && p.cbState[f.hop] == 0 {
		// Decide once per router visit.
		queueEmpty := true
		if q := rs.cbQueue[key]; q != nil && len(*q) > 0 {
			queueEmpty = false
		}
		if queueEmpty && rs.outOwner[outPort][outVC] == -1 && !outUsed[outPort] &&
			s.linkHasRoom(rs, outPort, outVC) {
			p.cbState[f.hop] = 1 // bypass
		} else if rs.cbFree >= p.flits {
			rs.cbFree -= p.flits
			p.cbState[f.hop] = 2 // buffered
			cp := &cbPacket{pkt: p, outPort: outPort, outVC: outVC, expected: p.flits}
			q := rs.cbQueue[key]
			if q == nil {
				q = new([]*cbPacket)
				rs.cbQueue[key] = q
			}
			*q = append(*q, cp)
		} else {
			return false // wait for CB space or the output
		}
	}
	if p.cbState[f.hop] == 0 {
		// Body flit ahead of its head's decision: cannot happen in FIFO
		// order; treat as a stall defensively.
		return false
	}
	if p.cbState[f.hop] == 2 {
		// CB write port: one flit per router per cycle.
		if *cbWrote {
			return false
		}
		q := rs.cbQueue[key]
		for _, cp := range *q {
			if cp.pkt == p {
				s.popInput(rs, pi, vc)
				cp.stored.push(f)
				cp.expected--
				*cbWrote = true
				return true
			}
		}
		return false
	}
	// Bypass path: behaves like a direct wormhole traversal.
	if outUsed[outPort] {
		return false
	}
	if !s.outputReady(rs, p, outPort, outVC, f.head()) {
		return false
	}
	s.popInput(rs, pi, vc)
	s.bypassFlits++
	s.sendFlit(rs, f, outPort, outVC, routerDelayDirect)
	outUsed[outPort] = true
	return true
}

// cbDrain moves at most one flit from the central buffer to an output (the
// CB's single read port), scanning (port, vc) queues in a deterministic
// rotating order.
func (s *Sim) cbDrain(rs *routerState, outUsed []bool) {
	total := rs.kp * s.cfg.VCs
	start := int(s.now) % maxi(total, 1)
	for off := 0; off < total; off++ {
		slot := (start + off) % total
		outPort, outVC := slot/s.cfg.VCs, slot%s.cfg.VCs
		q := rs.cbQueue[cbKey(outPort, outVC)]
		if q == nil || len(*q) == 0 {
			continue
		}
		cp := (*q)[0]
		if cp.stored.empty() {
			continue
		}
		if outUsed[outPort] {
			continue
		}
		f := cp.stored.front()
		if !s.outputReady(rs, cp.pkt, outPort, outVC, f.head()) {
			continue
		}
		cp.stored.pop()
		rs.cbFree++
		s.bufferedFlits++
		s.sendFlit(rs, f, outPort, outVC, routerDelayBuffered)
		outUsed[outPort] = true
		if f.tail() {
			*q = (*q)[1:]
		}
		return // single read port
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func cbKey(port, vc int) int { return port*64 + vc }

// outputReady checks VC ownership and downstream space for one flit.
func (s *Sim) outputReady(rs *routerState, p *packet, outPort, outVC int, head bool) bool {
	owner := rs.outOwner[outPort][outVC]
	if head {
		if owner != -1 {
			return false
		}
	} else if owner != p.id {
		return false
	}
	if s.cfg.Scheme == EdgeBuffers {
		return rs.credits[outPort][outVC] > 0
	}
	return s.linkHasRoom(rs, outPort, outVC)
}

// linkHasRoom reports whether the elastic link pipeline toward outPort can
// accept another flit on outVC (capacity = latency stages + 1 slave latch).
func (s *Sim) linkHasRoom(rs *routerState, outPort, outVC int) bool {
	l := &s.links[rs.outLink[outPort]]
	return l.perVCInFly[outVC] < int(l.latency)+1
}

// sendFlit commits a flit to an output: ownership transitions, credit
// consumption, link occupancy, and the traversal itself.
func (s *Sim) sendFlit(rs *routerState, f flit, outPort, outVC int, delay int64) {
	p := f.pkt
	if f.head() {
		rs.outOwner[outPort][outVC] = p.id
	}
	if f.tail() {
		rs.outOwner[outPort][outVC] = -1
	}
	if s.cfg.Scheme == EdgeBuffers {
		rs.credits[outPort][outVC]--
		if rs.credits[outPort][outVC] < 0 {
			panic("sim: negative credits")
		}
	}
	l := &s.links[rs.outLink[outPort]]
	f.hop++
	l.inflight[outVC] = append(l.inflight[outVC], linkFlit{f: f, arrive: s.now + delay + l.latency})
	l.perVCInFly[outVC]++
	l.occupancy++
}

// popInput removes the head flit from input (pi, vc): returns a credit
// upstream (EdgeBuffers) and updates the UGAL occupancy signal.
func (s *Sim) popInput(rs *routerState, pi, vc int) {
	rs.in[pi][vc].q.pop()
	l := &s.links[rs.inLink[pi]]
	l.occupancy--
	if s.cfg.Scheme == EdgeBuffers {
		s.credits = append(s.credits, creditEvent{
			at:     s.now + l.latency,
			router: l.from,
			port:   rs.revPort[pi],
			vc:     vc,
		})
	}
}

// portToward returns the output port index at router r leading to neighbour
// nxt.
func (s *Sim) portToward(r, nxt int) int {
	adj := s.net.Adj[r]
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < nxt {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(adj) || adj[lo] != nxt {
		panic("sim: route uses a missing link")
	}
	return lo
}

// ejSlot identifies a node's ejection port (one per node).
func (s *Sim) ejSlot(node int) int { return node }

// ejectWithDelay consumes a flit at its destination, accounting for the
// final router traversal.
func (s *Sim) ejectWithDelay(f flit) {
	s.ejectDelayed = append(s.ejectDelayed, linkFlit{f: f, arrive: s.now + routerDelayDirect})
}

// flushEjections completes delayed ejections whose router traversal is done.
func (s *Sim) flushEjections() {
	out := s.ejectDelayed[:0]
	for _, e := range s.ejectDelayed {
		if e.arrive <= s.now {
			s.eject(e.f)
		} else {
			out = append(out, e)
		}
	}
	s.ejectDelayed = out
}
