// Router pipeline: switch allocation, central-buffer management, injection
// and ejection. One call to stepRouters advances every router with pending
// work by one cycle; idle routers cost nothing.

package sim

// routerDelay is the router pipeline latency added to every traversal: the
// paper's 2-stage edge-buffer pipeline and the CBR bypass path both take 2
// cycles; the CBR buffered path takes 4 (§4.1, §5.1).
const (
	routerDelayDirect   = 2
	routerDelayBuffered = 4
)

// stepRouters performs ejection, central-buffer reads/writes, switch
// allocation and injection for every active router, in ascending router
// index order (matching the original full scan).
//
//sim:hot
func (s *Sim) stepRouters() {
	// Sparse reset of last cycle's ejection-port budget.
	for _, slot := range s.ejTouched {
		s.ejUsed[slot] = false
	}
	s.ejTouched = s.ejTouched[:0]
	s.activeRouters.forEachSorted(func(r int) bool {
		rs := &s.routers[r]
		s.stepRouter(rs)
		return rs.work > 0
	})
}

//sim:hot
func (s *Sim) stepRouter(rs *routerState) {
	kp := rs.kp
	outUsed, inUsed := rs.outUsed, rs.inUsed
	for i := range outUsed {
		outUsed[i] = false
	}
	for i := range inUsed {
		inUsed[i] = false
	}

	// 1. Central-buffer read port: drain at most one flit from the CB.
	if s.cfg.Scheme == CentralBuffer {
		s.cbDrain(rs, outUsed)
	}

	// 2. Network inputs: iterate ports with a rotating start for fairness.
	// The rotation advances once per cycle whether or not the router does
	// work, so it is derived from the clock rather than stored (idle
	// routers are skipped entirely but must arbitrate identically).
	cbWrote := false
	if kp > 0 {
		rr := int(s.now % int64(kp))
		for off := 0; off < kp; off++ {
			pi := (rr + off) % kp
			if inUsed[pi] {
				continue
			}
			for vc := 0; vc < s.cfg.VCs; vc++ {
				in := &rs.in[pi][vc]
				if in.q.empty() {
					continue
				}
				f := in.q.front()
				if s.tryAdvance(rs, f, outUsed, &cbWrote, pi, vc) {
					inUsed[pi] = true
					break
				}
			}
		}
	}

	// 3. Injection: each attached node may insert one flit per cycle.
	// Nodes attach contiguously (New rejects node maps), matching the
	// order of Network.RouterNodes without its allocation.
	base := rs.id * s.net.P
	for node := base; node < base+s.net.P; node++ {
		nc := &s.nics[node]
		if nc.injQ.empty() {
			continue
		}
		f := nc.injQ.front()
		p := f.pkt
		if int(f.hop) == len(p.path)-1 {
			// Same-router destination: eject directly.
			slot := s.ejSlot(p.dst)
			if s.ejUsed[slot] {
				continue
			}
			s.markEjUsed(slot)
			nc.injQ.pop()
			s.ejectWithDelay(rs, f)
			continue
		}
		outPort := s.portToward(rs.id, int(p.path[f.hop+1]))
		outVC := int(p.vcs[f.hop])
		if outUsed[outPort] {
			continue
		}
		if !s.outputReady(rs, p, outPort, outVC, f.head()) {
			continue
		}
		nc.injQ.pop()
		s.sendFlit(rs, f, outPort, outVC, routerDelayDirect)
		outUsed[outPort] = true
	}
}

// markEjUsed consumes a node's ejection budget for this cycle.
//
//sim:hot
func (s *Sim) markEjUsed(slot int) {
	s.ejUsed[slot] = true
	s.ejTouched = append(s.ejTouched, int32(slot))
}

// tryAdvance attempts to move the head flit of input (pi, vc). Returns true
// if the flit was consumed.
//
//sim:hot
func (s *Sim) tryAdvance(rs *routerState, f flit, outUsed []bool, cbWrote *bool, pi, vc int) bool {
	p := f.pkt
	if int(p.path[f.hop]) != rs.id {
		panic("sim: flit at wrong router")
	}
	// Ejection.
	if int(f.hop) == len(p.path)-1 {
		slot := s.ejSlot(p.dst)
		if s.ejUsed[slot] {
			return false
		}
		s.markEjUsed(slot)
		s.popInput(rs, pi, vc)
		s.ejectWithDelay(rs, f)
		return true
	}
	outPort := s.portToward(rs.id, int(p.path[f.hop+1]))
	outVC := int(p.vcs[f.hop])

	if s.cfg.Scheme == CentralBuffer {
		return s.tryAdvanceCBR(rs, f, outUsed, cbWrote, pi, vc, outPort, outVC)
	}
	if outUsed[outPort] {
		return false
	}
	if !s.outputReady(rs, p, outPort, outVC, f.head()) {
		return false
	}
	s.popInput(rs, pi, vc)
	s.forwardedFlits++
	s.sendFlit(rs, f, outPort, outVC, routerDelayDirect)
	outUsed[outPort] = true
	return true
}

// tryAdvanceCBR handles the central-buffer router's bypass-vs-buffered
// decision (§4.1): head flits pick the 2-cycle bypass when the output VC is
// free and no CB traffic is queued for it; otherwise the whole packet
// reserves CB space atomically (§4.3) and streams through the buffered
// 4-cycle path.
//
//sim:hot
func (s *Sim) tryAdvanceCBR(rs *routerState, f flit, outUsed []bool, cbWrote *bool, pi, vc, outPort, outVC int) bool {
	p := f.pkt
	q := &rs.cbq[outPort*s.cfg.VCs+outVC]
	if f.head() && p.cbState[f.hop] == 0 {
		// Decide once per router visit.
		if q.empty() && rs.outOwner[outPort][outVC] == -1 && !outUsed[outPort] &&
			s.linkHasRoom(rs, outPort, outVC) {
			p.cbState[f.hop] = 1 // bypass
		} else if rs.cbFree >= p.flits {
			rs.cbFree -= p.flits
			p.cbState[f.hop] = 2 // buffered
			cp := s.allocCBPacket()
			cp.pkt, cp.outPort, cp.outVC, cp.expected = p, outPort, outVC, p.flits
			q.push(cp)
		} else {
			return false // wait for CB space or the output
		}
	}
	if p.cbState[f.hop] == 0 {
		// Body flit ahead of its head's decision: cannot happen in FIFO
		// order; treat as a stall defensively.
		return false
	}
	if p.cbState[f.hop] == 2 {
		// CB write port: one flit per router per cycle.
		if *cbWrote {
			return false
		}
		for i := 0; i < q.len(); i++ {
			cp := q.at(i)
			if cp.pkt == p {
				s.popInput(rs, pi, vc)
				cp.stored.push(f)
				cp.expected--
				*cbWrote = true
				return true
			}
		}
		return false
	}
	// Bypass path: behaves like a direct wormhole traversal.
	if outUsed[outPort] {
		return false
	}
	if !s.outputReady(rs, p, outPort, outVC, f.head()) {
		return false
	}
	s.popInput(rs, pi, vc)
	s.bypassFlits++
	s.forwardedFlits++
	s.sendFlit(rs, f, outPort, outVC, routerDelayDirect)
	outUsed[outPort] = true
	return true
}

// allocCBPacket takes a CB packet record from the freelist.
//
//sim:hot
func (s *Sim) allocCBPacket() *cbPacket {
	if n := len(s.cbPool); n > 0 {
		cp := s.cbPool[n-1]
		s.cbPool[n-1] = nil
		s.cbPool = s.cbPool[:n-1]
		return cp
	}
	//detlint:allow hotalloc freelist miss only; steady state recycles via freeCBPacket (pinned by TestSteadyStateZeroAllocs)
	return &cbPacket{}
}

// freeCBPacket recycles a drained CB packet record, keeping its ring's
// capacity.
//
//sim:hot
func (s *Sim) freeCBPacket(cp *cbPacket) {
	cp.pkt = nil
	s.cbPool = append(s.cbPool, cp)
}

// cbDrain moves at most one flit from the central buffer to an output (the
// CB's single read port), scanning (port, vc) queues in a deterministic
// rotating order.
//
//sim:hot
func (s *Sim) cbDrain(rs *routerState, outUsed []bool) {
	total := rs.kp * s.cfg.VCs
	start := int(s.now) % maxi(total, 1)
	for off := 0; off < total; off++ {
		slot := (start + off) % total
		outPort, outVC := slot/s.cfg.VCs, slot%s.cfg.VCs
		q := &rs.cbq[slot]
		if q.empty() {
			continue
		}
		cp := q.front()
		if cp.stored.empty() {
			continue
		}
		if outUsed[outPort] {
			continue
		}
		f := cp.stored.front()
		if !s.outputReady(rs, cp.pkt, outPort, outVC, f.head()) {
			continue
		}
		cp.stored.pop()
		rs.cbFree++
		s.bufferedFlits++
		s.forwardedFlits++
		s.sendFlit(rs, f, outPort, outVC, routerDelayBuffered)
		outUsed[outPort] = true
		if f.tail() {
			q.pop()
			s.freeCBPacket(cp)
		}
		return // single read port
	}
}

//sim:hot
func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// outputReady checks VC ownership and downstream space for one flit.
//
//sim:hot
func (s *Sim) outputReady(rs *routerState, p *packet, outPort, outVC int, head bool) bool {
	owner := rs.outOwner[outPort][outVC]
	if head {
		if owner != -1 {
			return false
		}
	} else if owner != p.id {
		return false
	}
	if s.cfg.Scheme == EdgeBuffers {
		return rs.credits[outPort][outVC] > 0
	}
	return s.linkHasRoom(rs, outPort, outVC)
}

// linkHasRoom reports whether the elastic link pipeline toward outPort can
// accept another flit on outVC (capacity = latency stages + 1 slave latch).
//
//sim:hot
func (s *Sim) linkHasRoom(rs *routerState, outPort, outVC int) bool {
	l := &s.links[rs.outLink[outPort]]
	return l.perVCInFly[outVC] < int(l.latency)+1
}

// sendFlit commits a flit to an output: ownership transitions, credit
// consumption, link occupancy, and the traversal itself. The flit leaves
// the router, so its work counter drops and the link wakes.
//
//sim:hot
func (s *Sim) sendFlit(rs *routerState, f flit, outPort, outVC int, delay int64) {
	p := f.pkt
	if f.head() {
		rs.outOwner[outPort][outVC] = p.id
	}
	if f.tail() {
		rs.outOwner[outPort][outVC] = -1
	}
	if s.cfg.Scheme == EdgeBuffers {
		rs.credits[outPort][outVC]--
		if rs.credits[outPort][outVC] < 0 {
			panic("sim: negative credits")
		}
	}
	lid := rs.outLink[outPort]
	l := &s.links[lid]
	f.hop++
	l.lanes[outVC].push(linkFlit{f: f, arrive: s.now + delay + l.latency})
	l.pending++
	l.perVCInFly[outVC]++
	l.occupancy++
	s.activeLinks.add(lid)
	rs.work--
}

// popInput removes the head flit from input (pi, vc): returns a credit
// upstream (EdgeBuffers) and updates the UGAL occupancy signal.
//
//sim:hot
func (s *Sim) popInput(rs *routerState, pi, vc int) {
	rs.in[pi][vc].q.pop()
	l := &s.links[rs.inLink[pi]]
	l.occupancy--
	if s.cfg.Scheme == EdgeBuffers {
		s.creditWheel.schedule(s.now, s.now+l.latency, creditEvent{
			router: int32(l.from),
			port:   int32(rs.revPort[pi]),
			vc:     int32(vc),
		})
	}
}

// portToward returns the output port index at router r leading to neighbour
// nxt, panicking if the link does not exist.
//
//sim:hot
func (s *Sim) portToward(r, nxt int) int {
	pos, ok := s.portTowardOK(r, nxt)
	if !ok {
		panic("sim: route uses a missing link")
	}
	return pos
}

// portTowardOK binary-searches r's sorted adjacency for nxt.
//
//sim:hot
func (s *Sim) portTowardOK(r, nxt int) (int, bool) {
	adj := s.net.Adj[r]
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < nxt {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(adj) || adj[lo] != nxt {
		return 0, false
	}
	return lo, true
}

// ejSlot identifies a node's ejection port (one per node).
//
//sim:hot
func (s *Sim) ejSlot(node int) int { return node }

// ejectWithDelay consumes a flit at its destination, accounting for the
// final router traversal via the ejection timing wheel.
//
//sim:hot
func (s *Sim) ejectWithDelay(rs *routerState, f flit) {
	s.ejectWheel.schedule(s.now, s.now+routerDelayDirect, f)
	rs.work--
}

// flushEjections completes delayed ejections whose router traversal is done.
//
//sim:hot
func (s *Sim) flushEjections() {
	evs := s.ejectWheel.take(s.now)
	for _, f := range evs {
		s.eject(f)
	}
	clear(evs)
}

// flushAllEjections drains every pending ejection after the main loop, in
// arrival order (the wheel horizon covers the maximum residual delay).
func (s *Sim) flushAllEjections(stop int64) {
	horizon := int64(len(s.ejectWheel.buckets))
	for t := stop; t <= stop+horizon; t++ {
		evs := s.ejectWheel.take(t)
		for _, f := range evs {
			s.eject(f)
		}
		clear(evs)
	}
}
