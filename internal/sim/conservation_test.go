package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// conservingSource wraps a synthetic source and independently accounts the
// flit traffic it emits: for every packet it computes, from the same static
// routes the simulator uses, how many intermediate-router forwardings its
// flits must perform, and it counts deliveries. After a fully drained run
// these external ledgers must match the engine's internal counters exactly.
type conservingSource struct {
	inner *traffic.Synthetic
	net   *topo.Network
	pb    routing.PathBuilder

	emitted         int64
	delivered       int64
	expectForwarded int64
}

func (c *conservingSource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	c.inner.Generate(t, rng, func(src, dst, flits, class int) {
		path, _ := c.pb.Route(c.net.NodeRouter(src), c.net.NodeRouter(dst))
		// A flit is forwarded at every router except the injection router
		// (where it enters from the NIC) and the destination (where it
		// ejects): len(path)-2 forwardings per flit.
		if hops := len(path) - 2; hops > 0 {
			c.expectForwarded += int64(flits) * int64(hops)
		}
		c.emitted++
		emit(src, dst, flits, class)
	})
}

func (c *conservingSource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
	c.delivered++
}

// TestFlitConservation pins the engine's conservation invariants after a
// fully drained run, across all three buffer schemes and both SMART
// settings: no flit is left in flight, every emitted packet is delivered,
// the engine forwarded exactly the flit-hops the routes demand, and for the
// central-buffer router bypass+buffered accounts for every forwarding.
func TestFlitConservation(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	for _, sc := range []struct {
		name   string
		scheme sim.BufferScheme
	}{
		{"EB", sim.EdgeBuffers},
		{"CBR", sim.CentralBuffer},
		{"EL", sim.ElasticLinks},
	} {
		for _, h := range []int{1, 9} {
			sc, h := sc, h
			t.Run(sc.name+"_H"+string(rune('0'+h)), func(t *testing.T) {
				pb := minRouting(t, net, 2)
				src := &conservingSource{
					inner: &traffic.Synthetic{N: net.N(), Rate: 0.05, PacketFlits: 6,
						Pattern: traffic.Uniform{N: net.N()}},
					net: net,
					pb:  pb,
				}
				cfg := sim.Config{
					Net:     net,
					Routing: pb,
					Scheme:  sc.scheme,
					H:       h,
					Traffic: src,
					Seed:    83,
				}
				shortWindow(&cfg)
				s, _ := runCfg(t, cfg)
				if got := s.InFlight(); got != 0 {
					t.Errorf("InFlight = %d after drain, want 0", got)
				}
				if src.delivered != src.emitted {
					t.Errorf("delivered %d of %d emitted packets", src.delivered, src.emitted)
				}
				if got := s.ForwardedFlits(); got != src.expectForwarded {
					t.Errorf("engine forwarded %d flits, routes demand %d", got, src.expectForwarded)
				}
				bypass, buffered := s.CBPathStats()
				if sc.scheme == sim.CentralBuffer {
					if bypass+buffered != s.ForwardedFlits() {
						t.Errorf("bypass %d + buffered %d != forwarded %d",
							bypass, buffered, s.ForwardedFlits())
					}
					if bypass == 0 {
						t.Error("no bypass traffic at low load")
					}
				} else if bypass != 0 || buffered != 0 {
					t.Errorf("non-CBR scheme recorded CB path stats: %d/%d", bypass, buffered)
				}
			})
		}
	}
}
