package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func snNetwork(t testing.TB, q, p int, l core.Layout) *topo.Network {
	t.Helper()
	s, err := core.New(core.Params{Q: q, P: p})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Network(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func minRouting(t testing.TB, net *topo.Network, vcs int) routing.PathBuilder {
	t.Helper()
	return &routing.MinimalRouting{P: routing.NewMinimal(net), VCs: vcs}
}

// runCfg builds and runs a short simulation.
func runCfg(t testing.TB, cfg sim.Config) (*sim.Sim, sim.Result) {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.Run()
}

func shortWindow(cfg *sim.Config) {
	cfg.WarmupCycles = 1500
	cfg.MeasureCycles = 4000
	cfg.DrainCycles = 4000
}

func TestConservationLowLoad(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, 2),
		Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.05, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()}},
		Seed: 3,
	}
	shortWindow(&cfg)
	s, res := runCfg(t, cfg)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if s.InFlight() != 0 {
		t.Fatalf("%d flits lost or stuck after drain", s.InFlight())
	}
	if res.Saturated {
		t.Error("low load should not saturate")
	}
	if res.Delivered < res.Generated*95/100 {
		t.Errorf("delivered %d of %d tracked packets", res.Delivered, res.Generated)
	}
}

func TestZeroLoadLatencySN(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, 2),
		Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.008, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()}},
		Seed: 7,
	}
	shortWindow(&cfg)
	_, res := runCfg(t, cfg)
	// Zero-load: 6-flit serialization + <=2 router traversals (2 cycles
	// each) + 2 multi-cycle wires + ejection. Expect roughly 12..35 cycles.
	if res.AvgLatency < 8 || res.AvgLatency > 40 {
		t.Errorf("zero-load latency %.1f cycles out of plausible range", res.AvgLatency)
	}
	if res.AvgHops < 1.0 || res.AvgHops > 2.0 {
		t.Errorf("avg hops %.2f, want within (1,2] for diameter-2 SN", res.AvgHops)
	}
}

func TestDeterminism(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	make := func() sim.Result {
		cfg := sim.Config{
			Net:     net,
			Routing: minRouting(t, net, 2),
			Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.1, PacketFlits: 6,
				Pattern: traffic.Uniform{N: net.N()}},
			Seed: 11,
		}
		shortWindow(&cfg)
		_, res := runCfg(t, cfg)
		return res
	}
	a, b := make(), make()
	if a != b {
		t.Errorf("same seed gave different results:\n%+v\n%+v", a, b)
	}
}

func TestSaturationDetection(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, 2),
		// Far beyond capacity.
		Traffic: &traffic.Synthetic{N: net.N(), Rate: 2.0, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()}},
		Seed: 5,
	}
	shortWindow(&cfg)
	_, res := runCfg(t, cfg)
	if !res.Saturated {
		t.Error("rate 2.0 flits/node/cycle must saturate")
	}
	if res.Throughput >= 2.0 {
		t.Errorf("accepted throughput %.2f cannot reach offered 2.0", res.Throughput)
	}
	if res.Throughput <= 0 {
		t.Error("saturated network should still deliver flits")
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	lat := func(rate float64) float64 {
		cfg := sim.Config{
			Net:     net,
			Routing: minRouting(t, net, 2),
			Traffic: &traffic.Synthetic{N: net.N(), Rate: rate, PacketFlits: 6,
				Pattern: traffic.Uniform{N: net.N()}},
			Seed: 13,
		}
		shortWindow(&cfg)
		_, res := runCfg(t, cfg)
		return res.AvgLatency
	}
	low, high := lat(0.01), lat(0.30)
	if high <= low {
		t.Errorf("latency at load 0.30 (%.1f) should exceed load 0.01 (%.1f)", high, low)
	}
}

// TestSMARTReducesLatency: with multi-cycle wires, H=9 must cut latency on a
// layout with long links.
func TestSMARTReducesLatency(t *testing.T) {
	net := snNetwork(t, 9, 8, core.LayoutBasic) // long wires
	run := func(h int) float64 {
		cfg := sim.Config{
			Net:     net,
			Routing: minRouting(t, net, 2),
			H:       h,
			Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.02, PacketFlits: 6,
				Pattern: traffic.Uniform{N: net.N()}},
			Seed: 17,
		}
		shortWindow(&cfg)
		_, res := runCfg(t, cfg)
		return res.AvgLatency
	}
	noSmart, smart := run(1), run(9)
	if smart >= noSmart {
		t.Errorf("SMART latency %.1f should beat no-SMART %.1f", smart, noSmart)
	}
}

// TestAllSchemesDeliver: edge buffers, central buffers and elastic links all
// deliver the full tracked load at moderate rates.
func TestAllSchemesDeliver(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	for _, sc := range []struct {
		name   string
		scheme sim.BufferScheme
	}{
		{"EB", sim.EdgeBuffers},
		{"CBR", sim.CentralBuffer},
		{"EL", sim.ElasticLinks},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg := sim.Config{
				Net:     net,
				Routing: minRouting(t, net, 2),
				Scheme:  sc.scheme,
				Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.1, PacketFlits: 6,
					Pattern: traffic.Uniform{N: net.N()}},
				Seed: 19,
			}
			shortWindow(&cfg)
			s, res := runCfg(t, cfg)
			if res.Delivered < res.Generated*95/100 {
				t.Errorf("%s: delivered %d of %d", sc.name, res.Delivered, res.Generated)
			}
			if s.InFlight() != 0 {
				t.Errorf("%s: %d flits stuck", sc.name, s.InFlight())
			}
		})
	}
}

// TestAllTopologiesDeliver: the simulator handles every baseline topology
// with its deadlock-free routing.
func TestAllTopologiesDeliver(t *testing.T) {
	type tc struct {
		name string
		net  *topo.Network
		mk   func(net *topo.Network) (routing.PathBuilder, error)
	}
	cases := []tc{
		{"mesh", topo.Mesh2D(8, 8, 3), func(n *topo.Network) (routing.PathBuilder, error) {
			return routing.NewDORMesh(n, 8, 8, 2)
		}},
		{"torus", topo.Torus2D(8, 8, 3), func(n *topo.Network) (routing.PathBuilder, error) {
			return routing.NewDORTorus(n, 8, 8, 2)
		}},
		{"fbf", topo.FBF(8, 8, 3), func(n *topo.Network) (routing.PathBuilder, error) {
			return routing.NewXYFBF(n, 8, 8, 2)
		}},
		{"pfbf", topo.PFBF(2, 2, 4, 4, 3), func(n *topo.Network) (routing.PathBuilder, error) {
			return routing.NewXYPFBF(n, 2, 2, 4, 4, 2)
		}},
		{"sn", snNetwork(t, 5, 4, core.LayoutSubgroup), func(n *topo.Network) (routing.PathBuilder, error) {
			return minRouting(t, n, 2), nil
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rt, err := c.mk(c.net)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.Config{
				Net:     c.net,
				Routing: rt,
				Traffic: &traffic.Synthetic{N: c.net.N(), Rate: 0.05, PacketFlits: 6,
					Pattern: traffic.Uniform{N: c.net.N()}},
				Seed: 23,
			}
			shortWindow(&cfg)
			s, res := runCfg(t, cfg)
			if res.Delivered < res.Generated*95/100 {
				t.Errorf("delivered %d of %d", res.Delivered, res.Generated)
			}
			if s.InFlight() != 0 {
				t.Errorf("%d flits stuck", s.InFlight())
			}
		})
	}
}

// TestAdversarialPatternsDeliver exercises ADV1/ADV2/SHF/REV on SN.
func TestAdversarialPatternsDeliver(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	for _, name := range []string{"ADV1", "ADV2", "SHF", "REV", "ASYM"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := sim.Config{
				Net:     net,
				Routing: minRouting(t, net, 2),
				Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.05, PacketFlits: 6,
					Pattern: traffic.PatternByName(name, net)},
				Seed: 29,
			}
			shortWindow(&cfg)
			s, res := runCfg(t, cfg)
			if res.Delivered < res.Generated*90/100 {
				t.Errorf("delivered %d of %d", res.Delivered, res.Generated)
			}
			if s.InFlight() != 0 {
				t.Errorf("%d flits stuck", s.InFlight())
			}
		})
	}
}

// TestUGALDelivers: adaptive routing with 4 VCs on SN, random + asymmetric.
func TestUGALDelivers(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	for _, global := range []bool{false, true} {
		cfg := sim.Config{
			Net:      net,
			Routing:  minRouting(t, net, 4),
			VCs:      4,
			Adaptive: &sim.UGAL{Global: global, VCs: 4},
			Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.1, PacketFlits: 6,
				Pattern: traffic.Asymmetric{N: net.N()}},
			Seed: 31,
		}
		shortWindow(&cfg)
		s, res := runCfg(t, cfg)
		if res.Delivered < res.Generated*90/100 {
			t.Errorf("global=%v: delivered %d of %d", global, res.Delivered, res.Generated)
		}
		if s.InFlight() != 0 {
			t.Errorf("global=%v: %d flits stuck", global, s.InFlight())
		}
	}
}

// TestMinAdaptiveDelivers: XY-ADAPT-style minimal-adaptive on FBF.
func TestMinAdaptiveDelivers(t *testing.T) {
	net := topo.FBF(10, 5, 4)
	rt, err := routing.NewXYFBF(net, 10, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Net:      net,
		Routing:  rt,
		Adaptive: &sim.MinAdaptive{VCs: 2},
		Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.1, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()}},
		Seed: 37,
	}
	shortWindow(&cfg)
	s, res := runCfg(t, cfg)
	if res.Delivered < res.Generated*95/100 {
		t.Errorf("delivered %d of %d", res.Delivered, res.Generated)
	}
	if s.InFlight() != 0 {
		t.Errorf("%d flits stuck", s.InFlight())
	}
}

// replySource tests the OnDelivered hook: every class-1 packet triggers a
// class-2 reply from the destination.
type replySource struct {
	n       int
	emitted int
	replies int
}

func (r *replySource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	if t < 50 && r.emitted < 20 {
		emit(int(t)%r.n, (int(t)+r.n/2)%r.n, 2, 1)
		r.emitted++
	}
}

func (r *replySource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
	if class == 1 {
		emit(dst, src, 6, 2)
		r.replies++
	}
}

func TestReplyGeneration(t *testing.T) {
	net := snNetwork(t, 3, 3, core.LayoutSubgroup)
	src := &replySource{n: net.N()}
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, 2),
		Traffic: src,
		Seed:    41,
	}
	shortWindow(&cfg)
	s, _ := runCfg(t, cfg)
	if src.replies != src.emitted {
		t.Errorf("replies %d != requests %d", src.replies, src.emitted)
	}
	if s.InFlight() != 0 {
		t.Errorf("%d flits stuck", s.InFlight())
	}
}

// TestCBRBypassLatency: at very low load, CBR's bypass path should give
// latency comparable to edge buffers (within a few cycles).
func TestCBRBypassLatency(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	run := func(scheme sim.BufferScheme) float64 {
		cfg := sim.Config{
			Net:     net,
			Routing: minRouting(t, net, 2),
			Scheme:  scheme,
			Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.008, PacketFlits: 6,
				Pattern: traffic.Uniform{N: net.N()}},
			Seed: 43,
		}
		shortWindow(&cfg)
		_, res := runCfg(t, cfg)
		return res.AvgLatency
	}
	eb, cbr := run(sim.EdgeBuffers), run(sim.CentralBuffer)
	if cbr > eb+6 {
		t.Errorf("CBR zero-load latency %.1f too far above EB %.1f", cbr, eb)
	}
}

// TestThroughputMatchesOfferedAtLowLoad: open-loop accepted == offered when
// far below saturation.
func TestThroughputMatchesOfferedAtLowLoad(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, 2),
		Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.05, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()}},
		Seed: 47,
	}
	shortWindow(&cfg)
	_, res := runCfg(t, cfg)
	if res.Throughput < 0.04 || res.Throughput > 0.06 {
		t.Errorf("throughput %.3f should track offered 0.05", res.Throughput)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := sim.New(sim.Config{}); err == nil {
		t.Error("empty config must fail")
	}
	clos := topo.FoldedClos(4, 2, 2)
	if _, err := sim.New(sim.Config{Net: clos,
		Routing: &routing.MinimalRouting{P: routing.NewMinimal(clos), VCs: 2},
		Traffic: &traffic.Synthetic{N: 8, Rate: 0.1, PacketFlits: 2, Pattern: traffic.Uniform{N: 8}},
	}); err == nil {
		t.Error("indirect networks must be rejected")
	}
}

// TestVCCountValidation: VC counts that would overflow the uint8 per-hop
// assignment (and the historical 6-bit central-buffer key packing) must be
// rejected at construction, not silently collide.
func TestVCCountValidation(t *testing.T) {
	net := snNetwork(t, 3, 3, core.LayoutSubgroup)
	mk := func(vcs int) error {
		_, err := sim.New(sim.Config{
			Net:     net,
			Routing: minRouting(t, net, 2),
			VCs:     vcs,
			Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.1, PacketFlits: 6,
				Pattern: traffic.Uniform{N: net.N()}},
		})
		return err
	}
	if err := mk(64); err == nil {
		t.Error("VCs = 64 must be rejected")
	}
	if err := mk(-1); err == nil {
		t.Error("negative VCs must be rejected")
	}
	if err := mk(63); err != nil {
		t.Errorf("VCs = 63 should be accepted: %v", err)
	}
}

// TestCBRPathStats: at near-zero load almost all flits take the bypass
// path; at saturating load a substantial share is buffered.
func TestCBRPathStats(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	run := func(rate float64) (bypass, buffered int64) {
		cfg := sim.Config{
			Net:     net,
			Routing: minRouting(t, net, 2),
			Scheme:  sim.CentralBuffer,
			Traffic: &traffic.Synthetic{N: net.N(), Rate: rate, PacketFlits: 6,
				Pattern: traffic.Uniform{N: net.N()}},
			Seed: 53,
		}
		shortWindow(&cfg)
		s, _ := runCfg(t, cfg)
		return s.CBPathStats()
	}
	byLow, bufLow := run(0.008)
	if byLow == 0 {
		t.Fatal("no bypass flits at low load")
	}
	lowFrac := float64(bufLow) / float64(byLow+bufLow)
	if lowFrac > 0.10 {
		t.Errorf("low load buffered fraction %.2f, want near 0 (CB bypass)", lowFrac)
	}
	byHigh, bufHigh := run(0.5)
	highFrac := float64(bufHigh) / float64(byHigh+bufHigh)
	if highFrac <= lowFrac {
		t.Errorf("buffered fraction should grow with load: %.3f -> %.3f", lowFrac, highFrac)
	}
}

// TestUGALDivertsUnderAdversarialLoad: under a pattern that hammers fixed
// minimal paths, UGAL should deliver strictly more throughput than static
// minimal routing near saturation.
func TestUGALDivertsUnderAdversarialLoad(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	run := func(policy sim.AdaptivePolicy) float64 {
		cfg := sim.Config{
			Net:      net,
			Routing:  minRouting(t, net, 4),
			VCs:      4,
			Adaptive: policy,
			Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.5, PacketFlits: 6,
				Pattern: traffic.PatternByName("ADV2", net)},
			Seed: 59,
		}
		shortWindow(&cfg)
		_, res := runCfg(t, cfg)
		return res.Throughput
	}
	static := run(nil)
	ugalG := run(&sim.UGAL{Global: true, VCs: 4})
	if ugalG <= static*1.02 {
		t.Errorf("UGAL-G throughput %.4f should clearly beat static %.4f on adversarial traffic",
			ugalG, static)
	}
}

// TestSmallestSN: the q=2 configuration (16 nodes, 8 routers, k'=3) from
// Table 2 simulates correctly end to end.
func TestSmallestSN(t *testing.T) {
	net := snNetwork(t, 2, 2, core.LayoutSubgroup)
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, 2),
		Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.1, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()}},
		Seed: 61,
	}
	shortWindow(&cfg)
	s, res := runCfg(t, cfg)
	if res.Delivered != res.Generated {
		t.Errorf("delivered %d of %d", res.Delivered, res.Generated)
	}
	if s.InFlight() != 0 {
		t.Errorf("%d flits stuck", s.InFlight())
	}
}

// TestVariablePacketSizes: mixing 2- and 6-flit packets (the trace message
// model) conserves every flit.
func TestVariablePacketSizes(t *testing.T) {
	net := snNetwork(t, 3, 3, core.LayoutSubgroup)
	src := &mixedSource{n: net.N()}
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, 2),
		Traffic: src,
		Seed:    67,
	}
	shortWindow(&cfg)
	s, res := runCfg(t, cfg)
	if s.InFlight() != 0 {
		t.Errorf("%d flits stuck", s.InFlight())
	}
	if res.Delivered < res.Generated*95/100 {
		t.Errorf("delivered %d of %d", res.Delivered, res.Generated)
	}
}

type mixedSource struct{ n int }

func (m *mixedSource) Generate(tt int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	for node := 0; node < m.n; node++ {
		if rng.Float64() < 0.01 {
			flits := 2
			if rng.Intn(2) == 1 {
				flits = 6
			}
			d := rng.Intn(m.n)
			if d == node {
				d = (d + 1) % m.n
			}
			emit(node, d, flits, 0)
		}
	}
}

func (m *mixedSource) OnDelivered(tt int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
}

// TestEBVarBeatsEBSmallAtHighLoad: on long-wire layouts without SMART,
// buffers sized for full utilisation (EB-Var) should reach at least the
// throughput of 5-flit buffers (Fig. 11's EB-Small penalty).
func TestEBVarBeatsEBSmallAtHighLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping SN-L high-load sweep in short mode")
	}
	net := snNetwork(t, 9, 8, core.LayoutBasic)
	run := func(cap func(int) int) float64 {
		cfg := sim.Config{
			Net:        net,
			Routing:    minRouting(t, net, 2),
			EdgeBufCap: cap,
			Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.4, PacketFlits: 6,
				Pattern: traffic.Uniform{N: net.N()}},
			Seed: 71,
		}
		shortWindow(&cfg)
		_, res := runCfg(t, cfg)
		return res.Throughput
	}
	small := run(func(int) int { return 5 })
	varSized := run(sim.EdgeBufVar(1, 2))
	if varSized < small*0.98 {
		t.Errorf("EB-Var throughput %.4f should not trail EB-Small %.4f", varSized, small)
	}
}

// TestP99AtLeastMean: sanity of the latency percentile plumbing.
func TestP99AtLeastMean(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, 2),
		Traffic: &traffic.Synthetic{N: net.N(), Rate: 0.2, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()}},
		Seed: 73,
	}
	shortWindow(&cfg)
	_, res := runCfg(t, cfg)
	if res.P99Latency < res.AvgLatency {
		t.Errorf("p99 %.1f below mean %.1f", res.P99Latency, res.AvgLatency)
	}
}
