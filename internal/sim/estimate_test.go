package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
)

// estimateCfg builds the shared estimate-episode config on the SN q=5 p=4
// subgroup network with a precompiled route table (the serve-layer shape:
// warm network + shared immutable table, no traffic source).
func estimateCfg(t testing.TB) sim.Config {
	t.Helper()
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	table, err := routing.Compile(net.Nr, minRouting(t, net, 2))
	if err != nil {
		t.Fatal(err)
	}
	return sim.Config{Net: net, Table: table, VCs: 2}
}

func TestEstimateLatenciesDeterministic(t *testing.T) {
	cfg := estimateCfg(t)
	batch := []sim.Transfer{
		{Src: 0, Dst: 137, Flits: 6},
		{Src: 3, Dst: 42, Flits: 2},
		{Src: 137, Dst: 0, Flits: 16},
	}
	first, err := sim.EstimateLatencies(cfg, batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range first {
		if l <= 0 {
			t.Fatalf("transfer %d: latency %d, want > 0", i, l)
		}
	}
	for rep := 0; rep < 3; rep++ {
		again, err := sim.EstimateLatencies(cfg, batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("rep %d transfer %d: latency %d != %d (episodes must be deterministic)",
					rep, i, again[i], first[i])
			}
		}
	}
}

// A single transfer measures zero-load latency; the same transfer inside a
// contended burst to the same destination can only take longer.
func TestEstimateContentionNeverFaster(t *testing.T) {
	cfg := estimateCfg(t)
	solo, err := sim.EstimateLatencies(cfg, []sim.Transfer{{Src: 0, Dst: 137, Flits: 6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	burst := []sim.Transfer{
		{Src: 0, Dst: 137, Flits: 6},
		{Src: 1, Dst: 137, Flits: 6},
		{Src: 2, Dst: 137, Flits: 6},
		{Src: 3, Dst: 137, Flits: 6},
	}
	contended, err := sim.EstimateLatencies(cfg, burst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if contended[0] < solo[0] {
		t.Fatalf("contended latency %d < solo latency %d", contended[0], solo[0])
	}
	var max int64
	for _, l := range contended {
		if l > max {
			max = l
		}
	}
	if max <= solo[0] {
		t.Fatalf("hot-spot burst max latency %d not above zero-load %d", max, solo[0])
	}
}

// More flits serialize over the same route: latency must grow with size.
func TestEstimateLatencyGrowsWithFlits(t *testing.T) {
	cfg := estimateCfg(t)
	short, err := sim.EstimateLatencies(cfg, []sim.Transfer{{Src: 5, Dst: 180, Flits: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	long, err := sim.EstimateLatencies(cfg, []sim.Transfer{{Src: 5, Dst: 180, Flits: 32}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if long[0] <= short[0] {
		t.Fatalf("32-flit latency %d not above 1-flit latency %d", long[0], short[0])
	}
}

// Local delivery (src == dst) never enters the network but still pays the
// injection + ejection pipeline, so it has a small positive latency.
func TestEstimateLocalTransfer(t *testing.T) {
	cfg := estimateCfg(t)
	lat, err := sim.EstimateLatencies(cfg, []sim.Transfer{{Src: 7, Dst: 7, Flits: 6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sim.EstimateLatencies(cfg, []sim.Transfer{{Src: 7, Dst: 150, Flits: 6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat[0] <= 0 {
		t.Fatalf("local latency %d, want > 0", lat[0])
	}
	if lat[0] >= remote[0] {
		t.Fatalf("local latency %d not below remote latency %d", lat[0], remote[0])
	}
}

func TestEstimateValidation(t *testing.T) {
	cfg := estimateCfg(t)
	cases := []struct {
		name  string
		batch []sim.Transfer
	}{
		{"empty", nil},
		{"src out of range", []sim.Transfer{{Src: -1, Dst: 3, Flits: 1}}},
		{"dst out of range", []sim.Transfer{{Src: 0, Dst: 10_000, Flits: 1}}},
		{"zero flits", []sim.Transfer{{Src: 0, Dst: 3, Flits: 0}}},
	}
	for _, c := range cases {
		if _, err := sim.EstimateLatencies(cfg, c.batch, 0); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	bad := cfg
	bad.Traffic = &oneshotStub{}
	if _, err := sim.EstimateLatencies(bad, []sim.Transfer{{Src: 0, Dst: 1, Flits: 1}}, 0); err == nil {
		t.Error("non-nil Traffic: no error")
	}
	if _, err := sim.EstimateLatencies(cfg, []sim.Transfer{{Src: 0, Dst: 137, Flits: 6}}, 3); err == nil {
		t.Error("tiny maxCycles: no undelivered error")
	}
}

// oneshotStub is a placeholder Source for the Traffic-must-be-nil check.
type oneshotStub struct{}

func (oneshotStub) Generate(int64, *rand.Rand, func(int, int, int, int))            {}
func (oneshotStub) OnDelivered(int64, int, int, int, int, func(int, int, int, int)) {}
