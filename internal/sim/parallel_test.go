// Domain-parallel identity tests: the deterministic-parallelism contract
// says a run's every observable output — Result, EngineStats, estimate
// latencies — is byte-identical at every domain count, because cross-domain
// effects are staged per domain and merged in ascending domain order (see
// domain.go). These tests pin that across buffer schemes, workload shapes
// (the PR 5 source taxonomy: Bernoulli, bursty on/off, request-reply),
// SMART links, and adaptive routing. CI runs them under -race without
// -short, which doubles them as the data-race proof for the worker pool.

package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
)

// domainCounts covers serial (1), even splits (2), a split where 50 routers
// divide unevenly (4 -> 12/13/12/13), and a prime count (7).
var domainCounts = []int{1, 2, 4, 7}

// runParallelCase builds the standard SN q=5 p=4 engine test network and
// runs it to completion with the given domain count.
func runParallelCase(t *testing.T, scheme BufferScheme, h, vcs, jobs int, mkSrc func(n int) Source, adaptive bool) (Result, EngineStats) {
	t.Helper()
	sn, err := core.New(core.Params{Q: 5, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sn.Network(core.LayoutSubgroup, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Net:           net,
		VCs:           vcs,
		Scheme:        scheme,
		H:             h,
		Traffic:       mkSrc(net.N()),
		Seed:          211,
		EngineJobs:    jobs,
		WarmupCycles:  1000,
		MeasureCycles: 3000,
		DrainCycles:   3000,
	}
	if adaptive {
		cfg.Adaptive = &UGAL{Global: false, VCs: vcs}
	} else {
		cfg.Routing = &routing.MinimalRouting{P: routing.NewMinimal(net), VCs: vcs}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	return res, s.EngineStats()
}

// TestDomainParallelIdentity is the core identity matrix: every buffer
// scheme x every PR 5 workload shape x domains in {1, 2, 4, 7}, each
// compared field for field against the serial run. A saturating rate keeps
// all domains busy and cross-domain traffic dense.
func TestDomainParallelIdentity(t *testing.T) {
	sources := []struct {
		name string
		mk   func(n int) Source
	}{
		{"bernoulli", func(n int) Source { return &bernoulliSource{n: n, rate: 0.20, flits: 6} }},
		{"bursty", func(n int) Source { return newOnOffSource(n, 0.12, 8, 0.25) }},
		{"reqreply", func(n int) Source { return &reqReplySource{n: n, window: 4} }},
	}
	schemes := []struct {
		name   string
		scheme BufferScheme
	}{
		{"EB", EdgeBuffers},
		{"CBR", CentralBuffer},
		{"EL", ElasticLinks},
	}
	for _, sc := range schemes {
		for _, src := range sources {
			sc, src := sc, src
			if testing.Short() && (sc.scheme != EdgeBuffers && src.name != "bernoulli") {
				continue // -short: EB x all sources, all schemes x bernoulli
			}
			t.Run(sc.name+"/"+src.name, func(t *testing.T) {
				wantRes, wantEng := runParallelCase(t, sc.scheme, 1, 2, 1, src.mk, false)
				for _, jobs := range domainCounts[1:] {
					gotRes, gotEng := runParallelCase(t, sc.scheme, 1, 2, jobs, src.mk, false)
					if gotRes != wantRes {
						t.Errorf("jobs=%d: Result diverged from serial\n got %+v\nwant %+v", jobs, gotRes, wantRes)
					}
					if gotEng != wantEng {
						t.Errorf("jobs=%d: EngineStats diverged from serial\n got %+v\nwant %+v", jobs, gotEng, wantEng)
					}
				}
			})
		}
	}
}

// TestDomainParallelIdentitySMART repeats the identity check with SMART
// links (H=9): multi-hop-per-cycle wires shrink link latencies to 1 and
// maximise per-cycle cross-domain handoffs.
func TestDomainParallelIdentitySMART(t *testing.T) {
	mk := func(n int) Source { return &bernoulliSource{n: n, rate: 0.24, flits: 6} }
	wantRes, wantEng := runParallelCase(t, EdgeBuffers, 9, 2, 1, mk, false)
	for _, jobs := range domainCounts[1:] {
		gotRes, gotEng := runParallelCase(t, EdgeBuffers, 9, 2, jobs, mk, false)
		if gotRes != wantRes {
			t.Errorf("jobs=%d: Result diverged from serial\n got %+v\nwant %+v", jobs, gotRes, wantRes)
		}
		if gotEng != wantEng {
			t.Errorf("jobs=%d: EngineStats diverged from serial\n got %+v\nwant %+v", jobs, gotEng, wantEng)
		}
	}
}

// TestDomainParallelIdentityAdaptive pins the adaptive path: UGAL reads
// live link occupancy (merged at end of the previous cycle) during the
// serial generate phase, so its RNG draw sequence and route choices must
// be unaffected by the domain count.
func TestDomainParallelIdentityAdaptive(t *testing.T) {
	mk := func(n int) Source { return &bernoulliSource{n: n, rate: 0.10, flits: 6} }
	wantRes, wantEng := runParallelCase(t, EdgeBuffers, 1, 4, 1, mk, true)
	for _, jobs := range domainCounts[1:] {
		gotRes, gotEng := runParallelCase(t, EdgeBuffers, 1, 4, jobs, mk, true)
		if gotRes != wantRes {
			t.Errorf("jobs=%d: Result diverged from serial\n got %+v\nwant %+v", jobs, gotRes, wantRes)
		}
		if gotEng != wantEng {
			t.Errorf("jobs=%d: EngineStats diverged from serial\n got %+v\nwant %+v", jobs, gotEng, wantEng)
		}
	}
}

// TestDomainParallelEstimateIdentity runs the co-simulation estimate entry
// point at every domain count: per-transfer latencies of a contended burst
// must not depend on the decomposition.
func TestDomainParallelEstimateIdentity(t *testing.T) {
	sn, err := core.New(core.Params{Q: 5, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sn.Network(core.LayoutSubgroup, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := net.N()
	var transfers []Transfer
	for i := 0; i < 64; i++ {
		transfers = append(transfers, Transfer{Src: (i * 7) % n, Dst: (i*13 + 5) % n, Flits: 2 + i%6})
	}
	cfg := Config{
		Net:     net,
		Routing: &routing.MinimalRouting{P: routing.NewMinimal(net), VCs: 2},
		VCs:     2,
		Scheme:  EdgeBuffers,
	}
	want, err := EstimateLatencies(cfg, transfers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range domainCounts[1:] {
		cfg.EngineJobs = jobs
		got, err := EstimateLatencies(cfg, transfers, 0)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("jobs=%d: transfer %d latency %d, serial %d", jobs, i, got[i], want[i])
			}
		}
	}
}

// TestSteadyStateZeroAllocsParallel extends the zero-allocation contract to
// the domain-parallel cycle loop: once warm, stepping with live workers
// allocates nothing either — staging buffers and active lists retain their
// capacity, and the barrier is two atomics.
func TestSteadyStateZeroAllocsParallel(t *testing.T) {
	s := newEngineSim(t, EdgeBuffers, 0.06)
	// Rebuild with 4 domains on the same config.
	cfg := s.cfg
	cfg.EngineJobs = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.startWorkers()
	defer s.stopWorkers()
	warm := s.cfg.WarmupCycles + 2000
	for s.now = 0; s.now < warm; s.now++ {
		s.step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		s.step()
		s.now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state parallel cycle loop allocates %.2f times per cycle, want 0", allocs)
	}
	if s.doneMeasured == 0 {
		t.Fatal("measurement window delivered nothing; test exercised an idle network")
	}
}

// TestNormalizeJobs pins the EngineJobs clamping: non-positive values and 1
// are serial, requests beyond the router count collapse to one domain per
// router.
func TestNormalizeJobs(t *testing.T) {
	cases := []struct{ jobs, nr, want int }{
		{0, 50, 1}, {-3, 50, 1}, {1, 50, 1},
		{2, 50, 2}, {7, 50, 7}, {64, 50, 50}, {4, 2, 2},
	}
	for _, c := range cases {
		if got := normalizeJobs(c.jobs, c.nr); got != c.want {
			t.Errorf("normalizeJobs(%d, %d) = %d, want %d", c.jobs, c.nr, got, c.want)
		}
	}
}
