package sim_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// The idle-skip golden fixture pins full Results for the workloads the event
// calendar accelerates hardest: very low open-loop load, long-OFF bursty
// arrivals, and the window-stalled request-reply closed loop — the regimes
// where most cycles are dead and the calendar jumps them. The fixture was
// generated with the calendar ON; TestGoldenIdleCycleStep replays every case
// with Config.CycleStep forced and must match the same bytes, which is the
// standing proof that skipping is exact (the harness twin of diff_test.go's
// randomized corpus).
//
// Regenerate (only for an intentional, documented behaviour change):
//
//	go test ./internal/sim -run TestGoldenIdle -update-golden-idle
var updateGoldenIdle = flag.Bool("update-golden-idle", false, "rewrite the idle-skip golden fixture")

const goldenIdlePath = "testdata/golden_idle.json"

// goldenIdleCase is one pinned configuration: a buffer scheme crossed with
// an idle-heavy workload shape, on the SN q=5 p=4 subgroup network.
type goldenIdleCase struct {
	Name   string
	Scheme sim.BufferScheme
	Shape  string // lowload | longoff | reqreply
}

func goldenIdleCases() []goldenIdleCase {
	var cases []goldenIdleCase
	for _, sc := range []struct {
		tag    string
		scheme sim.BufferScheme
	}{
		{"eb", sim.EdgeBuffers},
		{"cbr", sim.CentralBuffer},
		{"el", sim.ElasticLinks},
	} {
		for _, shape := range []string{"lowload", "longoff", "reqreply"} {
			cases = append(cases, goldenIdleCase{
				Name:   fmt.Sprintf("%s_%s", sc.tag, shape),
				Scheme: sc.scheme,
				Shape:  shape,
			})
		}
	}
	return cases
}

// runGoldenIdleCase executes one case. jobs selects the engine-domain count
// and cycleStep forces classic stepping — the fixture must be invariant to
// both, which is exactly what the three Test functions below assert.
// idleSource builds the pinned idle-heavy workload for one shape; shared
// with the compact-route-table replay in golden_compact_test.go.
func idleSource(t *testing.T, n int, shape string) sim.Source {
	t.Helper()
	switch shape {
	case "lowload":
		return &traffic.Synthetic{N: n, Rate: 0.004, PacketFlits: 6,
			Pattern: traffic.Uniform{N: n}}
	case "longoff":
		// Mean 16-cycle bursts, 4% duty: long OFF stretches between bursts.
		return &traffic.Synthetic{N: n, Rate: 0.02, PacketFlits: 6,
			Pattern: traffic.Uniform{N: n},
			Process: traffic.NewOnOff(n, 16, 0.04)}
	case "reqreply":
		// Window 1: every node stalls after one outstanding request, so
		// generation is dead until replies return — the NextFirer showcase.
		return &traffic.ReqReply{N: n, Window: 1, ReqFlits: 2, ReplyFlits: 6,
			Pattern: traffic.Uniform{N: n}}
	}
	t.Fatalf("unknown shape %q", shape)
	return nil
}

func runGoldenIdleCase(t *testing.T, c goldenIdleCase, jobs int, cycleStep bool) (*sim.Sim, sim.Result) {
	t.Helper()
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	src := idleSource(t, net.N(), c.Shape)
	cfg := sim.Config{
		Net:           net,
		Routing:       minRouting(t, net, 2),
		VCs:           2,
		Scheme:        c.Scheme,
		H:             1,
		Traffic:       src,
		Seed:          107,
		EngineJobs:    jobs,
		CycleStep:     cycleStep,
		WarmupCycles:  500,
		MeasureCycles: 1500,
		DrainCycles:   3000,
	}
	return runCfg(t, cfg)
}

// TestGoldenIdle compares every case's full Result against the fixture with
// the calendar active (the default engine), and asserts the calendar
// actually skipped cycles — a fixture that never skips would pin nothing.
func TestGoldenIdle(t *testing.T) {
	got := make(map[string]sim.Result)
	for _, c := range goldenIdleCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			s, res := runGoldenIdleCase(t, c, 0, false)
			got[c.Name] = res
			if st := s.EngineStats(); st.CyclesSkipped == 0 {
				t.Errorf("%s: calendar skipped nothing on an idle-heavy workload", c.Name)
			}
		})
	}

	if *updateGoldenIdle {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenIdlePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenIdlePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden results to %s", len(got), goldenIdlePath)
		return
	}

	want := readGoldenIdle(t)
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("case %s missing from fixture; regenerate intentionally", name)
			continue
		}
		if g != w {
			t.Errorf("%s: Result drifted from golden fixture\n got %+v\nwant %+v", name, g, w)
		}
	}
	if len(got) == len(goldenIdleCases()) {
		for name := range want {
			if _, ok := got[name]; !ok {
				t.Errorf("fixture case %s no longer produced", name)
			}
		}
	}
}

// TestGoldenIdleParallel replays every case with 4 engine domains against
// the same, unmodified fixture: skip decisions happen between cycles on the
// main goroutine, so domain-parallel stepping composes with the calendar
// without any result drift.
func TestGoldenIdleParallel(t *testing.T) {
	want := readGoldenIdle(t)
	for _, c := range goldenIdleCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			_, got := runGoldenIdleCase(t, c, 4, false)
			assertGoldenIdle(t, c.Name, got, want, "4-domain")
		})
	}
}

// TestGoldenIdleCycleStep replays every case with Config.CycleStep forcing
// the classic cycle-by-cycle loop against the same fixture: the calendar's
// exact-equivalence contract, pinned from the other side.
func TestGoldenIdleCycleStep(t *testing.T) {
	want := readGoldenIdle(t)
	for _, c := range goldenIdleCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			s, got := runGoldenIdleCase(t, c, 0, true)
			assertGoldenIdle(t, c.Name, got, want, "cycle-stepped")
			if st := s.EngineStats(); st.CyclesSkipped != 0 || st.CalendarPeak != 0 {
				t.Errorf("%s: CycleStep run reported skip telemetry: %+v", c.Name, st)
			}
		})
	}
}

func readGoldenIdle(t *testing.T) map[string]sim.Result {
	t.Helper()
	data, err := os.ReadFile(goldenIdlePath)
	if err != nil {
		t.Fatalf("read golden fixture (generate with -update-golden-idle): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

func assertGoldenIdle(t *testing.T, name string, got sim.Result, want map[string]sim.Result, mode string) {
	t.Helper()
	w, ok := want[name]
	if !ok {
		t.Fatalf("case %s missing from fixture", name)
	}
	if got != w {
		t.Errorf("%s: %s Result drifted from golden fixture\n got %+v\nwant %+v", name, mode, got, w)
	}
}
