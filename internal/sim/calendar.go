// Event-calendar time advancement. The engine's active sets already know
// which routers and NICs have work this cycle; its timing wheels and link
// lanes already know the cycle every delayed event fires. The calendar
// unifies those views: when the active sets are empty, nothing can happen
// until the earliest of (a) the traffic source's next declared fire, (b) the
// next credit-wheel event, (c) the next ejection-wheel event, or (d) the
// next flit arrival on any active link — so the stepping loop jumps `now`
// straight there instead of visiting each dead cycle.
//
// The jump is exact-equivalent, not approximate: a skipped cycle is one the
// classic loop would have stepped with zero state change (no generation — by
// the NextFirer contract or because the generation phases are over — no
// credit returns, no ejections, no link deliveries, no router or NIC work),
// so Results, the RNG stream, and EngineStats all come out byte-identical to
// cycle-stepping (pinned by diff_test.go and testdata/golden_idle.json,
// including under EngineJobs domain-parallel stepping — skip decisions are
// taken on the main goroutine between cycles, where the per-cycle barrier
// already holds). The only observable additions are the CyclesSkipped /
// CalendarPeak telemetry fields, which are zero under Config.CycleStep.
//
// Each domain keeps its own calendar horizon (domain.calArrive/calPending):
// the earliest front-flit arrival over its active links and their pending
// backlog, recomputed only when the domain's link population or lane fronts
// changed since the last skip decision (domain.calDirty, maintained by
// stepLinksDomain, sendFlit and the merge). A busy region therefore no
// longer forces skipAhead to rescan the idle regions' lanes at every
// quiet-period transition: the skip decision is O(domains + wheel horizon)
// plus the dirty domains' own links — the hotspot-with-idle-background
// specs in diff_test.go pin the equivalence.
package sim

import "math"

// skipAhead jumps the clock over cycles that provably change nothing. limit
// is exclusive-of-skipping: the first cycle the caller must step normally
// (a context-poll boundary, the run's total, or an estimate episode's cycle
// cap), so cancellation latency and progress cadence are unchanged. After a
// skip of k cycles the clock sits at wake-1 and the caller's s.now++ lands
// exactly on the first cycle with work. Allocation-free: the wheel scans and
// lane peeks reuse existing storage (pinned by TestSteadyStateZeroAllocs).
//
//sim:hot
func (s *Sim) skipAhead(limit int64) {
	if limit <= s.now+1 {
		return
	}
	// Anything resident at a router or NIC can act next cycle.
	if s.activeNICs.size() != 0 {
		return
	}
	for di := range s.doms {
		if len(s.doms[di].routerList) != 0 {
			return
		}
	}
	wake := limit
	// Source generation: during the warmup+measurement phases the source is
	// called every cycle, so skipping needs its NextFirer declaration that
	// the calls are no-ops (no emission, zero RNG draws). A hint at or
	// beyond the generation phases is moot — Generate is not called there.
	genEnd := s.cfg.WarmupCycles + s.cfg.MeasureCycles
	if s.now+1 < genEnd {
		if s.nextFire == nil {
			return
		}
		nf := s.nextFire.NextFire(s.now)
		if nf <= s.now+1 {
			return
		}
		if nf < genEnd && nf < wake {
			wake = nf
		}
	}
	if d := s.creditWheel.nextDue(s.now); d < wake {
		wake = d
	}
	if d := s.ejectWheel.nextDue(s.now); d < wake {
		wake = d
	}
	// Link deliveries: each active lane's front flit bounds that wire's next
	// arrival (lanes drain in FIFO order, so nothing behind the front can
	// deliver earlier). Each domain's horizon is cached and recomputed only
	// when dirty. backlog doubles as the calendar-depth sample.
	backlog := s.creditWheel.pending + s.ejectWheel.pending
	al := 0
	for di := range s.doms {
		d := &s.doms[di]
		al += len(d.linkList)
		if d.calDirty {
			s.refreshDomainHorizon(d)
		}
		backlog += d.calPending
		if d.calArrive < wake {
			wake = d.calArrive
		}
	}
	if wake <= s.now+1 {
		return
	}
	// The skipped cycles still elapse for every statistic: the classic loop
	// would have counted k more cycles with zero active routers and NICs and
	// an unchanged active-link population (links only retire by draining,
	// and no lane delivers before wake).
	k := wake - s.now - 1
	s.eng.cycles += k
	s.eng.cyclesSkipped += k
	s.eng.linkSum += k * int64(al)
	if backlog > s.eng.calendarPeak {
		s.eng.calendarPeak = backlog
	}
	s.now = wake - 1
}

// refreshDomainHorizon rebuilds one domain's cached calendar view: the
// minimum front-flit arrival over its active links (MaxInt64 when none) and
// their total pending flits. Only called from skip decisions on the main
// goroutine, and only for domains whose link state changed since the last
// decision.
//
//sim:hot
func (s *Sim) refreshDomainHorizon(d *domain) {
	arrive := int64(math.MaxInt64)
	pend := 0
	for _, li := range d.linkList {
		l := &s.links[li]
		pend += l.pending
		for vc := range l.lanes {
			if l.lanes[vc].len() == 0 {
				continue
			}
			if a := l.lanes[vc].front().arrive; a < arrive {
				arrive = a
			}
		}
	}
	d.calArrive, d.calPending = arrive, pend
	d.calDirty = false
}

// memEstimate predicts the engine's resident footprint in bytes for the
// MemBudgetBytes guard: the SoA router arrays, per-link lanes, NICs, and the
// compiled route table (measured exactly when supplied, floor-estimated when
// New would compile one). Deliberately computed from the same geometry New
// allocates from, before it allocates.
func (c *Config) memEstimate(stride int) int64 {
	nr := int64(c.Net.Nr)
	n := int64(c.Net.N())
	var edges int64
	for r := 0; r < c.Net.Nr; r++ {
		edges += int64(len(c.Net.Adj[r]))
	}
	vcs := int64(c.VCs)
	np := nr * int64(stride)
	nv := np * vcs
	const ringBytes = 40                                  // ring[T]: slice header + head + count
	const flitBytes = 16                                  // flit: pointer + idx + hop + next
	b := np * (3 * 4)                                     // outLink/inLink/revPort
	b += nv * (ringBytes + 4 + 8 + 4 + 4 + 4 + flitBytes) // inQ + inCap + outOwner + space + inLen + inNext + inFront
	if c.Scheme == CentralBuffer {
		b += nv * ringBytes // cbq
	}
	b += edges * (88 + vcs*ringBytes) // link structs + lanes
	b += n * (2*ringBytes + 16 + 8)   // nics (srcQ+injQ+ints) + ejUsedAt
	b += nr * (4 + 4 + 4 + 4 + 1)     // kp/cbFree/work/domOf/routerIn
	if c.Adaptive == nil {
		if c.Table != nil {
			b += c.Table.MemBytes()
		} else {
			// Compile stores three int32 offsets per ordered router pair
			// before any interned path bytes — the footprint floor of the
			// table New would build.
			b += nr * nr * 12
		}
	}
	return b
}
