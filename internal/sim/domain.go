// Deterministic domain-parallel stepping. The routers are partitioned into
// contiguous index ranges ("domains"); each cycle the link-delivery phase
// and the router phase run once per domain — on a pool of worker goroutines
// with a per-cycle spin barrier when EngineJobs > 1, inline in ascending
// domain order otherwise. Everything a domain writes is either exclusively
// owned by it:
//
//   - SoA router state of routers in [rlo, rhi), the NIC injection queues of
//     their attached nodes, and the per-node ejection budget of those nodes
//     (a node ejects only at its own router);
//   - the receiver side of links into the domain (lane pops, pending, the
//     sender's space readiness words) during the link phase;
//   - the sender side of links out of the domain (lane pushes, pending,
//     space decrements, occupancy increments) during the router phase — a
//     directed link has exactly one sending router, and the phase barrier
//     separates sender-phase writes from receiver-phase writes;
//
// or staged in per-domain buffers (credit-wheel events, delayed ejections,
// occupancy decrements, cross-domain link wakes, counter deltas) and
// replayed by mergeDomains on the main goroutine in ascending domain order.
// Domains are contiguous ascending router ranges and each domain appends its
// staged events in its own ascending-router visit order, so the ascending-
// domain replay reproduces the serial engine's ascending-router-index event
// order exactly — which is why results are byte-identical at every domain
// count (pinned by TestDomainParallelIdentity and the golden fixtures). The
// serial engine is the 1-domain instance of the same code, not a separate
// path.

package sim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// stagedCredit is a credit-wheel event recorded by a domain during the
// router phase and replayed into the shared wheel at merge time.
type stagedCredit struct {
	at int64
	ev creditEvent
}

// domain is one contiguous router-index range stepped as a unit.
type domain struct {
	di       int32 // own index in Sim.doms
	rlo, rhi int32 // router range [rlo, rhi)
	// Active lists owned by this domain: routers in the range with pending
	// work, links whose receiving router lies in the range. The membership
	// flags live in Sim.routerIn/linkIn — flag elements are only ever
	// written by the entity's owning (or, for linkIn, sending) domain
	// within a phase, so the shared arrays need no synchronisation.
	routerList []int32
	linkList   []int32
	// outMask is the per-cycle output-conflict bitmask scratch: while
	// stepRouter visits a router, bit p of outMask[p/64] means output port p
	// was claimed this cycle. One router is stepped at a time per domain, so
	// a single stride-wide mask per domain replaces the epoch-marked
	// outUsedAt/inUsedAt arrays (and their per-probe int64 loads).
	outMask []uint64
	// cbPool is the domain-local central-buffer freelist (a cbPacket lives
	// and dies at one router, so pools never cross domains).
	cbPool []*cbPacket
	// Staging of effects that target shared engine state — appended during
	// the parallel phases, replayed serially by mergeDomains. The 1-domain
	// engine bypasses these (Sim.single) and applies effects directly.
	credits  []stagedCredit // credit-wheel schedules (upstream may be foreign)
	ejects   []flit         // delayed ejections (order observable)
	occDecs  []int32        // link occupancy decrements (sender may be foreign)
	linkActs []int32        // link wakes (receiver may be foreign)
	// Per-domain calendar cache (see calendar.go): the earliest front-flit
	// arrival over the domain's active links and their total pending-flit
	// backlog, recomputed by skipAhead only when calDirty. A domain dirties
	// itself on its own link activity; pushes onto another domain's links
	// are staged in touched/touchedList and merged like the other effects.
	calDirty    bool
	calArrive   int64
	calPending  int
	touched     []bool  // [domain] staged dirty marks, cleared at merge
	touchedList []int32 // domains marked in touched, in first-touch order
	// Counter deltas folded into the Sim totals at merge.
	forwarded int64
	bypass    int64
	buffered  int64
	// pad keeps adjacent domains' hot fields on distinct cache lines.
	_ [64]byte
}

// normalizeJobs clamps a Config.EngineJobs value to a valid domain count.
func normalizeJobs(jobs, nr int) int {
	if jobs > nr {
		jobs = nr
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// buildDomains splits the routers into nd contiguous ranges and sizes the
// ownership lookups. Called once from New.
func (s *Sim) buildDomains(nd int) {
	nr := s.net.Nr
	s.doms = make([]domain, nd)
	s.domOf = make([]int32, nr)
	maskW := (s.stride + 63) / 64
	if maskW < 1 {
		maskW = 1
	}
	for di := 0; di < nd; di++ {
		lo, hi := di*nr/nd, (di+1)*nr/nd
		d := &s.doms[di]
		d.di = int32(di)
		d.rlo, d.rhi = int32(lo), int32(hi)
		d.outMask = make([]uint64, maskW)
		d.touched = make([]bool, nd)
		d.calDirty = true
		for r := lo; r < hi; r++ {
			s.domOf[r] = int32(di)
		}
	}
	s.single = nd == 1
	s.linkDom = make([]int32, len(s.links))
	for lid := range s.links {
		s.linkDom[lid] = s.domOf[s.links[lid].to]
	}
	s.routerIn = make([]bool, nr)
	s.linkIn = make([]bool, len(s.links))
	if nd > 1 {
		s.par = &parRunner{workers: make([]workerSlot, nd-1)}
	}
}

// stepLinksDomain delivers arrived flits on the domain's active links. The
// list is deliberately not sorted: links do not interact within the phase —
// each delivers into its own (router, port) input queues and wakes only its
// own receiver — so iteration order cannot affect any state the engine
// observes (the router phase re-sorts its list before stepping).
//
//sim:hot
//sim:domain
func (s *Sim) stepLinksDomain(d *domain) {
	if len(d.linkList) == 0 {
		return
	}
	// Any lane pop or list retirement changes this domain's calendar horizon;
	// one flag set per phase is cheaper than tracking which one did.
	//detlint:allow sharedread own-domain calendar cache: d is this goroutine's domain, no other domain reads or writes it during the phase
	d.calDirty = true
	keep := d.linkList[:0]
	for _, li := range d.linkList {
		if s.stepLink(int(li)) {
			keep = append(keep, li)
		} else {
			s.linkIn[li] = false
		}
	}
	d.linkList = keep
}

// stepLink delivers the arrived flits of one link into its receiver's input
// buffers (or CB staging), one VC lane at a time (ElastiStore-style
// independent per-VC handshakes). Reports whether the link still carries
// flits.
//
//sim:hot
//sim:domain
func (s *Sim) stepLink(li int) bool {
	l := &s.links[li]
	now := s.now
	if l.nextArrive > now {
		// Every flit on the wire is still in flight: nothing to deliver, the
		// per-lane peeks would all fail. (The classic scan would find the
		// same, so skipping it is an iteration shortcut, not a behaviour
		// change.)
		return l.pending > 0
	}
	to := l.to
	vb := (to*s.stride + l.toPort) * s.vcs
	elastic := s.scheme != EdgeBuffers
	inLen, inCap := s.inLen, s.inCap
	na := int64(math.MaxInt64)
	for vc := range l.lanes {
		lane := &l.lanes[vc]
		for lane.len() > 0 {
			lf := lane.front()
			if lf.arrive > now {
				if lf.arrive < na {
					na = lf.arrive
				}
				break
			}
			if elastic && inLen[vb+vc] >= inCap[vb+vc] {
				na = now + 1 // elastic backpressure: flit waits in the pipeline
				break
			}
			q := &s.inQ[vb+vc]
			q.push(lf.f)
			if inLen[vb+vc] == 0 {
				s.inFront[vb+vc] = lf.f
				s.inNext[vb+vc] = lf.f.next
				if s.occIn != nil {
					//detlint:allow sharedread receiver-exclusive: one receiving router per directed link, the occupancy bit belongs to the receiving router
					s.occIn[to] |= 1 << uint(l.toPort*s.vcs+vc)
				}
			}
			inLen[vb+vc]++
			lane.pop()
			//detlint:allow sharedread receiver-exclusive: one receiving router per directed link, sender writes only after the phase barrier
			l.pending--
			if elastic {
				// Return the pipeline slot to the sender's readiness word.
				//detlint:allow sharedread receiver-exclusive: one receiving router per directed link, the sending domain reads space only after the phase barrier
				s.space[int(l.sendVB)+vc]++
			}
			s.routerGainsFlit(to)
		}
	}
	//detlint:allow sharedread receiver-exclusive: one receiving router per directed link, the sender's refresh happens in the barrier-separated router phase
	l.nextArrive = na
	return l.pending > 0
}

// mergeDomains replays every domain's staged effects into the shared engine
// state, in ascending domain order, on the main goroutine after the router
// phase. This is the serialisation point that makes the parallel engine
// byte-identical to the serial one.
//
//sim:hot
func (s *Sim) mergeDomains() {
	for di := range s.doms {
		d := &s.doms[di]
		for _, lid := range d.linkActs {
			//detlint:allow hotalloc amortised active-list growth; capacity is retained across cycles
			s.doms[s.linkDom[lid]].linkList = append(s.doms[s.linkDom[lid]].linkList, lid)
		}
		d.linkActs = d.linkActs[:0]
		for _, sc := range d.credits {
			s.creditWheel.schedule(s.now, sc.at, sc.ev)
		}
		d.credits = d.credits[:0]
		for _, f := range d.ejects {
			s.ejectWheel.schedule(s.now, s.now+routerDelayDirect, f)
		}
		clear(d.ejects) // release packet references before truncating
		d.ejects = d.ejects[:0]
		for _, lid := range d.occDecs {
			s.links[lid].occupancy--
		}
		d.occDecs = d.occDecs[:0]
		for _, td := range d.touchedList {
			s.doms[td].calDirty = true
			d.touched[td] = false
		}
		d.touchedList = d.touchedList[:0]
		s.forwardedFlits += d.forwarded
		s.bypassFlits += d.bypass
		s.bufferedFlits += d.buffered
		d.forwarded, d.bypass, d.buffered = 0, 0, 0
	}
}

// Worker commands, published through parRunner.cmd.
const (
	cmdLinks uint32 = iota + 1
	cmdRouters
	cmdStop
)

// workerSlot is one worker's acknowledgement cell, padded so the spinning
// main goroutine and the worker never share a cache line with a neighbour.
type workerSlot struct {
	_   [64]byte
	ack atomic.Uint32
	_   [64]byte
}

// parRunner is the per-cycle barrier for EngineJobs > 1: the main goroutine
// publishes a command by incrementing epoch (workers spin on it), steps
// domain 0 itself, then spins until every worker has acknowledged the epoch.
// cmd is written strictly before the epoch increment and read after the
// epoch load, so the two atomics carry all ordering (and give the race
// detector its happens-before edges).
type parRunner struct {
	cmd     uint32
	epoch   atomic.Uint32
	workers []workerSlot
	started bool
	wg      sync.WaitGroup
}

// startWorkers launches one goroutine per extra domain for the duration of a
// run. Idempotent; a Sim with one domain has no runner and stays serial.
// When the workers are not running (tests driving step directly), step falls
// back to stepping the domains inline in the same ascending order — same
// code, same results.
func (s *Sim) startWorkers() {
	if s.par == nil || s.par.started {
		return
	}
	s.par.started = true
	e0 := s.par.epoch.Load()
	s.par.wg.Add(len(s.par.workers))
	for w := range s.par.workers {
		go s.domainWorker(w, e0)
	}
}

// stopWorkers shuts the pool down and waits for it; safe to call when no
// pool is running. The runner stays reusable, so Run-after-Run works.
func (s *Sim) stopWorkers() {
	if s.par == nil || !s.par.started {
		return
	}
	s.par.cmd = cmdStop
	e := s.par.epoch.Add(1)
	for w := range s.par.workers {
		awaitAck(&s.par.workers[w].ack, e)
	}
	s.par.wg.Wait()
	s.par.started = false
}

// parPhase runs one phase across all domains: publish the command, step
// domain 0 on the calling (main) goroutine, then wait for every worker.
//
//sim:hot
func (s *Sim) parPhase(cmd uint32) {
	pr := s.par
	pr.cmd = cmd
	e := pr.epoch.Add(1)
	if cmd == cmdLinks {
		s.stepLinksDomain(&s.doms[0])
	} else {
		s.stepRoutersDomain(&s.doms[0])
	}
	for w := range pr.workers {
		awaitAck(&pr.workers[w].ack, e)
	}
}

// domainWorker is the steady loop of one worker goroutine: wait for an
// epoch, run the commanded phase on its domain, acknowledge.
//
//sim:domain
func (s *Sim) domainWorker(w int, last uint32) {
	defer s.par.wg.Done()
	d := &s.doms[w+1]
	for {
		e := awaitEpoch(&s.par.epoch, last)
		last = e
		cmd := s.par.cmd
		switch cmd {
		case cmdLinks:
			s.stepLinksDomain(d)
		case cmdRouters:
			s.stepRoutersDomain(d)
		}
		s.par.workers[w].ack.Store(e)
		if cmd == cmdStop {
			return
		}
	}
}

// awaitEpoch spins until the epoch moves past last, yielding the scheduler
// once the phases stop arriving back-to-back (oversubscribed boxes).
//
//sim:hot
func awaitEpoch(v *atomic.Uint32, last uint32) uint32 {
	for spins := 0; ; spins++ {
		if e := v.Load(); e != last {
			return e
		}
		if spins > 128 {
			runtime.Gosched()
		}
	}
}

// awaitAck spins until a worker acknowledges the given epoch.
//
//sim:hot
func awaitAck(v *atomic.Uint32, want uint32) {
	for spins := 0; ; spins++ {
		if v.Load() == want {
			return
		}
		if spins > 128 {
			runtime.Gosched()
		}
	}
}
