// Deterministic domain-parallel stepping. The routers are partitioned into
// contiguous index ranges ("domains"); each cycle the link-delivery phase
// and the router phase run once per domain — on a pool of worker goroutines
// with a per-cycle spin barrier when EngineJobs > 1, inline in ascending
// domain order otherwise. Everything a domain writes is either exclusively
// owned by it:
//
//   - SoA router state of routers in [rlo, rhi), the NIC injection queues of
//     their attached nodes, and the per-node ejection budget of those nodes
//     (a node ejects only at its own router);
//   - the receiver side of links into the domain (lane pops, pending,
//     perVCInFly) during the link phase;
//   - the sender side of links out of the domain (lane pushes, pending,
//     perVCInFly, occupancy increments) during the router phase — a directed
//     link has exactly one sending router, and the phase barrier separates
//     sender-phase writes from receiver-phase writes;
//
// or staged in per-domain buffers (credit-wheel events, delayed ejections,
// occupancy decrements, cross-domain link wakes, counter deltas) and
// replayed by mergeDomains on the main goroutine in ascending domain order.
// Domains are contiguous ascending router ranges and each domain appends its
// staged events in its own ascending-router visit order, so the ascending-
// domain replay reproduces the serial engine's ascending-router-index event
// order exactly — which is why results are byte-identical at every domain
// count (pinned by TestDomainParallelIdentity and the golden fixtures). The
// serial engine is the 1-domain instance of the same code, not a separate
// path.

package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// stagedCredit is a credit-wheel event recorded by a domain during the
// router phase and replayed into the shared wheel at merge time.
type stagedCredit struct {
	at int64
	ev creditEvent
}

// domain is one contiguous router-index range stepped as a unit.
type domain struct {
	rlo, rhi int32 // router range [rlo, rhi)
	// Active lists owned by this domain: routers in the range with pending
	// work, links whose receiving router lies in the range. The membership
	// flags live in Sim.routerIn/linkIn — flag elements are only ever
	// written by the entity's owning (or, for linkIn, sending) domain
	// within a phase, so the shared arrays need no synchronisation.
	routerList []int32
	linkList   []int32
	// cbPool is the domain-local central-buffer freelist (a cbPacket lives
	// and dies at one router, so pools never cross domains).
	cbPool []*cbPacket
	// Staging of effects that target shared engine state — appended during
	// the parallel phases, replayed serially by mergeDomains.
	credits  []stagedCredit // credit-wheel schedules (upstream may be foreign)
	ejects   []flit         // delayed ejections (order observable)
	occDecs  []int32        // link occupancy decrements (sender may be foreign)
	linkActs []int32        // link wakes (receiver may be foreign)
	// Counter deltas folded into the Sim totals at merge.
	forwarded int64
	bypass    int64
	buffered  int64
	// pad keeps adjacent domains' hot fields on distinct cache lines.
	_ [64]byte
}

// normalizeJobs clamps a Config.EngineJobs value to a valid domain count.
func normalizeJobs(jobs, nr int) int {
	if jobs > nr {
		jobs = nr
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// buildDomains splits the routers into nd contiguous ranges and sizes the
// ownership lookups. Called once from New.
func (s *Sim) buildDomains(nd int) {
	nr := s.net.Nr
	s.doms = make([]domain, nd)
	s.domOf = make([]int32, nr)
	for di := 0; di < nd; di++ {
		lo, hi := di*nr/nd, (di+1)*nr/nd
		s.doms[di].rlo, s.doms[di].rhi = int32(lo), int32(hi)
		for r := lo; r < hi; r++ {
			s.domOf[r] = int32(di)
		}
	}
	s.linkDom = make([]int32, len(s.links))
	for lid := range s.links {
		s.linkDom[lid] = s.domOf[s.links[lid].to]
	}
	s.routerIn = make([]bool, nr)
	s.linkIn = make([]bool, len(s.links))
	if nd > 1 {
		s.par = &parRunner{workers: make([]workerSlot, nd-1)}
	}
}

// stepLinksDomain delivers arrived flits on the domain's active links. The
// list is deliberately not sorted: links do not interact within the phase —
// each delivers into its own (router, port) input queues and wakes only its
// own receiver — so iteration order cannot affect any state the engine
// observes (the router phase re-sorts its list before stepping).
//
//sim:hot
//sim:domain
func (s *Sim) stepLinksDomain(d *domain) {
	keep := d.linkList[:0]
	for _, li := range d.linkList {
		if s.stepLink(int(li)) {
			keep = append(keep, li)
		} else {
			s.linkIn[li] = false
		}
	}
	d.linkList = keep
}

// stepLink delivers the arrived flits of one link into its receiver's input
// buffers (or CB staging), one VC lane at a time (ElastiStore-style
// independent per-VC handshakes). Reports whether the link still carries
// flits.
//
//sim:hot
//sim:domain
func (s *Sim) stepLink(li int) bool {
	l := &s.links[li]
	to := l.to
	vb := (to*s.stride + l.toPort) * s.vcs
	for vc := range l.lanes {
		lane := &l.lanes[vc]
		for lane.len() > 0 {
			lf := lane.front()
			if lf.arrive > s.now {
				break
			}
			q := &s.inQ[vb+vc]
			if s.scheme != EdgeBuffers && int32(q.len()) >= s.inCap[vb+vc] {
				break // elastic backpressure: flit waits in the pipeline
			}
			q.push(lf.f)
			lane.pop()
			//detlint:allow sharedread receiver-exclusive: one receiving router per directed link, sender writes only after the phase barrier
			l.pending--
			//detlint:allow sharedread receiver-exclusive: one receiving router per directed link, sender writes only after the phase barrier
			l.perVCInFly[vc]--
			s.routerGainsFlit(to)
		}
	}
	return l.pending > 0
}

// mergeDomains replays every domain's staged effects into the shared engine
// state, in ascending domain order, on the main goroutine after the router
// phase. This is the serialisation point that makes the parallel engine
// byte-identical to the serial one.
//
//sim:hot
func (s *Sim) mergeDomains() {
	for di := range s.doms {
		d := &s.doms[di]
		for _, lid := range d.linkActs {
			//detlint:allow hotalloc amortised active-list growth; capacity is retained across cycles
			s.doms[s.linkDom[lid]].linkList = append(s.doms[s.linkDom[lid]].linkList, lid)
		}
		d.linkActs = d.linkActs[:0]
		for _, sc := range d.credits {
			s.creditWheel.schedule(s.now, sc.at, sc.ev)
		}
		d.credits = d.credits[:0]
		for _, f := range d.ejects {
			s.ejectWheel.schedule(s.now, s.now+routerDelayDirect, f)
		}
		clear(d.ejects) // release packet references before truncating
		d.ejects = d.ejects[:0]
		for _, lid := range d.occDecs {
			s.links[lid].occupancy--
		}
		d.occDecs = d.occDecs[:0]
		s.forwardedFlits += d.forwarded
		s.bypassFlits += d.bypass
		s.bufferedFlits += d.buffered
		d.forwarded, d.bypass, d.buffered = 0, 0, 0
	}
}

// Worker commands, published through parRunner.cmd.
const (
	cmdLinks uint32 = iota + 1
	cmdRouters
	cmdStop
)

// workerSlot is one worker's acknowledgement cell, padded so the spinning
// main goroutine and the worker never share a cache line with a neighbour.
type workerSlot struct {
	_   [64]byte
	ack atomic.Uint32
	_   [64]byte
}

// parRunner is the per-cycle barrier for EngineJobs > 1: the main goroutine
// publishes a command by incrementing epoch (workers spin on it), steps
// domain 0 itself, then spins until every worker has acknowledged the epoch.
// cmd is written strictly before the epoch increment and read after the
// epoch load, so the two atomics carry all ordering (and give the race
// detector its happens-before edges).
type parRunner struct {
	cmd     uint32
	epoch   atomic.Uint32
	workers []workerSlot
	started bool
	wg      sync.WaitGroup
}

// startWorkers launches one goroutine per extra domain for the duration of a
// run. Idempotent; a Sim with one domain has no runner and stays serial.
// When the workers are not running (tests driving step directly), step falls
// back to stepping the domains inline in the same ascending order — same
// code, same results.
func (s *Sim) startWorkers() {
	if s.par == nil || s.par.started {
		return
	}
	s.par.started = true
	e0 := s.par.epoch.Load()
	s.par.wg.Add(len(s.par.workers))
	for w := range s.par.workers {
		go s.domainWorker(w, e0)
	}
}

// stopWorkers shuts the pool down and waits for it; safe to call when no
// pool is running. The runner stays reusable, so Run-after-Run works.
func (s *Sim) stopWorkers() {
	if s.par == nil || !s.par.started {
		return
	}
	s.par.cmd = cmdStop
	e := s.par.epoch.Add(1)
	for w := range s.par.workers {
		awaitAck(&s.par.workers[w].ack, e)
	}
	s.par.wg.Wait()
	s.par.started = false
}

// parPhase runs one phase across all domains: publish the command, step
// domain 0 on the calling (main) goroutine, then wait for every worker.
//
//sim:hot
func (s *Sim) parPhase(cmd uint32) {
	pr := s.par
	pr.cmd = cmd
	e := pr.epoch.Add(1)
	if cmd == cmdLinks {
		s.stepLinksDomain(&s.doms[0])
	} else {
		s.stepRoutersDomain(&s.doms[0])
	}
	for w := range pr.workers {
		awaitAck(&pr.workers[w].ack, e)
	}
}

// domainWorker is the steady loop of one worker goroutine: wait for an
// epoch, run the commanded phase on its domain, acknowledge.
//
//sim:domain
func (s *Sim) domainWorker(w int, last uint32) {
	defer s.par.wg.Done()
	d := &s.doms[w+1]
	for {
		e := awaitEpoch(&s.par.epoch, last)
		last = e
		cmd := s.par.cmd
		switch cmd {
		case cmdLinks:
			s.stepLinksDomain(d)
		case cmdRouters:
			s.stepRoutersDomain(d)
		}
		s.par.workers[w].ack.Store(e)
		if cmd == cmdStop {
			return
		}
	}
}

// awaitEpoch spins until the epoch moves past last, yielding the scheduler
// once the phases stop arriving back-to-back (oversubscribed boxes).
//
//sim:hot
func awaitEpoch(v *atomic.Uint32, last uint32) uint32 {
	for spins := 0; ; spins++ {
		if e := v.Load(); e != last {
			return e
		}
		if spins > 128 {
			runtime.Gosched()
		}
	}
}

// awaitAck spins until a worker acknowledges the given epoch.
//
//sim:hot
func awaitAck(v *atomic.Uint32, want uint32) {
	for spins := 0; ; spins++ {
		if v.Load() == want {
			return
		}
		if spins > 128 {
			runtime.Gosched()
		}
	}
}
