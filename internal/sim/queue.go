// Allocation-free engine containers: growable ring FIFOs that retain their
// backing arrays across drains, fixed-horizon timing wheels for delayed
// events, and dirty-index active sets. Together these turn the per-cycle
// cost of the engine from O(topology) into O(pending work) while keeping the
// steady-state loop free of heap allocations.

package sim

import (
	"math"
	"slices"
)

// ring is a growable circular FIFO. Unlike an append/reslice queue it keeps
// its backing array when drained, so a queue that has reached its
// steady-state high-water mark never allocates again. The backing array is
// always a power of two (grow doubles from 8), so index wrapping is a mask
// instead of a modulo — integer division was a top-five line in the
// saturated-load profile before the switch.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

//sim:hot
func (r *ring[T]) len() int { return r.n }

//sim:hot
func (r *ring[T]) empty() bool { return r.n == 0 }

//sim:hot
func (r *ring[T]) front() T { return r.buf[r.head] }

// at returns the i-th element from the front (0 = front).
//
//sim:hot
func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)&(len(r.buf)-1)] }

//sim:hot
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop deliberately leaves the vacated slot's contents in place: every ring
// element type in the engine (flit, linkFlit, *packet, *cbPacket) references
// only freelist-pooled objects that live for the whole run, so there is
// nothing for the GC to reclaim and the per-pop clear would be a pure dead
// store — millions of them per saturated run.
//
//sim:hot
func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	if r.n == 0 {
		r.head = 0
	}
	return v
}

//sim:hot
func (r *ring[T]) grow() {
	//detlint:allow hotalloc amortised doubling; capacity is retained for the run and steady state never grows
	nb := make([]T, max(2*len(r.buf), 8)) // always a power of two: wrap stays mask-friendly
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// wheel is a timing wheel with an overflow list: an event scheduled for
// absolute cycle `at` within the horizon lands in bucket at%len(buckets) and
// is drained when the clock reaches it; an event at or beyond the horizon is
// parked in the overflow list and migrated into its bucket once the clock
// gets close enough. The horizon is therefore a fast-path size hint, not a
// correctness bound — long delays (reconfiguration, failure injection, a
// skip landing far in the future) degrade to a small linear scan instead of
// panicking or silently wrapping one horizon early. schedule still panics on
// events at or before `now`: those are bugs, not long delays. Bucket slices
// retain capacity across reuse. The bucket count is rounded up to a power of
// two so the per-event bucket map is a mask, like the rings.
type wheel[T any] struct {
	buckets  [][]T
	overflow []wheelEvent[T]
	pending  int
	peak     int
}

// wheelEvent is an overflow entry: an event plus its absolute due cycle.
type wheelEvent[T any] struct {
	at int64
	v  T
}

func newWheel[T any](horizon int64) *wheel[T] {
	if horizon < 2 {
		horizon = 2
	}
	n := int64(2)
	for n < horizon {
		n *= 2
	}
	return &wheel[T]{buckets: make([][]T, n)}
}

//sim:hot
func (w *wheel[T]) schedule(now, at int64, v T) {
	if at <= now {
		panic("sim: wheel event scheduled at or before now")
	}
	w.pending++
	if w.pending > w.peak {
		w.peak = w.pending
	}
	if at >= now+int64(len(w.buckets)) {
		//detlint:allow hotalloc overflow list is amortised like a ring; the per-run horizon fast path never reaches it
		w.overflow = append(w.overflow, wheelEvent[T]{at: at, v: v})
		return
	}
	b := at & int64(len(w.buckets)-1)
	w.buckets[b] = append(w.buckets[b], v)
}

// take removes and returns the events due at cycle `now`. The returned slice
// aliases the bucket's backing array, which is immediately reusable for
// future cycles — callers must finish iterating (and clear element
// references) before the wheel can revisit the same bucket, which is
// guaranteed within one cycle's processing. Overflow entries that have come
// within the horizon are migrated to their buckets first (entries due
// exactly now are appended to the returned slice), so a clock that jumps
// forward — the calendar's skip — still observes every event at its due
// cycle.
//
//sim:hot
func (w *wheel[T]) take(now int64) []T {
	if len(w.overflow) > 0 {
		w.migrate(now)
	}
	b := now & int64(len(w.buckets)-1)
	evs := w.buckets[b]
	w.buckets[b] = evs[:0]
	w.pending -= len(evs)
	return evs
}

// migrate moves overflow entries that are now within the horizon into their
// buckets. Cold path: only reached while overflow entries exist, but it sits
// on take's call graph so it keeps the zero-alloc contract (self-append
// recycling only).
//
//sim:hot
func (w *wheel[T]) migrate(now int64) {
	h := int64(len(w.buckets))
	keep := w.overflow[:0]
	for _, e := range w.overflow {
		if e.at < now {
			panic("sim: wheel overflow event expired undelivered")
		}
		if e.at < now+h {
			b := e.at & (h - 1)
			w.buckets[b] = append(w.buckets[b], e.v)
		} else {
			keep = append(keep, e)
		}
	}
	tail := w.overflow[len(keep):]
	for i := range tail {
		var zero wheelEvent[T]
		tail[i] = zero // release references held by migrated slots
	}
	w.overflow = keep
}

// nextDue returns the earliest cycle strictly after `now` at which a pending
// event fires, or math.MaxInt64 when the wheel is empty. O(horizon +
// overflow) and allocation-free; called only at skip decisions, when the
// rest of the engine is idle.
//
//sim:hot
func (w *wheel[T]) nextDue(now int64) int64 {
	if w.pending == 0 {
		return math.MaxInt64
	}
	h := int64(len(w.buckets))
	next := int64(math.MaxInt64)
	for b := int64(0); b < h; b++ {
		if len(w.buckets[b]) == 0 {
			continue
		}
		// The unique cycle in (now, now+h) that maps to bucket b.
		at := now + 1 + (((b-(now+1))%h)+h)%h
		if at < next {
			next = at
		}
	}
	for _, e := range w.overflow {
		if e.at < next {
			next = e.at
		}
	}
	return next
}

// activeSet tracks dirty entity indices (routers, links, NICs) with O(1)
// deduplicated insertion and sorted iteration, so the engine visits entities
// in the same index order as the original full scan — a requirement of the
// byte-identical determinism contract.
type activeSet struct {
	in   []bool
	list []int32
}

func newActiveSet(n int) activeSet {
	return activeSet{in: make([]bool, n)}
}

//sim:hot
func (a *activeSet) add(i int) {
	if !a.in[i] {
		a.in[i] = true
		a.list = append(a.list, int32(i))
	}
}

//sim:hot
func (a *activeSet) size() int { return len(a.list) }

// forEachSorted visits the active indices in ascending order; entries whose
// step returns false are retired from the set. step must not add entries to
// this same set (additions to other sets are fine) — the engine's phase
// structure guarantees that: links activate routers, routers activate links,
// NIC injection activates routers, never an entity of their own kind.
//
// When the set is dense (a quarter or more of the index space is active — the
// saturated regime) the sort is replaced by an ascending scan of the
// membership flags, which visits exactly the same indices in exactly the same
// order without the O(n log n) comparison sort every cycle.
//
//sim:hot
func (a *activeSet) forEachSorted(step func(i int) bool) {
	if n := len(a.list); n*4 >= len(a.in) {
		keep := a.list[:0]
		for i := range a.in {
			if !a.in[i] {
				continue
			}
			if step(i) {
				keep = append(keep, int32(i))
			} else {
				a.in[i] = false
			}
		}
		a.list = keep
		return
	}
	slices.Sort(a.list)
	keep := a.list[:0]
	for _, i := range a.list {
		if step(int(i)) {
			keep = append(keep, i)
		} else {
			a.in[i] = false
		}
	}
	a.list = keep
}
