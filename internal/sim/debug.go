// Diagnostics for tests and deadlock hunting.

package sim

import "fmt"

// StuckReport describes where in-flight flits are waiting.
type StuckReport struct {
	InInputBuffers int
	OnLinks        int
	InInjQueues    int
	InCB           int
	PendingEject   int
	Details        []string
}

// Stuck scans all simulator state for resident flits, with a short
// description of each group (capped).
func (s *Sim) Stuck() StuckReport {
	var rep StuckReport
	add := func(detail string) {
		if len(rep.Details) < 40 {
			rep.Details = append(rep.Details, detail)
		}
	}
	for r := range s.routers {
		rs := &s.routers[r]
		for pi := range rs.in {
			for vc := range rs.in[pi] {
				q := &rs.in[pi][vc].q
				if q.len() > 0 {
					rep.InInputBuffers += q.len()
					f := q.front()
					p := f.pkt
					add(fmt.Sprintf("router %d in[%d][%d]: %d flits; head pkt %d (src %d dst %d hop %d/%d flit %d cb=%v)",
						r, pi, vc, q.len(), p.id, p.src, p.dst, f.hop, len(p.path)-1, f.idx, p.cbState))
				}
			}
		}
		for slot := range rs.cbq {
			q := &rs.cbq[slot]
			for i := 0; i < q.len(); i++ {
				cp := q.at(i)
				if cp.stored.len() > 0 || cp.expected > 0 {
					rep.InCB += cp.stored.len()
					add(fmt.Sprintf("router %d CB (port %d vc %d): pkt %d stored %d expected %d",
						r, slot/s.cfg.VCs, slot%s.cfg.VCs, cp.pkt.id, cp.stored.len(), cp.expected))
				}
			}
		}
	}
	for li := range s.links {
		l := &s.links[li]
		for vc := range l.lanes {
			lane := &l.lanes[vc]
			if n := lane.len(); n > 0 {
				rep.OnLinks += n
				lf := lane.front()
				add(fmt.Sprintf("link %d->%d vc %d: %d flits (head pkt %d arrive %d, now %d)",
					l.from, l.to, vc, n, lf.f.pkt.id, lf.arrive, s.now))
			}
		}
	}
	for v := range s.nics {
		if n := s.nics[v].injQ.len(); n > 0 {
			rep.InInjQueues += n
			f := s.nics[v].injQ.front()
			add(fmt.Sprintf("node %d injQ: %d flits (pkt %d dst %d)", v, n, f.pkt.id, f.pkt.dst))
		}
	}
	rep.PendingEject = s.ejectWheel.pending
	return rep
}
