// Diagnostics for tests and deadlock hunting.

package sim

import "fmt"

// StuckReport describes where in-flight flits are waiting.
type StuckReport struct {
	InInputBuffers int
	OnLinks        int
	InInjQueues    int
	InCB           int
	PendingEject   int
	Details        []string
}

// Stuck scans all simulator state for resident flits, with a short
// description of each group (capped).
func (s *Sim) Stuck() StuckReport {
	var rep StuckReport
	add := func(detail string) {
		if len(rep.Details) < 40 {
			rep.Details = append(rep.Details, detail)
		}
	}
	for r := 0; r < s.net.Nr; r++ {
		for pi := 0; pi < int(s.kp[r]); pi++ {
			vb := (r*s.stride + pi) * s.vcs
			for vc := 0; vc < s.vcs; vc++ {
				q := &s.inQ[vb+vc]
				if q.len() > 0 {
					rep.InInputBuffers += q.len()
					f := q.front()
					p := f.pkt
					add(fmt.Sprintf("router %d in[%d][%d]: %d flits; head pkt %d (src %d dst %d hop %d/%d flit %d cb=%v)",
						r, pi, vc, q.len(), p.id, p.src, p.dst, f.hop, len(p.path)-1, f.idx, p.cbState))
				}
			}
			for vc := 0; vc < s.vcs && s.cbq != nil; vc++ {
				q := &s.cbq[vb+vc]
				for i := 0; i < q.len(); i++ {
					cp := q.at(i)
					if cp.stored.len() > 0 || cp.expected > 0 {
						rep.InCB += cp.stored.len()
						add(fmt.Sprintf("router %d CB (port %d vc %d): pkt %d stored %d expected %d",
							r, pi, vc, cp.pkt.id, cp.stored.len(), cp.expected))
					}
				}
			}
		}
	}
	for li := range s.links {
		l := &s.links[li]
		for vc := range l.lanes {
			lane := &l.lanes[vc]
			if n := lane.len(); n > 0 {
				rep.OnLinks += n
				lf := lane.front()
				add(fmt.Sprintf("link %d->%d vc %d: %d flits (head pkt %d arrive %d, now %d)",
					l.from, l.to, vc, n, lf.f.pkt.id, lf.arrive, s.now))
			}
		}
	}
	for v := range s.nics {
		if n := s.nics[v].injQ.len(); n > 0 {
			rep.InInjQueues += n
			f := s.nics[v].injQ.front()
			add(fmt.Sprintf("node %d injQ: %d flits (pkt %d dst %d)", v, n, f.pkt.id, f.pkt.dst))
		}
	}
	rep.PendingEject = s.ejectWheel.pending
	return rep
}
