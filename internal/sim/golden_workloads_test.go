package sim_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// The workloads fixture pins the simulator's full Result for the composable
// workload layer: one bursty (OnOff) run, one hotspot-overlay run, one
// bimodal-sizer run, and one request-reply closed-loop run. It complements
// testdata/golden_results.json (which pins the pre-decomposition Bernoulli
// path and must never change): together they freeze both halves of the
// Pattern x Process x Sizer refactor, so an engine or traffic change that
// shifts any new workload's metrics fails loudly.
//
// Regenerate (only for an intentional, documented behaviour change):
//
//	go test ./internal/sim -run TestGoldenWorkloads -update-workloads
var updateWorkloads = flag.Bool("update-workloads", false, "rewrite the workloads golden fixture")

const workloadsPath = "testdata/golden_workloads.json"

// workloadSources builds the pinned sources for a network of n nodes. All
// runs share the golden network (SN q=5 p=4 subgroup) and seed so the
// fixture isolates the workload axis.
func workloadSources(n int) map[string]sim.Source {
	return map[string]sim.Source{
		"burst": &traffic.Synthetic{N: n, Rate: 0.06, PacketFlits: 6,
			Pattern: traffic.Uniform{N: n},
			Process: traffic.NewOnOff(n, 8, 0.25)},
		"mmpp": &traffic.Synthetic{N: n, Rate: 0.06, PacketFlits: 6,
			Pattern: traffic.Uniform{N: n},
			Process: traffic.NewModulated(1.8, 100)},
		"hotspot": &traffic.Synthetic{N: n, Rate: 0.06, PacketFlits: 6,
			Pattern: traffic.Hotspot{Frac: 0.2, K: 4, N: n, Base: traffic.Uniform{N: n}}},
		"bimodal": &traffic.Synthetic{N: n, Rate: 0.06, PacketFlits: 6,
			Pattern: traffic.Uniform{N: n},
			Sizer:   traffic.Bimodal{Short: 2, Long: 6, ShortFrac: 0.5}},
		"reqreply": &traffic.ReqReply{N: n, Window: 4, ReqFlits: 2, ReplyFlits: 6,
			Pattern: traffic.Uniform{N: n}},
	}
}

// TestGoldenWorkloads compares every workload case's full Result against the
// fixture, via JSON like TestGoldenMetrics, so any metric drift fails.
func TestGoldenWorkloads(t *testing.T) {
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	got := make(map[string]sim.Result)
	for name, src := range workloadSources(net.N()) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			cfg := sim.Config{
				Net:           net,
				Routing:       minRouting(t, net, 2),
				VCs:           2,
				Scheme:        sim.EdgeBuffers,
				Traffic:       src,
				Seed:          107,
				WarmupCycles:  1000,
				MeasureCycles: 3000,
				DrainCycles:   3000,
			}
			_, res := runCfg(t, cfg)
			if res.Delivered == 0 {
				t.Fatal("workload delivered nothing")
			}
			got[name] = res
		})
	}

	if *updateWorkloads {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(workloadsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(workloadsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d workload results to %s", len(got), workloadsPath)
		return
	}

	data, err := os.ReadFile(workloadsPath)
	if err != nil {
		t.Fatalf("read workloads fixture (generate with -update-workloads): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("case %s missing from fixture; regenerate intentionally", name)
			continue
		}
		if g != w {
			t.Errorf("%s: Result drifted from workloads fixture\n got %+v\nwant %+v", name, g, w)
		}
	}
	if len(got) == len(workloadSources(net.N())) {
		for name := range want {
			if _, ok := got[name]; !ok {
				t.Errorf("fixture case %s no longer produced", name)
			}
		}
	}
}
