package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Differential harness for the event calendar: randomized run specs
// (topology x scheme x workload x load x seed, drawn from a seeded
// generator) execute through the calendar engine AND through forced
// cycle-stepping, and the two full Results — plus EngineStats up to the two
// skip-telemetry fields — must be byte-identical. The fixed corpus runs in
// every `go test` (and in CI under -race); FuzzCalendarEquivalence exposes
// the same oracle to `go test -fuzz` for open-ended exploration.

// diffSpec is one randomized configuration. Everything is drawn from the
// corpus RNG so a spec is reproducible from its draw sequence alone.
type diffSpec struct {
	q, p     int
	scheme   sim.BufferScheme
	h        int
	vcs      int
	shape    int // 0 bernoulli, 1 onoff, 2 reqreply, 3 ugal-adaptive, 4 hot-region
	rate     float64
	burstLen float64
	duty     float64
	window   int
	hotRate  float64
	seed     int64
}

// hotRegionSource drives one busy region while the rest of the network
// stays completely idle: the first `hot` nodes exchange Bernoulli traffic
// among themselves, every other node never injects. Under the domain-
// parallel engine most domains therefore see no work at all, which is
// exactly the regime the per-domain calendar fast-forwards — and exactly
// where a skipping bug would silently desynchronize domains.
type hotRegionSource struct {
	n, hot, flits int
	rate          float64
}

func (h *hotRegionSource) Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int)) {
	prob := h.rate / float64(h.flits)
	for node := 0; node < h.hot; node++ {
		if rng.Float64() < prob {
			for {
				d := rng.Intn(h.hot)
				if d != node {
					emit(node, d, h.flits, 0)
					break
				}
			}
		}
	}
}

func (h *hotRegionSource) OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int)) {
}

// drawDiffSpec samples one spec from the generator.
func drawDiffSpec(r *rand.Rand) diffSpec {
	sp := diffSpec{
		q:      []int{3, 5}[r.Intn(2)],
		p:      3,
		scheme: []sim.BufferScheme{sim.EdgeBuffers, sim.CentralBuffer, sim.ElasticLinks}[r.Intn(3)],
		h:      []int{1, 9}[r.Intn(2)],
		vcs:    2,
		shape:  r.Intn(5),
		rate:   []float64{0.004, 0.02, 0.06, 0.24}[r.Intn(4)],
		seed:   int64(r.Intn(1 << 16)),
	}
	if sp.q == 5 {
		sp.p = 4
	}
	sp.burstLen = []float64{8, 32}[r.Intn(2)]
	sp.duty = []float64{0.05, 0.25}[r.Intn(2)]
	sp.window = 1 + r.Intn(3)
	sp.hotRate = []float64{0.24, 0.40}[r.Intn(2)]
	if sp.shape == 3 {
		sp.vcs = 4 // UGAL's VC discipline needs the extra classes
	}
	return sp
}

// runDiffSpec executes one spec with the given engine tuning. The returned
// stats have the two calendar-only telemetry fields cleared — they are the
// only legitimate difference between modes — so callers compare everything
// that must be invariant with one struct equality; the cleared skip count is
// returned separately.
func runDiffSpec(t testing.TB, sp diffSpec, jobs int, cycleStep bool) (sim.Result, sim.EngineStats, int64) {
	t.Helper()
	sn, err := core.New(core.Params{Q: sp.q, P: sp.p})
	if err != nil {
		t.Fatal(err)
	}
	net, err := sn.Network(core.LayoutSubgroup, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := net.N()
	var src sim.Source
	switch sp.shape {
	case 1:
		src = &traffic.Synthetic{N: n, Rate: sp.rate, PacketFlits: 6,
			Pattern: traffic.Uniform{N: n},
			Process: traffic.NewOnOff(n, sp.burstLen, sp.duty)}
	case 2:
		src = &traffic.ReqReply{N: n, Window: sp.window, ReqFlits: 2,
			ReplyFlits: 6, Pattern: traffic.Uniform{N: n}}
	case 4:
		// One busy region, rest idle: roughly the first eighth of the
		// nodes exchange traffic among themselves at a saturating rate
		// while every other node stays silent, so most engine domains
		// are pure skip-ahead territory.
		hot := n / 8
		if hot < 4 {
			hot = 4
		}
		src = &hotRegionSource{n: n, hot: hot, flits: 6, rate: sp.hotRate}
	default: // bernoulli open loop (shapes 0 and 3)
		src = &traffic.Synthetic{N: n, Rate: sp.rate, PacketFlits: 6,
			Pattern: traffic.Uniform{N: n}}
	}
	cfg := sim.Config{
		Net:           net,
		VCs:           sp.vcs,
		Scheme:        sp.scheme,
		H:             sp.h,
		Traffic:       src,
		Seed:          sp.seed,
		EngineJobs:    jobs,
		CycleStep:     cycleStep,
		WarmupCycles:  300,
		MeasureCycles: 900,
		DrainCycles:   1500,
	}
	if sp.shape == 3 {
		cfg.Adaptive = &sim.UGAL{Global: false, VCs: sp.vcs}
	} else {
		cfg.Routing = minRouting(t, net, sp.vcs)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	st := s.EngineStats()
	skipped := st.CyclesSkipped
	st.CyclesSkipped, st.CalendarPeak = 0, 0
	return res, st, skipped
}

// assertDiffEquivalence is the shared oracle: calendar (serial and 4-domain)
// versus forced cycle-stepping on one spec. Returns the serial calendar
// run's skip count so corpus callers can assert skipping actually happened.
func assertDiffEquivalence(t testing.TB, sp diffSpec) int64 {
	calRes, calStats, skipped := runDiffSpec(t, sp, 0, false)
	cycRes, cycStats, _ := runDiffSpec(t, sp, 0, true)
	if calRes != cycRes {
		t.Errorf("spec %+v: calendar Result diverged from cycle-stepping\n calendar %+v\n  stepped %+v", sp, calRes, cycRes)
	}
	if calStats != cycStats {
		t.Errorf("spec %+v: calendar EngineStats diverged from cycle-stepping\n calendar %+v\n  stepped %+v", sp, calStats, cycStats)
	}
	parRes, parStats, _ := runDiffSpec(t, sp, 4, false)
	if parRes != cycRes {
		t.Errorf("spec %+v: 4-domain calendar Result diverged from cycle-stepping\n calendar %+v\n  stepped %+v", sp, parRes, cycRes)
	}
	if parStats != cycStats {
		t.Errorf("spec %+v: 4-domain calendar EngineStats diverged from cycle-stepping\n calendar %+v\n  stepped %+v", sp, parStats, cycStats)
	}
	return skipped
}

// TestCalendarDifferential runs the fixed corpus: 12 specs drawn from a
// pinned generator seed (4 under -short), each checked with the shared
// oracle. At least one corpus spec must actually exercise skipping, so the
// corpus cannot silently degenerate into always-saturated specs.
func TestCalendarDifferential(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	gen := rand.New(rand.NewSource(42))
	var totalSkipped int64
	for i := 0; i < n; i++ {
		sp := drawDiffSpec(gen)
		totalSkipped += assertDiffEquivalence(t, sp)
		t.Logf("corpus[%d] %s: ok", i, diffName(sp))
	}
	// Pinned hotspot specs (independent of the random draws): one busy
	// region, rest idle, across all three buffer schemes — the shape where
	// the per-domain calendar must fast-forward idle domains of a busy
	// network without drifting from cycle-stepping.
	pinned := []diffSpec{
		{q: 5, p: 4, scheme: sim.EdgeBuffers, h: 1, vcs: 2, shape: 4, hotRate: 0.40, seed: 501},
		{q: 5, p: 4, scheme: sim.CentralBuffer, h: 9, vcs: 2, shape: 4, hotRate: 0.24, seed: 502},
		{q: 3, p: 3, scheme: sim.ElasticLinks, h: 1, vcs: 2, shape: 4, hotRate: 0.40, seed: 503},
	}
	if testing.Short() {
		pinned = pinned[:1]
	}
	for i, sp := range pinned {
		totalSkipped += assertDiffEquivalence(t, sp)
		t.Logf("pinned[%d] %s: ok", i, diffName(sp))
	}
	if totalSkipped == 0 {
		t.Error("no corpus spec skipped a single cycle; the corpus no longer exercises the calendar")
	}
}

func diffName(sp diffSpec) string {
	tag := []string{"bern", "onoff", "reqreply", "ugal", "hotregion"}[sp.shape]
	return []string{"eb", "cbr", "el"}[sp.scheme] + "_" + tag
}

// FuzzCalendarEquivalence exposes the differential oracle to go's fuzzer:
// every fuzz input is a generator seed expanded into one spec, so crashes
// reproduce from the seed alone.
//
//	go test ./internal/sim -fuzz FuzzCalendarEquivalence -fuzztime 30s
func FuzzCalendarEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sp := drawDiffSpec(rand.New(rand.NewSource(seed)))
		// One scheme-shape pair per input keeps each execution fast enough
		// for the fuzzing loop; the spec space is covered across inputs.
		assertDiffEquivalence(t, sp)
	})
}
