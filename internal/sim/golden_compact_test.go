package sim_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// TestGoldenMetricsCompactTable replays the static-routing golden cases with
// a compact (next-hop-only) route table supplied in place of the path
// builder, against the same unmodified fixture: the on-the-fly route
// reconstruction is required to be a byte-identical re-implementation of the
// dense interned views, end to end through the engine — at the serial
// domain count and split across domains. (UGAL cases route per packet and
// have no compiled table; they are covered by the base golden tests.)
func TestGoldenMetricsCompactTable(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture (generate with -update-golden): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases() {
		if c.UGAL {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			w, ok := want[c.Name]
			if !ok {
				t.Fatalf("case %s missing from fixture", c.Name)
			}
			for _, jobs := range []int{0, 4} {
				net := snNetwork(t, 5, 4, core.LayoutSubgroup)
				tab, err := routing.CompileCompact(net, c.VCs)
				if err != nil {
					t.Fatal(err)
				}
				if !tab.Compact() {
					t.Fatal("CompileCompact built a non-compact table")
				}
				cfg := sim.Config{
					Net:    net,
					Table:  tab,
					VCs:    c.VCs,
					Scheme: c.Scheme,
					H:      c.H,
					Traffic: &traffic.Synthetic{N: net.N(), Rate: c.Rate, PacketFlits: 6,
						Pattern: traffic.Uniform{N: net.N()}},
					Seed:          c.Seed,
					EngineJobs:    jobs,
					WarmupCycles:  1000,
					MeasureCycles: 3000,
					DrainCycles:   3000,
				}
				_, got := runCfg(t, cfg)
				if got != w {
					t.Errorf("jobs=%d: compact-table Result drifted from golden fixture\n got %+v\nwant %+v", jobs, got, w)
				}
			}
		})
	}
}

// TestGoldenWorkloadsCompactTable replays the composable-workload fixture
// (bursty, MMPP, hotspot, bimodal, request-reply) with a compact route table:
// workload generation is orthogonal to route storage, so the fixture bytes
// must be reproduced exactly.
func TestGoldenWorkloadsCompactTable(t *testing.T) {
	data, err := os.ReadFile(workloadsPath)
	if err != nil {
		t.Fatalf("read workloads fixture (generate with -update-workloads): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	tab, err := routing.CompileCompact(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range workloadSources(net.N()) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			w, ok := want[name]
			if !ok {
				t.Fatalf("case %s missing from fixture", name)
			}
			cfg := sim.Config{
				Net:           net,
				Table:         tab,
				VCs:           2,
				Scheme:        sim.EdgeBuffers,
				Traffic:       src,
				Seed:          107,
				WarmupCycles:  1000,
				MeasureCycles: 3000,
				DrainCycles:   3000,
			}
			_, got := runCfg(t, cfg)
			if got != w {
				t.Errorf("compact-table Result drifted from workloads fixture\n got %+v\nwant %+v", got, w)
			}
		})
	}
}

// TestGoldenIdleCompactTable replays the idle-skip fixture with a compact
// route table, calendar active: route reconstruction happens at enqueue
// time, so it must not disturb the calendar's exact-skip bookkeeping.
func TestGoldenIdleCompactTable(t *testing.T) {
	data, err := os.ReadFile(goldenIdlePath)
	if err != nil {
		t.Fatalf("read idle fixture (generate with -update-golden-idle): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenIdleCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			w, ok := want[c.Name]
			if !ok {
				t.Fatalf("case %s missing from fixture", c.Name)
			}
			net := snNetwork(t, 5, 4, core.LayoutSubgroup)
			tab, err := routing.CompileCompact(net, 2)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.Config{
				Net:           net,
				Table:         tab,
				VCs:           2,
				Scheme:        c.Scheme,
				H:             1,
				Traffic:       idleSource(t, net.N(), c.Shape),
				Seed:          107,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				DrainCycles:   3000,
			}
			_, got := runCfg(t, cfg)
			if got != w {
				t.Errorf("compact-table Result drifted from idle fixture\n got %+v\nwant %+v", got, w)
			}
		})
	}
}
