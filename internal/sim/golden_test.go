package sim_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// The golden fixture pins the simulator's Result — every field — for fixed
// seeds across all three buffer schemes, both SMART settings, and adaptive
// routing. It was generated from the pre-active-set cycle-scan engine and
// must never be regenerated casually: engine optimisations (route tables,
// freelists, timing wheels, dirty lists) are required to be byte-identical
// re-implementations of the original semantics, and this test is the proof.
//
// Regenerate (only for an intentional, documented behaviour change):
//
//	go test ./internal/sim -run TestGoldenMetrics -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden metrics fixture")

const goldenPath = "testdata/golden_results.json"

// goldenCase is one pinned configuration. All cases run on the SN q=5 p=4
// subgroup network (50 routers, 200 nodes) so fixture generation stays fast.
type goldenCase struct {
	Name   string
	Scheme sim.BufferScheme
	H      int
	Rate   float64
	VCs    int
	UGAL   bool // UGAL-L adaptive routing instead of static minimal
	Seed   int64
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, sc := range []struct {
		tag    string
		scheme sim.BufferScheme
	}{
		{"eb", sim.EdgeBuffers},
		{"cbr", sim.CentralBuffer},
		{"el", sim.ElasticLinks},
	} {
		for _, h := range []int{1, 9} {
			for _, rate := range []float64{0.05, 0.24} {
				cases = append(cases, goldenCase{
					Name:   fmt.Sprintf("%s_h%d_r%.2f", sc.tag, h, rate),
					Scheme: sc.scheme,
					H:      h,
					Rate:   rate,
					VCs:    2,
					Seed:   101,
				})
			}
		}
	}
	cases = append(cases, goldenCase{
		Name: "ugal_h1_r0.10", Scheme: sim.EdgeBuffers, H: 1, Rate: 0.10,
		VCs: 4, UGAL: true, Seed: 103,
	})
	return cases
}

func runGoldenCase(t *testing.T, c goldenCase, jobs int) sim.Result {
	t.Helper()
	net := snNetwork(t, 5, 4, core.LayoutSubgroup)
	cfg := sim.Config{
		Net:     net,
		Routing: minRouting(t, net, c.VCs),
		VCs:     c.VCs,
		Scheme:  c.Scheme,
		H:       c.H,
		Traffic: &traffic.Synthetic{N: net.N(), Rate: c.Rate, PacketFlits: 6,
			Pattern: traffic.Uniform{N: net.N()}},
		Seed:          c.Seed,
		EngineJobs:    jobs,
		WarmupCycles:  1000,
		MeasureCycles: 3000,
		DrainCycles:   3000,
	}
	if c.UGAL {
		cfg.Adaptive = &sim.UGAL{Global: false, VCs: c.VCs}
	}
	_, res := runCfg(t, cfg)
	return res
}

// TestGoldenMetrics compares every case's full Result against the fixture.
// Comparison goes through JSON with all fields marshalled, so any drift —
// latency, throughput, counts, flags — fails loudly.
func TestGoldenMetrics(t *testing.T) {
	got := make(map[string]sim.Result)
	for _, c := range goldenCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			got[c.Name] = runGoldenCase(t, c, 0)
		})
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden results to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture (generate with -update-golden): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("case %s missing from fixture; regenerate intentionally", name)
			continue
		}
		if g != w {
			t.Errorf("%s: Result drifted from golden fixture\n got %+v\nwant %+v", name, g, w)
		}
	}
	// The completeness check only applies to an unfiltered run: under a
	// -run subtest filter `got` legitimately holds a subset of the cases.
	if len(got) == len(goldenCases()) {
		for name := range want {
			if _, ok := got[name]; !ok {
				t.Errorf("fixture case %s no longer produced", name)
			}
		}
	}
}

// TestGoldenMetricsParallel re-runs every golden case with the engine split
// across 4 spatial domains (EngineJobs: 4) and compares against the same,
// unmodified fixture: domain-parallel stepping is required to be a byte-
// identical re-implementation of the serial engine the fixture was
// generated from, exactly like every previous engine optimisation.
func TestGoldenMetricsParallel(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture (generate with -update-golden): %v", err)
	}
	var want map[string]sim.Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			got := runGoldenCase(t, c, 4)
			w, ok := want[c.Name]
			if !ok {
				t.Fatalf("case %s missing from fixture", c.Name)
			}
			if got != w {
				t.Errorf("%s: 4-domain Result drifted from golden fixture\n got %+v\nwant %+v", c.Name, got, w)
			}
		})
	}
}
