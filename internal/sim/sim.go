// Package sim is a cycle-accurate flit-level network-on-chip simulator, the
// reproduction's stand-in for the paper's in-house simulator (§5.1). It
// models virtual-channel wormhole routers with credit-based flow control and
// multi-cycle links, plus the paper's microarchitectural extensions:
// central-buffer routers with a 2-cycle bypass and 4-cycle buffered path
// (§4.1), ElastiStore-style elastic links (link pipeline registers as
// storage, §4.2), and SMART links that traverse H grid hops per cycle
// (§3.2.2). Packets are source-routed with per-hop VC assignments supplied
// by internal/routing, which guarantees deadlock freedom (§4.3).
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/routing"
	"repro/internal/topo"
)

// BufferScheme selects the router/link storage organisation (§5.1).
type BufferScheme int

// Buffering strategies evaluated in Fig. 11.
const (
	// EdgeBuffers: per-VC multi-flit input buffers, credit flow control.
	EdgeBuffers BufferScheme = iota
	// CentralBuffer: 1-flit input staging per VC plus a shared central
	// buffer; elastic links provide in-flight storage.
	CentralBuffer
	// ElasticLinks: no input buffers beyond a 1-flit staging latch per VC;
	// the link pipeline registers hold in-flight flits.
	ElasticLinks
)

// Config describes one simulation.
type Config struct {
	Net     *topo.Network
	Routing routing.PathBuilder
	VCs     int

	Scheme BufferScheme
	// EdgeBufCap returns the per-VC input-buffer capacity in flits for a
	// link of the given Manhattan length (EdgeBuffers only). The paper's
	// EB-Small/EB-Large use constants 5/15; EB-Var sizes each buffer for
	// 100% utilisation of its wire.
	EdgeBufCap func(dist int) int
	// CBCap is the central-buffer capacity in flits (CentralBuffer only).
	CBCap int

	// H is the number of grid hops a flit traverses per link cycle: 1
	// without SMART, ~9 with SMART at 45 nm (§5.1).
	H int

	PacketFlits int   // flits per packet for synthetic traffic (paper: 6)
	InjQueueCap int   // NIC injection queue capacity in flits (paper: 20)
	Seed        int64 // RNG seed (injection processes, adaptive choices)

	// Traffic supplies injections; see Source.
	Traffic Source

	// Adaptive optionally overrides per-packet path selection (UGAL etc.).
	Adaptive AdaptivePolicy

	WarmupCycles  int64
	MeasureCycles int64
	DrainCycles   int64
}

// Source generates traffic. Generate is called once per cycle and emits
// packets via the callback; class is an opaque tag carried to OnDelivered.
type Source interface {
	Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int))
	// OnDelivered is invoked when a packet is fully ejected; sources may
	// emit replies (e.g. read responses in trace-driven mode).
	OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int))
}

// AdaptivePolicy chooses a packet's route given live network state.
type AdaptivePolicy interface {
	// Choose returns the router path and per-hop VCs for a packet from
	// srcRouter to dstRouter.
	Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) (path []int, vcs []int)
}

// Defaults match the paper's evaluation setup (§5.1).
func (c *Config) setDefaults() {
	if c.VCs == 0 {
		c.VCs = 2
	}
	if c.H == 0 {
		c.H = 1
	}
	if c.PacketFlits == 0 {
		c.PacketFlits = 6
	}
	if c.InjQueueCap == 0 {
		c.InjQueueCap = 20
	}
	if c.EdgeBufCap == nil {
		c.EdgeBufCap = func(int) int { return 5 }
	}
	if c.CBCap == 0 {
		c.CBCap = 20
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 5000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 20000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 20000
	}
}

// EdgeBufVar returns the EB-Var sizing function: the minimal per-VC buffer
// for 100% utilisation of a wire of the given length (δij/|VC| from §3.2.2).
func EdgeBufVar(h, vcs int) func(dist int) int {
	if h < 1 {
		h = 1
	}
	return func(dist int) int {
		if dist < 1 {
			dist = 1
		}
		return 2*((dist+h-1)/h) + 3
	}
}

// packet is one in-flight packet.
type packet struct {
	id       int64
	src, dst int // nodes
	path     []int32
	vcs      []uint8
	flits    int
	class    int
	genTime  int64
	tracked  bool
	// flitsMoved counts flits transferred from the source queue into the
	// NIC injection buffer.
	flitsMoved int
	// cbState records the central-buffer router's bypass-vs-buffered
	// decision per hop (§4.1): 0 undecided, 1 bypass, 2 buffered. Indexed
	// by hop because head and tail flits of one packet can occupy
	// different routers simultaneously.
	cbState []uint8
}

// flit references its packet and position.
type flit struct {
	pkt *packet
	idx int32 // 0 = head; pkt.flits-1 = tail
	hop int32 // hop index: the link path[hop] -> path[hop+1] it travels next
}

func (f flit) head() bool { return f.idx == 0 }
func (f flit) tail() bool { return int(f.idx) == f.pkt.flits-1 }

// fifo is a simple flit queue.
type fifo struct {
	buf []flit
}

func (q *fifo) len() int    { return len(q.buf) }
func (q *fifo) empty() bool { return len(q.buf) == 0 }
func (q *fifo) front() flit { return q.buf[0] }
func (q *fifo) push(f flit) { q.buf = append(q.buf, f) }
func (q *fifo) pop() flit {
	f := q.buf[0]
	q.buf = q.buf[1:]
	if len(q.buf) == 0 && cap(q.buf) > 64 {
		q.buf = nil
	}
	return f
}

// linkFlit is a flit in flight on a wire.
type linkFlit struct {
	f      flit
	arrive int64
}

// link is a directed wire between routers. In elastic modes the pipeline
// registers themselves store flits (per-VC, ElastiStore-style independent
// handshakes), so inflight is kept per VC.
type link struct {
	from, to   int // routers
	toPort     int // input port index at the destination router
	latency    int64
	inflight   [][]linkFlit // per VC
	perVCInFly []int        // flits in flight per VC
	occupancy  int          // flits on the wire plus downstream (UGAL signal)
}

// creditEvent returns a credit to (router, port, vc) at a future cycle.
type creditEvent struct {
	at       int64
	router   int
	port, vc int
}

// inputVC is one input buffer (port, vc) at a router.
type inputVC struct {
	q   fifo
	cap int
}

// cbPacket is a packet resident in (or streaming through) a central buffer.
type cbPacket struct {
	pkt      *packet
	outPort  int
	outVC    int
	stored   fifo // flits currently in the CB
	expected int  // flits still to arrive into the CB
}

// routerState holds all per-router simulation state.
type routerState struct {
	id    int
	kp    int // network ports
	ports int // kp + ejection ports handled separately
	// in[port][vc]; port 0..kp-1 are network inputs (from Adj order).
	in [][]inputVC
	// outOwner[port][vc]: packet id owning the output VC, or -1.
	outOwner [][]int64
	// credits[port][vc] for EdgeBuffers (slots free at downstream input).
	credits [][]int
	// outLink[port]: index into Sim.links for each network output.
	outLink []int
	// inLink[port]: link arriving at this input; revPort[port]: this
	// router's position in the upstream router's adjacency (credit target).
	inLink  []int
	revPort []int
	// CBR state.
	cbFree  int
	cbQueue map[int]*[]*cbPacket // key port*64+vc -> FIFO of CB packets
	// round-robin pointers for switch allocation fairness
	rrIn int
}

// nic is one node's network interface.
type nic struct {
	node    int
	srcQ    []*packet // unbounded source queue (open-loop measurement)
	injQ    fifo      // bounded injection buffer (flits)
	injCap  int
	ejected int64
}

// Sim is a runnable simulation instance.
type Sim struct {
	cfg     Config
	net     *topo.Network
	rng     *rand.Rand
	now     int64
	routers []routerState
	links   []link
	// linkIndex[from][portAtFrom] = link id; portOf[r][neighbor index] maps.
	portAt  [][]int // portAt[r] maps adjacency position -> input port at peer
	nics    []nic
	credits []creditEvent // pending credit returns (unsorted; scanned per cycle)
	paths   *routing.Paths

	ejUsed       []bool     // per-node ejection port budget, reset each cycle
	ejectDelayed []linkFlit // flits finishing their last router traversal

	nextPktID int64

	// Stats.
	Result        Result
	lat           []int64
	genMeasured   int64 // tracked packets generated
	doneMeasured  int64 // tracked packets delivered
	flitsEjected  int64 // during measurement window
	flitsInjected int64
	inFlightFlits int64
	totalHops     int64
	hopPackets    int64
	// CBR path statistics: flits forwarded on the 2-cycle bypass vs the
	// 4-cycle buffered path (§4.1).
	bypassFlits   int64
	bufferedFlits int64
	lastEject     int64 // cycle of the most recent ejection (deadlock watchdog)
}

// Result summarises one run.
type Result struct {
	AvgLatency  float64 // cycles, tracked packets
	P99Latency  float64
	Throughput  float64 // accepted flits/node/cycle during measurement
	OfferedLoad float64 // generated flits/node/cycle during measurement
	Delivered   int64
	Generated   int64
	Saturated   bool // <95% of tracked packets delivered by the end
	AvgHops     float64
	Cycles      int64
	// DeadlockSuspected is set when flits remained in flight with no
	// ejection progress through the second half of the drain phase — the
	// watchdog for routing/flow-control bugs (a correctly configured
	// network never triggers it).
	DeadlockSuspected bool
}

// New builds a simulation from the config.
func New(cfg Config) (*Sim, error) {
	cfg.setDefaults()
	if cfg.Net == nil || cfg.Routing == nil || cfg.Traffic == nil {
		return nil, fmt.Errorf("sim: Net, Routing and Traffic are required")
	}
	if cfg.Net.NodeMap != nil {
		return nil, fmt.Errorf("sim: indirect networks (node maps) are not simulated")
	}
	s := &Sim{
		cfg: cfg,
		net: cfg.Net,
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	nr := s.net.Nr
	s.routers = make([]routerState, nr)
	s.portAt = make([][]int, nr)
	// Build links and router state.
	for r := 0; r < nr; r++ {
		adj := s.net.Adj[r]
		kp := len(adj)
		rs := &s.routers[r]
		rs.id = r
		rs.kp = kp
		rs.in = make([][]inputVC, kp)
		rs.outOwner = make([][]int64, kp)
		rs.credits = make([][]int, kp)
		rs.outLink = make([]int, kp)
		rs.inLink = make([]int, kp)
		rs.revPort = make([]int, kp)
		rs.cbFree = cfg.CBCap
		rs.cbQueue = make(map[int]*[]*cbPacket)
		s.portAt[r] = make([]int, kp)
	}
	for r := 0; r < nr; r++ {
		adj := s.net.Adj[r]
		for pi, nb := range adj {
			// Input port pi at r receives from nb; find r's position in
			// nb's adjacency to wire the reverse direction.
			dist := 1
			if s.net.Coords != nil {
				dist = topo.ManhattanDist(s.net.Coords[r], s.net.Coords[nb])
				if dist < 1 {
					dist = 1
				}
			}
			lat := int64((dist + cfg.H - 1) / cfg.H)
			if lat < 1 {
				lat = 1
			}
			l := link{
				from: nb, to: r, toPort: pi, latency: lat,
				perVCInFly: make([]int, cfg.VCs),
				inflight:   make([][]linkFlit, cfg.VCs),
			}
			s.links = append(s.links, l)
			lid := len(s.links) - 1
			// Record at the sender.
			sender := &s.routers[nb]
			pos := portIndex(s.net.Adj[nb], r)
			sender.outLink[pos] = lid
			rs0 := &s.routers[r]
			rs0.inLink[pi] = lid
			rs0.revPort[pi] = pos
			// Input buffer capacity.
			capFlits := 1
			if cfg.Scheme == EdgeBuffers {
				capFlits = cfg.EdgeBufCap(dist)
				if capFlits < 1 {
					capFlits = 1
				}
			}
			rs := &s.routers[r]
			rs.in[pi] = make([]inputVC, cfg.VCs)
			for v := range rs.in[pi] {
				rs.in[pi][v] = inputVC{cap: capFlits}
			}
		}
	}
	// Init owners and credits now that capacities are known.
	for r := 0; r < nr; r++ {
		rs := &s.routers[r]
		for pi := range rs.outOwner {
			rs.outOwner[pi] = make([]int64, cfg.VCs)
			rs.credits[pi] = make([]int, cfg.VCs)
			for v := 0; v < cfg.VCs; v++ {
				rs.outOwner[pi][v] = -1
				l := s.links[rs.outLink[pi]]
				rs.credits[pi][v] = s.routers[l.to].in[l.toPort][v].cap
			}
		}
	}
	// NICs.
	s.nics = make([]nic, s.net.N())
	for v := range s.nics {
		s.nics[v] = nic{node: v, injCap: cfg.InjQueueCap}
	}
	return s, nil
}

func portIndex(adj []int, target int) int {
	for i, v := range adj {
		if v == target {
			return i
		}
	}
	panic("sim: adjacency not symmetric")
}

// InFlight returns the number of flits currently inside the network,
// injection queues, or links — zero after a fully drained run. Exposed for
// conservation checks.
func (s *Sim) InFlight() int64 { return s.inFlightFlits }

// CBPathStats returns the number of flits that took the central-buffer
// router's bypass path versus its buffered path (meaningful only for
// Scheme == CentralBuffer).
func (s *Sim) CBPathStats() (bypass, buffered int64) {
	return s.bypassFlits, s.bufferedFlits
}

// Paths lazily builds all-pairs shortest paths (used by adaptive policies).
func (s *Sim) Paths() *routing.Paths {
	if s.paths == nil {
		s.paths = routing.NewMinimal(s.net)
	}
	return s.paths
}

// LinkOccupancy returns the current flit occupancy of the directed link from
// router a toward router b (UGAL congestion signal), or 0 if absent.
func (s *Sim) LinkOccupancy(a, b int) int {
	pos := -1
	for i, nb := range s.net.Adj[a] {
		if nb == b {
			pos = i
			break
		}
	}
	if pos < 0 {
		return 0
	}
	return s.links[s.routers[a].outLink[pos]].occupancy
}

// PathOccupancy sums link occupancy along a router path (UGAL-G signal).
func (s *Sim) PathOccupancy(path []int) int {
	total := 0
	for i := 1; i < len(path); i++ {
		total += s.LinkOccupancy(path[i-1], path[i])
	}
	return total
}

// Progress is the periodic telemetry snapshot emitted during a run.
type Progress struct {
	Cycle       int64
	TotalCycles int64
	Generated   int64 // tracked packets generated so far
	Delivered   int64 // tracked packets delivered so far
	InFlight    int64 // flits currently in the network
}

// Run executes the configured warmup + measurement + drain and returns the
// result.
func (s *Sim) Run() Result {
	res, _ := s.RunContext(context.Background(), 0, nil)
	return res
}

// RunContext is Run with cooperative cancellation and progress streaming.
// The context is polled every `every` cycles (default 1024); onProgress,
// when non-nil, is invoked on the same cadence. On cancellation the
// simulation stops at the next poll point and returns the statistics
// accumulated so far together with an error wrapping ctx.Err(), so callers
// can distinguish a partial result from a completed one.
func (s *Sim) RunContext(ctx context.Context, every int64, onProgress func(Progress)) (Result, error) {
	cfg := &s.cfg
	total := cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles
	if every <= 0 {
		every = 1024
	}
	var runErr error
	for s.now = 0; s.now < total; s.now++ {
		if s.now%every == 0 {
			if ctx != nil && ctx.Err() != nil {
				runErr = fmt.Errorf("sim: run cancelled at cycle %d of %d: %w", s.now, total, ctx.Err())
				break
			}
			if onProgress != nil {
				onProgress(Progress{
					Cycle:       s.now,
					TotalCycles: total,
					Generated:   s.genMeasured,
					Delivered:   s.doneMeasured,
					InFlight:    s.inFlightFlits,
				})
			}
		}
		s.stepGenerate()
		s.stepCredits()
		s.flushEjections()
		s.stepLinks()
		s.stepRouters()
		s.stepInject()
	}
	stop := s.now
	// Account for ejections still completing their final router traversal.
	s.now = stop + routerDelayDirect
	s.flushEjections()
	s.now = stop
	res := &s.Result
	res.Cycles = stop
	res.DeadlockSuspected = runErr == nil && s.inFlightFlits > 0 && s.lastEject < total-s.cfg.DrainCycles/2
	res.Generated = s.genMeasured
	res.Delivered = s.doneMeasured
	if len(s.lat) > 0 {
		var sum int64
		for _, l := range s.lat {
			sum += l
		}
		res.AvgLatency = float64(sum) / float64(len(s.lat))
		res.P99Latency = percentile(s.lat, 0.99)
	}
	// A cancelled run normalises rates over the measurement cycles that
	// actually elapsed, and never reports saturation: undelivered packets
	// then mean the run was cut short, not that the network saturated.
	measured := stop - cfg.WarmupCycles
	if measured > cfg.MeasureCycles {
		measured = cfg.MeasureCycles
	}
	if measured > 0 {
		n := float64(s.net.N())
		res.Throughput = float64(s.flitsEjected) / (n * float64(measured))
		res.OfferedLoad = float64(s.flitsInjected) / (n * float64(measured))
	}
	res.Saturated = runErr == nil && s.genMeasured > 0 && float64(s.doneMeasured) < 0.95*float64(s.genMeasured)
	if s.hopPackets > 0 {
		res.AvgHops = float64(s.totalHops) / float64(s.hopPackets)
	}
	return *res, runErr
}

func percentile(xs []int64, p float64) float64 {
	// Partial selection via simple sort copy; stats are small.
	cp := append([]int64(nil), xs...)
	// insertion-free: use sort from stdlib
	sortInt64s(cp)
	idx := int(p * float64(len(cp)-1))
	return float64(cp[idx])
}

func sortInt64s(xs []int64) {
	// Shell sort: avoids pulling in sort for a hot-free path.
	n := len(xs)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			tmp := xs[i]
			j := i
			for ; j >= gap && xs[j-gap] > tmp; j -= gap {
				xs[j] = xs[j-gap]
			}
			xs[j] = tmp
		}
	}
}

// stepGenerate invokes the traffic source and enqueues new packets on source
// queues. Generation stops at the end of the measurement window so the drain
// phase empties the network; a non-zero InFlight after Run therefore
// indicates a deadlock or livelock.
func (s *Sim) stepGenerate() {
	if s.now >= s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		return
	}
	measuring := s.now >= s.cfg.WarmupCycles
	s.cfg.Traffic.Generate(s.now, s.rng, func(src, dst, flits, class int) {
		s.enqueuePacket(src, dst, flits, class, measuring)
	})
}

func (s *Sim) enqueuePacket(src, dst, flits, class int, tracked bool) {
	if flits <= 0 {
		flits = s.cfg.PacketFlits
	}
	srcR := s.net.NodeRouter(src)
	dstR := s.net.NodeRouter(dst)
	var path []int
	var vcs []int
	if s.cfg.Adaptive != nil {
		path, vcs = s.cfg.Adaptive.Choose(s, s.rng, srcR, dstR)
	} else {
		path, vcs = s.cfg.Routing.Route(srcR, dstR)
	}
	p := &packet{
		id:      s.nextPktID,
		src:     src,
		dst:     dst,
		flits:   flits,
		class:   class,
		genTime: s.now,
		tracked: tracked,
	}
	s.nextPktID++
	p.path = make([]int32, len(path))
	for i, r := range path {
		p.path[i] = int32(r)
	}
	p.vcs = make([]uint8, len(vcs))
	for i, v := range vcs {
		p.vcs[i] = uint8(v)
	}
	if tracked {
		s.genMeasured++
	}
	s.nics[src].srcQ = append(s.nics[src].srcQ, p)
}

// stepCredits applies due credit returns.
func (s *Sim) stepCredits() {
	out := s.credits[:0]
	for _, ev := range s.credits {
		if ev.at <= s.now {
			s.routers[ev.router].credits[ev.port][ev.vc]++
		} else {
			out = append(out, ev)
		}
	}
	s.credits = out
}

// stepLinks delivers arrived flits into input buffers (or CB staging), one
// VC lane at a time (ElastiStore-style independent per-VC handshakes).
func (s *Sim) stepLinks() {
	for li := range s.links {
		l := &s.links[li]
		for vc := range l.inflight {
			lane := l.inflight[vc]
			for len(lane) > 0 && lane[0].arrive <= s.now {
				f := lane[0].f
				in := &s.routers[l.to].in[l.toPort][vc]
				if s.cfg.Scheme != EdgeBuffers && in.q.len() >= in.cap {
					break // elastic backpressure: flit waits in the pipeline
				}
				in.q.push(f)
				lane = lane[1:]
				l.perVCInFly[vc]--
			}
			if len(lane) == 0 {
				lane = nil
			}
			l.inflight[vc] = lane
		}
	}
}

// stepInject moves flits from source queues into NIC injection buffers.
func (s *Sim) stepInject() {
	for v := range s.nics {
		nc := &s.nics[v]
		for len(nc.srcQ) > 0 {
			p := nc.srcQ[0]
			// Move remaining flits of the head packet while space lasts;
			// track progress via a per-packet counter stored in class-free
			// space: use idx of next flit = p.flitsMoved.
			moved := false
			for p.flitsMoved < p.flits && nc.injQ.len() < nc.injCap {
				s.flitCountInjected(p)
				nc.injQ.push(flit{pkt: p, idx: int32(p.flitsMoved), hop: 0})
				p.flitsMoved++
				moved = true
			}
			if p.flitsMoved == p.flits {
				nc.srcQ = nc.srcQ[1:]
				if len(nc.srcQ) == 0 {
					nc.srcQ = nil
				}
				continue
			}
			if !moved {
				break
			}
		}
	}
}

func (s *Sim) flitCountInjected(p *packet) {
	if s.now >= s.cfg.WarmupCycles && s.now < s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		s.flitsInjected++
	}
	s.inFlightFlits++
}

// eject consumes a flit at its destination.
func (s *Sim) eject(f flit) {
	p := f.pkt
	s.inFlightFlits--
	s.lastEject = s.now
	if s.now >= s.cfg.WarmupCycles && s.now < s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		s.flitsEjected++
	}
	if f.tail() {
		if p.tracked {
			s.doneMeasured++
			s.lat = append(s.lat, s.now-p.genTime)
			s.totalHops += int64(len(p.path) - 1)
			s.hopPackets++
		}
		s.cfg.Traffic.OnDelivered(s.now, p.src, p.dst, p.flits, p.class, func(src, dst, flits, class int) {
			s.enqueuePacket(src, dst, flits, class, false)
		})
	}
}
