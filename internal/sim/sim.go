// Package sim is a cycle-accurate flit-level network-on-chip simulator, the
// reproduction's stand-in for the paper's in-house simulator (§5.1). It
// models virtual-channel wormhole routers with credit-based flow control and
// multi-cycle links, plus the paper's microarchitectural extensions:
// central-buffer routers with a 2-cycle bypass and 4-cycle buffered path
// (§4.1), ElastiStore-style elastic links (link pipeline registers as
// storage, §4.2), and SMART links that traverse H grid hops per cycle
// (§3.2.2). Packets are source-routed with per-hop VC assignments supplied
// by internal/routing, which guarantees deadlock freedom (§4.3).
//
// The engine is an active-set design: instead of scanning every link,
// router and NIC each cycle, dirty lists track the entities with pending
// work, timing wheels deliver credit returns and delayed ejections, static
// routes come pre-compiled from a routing.RouteTable whose interned paths
// packets borrow rather than copy, and packet/buffer freelists make the
// steady-state cycle loop allocation-free. All of this is behaviour-
// preserving: results are byte-identical to the original full-scan engine
// (pinned by the golden-metrics fixture in testdata/golden_results.json).
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/routing"
	"repro/internal/topo"
)

// EngineVersion identifies the current simulator-core generation for
// result-store keys. Bump it whenever an engine change alters the metrics a
// given (spec, seed) produces, so content-addressed result stores
// (slimnoc/store) never serve results computed by an incompatible engine.
// Generation 3 is the active-set zero-allocation core with compiled route
// tables; its outputs are pinned against generation 2 by the golden fixture
// in testdata/golden_results.json.
const EngineVersion = "sim-v3"

// BufferScheme selects the router/link storage organisation (§5.1).
type BufferScheme int

// Buffering strategies evaluated in Fig. 11.
const (
	// EdgeBuffers: per-VC multi-flit input buffers, credit flow control.
	EdgeBuffers BufferScheme = iota
	// CentralBuffer: 1-flit input staging per VC plus a shared central
	// buffer; elastic links provide in-flight storage.
	CentralBuffer
	// ElasticLinks: no input buffers beyond a 1-flit staging latch per VC;
	// the link pipeline registers hold in-flight flits.
	ElasticLinks
)

// maxVCs bounds Config.VCs: VC indices are packed into uint8 per-hop
// assignments and historically into 6-bit central-buffer queue keys, so a
// larger count would silently collide. Validated by New.
const maxVCs = 63

// Config describes one simulation.
type Config struct {
	Net *topo.Network
	// Routing produces static source routes. Optional when Table is set.
	Routing routing.PathBuilder
	// Table optionally supplies the compiled form of the static routes;
	// when nil (and no Adaptive policy is set) New compiles one from
	// Routing. A table built with routing.Compile is immutable, so one
	// table may back any number of concurrent simulations — the campaign
	// engine shares one per (network, routing, VCs) combination.
	Table *routing.RouteTable
	VCs   int

	Scheme BufferScheme
	// EdgeBufCap returns the per-VC input-buffer capacity in flits for a
	// link of the given Manhattan length (EdgeBuffers only). The paper's
	// EB-Small/EB-Large use constants 5/15; EB-Var sizes each buffer for
	// 100% utilisation of its wire.
	EdgeBufCap func(dist int) int
	// CBCap is the central-buffer capacity in flits (CentralBuffer only).
	CBCap int

	// H is the number of grid hops a flit traverses per link cycle: 1
	// without SMART, ~9 with SMART at 45 nm (§5.1).
	H int

	PacketFlits int   // flits per packet for synthetic traffic (paper: 6)
	InjQueueCap int   // NIC injection queue capacity in flits (paper: 20)
	Seed        int64 // RNG seed (injection processes, adaptive choices)

	// LatSampleCap is the initial capacity of the latency sample buffer, a
	// hint bounding reallocation churn while the buffer grows toward the
	// run's tracked-packet count (default 4096).
	LatSampleCap int

	// Traffic supplies injections; see Source.
	Traffic Source

	// Adaptive optionally overrides per-packet path selection (UGAL etc.).
	Adaptive AdaptivePolicy

	WarmupCycles  int64
	MeasureCycles int64
	DrainCycles   int64
}

// Source generates traffic. The contract, which both open-loop (Bernoulli,
// bursty, modulated) and closed-loop (request-reply, trace) workloads build
// on:
//
//   - Generate is called exactly once per cycle during the warmup and
//     measurement phases (never during drain) and emits packets via the
//     callback; class is an opaque tag the engine carries to OnDelivered
//     unchanged. Packets emitted from Generate during measurement are
//     latency-tracked.
//   - OnDelivered is invoked when a packet's tail flit is fully ejected at
//     its destination — in every phase, drain included — so sources observe
//     ejections: closed-loop sources return window credit here, and may emit
//     follow-on packets (replies) via the callback. Reply packets are never
//     latency-tracked, but their flits count toward the accepted
//     (Result.Throughput) and offered (Result.OfferedLoad) rates like any
//     other traffic, which is what makes self-throttling visible in the
//     accepted-vs-offered gap.
//   - Sources must be deterministic functions of the supplied RNG stream
//     (fixed seed => identical injection sequence) and must not allocate
//     once warm: the steady-state cycle loop is zero-allocation end to end,
//     sources included (pinned by TestSteadyStateZeroAllocsWorkloads).
//
// Both emit callbacks are preallocated per Sim and safe to call any number
// of times, including zero.
type Source interface {
	Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int))
	// OnDelivered is invoked when a packet is fully ejected; sources may
	// emit replies (e.g. read responses in trace-driven mode, or the
	// data-carrying replies of the request-reply closed loop).
	OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int))
}

// AdaptivePolicy chooses a packet's route given live network state.
type AdaptivePolicy interface {
	// Choose returns the router path and per-hop VCs for a packet from
	// srcRouter to dstRouter. The simulator copies both slices before the
	// next Choose call, so implementations may return reused scratch
	// buffers.
	Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) (path []int, vcs []int)
}

// Defaults match the paper's evaluation setup (§5.1).
func (c *Config) setDefaults() {
	if c.VCs == 0 {
		c.VCs = 2
	}
	if c.H == 0 {
		c.H = 1
	}
	if c.PacketFlits == 0 {
		c.PacketFlits = 6
	}
	if c.InjQueueCap == 0 {
		c.InjQueueCap = 20
	}
	if c.EdgeBufCap == nil {
		c.EdgeBufCap = func(int) int { return 5 }
	}
	if c.CBCap == 0 {
		c.CBCap = 20
	}
	if c.LatSampleCap == 0 {
		c.LatSampleCap = 4096
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 5000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 20000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 20000
	}
}

// EdgeBufVar returns the EB-Var sizing function: the minimal per-VC buffer
// for 100% utilisation of a wire of the given length (δij/|VC| from §3.2.2).
func EdgeBufVar(h, vcs int) func(dist int) int {
	if h < 1 {
		h = 1
	}
	return func(dist int) int {
		if dist < 1 {
			dist = 1
		}
		return 2*((dist+h-1)/h) + 3
	}
}

// packet is one in-flight packet. Packets are recycled through a freelist
// once their tail flit ejects, so every field is (re)initialised on
// allocation.
type packet struct {
	id       int64
	src, dst int // nodes
	// path/vcs either borrow a RouteTable's interned storage (static
	// routing) or view the packet's own pathBuf/vcsBuf (adaptive routing);
	// they are read-only either way.
	path  []int32
	vcs   []uint8
	flits int
	class int

	genTime int64
	tracked bool
	// flitsMoved counts flits transferred from the source queue into the
	// NIC injection buffer.
	flitsMoved int
	// cbState records the central-buffer router's bypass-vs-buffered
	// decision per hop (§4.1): 0 undecided, 1 bypass, 2 buffered. Indexed
	// by hop because head and tail flits of one packet can occupy
	// different routers simultaneously.
	cbState []uint8
	// pathBuf/vcsBuf are the packet-owned route storage for dynamically
	// (adaptively) routed packets; retained across freelist recycles.
	pathBuf []int32
	vcsBuf  []uint8
}

// flit references its packet and position.
type flit struct {
	pkt *packet
	idx int32 // 0 = head; pkt.flits-1 = tail
	hop int32 // hop index: the link path[hop] -> path[hop+1] it travels next
}

//sim:hot
func (f flit) head() bool { return f.idx == 0 }

//sim:hot
func (f flit) tail() bool { return int(f.idx) == f.pkt.flits-1 }

// linkFlit is a flit in flight on a wire.
type linkFlit struct {
	f      flit
	arrive int64
}

// link is a directed wire between routers. In elastic modes the pipeline
// registers themselves store flits (per-VC, ElastiStore-style independent
// handshakes), so in-flight flits are kept per VC lane.
type link struct {
	from, to   int // routers
	toPort     int // input port index at the destination router
	latency    int64
	lanes      []ring[linkFlit] // per VC
	pending    int              // flits across all lanes (active-set signal)
	perVCInFly []int            // flits in flight per VC
	occupancy  int              // flits on the wire plus downstream (UGAL signal)
}

// creditEvent returns a credit to (router, port, vc); its due cycle is the
// timing-wheel bucket it is scheduled into.
type creditEvent struct {
	router   int32
	port, vc int32
}

// inputVC is one input buffer (port, vc) at a router.
type inputVC struct {
	q   ring[flit]
	cap int
}

// cbPacket is a packet resident in (or streaming through) a central buffer.
// Recycled through a freelist when its tail flit drains.
type cbPacket struct {
	pkt      *packet
	outPort  int
	outVC    int
	stored   ring[flit] // flits currently in the CB
	expected int        // flits still to arrive into the CB
}

// routerState holds all per-router simulation state.
type routerState struct {
	id    int
	kp    int // network ports
	ports int // kp + ejection ports handled separately
	// in[port][vc]; port 0..kp-1 are network inputs (from Adj order).
	in [][]inputVC
	// outOwner[port][vc]: packet id owning the output VC, or -1.
	outOwner [][]int64
	// credits[port][vc] for EdgeBuffers (slots free at downstream input).
	credits [][]int
	// outLink[port]: index into Sim.links for each network output.
	outLink []int
	// inLink[port]: link arriving at this input; revPort[port]: this
	// router's position in the upstream router's adjacency (credit target).
	inLink  []int
	revPort []int
	// CBR state: cbq[port*VCs+vc] is the FIFO of CB-resident packets bound
	// for that output (flat slice; the historical map keyed port*64+vc is
	// gone, but the 6-bit VC bound it implied is still validated by New).
	cbFree int
	cbq    []ring[*cbPacket]
	// work counts flits resident at this router — input buffers, central
	// buffer, and attached NIC injection queues. The router stays in the
	// active set while work > 0.
	work int
	// outUsed/inUsed are per-cycle switch-allocation scratch, cleared at
	// the top of stepRouter.
	outUsed, inUsed []bool
}

// nic is one node's network interface.
type nic struct {
	node   int
	srcQ   ring[*packet] // unbounded source queue (open-loop measurement)
	injQ   ring[flit]    // bounded injection buffer (flits)
	injCap int
}

// Sim is a runnable simulation instance.
type Sim struct {
	cfg     Config
	net     *topo.Network
	rng     *rand.Rand
	now     int64
	routers []routerState
	links   []link
	// portAt[r] maps adjacency position -> input port at peer.
	portAt [][]int
	nics   []nic
	table  *routing.RouteTable // compiled static routes (nil when adaptive)
	minTab *routing.RouteTable // memoized minimal candidates for adaptive policies
	paths  *routing.Paths

	// Active sets: the only entities visited each cycle.
	activeRouters activeSet
	activeLinks   activeSet
	activeNICs    activeSet

	// Timing wheels replacing the per-cycle credit and ejection scans.
	creditWheel *wheel[creditEvent]
	ejectWheel  *wheel[flit]

	ejUsed    []bool  // per-node ejection port budget, reset each cycle
	ejTouched []int32 // ejUsed slots set this cycle (sparse reset)

	// Freelists.
	pktPool []*packet
	cbPool  []*cbPacket

	// Persistent emit callbacks so the hot loop creates no closures.
	genEmit   func(src, dst, flits, class int)
	replyEmit func(src, dst, flits, class int)

	nextPktID int64

	// Stats.
	Result        Result
	lat           []int64
	genMeasured   int64 // tracked packets generated
	doneMeasured  int64 // tracked packets delivered
	flitsEjected  int64 // during measurement window
	flitsInjected int64
	inFlightFlits int64
	totalHops     int64
	hopPackets    int64
	// CBR path statistics: flits forwarded on the 2-cycle bypass vs the
	// 4-cycle buffered path (§4.1).
	bypassFlits   int64
	bufferedFlits int64
	// forwardedFlits counts every flit forwarded out of an input stage at
	// an intermediate router (conservation invariant: for CentralBuffer it
	// equals bypassFlits+bufferedFlits).
	forwardedFlits int64
	lastEject      int64 // cycle of the most recent ejection (deadlock watchdog)

	eng engineCounters
}

// engineCounters accumulates EngineStats.
type engineCounters struct {
	cycles     int64
	pktAllocs  int64
	pktReuses  int64
	routerSum  int64
	routerPeak int
	linkSum    int64
	linkPeak   int
	nicSum     int64
	nicPeak    int
}

// EngineStats reports engine-internal telemetry: freelist behaviour (a
// steady-state run reuses packets instead of allocating), active-set
// occupancy (how much of the topology each cycle actually touches), and
// timing-wheel depth. All values are deterministic for a fixed seed.
type EngineStats struct {
	Cycles int64 `json:"cycles"`
	// PacketAllocs counts freelist misses (new packet allocations);
	// PacketReuses counts recycled packets.
	PacketAllocs int64 `json:"packet_allocs"`
	PacketReuses int64 `json:"packet_reuses"`
	// Active-set occupancy, sampled at the end of every cycle.
	AvgActiveRouters  float64 `json:"avg_active_routers"`
	PeakActiveRouters int     `json:"peak_active_routers"`
	AvgActiveLinks    float64 `json:"avg_active_links"`
	PeakActiveLinks   int     `json:"peak_active_links"`
	AvgActiveNICs     float64 `json:"avg_active_nics"`
	PeakActiveNICs    int     `json:"peak_active_nics"`
	// Timing-wheel depth peaks (pending events).
	PeakCreditEvents int `json:"peak_credit_events"`
	PeakEjectEvents  int `json:"peak_eject_events"`
}

// EngineStats returns the engine telemetry accumulated so far.
func (s *Sim) EngineStats() EngineStats {
	st := EngineStats{
		Cycles:            s.eng.cycles,
		PacketAllocs:      s.eng.pktAllocs,
		PacketReuses:      s.eng.pktReuses,
		PeakActiveRouters: s.eng.routerPeak,
		PeakActiveLinks:   s.eng.linkPeak,
		PeakActiveNICs:    s.eng.nicPeak,
	}
	if s.creditWheel != nil {
		st.PeakCreditEvents = s.creditWheel.peak
	}
	if s.ejectWheel != nil {
		st.PeakEjectEvents = s.ejectWheel.peak
	}
	if s.eng.cycles > 0 {
		c := float64(s.eng.cycles)
		st.AvgActiveRouters = float64(s.eng.routerSum) / c
		st.AvgActiveLinks = float64(s.eng.linkSum) / c
		st.AvgActiveNICs = float64(s.eng.nicSum) / c
	}
	return st
}

// Result summarises one run. Saturation is observable two ways: the
// Saturated flag (tracked packets left undelivered), and the accepted-vs-
// offered gap — Throughput counts the flits the network actually ejected
// per node-cycle while OfferedLoad counts the flits sources injected, so
// Throughput plateauing below OfferedLoad is the saturation signature the
// slimnoc SaturationSearch campaign mode keys on alongside mean latency.
type Result struct {
	AvgLatency  float64 // cycles, tracked packets
	P99Latency  float64
	Throughput  float64 // accepted flits/node/cycle during measurement
	OfferedLoad float64 // generated flits/node/cycle during measurement
	Delivered   int64
	Generated   int64
	Saturated   bool // <95% of tracked packets delivered by the end
	AvgHops     float64
	Cycles      int64
	// DeadlockSuspected is set when flits remained in flight with no
	// ejection progress through the second half of the drain phase — the
	// watchdog for routing/flow-control bugs (a correctly configured
	// network never triggers it).
	DeadlockSuspected bool
}

// New builds a simulation from the config.
func New(cfg Config) (*Sim, error) {
	cfg.setDefaults()
	if cfg.Net == nil || cfg.Traffic == nil {
		return nil, fmt.Errorf("sim: Net and Traffic are required")
	}
	if cfg.Routing == nil && cfg.Table == nil && cfg.Adaptive == nil {
		return nil, fmt.Errorf("sim: one of Routing, Table or Adaptive is required")
	}
	if cfg.Net.NodeMap != nil {
		return nil, fmt.Errorf("sim: indirect networks (node maps) are not simulated")
	}
	if cfg.VCs < 1 || cfg.VCs > maxVCs {
		// The per-hop VC assignment is a uint8 and central-buffer queue
		// keys historically packed the VC into 6 bits; beyond 63 VCs keys
		// would silently collide.
		return nil, fmt.Errorf("sim: VCs = %d out of range [1, %d]", cfg.VCs, maxVCs)
	}
	s := &Sim{
		cfg: cfg,
		net: cfg.Net,
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	nr := s.net.Nr
	s.routers = make([]routerState, nr)
	s.portAt = make([][]int, nr)
	// Build links and router state.
	for r := 0; r < nr; r++ {
		adj := s.net.Adj[r]
		kp := len(adj)
		rs := &s.routers[r]
		rs.id = r
		rs.kp = kp
		rs.in = make([][]inputVC, kp)
		rs.outOwner = make([][]int64, kp)
		rs.credits = make([][]int, kp)
		rs.outLink = make([]int, kp)
		rs.inLink = make([]int, kp)
		rs.revPort = make([]int, kp)
		rs.cbFree = cfg.CBCap
		rs.outUsed = make([]bool, kp)
		rs.inUsed = make([]bool, kp)
		if cfg.Scheme == CentralBuffer {
			rs.cbq = make([]ring[*cbPacket], kp*cfg.VCs)
		}
		s.portAt[r] = make([]int, kp)
	}
	maxLat := int64(1)
	for r := 0; r < nr; r++ {
		adj := s.net.Adj[r]
		for pi, nb := range adj {
			// Input port pi at r receives from nb; find r's position in
			// nb's adjacency to wire the reverse direction.
			dist := 1
			if s.net.Coords != nil {
				dist = topo.ManhattanDist(s.net.Coords[r], s.net.Coords[nb])
				if dist < 1 {
					dist = 1
				}
			}
			lat := int64((dist + cfg.H - 1) / cfg.H)
			if lat < 1 {
				lat = 1
			}
			if lat > maxLat {
				maxLat = lat
			}
			l := link{
				from: nb, to: r, toPort: pi, latency: lat,
				perVCInFly: make([]int, cfg.VCs),
				lanes:      make([]ring[linkFlit], cfg.VCs),
			}
			s.links = append(s.links, l)
			lid := len(s.links) - 1
			// Record at the sender.
			sender := &s.routers[nb]
			pos := portIndex(s.net.Adj[nb], r)
			sender.outLink[pos] = lid
			rs0 := &s.routers[r]
			rs0.inLink[pi] = lid
			rs0.revPort[pi] = pos
			// Input buffer capacity.
			capFlits := 1
			if cfg.Scheme == EdgeBuffers {
				capFlits = cfg.EdgeBufCap(dist)
				if capFlits < 1 {
					capFlits = 1
				}
			}
			rs := &s.routers[r]
			rs.in[pi] = make([]inputVC, cfg.VCs)
			for v := range rs.in[pi] {
				rs.in[pi][v] = inputVC{cap: capFlits}
			}
		}
	}
	// Init owners and credits now that capacities are known.
	for r := 0; r < nr; r++ {
		rs := &s.routers[r]
		for pi := range rs.outOwner {
			rs.outOwner[pi] = make([]int64, cfg.VCs)
			rs.credits[pi] = make([]int, cfg.VCs)
			for v := 0; v < cfg.VCs; v++ {
				rs.outOwner[pi][v] = -1
				l := s.links[rs.outLink[pi]]
				rs.credits[pi][v] = s.routers[l.to].in[l.toPort][v].cap
			}
		}
	}
	// NICs.
	s.nics = make([]nic, s.net.N())
	for v := range s.nics {
		s.nics[v] = nic{node: v, injCap: cfg.InjQueueCap}
	}
	// Compiled static routes: adaptive policies route per packet, everyone
	// else reads the table (supplied and shared, or compiled here).
	if cfg.Adaptive == nil {
		if cfg.Table != nil {
			// A mismatched table would route over links this network does
			// not have (or VCs the buffers do not). Dimensions are the
			// cheap invariant we can check.
			if cfg.Table.Nr() != nr || cfg.Table.NumVCs() != cfg.VCs {
				return nil, fmt.Errorf("sim: route table compiled for %d routers / %d VCs, network has %d routers / %d VCs",
					cfg.Table.Nr(), cfg.Table.NumVCs(), nr, cfg.VCs)
			}
			s.table = cfg.Table
		} else {
			tab, err := routing.Compile(nr, cfg.Routing)
			if err != nil {
				return nil, err
			}
			s.table = tab
		}
	}
	// Engine machinery.
	s.activeRouters = newActiveSet(nr)
	s.activeLinks = newActiveSet(len(s.links))
	s.activeNICs = newActiveSet(s.net.N())
	s.creditWheel = newWheel[creditEvent](maxLat + 1)
	s.ejectWheel = newWheel[flit](routerDelayDirect + 1)
	s.ejUsed = make([]bool, s.net.N())
	s.lat = make([]int64, 0, cfg.LatSampleCap)
	s.genEmit = func(src, dst, flits, class int) {
		s.enqueuePacket(src, dst, flits, class, s.now >= s.cfg.WarmupCycles)
	}
	s.replyEmit = func(src, dst, flits, class int) {
		s.enqueuePacket(src, dst, flits, class, false)
	}
	return s, nil
}

func portIndex(adj []int, target int) int {
	for i, v := range adj {
		if v == target {
			return i
		}
	}
	panic("sim: adjacency not symmetric")
}

// InFlight returns the number of flits currently inside the network,
// injection queues, or links — zero after a fully drained run. Exposed for
// conservation checks.
func (s *Sim) InFlight() int64 { return s.inFlightFlits }

// CBPathStats returns the number of flits that took the central-buffer
// router's bypass path versus its buffered path (meaningful only for
// Scheme == CentralBuffer).
func (s *Sim) CBPathStats() (bypass, buffered int64) {
	return s.bypassFlits, s.bufferedFlits
}

// ForwardedFlits returns the number of flits forwarded out of an input
// stage at an intermediate router (injections and ejections excluded). For
// the central-buffer scheme this always equals bypass+buffered — the
// conservation invariant pinned by TestFlitConservation.
func (s *Sim) ForwardedFlits() int64 { return s.forwardedFlits }

// Paths lazily builds all-pairs shortest paths (used by adaptive policies).
func (s *Sim) Paths() *routing.Paths {
	if s.paths == nil {
		s.paths = routing.NewMinimal(s.net)
	}
	return s.paths
}

// MinRoutes returns a deterministically memoized route table of the
// network's BFS-minimal paths (lowest-index tie-break, identical to
// Paths().MinPath). Adaptive policies borrow their candidate paths from it
// instead of rebuilding slices per packet. Single-goroutine, like Sim.
func (s *Sim) MinRoutes() *routing.RouteTable {
	if s.minTab == nil {
		s.minTab = routing.NewMemoTable(s.net.Nr,
			&routing.MinimalRouting{P: s.Paths(), VCs: s.cfg.VCs})
	}
	return s.minTab
}

// LinkOccupancy returns the current flit occupancy of the directed link from
// router a toward router b (UGAL congestion signal), or 0 if absent.
func (s *Sim) LinkOccupancy(a, b int) int {
	pos, ok := s.portTowardOK(a, b)
	if !ok {
		return 0
	}
	return s.links[s.routers[a].outLink[pos]].occupancy
}

// PathOccupancy sums link occupancy along a router path (UGAL-G signal).
func (s *Sim) PathOccupancy(path []int) int {
	total := 0
	for i := 1; i < len(path); i++ {
		total += s.LinkOccupancy(path[i-1], path[i])
	}
	return total
}

// Progress is the periodic telemetry snapshot emitted during a run.
type Progress struct {
	Cycle       int64
	TotalCycles int64
	Generated   int64 // tracked packets generated so far
	Delivered   int64 // tracked packets delivered so far
	InFlight    int64 // flits currently in the network
}

// Run executes the configured warmup + measurement + drain and returns the
// result.
func (s *Sim) Run() Result {
	res, _ := s.RunContext(context.Background(), 0, nil)
	return res
}

// RunContext is Run with cooperative cancellation and progress streaming.
// The context is polled every `every` cycles (default 1024); onProgress,
// when non-nil, is invoked on the same cadence. On cancellation the
// simulation stops at the next poll point and returns the statistics
// accumulated so far together with an error wrapping ctx.Err(), so callers
// can distinguish a partial result from a completed one.
func (s *Sim) RunContext(ctx context.Context, every int64, onProgress func(Progress)) (Result, error) {
	cfg := &s.cfg
	total := cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles
	if every <= 0 {
		every = 1024
	}
	var runErr error
	for s.now = 0; s.now < total; s.now++ {
		if s.now%every == 0 {
			if ctx != nil && ctx.Err() != nil {
				runErr = fmt.Errorf("sim: run cancelled at cycle %d of %d: %w", s.now, total, ctx.Err())
				break
			}
			if onProgress != nil {
				onProgress(Progress{
					Cycle:       s.now,
					TotalCycles: total,
					Generated:   s.genMeasured,
					Delivered:   s.doneMeasured,
					InFlight:    s.inFlightFlits,
				})
			}
		}
		s.step()
	}
	stop := s.now
	// Account for ejections still completing their final router traversal.
	s.now = stop + routerDelayDirect
	s.flushAllEjections(stop)
	s.now = stop
	res := &s.Result
	res.Cycles = stop
	res.DeadlockSuspected = runErr == nil && s.inFlightFlits > 0 && s.lastEject < total-s.cfg.DrainCycles/2
	res.Generated = s.genMeasured
	res.Delivered = s.doneMeasured
	if len(s.lat) > 0 {
		var sum int64
		for _, l := range s.lat {
			sum += l
		}
		res.AvgLatency = float64(sum) / float64(len(s.lat))
		res.P99Latency = percentile(s.lat, 0.99)
	}
	// A cancelled run normalises rates over the measurement cycles that
	// actually elapsed, and never reports saturation: undelivered packets
	// then mean the run was cut short, not that the network saturated.
	measured := stop - cfg.WarmupCycles
	if measured > cfg.MeasureCycles {
		measured = cfg.MeasureCycles
	}
	if measured > 0 {
		n := float64(s.net.N())
		res.Throughput = float64(s.flitsEjected) / (n * float64(measured))
		res.OfferedLoad = float64(s.flitsInjected) / (n * float64(measured))
	}
	res.Saturated = runErr == nil && s.genMeasured > 0 && float64(s.doneMeasured) < 0.95*float64(s.genMeasured)
	if s.hopPackets > 0 {
		res.AvgHops = float64(s.totalHops) / float64(s.hopPackets)
	}
	return *res, runErr
}

// step advances the simulation by one cycle. The phase order matches the
// original full-scan engine exactly; only the iteration strategy changed.
//
//sim:hot
func (s *Sim) step() {
	s.stepGenerate()
	s.stepCredits()
	s.flushEjections()
	s.stepLinks()
	s.stepRouters()
	s.stepInject()
	// Occupancy telemetry, sampled at end of cycle.
	s.eng.cycles++
	s.eng.routerSum += int64(s.activeRouters.size())
	s.eng.linkSum += int64(s.activeLinks.size())
	s.eng.nicSum += int64(s.activeNICs.size())
	if n := s.activeRouters.size(); n > s.eng.routerPeak {
		s.eng.routerPeak = n
	}
	if n := s.activeLinks.size(); n > s.eng.linkPeak {
		s.eng.linkPeak = n
	}
	if n := s.activeNICs.size(); n > s.eng.nicPeak {
		s.eng.nicPeak = n
	}
}

// percentile reports the p-quantile of xs by nearest-rank on the sorted
// samples. It sorts xs in place: callers pass the run's latency buffer,
// which is not consulted again afterwards.
func percentile(xs []int64, p float64) float64 {
	slices.Sort(xs)
	idx := int(p * float64(len(xs)-1))
	return float64(xs[idx])
}

// stepGenerate invokes the traffic source and enqueues new packets on source
// queues. Generation stops at the end of the measurement window so the drain
// phase empties the network; a non-zero InFlight after Run therefore
// indicates a deadlock or livelock.
//
//sim:hot
func (s *Sim) stepGenerate() {
	if s.now >= s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		return
	}
	s.cfg.Traffic.Generate(s.now, s.rng, s.genEmit)
}

// allocPacket takes a packet from the freelist (or allocates one) and
// assigns its ID.
//
//sim:hot
func (s *Sim) allocPacket() *packet {
	var p *packet
	if n := len(s.pktPool); n > 0 {
		p = s.pktPool[n-1]
		s.pktPool[n-1] = nil
		s.pktPool = s.pktPool[:n-1]
		s.eng.pktReuses++
	} else {
		//detlint:allow hotalloc freelist miss only; steady state recycles via freePacket (pinned by TestSteadyStateZeroAllocs)
		p = &packet{}
		s.eng.pktAllocs++
	}
	p.id = s.nextPktID
	s.nextPktID++
	p.flitsMoved = 0
	return p
}

// freePacket recycles a fully ejected packet. Borrowed route views are
// dropped; the packet-owned buffers keep their capacity for reuse.
//
//sim:hot
func (s *Sim) freePacket(p *packet) {
	p.path, p.vcs = nil, nil
	s.pktPool = append(s.pktPool, p)
}

//sim:hot
func (s *Sim) enqueuePacket(src, dst, flits, class int, tracked bool) {
	if flits <= 0 {
		flits = s.cfg.PacketFlits
	}
	srcR := s.net.NodeRouter(src)
	dstR := s.net.NodeRouter(dst)
	p := s.allocPacket()
	p.src, p.dst = src, dst
	p.flits, p.class = flits, class
	p.genTime, p.tracked = s.now, tracked
	if s.cfg.Adaptive != nil {
		path, vcs := s.cfg.Adaptive.Choose(s, s.rng, srcR, dstR)
		p.pathBuf = p.pathBuf[:0]
		for _, r := range path {
			p.pathBuf = append(p.pathBuf, int32(r))
		}
		p.path = p.pathBuf
		p.vcsBuf = p.vcsBuf[:0]
		for _, v := range vcs {
			p.vcsBuf = append(p.vcsBuf, uint8(v))
		}
		p.vcs = p.vcsBuf
	} else {
		p.path, p.vcs = s.table.Route(srcR, dstR)
	}
	if s.cfg.Scheme == CentralBuffer {
		// Reset the per-hop bypass decisions, reusing capacity.
		if cap(p.cbState) < len(p.path) {
			//detlint:allow hotalloc capacity growth only; recycled packets reuse cbState backing at steady state
			p.cbState = make([]uint8, len(p.path))
		} else {
			p.cbState = p.cbState[:len(p.path)]
			clear(p.cbState)
		}
	}
	if tracked {
		s.genMeasured++
	}
	s.nics[src].srcQ.push(p)
	s.activeNICs.add(src)
}

// stepCredits applies the credit returns due this cycle.
//
//sim:hot
func (s *Sim) stepCredits() {
	evs := s.creditWheel.take(s.now)
	for _, ev := range evs {
		s.routers[ev.router].credits[ev.port][ev.vc]++
	}
}

// stepLinks delivers arrived flits into input buffers (or CB staging), one
// VC lane at a time (ElastiStore-style independent per-VC handshakes). Only
// links carrying flits are visited.
//
//sim:hot
func (s *Sim) stepLinks() {
	s.activeLinks.forEachSorted(func(li int) bool {
		l := &s.links[li]
		for vc := range l.lanes {
			lane := &l.lanes[vc]
			for lane.len() > 0 {
				lf := lane.front()
				if lf.arrive > s.now {
					break
				}
				in := &s.routers[l.to].in[l.toPort][vc]
				if s.cfg.Scheme != EdgeBuffers && in.q.len() >= in.cap {
					break // elastic backpressure: flit waits in the pipeline
				}
				in.q.push(lf.f)
				lane.pop()
				l.pending--
				l.perVCInFly[vc]--
				s.routerGainsFlit(l.to)
			}
		}
		return l.pending > 0
	})
}

// routerGainsFlit accounts a flit arriving at router r and wakes it.
//
//sim:hot
func (s *Sim) routerGainsFlit(r int) {
	s.routers[r].work++
	s.activeRouters.add(r)
}

// stepInject moves flits from source queues into NIC injection buffers.
// Only NICs with queued packets are visited.
//
//sim:hot
func (s *Sim) stepInject() {
	s.activeNICs.forEachSorted(func(v int) bool {
		nc := &s.nics[v]
		for nc.srcQ.len() > 0 {
			p := nc.srcQ.front()
			// Move remaining flits of the head packet while space lasts.
			moved := false
			for p.flitsMoved < p.flits && nc.injQ.len() < nc.injCap {
				s.flitCountInjected(p)
				nc.injQ.push(flit{pkt: p, idx: int32(p.flitsMoved), hop: 0})
				p.flitsMoved++
				moved = true
				s.routerGainsFlit(s.net.NodeRouter(v))
			}
			if p.flitsMoved == p.flits {
				nc.srcQ.pop()
				continue
			}
			if !moved {
				break
			}
		}
		return nc.srcQ.len() > 0
	})
}

//sim:hot
func (s *Sim) flitCountInjected(p *packet) {
	if s.now >= s.cfg.WarmupCycles && s.now < s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		s.flitsInjected++
	}
	s.inFlightFlits++
}

// eject consumes a flit at its destination.
//
//sim:hot
func (s *Sim) eject(f flit) {
	p := f.pkt
	s.inFlightFlits--
	s.lastEject = s.now
	if s.now >= s.cfg.WarmupCycles && s.now < s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		s.flitsEjected++
	}
	if f.tail() {
		if p.tracked {
			s.doneMeasured++
			s.lat = append(s.lat, s.now-p.genTime)
			s.totalHops += int64(len(p.path) - 1)
			s.hopPackets++
		}
		s.cfg.Traffic.OnDelivered(s.now, p.src, p.dst, p.flits, p.class, s.replyEmit)
		s.freePacket(p)
	}
}
