// Package sim is a cycle-accurate flit-level network-on-chip simulator, the
// reproduction's stand-in for the paper's in-house simulator (§5.1). It
// models virtual-channel wormhole routers with credit-based flow control and
// multi-cycle links, plus the paper's microarchitectural extensions:
// central-buffer routers with a 2-cycle bypass and 4-cycle buffered path
// (§4.1), ElastiStore-style elastic links (link pipeline registers as
// storage, §4.2), and SMART links that traverse H grid hops per cycle
// (§3.2.2). Packets are source-routed with per-hop VC assignments supplied
// by internal/routing, which guarantees deadlock freedom (§4.3).
//
// The engine is an active-set design: instead of scanning every link,
// router and NIC each cycle, dirty lists track the entities with pending
// work, timing wheels deliver credit returns and delayed ejections, static
// routes come pre-compiled from a routing.RouteTable whose interned paths
// packets borrow rather than copy, and packet/buffer freelists make the
// steady-state cycle loop allocation-free. All of this is behaviour-
// preserving: results are byte-identical to the original full-scan engine
// (pinned by the golden-metrics fixture in testdata/golden_results.json).
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/routing"
	"repro/internal/topo"
)

// EngineVersion identifies the current simulator-core generation for
// result-store keys. Bump it whenever an engine change alters the metrics a
// given (spec, seed) produces, so content-addressed result stores
// (slimnoc/store) never serve results computed by an incompatible engine.
// Generation 3 is the active-set zero-allocation core with compiled route
// tables; its outputs are pinned against generation 2 by the golden fixture
// in testdata/golden_results.json.
const EngineVersion = "sim-v3"

// BufferScheme selects the router/link storage organisation (§5.1).
type BufferScheme int

// Buffering strategies evaluated in Fig. 11.
const (
	// EdgeBuffers: per-VC multi-flit input buffers, credit flow control.
	EdgeBuffers BufferScheme = iota
	// CentralBuffer: 1-flit input staging per VC plus a shared central
	// buffer; elastic links provide in-flight storage.
	CentralBuffer
	// ElasticLinks: no input buffers beyond a 1-flit staging latch per VC;
	// the link pipeline registers hold in-flight flits.
	ElasticLinks
)

// maxVCs bounds Config.VCs: VC indices are packed into uint8 per-hop
// assignments and historically into 6-bit central-buffer queue keys, so a
// larger count would silently collide. Validated by New.
const maxVCs = 63

// maxPacketFlits bounds per-packet flit counts: flit.idx/flit.hop are uint16
// so rings and link lanes move 16-byte elements. Validated by enqueuePacket
// (synthetic traffic uses single-digit counts; the bound exists for exotic
// trace generators).
const maxPacketFlits = 1<<16 - 1

// Config describes one simulation.
type Config struct {
	Net *topo.Network
	// Routing produces static source routes. Optional when Table is set.
	Routing routing.PathBuilder
	// Table optionally supplies the compiled form of the static routes;
	// when nil (and no Adaptive policy is set) New compiles one from
	// Routing. A table built with routing.Compile is immutable, so one
	// table may back any number of concurrent simulations — the campaign
	// engine shares one per (network, routing, VCs) combination.
	Table *routing.RouteTable
	VCs   int

	Scheme BufferScheme
	// EdgeBufCap returns the per-VC input-buffer capacity in flits for a
	// link of the given Manhattan length (EdgeBuffers only). The paper's
	// EB-Small/EB-Large use constants 5/15; EB-Var sizes each buffer for
	// 100% utilisation of its wire.
	EdgeBufCap func(dist int) int
	// CBCap is the central-buffer capacity in flits (CentralBuffer only).
	CBCap int

	// H is the number of grid hops a flit traverses per link cycle: 1
	// without SMART, ~9 with SMART at 45 nm (§5.1).
	H int

	PacketFlits int   // flits per packet for synthetic traffic (paper: 6)
	InjQueueCap int   // NIC injection queue capacity in flits (paper: 20)
	Seed        int64 // RNG seed (injection processes, adaptive choices)

	// LatSampleCap is the initial capacity of the latency sample buffer, a
	// hint bounding reallocation churn while the buffer grows toward the
	// run's tracked-packet count (default 4096).
	LatSampleCap int

	// Traffic supplies injections; see Source.
	Traffic Source

	// Adaptive optionally overrides per-packet path selection (UGAL etc.).
	Adaptive AdaptivePolicy

	// EngineJobs is the number of spatial domains the per-cycle link and
	// router phases are stepped across, each on its own goroutine with a
	// per-cycle barrier. 0 or 1 runs the classic serial loop; n > 1 is
	// capped at the router count. Results are byte-identical at every
	// value: domains are contiguous router-index ranges, cross-domain
	// effects are staged per domain and merged in ascending domain order,
	// which reproduces the serial engine's ascending-router-index order
	// exactly (see docs/DETERMINISM.md). Because of that identity the knob
	// is engine tuning, not simulation semantics — it is deliberately NOT
	// part of slimnoc's RunSpec or PointKey.
	EngineJobs int

	// CycleStep forces classic cycle-by-cycle stepping, disabling the event
	// calendar's dead-cycle skipping. The calendar is exact-equivalent —
	// results including EngineStats are byte-identical either way (pinned
	// by the differential harness in diff_test.go and the golden_idle
	// fixture) — so like EngineJobs this is engine tuning, not simulation
	// semantics, and is deliberately NOT part of slimnoc's RunSpec or
	// PointKey. The flag exists for differential testing and for measuring
	// the calendar's win.
	CycleStep bool

	// MemBudgetBytes caps the engine's estimated resident footprint (SoA
	// router state, link lanes, NICs, and the compiled route table). When
	// nonzero, New refuses with a descriptive error before performing the
	// heavy allocations if the estimate exceeds the budget — the guard that
	// lets scale-* sweeps declare "this 100k-endpoint instance needs ~8 GiB"
	// instead of OOM-killing the host. 0 means no cap. Like EngineJobs and
	// CycleStep this never changes what a feasible run computes, so it is
	// NOT part of slimnoc's RunSpec or PointKey.
	MemBudgetBytes int64

	WarmupCycles  int64
	MeasureCycles int64
	DrainCycles   int64
}

// Source generates traffic. The contract, which both open-loop (Bernoulli,
// bursty, modulated) and closed-loop (request-reply, trace) workloads build
// on:
//
//   - Generate is called exactly once per cycle during the warmup and
//     measurement phases (never during drain) and emits packets via the
//     callback; class is an opaque tag the engine carries to OnDelivered
//     unchanged. Packets emitted from Generate during measurement are
//     latency-tracked.
//   - OnDelivered is invoked when a packet's tail flit is fully ejected at
//     its destination — in every phase, drain included — so sources observe
//     ejections: closed-loop sources return window credit here, and may emit
//     follow-on packets (replies) via the callback. Reply packets are never
//     latency-tracked, but their flits count toward the accepted
//     (Result.Throughput) and offered (Result.OfferedLoad) rates like any
//     other traffic, which is what makes self-throttling visible in the
//     accepted-vs-offered gap.
//   - Sources must be deterministic functions of the supplied RNG stream
//     (fixed seed => identical injection sequence) and must not allocate
//     once warm: the steady-state cycle loop is zero-allocation end to end,
//     sources included (pinned by TestSteadyStateZeroAllocsWorkloads).
//
// A source may additionally implement NextFirer to let the event calendar
// skip its dead cycles; sources that draw RNG every cycle must not (see
// NextFirer for the exact contract).
//
// Both emit callbacks are preallocated per Sim and safe to call any number
// of times, including zero.
type Source interface {
	Generate(t int64, rng *rand.Rand, emit func(src, dst, flits, class int))
	// OnDelivered is invoked when a packet is fully ejected; sources may
	// emit replies (e.g. read responses in trace-driven mode, or the
	// data-carrying replies of the request-reply closed loop).
	OnDelivered(t int64, src, dst, flits, class int, emit func(src, dst, flits, class int))
}

// NextFirer is the optional Source extension consulted by the event
// calendar (see calendar.go). NextFire(t) returns the earliest cycle > t at
// which the source's Generate call can be anything but a no-op; returning
// math.MaxInt64 means "never again". The contract is strict because the
// calendar uses the hint to NOT call Generate for the skipped cycles:
// for every cycle u in (t, NextFire(t)), Generate(u, ...) must emit nothing
// AND draw zero values from the RNG — otherwise skipping would fork the RNG
// stream and break byte-identical equivalence with cycle-stepping. Sources
// that draw RNG every cycle (Bernoulli, OnOff, modulated processes) must
// simply not implement the interface; their dead time is recovered by the
// calendar's drain-phase and post-generation skipping instead.
type NextFirer interface {
	NextFire(t int64) int64
}

// AdaptivePolicy chooses a packet's route given live network state.
type AdaptivePolicy interface {
	// Choose returns the router path and per-hop VCs for a packet from
	// srcRouter to dstRouter. The simulator copies both slices before the
	// next Choose call, so implementations may return reused scratch
	// buffers.
	Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) (path []int, vcs []int)
}

// Defaults match the paper's evaluation setup (§5.1).
func (c *Config) setDefaults() {
	if c.VCs == 0 {
		c.VCs = 2
	}
	if c.H == 0 {
		c.H = 1
	}
	if c.PacketFlits == 0 {
		c.PacketFlits = 6
	}
	if c.InjQueueCap == 0 {
		c.InjQueueCap = 20
	}
	if c.EdgeBufCap == nil {
		c.EdgeBufCap = func(int) int { return 5 }
	}
	if c.CBCap == 0 {
		c.CBCap = 20
	}
	if c.LatSampleCap == 0 {
		c.LatSampleCap = 4096
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 5000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 20000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 20000
	}
}

// EdgeBufVar returns the EB-Var sizing function: the minimal per-VC buffer
// for 100% utilisation of a wire of the given length (δij/|VC| from §3.2.2).
func EdgeBufVar(h, vcs int) func(dist int) int {
	if h < 1 {
		h = 1
	}
	return func(dist int) int {
		if dist < 1 {
			dist = 1
		}
		return 2*((dist+h-1)/h) + 3
	}
}

// packet is one in-flight packet. Packets are recycled through a freelist
// once their tail flit ejects, so every field is (re)initialised on
// allocation.
type packet struct {
	id       int64
	src, dst int // nodes
	// path/vcs/ports either borrow a RouteTable's interned storage (static
	// routing) or view the packet's own pathBuf/vcsBuf/portsBuf (adaptive
	// routing, or tables without compiled ports); they are read-only either
	// way. ports[hop] is the output-port index at path[hop] toward
	// path[hop+1], resolved once at enqueue so switch allocation never
	// searches the adjacency.
	path  []int32
	vcs   []uint8
	ports []uint8
	// next is the per-hop next-hop word sequence (routing.NextWord encoding,
	// NextEject-terminated, len(path) entries): either a RouteTable's interned
	// nextw view or the packet-owned nextBuf. Flits copy next[hop] at
	// injection and on every send, so the arbitration loop never touches the
	// packet's route arrays.
	next  []uint32
	flits int
	class int

	genTime int64
	tracked bool
	// flitsMoved counts flits transferred from the source queue into the
	// NIC injection buffer.
	flitsMoved int
	// cbState records the central-buffer router's bypass-vs-buffered
	// decision per hop (§4.1): 0 undecided, 1 bypass, 2 buffered. Indexed
	// by hop because head and tail flits of one packet can occupy
	// different routers simultaneously.
	cbState []uint8
	// pathBuf/vcsBuf/portsBuf/nextBuf are the packet-owned route storage for
	// dynamically (adaptively) routed packets; retained across freelist
	// recycles.
	pathBuf  []int32
	vcsBuf   []uint8
	portsBuf []uint8
	nextBuf  []uint32
}

// flit references its packet and position. next carries the precomputed
// next-hop word (routing.NextWord: output port in bits 16..23, port*vcs+vc
// slot offset in bits 0..15, or nextEject at the final hop) so switch
// allocation never touches the packet's route arrays: it is copied from
// pkt.next once per hop — at injection and on every sendFlit — and the
// arbitration fast path arbitrates on the word alone.
// The struct is deliberately 16 bytes (idx/hop are uint16, bounded by New's
// maxPacketFlits and the 255-router-radix path-length cap): flits are copied
// on every ring push/pop along their life — source queue, injection queue,
// link lane, input buffer, ejection wheel — so their width is hot-loop
// memory bandwidth.
type flit struct {
	pkt  *packet
	idx  uint16 // 0 = head; pkt.flits-1 = tail
	hop  uint16 // hop index: the link path[hop] -> path[hop+1] it travels next
	next uint32
}

// nextEject marks a flit whose current hop is the last: its router visit is
// an ejection, not a traversal. nextNone is the Sim.inNext idle sentinel: the
// input VC holds no flit. Valid encodings never collide with either (ports
// are capped at 255 and VCs at 63, so a real word is at most 0x00fe3efe).
const (
	nextEject = routing.NextEject
	nextNone  = routing.NextEject - 1
)

//sim:hot
func (f flit) head() bool { return f.idx == 0 }

//sim:hot
func (f flit) tail() bool { return int(f.idx) == f.pkt.flits-1 }

// linkFlit is a flit in flight on a wire.
type linkFlit struct {
	f      flit
	arrive int64
}

// link is a directed wire between routers. In elastic modes the pipeline
// registers themselves store flits (per-VC, ElastiStore-style independent
// handshakes), so in-flight flits are kept per VC lane.
type link struct {
	from, to int // routers
	toPort   int // input port index at the destination router
	latency  int64
	lanes    []ring[linkFlit] // per VC
	pending  int              // flits across all lanes (active-set signal)
	// nextArrive is a lower bound on the earliest cycle the link can deliver
	// anything: the minimum front-flit arrival over its lanes, or now+1 when
	// a front is blocked by elastic backpressure. The link phase consults it
	// to skip the per-lane peeks on links whose flits are all still in
	// flight; the sender refreshes it on push, the receiver after each drain.
	nextArrive int64
	// sendVB is the sender-side per-VC base index into Sim.space: the link
	// occupies space[sendVB+vc] slots, returned as its lanes drain (elastic
	// schemes; EdgeBuffers returns space through the credit wheel instead).
	sendVB    int32
	occupancy int // flits on the wire plus downstream (UGAL signal)
}

// creditEvent returns a credit to (router, port, vc); its due cycle is the
// timing-wheel bucket it is scheduled into.
type creditEvent struct {
	router   int32
	port, vc int32
}

// cbPacket is a packet resident in (or streaming through) a central buffer.
// Recycled through a freelist when its tail flit drains.
type cbPacket struct {
	pkt      *packet
	outPort  int
	outVC    int
	stored   ring[flit] // flits currently in the CB
	expected int        // flits still to arrive into the CB
}

// nic is one node's network interface.
type nic struct {
	node   int
	srcQ   ring[*packet] // unbounded source queue (open-loop measurement)
	injQ   ring[flit]    // bounded injection buffer (flits)
	injCap int
}

// Sim is a runnable simulation instance.
//
// Router state lives in a struct-of-arrays layout: instead of an array of
// per-router structs of slices, every field is one flat slice over the whole
// network, indexed [r*stride+port] for per-port state and
// [(r*stride+port)*vcs+vc] for per-VC state (stride = the network's maximum
// router radix). The saturated sweep over all routers then walks contiguous
// memory instead of chasing per-router pointers.
type Sim struct {
	cfg    Config
	net    *topo.Network
	rng    *rand.Rand
	now    int64
	links  []link
	nics   []nic
	table  *routing.RouteTable // compiled static routes (nil when adaptive)
	minTab *routing.RouteTable // memoized minimal candidates for adaptive policies
	paths  *routing.Paths

	// SoA router state. Geometry (immutable after New):
	stride  int // max router radix; per-port index stride
	vcs     int // cfg.VCs, hoisted
	scheme  BufferScheme
	kp      []int32 // [r] network port count
	outLink []int32 // [r*stride+pi] link index of output pi
	inLink  []int32 // [r*stride+pi] link arriving at input pi
	revPort []int32 // [r*stride+pi] our port index at the upstream router
	// Mutable per-VC state:
	inQ   []ring[flit] // [(r*stride+pi)*vcs+vc] input buffers
	inCap []int32      // [(r*stride+pi)*vcs+vc] input buffer capacity
	// inLen/inFront mirror each input buffer's length and head flit in two
	// dense arrays so the switch-allocation scan never chases the ring's
	// backing-array pointer: a failed arbitration probe (the common case at
	// saturation) costs two contiguous loads. Maintained by the only two
	// inQ mutators, stepLink (push) and popInput (pop).
	inLen   []int32 // [(r*stride+pi)*vcs+vc] == inQ[...].len()
	inFront []flit  // [(r*stride+pi)*vcs+vc] == inQ[...].front() when inLen > 0
	// inNext collapses "does this input VC hold a flit" and "where does its
	// front flit want to go" into one dense uint32 per (port,vc): the front
	// flit's next-hop word, or nextNone when the buffer is empty. A failed
	// arbitration probe — the overwhelmingly common case at saturation — is
	// then one load plus one or two compares against per-domain scratch,
	// touching no flit, packet or ring memory at all.
	inNext   []uint32 // [(r*stride+pi)*vcs+vc]
	outOwner []int64  // [(r*stride+pi)*vcs+vc] owning packet id, or -1
	// occIn is the per-router input-occupancy bitmask: bit pi*vcs+vc is set
	// iff input slot (pi, vc) holds at least one flit. The arbitration scan
	// rotates it by the cycle's starting port and walks only the set bits
	// (bits.TrailingZeros64), visiting exactly the non-empty slots the
	// port-by-port probe loop would have found, in the same order. nil when a
	// router's slots cannot fit one word (stride*vcs > 64) — the scan then
	// falls back to probing every slot. Maintained by stepLink (set on
	// 0->non-empty) and popInput (clear on ->empty).
	occIn []uint64 // [r], bit pi*vcs+vc; nil when stride*vcs > 64
	// space is the per-(port,vc) output readiness word: how many more flits
	// this output can accept right now. For EdgeBuffers it is the classic
	// credit count (returned through the credit wheel); for elastic schemes
	// it is the link pipeline's free slots (latency stages + 1 slave latch,
	// returned when the receiver pops the lane). outputReady is therefore
	// one compare, with the scheme branch and the pointer chase into the
	// link struct both gone from the arbitration inner loop.
	space  []int32           // [(r*stride+pi)*vcs+vc]
	cbq    []ring[*cbPacket] // [(r*stride+pi)*vcs+vc] CB queues (CentralBuffer only)
	cbFree []int32           // [r] central-buffer slots free
	work   []int32           // [r] flits resident at the router (active-set signal)
	// Per-cycle ejection scratch, epoch-marked: a slot is "used this cycle"
	// iff its entry equals the current cycle number, so there is nothing to
	// clear. (Output-port conflicts use the per-domain outMask bitmask
	// instead — see domain.outMask.)
	ejUsedAt []int64 // [node] per-node ejection port budget

	// Domain decomposition (see domain.go). doms always has >= 1 entry;
	// the serial engine is simply the 1-domain instance of the same code.
	doms     []domain
	domOf    []int32 // [r] owning domain index
	linkDom  []int32 // [link] domain of the link's receiving router
	routerIn []bool  // [r] router is on its domain's active list
	linkIn   []bool  // [link] link is on its receiving domain's active list
	par      *parRunner
	// single marks the 1-domain engine: staged cross-domain effects (credit
	// events, ejections, occupancy decrements, link wakes) are applied
	// directly instead of buffered and replayed — the apply order is then
	// trivially the staged replay order, so results stay byte-identical.
	single bool

	// Active NICs (source queues with packets); injection stays serial.
	activeNICs activeSet
	// injNext mirrors each NIC injection queue's front next-hop word
	// (nextNone when empty), exactly like inNext does for the router input
	// buffers: the per-router injection scan probes one dense uint32 per
	// node and only touches the NIC's ring when a flit can actually move.
	injNext []uint32 // [node]

	// Timing wheels replacing the per-cycle credit and ejection scans.
	creditWheel *wheel[creditEvent]
	ejectWheel  *wheel[flit]

	// Event calendar (calendar.go): when true (the default), the stepping
	// loop consults skipAhead after each cycle and jumps the clock over
	// provably dead cycles. nextFire is the traffic source's NextFirer view,
	// nil when the source cannot declare its dead cycles.
	calendar bool
	nextFire NextFirer

	// Packet freelist (allocated and recycled in serial phases; the
	// central-buffer freelists are per domain).
	pktPool []*packet

	// Persistent emit callbacks so the hot loop creates no closures.
	genEmit   func(src, dst, flits, class int)
	replyEmit func(src, dst, flits, class int)

	nextPktID int64

	// Stats.
	Result        Result
	lat           []int64
	genMeasured   int64 // tracked packets generated
	doneMeasured  int64 // tracked packets delivered
	flitsEjected  int64 // during measurement window
	flitsInjected int64
	inFlightFlits int64
	totalHops     int64
	hopPackets    int64
	// CBR path statistics: flits forwarded on the 2-cycle bypass vs the
	// 4-cycle buffered path (§4.1).
	bypassFlits   int64
	bufferedFlits int64
	// forwardedFlits counts every flit forwarded out of an input stage at
	// an intermediate router (conservation invariant: for CentralBuffer it
	// equals bypassFlits+bufferedFlits).
	forwardedFlits int64
	lastEject      int64 // cycle of the most recent ejection (deadlock watchdog)

	eng engineCounters
}

// engineCounters accumulates EngineStats.
type engineCounters struct {
	cycles        int64
	pktAllocs     int64
	pktReuses     int64
	routerSum     int64
	routerPeak    int
	linkSum       int64
	linkPeak      int
	nicSum        int64
	nicPeak       int
	cyclesSkipped int64
	calendarPeak  int
}

// EngineStats reports engine-internal telemetry: freelist behaviour (a
// steady-state run reuses packets instead of allocating), active-set
// occupancy (how much of the topology each cycle actually touches), and
// timing-wheel depth. All values are deterministic for a fixed seed.
type EngineStats struct {
	Cycles int64 `json:"cycles"`
	// PacketAllocs counts freelist misses (new packet allocations);
	// PacketReuses counts recycled packets.
	PacketAllocs int64 `json:"packet_allocs"`
	PacketReuses int64 `json:"packet_reuses"`
	// Active-set occupancy, sampled at the end of every cycle.
	AvgActiveRouters  float64 `json:"avg_active_routers"`
	PeakActiveRouters int     `json:"peak_active_routers"`
	AvgActiveLinks    float64 `json:"avg_active_links"`
	PeakActiveLinks   int     `json:"peak_active_links"`
	AvgActiveNICs     float64 `json:"avg_active_nics"`
	PeakActiveNICs    int     `json:"peak_active_nics"`
	// Timing-wheel depth peaks (pending events).
	PeakCreditEvents int `json:"peak_credit_events"`
	PeakEjectEvents  int `json:"peak_eject_events"`
	// CyclesSkipped counts the dead cycles the event calendar jumped over
	// (a subset of Cycles, which counts simulated time either way); it is
	// zero under Config.CycleStep and zero at saturation, where the active
	// sets never empty. CalendarPeak is the largest total event backlog
	// (credit + ejection wheel entries plus link-resident flits) observed at
	// a skip decision. These two fields are the only EngineStats that
	// legitimately differ between calendar and cycle-stepped runs of the
	// same spec.
	CyclesSkipped int64 `json:"cycles_skipped"`
	CalendarPeak  int   `json:"calendar_peak"`
}

// EngineStats returns the engine telemetry accumulated so far.
func (s *Sim) EngineStats() EngineStats {
	st := EngineStats{
		Cycles:            s.eng.cycles,
		PacketAllocs:      s.eng.pktAllocs,
		PacketReuses:      s.eng.pktReuses,
		PeakActiveRouters: s.eng.routerPeak,
		PeakActiveLinks:   s.eng.linkPeak,
		PeakActiveNICs:    s.eng.nicPeak,
		CyclesSkipped:     s.eng.cyclesSkipped,
		CalendarPeak:      s.eng.calendarPeak,
	}
	if s.creditWheel != nil {
		st.PeakCreditEvents = s.creditWheel.peak
	}
	if s.ejectWheel != nil {
		st.PeakEjectEvents = s.ejectWheel.peak
	}
	if s.eng.cycles > 0 {
		c := float64(s.eng.cycles)
		st.AvgActiveRouters = float64(s.eng.routerSum) / c
		st.AvgActiveLinks = float64(s.eng.linkSum) / c
		st.AvgActiveNICs = float64(s.eng.nicSum) / c
	}
	return st
}

// Result summarises one run. Saturation is observable two ways: the
// Saturated flag (tracked packets left undelivered), and the accepted-vs-
// offered gap — Throughput counts the flits the network actually ejected
// per node-cycle while OfferedLoad counts the flits sources injected, so
// Throughput plateauing below OfferedLoad is the saturation signature the
// slimnoc SaturationSearch campaign mode keys on alongside mean latency.
type Result struct {
	AvgLatency  float64 // cycles, tracked packets
	P99Latency  float64
	Throughput  float64 // accepted flits/node/cycle during measurement
	OfferedLoad float64 // generated flits/node/cycle during measurement
	Delivered   int64
	Generated   int64
	Saturated   bool // <95% of tracked packets delivered by the end
	AvgHops     float64
	Cycles      int64
	// DeadlockSuspected is set when flits remained in flight with no
	// ejection progress through the second half of the drain phase — the
	// watchdog for routing/flow-control bugs (a correctly configured
	// network never triggers it).
	DeadlockSuspected bool
}

// New builds a simulation from the config.
func New(cfg Config) (*Sim, error) {
	cfg.setDefaults()
	if cfg.Net == nil || cfg.Traffic == nil {
		return nil, fmt.Errorf("sim: Net and Traffic are required")
	}
	if cfg.Routing == nil && cfg.Table == nil && cfg.Adaptive == nil {
		return nil, fmt.Errorf("sim: one of Routing, Table or Adaptive is required")
	}
	if cfg.Net.NodeMap != nil {
		return nil, fmt.Errorf("sim: indirect networks (node maps) are not simulated")
	}
	if cfg.VCs < 1 || cfg.VCs > maxVCs {
		// The per-hop VC assignment is a uint8 and central-buffer queue
		// keys historically packed the VC into 6 bits; beyond 63 VCs keys
		// would silently collide.
		return nil, fmt.Errorf("sim: VCs = %d out of range [1, %d]", cfg.VCs, maxVCs)
	}
	s := &Sim{
		cfg:    cfg,
		net:    cfg.Net,
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		vcs:    cfg.VCs,
		scheme: cfg.Scheme,
	}
	nr := s.net.Nr
	// SoA geometry: one flat slice per field, stride = maximum radix.
	s.kp = make([]int32, nr)
	for r := 0; r < nr; r++ {
		kp := len(s.net.Adj[r])
		s.kp[r] = int32(kp)
		if kp > s.stride {
			s.stride = kp
		}
	}
	if s.stride > 255 {
		// Per-hop output ports are uint8 (packet.ports); no supported
		// topology has a radix anywhere near this.
		return nil, fmt.Errorf("sim: router radix %d exceeds the 255-port limit", s.stride)
	}
	if cfg.MemBudgetBytes > 0 {
		if est := cfg.memEstimate(s.stride); est > cfg.MemBudgetBytes {
			return nil, fmt.Errorf(
				"sim: estimated engine footprint %.1f MiB for %d routers / %d nodes exceeds MemBudgetBytes = %.1f MiB; raise the budget or pick a smaller instance",
				float64(est)/(1<<20), nr, s.net.N(), float64(cfg.MemBudgetBytes)/(1<<20))
		}
	}
	np := nr * s.stride
	nv := np * cfg.VCs
	s.outLink = make([]int32, np)
	s.inLink = make([]int32, np)
	s.revPort = make([]int32, np)
	s.inQ = make([]ring[flit], nv)
	s.inCap = make([]int32, nv)
	s.inLen = make([]int32, nv)
	s.inFront = make([]flit, nv)
	s.inNext = make([]uint32, nv)
	for i := range s.inNext {
		s.inNext[i] = nextNone
	}
	if s.stride*s.vcs <= 64 {
		s.occIn = make([]uint64, nr)
	}
	s.outOwner = make([]int64, nv)
	s.space = make([]int32, nv)
	if cfg.Scheme == CentralBuffer {
		s.cbq = make([]ring[*cbPacket], nv)
	}
	s.cbFree = make([]int32, nr)
	for r := range s.cbFree {
		s.cbFree[r] = int32(cfg.CBCap)
	}
	s.work = make([]int32, nr)
	s.ejUsedAt = make([]int64, s.net.N())
	for i := range s.ejUsedAt {
		s.ejUsedAt[i] = -1
	}
	// Build links and wire them into the flat port arrays.
	maxLat := int64(1)
	for r := 0; r < nr; r++ {
		adj := s.net.Adj[r]
		for pi, nb := range adj {
			// Input port pi at r receives from nb; find r's position in
			// nb's adjacency to wire the reverse direction.
			dist := 1
			if s.net.Coords != nil {
				dist = topo.ManhattanDist(s.net.Coords[r], s.net.Coords[nb])
				if dist < 1 {
					dist = 1
				}
			}
			lat := int64((dist + cfg.H - 1) / cfg.H)
			if lat < 1 {
				lat = 1
			}
			if lat > maxLat {
				maxLat = lat
			}
			l := link{
				from: nb, to: r, toPort: pi, latency: lat,
				lanes: make([]ring[linkFlit], cfg.VCs),
			}
			s.links = append(s.links, l)
			lid := len(s.links) - 1
			pos := portIndex(s.net.Adj[nb], r)
			s.links[lid].sendVB = int32((nb*s.stride + pos) * cfg.VCs)
			s.outLink[nb*s.stride+pos] = int32(lid)
			s.inLink[r*s.stride+pi] = int32(lid)
			s.revPort[r*s.stride+pi] = int32(pos)
			// Input buffer capacity.
			capFlits := 1
			if cfg.Scheme == EdgeBuffers {
				capFlits = cfg.EdgeBufCap(dist)
				if capFlits < 1 {
					capFlits = 1
				}
			}
			vb := (r*s.stride + pi) * cfg.VCs
			for v := 0; v < cfg.VCs; v++ {
				s.inCap[vb+v] = int32(capFlits)
			}
		}
	}
	// Init owners and readiness now that capacities are known: EdgeBuffers
	// outputs start with the peer input buffer's full credit count, elastic
	// outputs with the link pipeline's slot count (latency stages + 1).
	for r := 0; r < nr; r++ {
		for pi := 0; pi < int(s.kp[r]); pi++ {
			vb := (r*s.stride + pi) * cfg.VCs
			l := &s.links[s.outLink[r*s.stride+pi]]
			peer := (l.to*s.stride + l.toPort) * cfg.VCs
			for v := 0; v < cfg.VCs; v++ {
				s.outOwner[vb+v] = -1
				if cfg.Scheme == EdgeBuffers {
					s.space[vb+v] = s.inCap[peer+v]
				} else {
					s.space[vb+v] = int32(l.latency) + 1
				}
			}
		}
	}
	// NICs.
	s.nics = make([]nic, s.net.N())
	s.injNext = make([]uint32, s.net.N())
	for v := range s.nics {
		s.nics[v] = nic{node: v, injCap: cfg.InjQueueCap}
		s.injNext[v] = nextNone
	}
	// Compiled static routes: adaptive policies route per packet, everyone
	// else reads the table (supplied and shared, or compiled here).
	if cfg.Adaptive == nil {
		if cfg.Table != nil {
			// A mismatched table would route over links this network does
			// not have (or VCs the buffers do not). Dimensions are the
			// cheap invariant we can check.
			if cfg.Table.Nr() != nr || cfg.Table.NumVCs() != cfg.VCs {
				return nil, fmt.Errorf("sim: route table compiled for %d routers / %d VCs, network has %d routers / %d VCs",
					cfg.Table.Nr(), cfg.Table.NumVCs(), nr, cfg.VCs)
			}
			s.table = cfg.Table
		} else {
			tab, err := routing.Compile(nr, cfg.Routing)
			if err != nil {
				return nil, err
			}
			// The table is private to this simulation, so ports can be
			// compiled in place. Shared tables get theirs from
			// slimnoc.CompileRouteTable; tables without ports fall back to
			// per-packet resolution at enqueue.
			if err := tab.CompilePorts(s.net.Adj); err != nil {
				return nil, err
			}
			s.table = tab
		}
	}
	// Domain decomposition: contiguous router-index ranges (see domain.go).
	s.buildDomains(normalizeJobs(cfg.EngineJobs, nr))
	// Event calendar: on unless CycleStep forces classic stepping. The
	// source's next-fire hint is optional (see NextFirer).
	s.calendar = !cfg.CycleStep
	if nf, ok := cfg.Traffic.(NextFirer); ok {
		s.nextFire = nf
	}
	// Engine machinery.
	s.activeNICs = newActiveSet(s.net.N())
	s.creditWheel = newWheel[creditEvent](maxLat + 1)
	s.ejectWheel = newWheel[flit](routerDelayDirect + 1)
	s.lat = make([]int64, 0, cfg.LatSampleCap)
	s.genEmit = func(src, dst, flits, class int) {
		s.enqueuePacket(src, dst, flits, class, s.now >= s.cfg.WarmupCycles)
	}
	s.replyEmit = func(src, dst, flits, class int) {
		s.enqueuePacket(src, dst, flits, class, false)
	}
	return s, nil
}

func portIndex(adj []int, target int) int {
	for i, v := range adj {
		if v == target {
			return i
		}
	}
	panic("sim: adjacency not symmetric")
}

// InFlight returns the number of flits currently inside the network,
// injection queues, or links — zero after a fully drained run. Exposed for
// conservation checks.
func (s *Sim) InFlight() int64 { return s.inFlightFlits }

// CBPathStats returns the number of flits that took the central-buffer
// router's bypass path versus its buffered path (meaningful only for
// Scheme == CentralBuffer).
func (s *Sim) CBPathStats() (bypass, buffered int64) {
	return s.bypassFlits, s.bufferedFlits
}

// ForwardedFlits returns the number of flits forwarded out of an input
// stage at an intermediate router (injections and ejections excluded). For
// the central-buffer scheme this always equals bypass+buffered — the
// conservation invariant pinned by TestFlitConservation.
func (s *Sim) ForwardedFlits() int64 { return s.forwardedFlits }

// Paths lazily builds all-pairs shortest paths (used by adaptive policies).
func (s *Sim) Paths() *routing.Paths {
	if s.paths == nil {
		s.paths = routing.NewMinimal(s.net)
	}
	return s.paths
}

// MinRoutes returns a deterministically memoized route table of the
// network's BFS-minimal paths (lowest-index tie-break, identical to
// Paths().MinPath). Adaptive policies borrow their candidate paths from it
// instead of rebuilding slices per packet. Single-goroutine, like Sim.
func (s *Sim) MinRoutes() *routing.RouteTable {
	if s.minTab == nil {
		s.minTab = routing.NewMemoTable(s.net.Nr,
			&routing.MinimalRouting{P: s.Paths(), VCs: s.cfg.VCs})
	}
	return s.minTab
}

// LinkOccupancy returns the current flit occupancy of the directed link from
// router a toward router b (UGAL congestion signal), or 0 if absent.
func (s *Sim) LinkOccupancy(a, b int) int {
	pos, ok := s.portTowardOK(a, b)
	if !ok {
		return 0
	}
	return s.links[s.outLink[a*s.stride+pos]].occupancy
}

// PathOccupancy sums link occupancy along a router path (UGAL-G signal).
func (s *Sim) PathOccupancy(path []int) int {
	total := 0
	for i := 1; i < len(path); i++ {
		total += s.LinkOccupancy(path[i-1], path[i])
	}
	return total
}

// Progress is the periodic telemetry snapshot emitted during a run.
type Progress struct {
	Cycle       int64
	TotalCycles int64
	Generated   int64 // tracked packets generated so far
	Delivered   int64 // tracked packets delivered so far
	InFlight    int64 // flits currently in the network
}

// Run executes the configured warmup + measurement + drain and returns the
// result.
func (s *Sim) Run() Result {
	res, _ := s.RunContext(context.Background(), 0, nil)
	return res
}

// RunContext is Run with cooperative cancellation and progress streaming.
// The context is polled every `every` cycles (default 1024); onProgress,
// when non-nil, is invoked on the same cadence. On cancellation the
// simulation stops at the next poll point and returns the statistics
// accumulated so far together with an error wrapping ctx.Err(), so callers
// can distinguish a partial result from a completed one.
func (s *Sim) RunContext(ctx context.Context, every int64, onProgress func(Progress)) (Result, error) {
	cfg := &s.cfg
	total := cfg.WarmupCycles + cfg.MeasureCycles + cfg.DrainCycles
	if every <= 0 {
		every = 1024
	}
	s.startWorkers()
	defer s.stopWorkers()
	var runErr error
	for s.now = 0; s.now < total; s.now++ {
		if s.now%every == 0 {
			if ctx != nil && ctx.Err() != nil {
				runErr = fmt.Errorf("sim: run cancelled at cycle %d of %d: %w", s.now, total, ctx.Err())
				break
			}
			if onProgress != nil {
				onProgress(Progress{
					Cycle:       s.now,
					TotalCycles: total,
					Generated:   s.genMeasured,
					Delivered:   s.doneMeasured,
					InFlight:    s.inFlightFlits,
				})
			}
		}
		s.step()
		if s.calendar {
			// Jump over provably dead cycles, but never past the next poll
			// boundary: cancellation latency and progress cadence stay
			// exactly what cycle-stepping delivers (see calendar.go).
			limit := (s.now/every + 1) * every
			if limit > total {
				limit = total
			}
			s.skipAhead(limit)
		}
	}
	stop := s.now
	// Account for ejections still completing their final router traversal.
	s.now = stop + routerDelayDirect
	s.flushAllEjections(stop)
	s.now = stop
	res := &s.Result
	res.Cycles = stop
	res.DeadlockSuspected = runErr == nil && s.inFlightFlits > 0 && s.lastEject < total-s.cfg.DrainCycles/2
	res.Generated = s.genMeasured
	res.Delivered = s.doneMeasured
	if len(s.lat) > 0 {
		var sum int64
		for _, l := range s.lat {
			sum += l
		}
		res.AvgLatency = float64(sum) / float64(len(s.lat))
		res.P99Latency = percentile(s.lat, 0.99)
	}
	// A cancelled run normalises rates over the measurement cycles that
	// actually elapsed, and never reports saturation: undelivered packets
	// then mean the run was cut short, not that the network saturated.
	measured := stop - cfg.WarmupCycles
	if measured > cfg.MeasureCycles {
		measured = cfg.MeasureCycles
	}
	if measured > 0 {
		n := float64(s.net.N())
		res.Throughput = float64(s.flitsEjected) / (n * float64(measured))
		res.OfferedLoad = float64(s.flitsInjected) / (n * float64(measured))
	}
	res.Saturated = runErr == nil && s.genMeasured > 0 && float64(s.doneMeasured) < 0.95*float64(s.genMeasured)
	if s.hopPackets > 0 {
		res.AvgHops = float64(s.totalHops) / float64(s.hopPackets)
	}
	return *res, runErr
}

// step advances the simulation by one cycle. The phase order matches the
// original full-scan engine exactly; only the iteration strategy changed.
// The link and router phases run per domain — in parallel when workers are
// live, inline in ascending domain order otherwise — with cross-domain
// effects staged and merged in ascending domain order (see domain.go).
//
//sim:hot
func (s *Sim) step() {
	s.stepGenerate()
	s.stepCredits()
	s.flushEjections()
	if s.par != nil && s.par.started {
		s.parPhase(cmdLinks)
		s.parPhase(cmdRouters)
	} else {
		for di := range s.doms {
			s.stepLinksDomain(&s.doms[di])
		}
		for di := range s.doms {
			s.stepRoutersDomain(&s.doms[di])
		}
	}
	s.mergeDomains()
	s.stepInject()
	// Occupancy telemetry, sampled at end of cycle.
	s.eng.cycles++
	ar, al := 0, 0
	for di := range s.doms {
		ar += len(s.doms[di].routerList)
		al += len(s.doms[di].linkList)
	}
	s.eng.routerSum += int64(ar)
	s.eng.linkSum += int64(al)
	s.eng.nicSum += int64(s.activeNICs.size())
	if ar > s.eng.routerPeak {
		s.eng.routerPeak = ar
	}
	if al > s.eng.linkPeak {
		s.eng.linkPeak = al
	}
	if n := s.activeNICs.size(); n > s.eng.nicPeak {
		s.eng.nicPeak = n
	}
}

// percentile reports the p-quantile of xs by nearest-rank on the sorted
// samples. It sorts xs in place: callers pass the run's latency buffer,
// which is not consulted again afterwards.
func percentile(xs []int64, p float64) float64 {
	slices.Sort(xs)
	idx := int(p * float64(len(xs)-1))
	return float64(xs[idx])
}

// stepGenerate invokes the traffic source and enqueues new packets on source
// queues. Generation stops at the end of the measurement window so the drain
// phase empties the network; a non-zero InFlight after Run therefore
// indicates a deadlock or livelock.
//
//sim:hot
func (s *Sim) stepGenerate() {
	if s.now >= s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		return
	}
	s.cfg.Traffic.Generate(s.now, s.rng, s.genEmit)
}

// allocPacket takes a packet from the freelist (or allocates one) and
// assigns its ID.
//
//sim:hot
func (s *Sim) allocPacket() *packet {
	var p *packet
	if n := len(s.pktPool); n > 0 {
		p = s.pktPool[n-1]
		s.pktPool[n-1] = nil
		s.pktPool = s.pktPool[:n-1]
		s.eng.pktReuses++
	} else {
		//detlint:allow hotalloc freelist miss only; steady state recycles via freePacket (pinned by TestSteadyStateZeroAllocs)
		p = &packet{}
		s.eng.pktAllocs++
	}
	p.id = s.nextPktID
	s.nextPktID++
	p.flitsMoved = 0
	return p
}

// freePacket recycles a fully ejected packet. Borrowed route views are
// dropped; the packet-owned buffers keep their capacity for reuse.
//
//sim:hot
func (s *Sim) freePacket(p *packet) {
	p.path, p.vcs, p.ports, p.next = nil, nil, nil, nil
	s.pktPool = append(s.pktPool, p)
}

//sim:hot
func (s *Sim) enqueuePacket(src, dst, flits, class int, tracked bool) {
	if flits <= 0 {
		flits = s.cfg.PacketFlits
	}
	if flits > maxPacketFlits {
		panic("sim: packet exceeds maxPacketFlits (flit indices are uint16)")
	}
	srcR := s.net.NodeRouter(src)
	dstR := s.net.NodeRouter(dst)
	p := s.allocPacket()
	p.src, p.dst = src, dst
	p.flits, p.class = flits, class
	p.genTime, p.tracked = s.now, tracked
	if s.cfg.Adaptive != nil {
		path, vcs := s.cfg.Adaptive.Choose(s, s.rng, srcR, dstR)
		p.pathBuf = p.pathBuf[:0]
		for _, r := range path {
			p.pathBuf = append(p.pathBuf, int32(r))
		}
		p.path = p.pathBuf
		p.vcsBuf = p.vcsBuf[:0]
		for _, v := range vcs {
			p.vcsBuf = append(p.vcsBuf, uint8(v))
		}
		p.vcs = p.vcsBuf
	} else if s.table.Compact() {
		// Compact (next-hop-only) table: reconstruct the route into the
		// packet-owned buffers. Byte-identical to the dense views (pinned by
		// the routing equivalence tests and the compact golden replay), and
		// allocation-free once the buffers reach their high-water capacity.
		p.pathBuf, p.vcsBuf, p.portsBuf, p.nextBuf = s.table.AppendRoute(
			p.pathBuf[:0], p.vcsBuf[:0], p.portsBuf[:0], p.nextBuf[:0], srcR, dstR)
		p.path, p.vcs, p.ports, p.next = p.pathBuf, p.vcsBuf, p.portsBuf, p.nextBuf
	} else {
		p.path, p.vcs = s.table.Route(srcR, dstR)
		p.ports = s.table.Ports(srcR, dstR)
		p.next = s.table.NextWords(srcR, dstR)
	}
	if p.ports == nil && len(p.path) > 1 {
		// Adaptive route or a shared table without compiled ports: resolve
		// the per-hop output ports once here, out of the switch-allocation
		// hot path.
		p.portsBuf = p.portsBuf[:0]
		for i := 0; i+1 < len(p.path); i++ {
			p.portsBuf = append(p.portsBuf, uint8(s.portToward(int(p.path[i]), int(p.path[i+1]))))
		}
		p.ports = p.portsBuf
	}
	if p.next == nil {
		// No interned next-hop words (adaptive route, or a table without
		// CompilePorts): derive them once here from the resolved ports/VCs.
		p.nextBuf = p.nextBuf[:0]
		for i := 0; i+1 < len(p.path); i++ {
			p.nextBuf = append(p.nextBuf, routing.NextWord(int(p.ports[i]), int(p.vcs[i]), s.vcs))
		}
		p.nextBuf = append(p.nextBuf, nextEject)
		p.next = p.nextBuf
	}
	if s.cfg.Scheme == CentralBuffer {
		// Reset the per-hop bypass decisions, reusing capacity.
		if cap(p.cbState) < len(p.path) {
			//detlint:allow hotalloc capacity growth only; recycled packets reuse cbState backing at steady state
			p.cbState = make([]uint8, len(p.path))
		} else {
			p.cbState = p.cbState[:len(p.path)]
			clear(p.cbState)
		}
	}
	if len(p.path) > maxPacketFlits {
		panic("sim: route exceeds maxPacketFlits hops (flit hop indices are uint16)")
	}
	if tracked {
		s.genMeasured++
	}
	s.nics[src].srcQ.push(p)
	s.activeNICs.add(src)
}

// stepCredits applies the credit returns due this cycle (EdgeBuffers: each
// event restores one unit of output readiness at the upstream router).
//
//sim:hot
func (s *Sim) stepCredits() {
	evs := s.creditWheel.take(s.now)
	for _, ev := range evs {
		s.space[(int(ev.router)*s.stride+int(ev.port))*s.vcs+int(ev.vc)]++
	}
}

// routerGainsFlit accounts a flit arriving at router r and wakes it on its
// owning domain's active list. Callers are either the r-owning domain's
// link phase or the serial injection phase, so the list append is always
// single-writer.
//
//sim:hot
//sim:domain
func (s *Sim) routerGainsFlit(r int) {
	s.work[r]++
	if !s.routerIn[r] {
		s.routerIn[r] = true
		d := &s.doms[s.domOf[r]]
		//detlint:allow hotalloc amortised active-list growth; capacity is retained across cycles
		d.routerList = append(d.routerList, int32(r))
	}
}

// stepInject moves flits from source queues into NIC injection buffers.
// Only NICs with queued packets are visited.
//
//sim:hot
func (s *Sim) stepInject() {
	s.activeNICs.forEachSorted(func(v int) bool {
		nc := &s.nics[v]
		r := s.net.NodeRouter(v)
		for nc.srcQ.len() > 0 {
			p := nc.srcQ.front()
			// Move remaining flits of the head packet while space lasts. The
			// next-hop word is resolved once per packet visit, and only when a
			// flit actually moves (a full injection queue is the common case
			// at saturation).
			moved := false
			nx := uint32(0)
			for p.flitsMoved < p.flits && nc.injQ.len() < nc.injCap {
				if !moved {
					nx = p.next[0]
				}
				s.flitCountInjected(p)
				if nc.injQ.len() == 0 {
					s.injNext[v] = nx
				}
				nc.injQ.push(flit{pkt: p, idx: uint16(p.flitsMoved), hop: 0, next: nx})
				p.flitsMoved++
				moved = true
				s.routerGainsFlit(r)
			}
			if p.flitsMoved == p.flits {
				nc.srcQ.pop()
				continue
			}
			if !moved {
				break
			}
		}
		return nc.srcQ.len() > 0
	})
}

//sim:hot
func (s *Sim) flitCountInjected(p *packet) {
	if s.now >= s.cfg.WarmupCycles && s.now < s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		s.flitsInjected++
	}
	s.inFlightFlits++
}

// eject consumes a flit at its destination.
//
//sim:hot
func (s *Sim) eject(f flit) {
	p := f.pkt
	s.inFlightFlits--
	s.lastEject = s.now
	if s.now >= s.cfg.WarmupCycles && s.now < s.cfg.WarmupCycles+s.cfg.MeasureCycles {
		s.flitsEjected++
	}
	if f.tail() {
		if p.tracked {
			s.doneMeasured++
			s.lat = append(s.lat, s.now-p.genTime)
			s.totalHops += int64(len(p.path) - 1)
			s.hopPackets++
		}
		s.cfg.Traffic.OnDelivered(s.now, p.src, p.dst, p.flits, p.class, s.replyEmit)
		s.freePacket(p)
	}
}
