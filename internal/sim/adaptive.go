// Adaptive routing policies for the §6 study (Fig. 20): UGAL with local and
// global congestion knowledge, plus a minimal-adaptive scheme corresponding
// to FBF's XY-ADAPT.

package sim

import (
	"math/rand"

	"repro/internal/routing"
)

// UGAL implements Universal Globally-Adaptive Load-balanced routing: each
// packet chooses between its minimal path and a Valiant path through a
// random intermediate, weighting path length by queue occupancy. Global
// variants see occupancy along the whole path; local variants only at the
// source router's candidate output (§6).
type UGAL struct {
	// Global selects UGAL-G (whole-path occupancy); otherwise UGAL-L
	// (first-link occupancy only).
	Global bool
	// VCs used for the chosen path's ascending VC assignment.
	VCs int
}

// Choose implements AdaptivePolicy.
func (u *UGAL) Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) ([]int, []int) {
	p := s.Paths()
	minPath := p.MinPath(srcRouter, dstRouter)
	if len(minPath) <= 1 {
		return minPath, nil
	}
	mid := p.RandomIntermediate(rng, srcRouter, dstRouter)
	valPath := p.ValiantPath(srcRouter, mid, dstRouter)
	var costMin, costVal int
	if u.Global {
		costMin = (s.PathOccupancy(minPath) + 1) * (len(minPath) - 1)
		costVal = (s.PathOccupancy(valPath) + 1) * (len(valPath) - 1)
	} else {
		costMin = (s.LinkOccupancy(minPath[0], minPath[1]) + 1) * (len(minPath) - 1)
		costVal = (s.LinkOccupancy(valPath[0], valPath[1]) + 1) * (len(valPath) - 1)
	}
	path := minPath
	if costVal < costMin {
		path = valPath
	}
	return path, routing.AscendingVCs(len(path)-1, u.VCs)
}

// MinAdaptive picks, per packet, the minimal next hop with the least
// occupied first link, then follows the deterministic minimal route. On an
// FBF this selects between the XY and YX quadrature paths, i.e. the paper's
// XY-ADAPT comparison point.
type MinAdaptive struct {
	VCs int
}

// Choose implements AdaptivePolicy.
func (m *MinAdaptive) Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) ([]int, []int) {
	p := s.Paths()
	if srcRouter == dstRouter {
		return []int{srcRouter}, nil
	}
	best, bestOcc := -1, 0
	for _, nh := range p.NextHops(srcRouter, dstRouter) {
		occ := s.LinkOccupancy(srcRouter, nh)
		if best < 0 || occ < bestOcc {
			best, bestOcc = nh, occ
		}
	}
	path := append([]int{srcRouter}, p.MinPath(best, dstRouter)...)
	return path, routing.AscendingVCs(len(path)-1, m.VCs)
}

// StaticMin wraps the configured PathBuilder as an AdaptivePolicy (the MIN
// comparison point in Fig. 20).
type StaticMin struct {
	B routing.PathBuilder
}

// Choose implements AdaptivePolicy.
func (m *StaticMin) Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) ([]int, []int) {
	return m.B.Route(srcRouter, dstRouter)
}
