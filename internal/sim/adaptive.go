// Adaptive routing policies for the §6 study (Fig. 20): UGAL with local and
// global congestion knowledge, plus a minimal-adaptive scheme corresponding
// to FBF's XY-ADAPT.

package sim

import (
	"math/rand"

	"repro/internal/routing"
)

// UGAL implements Universal Globally-Adaptive Load-balanced routing: each
// packet chooses between its minimal path and a Valiant path through a
// random intermediate, weighting path length by queue occupancy. Global
// variants see occupancy along the whole path; local variants only at the
// source router's candidate output (§6).
//
// Candidate paths are borrowed from the simulation's memoized minimal route
// table (Sim.MinRoutes) into reused scratch buffers, so route selection
// allocates nothing once the table is warm. The returned slices are only
// valid until the next Choose call, which the simulator's contract allows;
// a UGAL value must not be shared by concurrently running simulations.
type UGAL struct {
	// Global selects UGAL-G (whole-path occupancy); otherwise UGAL-L
	// (first-link occupancy only).
	Global bool
	// VCs used for the chosen path's ascending VC assignment.
	VCs int

	minPath, valPath, vcsBuf []int
}

// Choose implements AdaptivePolicy.
func (u *UGAL) Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) ([]int, []int) {
	t := s.MinRoutes()
	u.minPath = t.AppendPath(u.minPath[:0], srcRouter, dstRouter)
	if len(u.minPath) <= 1 {
		return u.minPath, nil
	}
	p := s.Paths()
	mid := p.RandomIntermediate(rng, srcRouter, dstRouter)
	// Valiant path src->mid->dst without duplicating mid; degenerate
	// intermediates fall back to the minimal path.
	if mid == srcRouter || mid == dstRouter {
		u.valPath = t.AppendPath(u.valPath[:0], srcRouter, dstRouter)
	} else {
		u.valPath = t.AppendPath(u.valPath[:0], srcRouter, mid)
		u.valPath = t.AppendPathTail(u.valPath, mid, dstRouter)
	}
	var costMin, costVal int
	if u.Global {
		costMin = (s.PathOccupancy(u.minPath) + 1) * (len(u.minPath) - 1)
		costVal = (s.PathOccupancy(u.valPath) + 1) * (len(u.valPath) - 1)
	} else {
		costMin = (s.LinkOccupancy(u.minPath[0], u.minPath[1]) + 1) * (len(u.minPath) - 1)
		costVal = (s.LinkOccupancy(u.valPath[0], u.valPath[1]) + 1) * (len(u.valPath) - 1)
	}
	path := u.minPath
	if costVal < costMin {
		path = u.valPath
	}
	u.vcsBuf = routing.AppendAscendingVCs(u.vcsBuf[:0], len(path)-1, u.VCs)
	return path, u.vcsBuf
}

// MinAdaptive picks, per packet, the minimal next hop with the least
// occupied first link, then follows the deterministic minimal route. On an
// FBF this selects between the XY and YX quadrature paths, i.e. the paper's
// XY-ADAPT comparison point.
type MinAdaptive struct {
	VCs int
}

// Choose implements AdaptivePolicy.
func (m *MinAdaptive) Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) ([]int, []int) {
	p := s.Paths()
	if srcRouter == dstRouter {
		return []int{srcRouter}, nil
	}
	best, bestOcc := -1, 0
	for _, nh := range p.NextHops(srcRouter, dstRouter) {
		occ := s.LinkOccupancy(srcRouter, nh)
		if best < 0 || occ < bestOcc {
			best, bestOcc = nh, occ
		}
	}
	path := append([]int{srcRouter}, p.MinPath(best, dstRouter)...)
	return path, routing.AscendingVCs(len(path)-1, m.VCs)
}

// StaticMin wraps the configured PathBuilder as an AdaptivePolicy (the MIN
// comparison point in Fig. 20).
type StaticMin struct {
	B routing.PathBuilder
}

// Choose implements AdaptivePolicy.
func (m *StaticMin) Choose(s *Sim, rng *rand.Rand, srcRouter, dstRouter int) ([]int, []int) {
	return m.B.Route(srcRouter, dstRouter)
}
