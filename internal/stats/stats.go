// Package stats provides the small statistical utilities shared by the
// experiment harness: means, geometric means, percentiles and fixed-width
// histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the input is empty). The paper uses geometric means for
// its cross-benchmark summaries (§5.4, §6).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percentile returns the p-quantile (0 <= p <= 1) using nearest-rank on a
// sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(p * float64(len(cp)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

// Histogram counts values into fixed-width bins starting at min.
type Histogram struct {
	Min, Width float64
	Counts     []int
	Total      int
}

// NewHistogram creates a histogram with the given origin and bin width.
func NewHistogram(min, width float64, bins int) *Histogram {
	return &Histogram{Min: min, Width: width, Counts: make([]int, bins)}
}

// Add inserts a value, extending the bin range as needed.
func (h *Histogram) Add(x float64) {
	bin := int((x - h.Min) / h.Width)
	if bin < 0 {
		bin = 0
	}
	for bin >= len(h.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[bin]++
	h.Total++
}

// Density returns per-bin probabilities.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// Table is a printable experiment result: a title, a header row, and data
// rows — one per line the paper's table or figure series reports.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowF appends a row, formatting each value: strings pass through,
// float64 as %.4g, ints as %d.
func (t *Table) AddRowF(vals ...interface{}) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case int:
			cells[i] = fmt.Sprintf("%d", x)
		case int64:
			cells[i] = fmt.Sprintf("%d", x)
		case bool:
			cells[i] = fmt.Sprintf("%v", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widthAt(widths, i, len(c)), c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func widthAt(widths []int, i, fallback int) int {
	if i < len(widths) {
		return widths[i]
	}
	return fallback
}

// Markdown renders the table as a GitHub-flavoured Markdown pipe table
// with a bold title line, for the per-figure reports snrepro writes under
// docs/results/. Cells containing pipes are escaped, and ragged rows —
// shorter or longer than the header — are padded out to the widest row so
// every cell renders (no silent truncation, matching CSV).
func (t *Table) Markdown() string {
	ncols := len(t.Header)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "**%s** — %s\n\n", t.ID, t.Title)
	esc := func(c string) string { return strings.ReplaceAll(c, "|", "\\|") }
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	b.WriteString("|")
	for i := 0; i < ncols; i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
