package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %v, want 10", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("non-positive input should return 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("empty input should return 0")
	}
}

// TestGeoMeanQuick: geometric mean lies between min and max.
func TestGeoMeanQuick(t *testing.T) {
	prop := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	for _, x := range []float64{0.5, 1.5, 2.5, 9} {
		h.Add(x)
	}
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if len(h.Counts) < 5 {
		t.Error("histogram should extend for out-of-range values")
	}
	d := h.Density()
	sum := 0.0
	for _, p := range d {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("density sums to %v", sum)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "fig99", Title: "demo", Header: []string{"a", "bbbb"}}
	tb.AddRow("x", "y")
	tb.AddRowF("long-cell", 3.14159)
	s := tb.String()
	if !strings.Contains(s, "fig99") || !strings.Contains(s, "long-cell") {
		t.Errorf("render missing content:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bbbb\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "3.142") {
		t.Errorf("csv missing formatted float: %q", csv)
	}
}

func TestAddRowFTypes(t *testing.T) {
	tb := &Table{Header: []string{"v"}}
	tb.AddRowF(42)
	tb.AddRowF(int64(43))
	tb.AddRowF(true)
	tb.AddRowF(1.5)
	if tb.Rows[0][0] != "42" || tb.Rows[1][0] != "43" || tb.Rows[2][0] != "true" || tb.Rows[3][0] != "1.5" {
		t.Errorf("rows = %v", tb.Rows)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		ID:     "fig-x",
		Title:  "Example",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "with|pipe")
	tab.AddRow("2")           // short row pads to the table width
	tab.AddRow("3", "x", "y") // wide row extends it — nothing is dropped
	got := tab.Markdown()
	want := "**fig-x** — Example\n\n" +
		"| a | b |  |\n" +
		"|---|---|---|\n" +
		"| 1 | with\\|pipe |  |\n" +
		"| 2 |  |  |\n" +
		"| 3 | x | y |\n"
	if got != want {
		t.Errorf("Markdown =\n%q\nwant\n%q", got, want)
	}
}
