// Baseline topologies from §5.1 (Table 4) and §2.2 of the paper.

package topo

import (
	"fmt"
	"math"
)

// CycleTime constants from §5.1: router clock cycle times that account for
// the different crossbar sizes of each topology class.
const (
	CycleTimeSN       = 0.5 // ns, Slim NoC and PFBF
	CycleTimeLowRadix = 0.4 // ns, T2D and CM
	CycleTimeHighFBF  = 0.6 // ns, full-bandwidth FBF
)

// Mesh2D builds an rx × ry 2D mesh with concentration p (a concentrated
// mesh, the paper's CM, when p > 1). Routers are indexed row-major;
// router (x,y) has grid coordinates (x+1, y+1).
func Mesh2D(rx, ry, p int) *Network {
	n := &Network{
		Name:        fmt.Sprintf("cm_%dx%d_p%d", rx, ry, p),
		Nr:          rx * ry,
		P:           p,
		CycleTimeNs: CycleTimeLowRadix,
	}
	es := newEdgeSet(n.Nr)
	id := func(x, y int) int { return y*rx + x }
	n.Coords = make([]Coord, n.Nr)
	for y := 0; y < ry; y++ {
		for x := 0; x < rx; x++ {
			n.Coords[id(x, y)] = Coord{x + 1, y + 1}
			if x+1 < rx {
				es.add(id(x, y), id(x+1, y))
			}
			if y+1 < ry {
				es.add(id(x, y), id(x, y+1))
			}
		}
	}
	n.Adj = es.lists()
	return n
}

// foldedPos maps ring index k in a ring of n to its physical position in the
// standard folded-torus placement, so that every ring neighbour pair is at
// most 2 grid hops apart.
func foldedPos(k, n int) int {
	half := (n + 1) / 2
	if k < half {
		return 2 * k
	}
	return 2*(n-1-k) + 1
}

// Torus2D builds an rx × ry 2D torus (the paper's T2D) with concentration p.
// The placement uses the folded layout, so wrap-around links are at most two
// grid hops long.
func Torus2D(rx, ry, p int) *Network {
	n := &Network{
		Name:        fmt.Sprintf("t2d_%dx%d_p%d", rx, ry, p),
		Nr:          rx * ry,
		P:           p,
		CycleTimeNs: CycleTimeLowRadix,
	}
	es := newEdgeSet(n.Nr)
	id := func(x, y int) int { return y*rx + x }
	n.Coords = make([]Coord, n.Nr)
	for y := 0; y < ry; y++ {
		for x := 0; x < rx; x++ {
			n.Coords[id(x, y)] = Coord{foldedPos(x, rx) + 1, foldedPos(y, ry) + 1}
			es.add(id(x, y), id((x+1)%rx, y))
			es.add(id(x, y), id(x, (y+1)%ry))
		}
	}
	n.Adj = es.lists()
	return n
}

// FBF builds a full-bandwidth flattened butterfly: routers on a cx × cy grid
// where every router connects to all routers in its row and all routers in
// its column (diameter 2).
func FBF(cx, cy, p int) *Network {
	n := &Network{
		Name:        fmt.Sprintf("fbf_%dx%d_p%d", cx, cy, p),
		Nr:          cx * cy,
		P:           p,
		CycleTimeNs: CycleTimeHighFBF,
	}
	es := newEdgeSet(n.Nr)
	id := func(x, y int) int { return y*cx + x }
	n.Coords = make([]Coord, n.Nr)
	for y := 0; y < cy; y++ {
		for x := 0; x < cx; x++ {
			n.Coords[id(x, y)] = Coord{x + 1, y + 1}
			for x2 := x + 1; x2 < cx; x2++ {
				es.add(id(x, y), id(x2, y))
			}
			for y2 := y + 1; y2 < cy; y2++ {
				es.add(id(x, y), id(x, y2))
			}
		}
	}
	n.Adj = es.lists()
	return n
}

// PFBF builds the paper's partitioned flattened butterfly (§5.1, Fig. 9): a
// px × py grid of identical sx × sy FBFs. Adjacent partitions are connected
// by one link per router per partitioned dimension, attached at the
// corresponding local position, which matches SN's radix and bisection
// bandwidth while raising the diameter to 4.
func PFBF(px, py, sx, sy, p int) *Network {
	n := &Network{
		Name:        fmt.Sprintf("pfbf_%dx%d_of_%dx%d_p%d", px, py, sx, sy, p),
		Nr:          px * py * sx * sy,
		P:           p,
		CycleTimeNs: CycleTimeSN,
	}
	es := newEdgeSet(n.Nr)
	// Global coordinates: partition (gx,gy), local (lx,ly).
	id := func(gx, gy, lx, ly int) int {
		return ((gy*px+gx)*sy+ly)*sx + lx
	}
	n.Coords = make([]Coord, n.Nr)
	for gy := 0; gy < py; gy++ {
		for gx := 0; gx < px; gx++ {
			for ly := 0; ly < sy; ly++ {
				for lx := 0; lx < sx; lx++ {
					r := id(gx, gy, lx, ly)
					n.Coords[r] = Coord{gx*sx + lx + 1, gy*sy + ly + 1}
					// Intra-partition FBF links.
					for lx2 := lx + 1; lx2 < sx; lx2++ {
						es.add(r, id(gx, gy, lx2, ly))
					}
					for ly2 := ly + 1; ly2 < sy; ly2++ {
						es.add(r, id(gx, gy, lx, ly2))
					}
					// Inter-partition links: one per dimension to the
					// neighbouring partition, same local position.
					if px > 1 {
						ngx := gx + 1
						if ngx == px {
							ngx = 0
						}
						if ngx != gx {
							es.add(r, id(ngx, gy, lx, ly))
						}
					}
					if py > 1 {
						ngy := gy + 1
						if ngy == py {
							ngy = 0
						}
						if ngy != gy {
							es.add(r, id(gx, ngy, lx, ly))
						}
					}
				}
			}
		}
	}
	n.Adj = es.lists()
	return n
}

// Dragonfly builds a Dragonfly (§2.1, Fig. 2a): g groups of a fully
// connected routers, each router with h global channels; groups form a
// fully connected graph with one link per group pair. g must be at most
// a*h + 1. Groups are placed as near-square blocks on a near-square grid.
func Dragonfly(a, h, g, p int) (*Network, error) {
	if g > a*h+1 {
		return nil, fmt.Errorf("topo: dragonfly needs g <= a*h+1, got a=%d h=%d g=%d", a, h, g)
	}
	n := &Network{
		Name:        fmt.Sprintf("df_a%d_h%d_g%d_p%d", a, h, g, p),
		Nr:          a * g,
		P:           p,
		CycleTimeNs: CycleTimeSN,
	}
	es := newEdgeSet(n.Nr)
	for grp := 0; grp < g; grp++ {
		for r := 0; r < a; r++ {
			// Intra-group: full connectivity.
			for r2 := r + 1; r2 < a; r2++ {
				es.add(grp*a+r, grp*a+r2)
			}
			// Global links: slot s = r*h..r*h+h-1 connects to the group at
			// offset s+1 (consistent because the reverse offset lands in a
			// well-defined slot on the peer side).
			for s := r * h; s < (r+1)*h; s++ {
				peer := (grp + s + 1) % g
				if s+1 <= g-1 && peer != grp {
					es.add(grp*a+r, peer*a+globalRouter(grp, peer, g, h))
				}
			}
		}
	}
	// Placement: groups on a near-square grid of near-square blocks.
	gcols := int(math.Ceil(math.Sqrt(float64(g))))
	bw := int(math.Ceil(math.Sqrt(float64(a))))
	bh := (a + bw - 1) / bw
	n.Coords = make([]Coord, n.Nr)
	for grp := 0; grp < g; grp++ {
		gx, gy := grp%gcols, grp/gcols
		for r := 0; r < a; r++ {
			n.Coords[grp*a+r] = Coord{gx*bw + r%bw + 1, gy*bh + r/bw + 1}
		}
	}
	n.Adj = es.lists()
	return n, nil
}

// globalRouter returns the router index within group "to" that owns the
// global-link slot for the pair (from, to).
func globalRouter(from, to, g, h int) int {
	off := ((from-to-1)%g + g) % g
	return off / h
}

// FoldedClos builds a two-level folded Clos (fat tree): leaves leaf routers
// each with p attached nodes, spines spine routers, and a link between every
// leaf and every spine. Spine routers concentrate no nodes; the network uses
// an explicit node map. This is the hierarchical/indirect baseline of §5.5.
func FoldedClos(leaves, spines, p int) *Network {
	n := &Network{
		Name:        fmt.Sprintf("clos_%dx%d_p%d", leaves, spines, p),
		Nr:          leaves + spines,
		P:           p,
		CycleTimeNs: CycleTimeSN,
	}
	es := newEdgeSet(n.Nr)
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			es.add(l, leaves+s)
		}
	}
	n.Adj = es.lists()
	// Node map: nodes live only on leaves.
	n.NodeMap = make([]int, leaves*p)
	for v := range n.NodeMap {
		n.NodeMap[v] = v / p
	}
	// Placement: leaves in a near-square grid, spines in a center row.
	lcols := int(math.Ceil(math.Sqrt(float64(leaves))))
	n.Coords = make([]Coord, n.Nr)
	for l := 0; l < leaves; l++ {
		n.Coords[l] = Coord{l%lcols + 1, l/lcols + 1}
	}
	lrows := (leaves + lcols - 1) / lcols
	for s := 0; s < spines; s++ {
		n.Coords[leaves+s] = Coord{s%lcols + 1, lrows + 1 + s/lcols}
	}
	return n
}
