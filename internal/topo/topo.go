// Package topo defines the router-graph abstraction shared by every network
// in the reproduction, together with the baseline topologies the paper
// compares against (§5.1, Table 4): 2D torus (T2D), concentrated mesh (CM),
// flattened butterfly (FBF), partitioned flattened butterfly (PFBF),
// Dragonfly (DF), and a folded Clos (§5.5). The Slim NoC topology itself is
// built in internal/core on top of this package.
package topo

import (
	"fmt"
	"sort"
)

// Coord is a router position on the 2D placement grid (1-indexed like the
// paper's placement model in §3.2.1).
type Coord struct {
	X, Y int
}

// ManhattanDist returns the Manhattan distance |x1-x2| + |y1-y2|.
func ManhattanDist(a, b Coord) int {
	return absInt(a.X-b.X) + absInt(a.Y-b.Y)
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Network is a direct network: Nr routers, each concentrating P nodes.
// Nodes are numbered 0..N-1; node v attaches to router v/P. Adjacency lists
// are sorted and symmetric. Coords give the placement used for wire-length
// and buffer-size models; they may be nil for networks analysed only
// abstractly.
type Network struct {
	Name   string
	Nr     int
	P      int
	Adj    [][]int
	Coords []Coord

	// NodeMap optionally maps node -> router for indirect networks whose
	// routers concentrate unequal node counts (e.g. folded Clos, where
	// spines attach none). When nil, node v attaches to router v/P.
	NodeMap []int

	// CycleTimeNs is the router clock cycle time used by the paper to
	// account for crossbar size differences (§5.1): 0.5 ns for SN and
	// PFBF, 0.4 ns for T2D and CM, 0.6 ns for FBF.
	CycleTimeNs float64
}

// N returns the number of attached nodes.
func (n *Network) N() int {
	if n.NodeMap != nil {
		return len(n.NodeMap)
	}
	return n.Nr * n.P
}

// NodeRouter returns the router that node v attaches to.
func (n *Network) NodeRouter(v int) int {
	if n.NodeMap != nil {
		return n.NodeMap[v]
	}
	return v / n.P
}

// RouterNodes returns the node IDs attached to router r.
func (n *Network) RouterNodes(r int) []int {
	if n.NodeMap != nil {
		var out []int
		for v, rr := range n.NodeMap {
			if rr == r {
				out = append(out, v)
			}
		}
		return out
	}
	out := make([]int, n.P)
	for i := range out {
		out[i] = r*n.P + i
	}
	return out
}

// NetworkRadix returns k', the maximum number of router-router channels at
// any router.
func (n *Network) NetworkRadix() int {
	max := 0
	for _, a := range n.Adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// RouterRadix returns k = k' + p.
func (n *Network) RouterRadix() int { return n.NetworkRadix() + n.P }

// MinNetworkRadix returns the minimum router-router degree; for the regular
// networks in the paper it equals NetworkRadix.
func (n *Network) MinNetworkRadix() int {
	if n.Nr == 0 {
		return 0
	}
	min := len(n.Adj[0])
	for _, a := range n.Adj {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// Links returns the number of undirected router-router links.
func (n *Network) Links() int {
	total := 0
	for _, a := range n.Adj {
		total += len(a)
	}
	return total / 2
}

// Connected reports whether routers i and j share a link.
func (n *Network) Connected(i, j int) bool {
	a := n.Adj[i]
	k := sort.SearchInts(a, j)
	return k < len(a) && a[k] == j
}

// Diameter returns the maximum over all router pairs of the shortest-path
// hop count, computed by BFS from every router.
func (n *Network) Diameter() int {
	diam := 0
	dist := make([]int, n.Nr)
	queue := make([]int, 0, n.Nr)
	for s := 0; s < n.Nr; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range n.Adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					if dist[v] > diam {
						diam = dist[v]
					}
					queue = append(queue, v)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1 // disconnected
			}
		}
	}
	return diam
}

// AvgShortestPath returns the mean router-router shortest path length over
// all ordered pairs of distinct routers.
func (n *Network) AvgShortestPath() float64 {
	total, pairs := 0, 0
	dist := make([]int, n.Nr)
	queue := make([]int, 0, n.Nr)
	for s := 0; s < n.Nr; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range n.Adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for v, d := range dist {
			if v != s && d > 0 {
				total += d
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}

// AvgWireLength returns M (Eq. 4): the mean Manhattan distance between
// connected routers, using the network's coordinates.
func (n *Network) AvgWireLength() float64 {
	if n.Coords == nil {
		return 0
	}
	total, links := 0, 0
	for i := 0; i < n.Nr; i++ {
		for _, j := range n.Adj[i] {
			if j > i {
				total += ManhattanDist(n.Coords[i], n.Coords[j])
				links++
			}
		}
	}
	if links == 0 {
		return 0
	}
	return float64(total) / float64(links)
}

// TotalWireLength returns the sum of Manhattan wire lengths over all links,
// in grid hops.
func (n *Network) TotalWireLength() int {
	total := 0
	for i := 0; i < n.Nr; i++ {
		for _, j := range n.Adj[i] {
			if j > i {
				total += ManhattanDist(n.Coords[i], n.Coords[j])
			}
		}
	}
	return total
}

// BisectionLinks counts links crossing a vertical cut through the middle of
// the placement grid — the paper's bisection-bandwidth proxy for comparing
// FBF variants against SN. Networks without coordinates return 0.
func (n *Network) BisectionLinks() int {
	if n.Coords == nil {
		return 0
	}
	maxX := 0
	for _, c := range n.Coords {
		if c.X > maxX {
			maxX = c.X
		}
	}
	cut := maxX / 2
	count := 0
	for i := 0; i < n.Nr; i++ {
		for _, j := range n.Adj[i] {
			if j > i {
				xi, xj := n.Coords[i].X, n.Coords[j].X
				if (xi <= cut) != (xj <= cut) {
					count++
				}
			}
		}
	}
	return count
}

// GridDims returns the extent (maxX, maxY) of the placement grid.
func (n *Network) GridDims() (int, int) {
	mx, my := 0, 0
	for _, c := range n.Coords {
		if c.X > mx {
			mx = c.X
		}
		if c.Y > my {
			my = c.Y
		}
	}
	return mx, my
}

// Validate checks structural invariants: symmetric sorted adjacency, no
// self-loops, no duplicate edges, coordinates (when present) matching Nr.
func (n *Network) Validate() error {
	if len(n.Adj) != n.Nr {
		return fmt.Errorf("topo: %s: adjacency has %d rows, Nr=%d", n.Name, len(n.Adj), n.Nr)
	}
	if n.Coords != nil && len(n.Coords) != n.Nr {
		return fmt.Errorf("topo: %s: %d coords, Nr=%d", n.Name, len(n.Coords), n.Nr)
	}
	for i, a := range n.Adj {
		if !sort.IntsAreSorted(a) {
			return fmt.Errorf("topo: %s: adjacency of router %d not sorted", n.Name, i)
		}
		for k, j := range a {
			if j == i {
				return fmt.Errorf("topo: %s: self-loop at router %d", n.Name, i)
			}
			if j < 0 || j >= n.Nr {
				return fmt.Errorf("topo: %s: router %d links to out-of-range %d", n.Name, i, j)
			}
			if k > 0 && a[k-1] == j {
				return fmt.Errorf("topo: %s: duplicate edge %d-%d", n.Name, i, j)
			}
			if !n.Connected(j, i) {
				return fmt.Errorf("topo: %s: edge %d->%d not symmetric", n.Name, i, j)
			}
		}
	}
	return nil
}

// edgeSet accumulates undirected edges and produces sorted adjacency lists.
type edgeSet struct {
	nr  int
	adj []map[int]bool
}

func newEdgeSet(nr int) *edgeSet {
	e := &edgeSet{nr: nr, adj: make([]map[int]bool, nr)}
	for i := range e.adj {
		e.adj[i] = make(map[int]bool)
	}
	return e
}

func (e *edgeSet) add(i, j int) {
	if i == j {
		return
	}
	e.adj[i][j] = true
	e.adj[j][i] = true
}

func (e *edgeSet) lists() [][]int {
	out := make([][]int, e.nr)
	for i, m := range e.adj {
		l := make([]int, 0, len(m))
		for j := range m {
			l = append(l, j)
		}
		sort.Ints(l)
		out[i] = l
	}
	return out
}
