package topo

import "testing"

func TestRemoveRandomLinksFraction(t *testing.T) {
	n := Torus2D(8, 8, 3) // 128 links
	damaged := n.RemoveRandomLinks(0.25, 1)
	if err := damaged.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 128 - 32
	if got := damaged.Links(); got != want {
		t.Errorf("links after 25%% removal = %d, want %d", got, want)
	}
	// Original untouched.
	if n.Links() != 128 {
		t.Error("RemoveRandomLinks mutated the original")
	}
}

func TestRemoveRandomLinksDeterministic(t *testing.T) {
	n := FBF(8, 8, 3)
	a := n.RemoveRandomLinks(0.1, 42)
	b := n.RemoveRandomLinks(0.1, 42)
	for i := range a.Adj {
		if len(a.Adj[i]) != len(b.Adj[i]) {
			t.Fatal("same seed gave different removals")
		}
		for k := range a.Adj[i] {
			if a.Adj[i][k] != b.Adj[i][k] {
				t.Fatal("same seed gave different removals")
			}
		}
	}
	c := n.RemoveRandomLinks(0.1, 43)
	same := true
	for i := range a.Adj {
		if len(a.Adj[i]) != len(c.Adj[i]) {
			same = false
		}
	}
	if same {
		diff := false
		for i := range a.Adj {
			for k := range a.Adj[i] {
				if k < len(c.Adj[i]) && a.Adj[i][k] != c.Adj[i][k] {
					diff = true
				}
			}
		}
		if !diff {
			t.Error("different seeds gave identical removals")
		}
	}
}

func TestRemoveAllLinks(t *testing.T) {
	n := Mesh2D(3, 3, 1)
	empty := n.RemoveRandomLinks(1.0, 1)
	if empty.Links() != 0 {
		t.Errorf("full removal left %d links", empty.Links())
	}
	if empty.Diameter() != -1 {
		t.Error("empty graph should report disconnected")
	}
	if c := empty.Connectivity(); c != 0 {
		t.Errorf("connectivity of edgeless graph = %v, want 0", c)
	}
}

func TestConnectivityConnected(t *testing.T) {
	n := Torus2D(5, 5, 1)
	if c := n.Connectivity(); c != 1.0 {
		t.Errorf("connected torus connectivity = %v, want 1", c)
	}
}

func TestConnectivityPartial(t *testing.T) {
	// Two K2 components among 4 routers: 2*1*2=4 reachable ordered pairs of
	// 12 total.
	n := &Network{Name: "pairs", Nr: 4, P: 1, Adj: [][]int{{1}, {0}, {3}, {2}}}
	want := 4.0 / 12.0
	if c := n.Connectivity(); c < want-1e-9 || c > want+1e-9 {
		t.Errorf("connectivity = %v, want %v", c, want)
	}
}

func TestFailurePreservesMetadata(t *testing.T) {
	n := FoldedClos(4, 2, 2)
	d := n.RemoveRandomLinks(0.2, 9)
	if d.P != n.P || d.CycleTimeNs != n.CycleTimeNs {
		t.Error("metadata lost")
	}
	if len(d.NodeMap) != len(n.NodeMap) {
		t.Error("node map lost")
	}
	if len(d.Coords) != len(n.Coords) {
		t.Error("coords lost")
	}
}
