// Link-failure injection. The paper attributes high resilience to Slim
// Fly's expander structure (§2.1); this file provides the machinery to
// verify that claim: remove a random fraction of links and re-examine
// connectivity, diameter and path-length inflation.

package topo

import (
	"fmt"
	"math/rand"
)

// RemoveRandomLinks returns a copy of the network with approximately the
// given fraction of undirected router-router links removed, chosen uniformly
// with the given seed. Coordinates, concentration and cycle time are
// preserved; the result may be disconnected (check Diameter() == -1).
func (n *Network) RemoveRandomLinks(fraction float64, seed int64) *Network {
	type edge struct{ a, b int }
	var edges []edge
	for i := 0; i < n.Nr; i++ {
		for _, j := range n.Adj[i] {
			if j > i {
				edges = append(edges, edge{i, j})
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	drop := int(fraction * float64(len(edges)))
	if drop > len(edges) {
		drop = len(edges)
	}
	removed := make(map[[2]int]bool, drop)
	for _, e := range edges[:drop] {
		removed[[2]int{e.a, e.b}] = true
	}
	out := &Network{
		Name:        fmt.Sprintf("%s_fail%.0f%%", n.Name, fraction*100),
		Nr:          n.Nr,
		P:           n.P,
		CycleTimeNs: n.CycleTimeNs,
	}
	if n.Coords != nil {
		out.Coords = append([]Coord(nil), n.Coords...)
	}
	if n.NodeMap != nil {
		out.NodeMap = append([]int(nil), n.NodeMap...)
	}
	out.Adj = make([][]int, n.Nr)
	for i := 0; i < n.Nr; i++ {
		for _, j := range n.Adj[i] {
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			if removed[[2]int{a, b}] {
				continue
			}
			out.Adj[i] = append(out.Adj[i], j)
		}
	}
	return out
}

// Connectivity returns the fraction of ordered router pairs that can still
// reach each other (1.0 for a connected network).
func (n *Network) Connectivity() float64 {
	if n.Nr == 0 {
		return 0
	}
	seen := make([]bool, n.Nr)
	var sizes []int
	for s := 0; s < n.Nr; s++ {
		if seen[s] {
			continue
		}
		// BFS component size.
		size := 0
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			size++
			for _, v := range n.Adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	reachable := 0
	for _, s := range sizes {
		reachable += s * (s - 1)
	}
	total := n.Nr * (n.Nr - 1)
	if total == 0 {
		return 1
	}
	return float64(reachable) / float64(total)
}
