package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func validate(t *testing.T, n *Network) {
	t.Helper()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestManhattanDist(t *testing.T) {
	cases := []struct {
		a, b Coord
		d    int
	}{
		{Coord{1, 1}, Coord{1, 1}, 0},
		{Coord{1, 1}, Coord{4, 1}, 3},
		{Coord{1, 1}, Coord{1, 5}, 4},
		{Coord{2, 3}, Coord{5, 7}, 7},
		{Coord{5, 7}, Coord{2, 3}, 7},
	}
	for _, c := range cases {
		if got := ManhattanDist(c.a, c.b); got != c.d {
			t.Errorf("ManhattanDist(%v,%v) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestManhattanDistSymmetryQuick(t *testing.T) {
	prop := func(x1, y1, x2, y2 int16) bool {
		a := Coord{int(x1), int(y1)}
		b := Coord{int(x2), int(y2)}
		d := ManhattanDist(a, b)
		return d == ManhattanDist(b, a) && d >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMesh2D(t *testing.T) {
	m := Mesh2D(8, 8, 3) // the paper's cm3
	validate(t, m)
	if m.Nr != 64 || m.N() != 192 {
		t.Fatalf("cm3: Nr=%d N=%d, want 64/192", m.Nr, m.N())
	}
	if m.NetworkRadix() != 4 {
		t.Errorf("mesh radix = %d, want 4", m.NetworkRadix())
	}
	if m.MinNetworkRadix() != 2 {
		t.Errorf("mesh corner degree = %d, want 2", m.MinNetworkRadix())
	}
	if d := m.Diameter(); d != 14 {
		t.Errorf("8x8 mesh diameter = %d, want 14", d)
	}
	// All mesh wires have unit length.
	if m.AvgWireLength() != 1 {
		t.Errorf("mesh avg wire length = %v, want 1", m.AvgWireLength())
	}
	if m.Links() != 2*8*7 {
		t.Errorf("mesh links = %d, want %d", m.Links(), 2*8*7)
	}
}

func TestTorus2D(t *testing.T) {
	tr := Torus2D(8, 8, 3) // t2d3
	validate(t, tr)
	if tr.Nr != 64 || tr.N() != 192 {
		t.Fatalf("t2d3: Nr=%d N=%d", tr.Nr, tr.N())
	}
	if tr.NetworkRadix() != 4 || tr.MinNetworkRadix() != 4 {
		t.Errorf("torus degrees = %d/%d, want 4/4", tr.MinNetworkRadix(), tr.NetworkRadix())
	}
	if d := tr.Diameter(); d != 8 {
		t.Errorf("8x8 torus diameter = %d, want 8", d)
	}
	if tr.Links() != 2*64 {
		t.Errorf("torus links = %d, want 128", tr.Links())
	}
	// Folded placement: every wire at most 2 grid hops.
	for i := 0; i < tr.Nr; i++ {
		for _, j := range tr.Adj[i] {
			if d := ManhattanDist(tr.Coords[i], tr.Coords[j]); d > 2 {
				t.Fatalf("folded torus wire %d-%d has length %d > 2", i, j, d)
			}
		}
	}
}

func TestTorusOddDimension(t *testing.T) {
	tr := Torus2D(5, 3, 1)
	validate(t, tr)
	if d := tr.Diameter(); d != 3 {
		t.Errorf("5x3 torus diameter = %d, want 3", d)
	}
	for i := 0; i < tr.Nr; i++ {
		for _, j := range tr.Adj[i] {
			if d := ManhattanDist(tr.Coords[i], tr.Coords[j]); d > 2 {
				t.Fatalf("folded torus wire %d-%d has length %d > 2", i, j, d)
			}
		}
	}
}

func TestFoldedPosIsPermutation(t *testing.T) {
	for n := 1; n <= 20; n++ {
		seen := make([]bool, n)
		for k := 0; k < n; k++ {
			p := foldedPos(k, n)
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("foldedPos(%d,%d) = %d not a permutation", k, n, p)
			}
			seen[p] = true
		}
	}
}

func TestFBF(t *testing.T) {
	// fbf3 in Table 4: 8x8 grid, p=3, k'=14, k=17, D=2.
	f := FBF(8, 8, 3)
	validate(t, f)
	if f.NetworkRadix() != 14 {
		t.Errorf("fbf3 k' = %d, want 14", f.NetworkRadix())
	}
	if f.RouterRadix() != 17 {
		t.Errorf("fbf3 k = %d, want 17", f.RouterRadix())
	}
	if d := f.Diameter(); d != 2 {
		t.Errorf("FBF diameter = %d, want 2", d)
	}
	// fbf4: 10x5, k'=13, k=17.
	f4 := FBF(10, 5, 4)
	validate(t, f4)
	if f4.NetworkRadix() != 13 || f4.RouterRadix() != 17 {
		t.Errorf("fbf4 k'/k = %d/%d, want 13/17", f4.NetworkRadix(), f4.RouterRadix())
	}
	// fbf9: 12x12, k'=22; fbf8: 18x9, k'=25.
	if got := FBF(12, 12, 9).NetworkRadix(); got != 22 {
		t.Errorf("fbf9 k' = %d, want 22", got)
	}
	if got := FBF(18, 9, 8).NetworkRadix(); got != 25 {
		t.Errorf("fbf8 k' = %d, want 25", got)
	}
}

func TestPFBF(t *testing.T) {
	// pfbf3: 4 FBFs of 4x4 each, p=3, k'=8 (Table 4), D=4.
	f := PFBF(2, 2, 4, 4, 3)
	validate(t, f)
	if f.Nr != 64 || f.N() != 192 {
		t.Fatalf("pfbf3 Nr=%d N=%d", f.Nr, f.N())
	}
	if f.NetworkRadix() != 8 {
		t.Errorf("pfbf3 k' = %d, want 8", f.NetworkRadix())
	}
	if d := f.Diameter(); d != 4 {
		t.Errorf("pfbf3 diameter = %d, want 4", d)
	}
	// pfbf4: 2 FBFs of 5x5, p=4, k'=9.
	f4 := PFBF(2, 1, 5, 5, 4)
	validate(t, f4)
	if f4.NetworkRadix() != 9 {
		t.Errorf("pfbf4 k' = %d, want 9", f4.NetworkRadix())
	}
	// pfbf9: 4 FBFs of 6x6, p=9, k'=12.
	f9 := PFBF(2, 2, 6, 6, 9)
	if f9.NetworkRadix() != 12 {
		t.Errorf("pfbf9 k' = %d, want 12", f9.NetworkRadix())
	}
	if f9.N() != 1296 {
		t.Errorf("pfbf9 N = %d, want 1296", f9.N())
	}
	// pfbf8: 2 FBFs of 9x9, p=8, k'=17.
	f8 := PFBF(2, 1, 9, 9, 8)
	if f8.NetworkRadix() != 17 {
		t.Errorf("pfbf8 k' = %d, want 17", f8.NetworkRadix())
	}
	if f8.N() != 1296 {
		t.Errorf("pfbf8 N = %d, want 1296", f8.N())
	}
}

func TestDragonfly(t *testing.T) {
	// Balanced-ish DF with a=4, h=2, g=9: Nr=36, every router one global
	// link budget of 2, all group pairs connected.
	df, err := Dragonfly(4, 2, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, df)
	if df.Nr != 36 {
		t.Fatalf("df Nr = %d, want 36", df.Nr)
	}
	// Degree: a-1 intra + h global = 5.
	if df.NetworkRadix() != 5 || df.MinNetworkRadix() != 5 {
		t.Errorf("df degrees = %d/%d, want 5/5", df.MinNetworkRadix(), df.NetworkRadix())
	}
	if d := df.Diameter(); d != 3 {
		t.Errorf("df diameter = %d, want 3", d)
	}
	// Every group pair connected by exactly one link.
	pair := make(map[[2]int]int)
	for i := 0; i < df.Nr; i++ {
		for _, j := range df.Adj[i] {
			gi, gj := i/4, j/4
			if gi < gj {
				pair[[2]int{gi, gj}]++
			}
		}
	}
	if len(pair) != 9*8/2 {
		t.Fatalf("df connects %d group pairs, want 36", len(pair))
	}
	for k, c := range pair {
		if c != 1 {
			t.Fatalf("group pair %v has %d links, want 1", k, c)
		}
	}
}

func TestDragonflyRejectsTooManyGroups(t *testing.T) {
	if _, err := Dragonfly(2, 1, 4, 1); err == nil {
		t.Error("expected error for g > a*h+1")
	}
}

func TestFoldedClos(t *testing.T) {
	c := FoldedClos(25, 8, 8) // 200 nodes on 25 leaves
	validate(t, c)
	if c.N() != 200 {
		t.Fatalf("clos N = %d, want 200", c.N())
	}
	if c.Nr != 33 {
		t.Fatalf("clos Nr = %d, want 33", c.Nr)
	}
	if d := c.Diameter(); d != 2 {
		t.Errorf("clos diameter = %d, want 2", d)
	}
	// Node map: all nodes on leaves, spines empty.
	for v := 0; v < c.N(); v++ {
		if r := c.NodeRouter(v); r >= 25 {
			t.Fatalf("node %d mapped to spine %d", v, r)
		}
	}
	for s := 25; s < 33; s++ {
		if nodes := c.RouterNodes(s); len(nodes) != 0 {
			t.Fatalf("spine %d has %d nodes", s, len(nodes))
		}
	}
	if got := c.RouterNodes(3); len(got) != 8 || got[0] != 24 {
		t.Fatalf("leaf 3 nodes = %v", got)
	}
}

func TestNodeRouterUniform(t *testing.T) {
	m := Mesh2D(4, 4, 3)
	for v := 0; v < m.N(); v++ {
		if m.NodeRouter(v) != v/3 {
			t.Fatalf("NodeRouter(%d) = %d", v, m.NodeRouter(v))
		}
	}
	nodes := m.RouterNodes(5)
	if len(nodes) != 3 || nodes[0] != 15 || nodes[2] != 17 {
		t.Fatalf("RouterNodes(5) = %v", nodes)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	n := &Network{Name: "bad", Nr: 2, P: 1, Adj: [][]int{{1}, {}}}
	if err := n.Validate(); err == nil {
		t.Error("expected asymmetry error")
	}
	n2 := &Network{Name: "bad2", Nr: 2, P: 1, Adj: [][]int{{0}, {}}}
	if err := n2.Validate(); err == nil {
		t.Error("expected self-loop error")
	}
}

func TestBisectionLinks(t *testing.T) {
	// 4x1 path: coordinates 1..4, cut at x=2: one link crosses (2-3).
	m := Mesh2D(4, 1, 1)
	if got := m.BisectionLinks(); got != 1 {
		t.Errorf("path bisection = %d, want 1", got)
	}
	// FBF has much higher bisection than PFBF at same size.
	fbf := FBF(8, 8, 3)
	pfbf := PFBF(2, 2, 4, 4, 3)
	if fbf.BisectionLinks() <= pfbf.BisectionLinks() {
		t.Errorf("FBF bisection %d should exceed PFBF %d",
			fbf.BisectionLinks(), pfbf.BisectionLinks())
	}
}

func TestAvgShortestPath(t *testing.T) {
	// Fully connected K4: all pairs distance 1.
	f := FBF(4, 1, 1)
	if got := f.AvgShortestPath(); got != 1 {
		t.Errorf("K4 avg path = %v, want 1", got)
	}
	// FBF diameter 2 implies avg < 2.
	f2 := FBF(8, 8, 3)
	if got := f2.AvgShortestPath(); got <= 1 || got >= 2 {
		t.Errorf("fbf3 avg path = %v, want in (1,2)", got)
	}
}

func TestGridDims(t *testing.T) {
	m := Mesh2D(10, 5, 4)
	x, y := m.GridDims()
	if x != 10 || y != 5 {
		t.Errorf("GridDims = %d,%d, want 10,5", x, y)
	}
}

// TestRandomNetworkValidate property-tests Validate against randomly
// generated symmetric graphs.
func TestRandomNetworkValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nr := 2 + rng.Intn(30)
		es := newEdgeSet(nr)
		for e := 0; e < nr*2; e++ {
			i, j := rng.Intn(nr), rng.Intn(nr)
			es.add(i, j)
		}
		n := &Network{Name: "rand", Nr: nr, P: 1, Adj: es.lists()}
		if err := n.Validate(); err != nil {
			t.Fatalf("random network should validate: %v", err)
		}
	}
}

func TestDiameterDisconnected(t *testing.T) {
	n := &Network{Name: "disc", Nr: 4, P: 1, Adj: [][]int{{1}, {0}, {3}, {2}}}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := n.Diameter(); d != -1 {
		t.Errorf("disconnected diameter = %d, want -1", d)
	}
}

func BenchmarkDiameterFBF144(b *testing.B) {
	f := FBF(12, 12, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Diameter() != 2 {
			b.Fatal("wrong diameter")
		}
	}
}

// TestHandshakeLemma: the sum of degrees equals twice the link count for
// every constructed baseline.
func TestHandshakeLemma(t *testing.T) {
	nets := []*Network{
		Mesh2D(7, 5, 2), Torus2D(6, 6, 3), FBF(5, 4, 2),
		PFBF(2, 2, 3, 3, 2), FoldedClos(9, 3, 4),
	}
	df, err := Dragonfly(4, 2, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, df)
	for _, n := range nets {
		total := 0
		for _, a := range n.Adj {
			total += len(a)
		}
		if total != 2*n.Links() {
			t.Errorf("%s: degree sum %d != 2*links %d", n.Name, total, 2*n.Links())
		}
	}
}

// TestTorusDominatesMesh: a torus has the mesh's links plus the wraps, so
// its diameter and average path cannot exceed the mesh's.
func TestTorusDominatesMesh(t *testing.T) {
	for _, dim := range [][2]int{{4, 4}, {8, 8}, {10, 5}} {
		m := Mesh2D(dim[0], dim[1], 1)
		tr := Torus2D(dim[0], dim[1], 1)
		if tr.Diameter() > m.Diameter() {
			t.Errorf("%dx%d: torus diameter %d > mesh %d", dim[0], dim[1], tr.Diameter(), m.Diameter())
		}
		if tr.AvgShortestPath() > m.AvgShortestPath() {
			t.Errorf("%dx%d: torus avg path exceeds mesh", dim[0], dim[1])
		}
	}
}

// TestFBFDegreeFormula: FBF network radix is (cx-1)+(cy-1) for every grid.
func TestFBFDegreeFormula(t *testing.T) {
	for cx := 2; cx <= 8; cx++ {
		for cy := 2; cy <= 6; cy++ {
			f := FBF(cx, cy, 1)
			want := cx + cy - 2
			if f.NetworkRadix() != want || f.MinNetworkRadix() != want {
				t.Errorf("FBF(%d,%d) radix %d..%d, want %d",
					cx, cy, f.MinNetworkRadix(), f.NetworkRadix(), want)
			}
		}
	}
}
