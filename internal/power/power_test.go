package power

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
)

func buildSN(t testing.TB, q, p int, l core.Layout) *topo.Network {
	t.Helper()
	s, err := core.New(core.Params{Q: q, P: p})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Network(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAreaPositiveAndDecomposed(t *testing.T) {
	n := buildSN(t, 5, 4, core.LayoutSubgroup)
	buf := EdgeBufferConfig(n, core.DefaultBufferModel(), 128)
	a := Area(n, buf, 2, Tech45())
	if a.ARouters <= 0 || a.IRouters <= 0 || a.RRWires <= 0 || a.RNWires <= 0 {
		t.Fatalf("area components must be positive: %+v", a)
	}
	if a.Total() <= a.ARouters {
		t.Error("total must exceed any single component")
	}
	per := a.PerNodeCM2(n.N())
	if per.Total()*float64(n.N())-a.Total() > 1e-9 {
		t.Error("per-node normalisation broken")
	}
}

// TestSNBeatsFBFInAreaAndPower reproduces the §6 summary for N≈200: SN
// reduces area (paper: >36%) and static power (>49%) versus the
// full-bandwidth FBF. We accept broad bands since constants are calibrated,
// not fitted.
func TestSNBeatsFBFInAreaAndPower(t *testing.T) {
	m := core.DefaultBufferModel()
	sn := buildSN(t, 5, 4, core.LayoutSubgroup)
	fbf := topo.FBF(10, 5, 4) // fbf4: same Nr=50, N=200
	t45 := Tech45()

	snArea := Area(sn, EdgeBufferConfig(sn, m, 128), 2, t45).Total()
	fbfArea := Area(fbf, EdgeBufferConfig(fbf, m, 128), 2, t45).Total()
	if snArea >= fbfArea {
		t.Errorf("SN area %.4f should be below FBF %.4f", snArea, fbfArea)
	}
	red := 1 - snArea/fbfArea
	if red < 0.15 || red > 0.70 {
		t.Errorf("SN area reduction vs FBF = %.0f%%, expected roughly 30-50%%", red*100)
	}

	snStat := Static(sn, EdgeBufferConfig(sn, m, 128), 2, t45).Total()
	fbfStat := Static(fbf, EdgeBufferConfig(fbf, m, 128), 2, t45).Total()
	if snStat >= fbfStat {
		t.Errorf("SN static %.4f should be below FBF %.4f", snStat, fbfStat)
	}
}

// TestSNUsesMoreThanLowRadix: the paper concedes SN uses more area and
// static power than T2D/CM (§6) — the model must reproduce that direction
// too.
func TestSNUsesMoreThanLowRadix(t *testing.T) {
	m := core.DefaultBufferModel()
	sn := buildSN(t, 5, 4, core.LayoutSubgroup)
	t2d := topo.Torus2D(10, 5, 4)
	t45 := Tech45()
	snArea := Area(sn, EdgeBufferConfig(sn, m, 128), 2, t45).Total()
	t2dArea := Area(t2d, EdgeBufferConfig(t2d, m, 128), 2, t45).Total()
	if snArea <= t2dArea {
		t.Errorf("SN area %.4f should exceed torus %.4f", snArea, t2dArea)
	}
}

// TestLargeScaleSNvsFBF: at N=1296 the paper reports SN cutting area by up
// to ~33% and static power by up to ~55% vs FBF.
func TestLargeScaleSNvsFBF(t *testing.T) {
	m := core.DefaultBufferModel().WithSMART()
	sn := buildSN(t, 9, 8, core.LayoutGroup)
	fbf := topo.FBF(18, 9, 8) // fbf8
	t45 := Tech45()
	snArea := Area(sn, EdgeBufferConfig(sn, m, 128), 2, t45).Total()
	fbfArea := Area(fbf, EdgeBufferConfig(fbf, m, 128), 2, t45).Total()
	if snArea >= fbfArea {
		t.Errorf("SN-L area %.4f should be below fbf8 %.4f", snArea, fbfArea)
	}
	snStat := Static(sn, EdgeBufferConfig(sn, m, 128), 2, t45).Total()
	fbfStat := Static(fbf, EdgeBufferConfig(fbf, m, 128), 2, t45).Total()
	red := 1 - snStat/fbfStat
	if red < 0.2 {
		t.Errorf("SN-L static reduction vs fbf8 = %.0f%%, paper reports ~41-55%%", red*100)
	}
}

// TestCentralBufferCutsBufferArea: CBR-20 must reduce the buffer (active
// router) area versus EB-Var sizing for SN-L, one of §4's selling points.
func TestCentralBufferCutsBufferArea(t *testing.T) {
	m := core.DefaultBufferModel()
	sn := buildSN(t, 9, 8, core.LayoutGroup)
	t45 := Tech45()
	eb := Area(sn, EdgeBufferConfig(sn, m, 128), 2, t45)
	cb := Area(sn, CentralBufferConfig(sn, m, 20, 128), 2, t45)
	if cb.ARouters >= eb.ARouters {
		t.Errorf("CBR active area %.4f should be below EB %.4f", cb.ARouters, eb.ARouters)
	}
}

func TestStaticScalesWithBuffers(t *testing.T) {
	n := buildSN(t, 5, 4, core.LayoutSubgroup)
	t45 := Tech45()
	small := Static(n, BufferConfig{TotalFlits: 100, FlitBits: 128}, 2, t45).Total()
	big := Static(n, BufferConfig{TotalFlits: 10000, FlitBits: 128}, 2, t45).Total()
	if big <= small {
		t.Error("leakage must grow with buffer storage")
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	t45 := Tech45()
	base := Activity{FlitsPerCycle: 10, AvgHops: 2, AvgWireMM: 5, CycleNs: 0.5, FlitBits: 128}
	double := base
	double.FlitsPerCycle = 20
	d1, d2 := Dynamic(base, t45).Total(), Dynamic(double, t45).Total()
	if d2 <= d1 {
		t.Error("dynamic power must grow with traffic")
	}
	ratio := d2 / d1
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("dynamic power should be ~linear in activity, ratio %.2f", ratio)
	}
}

func Test22nmShrinksAreaAndEnergy(t *testing.T) {
	n := buildSN(t, 5, 4, core.LayoutSubgroup)
	m := core.DefaultBufferModel()
	buf := EdgeBufferConfig(n, m, 128)
	a45 := Area(n, buf, 2, Tech45()).Total()
	a22 := Area(n, buf, 2, Tech22()).Total()
	if a22 >= a45 {
		t.Error("22nm area should shrink")
	}
	// Wires shrink less than logic: wire share grows at 22nm (§5.5).
	r45 := Area(n, buf, 2, Tech45())
	r22 := Area(n, buf, 2, Tech22())
	share45 := (r45.RRWires + r45.RNWires) / r45.Total()
	share22 := (r22.RRWires + r22.RNWires) / r22.Total()
	if share22 <= share45 {
		t.Errorf("wire area share should grow at 22nm: %.2f -> %.2f", share45, share22)
	}
}

func TestThroughputPerPower(t *testing.T) {
	st := StaticReport{Routers: 1, Wires: 1}
	dy := DynamicReport{Buffers: 1, Crossbars: 1, Wires: 1}
	v := ThroughputPerPower(10, 0.5, st, dy)
	if v <= 0 {
		t.Fatal("throughput/power must be positive")
	}
	// Halving power doubles the metric.
	st2 := StaticReport{Routers: 0.5, Wires: 0.5}
	dy2 := DynamicReport{Buffers: 0.5, Crossbars: 0.5, Wires: 0.5}
	if v2 := ThroughputPerPower(10, 0.5, st2, dy2); v2 < 1.9*v || v2 > 2.1*v {
		t.Errorf("expected ~2x, got %.2f", v2/v)
	}
	if ThroughputPerPower(10, 0.5, StaticReport{}, DynamicReport{}) != 0 {
		t.Error("zero power must return 0, not Inf")
	}
}

func TestEnergyDelay(t *testing.T) {
	st := StaticReport{Routers: 2}
	dy := DynamicReport{Wires: 3}
	edp := EnergyDelay(st, dy, 1e-6, 20e-9)
	want := 5.0 * 1e-6 * 20e-9
	if edp < want*0.999 || edp > want*1.001 {
		t.Errorf("EDP = %v, want %v", edp, want)
	}
}

func TestActivityOf(t *testing.T) {
	n := buildSN(t, 5, 4, core.LayoutSubgroup)
	act := ActivityOf(n, 0.1, 1.8, Tech45(), 128)
	if act.FlitsPerCycle != 0.1*float64(n.N()) {
		t.Errorf("FlitsPerCycle = %v", act.FlitsPerCycle)
	}
	if act.AvgWireMM <= 0 || act.CycleNs != 0.5 {
		t.Errorf("bad activity %+v", act)
	}
}

func TestTileSide(t *testing.T) {
	if got := Tech45().TileSideMM(4); got != 4.0 {
		t.Errorf("45nm tile for p=4 = %v, want 4.0 (sqrt(4*4))", got)
	}
	if got := Tech22().TileSideMM(1); got != 1.0 {
		t.Errorf("22nm tile for p=1 = %v, want 1.0", got)
	}
	if Tech45().TileSideMM(0) != 2.0 {
		t.Error("p=0 should clamp to one core")
	}
}
