// Package power is the reproduction's stand-in for the DSENT area/power
// tool the paper uses (§5.1). It provides analytical area, static-power and
// dynamic-power models for placed networks at 45 nm / 1.0 V and
// 22 nm / 0.8 V, with the same functional forms DSENT applies: buffer cost
// proportional to storage bits, crossbar cost proportional to
// (radix × width)^2, and wire cost proportional to length × width. Absolute
// numbers are calibrated to published magnitudes; relative comparisons
// (which drive every paper conclusion) follow from network structure.
package power

import (
	"math"

	"repro/internal/core"
	"repro/internal/topo"
)

// Tech bundles one technology point.
type Tech struct {
	Name string
	VDD  float64

	// Area constants.
	BufBitAreaMM2  float64 // buffer storage, mm^2 per bit
	XbarCellMM2    float64 // crossbar, mm^2 per (port^2 * bit)
	AllocCellMM2   float64 // allocator/arbiter, mm^2 per (port^2 * VC)
	WirePitchMM    float64 // wire pitch, mm per track (global layer)
	WirePitchIntMM float64 // intermediate layer pitch

	// Static (leakage) power constants.
	BufLeakWPerBit float64
	XbarLeakWPerPB float64 // per (port^2 * bit)
	WireLeakWPerMM float64 // repeated wire, per signal mm

	// Dynamic energy constants.
	EBufRWJPerBit  float64 // buffer write+read, J per bit
	EXbarJPerBit   float64 // crossbar traversal, J per bit
	EWireJPerBitMM float64 // wire transfer, J per bit-mm

	// TileSideMM returns the placement-grid pitch for a router tile holding
	// p cores (§3.3.2 core areas: 4 / 1 mm^2 at 45 / 22 nm).
	CoreAreaMM2 float64
}

// Tech45 is the 45 nm / 1.0 V point.
func Tech45() Tech {
	return Tech{
		Name:           "45nm",
		VDD:            1.0,
		BufBitAreaMM2:  4.0e-6,
		XbarCellMM2:    1.5e-5,
		AllocCellMM2:   2.0e-6,
		WirePitchMM:    2.8e-4,
		WirePitchIntMM: 1.4e-4,
		BufLeakWPerBit: 5.0e-7,
		XbarLeakWPerPB: 1.0e-6,
		WireLeakWPerMM: 1.5e-6,
		EBufRWJPerBit:  1.2e-13,
		EXbarJPerBit:   2.4e-13,
		EWireJPerBitMM: 2.0e-14,
		CoreAreaMM2:    4.0,
	}
}

// Tech22 is the 22 nm / 0.8 V point. Logic shrinks quadratically; wires
// shrink less, so they take a relatively larger share (§5.5).
func Tech22() Tech {
	return Tech{
		Name:           "22nm",
		VDD:            0.8,
		BufBitAreaMM2:  1.0e-6,
		XbarCellMM2:    3.8e-6,
		AllocCellMM2:   5.0e-7,
		WirePitchMM:    1.6e-4,
		WirePitchIntMM: 0.8e-4,
		BufLeakWPerBit: 3.0e-7,
		XbarLeakWPerPB: 6.0e-7,
		WireLeakWPerMM: 1.2e-6,
		EBufRWJPerBit:  4.8e-14,
		EXbarJPerBit:   9.6e-14,
		EWireJPerBitMM: 1.3e-14,
		CoreAreaMM2:    1.0,
	}
}

// TileSideMM is the physical pitch of one placement-grid cell: a router and
// its p cores.
func (t Tech) TileSideMM(p int) float64 {
	if p < 1 {
		p = 1
	}
	return math.Sqrt(t.CoreAreaMM2 * float64(p))
}

// BufferConfig describes the storage a router carries.
type BufferConfig struct {
	// TotalFlits is the network-wide buffer storage in flits (Δeb or Δcb
	// from §3.2.2); per-router storage is TotalFlits / Nr.
	TotalFlits float64
	FlitBits   int
}

// EdgeBufferConfig computes Δeb for a placed network under the given model.
func EdgeBufferConfig(n *topo.Network, m core.BufferModel, flitBits int) BufferConfig {
	return BufferConfig{TotalFlits: float64(m.TotalEdgeBuffers(n)), FlitBits: flitBits}
}

// CentralBufferConfig computes Δcb for a placed network.
func CentralBufferConfig(n *topo.Network, m core.BufferModel, cbFlits, flitBits int) BufferConfig {
	return BufferConfig{TotalFlits: float64(m.TotalCentralBuffers(n, cbFlits)), FlitBits: flitBits}
}

// AreaReport splits network area by component, in cm^2, following the
// paper's breakdown (Fig. 15-17): routers in the active layer (buffers,
// allocators), routers in intermediate layers (crossbars), router-router
// wires (global layer) and router-node wires.
type AreaReport struct {
	ARouters float64 // active-layer router area (buffers + allocators)
	IRouters float64 // intermediate-layer router area (crossbars)
	RRWires  float64 // router-router wires, global layer
	RNWires  float64 // router-node wires
}

// Total returns the summed area in cm^2.
func (a AreaReport) Total() float64 { return a.ARouters + a.IRouters + a.RRWires + a.RNWires }

// PerNodeCM2 normalises by node count.
func (a AreaReport) PerNodeCM2(n int) AreaReport {
	f := 1 / float64(n)
	return AreaReport{a.ARouters * f, a.IRouters * f, a.RRWires * f, a.RNWires * f}
}

const mm2PerCM2 = 100.0

// Area computes the area report for a placed network with the given buffer
// configuration.
func Area(n *topo.Network, buf BufferConfig, vcs int, t Tech) AreaReport {
	k := float64(n.RouterRadix())
	w := float64(buf.FlitBits)
	nr := float64(n.Nr)

	bufBits := buf.TotalFlits * w
	aRouters := bufBits*t.BufBitAreaMM2 + nr*k*k*float64(vcs)*t.AllocCellMM2
	iRouters := nr * k * k * w * t.XbarCellMM2

	tile := t.TileSideMM(n.P)
	rrMM := float64(n.TotalWireLength()) * tile
	rrWires := rrMM * w * 2 * t.WirePitchMM // two directions per link
	// Router-node wires: each node one link of ~half a tile.
	rnMM := float64(n.N()) * 0.5 * tile
	rnWires := rnMM * w * 2 * t.WirePitchIntMM

	return AreaReport{
		ARouters: aRouters / mm2PerCM2,
		IRouters: iRouters / mm2PerCM2,
		RRWires:  rrWires / mm2PerCM2,
		RNWires:  rnWires / mm2PerCM2,
	}
}

// StaticReport splits leakage power in watts.
type StaticReport struct {
	Routers float64 // buffers + crossbars + allocators
	Wires   float64
}

// Total returns summed static power.
func (s StaticReport) Total() float64 { return s.Routers + s.Wires }

// Static computes leakage power.
func Static(n *topo.Network, buf BufferConfig, vcs int, t Tech) StaticReport {
	k := float64(n.RouterRadix())
	w := float64(buf.FlitBits)
	nr := float64(n.Nr)
	bufBits := buf.TotalFlits * w
	routers := bufBits*t.BufLeakWPerBit + nr*k*k*w*t.XbarLeakWPerPB
	tile := t.TileSideMM(n.P)
	wireMM := float64(n.TotalWireLength())*tile*w*2 + float64(n.N())*0.5*tile*w*2
	wires := wireMM * t.WireLeakWPerMM
	// Leakage scales roughly with VDD.
	scale := t.VDD
	return StaticReport{Routers: routers * scale, Wires: wires * scale}
}

// Activity summarises the traffic a dynamic-power estimate is based on.
type Activity struct {
	FlitsPerCycle float64 // network-wide accepted flits per cycle
	AvgHops       float64 // router-to-router hops per flit
	AvgWireMM     float64 // mean wire length per hop, mm
	CycleNs       float64
	FlitBits      int
	RouterRadix   int // k: crossbar traversal energy grows with port count
}

// ActivityOf derives Activity from simulation output.
func ActivityOf(n *topo.Network, throughputPerNode, avgHops float64, t Tech, flitBits int) Activity {
	return Activity{
		FlitsPerCycle: throughputPerNode * float64(n.N()),
		AvgHops:       avgHops,
		AvgWireMM:     n.AvgWireLength() * t.TileSideMM(n.P),
		CycleNs:       n.CycleTimeNs,
		FlitBits:      flitBits,
		RouterRadix:   n.RouterRadix(),
	}
}

// DynamicReport splits dynamic power in watts.
type DynamicReport struct {
	Buffers   float64
	Crossbars float64
	Wires     float64
}

// Total returns summed dynamic power.
func (d DynamicReport) Total() float64 { return d.Buffers + d.Crossbars + d.Wires }

// refRadix normalises the crossbar-energy constant: EXbarJPerBit is the
// per-bit traversal energy of a radix-12 crossbar; larger crossbars cost
// proportionally more (longer internal wires and bigger muxes), matching
// DSENT's radix dependence and the paper's Fig. 16c dynamic-power split.
const refRadix = 12.0

// Dynamic computes switching power for the given activity. Each flit writes
// and reads a buffer and crosses a crossbar at every router on its path
// (hops+1 routers), and drives AvgHops wires of AvgWireMM millimetres.
func Dynamic(act Activity, t Tech) DynamicReport {
	if act.CycleNs <= 0 {
		act.CycleNs = 1
	}
	flitsPerSec := act.FlitsPerCycle / (act.CycleNs * 1e-9)
	bits := float64(act.FlitBits)
	routersPerFlit := act.AvgHops + 1
	radixScale := 1.0
	if act.RouterRadix > 0 {
		radixScale = float64(act.RouterRadix) / refRadix
	}
	return DynamicReport{
		Buffers:   flitsPerSec * bits * routersPerFlit * t.EBufRWJPerBit,
		Crossbars: flitsPerSec * bits * routersPerFlit * t.EXbarJPerBit * radixScale,
		Wires:     flitsPerSec * bits * act.AvgHops * act.AvgWireMM * t.EWireJPerBitMM,
	}
}

// ThroughputPerPower returns the paper's §5.4 metric: flits delivered per
// cycle divided by the power consumed during delivery (flits/J after unit
// conversion).
func ThroughputPerPower(flitsPerCycle float64, cycleNs float64, static StaticReport, dyn DynamicReport) float64 {
	totalW := static.Total() + dyn.Total()
	if totalW <= 0 {
		return 0
	}
	flitsPerSec := flitsPerCycle / (cycleNs * 1e-9)
	return flitsPerSec / totalW // flits per joule
}

// EnergyDelay returns the energy-delay product: total power times run time
// (energy) times average packet latency.
func EnergyDelay(static StaticReport, dyn DynamicReport, runSeconds, avgLatencySeconds float64) float64 {
	return (static.Total() + dyn.Total()) * runSeconds * avgLatencySeconds
}
