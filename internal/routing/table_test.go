package routing

import (
	"testing"

	"repro/internal/topo"
)

// tableBuilders returns representative PathBuilders over small networks.
func tableBuilders(t *testing.T) map[string]struct {
	net *topo.Network
	pb  PathBuilder
} {
	t.Helper()
	mesh := topo.Mesh2D(4, 4, 1)
	dorMesh, err := NewDORMesh(mesh, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	torus := topo.Torus2D(4, 4, 1)
	dorTorus, err := NewDORTorus(torus, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	fbf := topo.FBF(4, 4, 1)
	minimal := &MinimalRouting{P: NewMinimal(fbf), VCs: 3}
	return map[string]struct {
		net *topo.Network
		pb  PathBuilder
	}{
		"dor-mesh":  {mesh, dorMesh},
		"dor-torus": {torus, dorTorus},
		"minimal":   {fbf, minimal},
	}
}

// TestCompileMatchesBuilder verifies a compiled table reproduces its
// builder's routes exactly for every pair, through both eager and memoized
// construction.
func TestCompileMatchesBuilder(t *testing.T) {
	for name, tc := range tableBuilders(t) {
		tc := tc
		t.Run(name, func(t *testing.T) {
			eager, err := Compile(tc.net.Nr, tc.pb)
			if err != nil {
				t.Fatal(err)
			}
			memo := NewMemoTable(tc.net.Nr, tc.pb)
			if eager.NumVCs() != tc.pb.NumVCs() {
				t.Fatalf("NumVCs %d != %d", eager.NumVCs(), tc.pb.NumVCs())
			}
			for src := 0; src < tc.net.Nr; src++ {
				for dst := 0; dst < tc.net.Nr; dst++ {
					wantPath, wantVCs := tc.pb.Route(src, dst)
					for _, tab := range []*RouteTable{eager, memo} {
						path, vcs := tab.Route(src, dst)
						if len(path) != len(wantPath) || len(vcs) != len(wantVCs) {
							t.Fatalf("%d->%d: table path/vcs lengths %d/%d, want %d/%d",
								src, dst, len(path), len(vcs), len(wantPath), len(wantVCs))
						}
						for i := range path {
							if int(path[i]) != wantPath[i] {
								t.Fatalf("%d->%d: path[%d] = %d, want %d", src, dst, i, path[i], wantPath[i])
							}
						}
						for i := range vcs {
							if int(vcs[i]) != wantVCs[i] {
								t.Fatalf("%d->%d: vcs[%d] = %d, want %d", src, dst, i, vcs[i], wantVCs[i])
							}
						}
					}
				}
			}
			if got := eager.Pairs(); got != tc.net.Nr*tc.net.Nr {
				t.Errorf("eager table compiled %d pairs, want %d", got, tc.net.Nr*tc.net.Nr)
			}
		})
	}
}

// TestTableBorrowIsolation pins the interning contract: the views handed
// out by Route are capacity-clipped, so a caller appending to a borrowed
// path cannot clobber the adjacent pair's storage.
func TestTableBorrowIsolation(t *testing.T) {
	net := topo.Mesh2D(3, 3, 1)
	pb, err := NewDORMesh(net, 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Compile(net.Nr, pb)
	if err != nil {
		t.Fatal(err)
	}
	path01, _ := tab.Route(0, 1)
	before, _ := tab.Route(0, 2)
	snapshot := append([]int32(nil), before...)
	_ = append(path01, 99) // must reallocate, not overwrite interned storage
	after, _ := tab.Route(0, 2)
	for i := range snapshot {
		if after[i] != snapshot[i] {
			t.Fatalf("appending to a borrowed path corrupted neighbour storage: %v -> %v", snapshot, after)
		}
	}
}

func TestAppendPathHelpers(t *testing.T) {
	net := topo.FBF(4, 4, 1)
	p := NewMinimal(net)
	tab, err := Compile(net.Nr, &MinimalRouting{P: p, VCs: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 0, 8)
	buf = tab.AppendPath(buf[:0], 0, 15)
	want := p.MinPath(0, 15)
	if len(buf) != len(want) {
		t.Fatalf("AppendPath %v, want %v", buf, want)
	}
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatalf("AppendPath %v, want %v", buf, want)
		}
	}
	// Valiant-style concatenation: src->mid then tail of mid->dst equals
	// Paths.ValiantPath.
	val := tab.AppendPath(nil, 0, 5)
	val = tab.AppendPathTail(val, 5, 15)
	wantVal := p.ValiantPath(0, 5, 15)
	if len(val) != len(wantVal) {
		t.Fatalf("valiant concat %v, want %v", val, wantVal)
	}
	for i := range val {
		if val[i] != wantVal[i] {
			t.Fatalf("valiant concat %v, want %v", val, wantVal)
		}
	}
}

func TestAppendAscendingVCs(t *testing.T) {
	got := AppendAscendingVCs(nil, 5, 3)
	want := AscendingVCs(5, 3)
	if len(got) != len(want) {
		t.Fatalf("%v != %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%v != %v", got, want)
		}
	}
	if out := AppendAscendingVCs([]int{9}, 2, 4); len(out) != 3 || out[0] != 9 || out[1] != 0 || out[2] != 1 {
		t.Fatalf("append onto prefix = %v", out)
	}
}
