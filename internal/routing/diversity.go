// Path-diversity analysis: the number of distinct minimal paths between
// router pairs. The paper's §6 adaptive-routing discussion and its FBF
// comparison hinge on how many minimal alternatives a topology offers (FBF
// has two quadrature paths; SN's diameter-2 pairs often have several
// two-hop options through different intermediates).

package routing

// PathDiversity returns, for each ordered router pair (src != dst), the
// number of distinct minimal paths, aggregated as a histogram:
// result[c] = number of pairs with exactly c minimal paths (c >= 1).
func (p *Paths) PathDiversity() map[int]int {
	nr := p.net.Nr
	out := make(map[int]int)
	for src := 0; src < nr; src++ {
		for dst := 0; dst < nr; dst++ {
			if src == dst {
				continue
			}
			out[p.CountMinPaths(src, dst)]++
		}
	}
	return out
}

// CountMinPaths counts the distinct minimal paths from src to dst by
// dynamic programming over the BFS distance field.
func (p *Paths) CountMinPaths(src, dst int) int {
	d := p.dist[src][dst]
	if d < 0 {
		return 0
	}
	if d == 0 {
		return 1
	}
	// count[r] = number of minimal paths from r to dst, filled in order of
	// decreasing distance along the minimal DAG reachable from src.
	memo := map[int]int{dst: 1}
	var count func(r int) int
	count = func(r int) int {
		if c, ok := memo[r]; ok {
			return c
		}
		total := 0
		for _, v := range p.net.Adj[r] {
			if p.dist[v][dst] == p.dist[r][dst]-1 {
				total += count(v)
			}
		}
		memo[r] = total
		return total
	}
	return count(src)
}

// AvgPathDiversity returns the mean number of minimal paths over all
// ordered router pairs.
func (p *Paths) AvgPathDiversity() float64 {
	hist := p.PathDiversity()
	pairs, total := 0, 0
	//detlint:ordered commutative integer sums; iteration order cannot reach the result
	for c, n := range hist {
		pairs += n
		total += c * n
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}
