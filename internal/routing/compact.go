// Compact (next-hop-only) route tables. A dense RouteTable interns every
// (src,dst) path — three int32 offsets per pair plus the path bytes — which
// reaches gigabytes at the paper's 100k-endpoint scale (§3: SN networks keep
// thousands of routers even at high concentration). But the deterministic
// minimal routes those networks use (MinimalRouting / NewMinimal) are
// next-hop-consistent by construction: the path from src is src followed by
// the path from next[src][dst], because MinPath itself walks the per-pair
// next-hop function. The whole table therefore compresses to ONE byte per
// pair — the output-port index at src toward dst — and paths, ascending VC
// assignments and next-hop words are reconstructed on the fly by walking the
// next-hop bytes through the adjacency, byte-identical to what the dense
// table would have interned.
//
// CompileCompact builds that form directly with one BFS per destination and
// O(nr) scratch, never materialising the all-pairs Paths matrix (whose
// dist+next arrays are 6 bytes per pair — themselves over budget at 100k
// endpoints).

package routing

import (
	"fmt"

	"repro/internal/topo"
)

// cnhNone marks a pair with no next hop: src == dst or dst unreachable.
// Compact compilation caps the radix at 254 so the sentinel can never be a
// real port.
const cnhNone = 0xff

// CompileCompact builds the compact next-hop form of deterministic minimal
// routing with ascending VCs — the same routes MinimalRouting{NewMinimal(net)}
// produces and Compile+CompilePorts would intern, reproduced from one byte
// per (src,dst) pair. The returned table reports Compact() true: callers
// reconstruct routes with AppendRoute instead of borrowing Route views. The
// adjacency is retained (not copied) and must not be mutated afterwards —
// the same immutability contract WithNetwork already demands.
func CompileCompact(net *topo.Network, vcs int) (*RouteTable, error) {
	nr := net.Nr
	if vcs < 1 {
		return nil, fmt.Errorf("routing: CompileCompact needs vcs >= 1, got %d", vcs)
	}
	for r := 0; r < nr; r++ {
		if len(net.Adj[r]) > 254 {
			return nil, fmt.Errorf("routing: router %d radix %d exceeds the compact table's 254-port limit", r, len(net.Adj[r]))
		}
	}
	t := &RouteTable{
		nr:   nr,
		vcs:  vcs,
		cnh:  make([]uint8, nr*nr),
		cadj: net.Adj,
	}
	// One BFS per destination, O(nr) scratch. The BFS layers reproduce
	// NewMinimal's dist exactly; the next hop is NewMinimal's deterministic
	// tie-break — the first (lowest-index, rows are sorted) neighbour strictly
	// closer to the destination — recorded as its port position.
	dist := make([]int32, nr)
	queue := make([]int32, 0, nr)
	for dst := 0; dst < nr; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], int32(dst))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range net.Adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, int32(v))
				}
			}
		}
		for r := 0; r < nr; r++ {
			e := cnhNone
			if r != dst && dist[r] > 0 {
				for pos, v := range net.Adj[r] {
					if dist[v] == dist[r]-1 {
						e = pos
						break
					}
				}
			}
			t.cnh[r*nr+dst] = uint8(e)
		}
	}
	return t, nil
}

// Compact reports whether this is a next-hop-only table: Route/Ports/
// NextWords views are unavailable and callers must reconstruct routes into
// their own buffers with AppendRoute.
func (t *RouteTable) Compact() bool { return t.cnh != nil }

// EstimateDenseBytes computes the resident footprint of the dense table that
// Compile + CompilePorts would intern for deterministic minimal routes on
// this network, without building it: one BFS per destination censuses the
// pairwise distances. A pair at distance d interns 12 B of offsets,
// (d+1)*4 B of routers, d B of hop VCs, d B of ports and (d+1)*4 B of
// next-hop words — 20 + 10*d bytes — so the total is exact on connected
// networks (unreachable pairs intern an empty path and are overcounted by
// 8 B, an error in the safe direction for a budget check). The offset floor
// of nr^2 x 12 badly underestimates long-path topologies: a 35x36 torus at
// 10k endpoints floors at 19 MiB but interns ~370 MiB once its ~18-hop
// average routes are laid down. The BFS census costs O(nr x edges), the
// same as CompileCompact itself.
func EstimateDenseBytes(net *topo.Network) int64 {
	nr := net.Nr
	var sumDist int64
	dist := make([]int32, nr)
	queue := make([]int32, 0, nr)
	for dst := 0; dst < nr; dst++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = append(queue[:0], int32(dst))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range net.Adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, int32(v))
				}
			}
		}
		for r := 0; r < nr; r++ {
			if dist[r] > 0 {
				sumDist += int64(dist[r])
			}
		}
	}
	return 20*int64(nr)*int64(nr) + 10*sumDist
}

// AppendRoute reconstructs the src->dst route into the caller's four buffers
// and returns them: the router path (inclusive of both endpoints), the
// per-hop ascending VCs, the per-hop output ports, and the NextEject-
// terminated next-hop words — element for element what Route, Ports and
// NextWords return on a dense CompilePorts'd table of the same routes.
// Allocation-free once the buffers have reached their high-water capacity.
// An unreachable pair appends nothing; src == dst appends the single-router
// path. Only valid on compact tables.
//
//sim:hot
func (t *RouteTable) AppendRoute(path []int32, vcs, ports []uint8, next []uint32, src, dst int) ([]int32, []uint8, []uint8, []uint32) {
	if t.cnh == nil {
		panic("routing: AppendRoute on a non-compact table (use Route/Ports/NextWords views)")
	}
	if src == dst {
		//detlint:allow hotalloc amortised append into caller-owned buffers whose capacity the packet freelist retains across cycles
		return append(path, int32(src)), vcs, ports, append(next, NextEject)
	}
	if t.cnh[src*t.nr+dst] == cnhNone {
		return path, vcs, ports, next // unreachable: the dense table interns an empty path
	}
	cur := src
	path = append(path, int32(cur))
	for hop := 0; cur != dst; hop++ {
		if hop >= t.nr {
			panic("routing: compact next-hop walk does not terminate (corrupt table or mutated adjacency)")
		}
		p := t.cnh[cur*t.nr+dst]
		vc := hop
		if vc >= t.vcs {
			vc = t.vcs - 1
		}
		vcs = append(vcs, uint8(vc))
		ports = append(ports, p)
		next = append(next, NextWord(int(p), vc, t.vcs))
		cur = t.cadj[cur][p]
		path = append(path, int32(cur))
	}
	//detlint:allow hotalloc amortised append into a caller-owned buffer whose capacity the packet freelist retains across cycles
	return path, vcs, ports, append(next, NextEject)
}

// appendPathOnly is the path-only walk behind AppendPath/AppendPathTail on
// compact tables.
func (t *RouteTable) appendPathOnly(buf []int, src, dst int) []int {
	if src == dst {
		return append(buf, src)
	}
	if t.cnh[src*t.nr+dst] == cnhNone {
		return buf
	}
	cur := src
	buf = append(buf, cur)
	for hop := 0; cur != dst; hop++ {
		if hop >= t.nr {
			panic("routing: compact next-hop walk does not terminate (corrupt table or mutated adjacency)")
		}
		cur = t.cadj[cur][t.cnh[cur*t.nr+dst]]
		buf = append(buf, cur)
	}
	return buf
}
