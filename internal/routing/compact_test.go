package routing

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
)

// compactNets returns the networks the compact form must reproduce exactly:
// an SN instance (the topology class the auto-selection targets) and an FBF
// grid (generic minimal routes over a different structure).
func compactNets(t *testing.T) map[string]*topo.Network {
	t.Helper()
	return map[string]*topo.Network{
		"sn":  snNet(t, 5, 4, core.LayoutSubgroup),
		"fbf": topo.FBF(4, 4, 1),
	}
}

// TestCompactMatchesDense verifies, for every (src,dst) pair, that the
// compact table's AppendRoute reconstruction is element-for-element identical
// to the dense table's Route/Ports/NextWords views of the same deterministic
// minimal routes — the equivalence the simulator's byte-identity under
// compact tables rests on.
func TestCompactMatchesDense(t *testing.T) {
	const vcs = 2
	for name, net := range compactNets(t) {
		net := net
		t.Run(name, func(t *testing.T) {
			dense, err := Compile(net.Nr, &MinimalRouting{P: NewMinimal(net), VCs: vcs})
			if err != nil {
				t.Fatal(err)
			}
			if err := dense.CompilePorts(net.Adj); err != nil {
				t.Fatal(err)
			}
			compact, err := CompileCompact(net, vcs)
			if err != nil {
				t.Fatal(err)
			}
			if !compact.Compact() || dense.Compact() {
				t.Fatalf("Compact() flags: compact=%v dense=%v", compact.Compact(), dense.Compact())
			}
			if compact.Nr() != net.Nr || compact.NumVCs() != vcs {
				t.Fatalf("compact table dims %d/%d, want %d/%d", compact.Nr(), compact.NumVCs(), net.Nr, vcs)
			}
			var path []int32
			var vcb, ports []uint8
			var next []uint32
			for src := 0; src < net.Nr; src++ {
				for dst := 0; dst < net.Nr; dst++ {
					wantPath, wantVCs := dense.Route(src, dst)
					wantPorts := dense.Ports(src, dst)
					wantNext := dense.NextWords(src, dst)
					path, vcb, ports, next = compact.AppendRoute(path[:0], vcb[:0], ports[:0], next[:0], src, dst)
					if len(path) != len(wantPath) {
						t.Fatalf("%d->%d: path len %d, want %d", src, dst, len(path), len(wantPath))
					}
					for i := range path {
						if path[i] != wantPath[i] {
							t.Fatalf("%d->%d: path[%d] = %d, want %d", src, dst, i, path[i], wantPath[i])
						}
					}
					if len(vcb) != len(wantVCs) || len(ports) != len(wantPorts) || len(next) != len(wantNext) {
						t.Fatalf("%d->%d: vcs/ports/next lens %d/%d/%d, want %d/%d/%d",
							src, dst, len(vcb), len(ports), len(next), len(wantVCs), len(wantPorts), len(wantNext))
					}
					for i := range vcb {
						if vcb[i] != wantVCs[i] {
							t.Fatalf("%d->%d: vc[%d] = %d, want %d", src, dst, i, vcb[i], wantVCs[i])
						}
						if ports[i] != wantPorts[i] {
							t.Fatalf("%d->%d: port[%d] = %d, want %d", src, dst, i, ports[i], wantPorts[i])
						}
					}
					for i := range next {
						if next[i] != wantNext[i] {
							t.Fatalf("%d->%d: next[%d] = %#x, want %#x", src, dst, i, next[i], wantNext[i])
						}
					}
				}
			}
		})
	}
}

// TestCompactPathHelpers pins the AppendPath/AppendPathTail walks and the
// mode accessors on a compact table against the dense equivalents.
func TestCompactPathHelpers(t *testing.T) {
	net := snNet(t, 5, 4, core.LayoutSubgroup)
	dense, err := Compile(net.Nr, &MinimalRouting{P: NewMinimal(net), VCs: 2})
	if err != nil {
		t.Fatal(err)
	}
	compact, err := CompileCompact(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !compact.HasPorts() {
		t.Fatal("compact table must report HasPorts (ports ride in AppendRoute)")
	}
	if got, want := compact.Pairs(), net.Nr*net.Nr; got != want {
		t.Fatalf("Pairs() = %d, want %d", got, want)
	}
	for src := 0; src < net.Nr; src++ {
		for dst := 0; dst < net.Nr; dst++ {
			want := dense.AppendPath(nil, src, dst)
			got := compact.AppendPath(nil, src, dst)
			wantTail := dense.AppendPathTail([]int{-7}, src, dst)
			gotTail := compact.AppendPathTail([]int{-7}, src, dst)
			if len(got) != len(want) || len(gotTail) != len(wantTail) {
				t.Fatalf("%d->%d: lens %d/%d, want %d/%d", src, dst, len(got), len(gotTail), len(want), len(wantTail))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%d->%d: AppendPath[%d] = %d, want %d", src, dst, i, got[i], want[i])
				}
			}
			for i := range gotTail {
				if gotTail[i] != wantTail[i] {
					t.Fatalf("%d->%d: AppendPathTail[%d] = %d, want %d", src, dst, i, gotTail[i], wantTail[i])
				}
			}
		}
	}
}

// TestCompactMemBytes pins the compact footprint at one byte per pair (plus
// nothing else that scales with nr^2) and checks the dense/compact ratio on
// a real SN instance — the compression that brings the paper's 100k-endpoint
// tables under a 256 MiB budget.
func TestCompactMemBytes(t *testing.T) {
	net := snNet(t, 5, 4, core.LayoutSubgroup)
	dense, err := Compile(net.Nr, &MinimalRouting{P: NewMinimal(net), VCs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.CompilePorts(net.Adj); err != nil {
		t.Fatal(err)
	}
	compact, err := CompileCompact(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs := int64(net.Nr) * int64(net.Nr)
	if got := compact.MemBytes(); got != pairs {
		t.Fatalf("compact MemBytes = %d, want %d (one byte per pair)", got, pairs)
	}
	if dense.MemBytes() < 12*pairs {
		t.Fatalf("dense MemBytes = %d, below its %d offset floor?", dense.MemBytes(), 12*pairs)
	}
	// The acceptance arithmetic for the 100k-endpoint preset (q=79 SN:
	// 2*79^2 = 12482 routers): dense floor over 1.5 GiB, compact under
	// 256 MiB.
	const nr100k = 12482
	denseFloor := int64(nr100k) * int64(nr100k) * 12
	compactSize := int64(nr100k) * int64(nr100k)
	if denseFloor <= 1<<30 {
		t.Fatalf("dense floor %d unexpectedly under 1 GiB", denseFloor)
	}
	if compactSize >= 256<<20 {
		t.Fatalf("compact size %d not under 256 MiB", compactSize)
	}
}

// TestEstimateDenseBytesExact pins the BFS distance census against the real
// interned footprint: on connected networks the estimate must equal
// Compile+CompilePorts' MemBytes to the byte. A long-path topology (an
// 8x9 torus, the shape of the 10k-endpoint scale baselines) rides along to
// cover the regime where path bytes dwarf the nr^2 x 12 offset floor —
// the case the compact auto-selection exists for.
func TestEstimateDenseBytesExact(t *testing.T) {
	nets := compactNets(t)
	nets["t2d"] = topo.Torus2D(8, 9, 1)
	for name, net := range nets {
		net := net
		t.Run(name, func(t *testing.T) {
			dense, err := Compile(net.Nr, &MinimalRouting{P: NewMinimal(net), VCs: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := dense.CompilePorts(net.Adj); err != nil {
				t.Fatal(err)
			}
			got := EstimateDenseBytes(net)
			if want := dense.MemBytes(); got != want {
				t.Fatalf("EstimateDenseBytes = %d, want exact dense MemBytes %d", got, want)
			}
			floor := int64(net.Nr) * int64(net.Nr) * 12
			if got <= floor {
				t.Fatalf("estimate %d not above the %d offset floor — census lost the path bytes", got, floor)
			}
		})
	}
}

// TestCompactRejectsViews verifies the dense-view entry points fail loudly on
// a compact table instead of silently misrouting.
func TestCompactRejectsViews(t *testing.T) {
	net := topo.FBF(3, 3, 1)
	compact, err := CompileCompact(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := compact.CompilePorts(net.Adj); err == nil {
		t.Fatal("CompilePorts on a compact table must error")
	}
	if compact.Ports(0, 1) != nil || compact.NextWords(0, 1) != nil {
		t.Fatal("Ports/NextWords views must be nil on a compact table")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Route on a compact table must panic")
		}
	}()
	compact.Route(0, 1)
}

// TestCompactSelfAndBounds pins the degenerate pairs: src == dst
// reconstructs the single-router path with an immediate eject word.
func TestCompactSelfAndBounds(t *testing.T) {
	net := topo.FBF(3, 3, 1)
	compact, err := CompileCompact(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	path, vcs, ports, next := compact.AppendRoute(nil, nil, nil, nil, 4, 4)
	if len(path) != 1 || path[0] != 4 || len(vcs) != 0 || len(ports) != 0 {
		t.Fatalf("self route: path %v vcs %v ports %v", path, vcs, ports)
	}
	if len(next) != 1 || next[0] != NextEject {
		t.Fatalf("self route next = %v, want [NextEject]", next)
	}
	if NextEject != math.MaxUint32 {
		t.Fatalf("NextEject = %#x", uint32(NextEject))
	}
}
