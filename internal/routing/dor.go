// Dimension-ordered routing for meshes, tori (with dateline VCs) and the
// XY-phase routing used by flattened butterflies and their partitioned
// variant. All builders validate their paths against the adjacency at
// construction time, so a mismatch with the topology constructors fails
// loudly.

package routing

import (
	"fmt"

	"repro/internal/topo"
)

// dorMesh routes XY on an rx x ry mesh with row-major router indices.
type dorMesh struct {
	net    *topo.Network
	rx, ry int
	vcs    int
}

// NewDORMesh builds XY dimension-order routing for a mesh built by
// topo.Mesh2D. XY routing on a mesh is deadlock-free with any VC count.
func NewDORMesh(net *topo.Network, rx, ry, vcs int) (PathBuilder, error) {
	d := &dorMesh{net: net, rx: rx, ry: ry, vcs: vcs}
	if err := spotCheck(net, d); err != nil {
		return nil, fmt.Errorf("routing: mesh %dx%d: %v", rx, ry, err)
	}
	return d, nil
}

func (d *dorMesh) Route(src, dst int) ([]int, []int) {
	x, y := src%d.rx, src/d.rx
	dx, dy := dst%d.rx, dst/d.rx
	path := []int{src}
	for x != dx {
		x += sign(dx - x)
		path = append(path, y*d.rx+x)
	}
	for y != dy {
		y += sign(dy - y)
		path = append(path, y*d.rx+x)
	}
	// XY on a mesh is acyclic; spread hops across VCs round-robin.
	vcs := make([]int, len(path)-1)
	for i := range vcs {
		vcs[i] = i % d.vcs
	}
	return path, vcs
}

func (d *dorMesh) NumVCs() int { return d.vcs }

// dorTorus routes XY on a torus, taking the ring direction with the fewest
// hops and switching to the second VC class after crossing the dateline
// (wrap link) in either dimension.
type dorTorus struct {
	net    *topo.Network
	rx, ry int
	vcs    int
}

// NewDORTorus builds dateline XY routing for a torus built by topo.Torus2D.
// It requires at least 2 VCs.
func NewDORTorus(net *topo.Network, rx, ry, vcs int) (PathBuilder, error) {
	if vcs < 2 {
		return nil, fmt.Errorf("routing: torus dateline routing needs >= 2 VCs, got %d", vcs)
	}
	d := &dorTorus{net: net, rx: rx, ry: ry, vcs: vcs}
	if err := spotCheck(net, d); err != nil {
		return nil, fmt.Errorf("routing: torus %dx%d: %v", rx, ry, err)
	}
	return d, nil
}

func (d *dorTorus) Route(src, dst int) ([]int, []int) {
	x, y := src%d.rx, src/d.rx
	dx, dy := dst%d.rx, dst/d.rx
	path := []int{src}
	var wrapped []bool // per hop: have we crossed a dateline yet
	crossed := false
	move := func(cur, target, n int) []int {
		// Shortest ring direction; positive wins ties.
		var steps []int
		fwd := ((target-cur)%n + n) % n
		bwd := n - fwd
		dir := 1
		count := fwd
		if bwd < fwd {
			dir = -1
			count = bwd
		}
		for i := 0; i < count; i++ {
			next := ((cur+dir)%n + n) % n
			if (cur == n-1 && next == 0) || (cur == 0 && next == n-1) {
				crossed = true
			}
			cur = next
			steps = append(steps, cur)
		}
		return steps
	}
	for _, nx := range move(x, dx, d.rx) {
		x = nx
		path = append(path, y*d.rx+x)
		wrapped = append(wrapped, crossed)
	}
	// X and Y channels are disjoint resources, so each dimension has its own
	// dateline; reset the crossing flag for the Y phase.
	crossed = false
	for _, ny := range move(y, dy, d.ry) {
		y = ny
		path = append(path, y*d.rx+x)
		wrapped = append(wrapped, crossed)
	}
	vcs := make([]int, len(path)-1)
	for i := range vcs {
		if wrapped[i] {
			vcs[i] = 1
		}
	}
	return path, vcs
}

func (d *dorTorus) NumVCs() int { return d.vcs }

// xyFBF routes row-first on a flattened butterfly: one hop to the
// destination column, one hop to the destination row.
type xyFBF struct {
	net    *topo.Network
	cx, cy int
	vcs    int
}

// NewXYFBF builds XY routing for an FBF built by topo.FBF.
func NewXYFBF(net *topo.Network, cx, cy, vcs int) (PathBuilder, error) {
	d := &xyFBF{net: net, cx: cx, cy: cy, vcs: vcs}
	if err := spotCheck(net, d); err != nil {
		return nil, fmt.Errorf("routing: fbf %dx%d: %v", cx, cy, err)
	}
	return d, nil
}

func (d *xyFBF) Route(src, dst int) ([]int, []int) {
	x, y := src%d.cx, src/d.cx
	dx, dy := dst%d.cx, dst/d.cx
	path := []int{src}
	if x != dx {
		path = append(path, y*d.cx+dx)
	}
	if y != dy {
		path = append(path, dy*d.cx+dx)
	}
	return path, AscendingVCs(len(path)-1, d.vcs)
}

func (d *xyFBF) NumVCs() int { return d.vcs }

// xyPFBF routes the partitioned FBF hierarchically: X phase (local column
// adjust, then partition crossing), then Y phase (local row adjust, then
// partition crossing). VC class 0 covers the X phase and 1 the Y phase,
// which keeps the dependency graph acyclic.
type xyPFBF struct {
	net            *topo.Network
	px, py, sx, sy int
	vcs            int
}

// NewXYPFBF builds hierarchical XY routing for a PFBF built by topo.PFBF.
// It requires at least 2 VCs.
func NewXYPFBF(net *topo.Network, px, py, sx, sy, vcs int) (PathBuilder, error) {
	if vcs < 2 {
		return nil, fmt.Errorf("routing: pfbf routing needs >= 2 VCs, got %d", vcs)
	}
	d := &xyPFBF{net: net, px: px, py: py, sx: sx, sy: sy, vcs: vcs}
	if err := spotCheck(net, d); err != nil {
		return nil, fmt.Errorf("routing: pfbf %dx%d of %dx%d: %v", px, py, sx, sy, err)
	}
	return d, nil
}

func (d *xyPFBF) id(gx, gy, lx, ly int) int {
	return ((gy*d.px+gx)*d.sy+ly)*d.sx + lx
}

func (d *xyPFBF) split(r int) (gx, gy, lx, ly int) {
	lx = r % d.sx
	r /= d.sx
	ly = r % d.sy
	r /= d.sy
	gx = r % d.px
	gy = r / d.px
	return
}

func (d *xyPFBF) Route(src, dst int) ([]int, []int) {
	gx, gy, lx, ly := d.split(src)
	tgx, tgy, tlx, tly := d.split(dst)
	path := []int{src}
	var phases []int // 0 for X phase hops, 1 for Y phase hops
	// X phase: local column, then ring of partitions along X.
	if lx != tlx {
		lx = tlx
		path = append(path, d.id(gx, gy, lx, ly))
		phases = append(phases, 0)
	}
	for gx != tgx {
		gx = (gx + 1) % d.px
		path = append(path, d.id(gx, gy, lx, ly))
		phases = append(phases, 0)
	}
	// Y phase.
	if ly != tly {
		ly = tly
		path = append(path, d.id(gx, gy, lx, ly))
		phases = append(phases, 1)
	}
	for gy != tgy {
		gy = (gy + 1) % d.py
		path = append(path, d.id(gx, gy, lx, ly))
		phases = append(phases, 1)
	}
	vcs := make([]int, len(path)-1)
	copy(vcs, phases)
	return path, vcs
}

func (d *xyPFBF) NumVCs() int { return d.vcs }

func sign(x int) int {
	if x > 0 {
		return 1
	}
	if x < 0 {
		return -1
	}
	return 0
}

// spotCheck validates that every route produced by the builder uses only
// real links and terminates at the destination.
func spotCheck(net *topo.Network, b PathBuilder) error {
	for src := 0; src < net.Nr; src++ {
		for dst := 0; dst < net.Nr; dst++ {
			path, vcs := b.Route(src, dst)
			if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
				return fmt.Errorf("route %d->%d has bad endpoints %v", src, dst, path)
			}
			if len(vcs) != len(path)-1 {
				return fmt.Errorf("route %d->%d: %d vcs for %d hops", src, dst, len(vcs), len(path)-1)
			}
			if !PathValid(net, path) {
				return fmt.Errorf("route %d->%d uses a missing link: %v", src, dst, path)
			}
		}
	}
	return nil
}
