package routing

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
)

func snNet(t testing.TB, q, p int, l core.Layout) *topo.Network {
	t.Helper()
	s, err := core.New(core.Params{Q: q, P: p})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Network(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMinimalPathsSN(t *testing.T) {
	n := snNet(t, 5, 4, core.LayoutSubgroup)
	p := NewMinimal(n)
	for src := 0; src < n.Nr; src++ {
		for dst := 0; dst < n.Nr; dst++ {
			d := p.Dist(src, dst)
			if src == dst {
				if d != 0 {
					t.Fatalf("Dist(%d,%d) = %d, want 0", src, dst, d)
				}
				continue
			}
			if d < 1 || d > 2 {
				t.Fatalf("SN distance %d->%d = %d, want 1..2", src, dst, d)
			}
			path := p.MinPath(src, dst)
			if len(path) != d+1 {
				t.Fatalf("path %v has %d hops, want %d", path, len(path)-1, d)
			}
			if !PathValid(n, path) {
				t.Fatalf("invalid path %v", path)
			}
		}
	}
}

func TestMinimalDeterministic(t *testing.T) {
	n := snNet(t, 5, 4, core.LayoutSubgroup)
	p1 := NewMinimal(n)
	p2 := NewMinimal(n)
	for trial := 0; trial < 100; trial++ {
		src, dst := trial%n.Nr, (trial*7+3)%n.Nr
		a := p1.MinPath(src, dst)
		b := p2.MinPath(src, dst)
		if len(a) != len(b) {
			t.Fatal("non-deterministic path length")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("non-deterministic path")
			}
		}
	}
}

func TestValiantPath(t *testing.T) {
	n := snNet(t, 5, 1, core.LayoutSubgroup)
	p := NewMinimal(n)
	path := p.ValiantPath(0, 20, 40)
	if path[0] != 0 || path[len(path)-1] != 40 {
		t.Fatalf("bad endpoints: %v", path)
	}
	if !PathValid(n, path) {
		t.Fatalf("invalid valiant path %v", path)
	}
	// Must pass through the intermediate.
	found := false
	for _, r := range path {
		if r == 20 {
			found = true
		}
	}
	if !found {
		t.Errorf("valiant path %v skips intermediate 20", path)
	}
	// Degenerate cases.
	if got := p.ValiantPath(0, 0, 40); len(got) != p.Dist(0, 40)+1 {
		t.Error("mid==src should be minimal")
	}
}

func TestRandomIntermediate(t *testing.T) {
	n := snNet(t, 3, 1, core.LayoutBasic)
	p := NewMinimal(n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		mid := p.RandomIntermediate(rng, 2, 7)
		if mid == 2 || mid == 7 || mid < 0 || mid >= n.Nr {
			t.Fatalf("bad intermediate %d", mid)
		}
	}
}

func TestAscendingVCs(t *testing.T) {
	got := AscendingVCs(4, 2)
	want := []int{0, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendingVCs(4,2) = %v, want %v", got, want)
		}
	}
	if len(AscendingVCs(0, 2)) != 0 {
		t.Error("zero hops should give empty VC list")
	}
}

// checkBuilder exercises a PathBuilder over all pairs, verifying validity,
// minimality bound, and VC sanity.
func checkBuilder(t *testing.T, net *topo.Network, b PathBuilder, maxHops int) {
	t.Helper()
	p := NewMinimal(net)
	for src := 0; src < net.Nr; src++ {
		for dst := 0; dst < net.Nr; dst++ {
			path, vcs := b.Route(src, dst)
			if !PathValid(net, path) {
				t.Fatalf("invalid path %d->%d: %v", src, dst, path)
			}
			if path[len(path)-1] != dst {
				t.Fatalf("path %d->%d ends at %d", src, dst, path[len(path)-1])
			}
			if len(path)-1 > maxHops {
				t.Fatalf("path %d->%d uses %d hops, max %d", src, dst, len(path)-1, maxHops)
			}
			if min := p.Dist(src, dst); len(path)-1 != min {
				t.Fatalf("path %d->%d not minimal: %d vs %d", src, dst, len(path)-1, min)
			}
			for _, vc := range vcs {
				if vc < 0 || vc >= b.NumVCs() {
					t.Fatalf("vc %d out of range", vc)
				}
			}
		}
	}
}

func TestDORMesh(t *testing.T) {
	net := topo.Mesh2D(8, 8, 3)
	b, err := NewDORMesh(net, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBuilder(t, net, b, 14)
}

func TestDORTorus(t *testing.T) {
	net := topo.Torus2D(8, 8, 3)
	b, err := NewDORTorus(net, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBuilder(t, net, b, 8)
	// Dateline: a path crossing the X wrap must switch to VC1.
	// Router 7 -> router 1 goes 7->0->1 crossing the wrap.
	_, vcs := b.Route(7, 1)
	if vcs[len(vcs)-1] != 1 {
		t.Errorf("wrap-crossing path should end on VC1, got %v", vcs)
	}
	// A short path with no wrap stays on VC0.
	_, vcs = b.Route(0, 1)
	for _, vc := range vcs {
		if vc != 0 {
			t.Errorf("non-wrapping path should stay on VC0, got %v", vcs)
		}
	}
	if _, err := NewDORTorus(net, 8, 8, 1); err == nil {
		t.Error("torus routing with 1 VC should be rejected")
	}
}

func TestDORTorusOdd(t *testing.T) {
	net := topo.Torus2D(5, 3, 1)
	b, err := NewDORTorus(net, 5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBuilder(t, net, b, 3)
}

func TestXYFBF(t *testing.T) {
	net := topo.FBF(8, 8, 3)
	b, err := NewXYFBF(net, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBuilder(t, net, b, 2)
}

func TestXYPFBF(t *testing.T) {
	net := topo.PFBF(2, 2, 4, 4, 3)
	b, err := NewXYPFBF(net, 2, 2, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBuilder(t, net, b, 4)
	// X-phase hops use VC0, Y-phase hops VC1.
	_, vcs := b.Route(0, net.Nr-1)
	seenY := false
	for _, vc := range vcs {
		if vc == 1 {
			seenY = true
		} else if seenY {
			t.Fatalf("VC0 hop after VC1 phase: %v", vcs)
		}
	}
}

func TestXYPFBFSinglePartitionDim(t *testing.T) {
	net := topo.PFBF(2, 1, 5, 5, 4) // pfbf4
	b, err := NewXYPFBF(net, 2, 1, 5, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBuilder(t, net, b, 3)
}

func TestNewRoutingFor(t *testing.T) {
	sn := snNet(t, 3, 1, core.LayoutSubgroup)
	b, err := NewRoutingFor(sn, Kind{Class: ClassGeneric}, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkBuilder(t, sn, b, 2)

	mesh := topo.Mesh2D(4, 4, 1)
	if _, err := NewRoutingFor(mesh, Kind{Class: ClassMesh, RX: 4, RY: 4}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRoutingFor(mesh, Kind{Class: Class(99)}, 2); err == nil {
		t.Error("unknown class should fail")
	}
}

// TestMinimalRoutingBuilder: the generic builder produces min paths with
// ascending VCs for SN.
func TestMinimalRoutingBuilder(t *testing.T) {
	n := snNet(t, 5, 1, core.LayoutSubgroup)
	b := &MinimalRouting{P: NewMinimal(n), VCs: 2}
	path, vcs := b.Route(0, 49)
	if !PathValid(n, path) {
		t.Fatalf("invalid %v", path)
	}
	for i, vc := range vcs {
		want := i
		if want > 1 {
			want = 1
		}
		if vc != want {
			t.Fatalf("vcs = %v", vcs)
		}
	}
}

func BenchmarkNewMinimalSNL(b *testing.B) {
	s, err := core.New(core.Params{Q: 9, P: 8})
	if err != nil {
		b.Fatal(err)
	}
	n, _ := s.Network(core.LayoutGroup, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMinimal(n)
	}
}

func TestCountMinPathsFBF(t *testing.T) {
	// FBF: same row or column -> exactly 1 minimal path (direct link);
	// diagonal pairs -> exactly 2 (XY and YX).
	net := topo.FBF(4, 4, 1)
	p := NewMinimal(net)
	// Routers 0 (0,0) and 1 (1,0): same row.
	if got := p.CountMinPaths(0, 1); got != 1 {
		t.Errorf("same-row pairs should have 1 minimal path, got %d", got)
	}
	// Routers 0 (0,0) and 5 (1,1): diagonal.
	if got := p.CountMinPaths(0, 5); got != 2 {
		t.Errorf("diagonal pairs should have 2 minimal paths, got %d", got)
	}
	if got := p.CountMinPaths(3, 3); got != 1 {
		t.Errorf("self pair should count 1, got %d", got)
	}
}

func TestPathDiversityHistogram(t *testing.T) {
	net := topo.FBF(3, 3, 1)
	p := NewMinimal(net)
	hist := p.PathDiversity()
	pairs := 0
	for _, n := range hist {
		pairs += n
	}
	if pairs != 9*8 {
		t.Fatalf("histogram covers %d pairs, want 72", pairs)
	}
	// 3x3 FBF: each router has 4 same-row/col peers (1 path) and 4
	// diagonal peers (2 paths).
	if hist[1] != 36 || hist[2] != 36 {
		t.Errorf("histogram = %v, want 36 pairs each of 1 and 2 paths", hist)
	}
}

// TestSNPathDiversity documents a structural property of near-Moore-bound
// MMS graphs: for q=5 every router pair has EXACTLY one minimal path
// (non-adjacent pairs share exactly one common neighbour, like a Moore
// graph's μ=1). This is why the paper's adaptive-routing study (§6) uses
// non-minimal UGAL/Valiant paths for SN rather than minimal-adaptive
// schemes — there is no minimal diversity to exploit.
func TestSNPathDiversity(t *testing.T) {
	n := snNet(t, 5, 1, core.LayoutSubgroup)
	p := NewMinimal(n)
	if avg := p.AvgPathDiversity(); avg != 1.0 {
		t.Errorf("SN q=5 average path diversity = %.3f, want exactly 1 (μ=1)", avg)
	}
	// Adjacent pairs have exactly one minimal path.
	nb := n.Adj[0][0]
	if got := p.CountMinPaths(0, nb); got != 1 {
		t.Errorf("adjacent pair diversity = %d, want 1", got)
	}
	// FBF, by contrast, offers 2 minimal paths on diagonals — the basis of
	// its XY-ADAPT scheme.
	fbf := NewMinimal(topo.FBF(4, 4, 1))
	if avg := fbf.AvgPathDiversity(); avg <= 1.0 {
		t.Errorf("FBF average diversity = %.2f, want > 1", avg)
	}
}
