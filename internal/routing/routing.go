// Package routing computes the static routes used by the simulator. The
// paper evaluates static minimum routing computed with a shortest-path
// algorithm (§5.1) plus, for the §6 study, UGAL-style adaptive routing built
// from minimal and Valiant paths. Routes are source routes: a packet carries
// its full router path and a per-hop VC assignment chosen so that the
// network is deadlock-free (ascending VC classes for low-diameter networks,
// dimension order for meshes, datelines for tori).
//
// Static algorithms additionally compile into a RouteTable (table.go): the
// per-(src,dst) paths and VC assignments are interned once and borrowed by
// every packet, which removes route construction from the simulation hot
// path and lets campaigns share one immutable table across concurrent runs
// of the same (network, algorithm, VC count).
package routing

import (
	"fmt"
	"math/rand"

	"repro/internal/topo"
)

// Paths holds all-pairs shortest-path state for one network.
type Paths struct {
	net  *topo.Network
	dist [][]int16
	next [][]int32 // deterministic minimal next hop (lowest-index tie-break)
}

// NewMinimal builds all-pairs shortest paths by BFS from every destination.
// Ties are broken toward the lowest-numbered next hop, making routes
// deterministic as in the paper's Dijkstra-based setup.
func NewMinimal(net *topo.Network) *Paths {
	nr := net.Nr
	p := &Paths{
		net:  net,
		dist: make([][]int16, nr),
		next: make([][]int32, nr),
	}
	for i := range p.dist {
		p.dist[i] = make([]int16, nr)
		p.next[i] = make([]int32, nr)
	}
	queue := make([]int, 0, nr)
	for dst := 0; dst < nr; dst++ {
		for r := 0; r < nr; r++ {
			p.dist[r][dst] = -1
			p.next[r][dst] = -1
		}
		p.dist[dst][dst] = 0
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range net.Adj[u] {
				if p.dist[v][dst] < 0 {
					p.dist[v][dst] = p.dist[u][dst] + 1
					queue = append(queue, v)
				}
			}
		}
		// Deterministic next hops: lowest-index neighbour that decreases
		// distance.
		for r := 0; r < nr; r++ {
			if r == dst {
				continue
			}
			for _, v := range net.Adj[r] {
				if p.dist[v][dst] == p.dist[r][dst]-1 {
					p.next[r][dst] = int32(v)
					break
				}
			}
		}
	}
	return p
}

// Dist returns the hop distance between routers a and b (-1 if unreachable).
func (p *Paths) Dist(a, b int) int { return int(p.dist[a][b]) }

// MinPath returns the deterministic minimal router path from src to dst,
// inclusive of both endpoints.
func (p *Paths) MinPath(src, dst int) []int {
	if p.dist[src][dst] < 0 {
		return nil
	}
	path := make([]int, 0, p.dist[src][dst]+1)
	cur := src
	path = append(path, cur)
	for cur != dst {
		cur = int(p.next[cur][dst])
		path = append(path, cur)
	}
	return path
}

// NextHops returns every neighbour of r on a minimal path to dst (used by
// adaptive schemes that pick among minimal ports).
func (p *Paths) NextHops(r, dst int) []int {
	if r == dst {
		return nil
	}
	var out []int
	for _, v := range p.net.Adj[r] {
		if p.dist[v][dst] == p.dist[r][dst]-1 {
			out = append(out, v)
		}
	}
	return out
}

// ValiantPath returns the concatenation of minimal paths src->mid->dst
// (without duplicating mid). If mid equals src or dst it degenerates to the
// minimal path.
func (p *Paths) ValiantPath(src, mid, dst int) []int {
	if mid == src || mid == dst {
		return p.MinPath(src, dst)
	}
	a := p.MinPath(src, mid)
	b := p.MinPath(mid, dst)
	if a == nil || b == nil {
		return nil
	}
	return append(a, b[1:]...)
}

// RandomIntermediate picks a Valiant intermediate router uniformly,
// excluding src and dst.
func (p *Paths) RandomIntermediate(rng *rand.Rand, src, dst int) int {
	nr := p.net.Nr
	if nr <= 2 {
		return src
	}
	for {
		mid := rng.Intn(nr)
		if mid != src && mid != dst {
			return mid
		}
	}
}

// PathValid reports whether consecutive routers in the path are adjacent.
func PathValid(net *topo.Network, path []int) bool {
	for i := 1; i < len(path); i++ {
		if !net.Connected(path[i-1], path[i]) {
			return false
		}
	}
	return true
}

// AscendingVCs returns the deadlock-free VC assignment used by the paper for
// SN (§4.3): VC0 on the first hop, VC1 on the second, capped at numVCs-1 for
// longer (e.g. Valiant) paths. With hop classes that never decrease, the
// channel dependency graph is acyclic provided path length <= numVCs; for
// longer paths the cap is safe only on topologies whose capped class is
// itself acyclic (diameter-2 networks and XY-ordered grids).
func AscendingVCs(hops, numVCs int) []int {
	out := make([]int, hops)
	for i := range out {
		vc := i
		if vc >= numVCs {
			vc = numVCs - 1
		}
		out[i] = vc
	}
	return out
}

// PathBuilder produces a router path and per-hop VCs for one packet.
type PathBuilder interface {
	// Route returns the router path (inclusive of src and dst routers) and
	// the VC used on each hop (len(path)-1 entries).
	Route(src, dst int) (path []int, vcs []int)
	// NumVCs returns how many VCs the builder's assignments require.
	NumVCs() int
}

// MinimalRouting is the default PathBuilder: deterministic minimal paths
// with ascending VCs. Suitable as-is for diameter-2 networks (SN, FBF) and
// any topology whose minimal deterministic routes are acyclic.
type MinimalRouting struct {
	P   *Paths
	VCs int
}

// Route implements PathBuilder.
func (m *MinimalRouting) Route(src, dst int) ([]int, []int) {
	path := m.P.MinPath(src, dst)
	return path, AscendingVCs(len(path)-1, m.VCs)
}

// NumVCs implements PathBuilder.
func (m *MinimalRouting) NumVCs() int { return m.VCs }

// NewRoutingFor picks the deadlock-free PathBuilder appropriate to a
// network constructed by this repository: DOR for meshes, dateline DOR for
// tori, XY for FBF/PFBF, and generic minimal+ascending-VC for everything
// else (SN, Clos, Dragonfly).
func NewRoutingFor(net *topo.Network, kind Kind, vcs int) (PathBuilder, error) {
	switch kind.Class {
	case ClassMesh:
		return NewDORMesh(net, kind.RX, kind.RY, vcs)
	case ClassTorus:
		return NewDORTorus(net, kind.RX, kind.RY, vcs)
	case ClassFBF:
		return NewXYFBF(net, kind.RX, kind.RY, vcs)
	case ClassPFBF:
		return NewXYPFBF(net, kind.PX, kind.PY, kind.RX, kind.RY, vcs)
	case ClassGeneric:
		return &MinimalRouting{P: NewMinimal(net), VCs: vcs}, nil
	}
	return nil, fmt.Errorf("routing: unknown topology class %v", kind.Class)
}

// Class enumerates topology families that need dedicated deadlock-free
// routing.
type Class int

// Topology classes understood by NewRoutingFor.
const (
	ClassGeneric Class = iota
	ClassMesh
	ClassTorus
	ClassFBF
	ClassPFBF
)

// Kind names the topology family and its grid parameters, as needed to
// derive dimension-ordered routes from router indices.
type Kind struct {
	Class  Class
	RX, RY int // router grid (or per-partition grid for PFBF)
	PX, PY int // partition grid (PFBF only)
}
