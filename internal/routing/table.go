// Compiled route tables. A RouteTable is the flattened, interned form of a
// PathBuilder: per-(src,dst) router paths and VC assignments stored in two
// shared backing arrays, handed out as sub-slice views so the simulator's
// packets borrow their route instead of copying it. Compiled (eager) tables
// are immutable and safe to share across any number of concurrent
// simulations — the campaign engine builds one per distinct
// (network, routing, VCs) combination and reuses it for every point.

package routing

import "fmt"

// RouteTable holds precomputed (or deterministically memoized) routes for
// one network and one PathBuilder. Paths returned by Route are views into
// interned storage and must be treated as read-only by callers.
type RouteTable struct {
	nr  int
	vcs int
	// pb is retained only by memoizing tables; Compile drops it, freezing
	// the table.
	pb PathBuilder

	// Interned storage: every compiled path's routers and per-hop VCs,
	// concatenated. off/voff/plen index it per (src*nr+dst) pair; off < 0
	// marks a pair not yet compiled (memoizing tables only).
	routers []int32
	hopVCs  []uint8
	off     []int32
	voff    []int32
	plen    []int32

	// ports holds the per-hop output-port indices, aligned element for
	// element with hopVCs (same voff indexing): ports[voff+i] is the output
	// port at path[i] leading to path[i+1]. Filled by CompilePorts; empty
	// until then. Precomputing the ports moves the simulator's per-flit
	// adjacency binary search out of the switch-allocation hot path.
	ports []uint8

	// nextw holds the per-hop next-hop words (NextWord encoding: output
	// port and the port*vcs+vc slot offset in one uint32), aligned with
	// routers (same off indexing, plen entries per pair) and terminated by
	// NextEject at each path's final hop. Filled by CompilePorts. The
	// simulator's switch allocation arbitrates on these words alone — one
	// dense load per probe, no packet or table access until a flit moves.
	nextw []uint32

	// Compact mode (see compact.go): next-hop-only storage, one output-port
	// byte per (src,dst) pair, with the network adjacency borrowed for the
	// reconstruction walks. Mutually exclusive with the interned storage
	// above: a compact table has no off/voff/plen arrays at all — that is
	// the point — and serves routes via AppendRoute instead of views.
	cnh  []uint8 // [src*nr+dst] output port at src toward dst; cnhNone if none
	cadj [][]int // borrowed adjacency (sorted rows), for next-hop resolution
}

// NextEject is the next-hop word of a path's final hop: the router visit is
// an ejection, not a traversal. Real encodings never collide with it (or
// with any sentinel down to NextEject-255: ports are at most 254 and slots
// at most 254*63+62, so a real word is at most 0x00fe3efe).
const NextEject = ^uint32(0)

// NextWord encodes one hop's switch-allocation decision: the output port in
// bits 16..23 (for output-conflict masking) and the port*vcs+vc slot offset
// in bits 0..15 (the per-VC output index relative to the router's block in
// the simulator's flattened state).
//
//sim:hot
func NextWord(port, vc, vcs int) uint32 {
	return uint32(port)<<16 | uint32(port*vcs+vc)
}

func newTable(nr int, pb PathBuilder) *RouteTable {
	t := &RouteTable{
		nr:   nr,
		vcs:  pb.NumVCs(),
		pb:   pb,
		off:  make([]int32, nr*nr),
		voff: make([]int32, nr*nr),
		plen: make([]int32, nr*nr),
	}
	for i := range t.off {
		t.off[i] = -1
	}
	return t
}

// Compile eagerly builds the full nr x nr route table from the builder. The
// returned table is immutable: it never touches the builder again, and
// concurrent readers need no synchronisation.
func Compile(nr int, pb PathBuilder) (*RouteTable, error) {
	t := newTable(nr, pb)
	for src := 0; src < nr; src++ {
		for dst := 0; dst < nr; dst++ {
			if err := t.fill(src, dst); err != nil {
				return nil, err
			}
		}
	}
	t.pb = nil // frozen
	return t, nil
}

// NewMemoTable builds a lazily filled table: each (src,dst) pair is compiled
// on first use and reused afterwards. Because the builder is deterministic,
// the memoized route is identical to an eagerly compiled one. A memoizing
// table mutates itself on lookup and is therefore NOT safe for concurrent
// use; share only tables built with Compile.
func NewMemoTable(nr int, pb PathBuilder) *RouteTable {
	return newTable(nr, pb)
}

func (t *RouteTable) fill(src, dst int) error {
	path, vcs := t.pb.Route(src, dst)
	if len(vcs) != len(path)-1 {
		return fmt.Errorf("routing: table compile %d->%d: %d vcs for %d hops",
			src, dst, len(vcs), len(path)-1)
	}
	pair := src*t.nr + dst
	t.off[pair] = int32(len(t.routers))
	t.voff[pair] = int32(len(t.hopVCs))
	t.plen[pair] = int32(len(path))
	for _, r := range path {
		t.routers = append(t.routers, int32(r))
	}
	for _, v := range vcs {
		t.hopVCs = append(t.hopVCs, uint8(v))
	}
	return nil
}

// Route returns the router path (inclusive of both endpoints) and per-hop VC
// assignment for src->dst as borrowed, read-only views into the table's
// interned storage. On a memoizing table a first-time pair is compiled on
// the spot; compile errors panic there, since the eager path has already
// validated the builder in every shared configuration.
func (t *RouteTable) Route(src, dst int) ([]int32, []uint8) {
	if t.cnh != nil {
		panic("routing: Route on a compact table (reconstruct with AppendRoute)")
	}
	pair := src*t.nr + dst
	if t.off[pair] < 0 {
		if t.pb == nil {
			panic("routing: frozen RouteTable missing a pair")
		}
		if err := t.fill(src, dst); err != nil {
			panic(err)
		}
	}
	o, n := t.off[pair], t.plen[pair]
	vo := t.voff[pair]
	hops := n - 1
	if hops < 0 {
		hops = 0
	}
	return t.routers[o : o+n : o+n], t.hopVCs[vo : vo+hops : vo+hops]
}

// CompilePorts resolves every compiled hop to its output-port index in the
// sender's (sorted) adjacency row, making Ports views available. It may only
// be called on a frozen table (built with Compile): a memoizing table keeps
// compiling new pairs, whose port entries would be missing. The adjacency
// must be the network the table was compiled for; ports are uint8, so router
// radixes beyond 255 are rejected (no supported topology comes close).
func (t *RouteTable) CompilePorts(adj [][]int) error {
	if t.cnh != nil {
		return fmt.Errorf("routing: CompilePorts on a compact table (its ports come from AppendRoute)")
	}
	if t.pb != nil {
		return fmt.Errorf("routing: CompilePorts requires a frozen table (use Compile, not NewMemoTable)")
	}
	if len(adj) != t.nr {
		return fmt.Errorf("routing: CompilePorts adjacency has %d routers, table compiled for %d", len(adj), t.nr)
	}
	for r := range adj {
		if len(adj[r]) > 255 {
			return fmt.Errorf("routing: router %d radix %d exceeds the 255-port limit", r, len(adj[r]))
		}
	}
	ports := make([]uint8, len(t.hopVCs))
	nextw := make([]uint32, len(t.routers))
	for pair, o := range t.off {
		if o < 0 {
			continue
		}
		n, vo := int(t.plen[pair]), int(t.voff[pair])
		path := t.routers[o : int(o)+n]
		for i := 0; i+1 < n; i++ {
			pos, ok := searchAdj(adj[path[i]], int(path[i+1]))
			if !ok {
				return fmt.Errorf("routing: compiled route %d->%d uses missing link %d->%d",
					pair/t.nr, pair%t.nr, path[i], path[i+1])
			}
			ports[vo+i] = uint8(pos)
			nextw[int(o)+i] = NextWord(pos, int(t.hopVCs[vo+i]), t.vcs)
		}
		if n > 0 {
			nextw[int(o)+n-1] = NextEject
		}
	}
	t.ports = ports
	t.nextw = nextw
	return nil
}

// searchAdj binary-searches a sorted adjacency row for nxt, returning its
// position (the output-port index).
func searchAdj(adj []int, nxt int) (int, bool) {
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < nxt {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(adj) || adj[lo] != nxt {
		return 0, false
	}
	return lo, true
}

// HasPorts reports whether per-hop output ports are available — CompilePorts
// has run (dense tables) or the table is compact (ports ride in AppendRoute).
func (t *RouteTable) HasPorts() bool { return t.ports != nil || t.cnh != nil }

// Ports returns the per-hop output ports for src->dst (len(path)-1 entries,
// aligned with the VC view from Route) as a borrowed read-only view, or nil
// if CompilePorts has not run. Pairs are never compiled here — callers pair
// it with Route, which does.
func (t *RouteTable) Ports(src, dst int) []uint8 {
	if t.ports == nil {
		return nil
	}
	pair := src*t.nr + dst
	vo, hops := t.voff[pair], t.plen[pair]-1
	if hops < 0 {
		hops = 0
	}
	return t.ports[vo : vo+hops : vo+hops]
}

// NextWords returns the per-hop next-hop words for src->dst (len(path)
// entries, NextEject-terminated) as a borrowed read-only view, or nil if
// CompilePorts has not run. Pairs are never compiled here — callers pair it
// with Route, which does.
func (t *RouteTable) NextWords(src, dst int) []uint32 {
	if t.nextw == nil {
		return nil
	}
	pair := src*t.nr + dst
	o, n := t.off[pair], t.plen[pair]
	return t.nextw[o : o+n : o+n]
}

// NumVCs returns the VC count of the compiled builder.
func (t *RouteTable) NumVCs() int { return t.vcs }

// Nr returns the router count the table was compiled for.
func (t *RouteTable) Nr() int { return t.nr }

// MemBytes returns the table's resident footprint: the interned path,
// VC and port bytes plus the three per-pair offset arrays. Memory-budget
// enforcement (sim.Config.MemBudgetBytes) uses it to account a shared
// compiled table against a run's budget without reflection.
func (t *RouteTable) MemBytes() int64 {
	return int64(len(t.routers))*4 + int64(len(t.hopVCs)) + int64(len(t.ports)) +
		int64(len(t.nextw))*4 + int64(len(t.cnh)) +
		int64(len(t.off))*4 + int64(len(t.voff))*4 + int64(len(t.plen))*4
}

// Pairs returns the number of compiled (src,dst) pairs (all nr^2 for an
// eager table).
func (t *RouteTable) Pairs() int {
	if t.cnh != nil {
		return t.nr * t.nr // compact tables cover every pair by construction
	}
	n := 0
	for _, o := range t.off {
		if o >= 0 {
			n++
		}
	}
	return n
}

// AppendPath appends the src->dst router path to buf and returns it —
// the allocation-free counterpart of Paths.MinPath for adaptive policies
// reusing table candidates.
func (t *RouteTable) AppendPath(buf []int, src, dst int) []int {
	if t.cnh != nil {
		return t.appendPathOnly(buf, src, dst)
	}
	path, _ := t.Route(src, dst)
	for _, r := range path {
		buf = append(buf, int(r))
	}
	return buf
}

// AppendPathTail appends the src->dst path without its first router (used to
// concatenate Valiant segments without duplicating the intermediate).
func (t *RouteTable) AppendPathTail(buf []int, src, dst int) []int {
	if t.cnh != nil {
		n := len(buf)
		buf = t.appendPathOnly(buf, src, dst)
		if len(buf) > n {
			copy(buf[n:], buf[n+1:])
			buf = buf[:len(buf)-1]
		}
		return buf
	}
	path, _ := t.Route(src, dst)
	for _, r := range path[1:] {
		buf = append(buf, int(r))
	}
	return buf
}

// AppendAscendingVCs appends the paper's ascending VC assignment for the
// given hop count to buf — the allocation-free form of AscendingVCs.
func AppendAscendingVCs(buf []int, hops, numVCs int) []int {
	for i := 0; i < hops; i++ {
		vc := i
		if vc >= numVCs {
			vc = numVCs - 1
		}
		buf = append(buf, vc)
	}
	return buf
}
