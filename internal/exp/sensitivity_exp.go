// Sensitivity and robustness analyses summarised in §5.5, plus the link-
// failure resilience study motivated by §2.1's expander argument. These are
// the "further analysis" experiments the paper reports as one-line
// conclusions; here each gets a full table, with the simulation points of
// each study batched through the campaign engine.

package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topo"
)

// SensSizes reproduces §5.5 "Other Network Sizes": SN versus torus and FBF
// at N in {588, 686, 1024} — latency at a moderate RND load plus total area.
func SensSizes(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:    "sens-sizes",
		Title: "Other network sizes (§5.5): RND latency and area",
		Header: []string{"N", "network", "k'", "latency_cycles", "latency_ns",
			"area_cm2"},
	}
	type entry struct {
		n     int
		specs []string
	}
	cases := []entry{
		{588, []string{"sn_subgr_588", "t2d_588", "fbf_588"}},
		{686, []string{"sn_subgr_686", "t2d_686", "fbf_686"}},
		{1024, []string{"sn_subgr_1024", "t2d_1024", "fbf_1024"}},
	}
	if o.Quick {
		cases = cases[2:]
	}
	t45 := power.Tech45()
	type rowMeta struct {
		n    int
		name string
		spec NetSpec
	}
	var rows []rowMeta
	var points []RunSpec
	for _, c := range cases {
		for _, name := range c.specs {
			spec, err := buildSensNet(name)
			if err != nil {
				panic(err)
			}
			rows = append(rows, rowMeta{c.n, name, spec})
			points = append(points, RunSpec{Spec: spec, Pattern: "RND", Rate: 0.06, SMART: true, Opts: o})
		}
	}
	results := MustRunBatch(ctx, o, points)
	for i, r := range rows {
		res := results[i]
		area := power.Area(r.spec.Net, bufferFor(r.spec.Net, true), 2, t45).Total()
		t.AddRowF(r.n, r.name, r.spec.Net.NetworkRadix(), res.AvgLatency,
			res.AvgLatency*r.spec.Net.CycleTimeNs, area)
	}
	return []*stats.Table{t}
}

// buildSensNet extends BuildNet with the §5.5 torus/FBF sizes.
func buildSensNet(name string) (NetSpec, error) {
	switch name {
	case "t2d_588":
		n := topo.Torus2D(14, 7, 6)
		n.Name = name
		return NetSpec{Name: name, Net: n, Kind: routing.Kind{Class: routing.ClassTorus, RX: 14, RY: 7}}, nil
	case "fbf_588":
		n := topo.FBF(14, 7, 6)
		n.Name = name
		return NetSpec{Name: name, Net: n, Kind: routing.Kind{Class: routing.ClassFBF, RX: 14, RY: 7}}, nil
	case "t2d_686":
		n := topo.Torus2D(14, 7, 7)
		n.Name = name
		return NetSpec{Name: name, Net: n, Kind: routing.Kind{Class: routing.ClassTorus, RX: 14, RY: 7}}, nil
	case "fbf_686":
		n := topo.FBF(14, 7, 7)
		n.Name = name
		return NetSpec{Name: name, Net: n, Kind: routing.Kind{Class: routing.ClassFBF, RX: 14, RY: 7}}, nil
	case "t2d_1024":
		n := topo.Torus2D(16, 8, 8)
		n.Name = name
		return NetSpec{Name: name, Net: n, Kind: routing.Kind{Class: routing.ClassTorus, RX: 16, RY: 8}}, nil
	case "fbf_1024":
		n := topo.FBF(16, 8, 8)
		n.Name = name
		return NetSpec{Name: name, Net: n, Kind: routing.Kind{Class: routing.ClassFBF, RX: 16, RY: 8}}, nil
	}
	return BuildNet(name)
}

// SensConcentration reproduces §5.5 "Concentration": SN with q=8 across the
// Table 2 concentration range (p = 4..8), showing the node-density vs
// contention tradeoff (κ in §2.1).
func SensConcentration(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:    "sens-conc",
		Title: "Concentration sweep, SN q=8 (§5.5 / §2.1 κ tradeoff)",
		Header: []string{"p", "N", "subscription_%", "latency_cycles",
			"throughput", "saturated"},
	}
	ps := []int{4, 5, 6, 7, 8}
	if o.Quick {
		ps = []int{4, 6, 8}
	}
	var specs []NetSpec
	var points []RunSpec
	for _, p := range ps {
		s, err := core.New(core.Params{Q: 8, P: p})
		if err != nil {
			panic(err)
		}
		net, err := s.Network(core.LayoutSubgroup, 1)
		if err != nil {
			panic(err)
		}
		net.Name = fmt.Sprintf("sn_q8_p%d", p)
		spec := NetSpec{Name: net.Name, Net: net, Kind: routing.Kind{Class: routing.ClassGeneric}}
		specs = append(specs, spec)
		points = append(points, RunSpec{Spec: spec, Pattern: "RND", Rate: 0.24, SMART: true, Opts: o})
	}
	results := MustRunBatch(ctx, o, points)
	for i, p := range ps {
		res := results[i]
		net := specs[i].Net
		t.AddRowF(p, net.N(), float64(p)/6*100, res.AvgLatency, res.Throughput, res.Saturated)
	}
	return []*stats.Table{t}
}

// SensCycleTime reproduces the §5.1 cycle-time accounting: the same RND run
// reported in cycles and in nanoseconds under per-topology versus uniform
// clocks, showing which conclusions depend on the clock model.
func SensCycleTime(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:    "sens-cycle",
		Title: "Cycle-time sensitivity: RND load 0.06, N in {192,200} (§5.1)",
		Header: []string{"network", "latency_cycles", "cycle_ns",
			"latency_ns", "latency_ns_uniform_0.5"},
	}
	names := []string{"cm3", "t2d3", "pfbf3", "sn_subgr_200", "fbf3"}
	specs := make([]NetSpec, len(names))
	points := make([]RunSpec, len(names))
	for i, name := range names {
		specs[i] = MustNet(name)
		points[i] = RunSpec{Spec: specs[i], Pattern: "RND", Rate: 0.06, SMART: true, Opts: o}
	}
	results := MustRunBatch(ctx, o, points)
	for i, name := range names {
		res := results[i]
		cyc := specs[i].Net.CycleTimeNs
		t.AddRowF(name, res.AvgLatency, cyc, res.AvgLatency*cyc, res.AvgLatency*0.5)
	}
	return []*stats.Table{t}
}

// Resilience verifies the §2.1 expander claim: remove a growing fraction of
// links and compare SN's connectivity, diameter and path-length inflation
// against torus and FBF of the same size, plus simulated latency where the
// damaged diameter stays small enough for deadlock-free ascending VCs. The
// structural analysis decides which points are simulable; those then run as
// one batch.
func Resilience(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:    "resil",
		Title: "Link-failure resilience, N=200-class networks (§2.1 expander claim)",
		Header: []string{"fail_%", "network", "connectivity", "diameter",
			"avg_path", "latency_cycles"},
	}
	fracs := []float64{0, 0.05, 0.10, 0.20}
	if o.Quick {
		fracs = []float64{0, 0.10}
	}
	names := []string{"sn_subgr_200", "fbf4", "t2d4"}
	type row struct {
		frac      float64
		name      string
		conn, avg float64
		diam      int
		simPoint  int // index into points, -1 = not simulable
	}
	var rows []row
	var points []RunSpec
	for _, frac := range fracs {
		for _, name := range names {
			base := MustNet(name)
			net := base.Net.RemoveRandomLinks(frac, o.Seed+11)
			r := row{frac: frac, name: name, conn: net.Connectivity(),
				diam: net.Diameter(), avg: net.AvgShortestPath(), simPoint: -1}
			// Simulate only when connected and the diameter admits
			// deadlock-free ascending VCs with a sane VC count.
			if r.diam > 0 && r.diam <= 6 {
				vcs := r.diam
				if vcs < 2 {
					vcs = 2
				}
				spec := NetSpec{Name: net.Name, Net: net,
					Kind: routing.Kind{Class: routing.ClassGeneric}}
				r.simPoint = len(points)
				points = append(points, RunSpec{Spec: spec, VCs: vcs,
					Pattern: "RND", Rate: 0.06, Opts: o})
			}
			rows = append(rows, r)
		}
	}
	results := MustRunBatch(ctx, o, points)
	for _, r := range rows {
		lat := "n/a"
		if r.simPoint >= 0 {
			res := results[r.simPoint]
			if res.Saturated {
				lat = "sat"
			} else {
				lat = fmt.Sprintf("%.1f", res.AvgLatency)
			}
		}
		t.AddRowF(fmt.Sprintf("%.0f", r.frac*100), r.name, r.conn, r.diam, r.avg, lat)
	}
	return []*stats.Table{t}
}
