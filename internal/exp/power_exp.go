// Area, power, throughput/power and EDP experiments: Fig. 1b/c, Fig. 3,
// Fig. 15-17, Fig. 19b/c, Table 5, and the §5.5 folded-Clos comparison.

package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

const flitBits = 128

// bufferFor sizes network buffers for the area/power models: EB-Var sizing
// (full wire utilisation) as the paper's default edge-buffer design.
func bufferFor(n *topo.Network, smart bool) power.BufferConfig {
	m := core.DefaultBufferModel()
	if smart {
		m = m.WithSMART()
	}
	return power.EdgeBufferConfig(n, m, flitBits)
}

// dfSpec builds the 200-node Dragonfly used in the Fig. 3 comparison.
func dfSpec() *topo.Network {
	df, err := topo.Dragonfly(5, 2, 10, 4) // Nr=50, N=200, k'=6
	if err != nil {
		panic(err)
	}
	df.Name = "df"
	return df
}

// Fig3 reproduces Fig. 3: Slim Fly and Dragonfly used directly as NoCs.
// 3a: average wire length versus core count; 3b/3c: area and static power
// per node at ~200 cores.
func Fig3(ctx context.Context, o Options) []*stats.Table {
	wire := &stats.Table{
		ID:     "fig3a",
		Title:  "Average wire length [hops] vs core count (Fig. 3a)",
		Header: []string{"N", "torus", "slimfly", "dragonfly", "fbf_fullbw"},
	}
	type sizePoint struct {
		n               int
		torus, fbf      *topo.Network
		slim, dragonfly *topo.Network
	}
	sizes := []int{128, 200, 512, 1024}
	if o.Quick {
		sizes = []int{200, 1024}
	}
	for _, n := range sizes {
		pt := fig3Point(n)
		if pt == nil {
			continue
		}
		wire.AddRowF(n, pt.torus.AvgWireLength(), pt.slim.AvgWireLength(),
			dfWireLen(pt.dragonfly), pt.fbf.AvgWireLength())
	}

	// 3b/3c at ~200 cores.
	nets := []*topo.Network{
		MustNet("fbf4").Net, MustNet("pfbf4").Net, MustNet("t2d4").Net,
		MustNet("cm4").Net, MustNet("sn_rand_200").Net, dfSpec(),
	}
	labels := []string{"FBF", "PFBF", "T2D", "CM", "SF", "DF"}
	area := &stats.Table{
		ID:     "fig3b",
		Title:  "Area per node [cm^2], ~200 cores, straight on-chip use (Fig. 3b)",
		Header: []string{"network", "i_routers", "a_routers", "wires", "total"},
	}
	pow := &stats.Table{
		ID:     "fig3c",
		Title:  "Static power per node [W], ~200 cores (Fig. 3c)",
		Header: []string{"network", "routers", "wires", "total"},
	}
	t45 := power.Tech45()
	for i, n := range nets {
		buf := bufferFor(n, false)
		a := power.Area(n, buf, 2, t45).PerNodeCM2(n.N())
		s := power.Static(n, buf, 2, t45)
		area.AddRowF(labels[i], a.IRouters, a.ARouters, a.RRWires+a.RNWires, a.Total())
		pow.AddRowF(labels[i], s.Routers/float64(n.N()), s.Wires/float64(n.N()),
			s.Total()/float64(n.N()))
	}
	return []*stats.Table{wire, area, pow}
}

type fig3Nets struct {
	torus, fbf, slim, dragonfly *topo.Network
}

func fig3Point(n int) *fig3Nets {
	params, err := core.FromNetworkSize(n)
	if err != nil {
		return nil
	}
	s, err := core.New(params)
	if err != nil {
		return nil
	}
	// Slim Fly straight on-chip: random (off-chip-oblivious) placement.
	slim, err := s.Network(core.LayoutRand, 3)
	if err != nil {
		return nil
	}
	// Torus and FBF at matching size.
	side := 1
	for side*side*4 < n {
		side++
	}
	torus := topo.Torus2D(side, side, 4)
	fbf := topo.FBF(side, side, 4)
	// Dragonfly: a=5, h=2, g scaled to approach n with p=4.
	g := n / (5 * 4)
	if g < 2 {
		g = 2
	}
	if g > 11 {
		g = 11
	}
	df, err := topo.Dragonfly(5, 2, g, 4)
	if err != nil {
		return nil
	}
	return &fig3Nets{torus: torus, fbf: fbf, slim: slim, dragonfly: df}
}

func dfWireLen(n *topo.Network) float64 { return n.AvgWireLength() }

// areaPowerTable renders per-node area / static / dynamic for a set of
// networks under one tech node, running a RND simulation for activity.
func areaPowerTable(ctx context.Context, idPrefix, title string, names []string,
	smart bool, t power.Tech, o Options) []*stats.Table {
	area := &stats.Table{
		ID:     idPrefix + "-area",
		Title:  title + " — area/node [cm^2]",
		Header: []string{"network", "i_routers", "a_routers", "RR_wires", "RN_wires", "total"},
	}
	stat := &stats.Table{
		ID:     idPrefix + "-static",
		Title:  title + " — static power/node [W]",
		Header: []string{"network", "routers", "wires", "total"},
	}
	dyn := &stats.Table{
		ID:     idPrefix + "-dynamic",
		Title:  title + " — dynamic power/node [W] (RND, load 0.24)",
		Header: []string{"network", "buffers", "crossbars", "wires", "total"},
	}
	specs := make([]NetSpec, len(names))
	points := make([]RunSpec, len(names))
	for i, name := range names {
		specs[i] = MustNet(name)
		points[i] = RunSpec{Spec: specs[i], Pattern: "RND", Rate: 0.24, SMART: smart, Opts: o}
	}
	results := MustRunBatch(ctx, o, points)
	for i, name := range names {
		n := specs[i].Net
		buf := bufferFor(n, smart)
		a := power.Area(n, buf, 2, t).PerNodeCM2(n.N())
		area.AddRowF(name, a.IRouters, a.ARouters, a.RRWires, a.RNWires, a.Total())
		s := power.Static(n, buf, 2, t)
		nn := float64(n.N())
		stat.AddRowF(name, s.Routers/nn, s.Wires/nn, s.Total()/nn)
		res := results[i]
		act := power.ActivityOf(n, res.Throughput, res.AvgHops, t, flitBits)
		d := power.Dynamic(act, t)
		dyn.AddRowF(name, d.Buffers/nn, d.Crossbars/nn, d.Wires/nn, d.Total()/nn)
	}
	return []*stats.Table{area, stat, dyn}
}

// Fig15 reproduces Fig. 15: area per SN layout, and area + static power for
// the N=200 networks, no SMART.
func Fig15(ctx context.Context, o Options) []*stats.Table {
	t45 := power.Tech45()
	layouts := &stats.Table{
		ID:     "fig15a",
		Title:  "Total area per SN layout, N=200, no SMART (Fig. 15a) [cm^2]",
		Header: []string{"layout", "total_area"},
	}
	for _, l := range []string{"sn_rand_200", "sn_basic_200", "sn_gr_200", "sn_subgr_200"} {
		n := MustNet(l).Net
		layouts.AddRowF(l, power.Area(n, bufferFor(n, false), 2, t45).Total())
	}
	nets := &stats.Table{
		ID:     "fig15b",
		Title:  "Total area, N=200 networks, no SMART (Fig. 15b) [cm^2]",
		Header: []string{"network", "i_routers", "a_routers", "RR_wires", "RN_wires", "total"},
	}
	pow := &stats.Table{
		ID:     "fig15c",
		Title:  "Total static power, N=200 networks, no SMART (Fig. 15c) [W]",
		Header: []string{"network", "routers", "wires", "total"},
	}
	for _, name := range []string{"fbf4", "pfbf4", "sn_subgr_200", "t2d4", "cm4"} {
		n := MustNet(name).Net
		buf := bufferFor(n, false)
		a := power.Area(n, buf, 2, t45)
		nets.AddRowF(name, a.IRouters, a.ARouters, a.RRWires, a.RNWires, a.Total())
		s := power.Static(n, buf, 2, t45)
		pow.AddRowF(name, s.Routers, s.Wires, s.Total())
	}
	return []*stats.Table{layouts, nets, pow}
}

// Fig16 reproduces Fig. 16: per-node area/static/dynamic with SMART for the
// small networks, at 45 and 22 nm.
func Fig16(ctx context.Context, o Options) []*stats.Table {
	names := []string{"fbf3", "fbf4", "pfbf3", "sn_subgr_200", "t2d4", "cm4"}
	var out []*stats.Table
	out = append(out, areaPowerTable(ctx, "fig16-45nm", "N in {192,200}, SMART, 45nm (Fig. 16)",
		names, true, power.Tech45(), o)...)
	out = append(out, areaPowerTable(ctx, "fig16-22nm", "N in {192,200}, SMART, 22nm (Fig. 16)",
		names, true, power.Tech22(), o)...)
	return out
}

// Fig17 reproduces Fig. 17: the same analysis at N = 1296.
func Fig17(ctx context.Context, o Options) []*stats.Table {
	names := []string{"fbf8", "fbf9", "pfbf9", "sn_gr_1296", "t2d9", "cm9"}
	var out []*stats.Table
	out = append(out, areaPowerTable(ctx, "fig17-45nm", "N=1296, SMART, 45nm (Fig. 17)",
		names, true, power.Tech45(), o)...)
	out = append(out, areaPowerTable(ctx, "fig17-22nm", "N=1296, SMART, 22nm (Fig. 17)",
		names, true, power.Tech22(), o)...)
	return out
}

// Fig19Power reproduces Fig. 19b/c: area and dynamic power per node at
// N = 54 (45 nm, SMART).
func Fig19Power(ctx context.Context, o Options) []*stats.Table {
	return areaPowerTable(ctx, "fig19bc", "N=54, SMART, 45nm (Fig. 19b/c)",
		[]string{"sn_subgr_54", "fbf54", "pfbf54", "t2d54"}, true, power.Tech45(), o)
}

// tpResult caches the tech-independent saturating-RND simulation output so
// the 45 nm and 22 nm metrics reuse one run.
type tpResult struct {
	spec       NetSpec
	throughput float64
	hops       float64
}

// saturatingRuns drives each network at the paper's high comparison load
// (0.24 flits/node/cycle, past the low-radix saturation points but below
// the high-radix ones) and records the accepted throughput — the "flits
// delivered in a cycle" of §5.4 — for all names as one parallel batch.
func saturatingRuns(ctx context.Context, names []string, o Options) map[string]tpResult {
	specs := make([]NetSpec, len(names))
	points := make([]RunSpec, len(names))
	for i, name := range names {
		specs[i] = MustNet(name)
		points[i] = RunSpec{Spec: specs[i], Pattern: "RND", Rate: 0.24, SMART: true, Opts: o}
	}
	results := MustRunBatch(ctx, o, points)
	out := make(map[string]tpResult, len(names))
	for i, name := range names {
		out[name] = tpResult{spec: specs[i], throughput: results[i].Throughput, hops: results[i].AvgHops}
	}
	return out
}

// throughputPerPower computes the §5.4 metric from a cached run.
func (r tpResult) at(t power.Tech) float64 {
	n := r.spec.Net
	buf := bufferFor(n, true)
	st := power.Static(n, buf, 2, t)
	act := power.ActivityOf(n, r.throughput, r.hops, t, flitBits)
	dy := power.Dynamic(act, t)
	return power.ThroughputPerPower(act.FlitsPerCycle, n.CycleTimeNs, st, dy)
}

// Fig1bc reproduces Fig. 1b/c: throughput per power at N = 1296 for 45 and
// 22 nm.
func Fig1bc(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:     "fig1bc",
		Title:  "Throughput/Power [flits/J], RND at saturation, N=1296 (Fig. 1b/c)",
		Header: []string{"network", "45nm", "22nm"},
	}
	names := []string{"sn_gr_1296", "fbf9", "t2d9", "cm9"}
	runs := saturatingRuns(ctx, names, o)
	for _, name := range names {
		r := runs[name]
		t.AddRowF(name, r.at(power.Tech45()), r.at(power.Tech22()))
	}
	return []*stats.Table{t}
}

// Table5 reproduces Table 5: SN's relative throughput/power improvement over
// each baseline, for both size classes and both technology nodes.
func Table5(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:     "tab5",
		Title:  "SN throughput/power advantage (RND) (Table 5)",
		Header: []string{"tech", "vs", "SN_gain_%"},
	}
	groups := []struct {
		sn    string
		bases []string
	}{
		{"sn_subgr_200", []string{"t2d4", "cm4", "pfbf3", "fbf3", "fbf4"}},
		{"sn_gr_1296", []string{"t2d9", "cm9", "pfbf9", "fbf8", "fbf9"}},
	}
	var names []string
	for _, g := range groups {
		names = append(names, g.sn)
		names = append(names, g.bases...)
	}
	runs := saturatingRuns(ctx, names, o)
	for _, tech := range []power.Tech{power.Tech45(), power.Tech22()} {
		for _, g := range groups {
			snTP := runs[g.sn].at(tech)
			for _, b := range g.bases {
				bTP := runs[b].at(tech)
				gain := 0.0
				if bTP > 0 {
					gain = (snTP/bTP - 1) * 100
				}
				t.AddRowF(tech.Name, fmt.Sprintf("%s(%s)", b, g.sn), gain)
			}
		}
	}
	return []*stats.Table{t}
}

// Sec55Clos reproduces the §5.5 hierarchical-NoC comparison: SN's total area
// versus a folded Clos at both size classes.
func Sec55Clos(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:     "sec55",
		Title:  "SN vs folded Clos total area [cm^2] (§5.5)",
		Header: []string{"N", "sn_area", "clos_area", "sn_smaller_by_%"},
	}
	t45 := power.Tech45()
	cases := []struct {
		n    int
		sn   string
		clos *topo.Network
	}{
		{200, "sn_subgr_200", topo.FoldedClos(25, 7, 8)},
		{1296, "sn_gr_1296", topo.FoldedClos(162, 13, 8)},
	}
	for _, c := range cases {
		sn := MustNet(c.sn).Net
		snArea := power.Area(sn, bufferFor(sn, true), 2, t45).Total()
		closArea := power.Area(c.clos, bufferFor(c.clos, true), 2, t45).Total()
		t.AddRowF(c.n, snArea, closArea, (1-snArea/closArea)*100)
	}
	return []*stats.Table{t}
}

var _ = sim.EdgeBuffers // keep sim import for RunSpec literal clarity
