package exp

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/slimnoc"
	"repro/slimnoc/store"
)

// manifestOptions are the quick-mode options the manifest tests expand
// under; tiny explicit cycles keep the end-to-end test fast.
func manifestOptions() Options {
	return Options{Quick: true, Seed: 3, Jobs: 2,
		WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 600}
}

// TestManifestExpandsAndValidates expands every manifest sweep: every
// non-analytic figure must contribute at least one grid whose points all
// validate, IDs must be unique, and each must name a registered experiment
// so `snexp -exp <id>` always works as the derived-table companion.
func TestManifestExpandsAndValidates(t *testing.T) {
	for _, quick := range []bool{true, false} {
		o := manifestOptions()
		o.Quick = quick
		seen := map[string]bool{}
		for _, f := range Manifest(o) {
			if seen[f.ID] {
				t.Errorf("duplicate manifest ID %q", f.ID)
			}
			seen[f.ID] = true
			if len(f.Sats) == 0 {
				// Saturation-search figures are snrepro-native: they have no
				// snexp derived-table companion, so only grid/analytic
				// figures must pair with an experiment-registry entry.
				if _, err := ByID(f.ID); err != nil {
					t.Errorf("manifest ID %q has no experiment-registry entry: %v", f.ID, err)
				}
			}
			if f.Analytic {
				if len(f.Sweeps) != 0 {
					t.Errorf("%s: analytic figure carries %d sweeps", f.ID, len(f.Sweeps))
				}
				continue
			}
			if len(f.Sweeps) == 0 && len(f.Sats) == 0 {
				t.Errorf("%s: no sweeps, no searches, and not analytic", f.ID)
			}
			for _, s := range f.Sweeps {
				points, err := s.Points()
				if err != nil {
					t.Errorf("%s sweep %s: %v", f.ID, s.Name, err)
					continue
				}
				if len(points) == 0 {
					t.Errorf("%s sweep %s: empty grid", f.ID, s.Name)
				}
			}
			for _, s := range f.Sats {
				if err := s.Validate(); err != nil {
					t.Errorf("%s search %s: %v", f.ID, s.Name, err)
				}
			}
		}
	}
}

// TestManifestDeterministic pins that two Manifest calls with equal options
// produce identical grids — the property that lets a result store serve a
// rerun byte-identically.
func TestManifestDeterministic(t *testing.T) {
	o := manifestOptions()
	a, err := json.Marshal(Manifest(o))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Manifest(o))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Manifest is not deterministic for equal options")
	}
}

func TestFigureByID(t *testing.T) {
	o := manifestOptions()
	f, err := FigureByID("FIG12", o)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "fig12" {
		t.Errorf("FigureByID returned %q", f.ID)
	}
	if _, err := FigureByID("no-such-fig", o); err == nil {
		t.Error("unknown figure did not error")
	}
	ids := FigureIDs()
	if len(ids) < 15 {
		t.Errorf("manifest lists only %d figures", len(ids))
	}
}

// TestRunFigureWithStoreRoundTrip reproduces a small manifest figure twice
// against one store: the warm rerun must simulate nothing and render
// byte-identical Markdown and CSV reports.
func TestRunFigureWithStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	o := manifestOptions()
	fig, err := FigureByID("abl-vcs", o)
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cold, err := RunFigure(context.Background(), fig, o, slimnoc.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	cCached, cFresh := cold.CachedCount()
	if cCached != 0 || cFresh == 0 {
		t.Fatalf("cold run: %d cached, %d fresh", cCached, cFresh)
	}

	warm, err := RunFigure(context.Background(), fig, o, slimnoc.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	wCached, wFresh := warm.CachedCount()
	if wFresh != 0 || wCached != cFresh {
		t.Fatalf("warm run: %d cached, %d fresh; want all %d cached", wCached, wFresh, cFresh)
	}

	if cold.Markdown() != warm.Markdown() {
		t.Error("warm Markdown report differs from cold")
	}
	if cold.CSV() != warm.CSV() {
		t.Error("warm CSV report differs from cold")
	}

	// The reports carry real content: a row per point, parseable CSV.
	rows, err := csv.NewReader(strings.NewReader(cold.CSV())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cFresh+1 {
		t.Errorf("CSV has %d rows, want %d points + header", len(rows), cFresh)
	}
	md := cold.Markdown()
	if !strings.Contains(md, "# abl-vcs") || !strings.Contains(md, "| point |") {
		t.Errorf("Markdown report missing title or table:\n%s", md)
	}
}

// TestRunSatFigureWithStoreRoundTrip exercises the saturation-search figure
// machinery end to end on a small network: probes persist to the store, the
// warm rerun simulates nothing, and both report renderings stay
// byte-identical — the same contract grid figures satisfy.
func TestRunSatFigureWithStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	o := manifestOptions()
	fig := Figure{
		ID: "sat-test", Title: "saturation round trip", Section: "test",
		Sats: []slimnoc.SaturationSpec{{
			Name: "sat-test/t2d54/rnd",
			Base: slimnoc.RunSpec{
				Network: slimnoc.NetworkSpec{Preset: "t2d54"},
				Traffic: slimnoc.TrafficSpec{Pattern: "rnd"},
				Sim:     o.SimSpec(),
			},
			MinLoad: 0.05, MaxLoad: 0.45, Step: 0.05, LatencyFactor: 3,
		}},
	}

	st, err := store.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cold, err := RunFigure(context.Background(), fig, o, slimnoc.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	cCached, cFresh := cold.CachedCount()
	if cCached != 0 || cFresh == 0 {
		t.Fatalf("cold run: %d cached, %d fresh", cCached, cFresh)
	}
	if len(cold.Sats) != 1 || len(cold.Sats[0].Probes) != cFresh {
		t.Fatalf("search results inconsistent: %d sats, CachedCount fresh %d", len(cold.Sats), cFresh)
	}

	warm, err := RunFigure(context.Background(), fig, o, slimnoc.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	wCached, wFresh := warm.CachedCount()
	if wFresh != 0 || wCached != cFresh {
		t.Fatalf("warm run: %d cached, %d fresh; want all %d cached", wCached, wFresh, cFresh)
	}
	if warm.Sats[0].SaturationLoad != cold.Sats[0].SaturationLoad {
		t.Errorf("warm saturation load %.3f differs from cold %.3f",
			warm.Sats[0].SaturationLoad, cold.Sats[0].SaturationLoad)
	}
	if cold.Markdown() != warm.Markdown() {
		t.Error("warm Markdown report differs from cold")
	}
	if cold.CSV() != warm.CSV() {
		t.Error("warm CSV report differs from cold")
	}
	md := cold.Markdown()
	if !strings.Contains(md, "saturation_load") {
		t.Errorf("Markdown report missing the saturation table:\n%s", md)
	}
	rows, err := csv.NewReader(strings.NewReader(cold.CSV())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cFresh+1 {
		t.Errorf("CSV has %d rows, want %d probes + header", len(rows), cFresh)
	}
}
