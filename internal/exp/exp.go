// Package exp is the experiment harness: one entry per table and figure in
// the paper's evaluation (§2.2, §3, §5, §6). Each experiment builds the
// networks of Table 4, runs the simulator and/or the analytical models, and
// emits the same rows or series the paper reports, as printable tables.
package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/slimnoc"
)

// Options tunes experiment scale. Quick mode shrinks cycle counts and sweep
// density so the full suite runs in benchmark time; Full matches the paper's
// methodology more closely. Explicit cycle counts, when positive, override
// the mode's defaults.
type Options struct {
	Quick bool
	Seed  int64

	// Jobs is the simulation worker count for batched experiment points:
	// 1 forces serial execution, 0 (the default) uses every CPU. Results
	// are identical at any job count — each point's seed is fixed up
	// front — so Jobs trades wall-clock only.
	Jobs int

	// EngineJobs steps each point's engine across that many parallel
	// spatial domains (0 or 1 = serial, < 0 = every CPU; see
	// slimnoc.WithEngineJobs). Byte-identical results at every value.
	// Complements Jobs: a dense grid wants point parallelism, a handful of
	// big saturated points wants engine parallelism.
	EngineJobs int

	// MemBudget caps each point's estimated engine footprint in bytes
	// (slimnoc.WithPointMemBudget). 0 defers to the figure's declared
	// budget (Figure.MemBudget); a negative value disables any cap.
	// Oversized points fail fast with a sizing error instead of
	// allocating; runs that fit are unaffected.
	MemBudget int64

	WarmupCycles  int64
	MeasureCycles int64
	DrainCycles   int64
}

// Cycles returns (warmup, measure, drain) for the current mode.
func (o Options) Cycles() (int64, int64, int64) {
	mode := slimnoc.FullSim()
	if o.Quick {
		mode = slimnoc.QuickSim()
	}
	if o.WarmupCycles > 0 {
		mode.WarmupCycles = o.WarmupCycles
	}
	if o.MeasureCycles > 0 {
		mode.MeasureCycles = o.MeasureCycles
	}
	if o.DrainCycles > 0 {
		mode.DrainCycles = o.DrainCycles
	}
	return mode.WarmupCycles, mode.MeasureCycles, mode.DrainCycles
}

// SimSpec returns the facade simulation parameters for the mode.
func (o Options) SimSpec() slimnoc.SimSpec {
	warm, meas, drain := o.Cycles()
	return slimnoc.SimSpec{
		WarmupCycles:  warm,
		MeasureCycles: meas,
		DrainCycles:   drain,
		Seed:          o.Seed + 1,
	}
}

// Loads returns the offered-load sweep in flits/node/cycle.
func (o Options) Loads() []float64 {
	if o.Quick {
		return []float64{0.008, 0.06, 0.24}
	}
	return []float64{0.008, 0.02, 0.06, 0.12, 0.24, 0.40}
}

// NetSpec is one simulated network configuration from Table 4.
type NetSpec struct {
	Name string
	Net  *topo.Network
	Kind routing.Kind
}

// BuildNet constructs a named network via the slimnoc preset registry.
// Names follow Table 4 (cm3, t2d9, fbf8, pfbf4, ...) plus sn_<layout>_<N>
// for Slim NoCs and the N=54 small-scale set of §5.6.
func BuildNet(name string) (NetSpec, error) {
	net, kind, err := slimnoc.BuildNetwork(slimnoc.NetworkSpec{Preset: name})
	if err != nil {
		return NetSpec{}, err
	}
	net.Name = name
	return NetSpec{Name: name, Net: net, Kind: kind}, nil
}

// MustNet builds a network or panics (experiment setup errors are
// programming errors).
func MustNet(name string) NetSpec {
	spec, err := BuildNet(name)
	if err != nil {
		panic(err)
	}
	return spec
}

// RunSpec configures one simulation point.
type RunSpec struct {
	Spec    NetSpec
	VCs     int
	Scheme  sim.BufferScheme
	BufCap  func(int) int // EdgeBuffers sizing; nil = EB-Small (5)
	CBCap   int
	SMART   bool
	H       int // explicit SMART hop factor; overrides the SMART default of 9
	Pattern string
	Rate    float64
	Source  sim.Source // overrides Pattern/Rate when set
	Policy  sim.AdaptivePolicy
	Opts    Options
}

// schemeName maps a simulator buffer scheme onto its registry key.
func schemeName(s sim.BufferScheme) string {
	switch s {
	case sim.CentralBuffer:
		return "cbr"
	case sim.ElasticLinks:
		return "el"
	default:
		return "eb"
	}
}

// facade converts an experiment point into its slimnoc spec plus the runner
// options covering what the declarative spec cannot express (the prebuilt
// network, custom sources, adaptive policies). Both the serial and the
// batched execution paths go through this one conversion, which is what
// keeps their per-point results byte-identical.
func (rs RunSpec) facade() (slimnoc.RunSpec, []slimnoc.Option) {
	spec := slimnoc.RunSpec{
		Name: rs.Spec.Name,
		Routing: slimnoc.RoutingSpec{
			Algorithm: "auto",
			VCs:       rs.VCs,
		},
		Buffering: slimnoc.BufferingSpec{
			Scheme: schemeName(rs.Scheme),
			CBCap:  rs.CBCap,
		},
		Traffic: slimnoc.TrafficSpec{
			Pattern: strings.ToLower(rs.Pattern),
			Rate:    rs.Rate,
		},
		SMART:     rs.SMART,
		HopFactor: rs.H,
		Sim:       rs.Opts.SimSpec(),
	}
	opts := []slimnoc.Option{slimnoc.WithNetwork(rs.Spec.Net, rs.Spec.Kind)}
	if rs.Source != nil {
		opts = append(opts, slimnoc.WithSource(rs.Source))
		spec.Traffic = slimnoc.TrafficSpec{}
	}
	if rs.Policy != nil {
		opts = append(opts, slimnoc.WithAdaptivePolicy(rs.Policy))
	}
	if rs.BufCap != nil {
		opts = append(opts, slimnoc.WithEdgeBufferSizing(rs.BufCap))
	}
	return spec, opts
}

// Run executes one simulation point through the slimnoc facade. Cancelling
// the context stops the run at its next poll point.
func Run(ctx context.Context, rs RunSpec) (sim.Result, error) {
	spec, opts := rs.facade()
	if rs.Opts.EngineJobs != 0 {
		opts = append(opts, slimnoc.WithEngineJobs(rs.Opts.EngineJobs))
	}
	if rs.Opts.MemBudget > 0 {
		opts = append(opts, slimnoc.WithMemBudget(rs.Opts.MemBudget))
	}
	res, err := slimnoc.Run(ctx, spec, opts...)
	if err != nil {
		return sim.Result{}, err
	}
	return res.Raw, nil
}

// MustRun is Run with panic-on-error for experiment bodies.
func MustRun(ctx context.Context, rs RunSpec) sim.Result {
	res, err := Run(ctx, rs)
	if err != nil {
		panic(err)
	}
	return res
}

// RunBatch executes the points through a slimnoc.Campaign with o.Jobs
// workers and returns the raw results in submission order. Experiment grids
// submit their whole sweep here instead of looping over Run, so the suite
// parallelizes across cores while every point keeps the exact seed (and
// therefore metrics) of the serial path. The first point error aborts with
// that error; a cancelled context returns ctx's error.
func RunBatch(ctx context.Context, o Options, points []RunSpec) ([]sim.Result, error) {
	specs := make([]slimnoc.RunSpec, len(points))
	opts := make([][]slimnoc.Option, len(points))
	for i, rs := range points {
		specs[i], opts[i] = rs.facade()
	}
	copts := []slimnoc.CampaignOption{
		slimnoc.WithJobs(o.Jobs),
		slimnoc.WithPointOptions(func(i int, _ slimnoc.RunSpec) []slimnoc.Option {
			return opts[i]
		}),
	}
	if o.EngineJobs != 0 {
		copts = append(copts, slimnoc.WithPointEngineJobs(o.EngineJobs))
	}
	if o.MemBudget > 0 {
		copts = append(copts, slimnoc.WithPointMemBudget(o.MemBudget))
	}
	results, err := slimnoc.RunCampaign(ctx, specs, copts...)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Result, len(results))
	for i, p := range results {
		if p.Err != nil {
			return nil, fmt.Errorf("exp: point %d (%s): %w", i, p.Spec.Name, p.Err)
		}
		out[i] = p.Result.Raw
	}
	return out, nil
}

// MustRunBatch is RunBatch with panic-on-error for experiment bodies.
func MustRunBatch(ctx context.Context, o Options, points []RunSpec) []sim.Result {
	res, err := RunBatch(ctx, o, points)
	if err != nil {
		panic(err)
	}
	return res
}

// fmtLoad renders a load value compactly for row labels.
func fmtLoad(l float64) string { return fmt.Sprintf("%.3f", l) }

// fmtLat renders a latency, marking saturated points like the paper omits
// them.
func fmtLat(r sim.Result) string {
	if r.Saturated {
		return "sat"
	}
	return fmt.Sprintf("%.1f", r.AvgLatency)
}

// sortedKeys returns map keys in sorted order for deterministic tables.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
