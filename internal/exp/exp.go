// Package exp is the experiment harness: one entry per table and figure in
// the paper's evaluation (§2.2, §3, §5, §6). Each experiment builds the
// networks of Table 4, runs the simulator and/or the analytical models, and
// emits the same rows or series the paper reports, as printable tables.
package exp

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Options tunes experiment scale. Quick mode shrinks cycle counts and sweep
// density so the full suite runs in benchmark time; Full matches the paper's
// methodology more closely.
type Options struct {
	Quick bool
	Seed  int64
}

// Cycles returns (warmup, measure, drain) for the current mode.
func (o Options) Cycles() (int64, int64, int64) {
	if o.Quick {
		return 1000, 3000, 4000
	}
	return 5000, 20000, 30000
}

// Loads returns the offered-load sweep in flits/node/cycle.
func (o Options) Loads() []float64 {
	if o.Quick {
		return []float64{0.008, 0.06, 0.24}
	}
	return []float64{0.008, 0.02, 0.06, 0.12, 0.24, 0.40}
}

// NetSpec is one simulated network configuration from Table 4.
type NetSpec struct {
	Name string
	Net  *topo.Network
	Kind routing.Kind
}

// BuildNet constructs a named network. Names follow Table 4 (cm3, t2d9,
// fbf8, pfbf4, ...) plus sn_<layout>_<N> for Slim NoCs and the N=54
// small-scale set of §5.6.
func BuildNet(name string) (NetSpec, error) {
	mk := func(n *topo.Network, k routing.Kind) (NetSpec, error) {
		n.Name = name
		return NetSpec{Name: name, Net: n, Kind: k}, nil
	}
	switch name {
	// N in {192, 200}.
	case "cm3":
		return mk(topo.Mesh2D(8, 8, 3), routing.Kind{Class: routing.ClassMesh, RX: 8, RY: 8})
	case "cm4":
		return mk(topo.Mesh2D(10, 5, 4), routing.Kind{Class: routing.ClassMesh, RX: 10, RY: 5})
	case "t2d3":
		return mk(topo.Torus2D(8, 8, 3), routing.Kind{Class: routing.ClassTorus, RX: 8, RY: 8})
	case "t2d4":
		return mk(topo.Torus2D(10, 5, 4), routing.Kind{Class: routing.ClassTorus, RX: 10, RY: 5})
	case "fbf3":
		return mk(topo.FBF(8, 8, 3), routing.Kind{Class: routing.ClassFBF, RX: 8, RY: 8})
	case "fbf4":
		return mk(topo.FBF(10, 5, 4), routing.Kind{Class: routing.ClassFBF, RX: 10, RY: 5})
	case "pfbf3":
		return mk(topo.PFBF(2, 2, 4, 4, 3), routing.Kind{Class: routing.ClassPFBF, RX: 4, RY: 4, PX: 2, PY: 2})
	case "pfbf4":
		return mk(topo.PFBF(2, 1, 5, 5, 4), routing.Kind{Class: routing.ClassPFBF, RX: 5, RY: 5, PX: 2, PY: 1})
	// N = 1296.
	case "cm9":
		return mk(topo.Mesh2D(12, 12, 9), routing.Kind{Class: routing.ClassMesh, RX: 12, RY: 12})
	case "cm8":
		return mk(topo.Mesh2D(18, 9, 8), routing.Kind{Class: routing.ClassMesh, RX: 18, RY: 9})
	case "t2d9":
		return mk(topo.Torus2D(12, 12, 9), routing.Kind{Class: routing.ClassTorus, RX: 12, RY: 12})
	case "t2d8":
		return mk(topo.Torus2D(18, 9, 8), routing.Kind{Class: routing.ClassTorus, RX: 18, RY: 9})
	case "fbf9":
		return mk(topo.FBF(12, 12, 9), routing.Kind{Class: routing.ClassFBF, RX: 12, RY: 12})
	case "fbf8":
		return mk(topo.FBF(18, 9, 8), routing.Kind{Class: routing.ClassFBF, RX: 18, RY: 9})
	case "pfbf9":
		return mk(topo.PFBF(2, 2, 6, 6, 9), routing.Kind{Class: routing.ClassPFBF, RX: 6, RY: 6, PX: 2, PY: 2})
	case "pfbf8":
		return mk(topo.PFBF(2, 1, 9, 9, 8), routing.Kind{Class: routing.ClassPFBF, RX: 9, RY: 9, PX: 2, PY: 1})
	// N = 54 small-scale set (§5.6).
	case "t2d54":
		return mk(topo.Torus2D(6, 3, 3), routing.Kind{Class: routing.ClassTorus, RX: 6, RY: 3})
	case "fbf54":
		return mk(topo.FBF(6, 3, 3), routing.Kind{Class: routing.ClassFBF, RX: 6, RY: 3})
	case "pfbf54":
		return mk(topo.PFBF(2, 1, 3, 3, 3), routing.Kind{Class: routing.ClassPFBF, RX: 3, RY: 3, PX: 2, PY: 1})
	}
	// Slim NoCs: sn_<layout>_<N>.
	var layout core.Layout
	var n int
	if _, err := fmt.Sscanf(name, "sn_basic_%d", &n); err == nil {
		layout = core.LayoutBasic
	} else if _, err := fmt.Sscanf(name, "sn_subgr_%d", &n); err == nil {
		layout = core.LayoutSubgroup
	} else if _, err := fmt.Sscanf(name, "sn_gr_%d", &n); err == nil {
		layout = core.LayoutGroup
	} else if _, err := fmt.Sscanf(name, "sn_rand_%d", &n); err == nil {
		layout = core.LayoutRand
	} else {
		return NetSpec{}, fmt.Errorf("exp: unknown network %q", name)
	}
	params, err := core.FromNetworkSize(n)
	if err != nil {
		return NetSpec{}, err
	}
	s, err := core.New(params)
	if err != nil {
		return NetSpec{}, err
	}
	net, err := s.Network(layout, 1)
	if err != nil {
		return NetSpec{}, err
	}
	net.Name = name
	return NetSpec{Name: name, Net: net, Kind: routing.Kind{Class: routing.ClassGeneric}}, nil
}

// MustNet builds a network or panics (experiment setup errors are
// programming errors).
func MustNet(name string) NetSpec {
	spec, err := BuildNet(name)
	if err != nil {
		panic(err)
	}
	return spec
}

// RunSpec configures one simulation point.
type RunSpec struct {
	Spec    NetSpec
	VCs     int
	Scheme  sim.BufferScheme
	BufCap  func(int) int // EdgeBuffers sizing; nil = EB-Small (5)
	CBCap   int
	SMART   bool
	H       int // explicit SMART hop factor; overrides the SMART default of 9
	Pattern string
	Rate    float64
	Source  sim.Source // overrides Pattern/Rate when set
	Policy  sim.AdaptivePolicy
	Opts    Options
}

// Run executes one simulation point.
func Run(rs RunSpec) (sim.Result, error) {
	if rs.VCs == 0 {
		rs.VCs = 2
	}
	rt, err := routing.NewRoutingFor(rs.Spec.Net, rs.Spec.Kind, rs.VCs)
	if err != nil {
		return sim.Result{}, err
	}
	h := 1
	if rs.SMART {
		h = 9
	}
	if rs.H > 0 {
		h = rs.H
	}
	src := rs.Source
	if src == nil {
		pat := traffic.PatternByName(rs.Pattern, rs.Spec.Net)
		if pat == nil {
			return sim.Result{}, fmt.Errorf("exp: unknown pattern %q", rs.Pattern)
		}
		src = &traffic.Synthetic{N: rs.Spec.Net.N(), Rate: rs.Rate, PacketFlits: 6, Pattern: pat}
	}
	warm, meas, drain := rs.Opts.Cycles()
	cfg := sim.Config{
		Net:           rs.Spec.Net,
		Routing:       rt,
		VCs:           rs.VCs,
		Scheme:        rs.Scheme,
		EdgeBufCap:    rs.BufCap,
		CBCap:         rs.CBCap,
		H:             h,
		Traffic:       src,
		Adaptive:      rs.Policy,
		Seed:          rs.Opts.Seed + 1,
		WarmupCycles:  warm,
		MeasureCycles: meas,
		DrainCycles:   drain,
	}
	s, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return s.Run(), nil
}

// MustRun is Run with panic-on-error for experiment bodies.
func MustRun(rs RunSpec) sim.Result {
	res, err := Run(rs)
	if err != nil {
		panic(err)
	}
	return res
}

// fmtLoad renders a load value compactly for row labels.
func fmtLoad(l float64) string { return fmt.Sprintf("%.3f", l) }

// fmtLat renders a latency, marking saturated points like the paper omits
// them.
func fmtLat(r sim.Result) string {
	if r.Saturated {
		return "sat"
	}
	return fmt.Sprintf("%.1f", r.AvgLatency)
}

// sortedKeys returns map keys in sorted order for deterministic tables.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
