// Analytic (non-simulation) experiments: Table 2, Table 3, Table 4, Fig. 5
// and Fig. 6.

package exp

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/stats"
)

// Table2 reproduces Table 2: every Slim NoC configuration with N <= 1300.
func Table2(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:    "tab2",
		Title: "Slim NoC configurations with N <= 1300 (Table 2)",
		Header: []string{"k'", "p", "ideal_p", "subscription", "N", "Nr", "q",
			"field", "pow2_N", "square_groups"},
	}
	for _, r := range core.EnumerateConfigs(1300) {
		field := "prime"
		if r.NonPrime {
			field = "non-prime"
		}
		t.AddRowF(r.KPrime, r.P, r.IdealP, fmt.Sprintf("%.0f%%", r.Subscription*100),
			r.N, r.Nr, r.Q, field, r.PowerOfTwoN, r.SquareGroups)
	}
	return []*stats.Table{t}
}

// Table3 reproduces Table 3: the hand-built operation tables of F8 and F9.
func Table3(ctx context.Context, o Options) []*stats.Table {
	var out []*stats.Table
	for _, q := range []int{9, 8} {
		f, err := gf.New(q)
		if err != nil {
			panic(err)
		}
		add := &stats.Table{
			ID:     fmt.Sprintf("tab3-add-F%d", q),
			Title:  fmt.Sprintf("Addition table of F%d (Table 3)", q),
			Header: headerFor(f),
		}
		mul := &stats.Table{
			ID:     fmt.Sprintf("tab3-mul-F%d", q),
			Title:  fmt.Sprintf("Product table of F%d (Table 3)", q),
			Header: headerFor(f),
		}
		for a := 0; a < q; a++ {
			arow := []string{f.Name(a)}
			mrow := []string{f.Name(a)}
			for b := 0; b < q; b++ {
				arow = append(arow, f.Name(f.Add(a, b)))
				mrow = append(mrow, f.Name(f.Mul(a, b)))
			}
			add.AddRow(arow...)
			mul.AddRow(mrow...)
		}
		neg := &stats.Table{
			ID:     fmt.Sprintf("tab3-neg-F%d", q),
			Title:  fmt.Sprintf("Inverse element table of F%d (Table 3)", q),
			Header: []string{"el", "-el"},
		}
		for a := 0; a < q; a++ {
			neg.AddRow(f.Name(a), f.Name(f.Neg(a)))
		}
		out = append(out, add, mul, neg)
	}
	return out
}

func headerFor(f *gf.Field) []string {
	h := []string{"+/x"}
	for a := 0; a < f.Order(); a++ {
		h = append(h, f.Name(a))
	}
	return h
}

// Table4 reproduces Table 4: the compared configurations for both size
// classes.
func Table4(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:     "tab4",
		Title:  "Considered configurations (Table 4)",
		Header: []string{"network", "D", "p", "k'", "k", "Nr", "N", "cycle_ns"},
	}
	names := []string{
		"t2d3", "t2d4", "cm3", "cm4", "fbf3", "fbf4", "pfbf3", "pfbf4", "sn_subgr_200",
		"t2d9", "t2d8", "cm9", "cm8", "fbf9", "fbf8", "pfbf9", "pfbf8", "sn_gr_1296",
	}
	for _, name := range names {
		spec := MustNet(name)
		n := spec.Net
		t.AddRowF(name, n.Diameter(), n.P, n.NetworkRadix(), n.RouterRadix(),
			n.Nr, n.N(), n.CycleTimeNs)
	}
	return []*stats.Table{t}
}

// Fig5 reproduces Fig. 5: average wire length M, total per-router buffer
// size without and with SMART, and the maximum wire crossing count versus
// the Eq. 3 bound, for every layout across network sizes.
func Fig5(ctx context.Context, o Options) []*stats.Table {
	qs := []int{3, 5, 7, 9, 11, 13}
	if o.Quick {
		qs = []int{3, 5, 9}
	}
	m := core.DefaultBufferModel()
	sm := m.WithSMART()

	mt := &stats.Table{ID: "fig5a", Title: "Average wire length M vs N per layout (Fig. 5a)",
		Header: []string{"q", "N_ideal"}}
	bt := &stats.Table{ID: "fig5b", Title: "Per-router buffer size, no SMART (Fig. 5b) [flits]",
		Header: []string{"q", "N_ideal"}}
	st := &stats.Table{ID: "fig5c", Title: "Per-router buffer size, SMART (Fig. 5c) [flits]",
		Header: []string{"q", "N_ideal"}}
	wt := &stats.Table{ID: "fig5d", Title: "Max wires over a router vs W bound, 22nm (Fig. 5d)",
		Header: []string{"q", "N_ideal"}}
	for _, l := range core.Layouts() {
		name := "sn_" + string(l)
		mt.Header = append(mt.Header, name)
		bt.Header = append(bt.Header, name)
		st.Header = append(st.Header, name)
		wt.Header = append(wt.Header, name)
	}
	bt.Header = append(bt.Header, "CBR20", "CBR40")
	st.Header = append(st.Header, "CBR20", "CBR40")
	wt.Header = append(wt.Header, "W_bound_22nm")

	w22 := core.WiringConstraints()[1]
	for _, q := range qs {
		kp, _ := core.KPrimeFor(q)
		p := (kp + 1) / 2
		s, err := core.New(core.Params{Q: q, P: p})
		if err != nil {
			panic(err)
		}
		mrow := []interface{}{q, s.N()}
		brow := []interface{}{q, s.N()}
		srow := []interface{}{q, s.N()}
		wrow := []interface{}{q, s.N()}
		var cb20, cb40 float64
		for _, l := range core.Layouts() {
			net, err := s.Network(l, o.Seed+7)
			if err != nil {
				panic(err)
			}
			mrow = append(mrow, net.AvgWireLength())
			brow = append(brow, m.PerRouterEdgeBuffers(net))
			srow = append(srow, sm.PerRouterEdgeBuffers(net))
			wrow = append(wrow, core.MaxWireCrossing(net))
			cb20 = m.PerRouterCentralBuffers(net, 20)
			cb40 = m.PerRouterCentralBuffers(net, 40)
		}
		brow = append(brow, cb20, cb40)
		srow = append(srow, cb20, cb40)
		wrow = append(wrow, w22.MaxWires())
		mt.AddRowF(mrow...)
		bt.AddRowF(brow...)
		st.AddRowF(srow...)
		wt.AddRowF(wrow...)
	}
	return []*stats.Table{mt, bt, st, wt}
}

// Fig6 reproduces Fig. 6: the distribution of link Manhattan distances for
// the group and subgroup layouts at N in {200, 1024, 1296}.
func Fig6(ctx context.Context, o Options) []*stats.Table {
	var out []*stats.Table
	for _, n := range []int{200, 1024, 1296} {
		params, err := core.FromNetworkSize(n)
		if err != nil {
			panic(err)
		}
		s, err := core.New(params)
		if err != nil {
			panic(err)
		}
		t := &stats.Table{
			ID:     fmt.Sprintf("fig6-N%d", n),
			Title:  fmt.Sprintf("Link distance distribution, N=%d (Fig. 6)", n),
			Header: []string{"distance_range", "sn_gr", "sn_subgr"},
		}
		gr, err := s.Network(core.LayoutGroup, 1)
		if err != nil {
			panic(err)
		}
		sg, err := s.Network(core.LayoutSubgroup, 1)
		if err != nil {
			panic(err)
		}
		dg := core.DistanceDistribution(gr)
		ds := core.DistanceDistribution(sg)
		bins := len(dg)
		if len(ds) > bins {
			bins = len(ds)
		}
		for b := 0; b < bins; b++ {
			t.AddRowF(fmt.Sprintf("%d-%d", 2*b+1, 2*b+2), at(dg, b), at(ds, b))
		}
		out = append(out, t)
	}
	return out
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}
