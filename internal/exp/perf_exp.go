// Simulation-based performance experiments: Fig. 1a, Fig. 10a, Fig. 11 and
// Figs. 12-14. Every figure is a load x network grid; the grids are
// expanded up front and submitted as one batch so the points run in
// parallel across cores (RunBatch), with results re-assembled into the
// paper's table shapes afterwards.

package exp

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// latencySweep runs one latency-vs-load series per network. All
// loads x networks points execute as a single parallel batch.
func latencySweep(ctx context.Context, id, title string, names []string,
	pattern string, smart bool, vcs int, o Options) *stats.Table {
	t := &stats.Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"load"}, names...),
	}
	specs := make([]NetSpec, len(names))
	for i, n := range names {
		specs[i] = MustNet(n)
	}
	loads := o.Loads()
	var points []RunSpec
	for _, load := range loads {
		for _, spec := range specs {
			points = append(points, RunSpec{
				Spec: spec, VCs: vcs, Pattern: pattern, Rate: load,
				SMART: smart, Opts: o,
			})
		}
	}
	results := MustRunBatch(ctx, o, points)
	for li, load := range loads {
		row := []interface{}{fmtLoad(load)}
		for ni := range specs {
			row = append(row, fmtLat(results[li*len(specs)+ni]))
		}
		t.AddRowF(row...)
	}
	return t
}

// Fig1a reproduces Fig. 1a: latency under an adversarial pattern at
// N = 1296 for SN versus mesh, torus and FBF.
func Fig1a(ctx context.Context, o Options) []*stats.Table {
	return []*stats.Table{latencySweep(ctx,
		"fig1a",
		"Average packet latency [cycles], ADV1, N=1296, SMART (Fig. 1a)",
		[]string{"cm9", "t2d9", "fbf9", "sn_gr_1296"},
		"ADV1", true, 2, o)}
}

// Fig10a reproduces Fig. 10a: SN layout comparison on synthetic traffic at
// N = 200, no SMART.
func Fig10a(ctx context.Context, o Options) []*stats.Table {
	var out []*stats.Table
	for _, pat := range []string{"REV", "RND", "SHF"} {
		out = append(out, latencySweep(ctx,
			fmt.Sprintf("fig10a-%s", pat),
			fmt.Sprintf("Latency per SN layout, %s, N=200, no SMART (Fig. 10a)", pat),
			[]string{"sn_basic_200", "sn_rand_200", "sn_gr_200", "sn_subgr_200"},
			pat, false, 2, o))
	}
	return out
}

// bufVariant describes one Fig. 11 buffering strategy.
type bufVariant struct {
	name   string
	scheme sim.BufferScheme
	bufCap func(int) int
	cbCap  int
}

func bufVariants(smart bool) []bufVariant {
	h := 1
	if smart {
		h = 9
	}
	return []bufVariant{
		{name: "EB-Small", scheme: sim.EdgeBuffers, bufCap: func(int) int { return 5 }},
		{name: "EB-Var", scheme: sim.EdgeBuffers, bufCap: sim.EdgeBufVar(h, 2)},
		{name: "EB-Large", scheme: sim.EdgeBuffers, bufCap: func(int) int { return 15 }},
		{name: "EL-Links", scheme: sim.ElasticLinks},
		{name: "CBR-40", scheme: sim.CentralBuffer, cbCap: 40},
		{name: "CBR-6", scheme: sim.CentralBuffer, cbCap: 6},
	}
}

// Fig11 reproduces Fig. 11: the impact of buffering strategies on SN
// latency, for N in {200, 1296}, with and without SMART links.
func Fig11(ctx context.Context, o Options) []*stats.Table {
	var out []*stats.Table
	sizes := []struct {
		n    int
		spec string
	}{{200, "sn_subgr_200"}, {1296, "sn_gr_1296"}}
	for _, sz := range sizes {
		for _, smart := range []bool{false, true} {
			label := "No-SMART"
			if smart {
				label = "SMART"
			}
			t := &stats.Table{
				ID:     fmt.Sprintf("fig11-%d-%s", sz.n, label),
				Title:  fmt.Sprintf("Buffering strategies, N=%d, %s (Fig. 11)", sz.n, label),
				Header: []string{"load"},
			}
			variants := bufVariants(smart)
			for _, v := range variants {
				t.Header = append(t.Header, v.name)
			}
			spec := MustNet(sz.spec)
			loads := o.Loads()
			var points []RunSpec
			for _, load := range loads {
				for _, v := range variants {
					points = append(points, RunSpec{
						Spec: spec, VCs: 2, Scheme: v.scheme, BufCap: v.bufCap,
						CBCap: v.cbCap, SMART: smart, Pattern: "RND", Rate: load,
						Opts: o,
					})
				}
			}
			results := MustRunBatch(ctx, o, points)
			for li, load := range loads {
				row := []interface{}{fmtLoad(load)}
				for vi := range variants {
					row = append(row, fmtLat(results[li*len(variants)+vi]))
				}
				t.AddRowF(row...)
			}
			out = append(out, t)
		}
	}
	return out
}

// Fig12 reproduces Fig. 12: synthetic traffic with SMART links for the small
// networks (N in {192, 200}).
func Fig12(ctx context.Context, o Options) []*stats.Table {
	var out []*stats.Table
	for _, pat := range []string{"ADV1", "REV", "RND", "SHF"} {
		out = append(out, latencySweep(ctx,
			fmt.Sprintf("fig12-%s", pat),
			fmt.Sprintf("Latency, %s, N in {192,200}, SMART (Fig. 12)", pat),
			[]string{"cm3", "t2d3", "pfbf3", "pfbf4", "sn_subgr_200", "fbf3"},
			pat, true, 2, o))
	}
	return out
}

// Fig13 reproduces Fig. 13: synthetic traffic with SMART links at N = 1296.
func Fig13(ctx context.Context, o Options) []*stats.Table {
	var out []*stats.Table
	for _, pat := range []string{"ADV1", "REV", "RND", "SHF"} {
		out = append(out, latencySweep(ctx,
			fmt.Sprintf("fig13-%s", pat),
			fmt.Sprintf("Latency, %s, N=1296, SMART (Fig. 13)", pat),
			[]string{"cm9", "t2d9", "pfbf9", "sn_gr_1296", "fbf9"},
			pat, true, 2, o))
	}
	return out
}

// Fig14 reproduces Fig. 14: the small networks without SMART links.
func Fig14(ctx context.Context, o Options) []*stats.Table {
	var out []*stats.Table
	for _, pat := range []string{"ADV1", "REV", "RND", "SHF"} {
		out = append(out, latencySweep(ctx,
			fmt.Sprintf("fig14-%s", pat),
			fmt.Sprintf("Latency, %s, N in {192,200}, no SMART (Fig. 14)", pat),
			[]string{"cm3", "t2d3", "pfbf3", "sn_subgr_200", "fbf3"},
			pat, false, 2, o))
	}
	return out
}

// Fig19Latency reproduces the latency panel of Fig. 19 (N = 54, SMART).
func Fig19Latency(ctx context.Context, o Options) []*stats.Table {
	return []*stats.Table{latencySweep(ctx,
		"fig19a",
		"Latency, RND, N=54, SMART (Fig. 19a)",
		[]string{"fbf54", "pfbf54", "sn_subgr_54", "t2d54"},
		"RND", true, 2, o)}
}
