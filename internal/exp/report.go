// Per-figure reproduction reports: the rendering layer between manifest
// campaigns and the Markdown/CSV files cmd/snrepro writes under
// docs/results/. Reports are a pure function of the point results, so a
// resumed or fully cached rerun emits byte-identical files.

package exp

import (
	"context"
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/stats"
	"repro/slimnoc"
)

// FigureRun is the outcome of reproducing one manifest figure: the point
// results of each of its sweeps (parallel to Figure.Sweeps) and the results
// of each of its saturation searches (parallel to Figure.Sats).
type FigureRun struct {
	Figure  Figure
	Results [][]slimnoc.PointResult
	Sats    []slimnoc.SaturationResult
}

// RunFigure executes every sweep and saturation search of a manifest figure
// through one campaign (shared network/route-table caches; shared result
// store across everything when the caller attaches one via
// slimnoc.WithStore, so search probes and sweep points deduplicate). The
// first campaign-level error — in practice only context cancellation —
// aborts and returns the partial FigureRun.
func RunFigure(ctx context.Context, f Figure, o Options, copts ...slimnoc.CampaignOption) (FigureRun, error) {
	run := FigureRun{Figure: f}
	// The figure's declared budget applies unless the caller overrides it:
	// a positive Options.MemBudget replaces it, a negative one disables it.
	budget := f.MemBudget
	if o.MemBudget != 0 {
		budget = o.MemBudget
	}
	base := []slimnoc.CampaignOption{
		slimnoc.WithJobs(o.Jobs), slimnoc.WithPointEngineJobs(o.EngineJobs),
	}
	if budget > 0 {
		base = append(base, slimnoc.WithPointMemBudget(budget))
	}
	campaign := slimnoc.NewCampaign(append(base, copts...)...)
	for _, sweep := range f.Sweeps {
		points, err := sweep.Points()
		if err != nil {
			return run, err
		}
		results, err := campaign.Run(ctx, points)
		run.Results = append(run.Results, results)
		if err != nil {
			return run, err
		}
	}
	for _, sat := range f.Sats {
		res, err := campaign.SaturationSearch(ctx, sat)
		run.Sats = append(run.Sats, res)
		if err != nil {
			return run, err
		}
	}
	return run, nil
}

// CachedCount returns how many executed points — sweep points and
// saturation-search probes alike — were served from the result store versus
// simulated fresh.
func (r FigureRun) CachedCount() (cached, fresh int) {
	count := func(p slimnoc.PointResult) {
		if p.Err != nil {
			return
		}
		if p.Cached {
			cached++
		} else {
			fresh++
		}
	}
	for _, sweep := range r.Results {
		for _, p := range sweep {
			count(p)
		}
	}
	for _, sat := range r.Sats {
		for _, p := range sat.Probes {
			count(p)
		}
	}
	return cached, fresh
}

// reportHeader is the per-point column set of figure reports. The process
// column spells out the temporal process (bernoulli when defaulted) so
// mixed-workload grids stay distinguishable in the rendered files.
var reportHeader = []string{
	"point", "network", "pattern", "process", "trace", "scheme", "vcs", "load", "seed",
	"latency_cycles", "latency_ns", "p99_cycles", "throughput", "avg_hops",
	"saturated", "error",
}

// Tables renders one stats.Table per sweep, a row per point in submission
// order.
func (r FigureRun) Tables() []*stats.Table {
	var out []*stats.Table
	for si, sweep := range r.Figure.Sweeps {
		t := &stats.Table{
			ID:     sweep.Name,
			Title:  fmt.Sprintf("%s (%s), sweep %d/%d", r.Figure.Title, r.Figure.Section, si+1, len(r.Figure.Sweeps)),
			Header: reportHeader,
		}
		if si >= len(r.Results) {
			out = append(out, t)
			continue
		}
		for _, p := range r.Results[si] {
			t.AddRow(pointRow(p)...)
		}
		out = append(out, t)
	}
	return out
}

// pointRow flattens one point result into report cells.
func pointRow(p slimnoc.PointResult) []string {
	spec := p.Spec
	netName := spec.Network.Preset
	if netName == "" {
		netName = spec.Network.Topology
	}
	row := []string{
		spec.Name, netName, spec.Traffic.Pattern, slimnoc.DisplayProcess(spec.Traffic), spec.Traffic.Trace,
		spec.Buffering.Scheme, strconv.Itoa(spec.Routing.VCs),
		strconv.FormatFloat(spec.Traffic.Rate, 'g', -1, 64),
		strconv.FormatInt(spec.Sim.Seed, 10),
	}
	if p.Result != nil {
		m := p.Result.Metrics
		row[1] = p.Result.Network.Name
		row = append(row,
			fmt.Sprintf("%.4g", m.AvgLatencyCycles),
			fmt.Sprintf("%.4g", m.AvgLatencyNs),
			fmt.Sprintf("%.4g", m.P99LatencyCycles),
			fmt.Sprintf("%.4g", m.Throughput),
			fmt.Sprintf("%.4g", m.AvgHops),
			strconv.FormatBool(m.Saturated),
		)
	} else {
		row = append(row, "", "", "", "", "", "")
	}
	return append(row, p.Error)
}

// satHeader is the per-search column set of saturation reports.
var satHeader = []string{
	"search", "network", "pattern", "process", "scheme",
	"saturation_load", "threshold_cycles", "base_latency", "probes", "bracket",
}

// SatTable renders the figure's saturation searches as one summary table
// (nil when the figure has none). Rows are deterministic for a fixed spec —
// the search sequence never depends on store state — so warm and cold
// reports stay byte-identical.
func (r FigureRun) SatTable() *stats.Table {
	if len(r.Figure.Sats) == 0 {
		return nil
	}
	t := &stats.Table{
		ID:     r.Figure.ID + "/saturation",
		Title:  fmt.Sprintf("%s (%s), saturation searches", r.Figure.Title, r.Figure.Section),
		Header: satHeader,
	}
	for si, spec := range r.Figure.Sats {
		norm := spec.Normalized()
		row := []string{
			spec.Name, norm.Base.Network.Preset, norm.Base.Traffic.Pattern,
			slimnoc.DisplayProcess(norm.Base.Traffic), norm.Base.Buffering.Scheme,
		}
		if si < len(r.Sats) {
			res := r.Sats[si]
			bracket := "crossed"
			switch {
			case res.AtMin:
				bracket = "at_min"
			case res.AtMax:
				bracket = "at_max"
			}
			row = append(row,
				fmt.Sprintf("%.3f", res.SaturationLoad),
				fmt.Sprintf("%.4g", res.Threshold),
				fmt.Sprintf("%.4g", res.BaseLatency),
				strconv.Itoa(len(res.Probes)),
				bracket,
			)
		} else {
			row = append(row, "", "", "", "", "")
		}
		t.AddRow(row...)
	}
	return t
}

// Markdown renders the figure's full report: title, section, notes, one
// pipe table per sweep, and the saturation summary when the figure carries
// searches.
func (r FigureRun) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n\n", r.Figure.ID, r.Figure.Title)
	fmt.Fprintf(&b, "Paper reference: %s.\n\n", r.Figure.Section)
	if r.Figure.Analytic {
		b.WriteString("This artifact is computed entirely from the analytical models; it has no simulation grid.\n")
	}
	if r.Figure.Notes != "" {
		fmt.Fprintf(&b, "> %s\n\n", r.Figure.Notes)
	}
	for _, t := range r.Tables() {
		b.WriteString(t.Markdown())
		b.WriteByte('\n')
	}
	if t := r.SatTable(); t != nil {
		b.WriteString(t.Markdown())
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders every sweep's points — and every saturation search's probes —
// as one CSV document with a leading sweep/search column. Cells are
// RFC-4180 quoted, so free-text columns (error messages) never break row
// alignment.
func (r FigureRun) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(append([]string{"sweep"}, reportHeader...))
	for si, sweep := range r.Results {
		name := ""
		if si < len(r.Figure.Sweeps) {
			name = r.Figure.Sweeps[si].Name
		}
		for _, p := range sweep {
			w.Write(append([]string{name}, pointRow(p)...))
		}
	}
	for si, sat := range r.Sats {
		name := ""
		if si < len(r.Figure.Sats) {
			name = r.Figure.Sats[si].Name
		}
		for _, p := range sat.Probes {
			w.Write(append([]string{name}, pointRow(p)...))
		}
	}
	w.Flush()
	return b.String()
}
