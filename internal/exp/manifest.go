// The reproduction manifest: a machine-readable registry mapping every
// figure and table of the paper's evaluation to the declarative SweepSpecs
// that generate its simulation grid. cmd/snrepro consumes it to run any
// subset of the evaluation against a content-addressed result store
// (resumable, deduplicated across figures); the classic Experiment registry
// (registry.go) remains the path that post-processes raw results into the
// paper's exact derived tables (power models, EDP, gain percentages).

package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/slimnoc"
)

// Figure is one manifest entry: a paper artifact and the declarative sweeps
// that reproduce its simulation grid.
type Figure struct {
	// ID matches the Experiment registry ID (fig12, tab5, abl-vcs, ...).
	ID string
	// Title names the artifact as the paper does.
	Title string
	// Section cites the paper section the artifact appears in.
	Section string
	// Sweeps are the figure's simulation grids. A figure spanning several
	// panels or base-spec variations (buffer capacities, SMART on/off,
	// trace benchmarks, routing algorithms) carries one sweep per
	// variation; points identical across sweeps and figures share one
	// result-store entry (slimnoc.PointKey ignores labels).
	Sweeps []slimnoc.SweepSpec
	// Sats are the figure's saturation-load searches (the sat-* family):
	// each binary-searches the offered load where the configuration's mean
	// latency crosses the threshold, reusing the result store so probes are
	// cached, resumable, and shared with grid sweeps over the same loads.
	Sats []slimnoc.SaturationSpec
	// MemBudget declares the per-point engine memory budget in bytes for
	// figures whose instances are large enough to need one (the scale-*
	// family). RunFigure enforces it via slimnoc.WithPointMemBudget unless
	// Options.MemBudget overrides; 0 means unbudgeted.
	MemBudget int64
	// Analytic marks artifacts computed entirely from the analytical
	// area/power/layout models: they have no simulation grid, and snrepro
	// defers to `snexp -exp <id>` for them.
	Analytic bool
	// Notes records what the declarative grids do not capture (derived
	// post-processing, non-declarative network surgery), and how to get it.
	Notes string
}

// loadsAxis is the shared offered-load axis for the mode.
func loadsAxis(o Options) []float64 { return o.Loads() }

// simBase returns the base RunSpec every manifest sweep starts from.
func simBase(o Options) slimnoc.RunSpec {
	return slimnoc.RunSpec{Sim: o.SimSpec()}
}

// latencyGrid builds the standard latency-vs-load sweep: one network axis,
// one or more patterns, the mode's loads.
func latencyGrid(o Options, name string, presets, patterns []string, smart bool) slimnoc.SweepSpec {
	base := simBase(o)
	base.SMART = smart
	return slimnoc.SweepSpec{
		Name: name,
		Base: base,
		Axes: slimnoc.SweepAxes{
			Presets:  presets,
			Patterns: patterns,
			Loads:    loadsAxis(o),
		},
	}
}

// activityGrid builds the saturating-RND sweep feeding the power models:
// every network once, RND at the paper's 0.24 comparison load, SMART.
func activityGrid(o Options, name string, presets []string) slimnoc.SweepSpec {
	base := simBase(o)
	base.SMART = true
	base.Traffic = slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.24}
	return slimnoc.SweepSpec{
		Name: name,
		Base: base,
		Axes: slimnoc.SweepAxes{Presets: presets},
	}
}

// traceGrids builds one sweep per PARSEC/SPLASH benchmark over the given
// networks (the traces axis: sources are stateful, so each benchmark is a
// base-spec variation rather than a sweep axis).
func traceGrids(o Options, name string, presets []string, smart bool) []slimnoc.SweepSpec {
	var out []slimnoc.SweepSpec
	for _, b := range benchList(o) {
		base := simBase(o)
		base.SMART = smart
		base.Traffic = slimnoc.TrafficSpec{Pattern: "trace", Trace: b.Name}
		out = append(out, slimnoc.SweepSpec{
			Name: fmt.Sprintf("%s/%s", name, b.Name),
			Base: base,
			Axes: slimnoc.SweepAxes{Presets: presets},
		})
	}
	return out
}

// Manifest returns the full reproduction manifest for the mode. Every entry
// with sweeps expands to concrete, validated RunSpecs whose per-point seeds
// derive from o.Seed, so two invocations with equal Options produce
// identical grids — the property that makes a shared result store serve
// them byte-identically.
func Manifest(o Options) []Figure {
	loads := loadsAxis(o)
	smallNets := []string{"cm3", "t2d3", "pfbf3", "pfbf4", "sn_subgr_200", "fbf3"}
	patterns := []string{"adv1", "rev", "rnd", "shf"}

	var figs []Figure
	add := func(f Figure) { figs = append(figs, f) }

	add(Figure{
		ID: "fig1a", Title: "Latency under adversarial traffic, N=1296", Section: "Fig. 1a",
		Sweeps: []slimnoc.SweepSpec{
			latencyGrid(o, "fig1a", []string{"cm9", "t2d9", "fbf9", "sn_gr_1296"}, []string{"adv1"}, true),
		},
	})
	add(Figure{
		ID: "fig10a", Title: "SN layouts on synthetic traffic, N=200, no SMART", Section: "Fig. 10a",
		Sweeps: []slimnoc.SweepSpec{
			latencyGrid(o, "fig10a",
				[]string{"sn_basic_200", "sn_rand_200", "sn_gr_200", "sn_subgr_200"},
				[]string{"rev", "rnd", "shf"}, false),
		},
	})
	add(Figure{
		ID: "fig10b", Title: "SN layouts on PARSEC/SPLASH, N=200, no SMART", Section: "Fig. 10b",
		Sweeps: traceGrids(o, "fig10b",
			[]string{"sn_basic_200", "sn_gr_200", "sn_subgr_200"}, false),
	})
	add(fig11Manifest(o, loads))
	add(Figure{
		ID: "fig12", Title: "Synthetic traffic, small networks (N in {192,200}), SMART", Section: "Fig. 12",
		Sweeps: []slimnoc.SweepSpec{latencyGrid(o, "fig12", smallNets, patterns, true)},
	})
	add(Figure{
		ID: "fig13", Title: "Synthetic traffic, N=1296, SMART", Section: "Fig. 13",
		Sweeps: []slimnoc.SweepSpec{
			latencyGrid(o, "fig13", []string{"cm9", "t2d9", "pfbf9", "sn_gr_1296", "fbf9"}, patterns, true),
		},
	})
	add(Figure{
		ID: "fig14", Title: "Synthetic traffic, small networks, no SMART", Section: "Fig. 14",
		Sweeps: []slimnoc.SweepSpec{
			latencyGrid(o, "fig14", []string{"cm3", "t2d3", "pfbf3", "sn_subgr_200", "fbf3"}, patterns, false),
		},
	})
	add(Figure{
		ID: "fig15", Title: "Area and static power, N=200, no SMART", Section: "Fig. 15",
		Analytic: true,
		Notes:    "Computed entirely from the analytical area/power models; run `snexp -exp fig15`.",
	})
	add(Figure{
		ID: "fig16", Title: "Area/power per node, small networks, SMART, 45+22nm", Section: "Fig. 16",
		Sweeps: []slimnoc.SweepSpec{
			activityGrid(o, "fig16", []string{"fbf3", "fbf4", "pfbf3", "sn_subgr_200", "t2d4", "cm4"}),
		},
		Notes: "The grid provides the dynamic-power activity runs; area and static power are analytical. `snexp -exp fig16` renders the full per-node tables.",
	})
	add(Figure{
		ID: "fig17", Title: "Area/power per node, N=1296, SMART, 45+22nm", Section: "Fig. 17",
		Sweeps: []slimnoc.SweepSpec{
			activityGrid(o, "fig17", []string{"fbf8", "fbf9", "pfbf9", "sn_gr_1296", "t2d9", "cm9"}),
		},
		Notes: "As fig16; `snexp -exp fig17` renders the derived tables.",
	})
	add(Figure{
		ID: "fig18", Title: "Energy-delay product on PARSEC/SPLASH, SMART", Section: "Fig. 18",
		Sweeps: traceGrids(o, "fig18", []string{"fbf3", "pfbf3", "cm3", "sn_subgr_200"}, true),
		Notes:  "EDP normalisation against FBF is derived post-processing; `snexp -exp fig18` renders it from the same runs.",
	})
	add(Figure{
		ID: "fig19", Title: "Small-scale analysis, N=54", Section: "Fig. 19",
		Sweeps: []slimnoc.SweepSpec{
			latencyGrid(o, "fig19a", []string{"fbf54", "pfbf54", "sn_subgr_54", "t2d54"}, []string{"rnd"}, true),
			activityGrid(o, "fig19bc", []string{"sn_subgr_54", "fbf54", "pfbf54", "t2d54"}),
		},
		Notes: "fig19a is the latency panel; fig19bc feeds the area/power panels (`snexp -exp fig19` for the derived tables).",
	})
	add(fig20Manifest(o, loads))
	add(Figure{
		ID: "tab5", Title: "SN throughput/power advantage (RND)", Section: "Table 5",
		Sweeps: []slimnoc.SweepSpec{
			activityGrid(o, "tab5", []string{
				"sn_subgr_200", "t2d4", "cm4", "pfbf3", "fbf3", "fbf4",
				"sn_gr_1296", "t2d9", "cm9", "pfbf9", "fbf8", "fbf9",
			}),
		},
		Notes: "Gain percentages divide throughput/power pairs per tech node; `snexp -exp tab5` renders them from the same runs.",
	})
	add(tab6Manifest(o))
	add(sensSizesManifest(o))
	add(Figure{
		ID: "sens-conc", Title: "Concentration sweep, SN q=8", Section: "§5.5 / §2.1",
		Sweeps: []slimnoc.SweepSpec{sensConcSweep(o)},
	})
	add(Figure{
		ID: "sens-cycle", Title: "Cycle-time sensitivity, N in {192,200}", Section: "§5.1",
		Sweeps: []slimnoc.SweepSpec{func() slimnoc.SweepSpec {
			base := simBase(o)
			base.SMART = true
			base.Traffic = slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.06}
			return slimnoc.SweepSpec{
				Name: "sens-cycle",
				Base: base,
				Axes: slimnoc.SweepAxes{Presets: []string{"cm3", "t2d3", "pfbf3", "sn_subgr_200", "fbf3"}},
			}
		}()},
		Notes: "Nanosecond conversions under per-topology vs uniform clocks are derived; `snexp -exp sens-cycle` renders them.",
	})
	add(Figure{
		ID: "resil", Title: "Link-failure resilience, N=200-class networks", Section: "§2.1",
		Sweeps: []slimnoc.SweepSpec{func() slimnoc.SweepSpec {
			base := simBase(o)
			base.Traffic = slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.06}
			return slimnoc.SweepSpec{
				Name: "resil",
				Base: base,
				Axes: slimnoc.SweepAxes{Presets: []string{"sn_subgr_200", "fbf4", "t2d4"}},
			}
		}()},
		Notes: "The declarative grid covers the undamaged baselines. Failed-link variants surgically remove links from built networks (not expressible as specs); `snexp -exp resil` runs the full study.",
	})
	add(ablCBSizeManifest(o))
	add(Figure{
		ID: "abl-vcs", Title: "Virtual-channel count ablation, sn_subgr_200", Section: "§4.3",
		Sweeps: []slimnoc.SweepSpec{func() slimnoc.SweepSpec {
			base := simBase(o)
			base.Traffic = slimnoc.TrafficSpec{Pattern: "rnd"}
			return slimnoc.SweepSpec{
				Name: "abl-vcs",
				Base: base,
				Axes: slimnoc.SweepAxes{
					Presets: []string{"sn_subgr_200"},
					VCs:     []int{2, 3, 4},
					Loads:   []float64{0.06, 0.30},
				},
			}
		}()},
	})
	add(ablSmartHManifest(o))
	for _, f := range satManifest(o) {
		add(f)
	}
	for _, f := range scaleManifest(o) {
		add(f)
	}
	return figs
}

// scaleManifest builds the scale-* family: the event-calendar engine at
// 10k-endpoint scale, SN against its Table 4 baseline siblings, under a
// declared per-point memory budget. scale-nets searches each topology's
// saturation load — where its throughput collapses — while scale-smoke is
// the CI-sized single point proving a 10k-endpoint SN builds and runs
// inside the budget.
func scaleManifest(o Options) []Figure {
	base := func(preset, pattern string) slimnoc.RunSpec {
		b := simBase(o)
		b.SMART = true
		b.Network = slimnoc.NetworkSpec{Preset: preset}
		b.Traffic = slimnoc.TrafficSpec{Pattern: pattern}
		return b
	}
	// The grid baselines keep dense DOR tables, and since the route tables
	// started interning per-hop next-hop words for the arbitration fast
	// path, the long-path 10k instances intern ~390 MiB (t2d10k averages
	// ~18 hops across 1260^2 pairs) — a deliberate table-bytes-for-cycle-
	// loop-speed trade. 512 MiB fits every 10k instance while still
	// rejecting the 100k grid family, whose dense tables run to gigabytes.
	// The SN instances are unaffected: generic-minimal routes compile to
	// the compact one-byte-per-pair form well inside the old budget, so the
	// CI smoke figure keeps the tighter 256 MiB guard.
	const budget = int64(1) << 29
	const smokeBudget = int64(1) << 28

	nets := []string{"sn_subgr_10000", "cm10k", "t2d10k", "fbf10k"}
	patterns := []string{"rnd", "adv1"}
	if o.Quick {
		patterns = []string{"rnd"}
	}
	var sats []slimnoc.SaturationSpec
	for _, net := range nets {
		for _, pat := range patterns {
			sats = append(sats, satSearch(o, fmt.Sprintf("scale-nets/%s/%s", net, pat), base(net, pat)))
		}
	}

	smoke := base("sn_subgr_10000", "rnd")
	return []Figure{
		{
			ID: "scale-nets", Title: "Saturation collapse at N=10080, SN vs Table 4 baselines", Section: "§5.5 scale-out",
			Sats:      sats,
			MemBudget: budget,
			Notes: "Each search brackets the load where the topology's throughput collapses. " +
				"The cm100k/t2d100k/fbf100k presets and sn_subgr_99856 extend the family to ~100k endpoints " +
				"but are deliberately absent: the SN's minimal routes now compress to one next-hop byte per pair " +
				"(12482^2 ~ 149 MiB, inside even the smoke budget) but one saturated probe on 12k routers is hours " +
				"of engine work, and the grid baselines keep dense DOR tables in the gigabytes; " +
				"run them explicitly with patience (and, for the grids, a raised -mem-budget).",
		},
		{
			ID: "scale-smoke", Title: "10k-endpoint smoke point under memory budget", Section: "CI",
			Sweeps: []slimnoc.SweepSpec{{
				Name: "scale-smoke",
				Base: smoke,
				Axes: slimnoc.SweepAxes{
					Presets: []string{"sn_subgr_10000"},
					Loads:   []float64{0.008},
				},
			}},
			MemBudget: smokeBudget,
			Notes:     "One low-load point on the q=25 subgroup SN (1250 routers, 10000 endpoints): the idle-heavy regime the event calendar accelerates, run inside a 256 MiB budget the SN's table never strains.",
		},
	}
}

// satSearch builds one saturation search with the mode's grid resolution:
// quick mode coarsens the step and lowers the ceiling so CI-sized runs stay
// around half a dozen probes, full mode matches the paper's load range.
func satSearch(o Options, name string, base slimnoc.RunSpec) slimnoc.SaturationSpec {
	s := slimnoc.SaturationSpec{
		Name:          name,
		Base:          base,
		MinLoad:       0.04,
		MaxLoad:       0.6,
		Step:          0.02,
		LatencyFactor: 3,
	}
	if o.Quick {
		s.MaxLoad, s.Step = 0.44, 0.04
	}
	return s
}

// satManifest builds the sat-* family: saturation load per network, per
// buffering scheme, and per temporal process, for the Slim NoC against the
// Table 4 baselines. Searches have no fixed grid to sweep — snrepro runs
// them through Campaign.SaturationSearch — but their probes live in the same
// result store as every other point, so a sat figure warms the latency-vs-
// load figures (and vice versa) wherever loads coincide.
func satManifest(o Options) []Figure {
	base := func(preset, pattern string) slimnoc.RunSpec {
		b := simBase(o)
		b.SMART = true
		b.Network = slimnoc.NetworkSpec{Preset: preset}
		b.Traffic = slimnoc.TrafficSpec{Pattern: pattern}
		return b
	}

	var figs []Figure

	nets := []string{"cm3", "t2d3", "fbf3", "pfbf3", "sn_subgr_200"}
	patterns := []string{"rnd", "adv1"}
	if o.Quick {
		patterns = []string{"rnd"}
	}
	var netSats []slimnoc.SaturationSpec
	for _, net := range nets {
		for _, pat := range patterns {
			netSats = append(netSats, satSearch(o, fmt.Sprintf("sat-nets/%s/%s", net, pat), base(net, pat)))
		}
	}
	figs = append(figs, Figure{
		ID: "sat-nets", Title: "Saturation load per network, SN vs Table 4 baselines", Section: "§5.1 / Table 4",
		Sats:  netSats,
		Notes: "Threshold: mean latency 3x the zero-load baseline (or the run's own saturation flag).",
	})

	var schemeSats []slimnoc.SaturationSpec
	for _, scheme := range []string{"eb", "eb-large", "el", "cbr"} {
		b := base("sn_subgr_200", "rnd")
		b.Buffering = slimnoc.BufferingSpec{Scheme: scheme}
		schemeSats = append(schemeSats, satSearch(o, "sat-schemes/"+scheme, b))
	}
	figs = append(figs, Figure{
		ID: "sat-schemes", Title: "Saturation load per buffering scheme, sn_subgr_200", Section: "§4 / Fig. 11",
		Sats: schemeSats,
	})

	var procSats []slimnoc.SaturationSpec
	for _, proc := range []string{"bernoulli", "burst", "mmpp"} {
		b := base("sn_subgr_200", "rnd")
		b.Traffic.Process = proc
		procSats = append(procSats, satSearch(o, "sat-process/"+proc, b))
	}
	figs = append(figs, Figure{
		ID: "sat-process", Title: "Saturation load per temporal process, sn_subgr_200", Section: "workload decomposition",
		Sats:  procSats,
		Notes: "Open-loop processes only: the request-reply closed loop self-throttles and has no load knob to search.",
	})

	return figs
}

// fig11Manifest builds the buffering-strategy grids: the registry schemes
// sweep as an axis; the two central-buffer capacities are base variations.
func fig11Manifest(o Options, loads []float64) Figure {
	var sweeps []slimnoc.SweepSpec
	for _, net := range []string{"sn_subgr_200", "sn_gr_1296"} {
		for _, smart := range []bool{false, true} {
			label := "nosmart"
			if smart {
				label = "smart"
			}
			base := simBase(o)
			base.SMART = smart
			sweeps = append(sweeps, slimnoc.SweepSpec{
				Name: fmt.Sprintf("fig11/%s/%s", net, label),
				Base: base,
				Axes: slimnoc.SweepAxes{
					Presets:  []string{net},
					Patterns: []string{"rnd"},
					Schemes:  []string{"eb", "eb-var", "eb-large", "el"},
					Loads:    loads,
				},
			})
			for _, cb := range []int{40, 6} {
				cbBase := base
				cbBase.Buffering = slimnoc.BufferingSpec{Scheme: "cbr", CBCap: cb}
				cbBase.Traffic = slimnoc.TrafficSpec{Pattern: "rnd"}
				sweeps = append(sweeps, slimnoc.SweepSpec{
					Name: fmt.Sprintf("fig11/%s/%s/cbr%d", net, label, cb),
					Base: cbBase,
					Axes: slimnoc.SweepAxes{Presets: []string{net}, Loads: loads},
				})
			}
		}
	}
	return Figure{
		ID: "fig11", Title: "Buffering strategies, N in {200, 1296}", Section: "Fig. 11",
		Sweeps: sweeps,
		Notes:  "CBR capacities 40 and 6 are base-spec variations (capacity is not a sweep axis).",
	}
}

// fig20Manifest builds the adaptive-routing grids: one sweep per
// (network, registered algorithm) pair, matching the Fig. 20 variants.
func fig20Manifest(o Options, loads []float64) Figure {
	variants := []struct {
		net, alg string
	}{
		{"sn_subgr_200", "auto"},
		{"sn_subgr_200", "ugal-l"},
		{"sn_subgr_200", "ugal-g"},
		{"fbf4", "auto"},
		{"fbf4", "ugal-l"},
		{"fbf4", "min-adapt"},
	}
	var sweeps []slimnoc.SweepSpec
	for _, v := range variants {
		base := simBase(o)
		base.Routing = slimnoc.RoutingSpec{Algorithm: v.alg, VCs: 4}
		sweeps = append(sweeps, slimnoc.SweepSpec{
			Name: fmt.Sprintf("fig20/%s/%s", v.net, v.alg),
			Base: base,
			Axes: slimnoc.SweepAxes{
				Presets:  []string{v.net},
				Patterns: []string{"rnd", "asym"},
				Loads:    loads,
			},
		})
	}
	return Figure{
		ID: "fig20", Title: "Adaptive routing study, N=200, input-queued routers", Section: "Fig. 20 / §6",
		Sweeps: sweeps,
		Notes:  "`auto` is the static minimal baseline the figure labels MIN.",
	}
}

// tab6Manifest pairs SMART-off and SMART-on trace runs per benchmark.
func tab6Manifest(o Options) Figure {
	nets := []string{"fbf3", "pfbf3", "cm3", "sn_subgr_200"}
	sweeps := traceGrids(o, "tab6/nosmart", nets, false)
	sweeps = append(sweeps, traceGrids(o, "tab6/smart", nets, true)...)
	return Figure{
		ID: "tab6", Title: "Latency decrease from SMART, PARSEC/SPLASH", Section: "Table 6",
		Sweeps: sweeps,
		Notes:  "The percentage gain pairs each benchmark's SMART and no-SMART runs; `snexp -exp tab6` renders it.",
	}
}

// sensSizesManifest mixes preset SNs with explicitly parameterised torus
// and FBF networks at the §5.5 sizes.
func sensSizesManifest(o Options) Figure {
	type size struct {
		n          int
		sn         string
		x, y, conc int
	}
	sizes := []size{
		{588, "sn_subgr_588", 14, 7, 6},
		{686, "sn_subgr_686", 14, 7, 7},
		{1024, "sn_subgr_1024", 16, 8, 8},
	}
	if o.Quick {
		sizes = sizes[2:]
	}
	var sweeps []slimnoc.SweepSpec
	for _, s := range sizes {
		base := simBase(o)
		base.SMART = true
		base.Traffic = slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.06}
		sweeps = append(sweeps, slimnoc.SweepSpec{
			Name: fmt.Sprintf("sens-sizes/%d", s.n),
			Base: base,
			Axes: slimnoc.SweepAxes{
				Presets: []string{s.sn},
				Networks: []slimnoc.NetworkSpec{
					{Topology: "torus", X: s.x, Y: s.y, Conc: s.conc},
					{Topology: "flatfly", X: s.x, Y: s.y, Conc: s.conc},
				},
			},
		})
	}
	return Figure{
		ID: "sens-sizes", Title: "Other network sizes: N in {588, 686, 1024}", Section: "§5.5",
		Sweeps: sweeps,
		Notes:  "Area columns are analytical; `snexp -exp sens-sizes` renders them alongside the latencies.",
	}
}

// sensConcSweep sweeps SN concentration p at fixed q=8 via explicit
// NetworkSpecs (p is a construction parameter, not a sweep axis).
func sensConcSweep(o Options) slimnoc.SweepSpec {
	ps := []int{4, 5, 6, 7, 8}
	if o.Quick {
		ps = []int{4, 6, 8}
	}
	nets := make([]slimnoc.NetworkSpec, len(ps))
	for i, p := range ps {
		nets[i] = slimnoc.NetworkSpec{Topology: "sn", Q: 8, Conc: p, Layout: "subgr"}
	}
	base := simBase(o)
	base.SMART = true
	base.Traffic = slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.24}
	return slimnoc.SweepSpec{
		Name: "sens-conc",
		Base: base,
		Axes: slimnoc.SweepAxes{Networks: nets},
	}
}

// ablCBSizeManifest builds one sweep per central-buffer capacity and
// network (capacity is a base-spec variation).
func ablCBSizeManifest(o Options) Figure {
	sizes := []int{6, 10, 20, 40, 70, 100}
	if o.Quick {
		sizes = []int{6, 20, 40, 100}
	}
	var sweeps []slimnoc.SweepSpec
	for _, net := range []string{"sn_subgr_200", "sn_gr_1296"} {
		for _, cb := range sizes {
			base := simBase(o)
			base.Buffering = slimnoc.BufferingSpec{Scheme: "cbr", CBCap: cb}
			base.Traffic = slimnoc.TrafficSpec{Pattern: "rnd"}
			sweeps = append(sweeps, slimnoc.SweepSpec{
				Name: fmt.Sprintf("abl-cbsize/%s/cb%d", net, cb),
				Base: base,
				Axes: slimnoc.SweepAxes{
					Presets: []string{net},
					Loads:   []float64{0.06, 0.30},
				},
			})
		}
	}
	return Figure{
		ID: "abl-cbsize", Title: "Central-buffer capacity ablation", Section: "§5.2.1",
		Sweeps: sweeps,
	}
}

// ablSmartHManifest sweeps the SMART hop factor H as base-spec variations.
func ablSmartHManifest(o Options) Figure {
	hs := []int{1, 3, 9, 11}
	if o.Quick {
		hs = []int{1, 9}
	}
	var sweeps []slimnoc.SweepSpec
	for _, h := range hs {
		base := simBase(o)
		base.HopFactor = h
		base.Traffic = slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.06}
		sweeps = append(sweeps, slimnoc.SweepSpec{
			Name: fmt.Sprintf("abl-smarth/h%d", h),
			Base: base,
			Axes: slimnoc.SweepAxes{Presets: []string{"sn_basic_1296"}},
		})
	}
	return Figure{
		ID: "abl-smarth", Title: "SMART hop-factor ablation, sn_basic_1296", Section: "§3.2.2",
		Sweeps: sweeps,
	}
}

// FigureByID finds one manifest entry.
func FigureByID(id string, o Options) (Figure, error) {
	id = strings.ToLower(id)
	for _, f := range Manifest(o) {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("exp: unknown manifest figure %q (have %s)",
		id, strings.Join(FigureIDs(), ", "))
}

// FigureIDs lists the manifest IDs, sorted.
func FigureIDs() []string {
	var out []string
	for _, f := range Manifest(Options{Quick: true}) {
		out = append(out, f.ID)
	}
	sort.Strings(out)
	return out
}
