// Adaptive routing study (Fig. 20, §6): UGAL-L / UGAL-G / MIN on SN versus
// UGAL-L / XY-ADAPT / MIN on FBF, with plain input-queued routers (no
// SMART, CB or elastic links), N = 200.

package exp

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// adaptiveVariant names one (network, routing scheme) combination.
type adaptiveVariant struct {
	label  string
	spec   string
	policy func() sim.AdaptivePolicy
}

func fig20Variants() []adaptiveVariant {
	return []adaptiveVariant{
		{"SN_MIN", "sn_subgr_200", func() sim.AdaptivePolicy { return nil }},
		{"SN_UGAL-L", "sn_subgr_200", func() sim.AdaptivePolicy { return &sim.UGAL{Global: false, VCs: 4} }},
		{"SN_UGAL-G", "sn_subgr_200", func() sim.AdaptivePolicy { return &sim.UGAL{Global: true, VCs: 4} }},
		{"FBF_MIN", "fbf4", func() sim.AdaptivePolicy { return nil }},
		{"FBF_UGAL-L", "fbf4", func() sim.AdaptivePolicy { return &sim.UGAL{Global: false, VCs: 4} }},
		{"FBF_XY-ADAPT", "fbf4", func() sim.AdaptivePolicy { return &sim.MinAdaptive{VCs: 4} }},
	}
}

// Fig20 runs the adaptive-routing comparison for uniform random and
// asymmetric traffic. Each pattern's loads x variants grid executes as one
// parallel batch; policy instances are created per point (adaptive state is
// per-run, never shared across workers).
func Fig20(ctx context.Context, o Options) []*stats.Table {
	var out []*stats.Table
	variants := fig20Variants()
	loads := o.Loads()
	nets := map[string]NetSpec{}
	for _, v := range variants {
		if _, ok := nets[v.spec]; !ok {
			nets[v.spec] = MustNet(v.spec)
		}
	}
	for _, pat := range []string{"RND", "ASYM"} {
		t := &stats.Table{
			ID:     fmt.Sprintf("fig20-%s", pat),
			Title:  fmt.Sprintf("Adaptive routing, %s, N=200, input-queued routers (Fig. 20)", pat),
			Header: []string{"load"},
		}
		for _, v := range variants {
			t.Header = append(t.Header, v.label)
		}
		var points []RunSpec
		for _, load := range loads {
			for _, v := range variants {
				points = append(points, RunSpec{
					Spec:    nets[v.spec],
					VCs:     4,
					Pattern: pat,
					Rate:    load,
					Policy:  v.policy(),
					Opts:    o,
				})
			}
		}
		results := MustRunBatch(ctx, o, points)
		for li, load := range loads {
			row := []interface{}{fmtLoad(load)}
			for vi := range variants {
				row = append(row, fmtLat(results[li*len(variants)+vi]))
			}
			t.AddRowF(row...)
		}
		out = append(out, t)
	}
	return out
}
