// Ablations on the design choices DESIGN.md calls out: central-buffer
// capacity (§5.2.1 tests 6/10/20/40/70/100 flits), VC count, and the SMART
// hop factor H. Each sweep submits its whole grid as one parallel batch.

package exp

import (
	"context"
	"fmt"

	"repro/internal/stats"
)

// AblCBSize sweeps the central-buffer capacity on SN-S and SN-L at a
// moderate and a high RND load, reproducing the §5.2.1 observation that
// small CBs outperform large ones (which hold more packets and raise
// latency) while still removing head-of-line blocking.
func AblCBSize(ctx context.Context, o Options) []*stats.Table {
	sizes := []int{6, 10, 20, 40, 70, 100}
	if o.Quick {
		sizes = []int{6, 20, 40, 100}
	}
	var out []*stats.Table
	for _, netName := range []string{"sn_subgr_200", "sn_gr_1296"} {
		t := &stats.Table{
			ID:     fmt.Sprintf("abl-cbsize-%s", netName),
			Title:  fmt.Sprintf("Central buffer capacity sweep, %s, RND (§5.2.1)", netName),
			Header: []string{"cb_flits", "lat@0.06", "lat@0.30", "thr@0.30"},
		}
		spec := MustNet(netName)
		var points []RunSpec
		for _, cb := range sizes {
			points = append(points,
				RunSpec{Spec: spec, Scheme: 1, CBCap: cb, Pattern: "RND", Rate: 0.06, Opts: o},
				RunSpec{Spec: spec, Scheme: 1, CBCap: cb, Pattern: "RND", Rate: 0.30, Opts: o})
		}
		results := MustRunBatch(ctx, o, points)
		for i, cb := range sizes {
			low, high := results[2*i], results[2*i+1]
			t.AddRowF(cb, fmtLat(low), fmtLat(high), high.Throughput)
		}
		out = append(out, t)
	}
	return out
}

// AblVCs sweeps the virtual channel count on SN-S: 2 VCs suffice for
// deadlock freedom at diameter 2 (§4.3); more VCs trade buffer area for
// throughput under contention.
func AblVCs(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:     "abl-vcs",
		Title:  "VC count sweep, sn_subgr_200, RND (§4.3)",
		Header: []string{"vcs", "lat@0.06", "lat@0.30", "thr@0.30"},
	}
	spec := MustNet("sn_subgr_200")
	vcCounts := []int{2, 3, 4}
	var points []RunSpec
	for _, vcs := range vcCounts {
		points = append(points,
			RunSpec{Spec: spec, VCs: vcs, Pattern: "RND", Rate: 0.06, Opts: o},
			RunSpec{Spec: spec, VCs: vcs, Pattern: "RND", Rate: 0.30, Opts: o})
	}
	results := MustRunBatch(ctx, o, points)
	for i, vcs := range vcCounts {
		low, high := results[2*i], results[2*i+1]
		t.AddRowF(vcs, fmtLat(low), fmtLat(high), high.Throughput)
	}
	return []*stats.Table{t}
}

// AblSmartH sweeps the SMART hop factor: H=1 (no SMART) up to H=11, the
// §3.2.2 range for 1 GHz at 45 nm, on the long-wire sn_basic layout where
// SMART matters most.
func AblSmartH(ctx context.Context, o Options) []*stats.Table {
	t := &stats.Table{
		ID:     "abl-smarth",
		Title:  "SMART hop factor sweep, sn_basic_1296, RND load 0.06 (§3.2.2)",
		Header: []string{"H", "latency_cycles"},
	}
	spec := MustNet("sn_basic_1296")
	hs := []int{1, 3, 9, 11}
	if o.Quick {
		hs = []int{1, 9}
	}
	var points []RunSpec
	for _, h := range hs {
		points = append(points, RunSpec{Spec: spec, Pattern: "RND", Rate: 0.06, H: h, Opts: o})
	}
	results := MustRunBatch(ctx, o, points)
	for i, h := range hs {
		t.AddRowF(h, results[i].AvgLatency)
	}
	return []*stats.Table{t}
}
