// Experiment registry: every table and figure mapped to its runner.

package exp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Experiment is one registered paper artifact. Run honours its context:
// cancellation (e.g. Ctrl-C in snexp) stops in-flight simulations at their
// next poll point, surfacing as a panic wrapping ctx.Err() from the Must*
// helpers inside experiment bodies.
type Experiment struct {
	ID    string
	Title string
	Run   func(context.Context, Options) []*stats.Table
}

// Registry returns all experiments keyed by ID.
func Registry() []Experiment {
	return []Experiment{
		{"fig1a", "Latency under adversarial traffic, N=1296 (Fig. 1a)", Fig1a},
		{"fig1bc", "Throughput per power, N=1296, 45/22nm (Fig. 1b/c)", Fig1bc},
		{"fig3", "Slim Fly and Dragonfly straight on-chip (Fig. 3)", Fig3},
		{"tab2", "Slim NoC configurations, N<=1300 (Table 2)", Table2},
		{"tab3", "F8/F9 operation tables (Table 3)", Table3},
		{"tab4", "Compared configurations (Table 4)", Table4},
		{"fig5", "Layout cost analysis: M, buffers, wiring (Fig. 5)", Fig5},
		{"fig6", "Link distance distributions (Fig. 6)", Fig6},
		{"fig10a", "SN layouts on synthetic traffic (Fig. 10a)", Fig10a},
		{"fig10b", "SN layouts on PARSEC/SPLASH (Fig. 10b)", Fig10b},
		{"fig11", "Buffering strategies (Fig. 11)", Fig11},
		{"fig12", "Small networks, SMART (Fig. 12)", Fig12},
		{"fig13", "Large networks, SMART (Fig. 13)", Fig13},
		{"fig14", "Small networks, no SMART (Fig. 14)", Fig14},
		{"fig15", "Area and static power, N=200, no SMART (Fig. 15)", Fig15},
		{"fig16", "Area/power, small networks, SMART, 45+22nm (Fig. 16)", Fig16},
		{"fig17", "Area/power, N=1296, SMART, 45+22nm (Fig. 17)", Fig17},
		{"tab5", "Throughput/power gains (Table 5)", Table5},
		{"fig18", "Energy-delay on PARSEC/SPLASH (Fig. 18)", Fig18},
		{"fig19", "Small-scale N=54 analysis (Fig. 19)", Fig19},
		{"tab6", "SMART latency gains per benchmark (Table 6)", Table6},
		{"fig20", "Adaptive routing study (Fig. 20)", Fig20},
		{"sec55", "Folded Clos comparison (§5.5)", Sec55Clos},
		{"sens-sizes", "Other network sizes (§5.5)", SensSizes},
		{"sens-conc", "Concentration sweep (§5.5)", SensConcentration},
		{"sens-cycle", "Cycle-time sensitivity (§5.1)", SensCycleTime},
		{"resil", "Link-failure resilience (§2.1)", Resilience},
		{"abl-cbsize", "Central-buffer capacity ablation (§5.2.1)", AblCBSize},
		{"abl-vcs", "Virtual-channel count ablation (§4.3)", AblVCs},
		{"abl-smarth", "SMART hop-factor ablation (§3.2.2)", AblSmartH},
		{"scale-smoke", "10k-endpoint smoke under memory budget (§5.5)", ScaleSmoke},
	}
}

// Fig19 combines the latency and area/power panels of Fig. 19.
func Fig19(ctx context.Context, o Options) []*stats.Table {
	return append(Fig19Latency(ctx, o), Fig19Power(ctx, o)...)
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs lists registered experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
