// The scale-* family's derived-table companion: the 10k-endpoint smoke
// point, reported with the event-calendar telemetry that makes runs at this
// scale practical.

package exp

import (
	"context"

	"repro/internal/stats"
	"repro/slimnoc"
)

// scaleMemBudget is the scale family's declared per-point engine budget
// (kept in sync with scaleManifest).
const scaleMemBudget = 256 << 20

// ScaleSmoke runs the scale-smoke point — the 1250-router / 10000-endpoint
// subgroup SN at low load — under the family's 256 MiB engine budget and
// reports it together with the calendar's skip telemetry: at this load the
// overwhelming majority of cycles are dead and are jumped over exactly,
// which is why a 10k-endpoint point fits in smoke-test time. A non-zero
// Options.MemBudget overrides the declared budget (negative disables it).
func ScaleSmoke(ctx context.Context, o Options) []*stats.Table {
	if o.MemBudget == 0 {
		o.MemBudget = scaleMemBudget
	}
	t := &stats.Table{
		ID:    "scale-smoke",
		Title: "Scale smoke: 10k-endpoint SN under a 256 MiB engine budget (§5.5 scale-out)",
		Header: []string{"network", "nodes", "load", "latency_cycles",
			"throughput", "cycles", "cycles_skipped", "skip_%"},
	}
	rs := RunSpec{Spec: MustNet("sn_subgr_10000"), Pattern: "RND",
		Rate: 0.008, SMART: true, Opts: o}
	spec, opts := rs.facade()
	if o.EngineJobs != 0 {
		opts = append(opts, slimnoc.WithEngineJobs(o.EngineJobs))
	}
	if o.MemBudget > 0 {
		opts = append(opts, slimnoc.WithMemBudget(o.MemBudget))
	}
	res, err := slimnoc.Run(ctx, spec, opts...)
	if err != nil {
		panic(err)
	}
	skip := 0.0
	if res.Raw.Cycles > 0 {
		skip = 100 * float64(res.Engine.CyclesSkipped) / float64(res.Raw.Cycles)
	}
	t.AddRowF(rs.Spec.Name, rs.Spec.Net.N(), rs.Rate, res.Raw.AvgLatency,
		res.Raw.Throughput, res.Raw.Cycles, res.Engine.CyclesSkipped, skip)
	return []*stats.Table{t}
}
