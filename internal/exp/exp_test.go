package exp

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func ctx() context.Context { return context.Background() }

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestBuildNetAllNames(t *testing.T) {
	names := []string{
		"cm3", "cm4", "t2d3", "t2d4", "fbf3", "fbf4", "pfbf3", "pfbf4",
		"cm9", "cm8", "t2d9", "t2d8", "fbf9", "fbf8", "pfbf9", "pfbf8",
		"t2d54", "fbf54", "pfbf54",
		"sn_basic_200", "sn_subgr_200", "sn_gr_200", "sn_rand_200",
		"sn_gr_1296", "sn_subgr_1024", "sn_subgr_54",
	}
	for _, name := range names {
		spec, err := BuildNet(name)
		if err != nil {
			t.Fatalf("BuildNet(%s): %v", name, err)
		}
		if err := spec.Net.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := BuildNet("nonsense"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestBuildNetSizes(t *testing.T) {
	cases := map[string]int{
		"cm3": 192, "fbf4": 200, "pfbf9": 1296, "sn_subgr_200": 200,
		"sn_gr_1296": 1296, "t2d54": 54, "sn_subgr_54": 54,
	}
	for name, n := range cases {
		spec := MustNet(name)
		if spec.Net.N() != n {
			t.Errorf("%s: N = %d, want %d", name, spec.Net.N(), n)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"fig1a", "fig1bc", "fig3", "fig5", "fig6", "fig10a",
		"fig10b", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "tab2", "tab3", "tab4", "tab5",
		"tab6", "sec55", "sens-sizes", "sens-conc", "sens-cycle", "resil",
		"abl-cbsize", "abl-vcs", "abl-smarth", "scale-smoke"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("registry missing %s", id)
		}
	}
	if _, err := ByID("fig12"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestTable2Experiment(t *testing.T) {
	tables := Table2(ctx(), quick())
	if len(tables) != 1 {
		t.Fatal("Table2 should emit one table")
	}
	if len(tables[0].Rows) != 24 {
		t.Errorf("Table 2 has %d rows, paper has 24", len(tables[0].Rows))
	}
}

func TestTable3Experiment(t *testing.T) {
	tables := Table3(ctx(), quick())
	if len(tables) != 6 {
		t.Fatalf("Table3 should emit 6 tables (add/mul/neg for F9 and F8), got %d", len(tables))
	}
	// F9 addition table: 9 rows of 10 cells.
	if len(tables[0].Rows) != 9 || len(tables[0].Rows[0]) != 10 {
		t.Errorf("F9 addition table shape wrong: %dx%d", len(tables[0].Rows), len(tables[0].Rows[0]))
	}
}

func TestTable4Experiment(t *testing.T) {
	tbl := Table4(ctx(), quick())[0]
	if len(tbl.Rows) != 18 {
		t.Errorf("Table 4 has %d rows, want 18", len(tbl.Rows))
	}
	// SN row should show D=2, k'=7, k=11 for N=200.
	for _, row := range tbl.Rows {
		if row[0] == "sn_subgr_200" {
			if row[1] != "2" || row[3] != "7" || row[4] != "11" {
				t.Errorf("sn_subgr_200 row = %v", row)
			}
		}
	}
}

func TestFig5Experiment(t *testing.T) {
	tables := Fig5(ctx(), quick())
	if len(tables) != 4 {
		t.Fatalf("Fig5 should emit 4 tables, got %d", len(tables))
	}
	// Wiring constraint: observed max W must be below the 22nm bound in all
	// rows.
	wt := tables[3]
	for _, row := range wt.Rows {
		bound, _ := strconv.Atoi(row[len(row)-1])
		for i := 2; i < len(row)-1; i++ {
			w, err := strconv.Atoi(row[i])
			if err != nil {
				t.Fatalf("bad W cell %q", row[i])
			}
			if w > bound {
				t.Errorf("wiring constraint violated in row %v", row)
			}
		}
	}
}

func TestFig6Experiment(t *testing.T) {
	tables := Fig6(ctx(), quick())
	if len(tables) != 3 {
		t.Fatalf("Fig6 should emit 3 tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		sum := 0.0
		for _, row := range tbl.Rows {
			v, err := strconv.ParseFloat(row[1], 64)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: sn_gr distribution sums to %.3f", tbl.ID, sum)
		}
	}
}

func TestFig3Experiment(t *testing.T) {
	tables := Fig3(ctx(), quick())
	if len(tables) != 3 {
		t.Fatalf("Fig3 should emit 3 tables, got %d", len(tables))
	}
	// 3b: SF straight on-chip should cost more than PFBF (the paper's
	// motivation: >30% more area).
	var sf, pfbf float64
	for _, row := range tables[1].Rows {
		total, _ := strconv.ParseFloat(row[len(row)-1], 64)
		switch row[0] {
		case "SF":
			sf = total
		case "PFBF":
			pfbf = total
		}
	}
	if sf <= pfbf {
		t.Errorf("straight SF area (%.5f) should exceed PFBF (%.5f)", sf, pfbf)
	}
}

func TestFig10aExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping layout sweep in short mode")
	}
	tables := Fig10a(ctx(), quick())
	if len(tables) != 3 {
		t.Fatalf("Fig10a should emit 3 tables, got %d", len(tables))
	}
	// At the lowest load, sn_subgr should beat sn_basic (its wires are
	// shorter) for RND.
	rnd := tables[1]
	first := rnd.Rows[0]
	basic := parseLat(t, first[1])
	subgr := parseLat(t, first[4])
	if subgr >= basic {
		t.Errorf("sn_subgr latency %.1f should be below sn_basic %.1f", subgr, basic)
	}
}

func parseLat(t *testing.T, s string) float64 {
	t.Helper()
	if s == "sat" {
		return 1e9
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad latency cell %q", s)
	}
	return v
}

func TestFig12Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping small-network SMART sweep in short mode")
	}
	tables := Fig12(ctx(), quick())
	if len(tables) != 4 {
		t.Fatalf("Fig12 should emit 4 tables, got %d", len(tables))
	}
	// RND, low load: SN must beat CM and T2D (paper: ratios 71%/86% at
	// load 0.008).
	for _, tbl := range tables {
		if !strings.Contains(tbl.ID, "RND") {
			continue
		}
		row := tbl.Rows[0]
		cm := parseLat(t, row[1])
		t2d := parseLat(t, row[2])
		sn := parseLat(t, row[5])
		if sn >= cm || sn >= t2d {
			t.Errorf("SN low-load latency %.1f should beat cm3 %.1f and t2d3 %.1f", sn, cm, t2d)
		}
	}
}

func TestFig15Experiment(t *testing.T) {
	tables := Fig15(ctx(), quick())
	if len(tables) != 3 {
		t.Fatal("Fig15 should emit 3 tables")
	}
	// fig15b: SN total area below FBF.
	var snA, fbfA float64
	for _, row := range tables[1].Rows {
		total, _ := strconv.ParseFloat(row[len(row)-1], 64)
		switch row[0] {
		case "sn_subgr_200":
			snA = total
		case "fbf4":
			fbfA = total
		}
	}
	if snA >= fbfA {
		t.Errorf("SN area %.4f should be below FBF %.4f (paper: 34%% less)", snA, fbfA)
	}
}

func TestSec55Experiment(t *testing.T) {
	tbl := Sec55Clos(ctx(), quick())[0]
	if len(tbl.Rows) != 2 {
		t.Fatal("expected rows for N=200 and N=1296")
	}
	for _, row := range tbl.Rows {
		gain, _ := strconv.ParseFloat(row[3], 64)
		if gain <= 0 {
			t.Errorf("SN should be smaller than folded Clos: row %v", row)
		}
	}
}

func TestRunRejectsBadPattern(t *testing.T) {
	if _, err := Run(ctx(), RunSpec{Spec: MustNet("cm3"), Pattern: "XXX", Rate: 0.1, Opts: quick()}); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestOptionsScaling(t *testing.T) {
	q, f := Options{Quick: true}, Options{}
	qw, qm, _ := q.Cycles()
	fw, fm, _ := f.Cycles()
	if qw >= fw || qm >= fm {
		t.Error("quick mode should use fewer cycles")
	}
	if len(q.Loads()) >= len(f.Loads()) {
		t.Error("quick mode should use fewer load points")
	}
}

func TestSensCycleTimeExperiment(t *testing.T) {
	tbl := SensCycleTime(ctx(), quick())[0]
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	// Uniform-clock column should equal cycles * 0.5.
	for _, row := range tbl.Rows {
		cycles, _ := strconv.ParseFloat(row[1], 64)
		uniform, _ := strconv.ParseFloat(row[4], 64)
		if diff := uniform - cycles*0.5; diff > 0.01 || diff < -0.01 {
			t.Errorf("uniform latency mismatch in row %v", row)
		}
	}
}

func TestResilienceExperiment(t *testing.T) {
	tbl := Resilience(ctx(), quick())[0]
	// Row order: frac x {sn, fbf4, t2d4}. At 0% everything is connected.
	for i := 0; i < 3; i++ {
		conn, _ := strconv.ParseFloat(tbl.Rows[i][2], 64)
		if conn != 1 {
			t.Errorf("undamaged %s connectivity = %v", tbl.Rows[i][1], conn)
		}
	}
	// At 10% failures SN must stay connected with small diameter (the
	// expander property): diameter <= 4.
	for _, row := range tbl.Rows {
		if row[0] == "10" && row[1] == "sn_subgr_200" {
			conn, _ := strconv.ParseFloat(row[2], 64)
			d, _ := strconv.Atoi(row[3])
			if conn < 0.99 {
				t.Errorf("SN connectivity at 10%% failures = %v", conn)
			}
			if d > 4 {
				t.Errorf("SN diameter at 10%% failures = %d", d)
			}
		}
	}
}

func TestSensConcentrationExperiment(t *testing.T) {
	tbl := SensConcentration(ctx(), quick())[0]
	if len(tbl.Rows) != 3 {
		t.Fatalf("quick mode rows = %d, want 3", len(tbl.Rows))
	}
	// Higher concentration at fixed per-node load means more network
	// pressure: throughput per node should not increase with p.
	t4, _ := strconv.ParseFloat(tbl.Rows[0][4], 64)
	t8, _ := strconv.ParseFloat(tbl.Rows[2][4], 64)
	if t8 > t4*1.1 {
		t.Errorf("throughput grew with concentration: p4=%v p8=%v", t4, t8)
	}
}

func TestAblCBSizeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping central-buffer ablation in short mode")
	}
	tables := AblCBSize(ctx(), quick())
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	if len(tables[0].Rows) != 4 {
		t.Fatalf("quick mode should sweep 4 CB sizes, got %d", len(tables[0].Rows))
	}
}

func TestAblVCsExperiment(t *testing.T) {
	tbl := AblVCs(ctx(), quick())[0]
	if len(tbl.Rows) != 3 {
		t.Fatalf("want 3 VC rows, got %d", len(tbl.Rows))
	}
}

func TestAblSmartHExperiment(t *testing.T) {
	tbl := AblSmartH(ctx(), quick())[0]
	// H=9 must not be slower than H=1 on the long-wire basic layout.
	h1, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	h9, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	if h9 >= h1 {
		t.Errorf("H=9 latency %.1f should beat H=1 %.1f", h9, h1)
	}
}
