// Trace-driven experiments: Fig. 10b (layout latency on PARSEC/SPLASH),
// Fig. 18 (energy-delay product) and Table 6 (SMART latency gains).

package exp

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runTrace executes one benchmark on one network and returns the result.
func runTrace(spec NetSpec, b trace.Benchmark, smart bool, o Options) traceResult {
	src := trace.NewSource(b, spec.Net.N())
	res := MustRun(RunSpec{Spec: spec, Source: src, SMART: smart, Opts: o})
	return traceResult{res.AvgLatency, res.Throughput, res.AvgHops}
}

type traceResult struct {
	latency    float64
	throughput float64
	hops       float64
}

// Fig10b reproduces Fig. 10b: average packet latency per SN layout on the
// PARSEC/SPLASH workloads (N = 200, no SMART).
func Fig10b(o Options) []*stats.Table {
	layouts := []string{"sn_basic_200", "sn_gr_200", "sn_subgr_200"}
	t := &stats.Table{
		ID:     "fig10b",
		Title:  "Latency [cycles] per SN layout, PARSEC/SPLASH, N=200, no SMART (Fig. 10b)",
		Header: append([]string{"benchmark"}, layouts...),
	}
	specs := make([]NetSpec, len(layouts))
	for i, l := range layouts {
		specs[i] = MustNet(l)
	}
	sums := make([][]float64, len(layouts))
	for _, b := range benchList(o) {
		row := []interface{}{b.Name}
		for i, spec := range specs {
			r := runTrace(spec, b, false, o)
			row = append(row, r.latency)
			sums[i] = append(sums[i], r.latency)
		}
		t.AddRowF(row...)
	}
	geo := []interface{}{"geomean"}
	for i := range layouts {
		geo = append(geo, stats.GeoMean(sums[i]))
	}
	t.AddRowF(geo...)
	return []*stats.Table{t}
}

// benchList returns all 14 benchmarks; quick mode samples a representative
// subset to bound run time.
func benchList(o Options) []trace.Benchmark {
	all := trace.Benchmarks()
	if !o.Quick {
		return all
	}
	return []trace.Benchmark{all[0], all[5], all[9], all[13]} // barnes, fft, radix, water
}

// Fig18 reproduces Fig. 18: the energy-delay product on PARSEC/SPLASH
// normalised to FBF (N = 192/200, SMART).
func Fig18(o Options) []*stats.Table {
	names := []string{"fbf3", "pfbf3", "cm3", "sn_subgr_200"}
	t := &stats.Table{
		ID:     "fig18",
		Title:  "Normalised energy-delay vs FBF, PARSEC/SPLASH, SMART (Fig. 18)",
		Header: append([]string{"benchmark"}, names...),
	}
	t45 := power.Tech45()
	specs := make([]NetSpec, len(names))
	for i, nm := range names {
		specs[i] = MustNet(nm)
	}
	ratios := make([][]float64, len(names))
	for _, b := range benchList(o) {
		edps := make([]float64, len(names))
		for i, spec := range specs {
			r := runTrace(spec, b, true, o)
			n := spec.Net
			buf := bufferFor(n, true)
			st := power.Static(n, buf, 2, t45)
			act := power.ActivityOf(n, r.throughput, r.hops, t45, flitBits)
			dy := power.Dynamic(act, t45)
			_, meas, _ := o.Cycles()
			runSec := float64(meas) * n.CycleTimeNs * 1e-9
			latSec := r.latency * n.CycleTimeNs * 1e-9
			edps[i] = power.EnergyDelay(st, dy, runSec, latSec)
		}
		row := []interface{}{b.Name}
		for i, e := range edps {
			norm := e / edps[0]
			row = append(row, norm)
			ratios[i] = append(ratios[i], norm)
		}
		t.AddRowF(row...)
	}
	row := []interface{}{"geomean"}
	for i := range names {
		row = append(row, stats.GeoMean(ratios[i]))
	}
	t.AddRowF(row...)
	return []*stats.Table{t}
}

// Table6 reproduces Table 6: the percentage decrease in average packet
// latency due to SMART links, per benchmark and per topology (N = 192).
func Table6(o Options) []*stats.Table {
	names := []string{"fbf3", "pfbf3", "cm3", "sn_subgr_200"}
	t := &stats.Table{
		ID:     "tab6",
		Title:  "Latency decrease from SMART [%], PARSEC/SPLASH (Table 6)",
		Header: append([]string{"network"}, benchNames(o)...),
	}
	for _, nm := range names {
		spec := MustNet(nm)
		row := []interface{}{nm}
		for _, b := range benchList(o) {
			no := runTrace(spec, b, false, o)
			yes := runTrace(spec, b, true, o)
			gain := 0.0
			if no.latency > 0 {
				gain = (1 - yes.latency/no.latency) * 100
			}
			row = append(row, gain)
		}
		t.AddRowF(row...)
	}
	return []*stats.Table{t}
}

func benchNames(o Options) []string {
	var out []string
	for _, b := range benchList(o) {
		out = append(out, b.Name)
	}
	return out
}

var _ = fmt.Sprintf
