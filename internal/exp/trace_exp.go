// Trace-driven experiments: Fig. 10b (layout latency on PARSEC/SPLASH),
// Fig. 18 (energy-delay product) and Table 6 (SMART latency gains). Each
// figure's benchmark x network grid runs as one parallel batch; every point
// gets its own trace.Source instance (sources are stateful).

package exp

import (
	"context"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
)

type traceResult struct {
	latency    float64
	throughput float64
	hops       float64
}

// tracePoint builds one trace-driven run point with a fresh source.
func tracePoint(spec NetSpec, b trace.Benchmark, smart bool, o Options) RunSpec {
	return RunSpec{Spec: spec, Source: trace.NewSource(b, spec.Net.N()), SMART: smart, Opts: o}
}

// runTraceBatch executes trace points in parallel and unwraps the metrics.
func runTraceBatch(ctx context.Context, o Options, points []RunSpec) []traceResult {
	results := MustRunBatch(ctx, o, points)
	out := make([]traceResult, len(results))
	for i, r := range results {
		out[i] = traceResult{r.AvgLatency, r.Throughput, r.AvgHops}
	}
	return out
}

// Fig10b reproduces Fig. 10b: average packet latency per SN layout on the
// PARSEC/SPLASH workloads (N = 200, no SMART).
func Fig10b(ctx context.Context, o Options) []*stats.Table {
	layouts := []string{"sn_basic_200", "sn_gr_200", "sn_subgr_200"}
	t := &stats.Table{
		ID:     "fig10b",
		Title:  "Latency [cycles] per SN layout, PARSEC/SPLASH, N=200, no SMART (Fig. 10b)",
		Header: append([]string{"benchmark"}, layouts...),
	}
	specs := make([]NetSpec, len(layouts))
	for i, l := range layouts {
		specs[i] = MustNet(l)
	}
	benches := benchList(o)
	var points []RunSpec
	for _, b := range benches {
		for _, spec := range specs {
			points = append(points, tracePoint(spec, b, false, o))
		}
	}
	results := runTraceBatch(ctx, o, points)
	sums := make([][]float64, len(layouts))
	for bi, b := range benches {
		row := []interface{}{b.Name}
		for i := range specs {
			r := results[bi*len(specs)+i]
			row = append(row, r.latency)
			sums[i] = append(sums[i], r.latency)
		}
		t.AddRowF(row...)
	}
	geo := []interface{}{"geomean"}
	for i := range layouts {
		geo = append(geo, stats.GeoMean(sums[i]))
	}
	t.AddRowF(geo...)
	return []*stats.Table{t}
}

// benchList returns all 14 benchmarks; quick mode samples a representative
// subset to bound run time.
func benchList(o Options) []trace.Benchmark {
	all := trace.Benchmarks()
	if !o.Quick {
		return all
	}
	return []trace.Benchmark{all[0], all[5], all[9], all[13]} // barnes, fft, radix, water
}

// Fig18 reproduces Fig. 18: the energy-delay product on PARSEC/SPLASH
// normalised to FBF (N = 192/200, SMART).
func Fig18(ctx context.Context, o Options) []*stats.Table {
	names := []string{"fbf3", "pfbf3", "cm3", "sn_subgr_200"}
	t := &stats.Table{
		ID:     "fig18",
		Title:  "Normalised energy-delay vs FBF, PARSEC/SPLASH, SMART (Fig. 18)",
		Header: append([]string{"benchmark"}, names...),
	}
	t45 := power.Tech45()
	specs := make([]NetSpec, len(names))
	for i, nm := range names {
		specs[i] = MustNet(nm)
	}
	benches := benchList(o)
	var points []RunSpec
	for _, b := range benches {
		for _, spec := range specs {
			points = append(points, tracePoint(spec, b, true, o))
		}
	}
	results := runTraceBatch(ctx, o, points)
	ratios := make([][]float64, len(names))
	for bi, b := range benches {
		edps := make([]float64, len(names))
		for i, spec := range specs {
			r := results[bi*len(specs)+i]
			n := spec.Net
			buf := bufferFor(n, true)
			st := power.Static(n, buf, 2, t45)
			act := power.ActivityOf(n, r.throughput, r.hops, t45, flitBits)
			dy := power.Dynamic(act, t45)
			_, meas, _ := o.Cycles()
			runSec := float64(meas) * n.CycleTimeNs * 1e-9
			latSec := r.latency * n.CycleTimeNs * 1e-9
			edps[i] = power.EnergyDelay(st, dy, runSec, latSec)
		}
		row := []interface{}{b.Name}
		for i, e := range edps {
			norm := e / edps[0]
			row = append(row, norm)
			ratios[i] = append(ratios[i], norm)
		}
		t.AddRowF(row...)
	}
	row := []interface{}{"geomean"}
	for i := range names {
		row = append(row, stats.GeoMean(ratios[i]))
	}
	t.AddRowF(row...)
	return []*stats.Table{t}
}

// Table6 reproduces Table 6: the percentage decrease in average packet
// latency due to SMART links, per benchmark and per topology (N = 192).
func Table6(ctx context.Context, o Options) []*stats.Table {
	names := []string{"fbf3", "pfbf3", "cm3", "sn_subgr_200"}
	t := &stats.Table{
		ID:     "tab6",
		Title:  "Latency decrease from SMART [%], PARSEC/SPLASH (Table 6)",
		Header: append([]string{"network"}, benchNames(o)...),
	}
	benches := benchList(o)
	// Points pair up: (no SMART, SMART) per network x benchmark.
	var points []RunSpec
	for _, nm := range names {
		spec := MustNet(nm)
		for _, b := range benches {
			points = append(points, tracePoint(spec, b, false, o), tracePoint(spec, b, true, o))
		}
	}
	results := runTraceBatch(ctx, o, points)
	idx := 0
	for _, nm := range names {
		row := []interface{}{nm}
		for range benches {
			no, yes := results[idx], results[idx+1]
			idx += 2
			gain := 0.0
			if no.latency > 0 {
				gain = (1 - yes.latency/no.latency) * 100
			}
			row = append(row, gain)
		}
		t.AddRowF(row...)
	}
	return []*stats.Table{t}
}

func benchNames(o Options) []string {
	var out []string
	for _, b := range benchList(o) {
		out = append(out, b.Name)
	}
	return out
}
