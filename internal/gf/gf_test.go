package gf

import (
	"testing"
	"testing/quick"
)

func mustField(t *testing.T, q int) *Field {
	t.Helper()
	f, err := New(q)
	if err != nil {
		t.Fatalf("New(%d): %v", q, err)
	}
	return f
}

func TestNewRejectsNonPrimePowers(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 18, 20, 24, 100} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d): expected error for non-prime-power order", q)
		}
	}
}

func TestNewAcceptsPrimePowers(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27, 32, 49} {
		f := mustField(t, q)
		if f.Order() != q {
			t.Errorf("Order() = %d, want %d", f.Order(), q)
		}
	}
}

func TestFactorPrimePower(t *testing.T) {
	cases := []struct {
		q, p, n int
		ok      bool
	}{
		{2, 2, 1, true}, {3, 3, 1, true}, {4, 2, 2, true}, {8, 2, 3, true},
		{9, 3, 2, true}, {16, 2, 4, true}, {27, 3, 3, true}, {49, 7, 2, true},
		{6, 0, 0, false}, {12, 0, 0, false}, {36, 0, 0, false},
	}
	for _, c := range cases {
		p, n, ok := IsPrimePower(c.q)
		if ok != c.ok {
			t.Errorf("IsPrimePower(%d) ok = %v, want %v", c.q, ok, c.ok)
			continue
		}
		if ok && (p != c.p || n != c.n) {
			t.Errorf("IsPrimePower(%d) = (%d,%d), want (%d,%d)", c.q, p, n, c.p, c.n)
		}
	}
}

// fieldAxioms verifies the full set of field axioms exhaustively for small q.
func fieldAxioms(t *testing.T, f *Field) {
	t.Helper()
	q := f.Order()
	for a := 0; a < q; a++ {
		if f.Add(a, 0) != a {
			t.Fatalf("additive identity fails for %d", a)
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("multiplicative identity fails for %d", a)
		}
		if f.Add(a, f.Neg(a)) != 0 {
			t.Fatalf("additive inverse fails for %d", a)
		}
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("multiplicative inverse fails for %d", a)
		}
		for b := 0; b < q; b++ {
			if f.Add(a, b) != f.Add(b, a) {
				t.Fatalf("addition not commutative: %d,%d", a, b)
			}
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("multiplication not commutative: %d,%d", a, b)
			}
			for c := 0; c < q; c++ {
				if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
					t.Fatalf("addition not associative: %d,%d,%d", a, b, c)
				}
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("multiplication not associative: %d,%d,%d", a, b, c)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("distributivity fails: %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestFieldAxiomsExhaustive(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9} {
		q := q
		t.Run(itoa(q), func(t *testing.T) { fieldAxioms(t, mustField(t, q)) })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestFieldAxiomsQuick property-tests larger fields on random triples.
func TestFieldAxiomsQuick(t *testing.T) {
	for _, q := range []int{16, 25, 27, 32, 49} {
		f := mustField(t, q)
		prop := func(a, b, c int) bool {
			a, b, c = abs(a)%q, abs(b)%q, abs(c)%q
			if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
				return false
			}
			if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
				return false
			}
			if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("GF(%d) axioms: %v", q, err)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // MinInt
			return 0
		}
		return -x
	}
	return x
}

func TestNoZeroDivisors(t *testing.T) {
	for _, q := range []int{4, 8, 9, 16, 27} {
		f := mustField(t, q)
		for a := 1; a < q; a++ {
			for b := 1; b < q; b++ {
				if f.Mul(a, b) == 0 {
					t.Fatalf("GF(%d): zero divisor %d*%d", q, a, b)
				}
			}
		}
	}
}

func TestPrimitiveElement(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 16, 25} {
		f := mustField(t, q)
		xi := f.PrimitiveElement()
		seen := make(map[int]bool)
		x := 1
		for i := 0; i < q-1; i++ {
			if seen[x] {
				t.Fatalf("GF(%d): primitive element %d has order < q-1", q, xi)
			}
			seen[x] = true
			x = f.Mul(x, xi)
		}
		if len(seen) != q-1 {
			t.Fatalf("GF(%d): generator covers %d elements, want %d", q, len(seen), q-1)
		}
	}
}

// TestF9PrimitiveCount checks the paper's claim that F9 has exactly four
// primitive elements ("There are 4 such (equivalent) elements: v,w,y,z").
func TestF9PrimitiveCount(t *testing.T) {
	f := mustField(t, 9)
	prim := f.PrimitiveElements()
	if len(prim) != 4 {
		t.Fatalf("GF(9) has %d primitive elements, paper says 4", len(prim))
	}
}

// TestF8PrimitiveCount: GF(8)* is cyclic of order 7 (prime), so every
// non-identity element is a generator: 6 of them.
func TestF8PrimitiveCount(t *testing.T) {
	f := mustField(t, 8)
	if got := len(f.PrimitiveElements()); got != 6 {
		t.Fatalf("GF(8) has %d primitive elements, want 6", got)
	}
}

func TestPowAndElementOrder(t *testing.T) {
	f := mustField(t, 9)
	xi := f.PrimitiveElement()
	if f.Pow(xi, 0) != 1 {
		t.Error("Pow(xi,0) != 1")
	}
	if f.Pow(xi, 8) != 1 {
		t.Error("Pow(xi,q-1) != 1")
	}
	if f.ElementOrder(xi) != 8 {
		t.Errorf("ElementOrder(primitive) = %d, want 8", f.ElementOrder(xi))
	}
	if f.ElementOrder(1) != 1 {
		t.Errorf("ElementOrder(1) = %d, want 1", f.ElementOrder(1))
	}
}

func TestCharacteristicAddition(t *testing.T) {
	// In GF(2^n), a + a = 0 for every a.
	for _, q := range []int{2, 4, 8, 16} {
		f := mustField(t, q)
		for a := 0; a < q; a++ {
			if f.Add(a, a) != 0 {
				t.Fatalf("GF(%d): a+a != 0 for a=%d", q, a)
			}
			if f.Neg(a) != a {
				t.Fatalf("GF(%d): -a != a in characteristic 2", q)
			}
		}
	}
	// In GF(3^n), a + a + a = 0.
	for _, q := range []int{3, 9, 27} {
		f := mustField(t, q)
		for a := 0; a < q; a++ {
			if f.Add(f.Add(a, a), a) != 0 {
				t.Fatalf("GF(%d): 3a != 0 for a=%d", q, a)
			}
		}
	}
}

func TestSub(t *testing.T) {
	f := mustField(t, 9)
	for a := 0; a < 9; a++ {
		for b := 0; b < 9; b++ {
			if f.Add(f.Sub(a, b), b) != a {
				t.Fatalf("(a-b)+b != a for %d,%d", a, b)
			}
		}
	}
}

func TestTablesAreCopies(t *testing.T) {
	f := mustField(t, 4)
	at := f.AddTable()
	at[0][0] = 99
	if f.Add(0, 0) == 99 {
		t.Error("AddTable returned internal storage")
	}
	nt := f.NegTable()
	nt[1] = 99
	if f.Neg(1) == 99 {
		t.Error("NegTable returned internal storage")
	}
	mt := f.MulTable()
	mt[1][1] = 99
	if f.Mul(1, 1) == 99 {
		t.Error("MulTable returned internal storage")
	}
}

func TestSetNames(t *testing.T) {
	f := mustField(t, 9)
	names := []string{"0", "1", "2", "u", "v", "w", "x", "y", "z"}
	if err := f.SetNames(names); err != nil {
		t.Fatal(err)
	}
	if f.Name(3) != "u" {
		t.Errorf("Name(3) = %q, want u", f.Name(3))
	}
	if err := f.SetNames([]string{"a"}); err == nil {
		t.Error("SetNames with wrong length should fail")
	}
}

func TestInvZeroPanics(t *testing.T) {
	f := mustField(t, 5)
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) should panic")
		}
	}()
	f.Inv(0)
}

// TestFrobenius checks (a+b)^p = a^p + b^p, a defining property of
// characteristic-p fields, via testing/quick.
func TestFrobenius(t *testing.T) {
	for _, q := range []int{4, 8, 9, 16, 25, 27} {
		f := mustField(t, q)
		p := f.Char()
		prop := func(a, b int) bool {
			a, b = abs(a)%q, abs(b)%q
			return f.Pow(f.Add(a, b), p) == f.Add(f.Pow(a, p), f.Pow(b, p))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("GF(%d) Frobenius: %v", q, err)
		}
	}
}

func BenchmarkNewGF9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewGF49(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(49); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMulGroupCyclic: the multiplicative group of every finite field is
// cyclic; the set of element orders must exactly divide q-1 and each order d
// must be taken by φ(d) elements.
func TestMulGroupCyclic(t *testing.T) {
	for _, q := range []int{5, 8, 9, 16, 25} {
		f := mustField(t, q)
		orders := map[int]int{}
		for a := 1; a < q; a++ {
			orders[f.ElementOrder(a)]++
		}
		for d, count := range orders {
			if (q-1)%d != 0 {
				t.Errorf("GF(%d): order %d does not divide %d", q, d, q-1)
			}
			if count != totient(d) {
				t.Errorf("GF(%d): %d elements of order %d, want φ(%d)=%d",
					q, count, d, d, totient(d))
			}
		}
	}
}

func totient(n int) int {
	count := 0
	for i := 1; i <= n; i++ {
		if gcd(i, n) == 1 {
			count++
		}
	}
	return count
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TestFermatLittle: a^q = a for all a (the q-power Frobenius is the
// identity on GF(q)).
func TestFermatLittle(t *testing.T) {
	for _, q := range []int{4, 5, 8, 9, 27} {
		f := mustField(t, q)
		for a := 0; a < q; a++ {
			if f.Pow(a, q) != a {
				t.Errorf("GF(%d): a^q != a for a=%d", q, a)
			}
		}
	}
}
