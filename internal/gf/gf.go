// Package gf implements finite (Galois) fields GF(p^n) with explicit
// operation tables, as required by the Slim NoC construction (§3.5 of the
// paper). Prime fields are plain modular arithmetic; prime-power fields are
// built as GF(p)[x]/(f) for an irreducible monic polynomial f found by
// exhaustive search. Elements are identified by indices 0..q-1; index 0 is
// the additive identity and index 1 is the multiplicative identity.
package gf

import (
	"fmt"
	"strconv"
)

// Field is a finite field with q = p^n elements. All operations are table
// driven, so they are valid for both prime and non-prime q.
type Field struct {
	p, n, q int
	add     [][]int // add[a][b] = a+b
	mul     [][]int // mul[a][b] = a*b
	neg     []int   // neg[a] = -a
	inv     []int   // inv[a] = a^-1; inv[0] = -1 (undefined)
	poly    []int   // irreducible polynomial coefficients (len n+1), nil for prime fields
	names   []string
}

// New constructs GF(q). q must be a prime power; otherwise an error is
// returned.
func New(q int) (*Field, error) {
	if q < 2 {
		return nil, fmt.Errorf("gf: order %d is not a prime power", q)
	}
	p, n, ok := factorPrimePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: order %d is not a prime power", q)
	}
	if n == 1 {
		return newPrime(p), nil
	}
	return newExtension(p, n)
}

// factorPrimePower returns (p, n) with q = p^n for prime p, or ok=false.
func factorPrimePower(q int) (p, n int, ok bool) {
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			p = d
			for q > 1 {
				if q%p != 0 {
					return 0, 0, false
				}
				q /= p
				n++
			}
			return p, n, true
		}
	}
	return q, 1, true // q itself is prime
}

func newPrime(p int) *Field {
	f := &Field{p: p, n: 1, q: p}
	f.initTables(func(a, b int) int { return (a + b) % p }, func(a, b int) int { return (a * b) % p })
	for i := range f.names {
		f.names[i] = strconv.Itoa(i)
	}
	return f
}

func newExtension(p, n int) (*Field, error) {
	q := 1
	for i := 0; i < n; i++ {
		q *= p
	}
	irr := findIrreducible(p, n)
	if irr == nil {
		return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", n, p)
	}
	f := &Field{p: p, n: n, q: q, poly: irr}
	f.initTables(
		func(a, b int) int { return addPoly(a, b, p, n) },
		func(a, b int) int { return mulPoly(a, b, p, n, irr) },
	)
	for i := range f.names {
		f.names[i] = polyName(i, p, n)
	}
	return f, nil
}

func (f *Field) initTables(add, mul func(a, b int) int) {
	q := f.q
	f.add = make([][]int, q)
	f.mul = make([][]int, q)
	f.neg = make([]int, q)
	f.inv = make([]int, q)
	f.names = make([]string, q)
	for a := 0; a < q; a++ {
		f.add[a] = make([]int, q)
		f.mul[a] = make([]int, q)
		for b := 0; b < q; b++ {
			f.add[a][b] = add(a, b)
			f.mul[a][b] = mul(a, b)
		}
	}
	for a := 0; a < q; a++ {
		f.inv[a] = -1
		for b := 0; b < q; b++ {
			if f.add[a][b] == 0 {
				f.neg[a] = b
			}
			if a != 0 && f.mul[a][b] == 1 {
				f.inv[a] = b
			}
		}
	}
}

// Polynomial element encoding: element e in [0,q) has base-p digits
// e = c0 + c1*p + ... + c_{n-1}*p^{n-1} representing c0 + c1 x + ...

func addPoly(a, b, p, n int) int {
	res, mult := 0, 1
	for i := 0; i < n; i++ {
		res += ((a%p + b%p) % p) * mult
		a /= p
		b /= p
		mult *= p
	}
	return res
}

// mulPoly multiplies two polynomial-encoded elements modulo irr.
func mulPoly(a, b, p, n int, irr []int) int {
	// Expand digits.
	ac := digits(a, p, n)
	bc := digits(b, p, n)
	prod := make([]int, 2*n-1)
	for i, av := range ac {
		if av == 0 {
			continue
		}
		for j, bv := range bc {
			prod[i+j] = (prod[i+j] + av*bv) % p
		}
	}
	// Reduce modulo irr (monic, degree n).
	for d := len(prod) - 1; d >= n; d-- {
		c := prod[d]
		if c == 0 {
			continue
		}
		prod[d] = 0
		for i := 0; i < n; i++ {
			prod[d-n+i] = ((prod[d-n+i]-c*irr[i])%p + p*p) % p
		}
	}
	res, mult := 0, 1
	for i := 0; i < n; i++ {
		res += prod[i] * mult
		mult *= p
	}
	return res
}

func digits(a, p, n int) []int {
	d := make([]int, n)
	for i := 0; i < n; i++ {
		d[i] = a % p
		a /= p
	}
	return d
}

// findIrreducible searches for a monic irreducible polynomial of degree n
// over GF(p), returned as its n+1 coefficients (constant term first; the
// leading coefficient is always 1). It tests irreducibility by exhaustive
// root/factor checking, which is fine for the small fields used here.
func findIrreducible(p, n int) []int {
	total := 1
	for i := 0; i < n; i++ {
		total *= p
	}
	for enc := 0; enc < total; enc++ {
		cand := append(digits(enc, p, n), 1)
		if isIrreducible(cand, p) {
			return cand
		}
	}
	return nil
}

// isIrreducible reports whether the monic polynomial f (constant first) is
// irreducible over GF(p), by trial division with all monic polynomials of
// degree 1..deg(f)/2.
func isIrreducible(f []int, p int) bool {
	n := len(f) - 1
	for d := 1; d <= n/2; d++ {
		count := 1
		for i := 0; i < d; i++ {
			count *= p
		}
		for enc := 0; enc < count; enc++ {
			g := append(digits(enc, p, d), 1)
			if dividesPoly(f, g, p) {
				return false
			}
		}
	}
	return true
}

// dividesPoly reports whether g divides f over GF(p).
func dividesPoly(f, g []int, p int) bool {
	rem := make([]int, len(f))
	copy(rem, f)
	dg := len(g) - 1
	for d := len(rem) - 1; d >= dg; d-- {
		c := rem[d]
		if c == 0 {
			continue
		}
		// g is monic, so the quotient coefficient is c.
		for i := 0; i <= dg; i++ {
			rem[d-dg+i] = ((rem[d-dg+i]-c*g[i])%p + p) % p
		}
	}
	for _, c := range rem {
		if c != 0 {
			return false
		}
	}
	return true
}

func polyName(e, p, n int) string {
	// Elements are named by their digit string, most significant first,
	// e.g. in GF(9)=GF(3)[x]/(f), element x+2 is "12".
	d := digits(e, p, n)
	s := make([]byte, 0, n)
	for i := n - 1; i >= 0; i-- {
		s = append(s, byte('0'+d[i]))
	}
	return string(s)
}

// Order returns q, the number of elements.
func (f *Field) Order() int { return f.q }

// Char returns the characteristic p.
func (f *Field) Char() int { return f.p }

// Degree returns n where q = p^n.
func (f *Field) Degree() int { return f.n }

// Add returns a+b.
func (f *Field) Add(a, b int) int { return f.add[a][b] }

// Sub returns a-b.
func (f *Field) Sub(a, b int) int { return f.add[a][f.neg[b]] }

// Mul returns a*b.
func (f *Field) Mul(a, b int) int { return f.mul[a][b] }

// Neg returns -a.
func (f *Field) Neg(a int) int { return f.neg[a] }

// Inv returns a^-1. It panics if a == 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.inv[a]
}

// Pow returns a^k for k >= 0.
func (f *Field) Pow(a, k int) int {
	res := 1
	for i := 0; i < k; i++ {
		res = f.mul[res][a]
	}
	return res
}

// ElementOrder returns the multiplicative order of a (a != 0).
func (f *Field) ElementOrder(a int) int {
	if a == 0 {
		panic("gf: order of zero")
	}
	x, ord := a, 1
	for x != 1 {
		x = f.mul[x][a]
		ord++
	}
	return ord
}

// PrimitiveElement returns a generator of the multiplicative group, i.e. an
// element of order q-1. Every finite field has one.
func (f *Field) PrimitiveElement() int {
	for a := 1; a < f.q; a++ {
		if f.ElementOrder(a) == f.q-1 {
			return a
		}
	}
	panic("gf: no primitive element (invalid field)")
}

// PrimitiveElements returns all generators of the multiplicative group.
func (f *Field) PrimitiveElements() []int {
	var out []int
	for a := 1; a < f.q; a++ {
		if f.ElementOrder(a) == f.q-1 {
			out = append(out, a)
		}
	}
	return out
}

// Name returns a printable name for element a.
func (f *Field) Name(a int) string { return f.names[a] }

// SetNames overrides element names (e.g. the paper's {0,1,2,u,v,w,x,y,z}
// convention for F9). The slice must have exactly q entries.
func (f *Field) SetNames(names []string) error {
	if len(names) != f.q {
		return fmt.Errorf("gf: got %d names for field of order %d", len(names), f.q)
	}
	f.names = append([]string(nil), names...)
	return nil
}

// AddTable returns the full addition table (row a, column b). The returned
// slices are copies and may be modified by the caller.
func (f *Field) AddTable() [][]int { return copyTable(f.add) }

// MulTable returns the full multiplication table.
func (f *Field) MulTable() [][]int { return copyTable(f.mul) }

// NegTable returns the additive-inverse table (the paper's "inverse element"
// table in Table 3).
func (f *Field) NegTable() []int { return append([]int(nil), f.neg...) }

func copyTable(t [][]int) [][]int {
	out := make([][]int, len(t))
	for i, row := range t {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// IsPrimePower reports whether q is a prime power and returns its
// decomposition.
func IsPrimePower(q int) (p, n int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	return factorPrimePower(q)
}
