// Command benchjson converts `go test -bench` output into the JSON schema
// of BENCH_sim.json, the repository's simulator performance record. CI runs
// BenchmarkEngine and BenchmarkCampaign on every PR and uploads the
// rendered file as an artifact, seeding the perf trajectory across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEngine|BenchmarkCampaign' -benchmem . | tee bench.txt
//	go run ./internal/tools/benchjson [-baseline old_bench.txt] bench.txt > BENCH_sim.json
//
// With -baseline, benchmarks present in both files additionally report the
// baseline ns/op and the speedup factor (baseline/current).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// BaselineNsPerOp/Speedup are present only when -baseline was given
	// and contained this benchmark.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// Report is the top-level BENCH_sim.json document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "bench output file to compute speedups against")
	flag.Parse()

	var rep Report
	if flag.NArg() == 0 {
		parseInto(&rep, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		parseInto(&rep, f)
		f.Close()
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		var base Report
		parseInto(&base, f)
		f.Close()
		byName := make(map[string]Benchmark, len(base.Benchmarks))
		for _, b := range base.Benchmarks {
			byName[b.Name] = b
		}
		for i := range rep.Benchmarks {
			b := &rep.Benchmarks[i]
			old, ok := byName[b.Name]
			if !ok {
				continue
			}
			baseNs, cur := old.Metrics["ns/op"], b.Metrics["ns/op"]
			if baseNs > 0 && cur > 0 {
				b.BaselineNsPerOp = baseNs
				b.Speedup = baseNs / cur
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// parseInto consumes one `go test -bench` output stream.
func parseInto(rep *Report, r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       trimProcSuffix(fields[0]),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		// The remainder is "value unit" pairs (ns/op, B/op, allocs/op, and
		// any ReportMetric extras).
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker (BenchmarkFoo-8 ->
// BenchmarkFoo) so results compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
