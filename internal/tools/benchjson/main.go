// Command benchjson converts `go test -bench` output into the JSON schema
// of BENCH_sim.json, the repository's simulator performance record. CI runs
// BenchmarkEngine and BenchmarkCampaign on every PR and uploads the
// rendered file as an artifact, seeding the perf trajectory across PRs.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkEngine|BenchmarkCampaign' -benchmem -count=3 . | tee bench.txt
//	go run ./internal/tools/benchjson [-baseline old_bench.txt] bench.txt > BENCH_sim.json
//
// Repeated samples of one benchmark (from -count=N) aggregate into a single
// entry: metrics are means across the samples, and the entry additionally
// reports the sample count plus the ns/op standard deviation and relative
// spread ((max-min)/mean) — the noise floor a claimed speedup has to clear.
//
// With -baseline, benchmarks present in both files additionally report the
// baseline ns/op and the speedup factor (baseline/current); the baseline
// file aggregates the same way, so a multi-sample baseline compares by its
// mean.
//
// Entries whose aggregated relative spread exceeds -maxspread (default 0.20)
// are marked "noisy": true in the JSON and reported on stderr, so an
// unreliable box is visible in the artifact instead of silently recorded as
// a real perf shift.
//
// CI regression guard:
//
//	go run ./internal/tools/benchjson -compare BENCH_sim.json new_bench.json
//
// compares two already-rendered JSON reports and exits nonzero when ns/op on
// any benchmark present in both regresses by more than -maxregress (default
// 0.25, i.e. +25%) against the committed baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result — after aggregation, the mean of
// all samples of one name.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	// Samples is how many -count repetitions were aggregated into this
	// entry (omitted for a single run).
	Samples int `json:"samples,omitempty"`
	// NsPerOpStddev and NsPerOpSpread quantify run-to-run noise across the
	// samples: the sample standard deviation of ns/op and the relative
	// spread (max-min)/mean. Present only with 2+ samples.
	NsPerOpStddev float64 `json:"ns_per_op_stddev,omitempty"`
	NsPerOpSpread float64 `json:"ns_per_op_spread,omitempty"`
	// Noisy marks an entry whose spread exceeded the -maxspread threshold:
	// its mean is recorded but should not be trusted as a perf signal.
	Noisy bool `json:"noisy,omitempty"`
	// BaselineNsPerOp/Speedup are present only when -baseline was given
	// and contained this benchmark.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// Report is the top-level BENCH_sim.json document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "bench output file to compute speedups against")
	compare := flag.Bool("compare", false, "compare two rendered JSON reports (old new) and fail on ns/op regressions")
	maxSpread := flag.Float64("maxspread", 0.20, "relative ns/op spread above which an entry is flagged noisy")
	maxRegress := flag.Float64("maxregress", 0.25, "with -compare: relative ns/op increase above which the comparison fails")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two arguments: old.json new.json"))
		}
		os.Exit(compareReports(flag.Arg(0), flag.Arg(1), *maxRegress))
	}

	var rep Report
	if flag.NArg() == 0 {
		parseInto(&rep, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		parseInto(&rep, f)
		f.Close()
	}
	aggregate(&rep)
	flagNoisy(&rep, *maxSpread)

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		var base Report
		parseInto(&base, f)
		f.Close()
		aggregate(&base)
		byName := make(map[string]Benchmark, len(base.Benchmarks))
		for _, b := range base.Benchmarks {
			byName[b.Name] = b
		}
		for i := range rep.Benchmarks {
			b := &rep.Benchmarks[i]
			old, ok := byName[b.Name]
			if !ok {
				continue
			}
			baseNs, cur := old.Metrics["ns/op"], b.Metrics["ns/op"]
			if baseNs > 0 && cur > 0 {
				b.BaselineNsPerOp = baseNs
				b.Speedup = baseNs / cur
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// parseInto consumes one `go test -bench` output stream.
func parseInto(rep *Report, r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       trimProcSuffix(fields[0]),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		// The remainder is "value unit" pairs (ns/op, B/op, allocs/op, and
		// any ReportMetric extras).
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

// aggregate folds repeated samples of one benchmark name (a -count=N run)
// into a single entry in first-appearance order: per-metric means, the
// summed iteration count, and the ns/op noise statistics.
func aggregate(rep *Report) {
	order := make([]string, 0, len(rep.Benchmarks))
	groups := make(map[string][]Benchmark)
	for _, b := range rep.Benchmarks {
		if _, ok := groups[b.Name]; !ok {
			order = append(order, b.Name)
		}
		groups[b.Name] = append(groups[b.Name], b)
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		g := groups[name]
		agg := Benchmark{Name: name, Metrics: make(map[string]float64)}
		var ns []float64
		for _, b := range g {
			agg.Iterations += b.Iterations
			//detlint:ordered accumulates commutative per-key sums; rendered via sorted JSON keys
			for k, v := range b.Metrics {
				agg.Metrics[k] += v
			}
			if v, ok := b.Metrics["ns/op"]; ok {
				ns = append(ns, v)
			}
		}
		//detlint:ordered divides each key independently; no output depends on visit order
		for k := range agg.Metrics {
			agg.Metrics[k] /= float64(len(g))
		}
		if len(g) > 1 {
			agg.Samples = len(g)
			agg.NsPerOpStddev, agg.NsPerOpSpread = noise(ns)
		}
		out = append(out, agg)
	}
	rep.Benchmarks = out
}

// noise returns the sample standard deviation and the relative spread
// ((max-min)/mean) of the ns/op samples.
func noise(ns []float64) (stddev, spread float64) {
	if len(ns) < 2 {
		return 0, 0
	}
	var sum float64
	lo, hi := ns[0], ns[0]
	for _, v := range ns {
		sum += v
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	mean := sum / float64(len(ns))
	var ss float64
	for _, v := range ns {
		d := v - mean
		ss += d * d
	}
	stddev = math.Sqrt(ss / float64(len(ns)-1))
	if mean > 0 {
		spread = (hi - lo) / mean
	}
	return stddev, spread
}

// flagNoisy marks aggregated entries whose relative spread exceeds the
// threshold and reports them on stderr — the CI log line that distinguishes
// a noisy box from a real perf shift.
func flagNoisy(rep *Report, maxSpread float64) {
	for i := range rep.Benchmarks {
		b := &rep.Benchmarks[i]
		if b.Samples > 1 && b.NsPerOpSpread > maxSpread {
			b.Noisy = true
			fmt.Fprintf(os.Stderr, "benchjson: noisy: %s ns/op spread %.2f exceeds %.2f across %d samples\n",
				b.Name, b.NsPerOpSpread, maxSpread, b.Samples)
		}
	}
}

// compareReports is the -compare mode: both arguments are already-rendered
// BENCH_sim.json documents. Returns the process exit code — 1 when any
// benchmark present in both regresses more than maxRegress on ns/op, 0
// otherwise. Benchmarks present in only one file are reported but do not
// fail the comparison (new benchmarks have no baseline; removed ones have
// no current number to judge).
func compareReports(oldPath, newPath string, maxRegress float64) int {
	readReport := func(path string) Report {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		return rep
	}
	oldRep, newRep := readReport(oldPath), readReport(newPath)
	oldByName := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldByName[b.Name] = b
	}
	code := 0
	seen := make(map[string]bool, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		seen[b.Name] = true
		old, ok := oldByName[b.Name]
		if !ok {
			fmt.Printf("new     %-60s %14.0f ns/op (no baseline)\n", b.Name, b.Metrics["ns/op"])
			continue
		}
		baseNs, cur := old.Metrics["ns/op"], b.Metrics["ns/op"]
		if baseNs <= 0 || cur <= 0 {
			continue
		}
		delta := cur/baseNs - 1
		tag := "ok"
		if delta > maxRegress {
			tag = "REGRESS"
			code = 1
		}
		fmt.Printf("%-7s %-60s %14.0f -> %14.0f ns/op  %+6.1f%%\n", tag, b.Name, baseNs, cur, 100*delta)
	}
	for _, b := range oldRep.Benchmarks {
		if !seen[b.Name] {
			fmt.Printf("gone    %-60s (in %s only)\n", b.Name, oldPath)
		}
	}
	if code != 0 {
		fmt.Fprintf(os.Stderr, "benchjson: ns/op regression above %.0f%% detected\n", 100*maxRegress)
	}
	return code
}

// trimProcSuffix drops the trailing -GOMAXPROCS marker (BenchmarkFoo-8 ->
// BenchmarkFoo) so results compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
