// Command doccheck enforces godoc completeness: every exported identifier
// in the packages under the given directories must carry a doc comment.
// The CI lint job runs it over slimnoc/ and internal/ (alongside detlint
// and linkcheck) so the public facade and the implementation layers stay
// navigable from `go doc` alone.
//
// Usage:
//
//	doccheck [dir ...]   (default: slimnoc internal)
//
// The exit code is the number of undocumented identifiers (capped at 1),
// and each one is reported as file:line: <kind> <name>. Struct fields and
// interface methods are exempt — the type's comment is the documentation
// unit — as are generated files, test files, and main packages' main().
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"slimnoc", "internal"}
	}
	var missing []string
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() && (d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".")) {
				return filepath.SkipDir
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			m, err := checkFile(path)
			if err != nil {
				return err
			}
			missing = append(missing, m...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		fmt.Println(m)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", len(missing))
		os.Exit(1)
	}
}

// checkFile reports the undocumented exported identifiers of one file.
func checkFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || (f.Name.Name == "main" && d.Name.Name == "main") {
				continue
			}
			// Methods on unexported receivers are not godoc-visible.
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "func", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						// A comment on the grouped decl, the spec line, or a
						// trailing line comment all count.
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), kindOf(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return out, nil
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(fl *ast.FieldList) bool {
	if len(fl.List) == 0 {
		return false
	}
	t := fl.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// kindOf names a value declaration for the report line.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
