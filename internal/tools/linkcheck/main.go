// Command linkcheck validates the repository-local links of Markdown
// files: every `[text](target)` whose target is a relative path must
// resolve to an existing file or directory (anchors and URL schemes are
// skipped — CI stays hermetic, no network). It exists so documentation
// reorganisations cannot silently strand README/docs cross-references;
// the CI lint job runs it alongside detlint and doccheck.
//
// Usage:
//
//	linkcheck README.md docs
//
// Arguments are Markdown files or directories to walk for *.md. Exit code
// 1 lists every broken link as file:line: target.
package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline Markdown links; images share the syntax.
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// codeSpan matches inline code, which may legitimately contain link syntax
// as literal text and must not be checked.
var codeSpan = regexp.MustCompile("`[^`]*`")

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"."}
	}
	var files []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() && strings.HasPrefix(d.Name(), ".") && path != a {
				return filepath.SkipDir
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}

	broken := 0
	for _, f := range files {
		broken += checkFile(f)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile reports the broken relative links of one Markdown file.
func checkFile(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	defer f.Close()
	broken := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20)
	line := 0
	inFence := false
	for sc.Scan() {
		line++
		text := sc.Text()
		// Fenced code blocks hold shell snippets, not navigation.
		if strings.HasPrefix(strings.TrimSpace(text), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		text = codeSpan.ReplaceAllString(text, "``")
		for _, m := range linkPattern.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: %s\n", path, line, m[1])
				broken++
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	return broken
}

// skipTarget reports whether a link target is out of scope: absolute URLs,
// mail and other schemes, and pure in-page anchors.
func skipTarget(t string) bool {
	return strings.Contains(t, "://") ||
		strings.HasPrefix(t, "mailto:") ||
		strings.HasPrefix(t, "#")
}
