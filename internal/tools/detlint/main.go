// Command detlint runs the determinism & zero-allocation static-analysis
// suite (internal/detlint) over the repository and prints findings in the
// go-vet file:line:col style, exiting nonzero when any contract is
// violated.
//
// Usage:
//
//	go run ./internal/tools/detlint [-C dir] [-list] [-analyzers a,b] [patterns...]
//
// Patterns are go-list package patterns; the default set covers the
// determinism-critical tree (./internal/... ./slimnoc/... ./cmd/...).
// The suite is dependency-free by design: packages load through `go list
// -export` plus the standard gc importer, so no vettool or module
// downloads are needed (golang.org/x/tools is deliberately not vendored).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/detlint"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve package patterns in (module root)")
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range detlint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := detlint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := detlint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "detlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./internal/...", "./slimnoc/...", "./cmd/..."}
	}

	pkgs, err := detlint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags, err := detlint.Run(detlint.DefaultConfig(), pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}

	hot := 0
	for _, p := range pkgs {
		hot += detlint.HotFunctionCount(p)
	}
	fmt.Printf("detlint: ok — %d package(s) clean, %d //sim:hot function(s) guarded\n", len(pkgs), hot)
}
