// Command snlayout analyses Slim NoC physical layouts: average wire length,
// buffer budgets, wiring constraints and distance distributions (the §3.3
// analyses behind Figs. 5 and 6).
//
// Usage:
//
//	snlayout -q 9 -p 8
//	snlayout -q 5 -p 4 -dist
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		q     = flag.Int("q", 5, "Slim NoC parameter q")
		p     = flag.Int("p", 0, "concentration (default ideal)")
		dist  = flag.Bool("dist", false, "print distance distributions (Fig. 6)")
		smart = flag.Bool("smart", false, "size buffers with SMART links (H=9)")
	)
	flag.Parse()

	if *p == 0 {
		kp, err := core.KPrimeFor(*q)
		if err != nil {
			fatal(err)
		}
		*p = (kp + 1) / 2
	}
	s, err := core.New(core.Params{Q: *q, P: *p})
	if err != nil {
		fatal(err)
	}
	m := core.DefaultBufferModel()
	if *smart {
		m = m.WithSMART()
	}
	fmt.Printf("Slim NoC q=%d p=%d: N=%d Nr=%d k'=%d (buffers sized with H=%d)\n\n",
		*q, *p, s.N(), s.Nr(), s.KPrime, m.H)
	fmt.Printf("%-10s %8s %10s %12s %12s %10s\n",
		"layout", "die", "avg M", "Δeb [flits]", "Δcb20", "max W")
	for _, l := range core.Layouts() {
		net, err := s.Network(l, 1)
		if err != nil {
			fatal(err)
		}
		x, y := net.GridDims()
		cost := core.CostOf(net, m, 20)
		fmt.Printf("%-10s %8s %10.2f %12d %12d %10d\n",
			"sn_"+string(l), fmt.Sprintf("%dx%d", x, y), cost.M, cost.TotalEB,
			cost.TotalCB, cost.MaxWires)
	}

	fmt.Println("\nwiring constraints (Eq. 3):")
	for _, wc := range core.WiringConstraints() {
		net, _ := s.Network(core.LayoutSubgroup, 1)
		ok, got := core.SatisfiesConstraint(net, wc)
		status := "OK"
		if !ok {
			status = "VIOLATED"
		}
		fmt.Printf("  %-5s W=%6d observed=%5d  %s\n", wc.Node, wc.MaxWires(), got, status)
	}

	if *dist {
		fmt.Println("\ndistance distributions (probability per 2-wide bin):")
		for _, l := range []core.Layout{core.LayoutGroup, core.LayoutSubgroup} {
			net, _ := s.Network(l, 1)
			fmt.Printf("  sn_%s: ", l)
			for i, pr := range core.DistanceDistribution(net) {
				fmt.Printf("%d-%d:%.3f ", 2*i+1, 2*i+2, pr)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snlayout:", err)
	os.Exit(1)
}
