// Command snlayout analyses Slim NoC physical layouts: average wire length,
// buffer budgets, wiring constraints and distance distributions (the §3.3
// analyses behind Figs. 5 and 6). The network comes from the shared spec
// flags (-q/-p or a -spec file); every registered layout is compared.
//
// Usage:
//
//	snlayout -q 9 -p 8
//	snlayout -q 5 -p 4 -dist
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/slimnoc"
)

func main() {
	sf := slimnoc.NewSpecFlags().
		BindCommon(flag.CommandLine).
		BindNetwork(flag.CommandLine)
	dist := flag.Bool("dist", false, "print distance distributions (Fig. 6)")
	flag.Parse()

	defaults := slimnoc.DefaultSpec()
	defaults.Network = slimnoc.NetworkSpec{Topology: "sn", Q: 5}
	spec, err := sf.Spec(defaults)
	if err != nil {
		fatal(err)
	}
	spec.Network, err = slimnoc.ExpandNetwork(spec.Network)
	if err != nil {
		fatal(err)
	}
	if spec.Network.Topology != "sn" {
		fatal(fmt.Errorf("snlayout analyses Slim NoC layouts only, got topology %q", spec.Network.Topology))
	}
	build := func(layout string) *slimnoc.Network {
		ns := spec.Network
		ns.Topology = "sn"
		ns.Layout = layout
		net, _, err := slimnoc.BuildNetwork(ns)
		if err != nil {
			fatal(err)
		}
		return net
	}

	m := core.DefaultBufferModel()
	if spec.SMART {
		m = m.WithSMART()
	}
	ref := build("subgr")
	fmt.Printf("Slim NoC q=%d: N=%d Nr=%d k'=%d (buffers sized with H=%d)\n\n",
		spec.Network.Q, ref.N(), ref.Nr, ref.NetworkRadix(), m.H)
	fmt.Printf("%-10s %8s %10s %12s %12s %10s\n",
		"layout", "die", "avg M", "Δeb [flits]", "Δcb20", "max W")
	for _, l := range slimnoc.Layouts() {
		net := build(l)
		x, y := net.GridDims()
		cost := core.CostOf(net, m, 20)
		fmt.Printf("%-10s %8s %10.2f %12d %12d %10d\n",
			"sn_"+l, fmt.Sprintf("%dx%d", x, y), cost.M, cost.TotalEB,
			cost.TotalCB, cost.MaxWires)
	}

	fmt.Println("\nwiring constraints (Eq. 3):")
	for _, wc := range core.WiringConstraints() {
		ok, got := core.SatisfiesConstraint(ref, wc)
		status := "OK"
		if !ok {
			status = "VIOLATED"
		}
		fmt.Printf("  %-5s W=%6d observed=%5d  %s\n", wc.Node, wc.MaxWires(), got, status)
	}

	if *dist {
		fmt.Println("\ndistance distributions (probability per 2-wide bin):")
		for _, l := range []string{"gr", "subgr"} {
			net := build(l)
			fmt.Printf("  sn_%s: ", l)
			for i, pr := range core.DistanceDistribution(net) {
				fmt.Printf("%d-%d:%.3f ", 2*i+1, 2*i+2, pr)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snlayout:", err)
	os.Exit(1)
}
