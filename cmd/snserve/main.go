// Command snserve runs the simulator as a co-simulation latency oracle: a
// long-lived service that external execution engines query for
// cycle-accurate transfer latencies over a JSON-line protocol (one request
// object per line, one response per line — see docs/SERVING.md).
//
// Two transports:
//
//	snserve                          # stdio: one session over stdin/stdout
//	snserve -listen 127.0.0.1:7333   # TCP: one session per connection
//
// A result store turns the service into a persistent memo table: every
// estimate episode is content-addressed (expanded spec + transfer batch +
// engine version) and durably cached, so a warm rerun of the same
// co-simulation serves every query without simulating:
//
//	snserve -store results < session.jsonl
//
// Sessions negotiate their engine (network, routing, VCs) in the hello
// request; warm engines are shared across sessions and -pool bounds how
// many engine episodes run concurrently (excess queues, which is how
// backpressure reaches clients).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"

	"repro/slimnoc/serve"
	"repro/slimnoc/store"
)

// stdio adapts the process's stdin/stdout to the ServeConn transport.
type stdio struct {
	io.Reader
	io.Writer
}

func main() {
	var (
		listen   = flag.String("listen", "", "TCP address to serve on (empty = one stdio session)")
		storeDir = flag.String("store", "", "result-store directory for the response cache (empty = no cache; reruns re-simulate)")
		pool     = flag.Int("pool", 0, "concurrent engine-activation bound (0 = NumCPU)")
		ejobs    = flag.Int("engine-jobs", 0, "parallel engine domains per episode (0/1 = serial, -1 = NumCPU); responses are byte-identical at every value")
		maxBatch = flag.Int("max-batch", serve.DefaultMaxBatch, "largest accepted batch request")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "snserve: unexpected argument %q (requests arrive on stdin or -listen, not argv)\n", flag.Arg(0))
		os.Exit(2)
	}
	if err := run(*listen, *storeDir, *pool, *ejobs, *maxBatch); err != nil {
		fmt.Fprintf(os.Stderr, "snserve: %v\n", err)
		os.Exit(1)
	}
}

func run(listen, storeDir string, pool, engineJobs, maxBatch int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if engineJobs < 0 {
		engineJobs = runtime.NumCPU()
	}
	p := serve.NewPool(pool)
	p.EngineJobs = engineJobs
	opts := []serve.ServerOption{
		serve.WithPool(p),
		serve.WithMaxBatch(maxBatch),
	}
	if storeDir != "" {
		st, err := store.Open(filepath.Join(storeDir, "serve.jsonl"))
		if err != nil {
			return err
		}
		defer st.Close()
		if st.Recovered() > 0 {
			fmt.Fprintf(os.Stderr, "snserve: store recovered (%d unreadable lines dropped)\n", st.Recovered())
		}
		fmt.Fprintf(os.Stderr, "snserve: response cache %s (%d records)\n", st.Path(), st.Len())
		opts = append(opts, serve.WithCache(serve.NewCache(st)))
	}
	srv := serve.NewServer(opts...)

	if listen == "" {
		err := srv.ServeConn(ctx, stdio{os.Stdin, os.Stdout})
		if errors.Is(err, serve.ErrShutdown) {
			err = nil
		}
		report(srv)
		return err
	}
	fmt.Fprintf(os.Stderr, "snserve: listening on %s\n", listen)
	err := srv.ListenAndServe(ctx, listen)
	report(srv)
	return err
}

// report prints the deterministic service counters to stderr on exit, so a
// scripted run can assert cache effectiveness without a stats request.
func report(srv *serve.Server) {
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "snserve: %d sessions, %d requests, %d estimates (%d simulated, %d cache hits)\n",
		st.Sessions, st.Requests, st.Estimates, st.Simulated, st.CacheHits)
}
