// Command sngen generates Slim NoC configurations: it prints Table 2
// (feasible configurations), the finite-field operation tables (Table 3),
// and, for a chosen q/p/layout (shared spec flags), the full router
// adjacency with labels, coordinates and generator sets.
//
// Usage:
//
//	sngen -table2
//	sngen -field 9
//	sngen -q 5 -p 4 -layout subgr [-adj]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gf"
	"repro/slimnoc"
)

func main() {
	sf := slimnoc.NewSpecFlags().
		BindCommon(flag.CommandLine).
		BindNetwork(flag.CommandLine)
	var (
		table2 = flag.Bool("table2", false, "print Table 2 (feasible configurations)")
		field  = flag.Int("field", 0, "print operation tables for GF(q)")
		adj    = flag.Bool("adj", false, "print the full adjacency list")
	)
	flag.Parse()

	switch {
	case *table2:
		for _, t := range exp.Table2(context.Background(), exp.Options{}) {
			fmt.Println(t.String())
		}
	case *field != 0:
		printField(*field)
	case sf.Q != 0 || sf.Net != "" || sf.SpecPath != "":
		defaults := slimnoc.DefaultSpec()
		defaults.Network = slimnoc.NetworkSpec{Topology: "sn", Q: sf.Q, Layout: "subgr"}
		spec, err := sf.Spec(defaults)
		if err != nil {
			fatal(err)
		}
		ns, err := slimnoc.ExpandNetwork(spec.Network)
		if err != nil {
			fatal(err)
		}
		if ns.Topology != "sn" {
			fatal(fmt.Errorf("sngen builds Slim NoCs only, got topology %q", ns.Topology))
		}
		build(ns, *adj)
	default:
		flag.Usage()
	}
}

func printField(q int) {
	f, err := gf.New(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("GF(%d): characteristic %d, degree %d\n", q, f.Char(), f.Degree())
	xi := f.PrimitiveElement()
	fmt.Printf("primitive elements: %v (using %s)\n", names(f, f.PrimitiveElements()), f.Name(xi))
	fmt.Println("\naddition:")
	printTable(f, f.AddTable())
	fmt.Println("\nmultiplication:")
	printTable(f, f.MulTable())
	fmt.Println("\nnegation:")
	for a := 0; a < q; a++ {
		fmt.Printf("  -%s = %s\n", f.Name(a), f.Name(f.Neg(a)))
	}
}

func names(f *gf.Field, es []int) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = f.Name(e)
	}
	return out
}

func printTable(f *gf.Field, t [][]int) {
	q := f.Order()
	fmt.Print("     ")
	for b := 0; b < q; b++ {
		fmt.Printf("%3s", f.Name(b))
	}
	fmt.Println()
	for a := 0; a < q; a++ {
		fmt.Printf("  %3s", f.Name(a))
		for b := 0; b < q; b++ {
			fmt.Printf("%3s", f.Name(t[a][b]))
		}
		fmt.Println()
	}
}

func build(ns slimnoc.NetworkSpec, adj bool) {
	q, p := ns.Q, ns.Conc
	if p == 0 {
		kp, err := core.KPrimeFor(q)
		if err != nil {
			fatal(err)
		}
		p = (kp + 1) / 2
	}
	s, err := core.New(core.Params{Q: q, P: p})
	if err != nil {
		fatal(err)
	}
	net, _, err := slimnoc.BuildNetwork(ns)
	if err != nil {
		fatal(err)
	}
	f := s.Field
	fmt.Printf("Slim NoC q=%d p=%d: N=%d routers=%d k'=%d k=%d diameter=%d\n",
		q, p, s.N(), s.Nr(), s.KPrime, net.RouterRadix(), net.Diameter())
	fmt.Printf("generator sets: X=%v X'=%v\n", names(f, s.X), names(f, s.Xp))
	fmt.Printf("layout %s: die %s, avg wire length M=%.2f hops, max wire crossings W=%d\n",
		ns.Layout, dieStr(net), net.AvgWireLength(), core.MaxWireCrossing(net))
	if adj {
		for i := 0; i < s.Nr(); i++ {
			l := s.LabelOf(i)
			c := net.Coords[i]
			fmt.Printf("router %3d [%d|%s,%s] at (%d,%d):", i, l.G, f.Name(l.A), f.Name(l.B), c.X, c.Y)
			for _, j := range s.Adj[i] {
				fmt.Printf(" %d", j)
			}
			fmt.Println()
		}
	}
}

func dieStr(net interface{ GridDims() (int, int) }) string {
	x, y := net.GridDims()
	return fmt.Sprintf("%dx%d", x, y)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sngen:", err)
	os.Exit(1)
}
