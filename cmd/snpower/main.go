// Command snpower estimates area, static power and dynamic power for any of
// the evaluated networks (the DSENT-substitute analyses behind
// Figs. 15-17).
//
// Usage:
//
//	snpower -net sn_subgr_200
//	snpower -net fbf9 -tech 22nm -smart -rate 0.24
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/power"
)

func main() {
	var (
		netName = flag.String("net", "sn_subgr_200", "network name")
		tech    = flag.String("tech", "45nm", "technology: 45nm or 22nm")
		smart   = flag.Bool("smart", false, "SMART links (affects buffer sizing and activity)")
		rate    = flag.Float64("rate", 0.24, "RND load for the dynamic-power estimate")
		cbr     = flag.Int("cbr", 0, "use central buffers of this size instead of edge buffers")
	)
	flag.Parse()

	var t power.Tech
	switch *tech {
	case "45nm":
		t = power.Tech45()
	case "22nm":
		t = power.Tech22()
	default:
		fatal(fmt.Errorf("unknown tech %q", *tech))
	}
	spec, err := exp.BuildNet(*netName)
	if err != nil {
		fatal(err)
	}
	n := spec.Net
	m := core.DefaultBufferModel()
	if *smart {
		m = m.WithSMART()
	}
	var buf power.BufferConfig
	if *cbr > 0 {
		buf = power.CentralBufferConfig(n, m, *cbr, 128)
	} else {
		buf = power.EdgeBufferConfig(n, m, 128)
	}

	a := power.Area(n, buf, 2, t)
	s := power.Static(n, buf, 2, t)
	fmt.Printf("network %s at %s: Nr=%d N=%d k'=%d, buffers %.0f flits total\n\n",
		*netName, t.Name, n.Nr, n.N(), n.NetworkRadix(), buf.TotalFlits)
	fmt.Printf("area [cm^2]   active routers %.4f | intermediate routers %.4f | RR wires %.4f | RN wires %.4f | total %.4f\n",
		a.ARouters, a.IRouters, a.RRWires, a.RNWires, a.Total())
	fmt.Printf("static [W]    routers %.3f | wires %.3f | total %.3f\n",
		s.Routers, s.Wires, s.Total())

	res, err := exp.Run(exp.RunSpec{
		Spec: spec, Pattern: "RND", Rate: *rate, SMART: *smart,
		Opts: exp.Options{Quick: true, Seed: 1},
	})
	if err != nil {
		fatal(err)
	}
	act := power.ActivityOf(n, res.Throughput, res.AvgHops, t, 128)
	d := power.Dynamic(act, t)
	fmt.Printf("dynamic [W]   buffers %.3f | crossbars %.3f | wires %.3f | total %.3f (RND load %.3f, accepted %.3f)\n",
		d.Buffers, d.Crossbars, d.Wires, d.Total(), *rate, res.Throughput)
	fmt.Printf("thr/power     %.1f flits/J\n",
		power.ThroughputPerPower(act.FlitsPerCycle, n.CycleTimeNs, s, d))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snpower:", err)
	os.Exit(1)
}
