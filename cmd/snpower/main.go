// Command snpower estimates area, static power and dynamic power for any of
// the evaluated networks (the DSENT-substitute analyses behind
// Figs. 15-17). The network and simulated load come from the shared spec
// flags (-net, -rate, -smart, or a -spec file).
//
// Usage:
//
//	snpower -net sn_subgr_200
//	snpower -net fbf9 -tech 22nm -smart -rate 0.24
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/power"
	"repro/slimnoc"
)

func main() {
	sf := slimnoc.NewSpecFlags().
		BindCommon(flag.CommandLine).
		BindNetwork(flag.CommandLine).
		BindRun(flag.CommandLine)
	var (
		tech = flag.String("tech", "45nm", "technology: 45nm or 22nm")
		cbr  = flag.Int("cbr", 0, "use central buffers of this size instead of edge buffers")
	)
	flag.Parse()

	var t power.Tech
	switch *tech {
	case "45nm":
		t = power.Tech45()
	case "22nm":
		t = power.Tech22()
	default:
		fatal(fmt.Errorf("unknown tech %q", *tech))
	}
	defaults := slimnoc.DefaultSpec()
	defaults.Traffic.Rate = 0.24
	spec, err := sf.Spec(defaults)
	if err != nil {
		fatal(err)
	}
	runner := slimnoc.NewRunner(spec)
	n, _, err := runner.Network()
	if err != nil {
		fatal(err)
	}
	m := core.DefaultBufferModel()
	if spec.SMART {
		m = m.WithSMART()
	}
	var buf power.BufferConfig
	if *cbr > 0 {
		buf = power.CentralBufferConfig(n, m, *cbr, 128)
	} else {
		buf = power.EdgeBufferConfig(n, m, 128)
	}

	a := power.Area(n, buf, 2, t)
	s := power.Static(n, buf, 2, t)
	fmt.Printf("network %s at %s: Nr=%d N=%d k'=%d, buffers %.0f flits total\n\n",
		n.Name, t.Name, n.Nr, n.N(), n.NetworkRadix(), buf.TotalFlits)
	fmt.Printf("area [cm^2]   active routers %.4f | intermediate routers %.4f | RR wires %.4f | RN wires %.4f | total %.4f\n",
		a.ARouters, a.IRouters, a.RRWires, a.RNWires, a.Total())
	fmt.Printf("static [W]    routers %.3f | wires %.3f | total %.3f\n",
		s.Routers, s.Wires, s.Total())

	res, err := runner.Run(context.Background())
	if err != nil {
		fatal(err)
	}
	act := power.ActivityOf(n, res.Metrics.Throughput, res.Metrics.AvgHops, t, 128)
	d := power.Dynamic(act, t)
	fmt.Printf("dynamic [W]   buffers %.3f | crossbars %.3f | wires %.3f | total %.3f (%s load %.3f, accepted %.3f)\n",
		d.Buffers, d.Crossbars, d.Wires, d.Total(), spec.Traffic.Pattern, spec.Traffic.Rate, res.Metrics.Throughput)
	fmt.Printf("thr/power     %.1f flits/J\n",
		power.ThroughputPerPower(act.FlitsPerCycle, n.CycleTimeNs, s, d))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snpower:", err)
	os.Exit(1)
}
