// Command snexp runs the paper-reproduction experiments and prints their
// tables. With no arguments it lists the registry; -exp runs one experiment,
// -all runs everything.
//
// Usage:
//
//	snexp -list
//	snexp -exp fig12 [-full] [-csv]
//	snexp -all [-full]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/stats"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiments")
		id   = flag.String("exp", "", "experiment ID to run")
		all  = flag.Bool("all", false, "run every experiment")
		full = flag.Bool("full", false, "full methodology (longer runs) instead of quick mode")
		csv  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := exp.Options{Quick: !*full, Seed: *seed}
	switch {
	case *list || (*id == "" && !*all):
		fmt.Println("Available experiments:")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	case *all:
		for _, e := range exp.Registry() {
			fmt.Printf("== running %s: %s\n", e.ID, e.Title)
			emit(e.Run(opts), *csv)
		}
	default:
		e, err := exp.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(e.Run(opts), *csv)
	}
}

func emit(tables []*stats.Table, csv bool) {
	for _, t := range tables {
		if csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
}
