// Command snexp runs the paper-reproduction experiments and prints their
// tables. With no arguments it lists the registry; -exp runs one experiment,
// -all runs everything. Scale and seed come from the shared spec flags
// (-full, -seed, or a -spec file's sim section); -jobs sets the simulation
// worker count (0 = every CPU — per-point results are identical at any job
// count). Ctrl-C cancels the in-flight sweep and exits cleanly.
//
// Usage:
//
//	snexp -list
//	snexp -exp fig12 [-full] [-csv] [-jobs 4]
//	snexp -all [-full]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/exp"
	"repro/internal/stats"
	"repro/slimnoc"
)

func main() {
	sf := slimnoc.NewSpecFlags().BindCommon(flag.CommandLine)
	var (
		list = flag.Bool("list", false, "list experiments")
		id   = flag.String("exp", "", "experiment ID to run")
		all  = flag.Bool("all", false, "run every experiment")
		csv  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jobs = flag.Int("jobs", 0, "parallel simulation workers (0 = NumCPU, 1 = serial)")
	)
	flag.Parse()

	spec, err := sf.Spec(slimnoc.DefaultSpec())
	if err != nil {
		fmt.Fprintln(os.Stderr, "snexp:", err)
		os.Exit(1)
	}
	// Quick controls sweep density; the spec's cycle counts pass through
	// verbatim.
	full := slimnoc.FullSim()
	opts := exp.Options{
		Quick:         spec.Sim.MeasureCycles < full.MeasureCycles,
		Seed:          spec.Sim.Seed,
		Jobs:          *jobs,
		WarmupCycles:  spec.Sim.WarmupCycles,
		MeasureCycles: spec.Sim.MeasureCycles,
		DrainCycles:   spec.Sim.DrainCycles,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	switch {
	case *list || (*id == "" && !*all):
		fmt.Println("Available experiments:")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	case *all:
		for _, e := range exp.Registry() {
			fmt.Printf("== running %s: %s\n", e.ID, e.Title)
			tables, err := runExperiment(ctx, e, opts)
			if err != nil {
				interrupted(err)
			}
			emit(tables, *csv)
		}
	default:
		e, err := exp.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tables, err := runExperiment(ctx, e, opts)
		if err != nil {
			interrupted(err)
		}
		emit(tables, *csv)
	}
}

// runExperiment invokes one experiment, converting the cancellation panic
// the Must* experiment helpers raise on Ctrl-C back into an error.
func runExperiment(ctx context.Context, e exp.Experiment, opts exp.Options) (tables []*stats.Table, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if rerr, ok := r.(error); ok && errors.Is(rerr, context.Canceled) {
			err = rerr
			return
		}
		panic(r)
	}()
	return e.Run(ctx, opts), nil
}

func interrupted(err error) {
	fmt.Fprintln(os.Stderr, "snexp: interrupted:", err)
	os.Exit(130)
}

func emit(tables []*stats.Table, csv bool) {
	for _, t := range tables {
		if csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
}
