// Command snexp runs the paper-reproduction experiments and prints their
// tables. With no arguments it lists the registry; -exp runs one experiment,
// -all runs everything. Scale and seed come from the shared spec flags
// (-full, -seed, or a -spec file's sim section).
//
// Usage:
//
//	snexp -list
//	snexp -exp fig12 [-full] [-csv]
//	snexp -all [-full]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/stats"
	"repro/slimnoc"
)

func main() {
	sf := slimnoc.NewSpecFlags().BindCommon(flag.CommandLine)
	var (
		list = flag.Bool("list", false, "list experiments")
		id   = flag.String("exp", "", "experiment ID to run")
		all  = flag.Bool("all", false, "run every experiment")
		csv  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	spec, err := sf.Spec(slimnoc.DefaultSpec())
	if err != nil {
		fmt.Fprintln(os.Stderr, "snexp:", err)
		os.Exit(1)
	}
	// Quick controls sweep density; the spec's cycle counts pass through
	// verbatim.
	full := slimnoc.FullSim()
	opts := exp.Options{
		Quick:         spec.Sim.MeasureCycles < full.MeasureCycles,
		Seed:          spec.Sim.Seed,
		WarmupCycles:  spec.Sim.WarmupCycles,
		MeasureCycles: spec.Sim.MeasureCycles,
		DrainCycles:   spec.Sim.DrainCycles,
	}
	switch {
	case *list || (*id == "" && !*all):
		fmt.Println("Available experiments:")
		for _, e := range exp.Registry() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	case *all:
		for _, e := range exp.Registry() {
			fmt.Printf("== running %s: %s\n", e.ID, e.Title)
			emit(e.Run(opts), *csv)
		}
	default:
		e, err := exp.ByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(e.Run(opts), *csv)
	}
}

func emit(tables []*stats.Table, csv bool) {
	for _, t := range tables {
		if csv {
			fmt.Println(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
}
