// Command snsim runs a single network simulation point and prints its
// result: latency, throughput, hop count and saturation state. Runs are
// described by slimnoc run specs: load one with -spec and/or override
// individual fields with flags, and persist the resolved spec with
// -save-spec for reproducible re-runs.
//
// Usage:
//
//	snsim -net sn_subgr_200 -pattern rnd -rate 0.06 [-smart] [-scheme cbr]
//	snsim -net fbf3 -pattern adv1 -rate 0.24 -cycles 20000
//	snsim -spec run.json
//	snsim -net t2d9 -rate 0.12 -save-spec run.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/slimnoc"
)

func main() {
	sf := slimnoc.NewSpecFlags().
		BindCommon(flag.CommandLine).
		BindNetwork(flag.CommandLine).
		BindRun(flag.CommandLine)
	progress := flag.Bool("progress", false, "print periodic progress during the run")
	flag.Parse()

	spec, err := sf.Spec(slimnoc.DefaultSpec())
	if err != nil {
		fatal(err)
	}
	var opts []slimnoc.Option
	if *progress {
		opts = append(opts, slimnoc.WithProgress(0, func(p slimnoc.Progress) {
			fmt.Fprintf(os.Stderr, "cycle %d/%d: %d/%d packets delivered, %d flits in flight\n",
				p.Cycle, p.TotalCycles, p.Delivered, p.Generated, p.InFlight)
		}))
	}
	res, err := slimnoc.Run(context.Background(), spec, opts...)
	if err != nil {
		fatal(err)
	}
	n, m := res.Network, res.Metrics
	fmt.Printf("network     %s (Nr=%d, N=%d, k'=%d, D=%d, cycle %.1fns)\n",
		n.Name, n.Routers, n.Nodes, n.NetworkRadix, n.Diameter, n.CycleTimeNs)
	fmt.Printf("traffic     %s at %.3f flits/node/cycle\n", spec.Traffic.Pattern, spec.Traffic.Rate)
	fmt.Printf("latency     %.2f cycles (%.1f ns), p99 %.0f cycles\n",
		m.AvgLatencyCycles, m.AvgLatencyNs, m.P99LatencyCycles)
	fmt.Printf("throughput  %.4f flits/node/cycle (offered %.4f)\n", m.Throughput, m.OfferedLoad)
	fmt.Printf("hops        %.2f avg\n", m.AvgHops)
	fmt.Printf("packets     %d delivered of %d tracked\n", m.Delivered, m.Generated)
	if m.Saturated {
		fmt.Println("state       SATURATED")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snsim:", err)
	os.Exit(1)
}
