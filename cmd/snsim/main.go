// Command snsim runs a single network simulation point and prints its
// result: latency, throughput, hop count and saturation state.
//
// Usage:
//
//	snsim -net sn_subgr_200 -pattern RND -rate 0.06 [-smart] [-scheme cbr]
//	snsim -net fbf3 -pattern ADV1 -rate 0.24 -cycles 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/sim"
)

func main() {
	var (
		netName = flag.String("net", "sn_subgr_200", "network name (see Table 4 names or sn_<layout>_<N>)")
		pattern = flag.String("pattern", "RND", "traffic: RND, SHF, REV, ADV1, ADV2, ASYM")
		rate    = flag.Float64("rate", 0.06, "offered load in flits/node/cycle")
		smart   = flag.Bool("smart", false, "enable SMART links (H=9)")
		scheme  = flag.String("scheme", "eb", "buffering: eb, ebvar, eblarge, el, cbr")
		cbCap   = flag.Int("cb", 20, "central buffer capacity (cbr scheme)")
		vcs     = flag.Int("vcs", 2, "virtual channels")
		cycles  = flag.Int64("cycles", 0, "measurement cycles (0 = default)")
		seed    = flag.Int64("seed", 1, "random seed")
		policy  = flag.String("adaptive", "", "adaptive routing: '', ugal-l, ugal-g, min-adapt")
	)
	flag.Parse()

	spec, err := exp.BuildNet(*netName)
	if err != nil {
		fatal(err)
	}
	rs := exp.RunSpec{
		Spec:    spec,
		VCs:     *vcs,
		Pattern: *pattern,
		Rate:    *rate,
		SMART:   *smart,
		CBCap:   *cbCap,
		Opts:    exp.Options{Quick: *cycles == 0, Seed: *seed},
	}
	switch *scheme {
	case "eb":
		rs.Scheme = sim.EdgeBuffers
	case "ebvar":
		rs.Scheme = sim.EdgeBuffers
		h := 1
		if *smart {
			h = 9
		}
		rs.BufCap = sim.EdgeBufVar(h, *vcs)
	case "eblarge":
		rs.Scheme = sim.EdgeBuffers
		rs.BufCap = func(int) int { return 15 }
	case "el":
		rs.Scheme = sim.ElasticLinks
	case "cbr":
		rs.Scheme = sim.CentralBuffer
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	switch *policy {
	case "":
	case "ugal-l":
		rs.Policy = &sim.UGAL{Global: false, VCs: *vcs}
	case "ugal-g":
		rs.Policy = &sim.UGAL{Global: true, VCs: *vcs}
	case "min-adapt":
		rs.Policy = &sim.MinAdaptive{VCs: *vcs}
	default:
		fatal(fmt.Errorf("unknown adaptive policy %q", *policy))
	}

	res, err := exp.Run(rs)
	if err != nil {
		fatal(err)
	}
	n := spec.Net
	fmt.Printf("network     %s (Nr=%d, N=%d, k'=%d, D=%d, cycle %.1fns)\n",
		*netName, n.Nr, n.N(), n.NetworkRadix(), n.Diameter(), n.CycleTimeNs)
	fmt.Printf("traffic     %s at %.3f flits/node/cycle\n", *pattern, *rate)
	fmt.Printf("latency     %.2f cycles (%.1f ns), p99 %.0f cycles\n",
		res.AvgLatency, res.AvgLatency*n.CycleTimeNs, res.P99Latency)
	fmt.Printf("throughput  %.4f flits/node/cycle (offered %.4f)\n", res.Throughput, res.OfferedLoad)
	fmt.Printf("hops        %.2f avg\n", res.AvgHops)
	fmt.Printf("packets     %d delivered of %d tracked\n", res.Delivered, res.Generated)
	if res.Saturated {
		fmt.Println("state       SATURATED")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snsim:", err)
	os.Exit(1)
}
