// Command snsim runs network simulations and prints their results. Single
// runs are described by slimnoc run specs: load one with -spec and/or
// override individual fields with flags, and persist the resolved spec with
// -save-spec for reproducible re-runs. Whole evaluation grids run as
// campaigns: -sweep loads a declarative sweep file, expands its axes into a
// cartesian product of points, and executes them on -jobs parallel workers,
// streaming per-point lines to stdout and (with -out) JSONL or (-csv-out)
// CSV records to files. Ctrl-C cancels the campaign and keeps the partial
// results.
//
// Usage:
//
//	snsim -net sn_subgr_200 -pattern rnd -rate 0.06 [-smart] [-scheme cbr]
//	snsim -net fbf3 -pattern adv1 -rate 0.24 -cycles 20000
//	snsim -net sn_subgr_200 -rate 0.06 -process burst -burst-len 8 -duty 0.25
//	snsim -net sn_subgr_200 -rate 0.06 -hotspot-frac 0.2 -size-mix bimodal
//	snsim -net sn_subgr_200 -process reqreply -window 4
//	snsim -spec run.json
//	snsim -net t2d9 -rate 0.12 -save-spec run.json
//	snsim -sweep sweep.json -jobs 8 -out results.jsonl
//	snsim -net sn_subgr_200 -rate 0.40 -engine-jobs -1
//	snsim -net sn_subgr_200 -rate 0.24 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/slimnoc"
)

func main() {
	sf := slimnoc.NewSpecFlags().
		BindCommon(flag.CommandLine).
		BindNetwork(flag.CommandLine).
		BindRun(flag.CommandLine)
	progress := flag.Bool("progress", false, "print periodic progress during the run")
	sweepPath := flag.String("sweep", "", "run a sweep campaign from this JSON file instead of a single point")
	jobs := flag.Int("jobs", 0, "campaign workers (0 = NumCPU, 1 = serial); -sweep only")
	engineJobs := flag.Int("engine-jobs", 0, "parallel engine domains per run (0/1 = serial, -1 = NumCPU); results are byte-identical at every value")
	outPath := flag.String("out", "", "write campaign results as JSONL to this file; -sweep only")
	csvPath := flag.String("csv-out", "", "write campaign results as CSV to this file; -sweep only")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	// Profile teardown must run before exiting, so the exit code travels
	// back out of run() instead of os.Exit firing mid-defer.
	os.Exit(run(sf, *progress, *sweepPath, *jobs, *engineJobs, *outPath, *csvPath, *cpuProfile, *memProfile))
}

// run executes the selected mode with profiling wrapped around it and
// returns the process exit code. A failed profile write turns an otherwise
// successful run into a failure, so scripts never consume a missing or
// truncated profile.
func run(sf *slimnoc.SpecFlags, progress bool, sweepPath string, jobs, engineJobs int, outPath, csvPath, cpuProfile, memProfile string) (code int) {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if memProfile != "" {
		defer func() {
			if err := writeMemProfile(memProfile); err != nil && code == 0 {
				code = fail(err)
			}
		}()
	}

	if sweepPath != "" {
		// The single-run spec flags do not apply to a campaign: its points
		// come entirely from the sweep file. Reject them loudly instead of
		// silently running a different configuration than requested.
		sweepFlags := map[string]bool{"sweep": true, "jobs": true, "engine-jobs": true,
			"out": true, "csv-out": true, "cpuprofile": true, "memprofile": true}
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			if !sweepFlags[f.Name] {
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fail(fmt.Errorf("%s do(es) not apply to -sweep mode; set those fields in the sweep file's base spec",
				strings.Join(conflicts, ", ")))
		}
		return runSweep(sweepPath, jobs, engineJobs, outPath, csvPath)
	}

	spec, err := sf.Spec(slimnoc.DefaultSpec())
	if err != nil {
		return fail(err)
	}
	var opts []slimnoc.Option
	if engineJobs != 0 {
		opts = append(opts, slimnoc.WithEngineJobs(engineJobs))
	}
	if progress {
		opts = append(opts, slimnoc.WithProgress(0, func(p slimnoc.Progress) {
			fmt.Fprintf(os.Stderr, "cycle %d/%d: %d/%d packets delivered, %d flits in flight\n",
				p.Cycle, p.TotalCycles, p.Delivered, p.Generated, p.InFlight)
		}))
	}
	res, err := slimnoc.Run(context.Background(), spec, opts...)
	if err != nil {
		return fail(err)
	}
	n, m := res.Network, res.Metrics
	fmt.Printf("network     %s (Nr=%d, N=%d, k'=%d, D=%d, cycle %.1fns)\n",
		n.Name, n.Routers, n.Nodes, n.NetworkRadix, n.Diameter, n.CycleTimeNs)
	desc := spec.Traffic.Pattern
	if toks := slimnoc.TrafficLabel(spec.Traffic); len(toks) > 0 {
		desc += " [" + strings.Join(toks, " ") + "]"
	}
	if spec.Traffic.Process == "reqreply" {
		fmt.Printf("traffic     %s closed-loop (load self-throttles; offered below)\n", desc)
	} else {
		fmt.Printf("traffic     %s at %.3f flits/node/cycle\n", desc, spec.Traffic.Rate)
	}
	fmt.Printf("latency     %.2f cycles (%.1f ns), p99 %.0f cycles\n",
		m.AvgLatencyCycles, m.AvgLatencyNs, m.P99LatencyCycles)
	fmt.Printf("throughput  %.4f flits/node/cycle (offered %.4f)\n", m.Throughput, m.OfferedLoad)
	fmt.Printf("hops        %.2f avg\n", m.AvgHops)
	fmt.Printf("packets     %d delivered of %d tracked\n", m.Delivered, m.Generated)
	if m.Saturated {
		fmt.Println("state       SATURATED")
	}
	return 0
}

// runSweep executes a declarative sweep campaign and returns the exit code.
func runSweep(path string, jobs, engineJobs int, outPath, csvPath string) int {
	sweep, err := slimnoc.LoadSweep(path)
	if err != nil {
		return fail(err)
	}
	points, err := sweep.Points()
	if err != nil {
		return fail(err)
	}
	fmt.Printf("sweep %s: %d points\n", sweep.Name, len(points))

	copts := []slimnoc.CampaignOption{
		slimnoc.WithJobs(jobs),
		slimnoc.WithPointEngineJobs(engineJobs),
		slimnoc.WithOnPoint(func(p slimnoc.PointResult) {
			if p.Err != nil {
				fmt.Printf("  [%3d] %-40s ERROR %v\n", p.Index, p.Spec.Name, p.Err)
				return
			}
			m := p.Result.Metrics
			state := ""
			if m.Saturated {
				state = "  SATURATED"
			}
			fmt.Printf("  [%3d] %-40s lat %8.2f cyc  thr %.4f%s\n",
				p.Index, p.Spec.Name, m.AvgLatencyCycles, m.Throughput, state)
		}),
	}
	var files []*os.File
	for _, sink := range []struct {
		path string
		mk   func(f *os.File) slimnoc.Sink
	}{
		{outPath, func(f *os.File) slimnoc.Sink { return slimnoc.NewJSONLSink(f) }},
		{csvPath, func(f *os.File) slimnoc.Sink { return slimnoc.NewCSVSink(f) }},
	} {
		if sink.path == "" {
			continue
		}
		f, err := os.Create(sink.path)
		if err != nil {
			return fail(err)
		}
		files = append(files, f)
		copts = append(copts, slimnoc.WithSink(sink.mk(f)))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := slimnoc.RunCampaign(ctx, points, copts...)
	for _, f := range files {
		f.Close()
	}
	// A point is done only when it finished cleanly: a cancelled in-flight
	// point carries partial metrics alongside its error and must not count.
	done, failed := 0, 0
	for _, p := range results {
		switch {
		case p.Err == nil:
			done++
		case err == nil:
			failed++
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "snsim: campaign interrupted (%d of %d points done): %v\n",
			done, len(points), err)
		return 130
	}
	fmt.Printf("done: %d points (%d failed)\n", done, failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// writeMemProfile snapshots the heap after the run.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // settle the heap so the profile shows retained memory
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fail reports an error and returns the generic failure exit code.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "snsim:", err)
	return 1
}
