// Command snrepro is the paper-reproduction driver: it runs any subset of
// the evaluation's figures and tables from the machine-readable manifest,
// against a content-addressed result store, and renders one Markdown and
// one CSV report per figure under docs/results/.
//
// The store makes every campaign restartable: each simulated point is
// durably appended under its content address (the hash of its expanded
// spec plus the engine version) before it is reported, so Ctrl-C loses at
// most the in-flight points. Rerunning the same invocation completes only
// the missing points and emits reports byte-identical to an uninterrupted
// run; a fully warm rerun simulates nothing. Points shared between figures
// (the same network, pattern, load and seed) are computed once and served
// to every figure that contains them.
//
// Usage:
//
//	snrepro -list
//	snrepro -figs fig12,tab5 -store results -out docs/results
//	snrepro -all -full -jobs 8
//	snrepro -figs fig12 -short     # quick mode: CI-sized grids and cycles
//	snrepro -figs sat-nets,sat-schemes,sat-process   # saturation searches
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/exp"
	"repro/slimnoc"
	"repro/slimnoc/store"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the reproducible figures and exit")
		figsFlag = flag.String("figs", "", "comma-separated figure IDs to reproduce (e.g. fig12,tab5)")
		all      = flag.Bool("all", false, "reproduce every manifest figure")
		storeDir = flag.String("store", "results", "result-store directory (holds store.jsonl; reruns resume from it)")
		outDir   = flag.String("out", filepath.Join("docs", "results"), "directory for the per-figure Markdown and CSV reports")
		short    = flag.Bool("short", false, "quick mode: shrunken grids and cycle counts (alias of -quick)")
		quick    = flag.Bool("quick", false, "quick mode: shrunken grids and cycle counts")
		full     = flag.Bool("full", false, "paper methodology: full grids and cycle counts (default)")
		jobs     = flag.Int("jobs", 0, "parallel simulation workers (0 = NumCPU, 1 = serial)")
		ejobs    = flag.Int("engine-jobs", 0, "parallel engine domains per point (0/1 = serial, -1 = NumCPU); results are byte-identical at every value")
		memCap   = flag.Int64("mem-budget", 0, "per-point engine memory budget in bytes (0 = each figure's declared budget, -1 = no cap); oversized points fail fast instead of allocating")
		seed     = flag.Int64("seed", 1, "base seed every per-point seed derives from")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		// `snrepro fig12` would otherwise silently fall into -list mode and
		// exit 0 having reproduced nothing.
		fmt.Fprintf(os.Stderr, "snrepro: unexpected argument %q — figures are selected with -figs (e.g. -figs %s)\n",
			flag.Arg(0), flag.Arg(0))
		os.Exit(2)
	}
	os.Exit(run(*list, *figsFlag, *all, *storeDir, *outDir,
		(*short || *quick) && !*full, *jobs, *ejobs, *memCap, *seed))
}

// run executes the driver and returns the process exit code: 0 on success,
// 1 on failure, 130 when interrupted (with the store holding everything
// completed so far).
func run(list bool, figsFlag string, all bool, storeDir, outDir string, quick bool, jobs, engineJobs int, memBudget, seed int64) int {
	opts := exp.Options{Quick: quick, Seed: seed, Jobs: jobs, EngineJobs: engineJobs, MemBudget: memBudget}
	manifest := exp.Manifest(opts)

	if list || (figsFlag == "" && !all) {
		fmt.Println("Reproducible figures (snrepro -figs <id,...>):")
		for _, f := range manifest {
			kind := fmt.Sprintf("%d sweep(s)", len(f.Sweeps))
			switch {
			case f.Analytic:
				kind = "analytic"
			case len(f.Sats) > 0:
				kind = fmt.Sprintf("%d search(es)", len(f.Sats))
			}
			fmt.Printf("  %-11s %-11s %s (%s)\n", f.ID, kind, f.Title, f.Section)
		}
		return 0
	}

	figures, err := selectFigures(manifest, figsFlag, all)
	if err != nil {
		return fail(err)
	}

	st, err := store.Open(filepath.Join(storeDir, "store.jsonl"))
	if err != nil {
		return fail(err)
	}
	defer st.Close()
	if n := st.Recovered(); n > 0 {
		fmt.Fprintf(os.Stderr, "snrepro: store recovered: dropped %d unreadable line(s), %d result(s) kept\n", n, st.Len())
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, f := range figures {
		fmt.Printf("== %s: %s (%s)\n", f.ID, f.Title, f.Section)
		run, err := exp.RunFigure(ctx, f, opts, slimnoc.WithStore(st))
		if err != nil {
			if errors.Is(err, context.Canceled) {
				cached, fresh := run.CachedCount()
				fmt.Fprintf(os.Stderr,
					"snrepro: interrupted during %s (%d cached + %d fresh points done); rerun the same command to resume from %s\n",
					f.ID, cached, fresh, st.Path())
				return 130
			}
			return fail(fmt.Errorf("%s: %w", f.ID, err))
		}
		if bad := firstPointError(run); bad != nil {
			return fail(fmt.Errorf("%s: %w", f.ID, bad))
		}
		cached, fresh := run.CachedCount()
		if f.Analytic {
			fmt.Printf("   analytic artifact — see `snexp -exp %s` for the derived tables\n", f.ID)
		} else {
			fmt.Printf("   %d points (%d from store, %d simulated)\n", cached+fresh, cached, fresh)
		}
		mdPath := filepath.Join(outDir, f.ID+".md")
		if err := os.WriteFile(mdPath, []byte(run.Markdown()), 0o644); err != nil {
			return fail(err)
		}
		if !f.Analytic {
			csvPath := filepath.Join(outDir, f.ID+".csv")
			if err := os.WriteFile(csvPath, []byte(run.CSV()), 0o644); err != nil {
				return fail(err)
			}
		}
		fmt.Printf("   wrote %s\n", mdPath)
	}
	fmt.Printf("done: %d figure(s); store %s holds %d result(s)\n", len(figures), st.Path(), st.Len())
	return 0
}

// selectFigures resolves the -figs/-all selection against the manifest,
// preserving manifest order and rejecting unknown IDs.
func selectFigures(manifest []exp.Figure, figsFlag string, all bool) ([]exp.Figure, error) {
	if all {
		return manifest, nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(figsFlag, ",") {
		if id = strings.ToLower(strings.TrimSpace(id)); id != "" {
			want[id] = true
		}
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("-figs selected nothing")
	}
	var out []exp.Figure
	var have []string
	for _, f := range manifest {
		have = append(have, f.ID)
		if want[f.ID] {
			out = append(out, f)
			delete(want, f.ID)
		}
	}
	if len(want) > 0 {
		var missing []string
		for id := range want {
			missing = append(missing, id)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("unknown figure(s) %s (have %s)",
			strings.Join(missing, ", "), strings.Join(have, ", "))
	}
	return out, nil
}

// firstPointError surfaces the first failed point of a completed figure.
func firstPointError(run exp.FigureRun) error {
	for _, sweep := range run.Results {
		for _, p := range sweep {
			if p.Err != nil {
				return fmt.Errorf("point %s: %w", p.Spec.Name, p.Err)
			}
		}
	}
	return nil
}

// fail reports an error and returns the generic failure exit code.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "snrepro:", err)
	return 1
}
