package slimnoc

import (
	"fmt"
	"strings"

	"repro/internal/routing"
	"repro/internal/sim"
)

// Transfer is one point-to-point message for latency estimation; see
// sim.Transfer. Aliased here so serve-layer callers never import
// internal/sim.
type Transfer = sim.Transfer

// EstimateResult is the latency answer for one transfer of an estimate
// episode. All fields are deterministic functions of the estimator spec and
// the episode's transfer batch, which is what makes responses cacheable and
// byte-stable across reruns.
type EstimateResult struct {
	// LatencyCycles is the end-to-end delivery latency in router cycles:
	// injection at cycle 0 on an idle network through tail-flit ejection.
	LatencyCycles int64 `json:"latency_cycles"`
	// LatencyNs converts LatencyCycles at the network's cycle time.
	LatencyNs float64 `json:"latency_ns"`
	// Hops is the router-path hop count of the transfer's compiled route.
	Hops int `json:"hops"`
	// Flits is the transfer size the episode actually simulated.
	Flits int `json:"flits"`
}

// Estimator answers cycle-accurate per-transfer latency queries on a warm
// engine: the network is built and the static route table compiled once at
// construction, then every Estimate call runs one isolated engine episode
// (all transfers injected at cycle 0 on an idle network, stepped until the
// last tail flit ejects). An Estimator is immutable after NewEstimator and
// safe for any number of concurrent Estimate calls — episodes share the
// network and route table strictly read-only, the same contract campaign
// workers rely on (pinned under -race by TestEstimatorConcurrentIdentity).
//
// Estimates need compiled routes, so the spec must name a static routing
// algorithm; adaptive algorithms (which route per packet from live state
// that an isolated episode does not have) are rejected by NewEstimator.
type Estimator struct {
	spec  RunSpec
	net   *Network
	kind  routing.Kind
	table *routing.RouteTable
	cfg   sim.Config // template: Net/Table/VCs/scheme fields set, Traffic nil
	// MaxCycles bounds one episode (0 = the engine default); exceeding it
	// means an undeliverable transfer and fails the episode.
	MaxCycles int64
	// EngineJobs steps each episode's engine across that many parallel
	// spatial domains (0 or 1 = serial; see sim.Config.EngineJobs).
	// Latencies are byte-identical at every value, so it is not part of the
	// estimator's cache identity. Like MaxCycles, set it before the
	// estimator is shared across goroutines.
	EngineJobs int
}

// EstimatorSpec canonicalizes a RunSpec to the fields an estimate episode
// actually reads: the expanded network, static routing, buffering and the
// SMART hop factor. Name, the whole traffic axis and the simulation phases
// are cleared — an episode has no background traffic, no phases and (with
// static routing) no RNG draws — so every spec that estimates identically
// shares one canonical form. That form is the estimator's warm-engine pool
// key and the serve layer's response-cache identity (salted with the
// engine version, like PointKey).
func EstimatorSpec(spec RunSpec) (RunSpec, error) {
	n := spec.Normalized()
	n.Name = ""
	n.Traffic = TrafficSpec{}
	n.Sim = SimSpec{}
	expanded, err := ExpandNetwork(n.Network)
	if err != nil {
		return RunSpec{}, err
	}
	n.Network = expanded
	return n, nil
}

// NewEstimator builds the warm engine for the spec: network constructed,
// static routes compiled into an immutable shared table, buffering scheme
// resolved. The traffic and sim sections of the spec are ignored (see
// EstimatorSpec).
func NewEstimator(spec RunSpec) (*Estimator, error) {
	canon, err := EstimatorSpec(spec)
	if err != nil {
		return nil, err
	}
	re, ok := routings.lookup(canon.Routing.Algorithm)
	if !ok {
		return nil, fmt.Errorf("slimnoc: unknown routing algorithm %q (have %s)",
			canon.Routing.Algorithm, strings.Join(Routings(), ", "))
	}
	if re.Adaptive {
		return nil, fmt.Errorf("slimnoc: estimator requires compiled (static) routes; adaptive algorithm %q routes per packet",
			canon.Routing.Algorithm)
	}
	net, kind, err := BuildNetwork(canon.Network)
	if err != nil {
		return nil, err
	}
	vcs := canon.Routing.VCs
	table, err := CompileRouteTable(net, kind, canon.Routing.Algorithm, vcs)
	if err != nil {
		return nil, err
	}
	h := canon.HopsPerCycle()
	se, ok := schemes.lookup(canon.Buffering.Scheme)
	if !ok {
		return nil, fmt.Errorf("slimnoc: unknown buffer scheme %q (have %s)",
			canon.Buffering.Scheme, strings.Join(Schemes(), ", "))
	}
	sc, err := se.New(canon.Buffering, h, vcs)
	if err != nil {
		return nil, err
	}
	return &Estimator{
		spec:  canon,
		net:   net,
		kind:  kind,
		table: table,
		cfg: sim.Config{
			Net:        net,
			Table:      table,
			VCs:        vcs,
			Scheme:     sc.Scheme,
			EdgeBufCap: sc.BufCap,
			CBCap:      sc.CBCap,
			H:          h,
		},
	}, nil
}

// Spec returns the estimator's canonical spec (see EstimatorSpec) — the
// identity under which its answers may be cached or pooled.
func (e *Estimator) Spec() RunSpec { return e.spec }

// Network summarises the estimator's network.
func (e *Estimator) Network() NetworkInfo { return networkInfo(e.net) }

// Nodes returns the endpoint count: valid transfer endpoints are
// [0, Nodes).
func (e *Estimator) Nodes() int { return e.net.N() }

// CycleTimeNs returns the router cycle time used for ns conversion.
func (e *Estimator) CycleTimeNs() float64 { return e.net.CycleTimeNs }

// RouterPath returns the compiled router path a transfer from node src to
// node dst follows (len >= 1; consecutive elements are the directed links
// the transfer occupies). The returned slice is the table's interned
// storage: read-only, valid for the estimator's lifetime.
func (e *Estimator) RouterPath(src, dst int) ([]int, error) {
	n := e.net.N()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("slimnoc: transfer endpoints (%d -> %d) out of node range [0, %d)", src, dst, n)
	}
	path, _ := e.table.Route(e.net.NodeRouter(src), e.net.NodeRouter(dst))
	out := make([]int, len(path))
	for i, r := range path {
		out[i] = int(r)
	}
	return out, nil
}

// Estimate runs one isolated episode: every transfer of the batch is
// injected at cycle 0 into an idle network and simulated cycle-accurately
// until delivery. A one-transfer batch measures zero-load route latency; a
// larger batch measures a concurrent burst, contention included. Episodes
// are deterministic and independent, so concurrent calls return the same
// results as serial ones.
func (e *Estimator) Estimate(transfers []Transfer) ([]EstimateResult, error) {
	cfg := e.cfg
	cfg.EngineJobs = e.EngineJobs
	lats, err := sim.EstimateLatencies(cfg, transfers, e.MaxCycles)
	if err != nil {
		return nil, err
	}
	out := make([]EstimateResult, len(transfers))
	for i, tr := range transfers {
		path, _ := e.table.Route(e.net.NodeRouter(tr.Src), e.net.NodeRouter(tr.Dst))
		out[i] = EstimateResult{
			LatencyCycles: lats[i],
			LatencyNs:     float64(lats[i]) * e.net.CycleTimeNs,
			Hops:          len(path) - 1,
			Flits:         tr.Flits,
		}
	}
	return out, nil
}
