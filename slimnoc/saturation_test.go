package slimnoc

import (
	"context"
	"path/filepath"
	"testing"

	"repro/slimnoc/store"
)

// satSpec returns the calibrated search used across the saturation tests:
// t2d54 under uniform random traffic saturates between 0.20 and 0.25
// flits/node/cycle at these cycle counts.
func satSpec() SaturationSpec {
	return SaturationSpec{
		Name: "satsearch",
		Base: RunSpec{
			Network: NetworkSpec{Preset: "t2d54"},
			Traffic: TrafficSpec{Pattern: "rnd"},
			Sim:     SimSpec{WarmupCycles: 300, MeasureCycles: 1000, DrainCycles: 2000, Seed: 5},
		},
		MinLoad:       0.05,
		MaxLoad:       0.45,
		Step:          0.05,
		LatencyFactor: 3,
	}
}

// TestSaturationSearch pins the search against ground truth: a brute-force
// scan of the full load grid, using the identical saturation predicate, must
// agree with the binary search to within one probe step — and by grid
// construction they agree exactly on the last unsaturated grid load.
func TestSaturationSearch(t *testing.T) {
	spec := satSpec()
	res, err := NewCampaign(WithJobs(1)).SaturationSearch(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.AtMin || res.AtMax {
		t.Fatalf("search hit the bracket edge: %+v", res)
	}
	if len(res.Probes) == 0 {
		t.Fatal("search executed no probes")
	}

	// Brute force: run every grid load and find the last one below the
	// search's own threshold.
	grid := spec.Grid()
	var points []RunSpec
	for _, load := range grid {
		p := spec.Base
		p.Traffic.Rate = load
		points = append(points, p)
	}
	scan, err := RunCampaign(t.Context(), points, WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	bruteSat, seen := 0.0, false
	for i, p := range scan {
		if p.Err != nil {
			t.Fatalf("grid point %d: %v", i, p.Err)
		}
		if !Saturates(p.Result.Metrics, res.Threshold) {
			bruteSat, seen = grid[i], true
		} else {
			break // the curve is monotone in this regime
		}
	}
	if !seen {
		t.Fatal("grid scan found no unsaturated load; recalibrate the test network")
	}
	if diff := res.SaturationLoad - bruteSat; diff > spec.Step+1e-12 || diff < -spec.Step-1e-12 {
		t.Errorf("search found %.3f, brute-force grid found %.3f (> one step %g apart)",
			res.SaturationLoad, bruteSat, spec.Step)
	}
	// The binary search visits grid points only, so on a monotone curve the
	// two answers coincide exactly.
	if res.SaturationLoad != bruteSat {
		t.Errorf("search found %.3f, want the grid scan's %.3f exactly", res.SaturationLoad, bruteSat)
	}
	// Far fewer probes than the grid: that is the point of the search.
	if len(res.Probes) >= len(grid) {
		t.Errorf("search used %d probes for a %d-point grid", len(res.Probes), len(grid))
	}
}

// TestSaturationSearchStoreResume pins the resumability contract: the same
// search against a warm store simulates nothing (every probe served cached)
// and returns the identical result.
func TestSaturationSearchStoreResume(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	spec := satSpec()
	cold, err := NewCampaign(WithJobs(1), WithStore(st)).SaturationSearch(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range cold.Probes {
		if p.Cached {
			t.Errorf("cold probe %d served from an empty store", i)
		}
	}

	warm, err := NewCampaign(WithJobs(1), WithStore(st)).SaturationSearch(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SaturationLoad != cold.SaturationLoad || warm.Threshold != cold.Threshold {
		t.Errorf("warm search (%.3f, thr %.2f) differs from cold (%.3f, thr %.2f)",
			warm.SaturationLoad, warm.Threshold, cold.SaturationLoad, cold.Threshold)
	}
	if len(warm.Probes) != len(cold.Probes) {
		t.Fatalf("warm search ran %d probes, cold ran %d", len(warm.Probes), len(cold.Probes))
	}
	for i, p := range warm.Probes {
		if !p.Cached {
			t.Errorf("warm probe %d (load %g) simulated instead of serving the store",
				i, p.Spec.Traffic.Rate)
		}
	}

	// Cross-mode reuse: a grid sweep over the same loads is served from the
	// search's store entries for every load the search probed.
	grid := spec.Grid()
	var points []RunSpec
	for _, load := range grid {
		p := spec.Base
		p.Traffic.Rate = load
		points = append(points, p)
	}
	scan, err := RunCampaign(t.Context(), points, WithJobs(1), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	probed := map[float64]bool{}
	for _, p := range cold.Probes {
		probed[p.Spec.Traffic.Rate] = true
	}
	hits := 0
	for i, p := range scan {
		if p.Err != nil {
			t.Fatalf("grid point %d: %v", i, p.Err)
		}
		if probed[grid[i]] && !p.Cached {
			t.Errorf("grid load %g was probed by the search but simulated again", grid[i])
		}
		if p.Cached {
			hits++
		}
	}
	if hits != len(probed) {
		t.Errorf("grid scan got %d store hits, want %d (one per distinct probe)", hits, len(probed))
	}
}

// TestSaturationSpecValidate covers the search spec's rejection paths.
func TestSaturationSpecValidate(t *testing.T) {
	ok := satSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("calibrated spec invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*SaturationSpec)
	}{
		{"inverted bracket", func(s *SaturationSpec) { s.MinLoad, s.MaxLoad = 0.4, 0.2 }},
		{"step too large", func(s *SaturationSpec) { s.Step = 1 }},
		{"factor below 1", func(s *SaturationSpec) { s.LatencyFactor = 0.5 }},
		{"closed loop", func(s *SaturationSpec) { s.Base.Traffic.Process = "reqreply" }},
		{"trace workload", func(s *SaturationSpec) {
			s.Base.Traffic = TrafficSpec{Pattern: "trace", Trace: "fft"}
		}},
		{"bad base", func(s *SaturationSpec) { s.Base.Network.Preset = "no_such_net" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := satSpec()
			c.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
	// An invalid spec must also fail the search itself, with no probes run.
	bad := satSpec()
	bad.Base.Traffic.Process = "reqreply"
	res, err := NewCampaign().SaturationSearch(context.Background(), bad)
	if err == nil {
		t.Error("search accepted a closed-loop base")
	}
	if len(res.Probes) != 0 {
		t.Errorf("failed search still ran %d probes", len(res.Probes))
	}
}

// TestSaturationGrid pins the grid construction the store-key sharing
// depends on: inclusive endpoints, Step spacing, and run-to-run float64
// reproducibility (two Grid calls must return bit-identical values, since
// point keys hash the load bytes).
func TestSaturationGrid(t *testing.T) {
	s := SaturationSpec{MinLoad: 0.1, MaxLoad: 0.3, Step: 0.05}
	got := s.Grid()
	if len(got) != 5 {
		t.Fatalf("grid %v, want 5 points", got)
	}
	if got[0] != 0.1 {
		t.Errorf("grid starts at %v, want MinLoad", got[0])
	}
	for i := 1; i < len(got); i++ {
		if d := got[i] - got[i-1]; d < 0.05-1e-12 || d > 0.05+1e-12 {
			t.Errorf("grid spacing [%d] = %v, want Step", i, d)
		}
	}
	if last := got[len(got)-1]; last < 0.3-1e-9 || last > 0.3+1e-9 {
		t.Errorf("grid ends at %v, want MaxLoad", last)
	}
	again := s.Grid()
	for i := range got {
		if got[i] != again[i] {
			t.Errorf("grid[%d] not reproducible: %v vs %v", i, got[i], again[i])
		}
	}
	if g := (SaturationSpec{}).Grid(); len(g) < 2 {
		t.Errorf("default grid too small: %v", g)
	}
}
