package slimnoc

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestRunnerWithRouteTable pins that a precompiled shared table changes
// nothing about the results: metrics are byte-identical to a run that
// builds its own routes.
func TestRunnerWithRouteTable(t *testing.T) {
	net, kind, err := BuildNetwork(NetworkSpec{Preset: "sn_subgr_200"})
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.06},
		Sim:     SimSpec{WarmupCycles: 200, MeasureCycles: 600, DrainCycles: 1200, Seed: 5},
	}.Normalized()
	tab, err := CompileRouteTable(net, kind, spec.Routing.Algorithm, spec.Routing.VCs)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...Option) string {
		t.Helper()
		res, err := Run(context.Background(), spec, opts...)
		if err != nil {
			t.Fatal(err)
		}
		m, err := json.Marshal(res.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		return string(m)
	}
	plain := run(WithNetwork(net, kind))
	shared := run(WithNetwork(net, kind), WithRouteTable(tab))
	if plain != shared {
		t.Errorf("shared route table changed metrics:\nplain  %s\nshared %s", plain, shared)
	}
}

// TestRouteTableNetworkMismatch: a table compiled for one network must not
// silently route a different one — the simulator rejects mismatched
// dimensions, and a campaign point whose options swap the network drops
// the cached table and recompiles instead of failing.
func TestRouteTableNetworkMismatch(t *testing.T) {
	netA, kindA, err := BuildNetwork(NetworkSpec{Preset: "sn_subgr_200"})
	if err != nil {
		t.Fatal(err)
	}
	tabA, err := CompileRouteTable(netA, kindA, "auto", 2)
	if err != nil {
		t.Fatal(err)
	}
	netB, kindB, err := BuildNetwork(NetworkSpec{Preset: "t2d54"})
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
		Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 200, DrainCycles: 400, Seed: 7},
	}
	if _, err := Run(t.Context(), spec, WithNetwork(netB, kindB), WithRouteTable(tabA)); err == nil {
		t.Fatal("running network B with a table compiled for network A must fail")
	}
	// The campaign path: the internal cache attaches a table for the
	// spec's network, then point options substitute another network. The
	// stale table must be dropped, not applied.
	spec.Network = NetworkSpec{Preset: "sn_subgr_200"}
	results, err := RunCampaign(t.Context(), []RunSpec{spec},
		WithJobs(1),
		WithPointOptions(func(int, RunSpec) []Option {
			return []Option{WithNetwork(netB, kindB)}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("network override alongside a cached table must recompile, got %v", results[0].Err)
	}
	if got := results[0].Result.Network.Name; got != netB.Name {
		t.Fatalf("point ran on %q, want the overriding network %q", got, netB.Name)
	}
}

// TestCompileRouteTableAdaptiveRejected: adaptive algorithms route per
// packet and must refuse compilation rather than freeze a misleading table.
func TestCompileRouteTableAdaptiveRejected(t *testing.T) {
	net, kind, err := BuildNetwork(NetworkSpec{Preset: "sn_subgr_200"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileRouteTable(net, kind, "ugal-l", 4); err == nil {
		t.Fatal("compiling an adaptive algorithm must fail")
	}
	if _, err := CompileRouteTable(net, kind, "no-such-algo", 2); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
}

// TestCampaignSharedRouteTableRace runs many concurrent simulations that
// all read one compiled route table — both the campaign's internal
// per-(network, routing, VCs) cache and an explicitly shared table via
// WithRouteTable. Under -race this pins the contract that compiled tables
// are immutable.
func TestCampaignSharedRouteTableRace(t *testing.T) {
	net, kind, err := BuildNetwork(NetworkSpec{Preset: "sn_subgr_200"})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := CompileRouteTable(net, kind, "auto", 2)
	if err != nil {
		t.Fatal(err)
	}
	var points []RunSpec
	for i := 0; i < 12; i++ {
		points = append(points, RunSpec{
			Network: NetworkSpec{Preset: "sn_subgr_200"},
			Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.02 + 0.005*float64(i)},
			Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 600, Seed: int64(i + 1)},
		})
	}
	// First half rides the campaign's internal table cache; second half
	// shares the explicitly compiled table.
	results, err := RunCampaign(t.Context(), points,
		WithJobs(runtime.NumCPU()),
		WithPointOptions(func(i int, _ RunSpec) []Option {
			if i%2 == 0 {
				return nil
			}
			return []Option{WithNetwork(net, kind), WithRouteTable(tab)}
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range results {
		if p.Err != nil {
			t.Errorf("point %d: %v", i, p.Err)
		}
	}
}
