package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCanonicalSortsKeysAndPreservesNumbers(t *testing.T) {
	got, err := CanonicalizeJSON([]byte(`{"b": 0.24, "a": {"z": 1e3, "y": [1, 2.50, -0]}, "c": "x"}`))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a":{"y":[1,2.50,-0],"z":1e3},"b":0.24,"c":"x"}`
	if string(got) != want {
		t.Errorf("canonical = %s, want %s", got, want)
	}
}

// TestCanonicalFieldOrderIndependent pins the property content addressing
// relies on: two structs with the same fields in different declaration
// order canonicalize identically.
func TestCanonicalFieldOrderIndependent(t *testing.T) {
	type ab struct {
		A int     `json:"a"`
		B float64 `json:"b"`
	}
	type ba struct {
		B float64 `json:"b"`
		A int     `json:"a"`
	}
	x, err := Canonical(ab{A: 7, B: 0.06})
	if err != nil {
		t.Fatal(err)
	}
	y, err := Canonical(ba{B: 0.06, A: 7})
	if err != nil {
		t.Fatal(err)
	}
	if string(x) != string(y) {
		t.Errorf("field order changed canonical form: %s vs %s", x, y)
	}
	kx, _ := KeyOf("salt", ab{A: 7, B: 0.06})
	ky, _ := KeyOf("salt", ba{B: 0.06, A: 7})
	if kx != ky {
		t.Errorf("field order changed key: %s vs %s", kx, ky)
	}
}

func TestKeyOfSaltPartitions(t *testing.T) {
	a, err := KeyOf("engine-v1", map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KeyOf("engine-v2", map[string]int{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different salts produced the same key")
	}
	if len(a) != 64 || strings.ToLower(string(a)) != string(a) {
		t.Errorf("key %q is not lowercase hex sha256", a)
	}
}

func TestStorePutGetReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, _ := KeyOf("t", "one")
	k2, _ := KeyOf("t", "two")
	if err := s.Put(k1, json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, json.RawMessage(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	// Identical re-put is a no-op; a changed value supersedes.
	if err := s.Put(k1, json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, json.RawMessage(`{"v":22}`)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovered() != 0 {
		t.Errorf("clean file recovered %d lines", r.Recovered())
	}
	if v, ok := r.Get(k1); !ok || string(v) != `{"v":1}` {
		t.Errorf("k1 = %s, %v", v, ok)
	}
	if v, ok := r.Get(k2); !ok || string(v) != `{"v":22}` {
		t.Errorf("k2 = %s, %v (want superseding record to win)", v, ok)
	}
}

// TestStoreRecoversTruncatedTail simulates a crash mid-append: the final
// record is torn. Open must keep every complete record, drop the tail, and
// leave a clean file behind.
func TestStoreRecoversTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 3)
	for i := range keys {
		keys[i], _ = KeyOf("t", i)
		if err := s.Put(keys[i], json.RawMessage(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Recovered() != 1 {
		t.Errorf("Recovered = %d, want 1", r.Recovered())
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if _, ok := r.Get(keys[2]); ok {
		t.Error("torn record survived recovery")
	}
	// The store stays writable after recovery, and the rewritten file reads
	// back cleanly.
	if err := r.Put(keys[2], json.RawMessage(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	rr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	if rr.Recovered() != 0 || rr.Len() != 3 {
		t.Errorf("after recovery+put: recovered %d, len %d, want 0, 3", rr.Recovered(), rr.Len())
	}
}

// TestStoreRecoversCorruptLine checks a line corrupted in place is dropped
// while the valid records around it survive.
func TestStoreRecoversCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	k1, _ := KeyOf("t", 1)
	k2, _ := KeyOf("t", 2)
	lines := []string{
		fmt.Sprintf(`{"key":%q,"value":{"v":1}}`, k1),
		`{"key":"zz","value":garbage}`,
		fmt.Sprintf(`{"key":%q,"value":{"v":2}}`, k2),
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Recovered() != 1 {
		t.Errorf("Recovered = %d, want 1", s.Recovered())
	}
	for _, k := range []Key{k1, k2} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("valid record %s lost during recovery", k)
		}
	}
}

func TestStoreConcurrentPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k, _ := KeyOf("t", [2]int{w, i})
				if err := s.Put(k, json.RawMessage(fmt.Sprintf(`{"w":%d,"i":%d}`, w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovered() != 0 || r.Len() != 160 {
		t.Errorf("recovered %d, len %d, want 0, 160", r.Recovered(), r.Len())
	}
}

// TestStoreConcurrentReadMostly pins the read-mostly concurrency contract
// documented in the package comment: many goroutines Get concurrently while
// one writer appends, with no torn reads and no lost records. Run under
// -race by the CI race job.
func TestStoreConcurrentReadMostly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const preload = 64
	keys := make([]Key, preload)
	for i := range keys {
		keys[i], _ = KeyOf("warm", i)
		if err := s.Put(keys[i], json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}

	const newRecords = 100
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keys[(r*131+i)%preload]
				v, ok := s.Get(k)
				if !ok {
					t.Errorf("reader %d: preloaded key %s missing", r, k)
					return
				}
				want := fmt.Sprintf(`{"i":%d}`, (r*131+i)%preload)
				if string(v) != want {
					t.Errorf("reader %d: %s = %s, want %s", r, k, v, want)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < newRecords; i++ {
			k, _ := KeyOf("fresh", i)
			if err := s.Put(k, json.RawMessage(fmt.Sprintf(`{"n":%d}`, i))); err != nil {
				t.Error(err)
				return
			}
			// Identical re-put of a warm key exercises the no-op path readers
			// race against.
			if err := s.Put(keys[i%preload], json.RawMessage(fmt.Sprintf(`{"i":%d}`, i%preload))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if s.Len() != preload+newRecords {
		t.Errorf("Len = %d, want %d", s.Len(), preload+newRecords)
	}
	s.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovered() != 0 || r.Len() != preload+newRecords {
		t.Errorf("reopen: recovered %d, len %d, want 0, %d", r.Recovered(), r.Len(), preload+newRecords)
	}
}
