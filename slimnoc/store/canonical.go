package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Canonical renders v as canonical JSON: the encoding/json serialization of
// v re-encoded with object keys sorted lexicographically, no insignificant
// whitespace, and numbers preserved verbatim (no float round trip). Two
// values that marshal to semantically equal JSON documents — regardless of
// struct field declaration order or map iteration order — yield identical
// canonical bytes, which is what makes hashes of those bytes stable
// content addresses (see KeyOf).
func Canonical(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("store: canonicalizing: %w", err)
	}
	return CanonicalizeJSON(data)
}

// CanonicalizeJSON re-encodes one JSON document in canonical form (sorted
// object keys, compact, numbers verbatim). It rejects documents with
// trailing data so a canonical form is always a single value.
func CanonicalizeJSON(data []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("store: canonicalizing: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("store: canonicalizing: trailing data after JSON value")
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeCanonical emits one decoded JSON value in canonical form.
func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		// The decoder's verbatim token: no float64 round trip, so 0.24
		// stays "0.24" and large int64 seeds keep every digit.
		buf.WriteString(x.String())
	default:
		// Strings, booleans and null re-encode losslessly.
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return nil
}
