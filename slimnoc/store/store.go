// Package store is a content-addressed, append-only result store for
// campaign points. Records are addressed by a Key — the SHA-256 of a salt
// plus the canonical-JSON form of the record's identity value (for
// campaigns: the fully expanded RunSpec and the engine version, see
// slimnoc.PointKey) — and persisted as one JSON line each, so a store file
// is both crash-tolerant and trivially inspectable with line tools.
//
// The durability contract is what makes campaigns resumable: Put appends
// and syncs a record before returning, Open replays the file and recovers
// from a torn or corrupted tail (dropping only unreadable lines), and a key
// present in the store is served instead of recomputed. Because keys hash
// the complete point identity, a store can be shared by any number of
// sweeps and figures — identical points are computed once, and results
// from an incompatible engine generation never collide with current ones
// (the engine version participates in the hash).
//
// # Concurrency
//
// A Store is safe for concurrent use by any number of goroutines: every
// operation serializes on one internal mutex, so readers see either the
// state before a concurrent Put or the state after it, never a torn
// record. The intended access pattern is read-mostly — many goroutines
// Get cached results while an occasional writer Puts new ones (a campaign
// filling in missing points, a serve session caching a fresh estimate) —
// and that pattern is pinned under the race detector by
// TestStoreConcurrentReadMostly. Puts are durable before they are visible:
// a Get can only return a value that has already been synced to disk.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key is the content address of one record: the lowercase-hex SHA-256 of
// the salted canonical identity bytes. Keys are comparable and safe to use
// as map keys and file names.
type Key string

// KeyOf computes the content address of v under the given salt. The salt
// partitions the key space (e.g. by engine version or record schema) so
// values hashed under different salts can never alias. The hash input is
//
//	salt '\n' canonical(v)
//
// with canonical as defined by Canonical: field order never matters, so a
// struct reordering cannot silently change keys (pinned by the golden
// fixtures in the slimnoc package).
func KeyOf(salt string, v any) (Key, error) {
	data, err := Canonical(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(salt))
	h.Write([]byte{'\n'})
	h.Write(data)
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// record is the JSONL on-disk form of one store entry.
type record struct {
	Key   Key             `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Store is a JSONL-backed key-value store of computed results. It is safe
// for concurrent use: campaign workers Put from multiple goroutines while
// others Get. A Store holds its file open for appending until Close.
type Store struct {
	mu        sync.Mutex
	f         *os.File
	path      string
	index     map[Key]json.RawMessage
	recovered int
	// size is the byte length of the durable, fully terminated records —
	// the rollback point when an append fails partway.
	size int64
}

// Open loads (or creates) the store at path, replaying its JSONL records
// into memory. Lines that fail to parse — a tail torn by a crash mid-append,
// or corruption — are dropped and counted in Recovered, and the file is
// compacted to its valid records so subsequent appends stay readable. When
// the same key appears on multiple lines the last one wins.
func Open(path string) (*Store, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", path, err)
		}
	}
	s := &Store{path: path, index: make(map[Key]json.RawMessage)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	var valid bytes.Buffer
	if len(data) > 0 {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(nil, 64<<20)
		complete := bytes.HasSuffix(data, []byte{'\n'})
		var lines [][]byte
		for sc.Scan() {
			lines = append(lines, append([]byte(nil), sc.Bytes()...))
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", path, err)
		}
		for i, line := range lines {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var r record
			if err := json.Unmarshal(line, &r); err != nil || r.Key == "" || len(r.Value) == 0 {
				s.recovered++
				continue
			}
			if i == len(lines)-1 && !complete {
				// A final line without its newline is a torn append: the
				// bytes may be a prefix of a longer record that happens to
				// parse. Drop it; the point is simply recomputed.
				s.recovered++
				continue
			}
			s.index[r.Key] = r.Value
			valid.Write(line)
			valid.WriteByte('\n')
		}
	}
	if s.recovered > 0 {
		// Compact away the unreadable lines so the next reader sees a clean
		// file. Write-then-rename keeps the store valid even if this
		// recovery itself is interrupted.
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, valid.Bytes(), 0o644); err != nil {
			return nil, fmt.Errorf("store: recovering %s: %w", path, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return nil, fmt.Errorf("store: recovering %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	s.f = f
	s.size = int64(valid.Len())
	if s.recovered == 0 {
		s.size = int64(len(data))
	}
	return s, nil
}

// Get returns the stored value for key, if present. The returned bytes are
// shared — callers must not modify them.
func (s *Store) Get(key Key) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.index[key]
	return v, ok
}

// Put stores value under key, appending one durable JSONL record. A put of
// bytes identical to the stored value is a no-op, so re-running a fully
// cached campaign never grows the file; a put of different bytes appends a
// superseding record (last record wins on replay).
func (s *Store) Put(key Key, value json.RawMessage) error {
	if key == "" {
		return fmt.Errorf("store: put with empty key")
	}
	line, err := json.Marshal(record{Key: key, Value: value})
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.index[key]; ok && bytes.Equal(old, value) {
		return nil
	}
	if s.f == nil {
		return fmt.Errorf("store: put on closed or failed store %s", s.path)
	}
	rec := append(line, '\n')
	_, werr := s.f.Write(rec)
	if werr == nil {
		werr = s.f.Sync()
	}
	if werr != nil {
		// A short write may have left an unterminated partial line, and an
		// unsynced record is not durable either way: roll the file back to
		// the last durable record so later appends do not merge onto
		// leftover bytes (and so size stays in lockstep with the file). If
		// even the rollback fails, poison the store: further Puts error
		// instead of silently reporting unrecoverable records as stored.
		if terr := s.f.Truncate(s.size); terr != nil {
			s.f.Close()
			s.f = nil
		}
		return fmt.Errorf("store: put: %w", werr)
	}
	s.size += int64(len(rec))
	s.index[key] = append(json.RawMessage(nil), value...)
	return nil
}

// Len returns the number of distinct keys currently stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Recovered returns how many unreadable lines Open dropped while replaying
// the file — nonzero after recovering from a crash mid-append.
func (s *Store) Recovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Close releases the append handle. Get keeps working on the in-memory
// index; Put fails after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
