package slimnoc

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Source generates traffic for the simulator; see sim.Source. Aliased here
// so callers of the facade never import internal/sim.
type Source = sim.Source

// AdaptivePolicy chooses packet routes from live network state; see
// sim.AdaptivePolicy.
type AdaptivePolicy = sim.AdaptivePolicy

// Progress is the periodic telemetry snapshot streamed during a run.
type Progress = sim.Progress

// Network is the placed router graph; see topo.Network.
type Network = topo.Network

// Kind names a network's topology family and grid parameters so the
// deadlock-free routing appropriate to it can be derived; see routing.Kind.
type Kind = routing.Kind

// PathBuilder produces a router path and per-hop VCs for one packet; see
// routing.PathBuilder.
type PathBuilder = routing.PathBuilder

// RouteTable is the compiled, interned form of a static routing algorithm;
// see routing.RouteTable. Tables built by CompileRouteTable are immutable
// and safe to share across concurrent runs.
type RouteTable = routing.RouteTable

// EngineStats is the simulator-core telemetry block attached to every
// Result: freelist behaviour, active-set occupancy and timing-wheel depth;
// see sim.EngineStats.
type EngineStats = sim.EngineStats

// Topology classes understood by the "auto" routing algorithm, re-exported
// for custom TopologyBuilder implementations.
const (
	ClassGeneric = routing.ClassGeneric
	ClassMesh    = routing.ClassMesh
	ClassTorus   = routing.ClassTorus
	ClassFBF     = routing.ClassFBF
	ClassPFBF    = routing.ClassPFBF
)

// Runner executes one RunSpec. A Runner is single-use: build it with
// NewRunner (or use the package-level Run convenience) and call Run once.
type Runner struct {
	spec RunSpec

	net     *topo.Network
	kind    routing.Kind
	haveNet bool

	source        sim.Source
	policy        sim.AdaptivePolicy
	table         *routing.RouteTable
	bufCap        func(dist int) int
	progress      func(Progress)
	progressEvery int64
	engineJobs    int
	cycleStep     bool
	memBudget     int64
}

// Option customises a Runner beyond what the declarative spec expresses.
type Option func(*Runner)

// WithNetwork supplies an already built network, bypassing the topology
// registry (sweeps that reuse one network across many runs). The network is
// treated as read-only from here on: neither sim.New nor Run mutates a
// supplied topo.Network, so one network may back any number of concurrent
// Runners (the Campaign engine relies on this; TestCampaignSharedNetworkRace
// pins it under -race). Callers must likewise stop mutating the network
// once it is shared.
func WithNetwork(net *Network, kind routing.Kind) Option {
	return func(r *Runner) { r.net, r.kind, r.haveNet = net, kind, true }
}

// WithRouteTable supplies a precompiled route table for the spec's static
// routing algorithm, skipping per-run path-builder construction and route
// compilation. The table must come from CompileRouteTable (or
// routing.Compile) for the same network, algorithm and VC count as the
// spec. Compiled tables are immutable, so one table may back any number of
// concurrent Runners — the Campaign engine shares one per distinct
// (network, routing, VCs) combination, and
// TestCampaignSharedRouteTableRace pins the contract under -race. The
// table is ignored when the spec names an adaptive algorithm or a
// WithAdaptivePolicy override is installed, since those route per packet.
func WithRouteTable(t *RouteTable) Option {
	return func(r *Runner) { r.table = t }
}

// WithSource overrides the traffic section of the spec with a custom
// generator (e.g. a recorded trace replay).
func WithSource(src Source) Option {
	return func(r *Runner) { r.source = src }
}

// WithAdaptivePolicy overrides the routing algorithm's adaptive policy.
func WithAdaptivePolicy(p AdaptivePolicy) Option {
	return func(r *Runner) { r.policy = p }
}

// WithEdgeBufferSizing overrides the per-VC edge-buffer capacity as a
// function of wire length (edge-buffer schemes only).
func WithEdgeBufferSizing(f func(dist int) int) Option {
	return func(r *Runner) { r.bufCap = f }
}

// WithProgress streams a telemetry snapshot every `every` cycles (0 = the
// simulator default of 1024) to fn during the run.
func WithProgress(every int64, fn func(Progress)) Option {
	return func(r *Runner) { r.progress, r.progressEvery = fn, every }
}

// WithEngineJobs steps the engine's spatial router domains on n parallel
// workers (n < 0 selects runtime.NumCPU()). Results are byte-identical at
// every value — domain parallelism is an execution strategy, not a model
// parameter — which is also why this is a Runner option rather than a
// RunSpec field: it must not enter the spec's canonical bytes or the
// PointKey derived from them. 0 and 1 mean serial; values above the router
// count are clamped.
func WithEngineJobs(n int) Option {
	if n < 0 {
		n = runtime.NumCPU()
	}
	return func(r *Runner) { r.engineJobs = n }
}

// WithCycleStep forces the classic cycle-by-cycle stepping loop, disabling
// the event calendar's dead-cycle skipping. Results are byte-identical with
// or without it — the calendar is exact-equivalent by contract — so like
// WithEngineJobs this is an execution strategy, not a model parameter, and
// stays out of the spec's canonical bytes and PointKey. Useful for
// differential debugging and for benchmarking the calendar's speedup.
func WithCycleStep() Option {
	return func(r *Runner) { r.cycleStep = true }
}

// WithMemBudget caps the engine's estimated steady-state memory footprint at
// bytes (0 = no cap). The estimate covers the per-node, per-router, per-VC
// and per-edge state plus the compiled route table; a spec whose instance
// exceeds the budget fails fast in Run with a sizing error instead of
// allocating. The budget never alters results — runs that fit behave
// identically at any budget — so it is a Runner option, not a RunSpec field.
func WithMemBudget(bytes int64) Option {
	return func(r *Runner) { r.memBudget = bytes }
}

// NewRunner prepares a Runner for the spec.
func NewRunner(spec RunSpec, opts ...Option) *Runner {
	r := &Runner{spec: spec.Normalized()}
	for _, o := range opts {
		o(r)
	}
	return r
}

// NetworkInfo summarises the structural properties of the simulated
// network.
type NetworkInfo struct {
	Name          string  `json:"name"`
	Routers       int     `json:"routers"`
	Nodes         int     `json:"nodes"`
	NetworkRadix  int     `json:"network_radix"`
	RouterRadix   int     `json:"router_radix"`
	Diameter      int     `json:"diameter"`
	CycleTimeNs   float64 `json:"cycle_time_ns"`
	AvgWireLength float64 `json:"avg_wire_length"`
}

// Metrics is the typed measurement summary of one run.
type Metrics struct {
	AvgLatencyCycles float64 `json:"avg_latency_cycles"`
	AvgLatencyNs     float64 `json:"avg_latency_ns"`
	P99LatencyCycles float64 `json:"p99_latency_cycles"`
	// Throughput is accepted flits/node/cycle in the measurement window.
	Throughput  float64 `json:"throughput"`
	OfferedLoad float64 `json:"offered_load"`
	AvgHops     float64 `json:"avg_hops"`
	Delivered   int64   `json:"delivered"`
	Generated   int64   `json:"generated"`
	Cycles      int64   `json:"cycles"`
	Saturated   bool    `json:"saturated"`
	// DeadlockSuspected flags a run whose drain phase stalled with flits
	// still in flight — a routing or flow-control misconfiguration.
	DeadlockSuspected bool `json:"deadlock_suspected,omitempty"`
}

// Result is the outcome of one run: the spec that produced it, the network
// it ran on, the measured metrics, and the engine telemetry (allocation
// behaviour, active-set occupancy, timing-wheel depth). Raw carries the
// unwrapped simulator result for callers layered below the facade.
type Result struct {
	Spec    RunSpec     `json:"spec"`
	Network NetworkInfo `json:"network"`
	Metrics Metrics     `json:"metrics"`
	Engine  EngineStats `json:"engine"`
	Raw     sim.Result  `json:"-"`
}

// Network resolves (building if necessary) the spec's network. Exposed so
// analyses that need the graph itself (power models, layout costs) share
// the run's exact topology.
func (r *Runner) Network() (*Network, routing.Kind, error) {
	if !r.haveNet {
		net, kind, err := BuildNetwork(r.spec.Network)
		if err != nil {
			return nil, routing.Kind{}, err
		}
		r.net, r.kind, r.haveNet = net, kind, true
	}
	return r.net, r.kind, nil
}

// Run executes the spec. Cancelling the context stops the simulation at the
// next poll point; the returned Result then holds the metrics accumulated
// so far alongside an error wrapping ctx.Err().
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	spec := r.spec
	net, kind, err := r.Network()
	if err != nil {
		return nil, err
	}

	vcs := spec.Routing.VCs
	re, ok := routings.lookup(spec.Routing.Algorithm)
	if !ok {
		return nil, fmt.Errorf("slimnoc: unknown routing algorithm %q (have %s)",
			spec.Routing.Algorithm, strings.Join(Routings(), ", "))
	}
	var pb routing.PathBuilder
	var policy sim.AdaptivePolicy
	var table *routing.RouteTable
	if r.table != nil && !re.Adaptive && r.policy == nil {
		// A shared compiled table stands in for the per-run path builder.
		table = r.table
	} else {
		pb, policy, err = re.New(net, kind, vcs)
		if err != nil {
			return nil, err
		}
	}
	if r.policy != nil {
		policy = r.policy
	}

	h := spec.HopsPerCycle()
	se, ok := schemes.lookup(spec.Buffering.Scheme)
	if !ok {
		return nil, fmt.Errorf("slimnoc: unknown buffer scheme %q (have %s)",
			spec.Buffering.Scheme, strings.Join(Schemes(), ", "))
	}
	sc, err := se.New(spec.Buffering, h, vcs)
	if err != nil {
		return nil, err
	}
	if r.bufCap != nil {
		sc.BufCap = r.bufCap
	}

	src := r.source
	if src == nil {
		te, ok := traffics.lookup(spec.Traffic.Pattern)
		if !ok {
			return nil, fmt.Errorf("slimnoc: unknown traffic pattern %q (have %s)",
				spec.Traffic.Pattern, strings.Join(Traffics(), ", "))
		}
		if src, err = te.New(net, spec.Traffic); err != nil {
			return nil, err
		}
	}

	cfg := sim.Config{
		Net:            net,
		Routing:        pb,
		Table:          table,
		VCs:            vcs,
		Scheme:         sc.Scheme,
		EdgeBufCap:     sc.BufCap,
		CBCap:          sc.CBCap,
		H:              h,
		PacketFlits:    spec.Traffic.PacketFlits,
		InjQueueCap:    spec.Sim.InjQueueCap,
		Seed:           spec.Sim.Seed,
		Traffic:        src,
		Adaptive:       policy,
		WarmupCycles:   spec.Sim.WarmupCycles,
		MeasureCycles:  spec.Sim.MeasureCycles,
		DrainCycles:    spec.Sim.DrainCycles,
		EngineJobs:     r.engineJobs,
		CycleStep:      r.cycleStep,
		MemBudgetBytes: r.memBudget,
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	raw, runErr := s.RunContext(ctx, r.progressEvery, r.progress)
	res := &Result{
		Spec:    spec,
		Network: networkInfo(net),
		Metrics: metricsOf(raw, net.CycleTimeNs),
		Engine:  s.EngineStats(),
		Raw:     raw,
	}
	return res, runErr
}

// compactTableThreshold is the dense-table size above which
// CompileRouteTable switches to the compact next-hop form for eligible
// algorithms. 64 MiB keeps every benchmark-sized network on the dense
// zero-reconstruction path while the paper's 100k-endpoint instances
// (whose dense tables reach gigabytes) compress to one byte per pair.
const compactTableThreshold = 64 << 20

// compactSelected reports whether CompileRouteTable picks the compact form:
// the algorithm must be compact-eligible and the dense table must exceed
// compactTableThreshold. The dense size is the exact interned footprint
// (routing.EstimateDenseBytes, a BFS distance census), not just the
// nr^2 x 12 offset floor — long-path topologies like the 10k-endpoint
// torus/mesh baselines intern hundreds of MiB of path bytes on top of a
// 19 MiB floor. The floor short-circuits the census in both directions:
// when the offsets alone bust the threshold (the 100k presets, where the
// census itself would be minutes of BFS) the answer is compact without it.
func compactSelected(net *Network, kind Kind, algorithm string) bool {
	if !compactEligible(kind, algorithm) {
		return false
	}
	if int64(net.Nr)*int64(net.Nr)*12 > compactTableThreshold {
		return true
	}
	return routing.EstimateDenseBytes(net) > compactTableThreshold
}

// compactEligible reports whether the algorithm's routes on this topology
// are exactly the deterministic minimal next-hop routes that
// routing.CompileCompact reproduces: the generic minimal builder, either
// named directly or selected by "auto" on a generic-class topology (SN,
// Dragonfly, Clos). Grid algorithms (DOR, XY, datelines) assign VCs by
// geometry rather than hop index and keep their dense tables.
func compactEligible(kind Kind, algorithm string) bool {
	switch strings.ToLower(algorithm) {
	case "minimal":
		return true
	case "auto":
		return kind.Class == routing.ClassGeneric
	}
	return false
}

// tableFloorBytes is the minimum resident footprint of the table
// CompileRouteTable would build for this point — the campaign uses it to
// skip eager compilation that a point memory budget would reject anyway.
func tableFloorBytes(net *Network, kind Kind, algorithm string) int64 {
	if compactSelected(net, kind, algorithm) {
		return int64(net.Nr) * int64(net.Nr) // compact: one next-hop byte per pair
	}
	return int64(net.Nr) * int64(net.Nr) * 12
}

// CompileRouteTable builds the immutable compiled route table for a static
// routing algorithm on an already built network. The result is safe to
// share across concurrent runs via WithRouteTable. Adaptive algorithms
// (RoutingEntry.Adaptive) have no compiled form and are rejected.
//
// When the dense table would exceed compactTableThreshold (exact interned
// size, see compactSelected), algorithms whose routes are deterministic
// minimal next-hop routes (see compactEligible) compile to the compact
// next-hop-only form — byte-identical routes at one byte per (src,dst)
// pair — instead of the dense interned table; routing.CompileCompact is the
// direct way to force that form at any size.
func CompileRouteTable(net *Network, kind Kind, algorithm string, vcs int) (*RouteTable, error) {
	re, ok := routings.lookup(algorithm)
	if !ok {
		return nil, fmt.Errorf("slimnoc: unknown routing algorithm %q (have %s)",
			algorithm, strings.Join(Routings(), ", "))
	}
	if re.Adaptive {
		return nil, fmt.Errorf("slimnoc: adaptive algorithm %q routes per packet and cannot be compiled", algorithm)
	}
	if compactSelected(net, kind, algorithm) {
		return routing.CompileCompact(net, vcs)
	}
	pb, _, err := re.New(net, kind, vcs)
	if err != nil {
		return nil, err
	}
	tab, err := routing.Compile(net.Nr, pb)
	if err != nil {
		return nil, err
	}
	// Bake the per-hop output ports in while the table is still private:
	// engines sharing the frozen table then skip the per-packet adjacency
	// searches entirely (sim.New cannot do this itself on a shared table).
	if err := tab.CompilePorts(net.Adj); err != nil {
		return nil, err
	}
	return tab, nil
}

// Run builds a Runner for the spec and executes it.
func Run(ctx context.Context, spec RunSpec, opts ...Option) (*Result, error) {
	return NewRunner(spec, opts...).Run(ctx)
}

func networkInfo(net *topo.Network) NetworkInfo {
	return NetworkInfo{
		Name:          net.Name,
		Routers:       net.Nr,
		Nodes:         net.N(),
		NetworkRadix:  net.NetworkRadix(),
		RouterRadix:   net.RouterRadix(),
		Diameter:      net.Diameter(),
		CycleTimeNs:   net.CycleTimeNs,
		AvgWireLength: net.AvgWireLength(),
	}
}

func metricsOf(r sim.Result, cycleNs float64) Metrics {
	return Metrics{
		AvgLatencyCycles:  r.AvgLatency,
		AvgLatencyNs:      r.AvgLatency * cycleNs,
		P99LatencyCycles:  r.P99Latency,
		Throughput:        r.Throughput,
		OfferedLoad:       r.OfferedLoad,
		AvgHops:           r.AvgHops,
		Delivered:         r.Delivered,
		Generated:         r.Generated,
		Cycles:            r.Cycles,
		Saturated:         r.Saturated,
		DeadlockSuspected: r.DeadlockSuspected,
	}
}
