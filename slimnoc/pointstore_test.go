package slimnoc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/slimnoc/store"
)

// TestPointKeyNormalizes pins the content-address equivalences: defaulted
// fields spelled out or omitted, registry-name casing, and the Name label
// must not change a point's key, while any execution-relevant field must.
func TestPointKeyNormalizes(t *testing.T) {
	terse := RunSpec{
		Network: NetworkSpec{Preset: "T2D54"},
		Traffic: TrafficSpec{Rate: 0.05},
		Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 600, Seed: 7},
	}
	spelled := terse
	spelled.Name = "some-label"
	spelled.Network.Preset = "t2d54"
	spelled.Routing = RoutingSpec{Algorithm: "AUTO", VCs: 2}
	spelled.Buffering = BufferingSpec{Scheme: "EB"}
	spelled.Traffic.Pattern = "RND"
	spelled.Traffic.PacketFlits = 6

	k1, err := PointKey(terse)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := PointKey(spelled)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equivalent specs hash differently: %s vs %s", k1, k2)
	}

	changed := terse
	changed.Sim.Seed = 8
	k3, err := PointKey(changed)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("changing the seed did not change the key")
	}

	// A preset and its explicit parameters name the same network: the key
	// hashes the expanded form (like the campaign's network cache does).
	preset := RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
		Sim:     SimSpec{Seed: 7},
	}
	explicit := preset
	expanded, err := ExpandNetwork(preset.Network)
	if err != nil {
		t.Fatal(err)
	}
	explicit.Network = expanded
	kp, err := PointKey(preset)
	if err != nil {
		t.Fatal(err)
	}
	ke, err := PointKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if kp != ke {
		t.Errorf("preset and explicit equivalents hash differently: %s vs %s", kp, ke)
	}

	// An unresolvable network cannot be content-addressed.
	bad := terse
	bad.Network = NetworkSpec{Preset: "no_such_net"}
	if _, err := PointKey(bad); err == nil {
		t.Error("PointKey accepted an unresolvable preset")
	}
}

// TestCampaignStoreBypassedByPointOptions pins the WithStore/WithPointOptions
// exclusion: per-point options change what a run computes without changing
// its spec, so a campaign carrying them must neither serve nor persist
// store entries.
func TestCampaignStoreBypassedByPointOptions(t *testing.T) {
	points, err := testSweep().Points()
	if err != nil {
		t.Fatal(err)
	}
	points = points[:2]
	st, err := store.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Seed the store with the plain-spec results.
	if _, err := RunCampaign(t.Context(), points, WithJobs(1), WithStore(st)); err != nil {
		t.Fatal(err)
	}
	before := st.Len()

	results, err := RunCampaign(t.Context(), points,
		WithJobs(1),
		WithStore(st),
		WithPointOptions(func(int, RunSpec) []Option { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range results {
		if p.Err != nil {
			t.Fatalf("point %d: %v", i, p.Err)
		}
		if p.Cached {
			t.Errorf("point %d served from the store despite point options", i)
		}
	}
	if st.Len() != before {
		t.Errorf("point-option campaign grew the store from %d to %d", before, st.Len())
	}
}

// pointKeyGoldenCase is one pinned (spec, canonical bytes, key) triple.
type pointKeyGoldenCase struct {
	Name      string          `json:"name"`
	Spec      json.RawMessage `json:"spec"`
	Canonical string          `json:"canonical"`
	Key       store.Key       `json:"key"`
}

// goldenSpecs are the fixture inputs; regenerate testdata/pointkey_golden.json
// with UPDATE_POINTKEY_GOLDEN=1 after an INTENTIONAL spec-schema or engine
// version change.
func goldenSpecs() []struct {
	name string
	spec RunSpec
} {
	return []struct {
		name string
		spec RunSpec
	}{
		{"default", DefaultSpec()},
		{"fig12-point", RunSpec{
			Network:   NetworkSpec{Preset: "sn_subgr_200"},
			Traffic:   TrafficSpec{Pattern: "adv1", Rate: 0.24},
			SMART:     true,
			Sim:       SimSpec{WarmupCycles: 5000, MeasureCycles: 20000, DrainCycles: 30000, Seed: 42},
			Buffering: BufferingSpec{Scheme: "cbr", CBCap: 40},
		}},
		{"explicit-topology", RunSpec{
			Network: NetworkSpec{Topology: "torus", X: 14, Y: 7, Conc: 6},
			Routing: RoutingSpec{Algorithm: "minimal", VCs: 4},
			Traffic: TrafficSpec{Pattern: "shf", Rate: 0.06},
			Sim:     SimSpec{Seed: 1},
		}},
		{"trace-point", RunSpec{
			Network: NetworkSpec{Preset: "fbf3"},
			Traffic: TrafficSpec{Pattern: "trace", Trace: "fft"},
			SMART:   true,
			Sim:     SimSpec{WarmupCycles: 1000, MeasureCycles: 3000, DrainCycles: 4000, Seed: 9},
		}},
	}
}

// pointCanonical reproduces PointKey's hash input — the normalized,
// label-free, network-expanded spec — as canonical bytes for the fixture.
func pointCanonical(spec RunSpec) ([]byte, error) {
	n := spec.Normalized()
	n.Name = ""
	expanded, err := ExpandNetwork(n.Network)
	if err != nil {
		return nil, err
	}
	n.Network = expanded
	return store.Canonical(n)
}

// TestPointKeyGolden pins the canonical-JSON bytes and hashes of
// representative specs. It fails when a RunSpec schema change (renamed or
// added field, changed JSON tag) or an engine-version bump silently changes
// point keys — either invalidating every existing store or, worse, aliasing
// old results onto new semantics. If the change is intentional, regenerate
// the fixture (UPDATE_POINTKEY_GOLDEN=1 go test ./slimnoc -run
// TestPointKeyGolden) and say so in the commit.
func TestPointKeyGolden(t *testing.T) {
	path := filepath.Join("testdata", "pointkey_golden.json")
	if os.Getenv("UPDATE_POINTKEY_GOLDEN") != "" {
		var cases []pointKeyGoldenCase
		for _, g := range goldenSpecs() {
			canon, err := pointCanonical(g.spec)
			if err != nil {
				t.Fatal(err)
			}
			key, err := PointKey(g.spec)
			if err != nil {
				t.Fatal(err)
			}
			specJSON, err := json.Marshal(g.spec)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, pointKeyGoldenCase{
				Name: g.name, Spec: specJSON, Canonical: string(canon), Key: key,
			})
		}
		data, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cases []pointKeyGoldenCase
	if err := json.Unmarshal(data, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) != len(goldenSpecs()) {
		t.Fatalf("fixture has %d cases, test defines %d — regenerate it", len(cases), len(goldenSpecs()))
	}
	for i, g := range goldenSpecs() {
		c := cases[i]
		if c.Name != g.name {
			t.Fatalf("fixture case %d is %q, want %q — regenerate it", i, c.Name, g.name)
		}
		canon, err := pointCanonical(g.spec)
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != c.Canonical {
			t.Errorf("%s: canonical bytes changed\n got: %s\nwant: %s\n(spec schema drift — stored results would be orphaned)",
				g.name, canon, c.Canonical)
		}
		key, err := PointKey(g.spec)
		if err != nil {
			t.Fatal(err)
		}
		if key != c.Key {
			t.Errorf("%s: key changed: got %s, want %s", g.name, key, c.Key)
		}
	}
}

// marshalResults serializes a result set the way identity comparisons see
// it: specs, results, metrics and engine telemetry, errors as text.
func marshalResults(t *testing.T, rs []PointResult) []byte {
	t.Helper()
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCampaignStoreResumeIdentity is the tentpole contract: interrupt a
// campaign mid-sweep, rerun it against the same store, and the final result
// set is byte-identical to an uninterrupted cold run — with only the
// missing points simulated. A third, fully warm run simulates nothing and
// still matches.
func TestCampaignStoreResumeIdentity(t *testing.T) {
	sweep := testSweep()
	points, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}

	// Cold reference: no store involved.
	cold, err := RunCampaign(t.Context(), points, WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	coldBytes := marshalResults(t, cold)

	// Interrupted run: cancel after the first completion; some points land
	// in the store, the rest never start or abort mid-run (and are not
	// stored).
	storePath := filepath.Join(t.TempDir(), "results", "store.jsonl")
	st, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	partial, err := RunCampaign(ctx, points,
		WithJobs(2),
		WithStore(st),
		WithOnPoint(func(PointResult) { once.Do(cancel) }))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign returned %v, want context.Canceled", err)
	}
	stored := 0
	for _, p := range partial {
		if p.Err == nil {
			stored++
		}
	}
	if stored == 0 || stored == len(points) {
		t.Fatalf("interruption stored %d of %d points; the test needs a partial store", stored, len(points))
	}
	if st.Len() != stored {
		t.Errorf("store holds %d results, %d points completed", st.Len(), stored)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume in a "new process": reopen the store and rerun the same sweep.
	st2, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunCampaign(t.Context(), points, WithJobs(2), WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	cached, fresh := 0, 0
	for i, p := range resumed {
		if p.Err != nil {
			t.Fatalf("resumed point %d: %v", i, p.Err)
		}
		if p.Cached {
			cached++
		} else {
			fresh++
		}
	}
	if cached != stored {
		t.Errorf("resume served %d cached points, want %d (everything the interrupted run completed)", cached, stored)
	}
	if fresh != len(points)-stored {
		t.Errorf("resume simulated %d points, want exactly the %d missing ones", fresh, len(points)-stored)
	}
	if got := marshalResults(t, resumed); !bytes.Equal(got, coldBytes) {
		t.Error("resumed result set is not byte-identical to the cold run")
	}
	st2.Close()

	// Warm run: everything cached, still byte-identical, store unchanged.
	st3, err := store.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	before := st3.Len()
	warm, err := RunCampaign(t.Context(), points, WithJobs(2), WithStore(st3))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range warm {
		if p.Err != nil || !p.Cached {
			t.Fatalf("warm point %d: cached=%v err=%v", i, p.Cached, p.Err)
		}
	}
	if got := marshalResults(t, warm); !bytes.Equal(got, coldBytes) {
		t.Error("warm result set is not byte-identical to the cold run")
	}
	if st3.Len() != before {
		t.Errorf("warm run grew the store from %d to %d records", before, st3.Len())
	}
}

// TestCampaignStoreCrossSweepReuse checks content addressing ignores sweep
// labels: a second sweep containing the same physical points under a
// different name is served entirely from the first sweep's store.
func TestCampaignStoreCrossSweepReuse(t *testing.T) {
	first := testSweep()
	second := testSweep()
	second.Name = "renamed-grid"

	p1, err := first.Points()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := second.Points()
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := RunCampaign(t.Context(), p1, WithJobs(2), WithStore(st)); err != nil {
		t.Fatal(err)
	}
	results, err := RunCampaign(t.Context(), p2, WithJobs(2), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range results {
		if p.Err != nil {
			t.Fatalf("point %d: %v", i, p.Err)
		}
		if !p.Cached {
			t.Errorf("point %d (%s) re-simulated despite an identical stored point", i, p.Spec.Name)
		}
		if p.Spec.Name != p2[i].Name {
			t.Errorf("point %d label %q, want the requesting sweep's %q", i, p.Spec.Name, p2[i].Name)
		}
		if p.Result.Spec.Name != p2[i].Name {
			t.Errorf("point %d result label %q, want %q", i, p.Result.Spec.Name, p2[i].Name)
		}
	}
}
