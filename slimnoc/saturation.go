package slimnoc

import (
	"context"
	"fmt"
	"math"
)

// SaturationSpec declares a saturation-load search: a binary search over the
// offered-load grid MinLoad + i*Step for the highest load the configuration
// sustains before its mean latency crosses a threshold (or the run itself
// reports saturation). Probes are ordinary campaign points — they flow
// through the campaign's sinks, network/route-table caches and, when a
// result store is attached (WithStore), its content-addressed cache, so a
// rerun of the same search simulates nothing and a brute-force grid sweep
// over the same loads shares the search's probe results point for point.
// Like RunSpec and SweepSpec it is JSON-round-trippable.
type SaturationSpec struct {
	// Name labels the search; probe names derive from it.
	Name string `json:"name,omitempty"`
	// Base is the configuration under test; its traffic.rate is replaced by
	// each probe's load and its seed is shared by every probe (so the load
	// axis is the only thing that varies). Closed-loop (reqreply) and trace
	// workloads have no offered-load knob and are rejected.
	Base RunSpec `json:"base"`
	// MinLoad and MaxLoad bracket the search in flits/node/cycle
	// (defaults 0.01 and 0.6).
	MinLoad float64 `json:"min_load,omitempty"`
	MaxLoad float64 `json:"max_load,omitempty"`
	// Step is the load-grid resolution: the found load is within one Step
	// of the true crossing (default 0.01).
	Step float64 `json:"step,omitempty"`
	// LatencyFactor declares saturation when a probe's mean latency exceeds
	// LatencyFactor times the MinLoad probe's mean latency (default 3).
	// Ignored when LatencyThreshold is set.
	LatencyFactor float64 `json:"latency_factor,omitempty"`
	// LatencyThreshold is an absolute mean-latency cutoff in cycles; when
	// positive it replaces the LatencyFactor-derived threshold. The MinLoad
	// probe still runs either way — it anchors the bracket (AtMin
	// detection) and reports BaseLatency.
	LatencyThreshold float64 `json:"latency_threshold,omitempty"`
}

// Normalized returns a copy with every defaultable field filled in and the
// base spec normalized.
func (s SaturationSpec) Normalized() SaturationSpec {
	s.Base = s.Base.Normalized()
	if s.MinLoad == 0 {
		s.MinLoad = 0.01
	}
	if s.MaxLoad == 0 {
		s.MaxLoad = 0.6
	}
	if s.Step == 0 {
		s.Step = 0.01
	}
	if s.LatencyFactor == 0 {
		s.LatencyFactor = 3
	}
	return s
}

// Validate reports the first structural problem with the search spec.
func (s SaturationSpec) Validate() error {
	s = s.Normalized()
	if s.MinLoad <= 0 || s.MaxLoad <= s.MinLoad {
		return fmt.Errorf("slimnoc: saturation search needs 0 < min_load < max_load (have %g, %g)",
			s.MinLoad, s.MaxLoad)
	}
	if s.Step <= 0 || s.Step > s.MaxLoad-s.MinLoad {
		return fmt.Errorf("slimnoc: saturation step %g out of (0, %g]", s.Step, s.MaxLoad-s.MinLoad)
	}
	if s.LatencyFactor <= 1 && s.LatencyThreshold <= 0 {
		return fmt.Errorf("slimnoc: saturation latency_factor %g must exceed 1 (or set latency_threshold)",
			s.LatencyFactor)
	}
	if s.Base.Traffic.Process == "reqreply" {
		return fmt.Errorf("slimnoc: saturation search needs an open-loop workload; process reqreply self-throttles and has no load knob")
	}
	if s.Base.Traffic.Pattern == "trace" {
		return fmt.Errorf("slimnoc: saturation search needs a rate-driven workload, not a trace")
	}
	probe := s.Base
	probe.Traffic.Rate = s.MinLoad
	return probe.Validate()
}

// Grid returns the search's load grid, MinLoad + i*Step up to MaxLoad
// inclusive. Probes are drawn from exactly these float64 values (same
// arithmetic, same bits), so a SweepSpec with this slice as its Loads axis
// hits the same store keys as the search.
func (s SaturationSpec) Grid() []float64 {
	s = s.Normalized()
	loads := make([]float64, s.gridSteps()+1)
	for i := range loads {
		loads[i] = s.load(i)
	}
	return loads
}

// gridSteps returns the index of the last grid point (>= 1 after Validate).
func (s SaturationSpec) gridSteps() int {
	return int(math.Floor((s.MaxLoad-s.MinLoad)/s.Step + 1e-9))
}

// load returns grid point i.
func (s SaturationSpec) load(i int) float64 {
	return s.MinLoad + float64(i)*s.Step
}

// Saturates reports whether a probe's metrics cross the resolved threshold:
// the run reported saturation itself (undelivered tracked packets), or its
// mean latency exceeds threshold cycles. Exported so grid scans can apply
// the identical predicate the search uses.
func Saturates(m Metrics, threshold float64) bool {
	return m.Saturated || m.AvgLatencyCycles > threshold
}

// SaturationResult is the outcome of one search.
type SaturationResult struct {
	// Spec is the normalized search that produced the result.
	Spec SaturationSpec `json:"spec"`
	// SaturationLoad is the highest probed load below the saturation
	// threshold — within one Step of the true crossing.
	SaturationLoad float64 `json:"saturation_load"`
	// Threshold is the resolved mean-latency cutoff in cycles (the explicit
	// LatencyThreshold, or LatencyFactor times the baseline latency).
	Threshold float64 `json:"threshold"`
	// BaseLatency is the MinLoad probe's mean latency in cycles.
	BaseLatency float64 `json:"base_latency"`
	// AtMin marks a configuration already saturated at MinLoad
	// (SaturationLoad is then an upper bound, not a crossing).
	AtMin bool `json:"at_min,omitempty"`
	// AtMax marks a configuration that never saturated up to MaxLoad
	// (SaturationLoad is then a lower bound).
	AtMax bool `json:"at_max,omitempty"`
	// Probes are the executed probe points in execution order; Index is the
	// probe sequence number. Shared store hits carry Cached like any other
	// campaign point.
	Probes []PointResult `json:"probes,omitempty"`
}

// SaturationSearch runs the binary search on this campaign: the MinLoad
// probe establishes the latency threshold (unless an absolute one is set),
// the MaxLoad probe checks the bracket, and bisection on the load grid then
// narrows the crossing to one Step. Every probe reuses the campaign's
// caches, sinks and attached result store exactly like Run's points, which
// makes searches resumable: rerunning an interrupted or completed search
// serves its probes from the store. The search sequence is deterministic
// (same spec => same probes in the same order), pinned by
// TestSaturationSearch. A probe failure or context cancellation aborts the
// search and returns the partial result alongside the error.
func (c *Campaign) SaturationSearch(ctx context.Context, spec SaturationSpec) (SaturationResult, error) {
	spec = spec.Normalized()
	res := SaturationResult{Spec: spec}
	if err := spec.Validate(); err != nil {
		return res, err
	}
	c.ensureCache()

	probe := func(i int) (Metrics, error) {
		load := spec.load(i)
		p := spec.Base
		p.Traffic.Rate = load
		prefix := spec.Name
		if prefix == "" {
			prefix = spec.Base.Name
		}
		if prefix == "" {
			prefix = "sat"
		}
		p.Name = fmt.Sprintf("%s/load%.3f", prefix, load)
		p = p.Normalized()
		pr := PointResult{Index: len(res.Probes), Spec: p}
		if err := ctx.Err(); err != nil {
			return Metrics{}, err
		}
		pr.Result, pr.Cached, pr.Err = c.execPoint(ctx, pr.Index, p, c.cache)
		if pr.Err != nil {
			pr.Error = pr.Err.Error()
		}
		c.emitPoint(&pr)
		res.Probes = append(res.Probes, pr)
		if pr.Err != nil {
			return Metrics{}, fmt.Errorf("slimnoc: saturation probe at load %g: %w", load, pr.Err)
		}
		return pr.Result.Metrics, nil
	}

	steps := spec.gridSteps()
	base, err := probe(0)
	if err != nil {
		return res, err
	}
	res.BaseLatency = base.AvgLatencyCycles
	res.Threshold = spec.LatencyThreshold
	if res.Threshold <= 0 {
		res.Threshold = spec.LatencyFactor * math.Max(base.AvgLatencyCycles, 1)
	}
	if Saturates(base, res.Threshold) {
		res.AtMin = true
		res.SaturationLoad = spec.load(0)
		return res, nil
	}
	top, err := probe(steps)
	if err != nil {
		return res, err
	}
	if !Saturates(top, res.Threshold) {
		res.AtMax = true
		res.SaturationLoad = spec.load(steps)
		return res, nil
	}
	lo, hi := 0, steps // invariant: lo unsaturated, hi saturated
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		m, err := probe(mid)
		if err != nil {
			return res, err
		}
		if Saturates(m, res.Threshold) {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.SaturationLoad = spec.load(lo)
	return res, nil
}
