package slimnoc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// presetTable holds the static Table 4 configurations. Slim NoC presets of
// the form sn_<layout>_<N> are resolved dynamically by ResolvePreset.
var presetTable = struct {
	mu sync.RWMutex
	m  map[string]NetworkSpec
}{m: map[string]NetworkSpec{
	// N in {192, 200}.
	"cm3":   {Topology: "mesh", X: 8, Y: 8, Conc: 3},
	"cm4":   {Topology: "mesh", X: 10, Y: 5, Conc: 4},
	"t2d3":  {Topology: "torus", X: 8, Y: 8, Conc: 3},
	"t2d4":  {Topology: "torus", X: 10, Y: 5, Conc: 4},
	"fbf3":  {Topology: "flatfly", X: 8, Y: 8, Conc: 3},
	"fbf4":  {Topology: "flatfly", X: 10, Y: 5, Conc: 4},
	"pfbf3": {Topology: "pflatfly", PartsX: 2, PartsY: 2, X: 4, Y: 4, Conc: 3},
	"pfbf4": {Topology: "pflatfly", PartsX: 2, PartsY: 1, X: 5, Y: 5, Conc: 4},
	// N = 1296.
	"cm9":   {Topology: "mesh", X: 12, Y: 12, Conc: 9},
	"cm8":   {Topology: "mesh", X: 18, Y: 9, Conc: 8},
	"t2d9":  {Topology: "torus", X: 12, Y: 12, Conc: 9},
	"t2d8":  {Topology: "torus", X: 18, Y: 9, Conc: 8},
	"fbf9":  {Topology: "flatfly", X: 12, Y: 12, Conc: 9},
	"fbf8":  {Topology: "flatfly", X: 18, Y: 9, Conc: 8},
	"pfbf9": {Topology: "pflatfly", PartsX: 2, PartsY: 2, X: 6, Y: 6, Conc: 9},
	"pfbf8": {Topology: "pflatfly", PartsX: 2, PartsY: 1, X: 9, Y: 9, Conc: 8},
	// N = 54 small-scale set (§5.6).
	"t2d54":  {Topology: "torus", X: 6, Y: 3, Conc: 3},
	"fbf54":  {Topology: "flatfly", X: 6, Y: 3, Conc: 3},
	"pfbf54": {Topology: "pflatfly", PartsX: 2, PartsY: 1, X: 3, Y: 3, Conc: 3},
	// Scale-out baselines for the scale-* family: N = 10080 siblings of the
	// dynamic sn_subgr_10000 (q=25, p=8), and N = 100352 siblings of
	// sn_subgr_99856 (q=79) for the hundred-thousand-endpoint regime.
	"cm10k":   {Topology: "mesh", X: 35, Y: 36, Conc: 8},
	"t2d10k":  {Topology: "torus", X: 35, Y: 36, Conc: 8},
	"fbf10k":  {Topology: "flatfly", X: 35, Y: 36, Conc: 8},
	"cm100k":  {Topology: "mesh", X: 112, Y: 112, Conc: 8},
	"t2d100k": {Topology: "torus", X: 112, Y: 112, Conc: 8},
	"fbf100k": {Topology: "flatfly", X: 112, Y: 112, Conc: 8},
}}

// RegisterPreset adds (or replaces) a named network configuration.
func RegisterPreset(name string, ns NetworkSpec) {
	presetTable.mu.Lock()
	defer presetTable.mu.Unlock()
	presetTable.m[strings.ToLower(name)] = ns
}

// Presets lists the static preset names (sorted). Dynamic sn_<layout>_<N>
// names resolve through ResolvePreset but are not enumerated here.
func Presets() []string {
	presetTable.mu.RLock()
	defer presetTable.mu.RUnlock()
	out := make([]string, 0, len(presetTable.m))
	for k := range presetTable.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ResolvePreset expands a preset name (Table 4 shorthand like cm3 or fbf9,
// or the dynamic sn_<layout>_<N> form) into a full NetworkSpec.
func ResolvePreset(name string) (NetworkSpec, error) {
	key := strings.ToLower(name)
	presetTable.mu.RLock()
	ns, ok := presetTable.m[key]
	presetTable.mu.RUnlock()
	if ok {
		return ns, nil
	}
	// Slim NoCs: sn_<layout>_<N>.
	var layoutName string
	var n int
	for _, l := range Layouts() {
		if _, err := fmt.Sscanf(key, "sn_"+l+"_%d", &n); err == nil {
			layoutName = l
			break
		}
	}
	if layoutName == "" {
		return NetworkSpec{}, fmt.Errorf("slimnoc: unknown network preset %q", name)
	}
	return NetworkSpec{Topology: "sn", Nodes: n, Layout: layoutName}, nil
}
