package slimnoc

import (
	"reflect"
	"testing"
)

// testSweep is a small two-network grid used across the sweep tests.
func testSweep() SweepSpec {
	base := RunSpec{
		Traffic: TrafficSpec{Rate: 0.05},
		Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 600, Seed: 7},
	}
	return SweepSpec{
		Name: "grid",
		Base: base,
		Axes: SweepAxes{
			Presets:  []string{"t2d54", "fbf54"},
			Patterns: []string{"rnd", "shf"},
			Loads:    []float64{0.02, 0.05},
		},
	}
}

// TestSweepExpansionOrder pins the documented cartesian nesting: networks
// slowest, then patterns, then loads.
func TestSweepExpansionOrder(t *testing.T) {
	sweep := testSweep()
	if got := sweep.NumPoints(); got != 8 {
		t.Fatalf("NumPoints = %d, want 8", got)
	}
	points, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("expanded %d points, want 8", len(points))
	}
	type key struct {
		preset, pattern string
		load            float64
	}
	want := []key{
		{"t2d54", "rnd", 0.02}, {"t2d54", "rnd", 0.05},
		{"t2d54", "shf", 0.02}, {"t2d54", "shf", 0.05},
		{"fbf54", "rnd", 0.02}, {"fbf54", "rnd", 0.05},
		{"fbf54", "shf", 0.02}, {"fbf54", "shf", 0.05},
	}
	for i, w := range want {
		p := points[i]
		got := key{p.Network.Preset, p.Traffic.Pattern, p.Traffic.Rate}
		if got != w {
			t.Errorf("point %d = %+v, want %+v", i, got, w)
		}
	}
	if points[0].Name != "grid/t2d54/rnd/load0.020" {
		t.Errorf("point 0 name = %q", points[0].Name)
	}
	// Unswept base fields are inherited.
	for i, p := range points {
		if p.Sim.MeasureCycles != 300 {
			t.Errorf("point %d lost base cycles: %+v", i, p.Sim)
		}
	}
}

// TestSweepSeedDerivation checks per-point seeds: derived deterministically
// from (base seed, index), distinct across points, stable across
// re-expansion, and overridden verbatim by an explicit seed axis.
func TestSweepSeedDerivation(t *testing.T) {
	sweep := testSweep()
	points, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]int{}
	for i, p := range points {
		want := DeriveSeed(7, i)
		if p.Sim.Seed != want {
			t.Errorf("point %d seed = %d, want DeriveSeed(7,%d) = %d", i, p.Sim.Seed, i, want)
		}
		if p.Sim.Seed == 0 {
			t.Errorf("point %d got zero seed", i)
		}
		if j, dup := seen[p.Sim.Seed]; dup {
			t.Errorf("points %d and %d share seed %d", j, i, p.Sim.Seed)
		}
		seen[p.Sim.Seed] = i
	}
	again, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(points, again) {
		t.Error("re-expansion produced different points")
	}

	// Explicit seed axis: used verbatim, innermost.
	sweep.Axes.Seeds = []int64{11, 22}
	sweep.Axes.Patterns = nil
	sweep.Axes.Loads = nil
	points, err = sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for i, p := range points {
		if want := []int64{11, 22}[i%2]; p.Sim.Seed != want {
			t.Errorf("point %d seed = %d, want %d", i, p.Sim.Seed, want)
		}
	}
}

// TestSweepJSONRoundTrip checks a sweep file survives save/load with an
// identical expansion, and that unknown fields are rejected.
func TestSweepJSONRoundTrip(t *testing.T) {
	sweep := testSweep()
	path := t.TempDir() + "/sweep.json"
	if err := SaveSweep(path, sweep); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSweep(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Points()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("round-tripped sweep expands differently")
	}
	if _, err := ParseSweep([]byte(`{"axes": {"loadz": [1]}}`)); err == nil {
		t.Error("unknown axis field accepted")
	}
}

// TestSweepValidation checks that a bad axis value surfaces at expansion
// time with the offending point named.
func TestSweepValidation(t *testing.T) {
	sweep := testSweep()
	sweep.Axes.Patterns = []string{"rnd", "nonsense"}
	if err := sweep.Validate(); err == nil {
		t.Error("unknown pattern accepted")
	}
	sweep = testSweep()
	sweep.Axes.Presets = []string{"no_such_preset"}
	if err := sweep.Validate(); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestSweepEmptyAxes checks a sweep with no axes is the base run alone.
func TestSweepEmptyAxes(t *testing.T) {
	sweep := SweepSpec{
		Base: RunSpec{
			Network: NetworkSpec{Preset: "t2d54"},
			Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
			Sim:     SimSpec{Seed: 3},
		},
	}
	points, err := sweep.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("got %d points, want 1", len(points))
	}
	if points[0].Network.Preset != "t2d54" || points[0].Sim.Seed != DeriveSeed(3, 0) {
		t.Errorf("point 0 = %+v", points[0])
	}
}
