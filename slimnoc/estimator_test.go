package slimnoc_test

import (
	"sync"
	"testing"

	"repro/slimnoc"
)

func newTestEstimator(t testing.TB, preset string) *slimnoc.Estimator {
	t.Helper()
	e, err := slimnoc.NewEstimator(slimnoc.RunSpec{
		Network: slimnoc.NetworkSpec{Preset: preset},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimatorSpecCanonicalizes(t *testing.T) {
	a, err := slimnoc.EstimatorSpec(slimnoc.RunSpec{
		Name:    "labelled",
		Network: slimnoc.NetworkSpec{Preset: "t2d9"},
		Traffic: slimnoc.TrafficSpec{Pattern: "adv1", Rate: 0.2},
		Sim:     slimnoc.SimSpec{Seed: 42, WarmupCycles: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := slimnoc.EstimatorSpec(slimnoc.RunSpec{
		Network: slimnoc.NetworkSpec{Preset: "T2D9"},
	})
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if string(aj) != string(bj) {
		t.Fatalf("estimator specs differ for identical engines:\n a %s\n b %s", aj, bj)
	}
	if a.Network.Preset != "" && a.Network.Topology == "" {
		t.Fatalf("network not expanded: %+v", a.Network)
	}
}

func TestEstimatorRejectsAdaptive(t *testing.T) {
	_, err := slimnoc.NewEstimator(slimnoc.RunSpec{
		Network: slimnoc.NetworkSpec{Preset: "t2d9"},
		Routing: slimnoc.RoutingSpec{Algorithm: "ugal-l", VCs: 4},
	})
	if err == nil {
		t.Fatal("adaptive routing accepted")
	}
}

func TestEstimatorEstimateAndPath(t *testing.T) {
	e := newTestEstimator(t, "t2d9")
	res, err := e.Estimate([]slimnoc.Transfer{
		{Src: 0, Dst: e.Nodes() - 1, Flits: 6},
		{Src: 1, Dst: 2, Flits: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.LatencyCycles <= 0 {
			t.Fatalf("transfer %d: latency %d", i, r.LatencyCycles)
		}
		if r.LatencyNs != float64(r.LatencyCycles)*e.CycleTimeNs() {
			t.Fatalf("transfer %d: ns conversion mismatch", i)
		}
	}
	path, err := e.RouterPath(0, e.Nodes()-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(path)-1 != res[0].Hops {
		t.Fatalf("RouterPath hops %d != estimate hops %d", len(path)-1, res[0].Hops)
	}
	if _, err := e.RouterPath(-1, 0); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

// TestEstimatorConcurrentIdentity pins the read-only sharing contract: many
// goroutines estimating on one warm Estimator (same network, same compiled
// table) get exactly the latencies a serial caller gets. Run under -race by
// the CI race job.
func TestEstimatorConcurrentIdentity(t *testing.T) {
	e := newTestEstimator(t, "t2d9")
	n := e.Nodes()
	batches := make([][]slimnoc.Transfer, 16)
	for i := range batches {
		batches[i] = []slimnoc.Transfer{
			{Src: i % n, Dst: (i*37 + 11) % n, Flits: 1 + i%8},
			{Src: (i * 13) % n, Dst: (i * 29) % n, Flits: 6},
		}
	}
	serial := make([][]slimnoc.EstimateResult, len(batches))
	for i, b := range batches {
		r, err := e.Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	concurrent := make([][]slimnoc.EstimateResult, len(batches))
	errs := make([]error, len(batches))
	var wg sync.WaitGroup
	for i, b := range batches {
		wg.Add(1)
		go func(i int, b []slimnoc.Transfer) {
			defer wg.Done()
			concurrent[i], errs[i] = e.Estimate(b)
		}(i, b)
	}
	wg.Wait()
	for i := range batches {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		for j := range serial[i] {
			if serial[i][j] != concurrent[i][j] {
				t.Fatalf("batch %d transfer %d: concurrent %+v != serial %+v",
					i, j, concurrent[i][j], serial[i][j])
			}
		}
	}
}
