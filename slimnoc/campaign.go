package slimnoc

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/routing"
	"repro/slimnoc/store"
)

// PointResult is the outcome of one campaign point. A completed point has
// Result set and Err nil; a failed point has Err set; a point cancelled
// mid-run has both — the partial metrics accumulated up to cancellation
// alongside an error wrapping ctx.Err() (mirroring Runner.Run). Points
// never started before cancellation carry the context error and a nil
// Result. Only Err == nil marks a complete, trustworthy result.
type PointResult struct {
	// Index is the point's position in the submitted spec slice; results
	// stream in completion order and are re-sorted by Index on return.
	Index  int     `json:"index"`
	Spec   RunSpec `json:"spec"`
	Result *Result `json:"result,omitempty"`
	Err    error   `json:"-"`
	// Error mirrors Err as text for serialized sinks.
	Error string `json:"error,omitempty"`
	// Cached marks a point served from an attached result store (WithStore)
	// instead of simulated. It is deliberately excluded from serialization:
	// a resumed campaign's sink output stays byte-identical to a cold run's.
	Cached bool `json:"-"`
}

// Sink consumes point results as they complete. Emit is always called from
// one goroutine at a time (the campaign serializes it), in completion
// order — which under parallelism is not index order; every emitted record
// carries its Index for re-ordering downstream.
type Sink interface {
	Emit(PointResult) error
}

// Collector is an in-memory Sink that returns results sorted by index.
type Collector struct {
	mu     sync.Mutex
	points []PointResult
}

// Emit implements Sink.
func (c *Collector) Emit(p PointResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.points = append(c.points, p)
	return nil
}

// Points returns the collected results sorted by point index.
func (c *Collector) Points() []PointResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]PointResult(nil), c.points...)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// jsonlSink streams one JSON object per completed point.
type jsonlSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a Sink writing one JSON object per line to w: the
// point index, its full spec, and its result or error. Lines appear in
// completion order; sort by "index" to recover submission order.
func NewJSONLSink(w io.Writer) Sink {
	return &jsonlSink{enc: json.NewEncoder(w)}
}

func (s *jsonlSink) Emit(p PointResult) error {
	return s.enc.Encode(p)
}

// csvSink streams one CSV row per completed point.
type csvSink struct {
	w         *csv.Writer
	wroteHead bool
}

// CSVHeader is the column set emitted by NewCSVSink, exported so consumers
// can parse sink output without hard-coding positions.
var CSVHeader = []string{
	"index", "name", "network", "pattern", "process", "burst_len", "duty",
	"mod_factor", "mod_period", "hotspot_frac", "hotspot_count", "size_mix",
	"window", "rate", "vcs", "scheme", "smart",
	"seed", "avg_latency_cycles", "avg_latency_ns", "p99_latency_cycles",
	"throughput", "offered_load", "avg_hops", "delivered", "generated",
	"cycles", "saturated", "error",
}

// NewCSVSink returns a Sink writing one CSV row per completed point, with a
// header row first. Rows appear in completion order; the index column
// recovers submission order.
func NewCSVSink(w io.Writer) Sink {
	return &csvSink{w: csv.NewWriter(w)}
}

func (s *csvSink) Emit(p PointResult) error {
	if !s.wroteHead {
		if err := s.w.Write(CSVHeader); err != nil {
			return err
		}
		s.wroteHead = true
	}
	netName := p.Spec.Network.Preset
	var m Metrics
	if p.Result != nil {
		netName = p.Result.Network.Name
		m = p.Result.Metrics
	}
	// Resolved, not raw: a defaulted burst point reports the burst_len the
	// run actually used (8), never a physically impossible zero.
	tr := ResolveTraffic(p.Spec.Traffic)
	row := []string{
		strconv.Itoa(p.Index), p.Spec.Name, netName,
		tr.Pattern, DisplayProcess(tr), formatFloat(tr.BurstLen), formatFloat(tr.Duty),
		formatFloat(tr.ModFactor), formatFloat(tr.ModPeriod),
		formatFloat(tr.HotspotFraction), strconv.Itoa(tr.HotspotCount),
		tr.SizeMix, strconv.Itoa(tr.Window),
		formatFloat(tr.Rate),
		strconv.Itoa(p.Spec.Routing.VCs), p.Spec.Buffering.Scheme,
		strconv.FormatBool(p.Spec.SMART), strconv.FormatInt(p.Spec.Sim.Seed, 10),
		formatFloat(m.AvgLatencyCycles), formatFloat(m.AvgLatencyNs),
		formatFloat(m.P99LatencyCycles), formatFloat(m.Throughput),
		formatFloat(m.OfferedLoad), formatFloat(m.AvgHops),
		strconv.FormatInt(m.Delivered, 10), strconv.FormatInt(m.Generated, 10),
		strconv.FormatInt(m.Cycles, 10), strconv.FormatBool(m.Saturated),
		p.Error,
	}
	if err := s.w.Write(row); err != nil {
		return err
	}
	s.w.Flush()
	return s.w.Error()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Campaign executes batches of RunSpecs on a worker pool, building each
// distinct network once and sharing it read-only across workers. A Campaign
// is reusable and safe for sequential reuse — the network and route-table
// caches live for the Campaign's lifetime, so a figure run as several
// sequential sweeps builds each distinct network once, not once per sweep.
// One Run call executes at a time per Campaign value.
type Campaign struct {
	jobs       int
	engineJobs int
	memBudget  int64
	sinks      []Sink
	onPoint    func(PointResult)
	pointOpts  func(i int, spec RunSpec) []Option
	store      *store.Store
	cache      *netCache
}

// CampaignOption configures a Campaign.
type CampaignOption func(*Campaign)

// WithJobs sets the worker count: 1 executes serially, 0 (the default) uses
// runtime.NumCPU(). Per-point metrics are independent of the job count —
// every point's seed is fixed at expansion time — so parallelism changes
// wall-clock only, never results.
func WithJobs(n int) CampaignOption {
	return func(c *Campaign) { c.jobs = n }
}

// WithPointEngineJobs steps every point's engine across n parallel spatial
// domains (the campaign form of the Runner's WithEngineJobs; n < 0 selects
// runtime.NumCPU()). Orthogonal to WithJobs: that parallelises across
// points, this parallelises inside each one — a few huge points want engine
// jobs, many small points want campaign jobs. Engine results are
// byte-identical at every value, so unlike WithPointOptions this does NOT
// bypass an attached result store: a cached point and a re-simulated one
// agree exactly.
func WithPointEngineJobs(n int) CampaignOption {
	return func(c *Campaign) {
		if n < 0 {
			n = runtime.NumCPU()
		}
		c.engineJobs = n
	}
}

// WithPointMemBudget caps every point's estimated engine footprint at bytes
// (the campaign form of the Runner's WithMemBudget; 0 = no cap). Oversized
// points fail fast with a sizing error in their PointResult instead of
// allocating — including the campaign's shared route-table compile, which is
// skipped when the table alone would bust the budget. The budget never
// alters the results of runs that fit, so like WithPointEngineJobs it does
// not bypass an attached result store.
func WithPointMemBudget(bytes int64) CampaignOption {
	return func(c *Campaign) { c.memBudget = bytes }
}

// WithSink attaches a result sink; repeatable. Sinks receive every executed
// point in completion order, serialized by the campaign.
func WithSink(s Sink) CampaignOption {
	return func(c *Campaign) { c.sinks = append(c.sinks, s) }
}

// WithOnPoint streams each completed point to fn (progress bars, live
// tables). Like sinks, fn is serialized and sees completion order.
func WithOnPoint(fn func(PointResult)) CampaignOption {
	return func(c *Campaign) { c.onPoint = fn }
}

// WithPointOptions supplies per-point Runner options that the declarative
// spec cannot express (prebuilt networks, custom sources, adaptive
// policies). The returned options are applied after the campaign's own
// network-cache option, so a WithNetwork here overrides the cache. Options
// must not share mutable state across points: fn is called concurrently
// from worker goroutines. Because options change what a point computes
// without changing its spec, a campaign with point options bypasses any
// attached result store (see WithStore).
func WithPointOptions(fn func(i int, spec RunSpec) []Option) CampaignOption {
	return func(c *Campaign) { c.pointOpts = fn }
}

// NewCampaign builds a campaign engine.
func NewCampaign(opts ...CampaignOption) *Campaign {
	c := &Campaign{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// netCacheEntry memoizes one network build.
type netCacheEntry struct {
	once sync.Once
	net  *Network
	kind routing.Kind
	err  error
}

// tableCacheEntry memoizes one compiled route table.
type tableCacheEntry struct {
	once sync.Once
	tab  *routing.RouteTable
	err  error
}

// netCache builds each distinct (expanded) NetworkSpec once per Campaign —
// a multi-sweep reproduction reuses one build across sequential Run calls —
// and shares the resulting Network read-only across workers: sim.New and
// Runner.Run never mutate a supplied network (see WithNetwork). It likewise
// compiles each distinct (network, static routing algorithm, VCs)
// combination into one immutable routing.RouteTable shared by every point
// using it (see WithRouteTable).
type netCache struct {
	mu      sync.Mutex
	entries map[string]*netCacheEntry
	tables  map[string]*tableCacheEntry
}

// get returns the shared network for ns, building it at most once.
func (nc *netCache) get(ns NetworkSpec) (*Network, routing.Kind, error) {
	key, err := networkKey(ns)
	if err != nil {
		return nil, routing.Kind{}, err
	}
	nc.mu.Lock()
	e, ok := nc.entries[key]
	if !ok {
		e = &netCacheEntry{}
		nc.entries[key] = e
	}
	nc.mu.Unlock()
	e.once.Do(func() {
		e.net, e.kind, e.err = BuildNetwork(ns)
	})
	return e.net, e.kind, e.err
}

// table returns the shared compiled route table for a static routing
// algorithm on the spec's network, compiling it at most once per
// (network, algorithm, VCs) combination.
func (nc *netCache) table(ns NetworkSpec, algorithm string, vcs int) (*routing.RouteTable, error) {
	net, kind, err := nc.get(ns)
	if err != nil {
		return nil, err
	}
	key, err := networkKey(ns)
	if err != nil {
		return nil, err
	}
	tkey := fmt.Sprintf("%s\x00%s\x00%d", key, strings.ToLower(algorithm), vcs)
	nc.mu.Lock()
	e, ok := nc.tables[tkey]
	if !ok {
		e = &tableCacheEntry{}
		nc.tables[tkey] = e
	}
	nc.mu.Unlock()
	e.once.Do(func() {
		e.tab, e.err = CompileRouteTable(net, kind, algorithm, vcs)
	})
	return e.tab, e.err
}

// networkKey canonicalizes a NetworkSpec: presets expand first so a preset
// and its explicit equivalent share one cache entry.
func networkKey(ns NetworkSpec) (string, error) {
	expanded, err := ExpandNetwork(ns)
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(expanded)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// Run executes the points and returns one PointResult per input spec,
// sorted by index. Individual point failures do not abort the batch; they
// surface in their PointResult.Err. Cancelling the context stops dispatch,
// cancels in-flight runs at their next poll point, and returns the partial
// result set: executed points keep their results, never-started points
// carry ctx's error. The returned error is ctx's error on cancellation and
// nil otherwise.
func (c *Campaign) Run(ctx context.Context, points []RunSpec) ([]PointResult, error) {
	results := make([]PointResult, len(points))
	for i, spec := range points {
		results[i] = PointResult{Index: i, Spec: spec.Normalized()}
	}
	jobs := c.jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if jobs > len(points) {
		jobs = len(points)
	}
	if jobs < 1 {
		jobs = 1
	}

	c.ensureCache()
	cache := c.cache
	idxCh := make(chan int)
	var emitMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				p := &results[i]
				p.Result, p.Cached, p.Err = c.execPoint(ctx, i, p.Spec, cache)
				if p.Err != nil {
					p.Error = p.Err.Error()
				}
				emitMu.Lock()
				c.emitPoint(p)
				emitMu.Unlock()
			}
		}()
	}

dispatch:
	for i := range points {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idxCh)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Result == nil && results[i].Err == nil {
				results[i].Err = err
				results[i].Error = err.Error()
			}
		}
		return results, err
	}
	return results, nil
}

// ensureCache lazily creates the network/route-table cache so a zero-value
// Campaign works like one from NewCampaign. Run (and SaturationSearch) are
// single-threaded per Campaign value.
func (c *Campaign) ensureCache() {
	if c.cache == nil {
		c.cache = &netCache{
			entries: make(map[string]*netCacheEntry),
			tables:  make(map[string]*tableCacheEntry),
		}
	}
}

// emitPoint reports one completed point to the sinks and the OnPoint hook.
// Callers serialize: Run's workers hold the emit mutex, SaturationSearch is
// single-goroutine. A sink failure marks an otherwise successful point.
func (c *Campaign) emitPoint(p *PointResult) {
	for _, s := range c.sinks {
		if err := s.Emit(*p); err != nil && p.Err == nil {
			p.Err = fmt.Errorf("slimnoc: sink: %w", err)
			p.Error = p.Err.Error()
		}
	}
	if c.onPoint != nil {
		c.onPoint(*p)
	}
}

// runPoint executes one spec with the shared-network cache plus any
// per-point options.
func (c *Campaign) runPoint(ctx context.Context, i int, spec RunSpec, cache *netCache) (*Result, error) {
	net, kind, err := cache.get(spec.Network)
	opts := make([]Option, 0, 4)
	var cachedTab *routing.RouteTable
	if err == nil {
		opts = append(opts, WithNetwork(net, kind))
		// Static routing compiles once per (network, algorithm, VCs) and is
		// shared read-only by every point using it. Compile errors are left
		// for Runner.Run to rediscover and report; adaptive algorithms
		// route per packet and have no compiled form.
		// The eager compile happens before sim.New's budget check runs, so
		// when the table alone would bust a point budget, skip it here and
		// let sim.New report the sizing error without the allocation. The
		// floor accounts for compact auto-selection: a 100k-endpoint minimal
		// table is one byte per pair, not twelve, and fits budgets its dense
		// form never could.
		if re, ok := routings.lookup(spec.Routing.Algorithm); ok && !re.Adaptive &&
			!(c.memBudget > 0 && tableFloorBytes(net, kind, spec.Routing.Algorithm) > c.memBudget) {
			if tab, terr := cache.table(spec.Network, spec.Routing.Algorithm, spec.Routing.VCs); terr == nil {
				cachedTab = tab
				opts = append(opts, WithRouteTable(tab))
			}
		}
	}
	if c.engineJobs > 1 {
		opts = append(opts, WithEngineJobs(c.engineJobs))
	}
	if c.memBudget > 0 {
		opts = append(opts, WithMemBudget(c.memBudget))
	}
	// A network the cache cannot build may still come from the point
	// options (WithNetwork); defer the error until after they apply.
	if c.pointOpts != nil {
		opts = append(opts, c.pointOpts(i, spec)...)
	}
	r := NewRunner(spec, opts...)
	if !r.haveNet && err != nil {
		return nil, err
	}
	// Point options may have replaced the network; the cache's table was
	// compiled for the cached network and must not ride along onto a
	// different one.
	if r.table == cachedTab && cachedTab != nil && r.net != net {
		r.table = nil
	}
	return r.Run(ctx)
}

// RunSweep expands the sweep and executes its points.
func (c *Campaign) RunSweep(ctx context.Context, sweep SweepSpec) ([]PointResult, error) {
	points, err := sweep.Points()
	if err != nil {
		return nil, err
	}
	return c.Run(ctx, points)
}

// RunCampaign is the package-level convenience: execute the specs on a
// fresh campaign with the given options.
func RunCampaign(ctx context.Context, points []RunSpec, opts ...CampaignOption) ([]PointResult, error) {
	return NewCampaign(opts...).Run(ctx, points)
}
