package slimnoc

import (
	"flag"
	"fmt"
	"strings"
)

// SpecFlags is the shared command-line front end to RunSpec: every binary
// binds the flag groups it needs onto its FlagSet and resolves them into a
// spec with Spec. A `-spec run.json` file provides the base configuration;
// explicitly set flags override individual fields of it.
type SpecFlags struct {
	SpecPath string
	SaveSpec string
	Seed     int64
	Full     bool

	// Network flags.
	Net        string
	Q          int
	Conc       int
	Layout     string
	LayoutSeed int64
	SMART      bool

	// Run flags.
	Pattern  string
	Trace    string
	Rate     float64
	VCs      int
	Scheme   string
	EdgeCap  int
	CBCap    int
	H        int
	Adaptive string
	Cycles   int64

	// Workload-axis flags (temporal process, hotspot overlay, size mix,
	// request-reply window).
	Process  string
	BurstLen float64
	Duty     float64
	ModFact  float64
	ModPer   float64
	HotFrac  float64
	HotCount int
	SizeMix  string
	Window   int

	bound map[string]*flag.FlagSet
}

// NewSpecFlags returns an empty flag binder.
func NewSpecFlags() *SpecFlags {
	return &SpecFlags{bound: make(map[string]*flag.FlagSet)}
}

func (s *SpecFlags) track(fs *flag.FlagSet, names ...string) {
	for _, n := range names {
		s.bound[n] = fs
	}
}

// BindCommon registers the flags every binary shares: -spec, -save-spec,
// -seed and -full.
func (s *SpecFlags) BindCommon(fs *flag.FlagSet) *SpecFlags {
	fs.StringVar(&s.SpecPath, "spec", "", "load a run spec from this JSON file")
	fs.StringVar(&s.SaveSpec, "save-spec", "", "write the resolved run spec to this JSON file")
	fs.Int64Var(&s.Seed, "seed", 1, "random seed")
	fs.BoolVar(&s.Full, "full", false, "full paper methodology (longer runs) instead of quick mode")
	s.track(fs, "spec", "save-spec", "seed", "full")
	return s
}

// BindNetwork registers the topology selection flags.
func (s *SpecFlags) BindNetwork(fs *flag.FlagSet) *SpecFlags {
	fs.StringVar(&s.Net, "net", "", "network preset (Table 4 names or sn_<layout>_<N>)")
	fs.IntVar(&s.Q, "q", 0, "Slim NoC parameter q (builds topology sn instead of -net)")
	fs.IntVar(&s.Conc, "p", 0, "concentration: nodes per router (default ideal)")
	fs.StringVar(&s.Layout, "layout", "", "Slim NoC layout: "+strings.Join(Layouts(), ", "))
	fs.Int64Var(&s.LayoutSeed, "layout-seed", 0, "seed for randomized layouts")
	fs.BoolVar(&s.SMART, "smart", false, "enable SMART links (H=9)")
	s.track(fs, "net", "q", "p", "layout", "layout-seed", "smart")
	return s
}

// BindRun registers the traffic, routing, buffering and cycle-count flags.
func (s *SpecFlags) BindRun(fs *flag.FlagSet) *SpecFlags {
	fs.StringVar(&s.Pattern, "pattern", "", "traffic pattern: "+strings.Join(Traffics(), ", "))
	fs.StringVar(&s.Trace, "trace", "", "trace benchmark for -pattern trace")
	fs.Float64Var(&s.Rate, "rate", 0, "offered load in flits/node/cycle")
	fs.IntVar(&s.VCs, "vcs", 0, "virtual channels")
	fs.StringVar(&s.Scheme, "scheme", "", "buffering: "+strings.Join(Schemes(), ", "))
	fs.IntVar(&s.EdgeCap, "edge-cap", 0, "per-VC edge buffer capacity override in flits")
	fs.IntVar(&s.CBCap, "cb", 0, "central buffer capacity in flits (cbr scheme)")
	fs.IntVar(&s.H, "hop-factor", 0, "explicit SMART hop factor H")
	fs.StringVar(&s.Adaptive, "adaptive", "", "adaptive routing: ugal-l, ugal-g, min-adapt")
	fs.Int64Var(&s.Cycles, "cycles", 0, "measurement cycles (0 = mode default)")
	fs.StringVar(&s.Process, "process", "", "temporal injection process: "+strings.Join(Processes(), ", "))
	fs.Float64Var(&s.BurstLen, "burst-len", 0, "mean burst length in cycles (process burst; default 8)")
	fs.Float64Var(&s.Duty, "duty", 0, "burst on-fraction in (0,1] (process burst; default 0.25)")
	fs.Float64Var(&s.ModFact, "mod-factor", 0, "high-state rate multiplier in [1,2] (process mmpp; default 1.8)")
	fs.Float64Var(&s.ModPer, "mod-period", 0, "mean per-state dwell in cycles (process mmpp; default 200)")
	fs.Float64Var(&s.HotFrac, "hotspot-frac", 0, "fraction of traffic aimed at the hot nodes")
	fs.IntVar(&s.HotCount, "hotspot-count", 0, "hot node count K (default 4 when -hotspot-frac is set)")
	fs.StringVar(&s.SizeMix, "size-mix", "", "packet-size mix: fixed, bimodal")
	fs.IntVar(&s.Window, "window", 0, "outstanding requests per node W (process reqreply; default 4)")
	s.track(fs, "pattern", "trace", "rate", "vcs", "scheme", "edge-cap", "cb", "hop-factor", "adaptive", "cycles",
		"process", "burst-len", "duty", "mod-factor", "mod-period",
		"hotspot-frac", "hotspot-count", "size-mix", "window")
	return s
}

// set reports whether the named flag was explicitly provided on the command
// line of the FlagSet it was bound to.
func (s *SpecFlags) set(name string) bool {
	fs, ok := s.bound[name]
	if !ok {
		return false
	}
	found := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			found = true
		}
	})
	return found
}

// Spec resolves the bound flags into a RunSpec: the defaults, overlaid by
// the -spec file (if given), overlaid by every explicitly set flag. Call
// after flag parsing.
func (s *SpecFlags) Spec(defaults RunSpec) (RunSpec, error) {
	spec := defaults.Normalized()
	if s.SpecPath != "" {
		loaded, err := LoadSpec(s.SpecPath)
		if err != nil {
			return RunSpec{}, err
		}
		spec = loaded
	}
	if s.set("net") {
		spec.Network = NetworkSpec{Preset: s.Net}
	}
	if s.set("q") {
		spec.Network = NetworkSpec{Topology: "sn", Q: s.Q, Conc: s.Conc,
			Layout: s.Layout, LayoutSeed: s.LayoutSeed}
		if spec.Network.Layout == "" {
			spec.Network.Layout = "subgr"
		}
	} else {
		if s.set("p") {
			spec.Network.Conc = s.Conc
		}
		if s.set("layout") {
			spec.Network.Layout = s.Layout
			if spec.Network.Preset == "" && spec.Network.Topology == "" {
				spec.Network.Topology = "sn"
			}
		}
		if s.set("layout-seed") {
			spec.Network.LayoutSeed = s.LayoutSeed
		}
	}
	if s.set("smart") {
		spec.SMART = s.SMART
	}
	if s.set("hop-factor") {
		spec.HopFactor = s.H
	}
	if s.set("pattern") {
		spec.Traffic.Pattern = s.Pattern
	}
	if s.set("trace") {
		spec.Traffic.Trace = s.Trace
		if !s.set("pattern") {
			spec.Traffic.Pattern = "trace"
		}
	}
	if s.set("rate") {
		spec.Traffic.Rate = s.Rate
	}
	if s.set("process") {
		spec.Traffic.Process = s.Process
	}
	if s.set("burst-len") {
		spec.Traffic.BurstLen = s.BurstLen
	}
	if s.set("duty") {
		spec.Traffic.Duty = s.Duty
	}
	if s.set("mod-factor") {
		spec.Traffic.ModFactor = s.ModFact
	}
	if s.set("mod-period") {
		spec.Traffic.ModPeriod = s.ModPer
	}
	if s.set("hotspot-frac") {
		spec.Traffic.HotspotFraction = s.HotFrac
	}
	if s.set("hotspot-count") {
		spec.Traffic.HotspotCount = s.HotCount
	}
	if s.set("size-mix") {
		spec.Traffic.SizeMix = s.SizeMix
	}
	if s.set("window") {
		spec.Traffic.Window = s.Window
	}
	if s.set("vcs") {
		spec.Routing.VCs = s.VCs
	}
	if s.set("adaptive") {
		spec.Routing.Algorithm = s.Adaptive
	}
	if s.set("scheme") {
		spec.Buffering.Scheme = s.Scheme
	}
	if s.set("edge-cap") {
		spec.Buffering.EdgeCap = s.EdgeCap
	}
	if s.set("cb") {
		spec.Buffering.CBCap = s.CBCap
	}
	if s.set("seed") || spec.Sim.Seed == 0 {
		spec.Sim.Seed = s.Seed
	}
	if s.Full {
		full := FullSim()
		spec.Sim.WarmupCycles = full.WarmupCycles
		spec.Sim.MeasureCycles = full.MeasureCycles
		spec.Sim.DrainCycles = full.DrainCycles
	} else if spec.Sim.MeasureCycles == 0 {
		quick := QuickSim()
		spec.Sim.WarmupCycles = quick.WarmupCycles
		spec.Sim.MeasureCycles = quick.MeasureCycles
		spec.Sim.DrainCycles = quick.DrainCycles
	}
	if s.set("cycles") && s.Cycles > 0 {
		spec.Sim.MeasureCycles = s.Cycles
		spec.Sim.WarmupCycles = s.Cycles / 4
		spec.Sim.DrainCycles = s.Cycles
	}
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return RunSpec{}, err
	}
	if s.SaveSpec != "" {
		if err := SaveSpec(s.SaveSpec, spec); err != nil {
			return RunSpec{}, err
		}
	}
	return spec, nil
}

// MustSpec is Spec with a panic on error, for binaries that have already
// validated their flags.
func (s *SpecFlags) MustSpec(defaults RunSpec) RunSpec {
	spec, err := s.Spec(defaults)
	if err != nil {
		panic(fmt.Sprintf("slimnoc: resolving flags: %v", err))
	}
	return spec
}
