package slimnoc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// SweepSpec declares a campaign: a base RunSpec plus axes whose values are
// combined into a deterministic cartesian product of run points. Like
// RunSpec it is JSON-round-trippable, so a whole evaluation grid (one paper
// figure) lives in one file.
type SweepSpec struct {
	// Name labels the sweep; point names are derived from it.
	Name string `json:"name,omitempty"`
	// Base is the run every point starts from; axis values override its
	// corresponding fields.
	Base RunSpec   `json:"base"`
	Axes SweepAxes `json:"axes"`
}

// SweepAxes are the swept dimensions. An empty axis contributes a single
// "inherit from base" value. Expansion order is fixed and documented on
// Points: networks vary slowest (so consecutive points share a cached
// network) and seeds fastest.
type SweepAxes struct {
	// Presets name ready-made networks (Table 4 shorthand); Networks carry
	// explicit specs. Both feed one network axis, presets first.
	Presets  []string      `json:"presets,omitempty"`
	Networks []NetworkSpec `json:"networks,omitempty"`
	// Patterns are traffic registry keys (rnd, shf, adv1, ...).
	Patterns []string `json:"patterns,omitempty"`
	// Processes are temporal-process registry keys (bernoulli, burst, mmpp,
	// reqreply), overriding the base spec's traffic.process per point.
	Processes []string `json:"processes,omitempty"`
	// Schemes are buffer-scheme registry keys (eb, eb-large, el, cbr, ...).
	Schemes []string `json:"schemes,omitempty"`
	// VCs are virtual-channel counts.
	VCs []int `json:"vcs,omitempty"`
	// Loads are offered loads in flits/node/cycle.
	Loads []float64 `json:"loads,omitempty"`
	// Seeds are explicit simulation seeds. When empty, every point gets a
	// seed derived deterministically from the base seed and the point index
	// (see DeriveSeed), so repeated points of one sweep stay statistically
	// independent yet each point remains individually reproducible.
	Seeds []int64 `json:"seeds,omitempty"`
}

// DeriveSeed returns the simulation seed for point index i of a sweep whose
// base seed is base. The derivation is a splitmix64 finalizer over
// (base, i): deterministic, order-independent, and collision-free for all
// practical sweep sizes, so the parallel and serial execution of one sweep
// use identical per-point seeds. The result is never 0 (0 means "unset"
// throughout the spec layer).
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + uint64(i) + 1
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Keep seeds positive and non-zero so they survive omitempty JSON
	// round trips and "0 = default" checks.
	s := int64(z &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}

// networkAxis merges the preset and explicit network axes.
func (a SweepAxes) networkAxis() []NetworkSpec {
	out := make([]NetworkSpec, 0, len(a.Presets)+len(a.Networks))
	for _, p := range a.Presets {
		out = append(out, NetworkSpec{Preset: p})
	}
	out = append(out, a.Networks...)
	return out
}

// axisLen treats an empty axis as one inherited value.
func axisLen(l int) int {
	if l == 0 {
		return 1
	}
	return l
}

// NumPoints returns the size of the cartesian product.
func (s SweepSpec) NumPoints() int {
	n := 1
	for _, l := range []int{
		len(s.Axes.networkAxis()), len(s.Axes.Patterns), len(s.Axes.Processes),
		len(s.Axes.Schemes), len(s.Axes.VCs), len(s.Axes.Loads), len(s.Axes.Seeds),
	} {
		n *= axisLen(l)
	}
	return n
}

// Points expands the sweep into its cartesian product of normalized
// RunSpecs. The expansion is deterministic: axes nest in the fixed order
// networks (slowest) > patterns > processes > schemes > vcs > loads > seeds
// (fastest), each axis in declaration order. Every point carries a concrete
// seed — from the seed axis when declared, otherwise derived via DeriveSeed
// from the base seed and the point index — so any single point re-run on
// its own reproduces the in-sweep metrics exactly. Point names carry one
// token per swept axis plus the workload tokens of the resolved traffic
// spec (process, burst shape, hotspot, size mix, window; see TrafficLabel),
// so mixed-process sweeps stay distinguishable in sinks and reports.
func (s SweepSpec) Points() ([]RunSpec, error) {
	nets := s.Axes.networkAxis()
	nNet, nPat := axisLen(len(nets)), axisLen(len(s.Axes.Patterns))
	nProc := axisLen(len(s.Axes.Processes))
	nSch, nVC := axisLen(len(s.Axes.Schemes)), axisLen(len(s.Axes.VCs))
	nLoad, nSeed := axisLen(len(s.Axes.Loads)), axisLen(len(s.Axes.Seeds))

	total := nNet * nPat * nProc * nSch * nVC * nLoad * nSeed
	points := make([]RunSpec, 0, total)
	idx := 0
	for in := 0; in < nNet; in++ {
		for ip := 0; ip < nPat; ip++ {
			for ix := 0; ix < nProc; ix++ {
				for is := 0; is < nSch; is++ {
					for iv := 0; iv < nVC; iv++ {
						for il := 0; il < nLoad; il++ {
							for ic := 0; ic < nSeed; ic++ {
								p := s.Base
								var label []string
								if len(nets) > 0 {
									p.Network = nets[in]
									label = append(label, netLabel(nets[in]))
								}
								if len(s.Axes.Patterns) > 0 {
									p.Traffic.Pattern = s.Axes.Patterns[ip]
									label = append(label, strings.ToLower(s.Axes.Patterns[ip]))
								}
								if len(s.Axes.Processes) > 0 {
									p.Traffic.Process = s.Axes.Processes[ix]
								}
								if len(s.Axes.Schemes) > 0 {
									p.Buffering.Scheme = s.Axes.Schemes[is]
									label = append(label, strings.ToLower(s.Axes.Schemes[is]))
								}
								if len(s.Axes.VCs) > 0 {
									p.Routing.VCs = s.Axes.VCs[iv]
									label = append(label, fmt.Sprintf("vc%d", s.Axes.VCs[iv]))
								}
								if len(s.Axes.Loads) > 0 {
									p.Traffic.Rate = s.Axes.Loads[il]
									label = append(label, fmt.Sprintf("load%.3f", s.Axes.Loads[il]))
								}
								if len(s.Axes.Seeds) > 0 {
									p.Sim.Seed = s.Axes.Seeds[ic]
									label = append(label, fmt.Sprintf("seed%d", s.Axes.Seeds[ic]))
								} else {
									p.Sim.Seed = DeriveSeed(s.Base.Sim.Seed, idx)
								}
								p = p.Normalized()
								label = append(label, TrafficLabel(p.Traffic)...)
								p.Name = pointName(s.Name, s.Base.Name, label, idx)
								points = append(points, p)
								idx++
							}
						}
					}
				}
			}
		}
	}
	for i, p := range points {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("slimnoc: sweep point %d (%s): %w", i, p.Name, err)
		}
	}
	return points, nil
}

// DisplayProcess spells out a normalized TrafficSpec's temporal process for
// human-facing output: the canonicalized-empty default reads "bernoulli",
// except for trace workloads, which have no injection process at all. Sinks
// and reports share this one derivation.
func DisplayProcess(ts TrafficSpec) string {
	if ts.Process == "" && ts.Trace == "" {
		return "bernoulli"
	}
	return ts.Process
}

// TrafficLabel renders the workload-axis tokens of a normalized TrafficSpec:
// the temporal process (when not the Bernoulli default), its shape
// parameters when explicitly set, the hotspot overlay, the size mix, and
// the request-reply window. Specs written before the workload decomposition
// produce no tokens, so existing point names are unchanged.
func TrafficLabel(ts TrafficSpec) []string {
	var out []string
	if ts.Process != "" {
		out = append(out, ts.Process)
	}
	if ts.BurstLen != 0 {
		out = append(out, fmt.Sprintf("bl%g", ts.BurstLen))
	}
	if ts.Duty != 0 {
		out = append(out, fmt.Sprintf("duty%g", ts.Duty))
	}
	if ts.ModFactor != 0 {
		out = append(out, fmt.Sprintf("mf%g", ts.ModFactor))
	}
	if ts.ModPeriod != 0 {
		out = append(out, fmt.Sprintf("mp%g", ts.ModPeriod))
	}
	if ts.HotspotFraction != 0 {
		k := ts.HotspotCount
		if k == 0 {
			k = defaultHotCount
		}
		out = append(out, fmt.Sprintf("hot%gx%d", ts.HotspotFraction, k))
	}
	if ts.SizeMix != "" {
		out = append(out, ts.SizeMix)
	}
	if ts.Window != 0 {
		out = append(out, fmt.Sprintf("w%d", ts.Window))
	}
	return out
}

// netLabel compacts a network axis value for point names.
func netLabel(ns NetworkSpec) string {
	if ns.Preset != "" {
		return strings.ToLower(ns.Preset)
	}
	if ns.Topology != "" {
		return strings.ToLower(ns.Topology)
	}
	return "net"
}

// pointName composes a stable, human-readable point name.
func pointName(sweep, base string, label []string, idx int) string {
	prefix := sweep
	if prefix == "" {
		prefix = base
	}
	if prefix == "" {
		prefix = "sweep"
	}
	if len(label) == 0 {
		return fmt.Sprintf("%s/%d", prefix, idx)
	}
	return prefix + "/" + strings.Join(label, "/")
}

// Validate expands the sweep and validates every point without building any
// network.
func (s SweepSpec) Validate() error {
	_, err := s.Points()
	return err
}

// JSON renders the sweep as indented JSON.
func (s SweepSpec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSweep decodes a SweepSpec from JSON, rejecting unknown fields so
// typos in hand-written sweep files fail loudly.
func ParseSweep(data []byte) (SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("slimnoc: parsing sweep: %w", err)
	}
	s.Base = s.Base.Normalized()
	return s, nil
}

// LoadSweep reads and parses a sweep file.
func LoadSweep(path string) (SweepSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SweepSpec{}, fmt.Errorf("slimnoc: loading sweep: %w", err)
	}
	return ParseSweep(data)
}

// SaveSweep writes the sweep as indented JSON to path.
func SaveSweep(path string, s SweepSpec) error {
	data, err := s.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
