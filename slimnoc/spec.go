package slimnoc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// RunSpec is the declarative description of one simulation run. It is
// JSON-serializable and round-trippable: a spec saved from one run rebuilds
// the identical network, routing, traffic and simulator configuration, so
// re-running it with the same seed reproduces the same metrics.
type RunSpec struct {
	// Name optionally labels the run (reports, result files).
	Name      string        `json:"name,omitempty"`
	Network   NetworkSpec   `json:"network"`
	Routing   RoutingSpec   `json:"routing,omitempty"`
	Buffering BufferingSpec `json:"buffering,omitempty"`
	Traffic   TrafficSpec   `json:"traffic,omitempty"`
	// SMART enables SMART links: flits traverse HopFactor grid hops per
	// cycle (§3.2.2, default 9 at 45 nm).
	SMART bool `json:"smart,omitempty"`
	// HopFactor overrides the SMART hop factor H (0 = 9 with SMART, 1
	// without).
	HopFactor int     `json:"hop_factor,omitempty"`
	Sim       SimSpec `json:"sim,omitempty"`
}

// NetworkSpec selects and parameterises a topology from the topology
// registry. Either Preset names a ready-made configuration (the Table 4
// shorthand: cm3, t2d9, fbf8, pfbf4, sn_subgr_200, ...) or Topology names a
// registered family with explicit parameters.
type NetworkSpec struct {
	// Preset expands to a full NetworkSpec via ResolvePreset; explicitly
	// set fields below then override the preset's values.
	Preset string `json:"preset,omitempty"`
	// Topology is a topology registry key: sn, mesh, torus, flatfly,
	// pflatfly, dragonfly, clos.
	Topology string `json:"topology,omitempty"`
	// X, Y are the router grid dimensions (mesh, torus, flatfly; the
	// per-partition grid for pflatfly).
	X int `json:"x,omitempty"`
	Y int `json:"y,omitempty"`
	// Conc is the concentration p: nodes per router.
	Conc int `json:"conc,omitempty"`
	// PartsX, PartsY are the partition grid dimensions (pflatfly only).
	PartsX int `json:"parts_x,omitempty"`
	PartsY int `json:"parts_y,omitempty"`
	// Q is the Slim NoC structural parameter (sn only); Nodes is the
	// alternative: the target node count, resolved via Table 2.
	Q     int `json:"q,omitempty"`
	Nodes int `json:"nodes,omitempty"`
	// Layout is a layout registry key (sn only): basic, subgr, gr, rand.
	Layout string `json:"layout,omitempty"`
	// LayoutSeed seeds randomized layouts (sn rand; default 1).
	LayoutSeed int64 `json:"layout_seed,omitempty"`
	// Extra carries topology-specific integer parameters: dragonfly uses
	// a/h/g, clos uses leaves/spines.
	Extra map[string]int `json:"extra,omitempty"`
}

// RoutingSpec selects a routing algorithm from the routing registry.
type RoutingSpec struct {
	// Algorithm is a routing registry key: auto (topology-appropriate
	// deadlock-free default), minimal, ugal-l, ugal-g, min-adapt.
	Algorithm string `json:"algorithm,omitempty"`
	// VCs is the virtual-channel count (default 2).
	VCs int `json:"vcs,omitempty"`
}

// BufferingSpec selects a buffer organisation from the scheme registry.
type BufferingSpec struct {
	// Scheme is a scheme registry key: eb, eb-large, eb-var, el, cbr.
	Scheme string `json:"scheme,omitempty"`
	// EdgeCap overrides the per-VC edge-buffer capacity in flits (eb only;
	// 0 = the scheme's default).
	EdgeCap int `json:"edge_cap,omitempty"`
	// CBCap is the central-buffer capacity in flits (cbr only; default 20).
	CBCap int `json:"cb_cap,omitempty"`
}

// TrafficSpec composes a workload from the three orthogonal traffic axes —
// spatial Pattern, temporal Process, packet-size mix — plus the hotspot
// overlay and the closed-loop request-reply window. Every new field is
// omitted from JSON (and from content-addressed point keys) at its zero
// value, so specs written before the decomposition keep their exact
// canonical bytes and stored results.
type TrafficSpec struct {
	// Pattern is a traffic registry key: rnd, shf, rev, adv1, adv2, asym,
	// or trace.
	Pattern string `json:"pattern,omitempty"`
	// Rate is the offered load in flits/node/cycle (open-loop processes;
	// ignored by reqreply, which self-throttles).
	Rate float64 `json:"rate,omitempty"`
	// PacketFlits is the data-packet size in flits (default 6, §5.1). It is
	// the fixed size, the bimodal long size, and the reqreply reply size.
	PacketFlits int `json:"packet_flits,omitempty"`
	// Trace names the PARSEC/SPLASH benchmark for pattern "trace":
	// barnes, fft, lu, radix, water-n, water-s.
	Trace string `json:"trace,omitempty"`

	// Process is a process registry key selecting the temporal injection
	// process: bernoulli (the default; canonicalized to the empty string so
	// pre-decomposition specs hash identically), burst, mmpp, or the
	// closed-loop reqreply.
	Process string `json:"process,omitempty"`
	// BurstLen is the mean burst length in cycles for process burst
	// (default 8).
	BurstLen float64 `json:"burst_len,omitempty"`
	// Duty is the long-run on-fraction for process burst, in (0, 1]
	// (default 0.25).
	Duty float64 `json:"duty,omitempty"`
	// ModFactor is the high-state rate multiplier for process mmpp, in
	// [1, 2] (default 1.8; the low state uses 2-ModFactor).
	ModFactor float64 `json:"mod_factor,omitempty"`
	// ModPeriod is the mean per-state dwell time in cycles for process mmpp
	// (default 200).
	ModPeriod float64 `json:"mod_period,omitempty"`

	// HotspotFraction concentrates this share of destinations on the
	// HotspotCount hot nodes (0 disables the overlay). Composes with any
	// synthetic pattern.
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`
	// HotspotCount is the hot-node count K (nodes 0..K-1; default 4 when
	// the overlay is active).
	HotspotCount int `json:"hotspot_count,omitempty"`

	// SizeMix selects the packet-size model: fixed (the default;
	// canonicalized to the empty string) or bimodal.
	SizeMix string `json:"size_mix,omitempty"`
	// ShortFlits is the control-packet size for size_mix bimodal and the
	// request size for process reqreply (default 2).
	ShortFlits int `json:"short_flits,omitempty"`
	// ShortFrac is the probability a bimodal packet is short (default 0.5).
	ShortFrac float64 `json:"short_frac,omitempty"`

	// Window is the per-node outstanding-request bound W for process
	// reqreply (default 4).
	Window int `json:"window,omitempty"`
}

// SimSpec sets the simulation phases and seed. Zero cycle values fall back
// to the simulator's full-methodology defaults.
type SimSpec struct {
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	DrainCycles   int64 `json:"drain_cycles,omitempty"`
	// Seed drives every random decision of the run (injection processes,
	// adaptive choices).
	Seed int64 `json:"seed,omitempty"`
	// InjQueueCap is the NIC injection queue capacity in flits (default 20).
	InjQueueCap int `json:"inj_queue_cap,omitempty"`
}

// QuickSim returns the short warmup/measure/drain phases used by examples
// and the benchmark harness.
func QuickSim() SimSpec {
	return SimSpec{WarmupCycles: 1000, MeasureCycles: 3000, DrainCycles: 4000}
}

// FullSim returns the paper-methodology phases (§5.1).
func FullSim() SimSpec {
	return SimSpec{WarmupCycles: 5000, MeasureCycles: 20000, DrainCycles: 30000}
}

// DefaultSpec returns the facade's baseline run: the SN-S design under
// uniform random traffic at a moderate load, quick cycles.
func DefaultSpec() RunSpec {
	spec := RunSpec{
		Network: NetworkSpec{Preset: "sn_subgr_200"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.06},
		Sim:     QuickSim(),
	}
	spec.Sim.Seed = 1
	return spec.Normalized()
}

// Normalized returns a copy with every defaultable field filled in, so that
// two specs that configure the same run compare equal and a normalized spec
// survives a JSON round trip unchanged.
func (s RunSpec) Normalized() RunSpec {
	if s.Routing.Algorithm == "" {
		s.Routing.Algorithm = "auto"
	}
	s.Routing.Algorithm = strings.ToLower(s.Routing.Algorithm)
	if s.Routing.VCs == 0 {
		s.Routing.VCs = 2
	}
	if s.Buffering.Scheme == "" {
		s.Buffering.Scheme = "eb"
	}
	s.Buffering.Scheme = strings.ToLower(s.Buffering.Scheme)
	if s.Traffic.Pattern == "" && s.Traffic.Trace == "" {
		s.Traffic.Pattern = "rnd"
	}
	if s.Traffic.Pattern == "" && s.Traffic.Trace != "" {
		s.Traffic.Pattern = "trace"
	}
	s.Traffic.Pattern = strings.ToLower(s.Traffic.Pattern)
	if s.Traffic.PacketFlits == 0 {
		s.Traffic.PacketFlits = 6
	}
	// The default process and size mix canonicalize to the EMPTY string,
	// not the other way round: filling them in would change the canonical
	// bytes — and so the content-addressed PointKey — of every spec written
	// before the workload decomposition, orphaning existing result stores.
	s.Traffic.Process = strings.ToLower(s.Traffic.Process)
	if s.Traffic.Process == "bernoulli" {
		s.Traffic.Process = ""
	}
	s.Traffic.SizeMix = strings.ToLower(s.Traffic.SizeMix)
	if s.Traffic.SizeMix == "fixed" {
		s.Traffic.SizeMix = ""
	}
	// Clear workload fields the selected pattern/process/mix never reads (a
	// burst length under bernoulli, a window under an open loop, a process
	// under a trace, ...): two specs that run identically must share one
	// canonical form, one PointKey and one label. A consequence: an
	// out-of-range value in an inert field is dropped with the field rather
	// than rejected.
	if s.Traffic.Pattern == "trace" {
		// Trace workloads replay their own recorded request/reply model;
		// the whole composable axis is inert. Rate is left untouched: it
		// predates the decomposition (and was always ignored by traces),
		// so clearing it would reshape pre-existing canonical bytes.
		s.Traffic.Process = ""
		s.Traffic.HotspotFraction = 0
		s.Traffic.SizeMix = ""
	}
	if s.Traffic.Process == "reqreply" {
		// The closed loop self-throttles: the open-loop rate and the size
		// mix are inert (ShortFlits stays live as the request size).
		s.Traffic.Rate = 0
		s.Traffic.SizeMix = ""
	}
	if s.Traffic.Process != "burst" {
		s.Traffic.BurstLen, s.Traffic.Duty = 0, 0
	}
	if s.Traffic.Process != "mmpp" {
		s.Traffic.ModFactor, s.Traffic.ModPeriod = 0, 0
	}
	if s.Traffic.Process != "reqreply" {
		s.Traffic.Window = 0
	}
	if s.Traffic.HotspotFraction == 0 {
		s.Traffic.HotspotCount = 0
	}
	if s.Traffic.SizeMix != "bimodal" {
		s.Traffic.ShortFrac = 0
		if s.Traffic.Process != "reqreply" { // reqreply reads the request size
			s.Traffic.ShortFlits = 0
		}
	}
	s.Network.Preset = strings.ToLower(s.Network.Preset)
	s.Network.Topology = strings.ToLower(s.Network.Topology)
	s.Network.Layout = strings.ToLower(s.Network.Layout)
	return s
}

// HopsPerCycle resolves the effective SMART hop factor H for the spec.
func (s RunSpec) HopsPerCycle() int {
	h := 1
	if s.SMART {
		h = 9
	}
	if s.HopFactor > 0 {
		h = s.HopFactor
	}
	return h
}

// Validate reports the first structural problem with the spec without
// building anything expensive.
func (s RunSpec) Validate() error {
	s = s.Normalized()
	if s.Network.Preset == "" && s.Network.Topology == "" {
		return fmt.Errorf("slimnoc: spec needs network.preset or network.topology")
	}
	if s.Network.Preset != "" {
		if _, err := ResolvePreset(s.Network.Preset); err != nil {
			return err
		}
	} else if _, ok := topologies.lookup(s.Network.Topology); !ok {
		return fmt.Errorf("slimnoc: unknown topology %q (have %s)",
			s.Network.Topology, strings.Join(Topologies(), ", "))
	}
	if _, ok := routings.lookup(s.Routing.Algorithm); !ok {
		return fmt.Errorf("slimnoc: unknown routing algorithm %q (have %s)",
			s.Routing.Algorithm, strings.Join(Routings(), ", "))
	}
	if _, ok := schemes.lookup(s.Buffering.Scheme); !ok {
		return fmt.Errorf("slimnoc: unknown buffer scheme %q (have %s)",
			s.Buffering.Scheme, strings.Join(Schemes(), ", "))
	}
	if _, ok := traffics.lookup(s.Traffic.Pattern); !ok {
		return fmt.Errorf("slimnoc: unknown traffic pattern %q (have %s)",
			s.Traffic.Pattern, strings.Join(Traffics(), ", "))
	}
	return s.Traffic.validate()
}

// validate checks the workload-axis fields of an already normalized
// TrafficSpec: registry membership of the process, and parameter ranges
// (zero always means "use the default" and is valid).
func (ts TrafficSpec) validate() error {
	if ts.Process != "" {
		if _, ok := processes.lookup(ts.Process); !ok {
			return fmt.Errorf("slimnoc: unknown traffic process %q (have %s)",
				ts.Process, strings.Join(Processes(), ", "))
		}
	}
	if ts.BurstLen != 0 && ts.BurstLen < 1 {
		return fmt.Errorf("slimnoc: traffic.burst_len = %g, want >= 1", ts.BurstLen)
	}
	if ts.Duty != 0 && (ts.Duty < 0 || ts.Duty > 1) {
		return fmt.Errorf("slimnoc: traffic.duty = %g out of (0, 1]", ts.Duty)
	}
	if ts.ModFactor != 0 && (ts.ModFactor < 1 || ts.ModFactor > 2) {
		return fmt.Errorf("slimnoc: traffic.mod_factor = %g out of [1, 2]", ts.ModFactor)
	}
	if ts.ModPeriod != 0 && ts.ModPeriod < 1 {
		return fmt.Errorf("slimnoc: traffic.mod_period = %g, want >= 1", ts.ModPeriod)
	}
	if ts.HotspotFraction < 0 || ts.HotspotFraction > 1 {
		return fmt.Errorf("slimnoc: traffic.hotspot_fraction = %g out of [0, 1]", ts.HotspotFraction)
	}
	if ts.HotspotCount < 0 {
		return fmt.Errorf("slimnoc: traffic.hotspot_count = %d, want >= 0", ts.HotspotCount)
	}
	switch ts.SizeMix {
	case "", "bimodal":
	default:
		return fmt.Errorf("slimnoc: unknown traffic size_mix %q (have fixed, bimodal)", ts.SizeMix)
	}
	if ts.ShortFlits < 0 || (ts.ShortFlits > 0 && ts.ShortFlits >= ts.PacketFlits) {
		return fmt.Errorf("slimnoc: traffic.short_flits = %d, want in [1, packet_flits=%d)",
			ts.ShortFlits, ts.PacketFlits)
	}
	if ts.ShortFrac != 0 && (ts.ShortFrac < 0 || ts.ShortFrac > 1) {
		return fmt.Errorf("slimnoc: traffic.short_frac = %g out of [0, 1]", ts.ShortFrac)
	}
	if ts.Window < 0 {
		return fmt.Errorf("slimnoc: traffic.window = %d, want >= 0", ts.Window)
	}
	return nil
}

// JSON renders the spec as indented JSON.
func (s RunSpec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSpec decodes a RunSpec from JSON, rejecting unknown fields so typos
// in hand-written spec files fail loudly instead of being ignored.
func ParseSpec(data []byte) (RunSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s RunSpec
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("slimnoc: parsing spec: %w", err)
	}
	return s.Normalized(), nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (RunSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RunSpec{}, fmt.Errorf("slimnoc: loading spec: %w", err)
	}
	return ParseSpec(data)
}

// SaveSpec writes the spec as indented JSON to path.
func SaveSpec(path string, s RunSpec) error {
	data, err := s.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
