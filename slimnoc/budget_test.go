package slimnoc

import (
	"context"
	"strings"
	"testing"
)

// budgetSpec is a small run both budget and cycle-step tests reuse.
func budgetSpec() RunSpec {
	return RunSpec{
		Network: NetworkSpec{Preset: "t2d54"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
		Sim:     SimSpec{WarmupCycles: 300, MeasureCycles: 900, DrainCycles: 1500, Seed: 9},
	}
}

// TestWithCycleStepIdentity pins the facade half of the event calendar's
// exact-equivalence contract: a run with WithCycleStep must produce the
// same Result as the default calendar engine (the engine-level proof lives
// in internal/sim's differential and golden-idle suites).
func TestWithCycleStepIdentity(t *testing.T) {
	cal, err := Run(context.Background(), budgetSpec())
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := Run(context.Background(), budgetSpec(), WithCycleStep())
	if err != nil {
		t.Fatal(err)
	}
	if cal.Raw != cyc.Raw {
		t.Errorf("calendar result %+v != cycle-stepped %+v", cal.Raw, cyc.Raw)
	}
	if cyc.Engine.CyclesSkipped != 0 || cyc.Engine.CalendarPeak != 0 {
		t.Errorf("cycle-stepped run reported skip telemetry: %+v", cyc.Engine)
	}
}

// TestWithMemBudget checks both sides of the budget: an absurdly small cap
// rejects the run with a sizing error before the engine allocates, and a
// generous cap changes nothing about the result.
func TestWithMemBudget(t *testing.T) {
	_, err := Run(context.Background(), budgetSpec(), WithMemBudget(1024))
	if err == nil {
		t.Fatal("1 KiB budget accepted a t2d54 engine")
	}
	if !strings.Contains(err.Error(), "MemBudgetBytes") {
		t.Errorf("budget error %q does not name MemBudgetBytes", err)
	}

	capped, err := Run(context.Background(), budgetSpec(), WithMemBudget(1<<28))
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(context.Background(), budgetSpec())
	if err != nil {
		t.Fatal(err)
	}
	if capped.Raw != free.Raw {
		t.Errorf("budgeted result %+v != unbudgeted %+v", capped.Raw, free.Raw)
	}
}

// TestCampaignMemBudget checks the campaign plumbing: with a tiny per-point
// budget every point fails with the sizing error (and the shared route-table
// compile for oversized networks is skipped rather than allocated).
func TestCampaignMemBudget(t *testing.T) {
	results, err := RunCampaign(context.Background(),
		[]RunSpec{budgetSpec()}, WithJobs(1), WithPointMemBudget(1024))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("tiny budget did not fail the point: %+v", results)
	}
	if !strings.Contains(results[0].Err.Error(), "MemBudgetBytes") {
		t.Errorf("point error %q does not name MemBudgetBytes", results[0].Err)
	}
}

// TestScalePresets pins the 10k/100k Table 4 siblings added for the scale-*
// family: the presets resolve and their node counts land in the declared
// regimes.
func TestScalePresets(t *testing.T) {
	for name, want := range map[string]int{
		"cm10k": 10080, "t2d10k": 10080, "fbf10k": 10080,
		"cm100k": 100352, "t2d100k": 100352, "fbf100k": 100352,
	} {
		ns, err := ResolvePreset(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if n := ns.X * ns.Y * ns.Conc; n != want {
			t.Errorf("%s: %d nodes, want %d", name, n, want)
		}
	}
}
