// Package slimnoc is the public facade of the Slim NoC reproduction: the
// one supported entry point for building networks, configuring runs and
// executing the cycle-accurate simulator.
//
// A run is described declaratively by a RunSpec — a JSON-serializable,
// round-trippable document naming a topology, physical layout, routing
// algorithm, buffering scheme, traffic generator and simulation phases.
// Every name in a spec resolves through a string-keyed registry
// (RegisterTopology, RegisterRouting, RegisterTraffic, RegisterScheme,
// RegisterLayout), so new variants plug in without touching any caller:
//
//	spec := slimnoc.RunSpec{
//		Network: slimnoc.NetworkSpec{Topology: "sn", Q: 5, Conc: 4, Layout: "subgr"},
//		Traffic: slimnoc.TrafficSpec{Pattern: "rnd", Rate: 0.1},
//		Sim:     slimnoc.QuickSim(),
//	}
//	res, err := slimnoc.Run(ctx, spec)
//
// Runs accept a context.Context for cooperative cancellation (a cancelled
// run returns its partial metrics with an error wrapping ctx.Err()) and
// functional options for everything the declarative spec cannot express:
// WithProgress streams telemetry during long sweeps, WithSource injects a
// custom traffic generator, WithNetwork reuses one built network across a
// sweep, and WithAdaptivePolicy / WithEdgeBufferSizing override the
// registry-provided routing policy and buffer sizing.
//
// Whole evaluation grids are campaigns: a SweepSpec declares axes (presets,
// patterns, schemes, VC counts, loads, seeds) that expand into a
// deterministic cartesian product of RunSpecs, and a Campaign executes them
// on a worker pool — each distinct network built once and shared read-only,
// each distinct (network, static routing, VCs) combination compiled once
// into an immutable RouteTable shared the same way (CompileRouteTable /
// WithRouteTable expose this to direct Runner use), per-point seeds fixed
// at expansion time (DeriveSeed) so results are byte-identical at any job
// count, results streaming to pluggable Sinks (Collector, NewJSONLSink,
// NewCSVSink) as points complete, and context cancellation returning the
// partial result set:
//
//	sweep, _ := slimnoc.LoadSweep("sweep.json")
//	results, err := slimnoc.NewCampaign(slimnoc.WithJobs(8)).RunSweep(ctx, sweep)
//
// Campaigns become restartable jobs with a content-addressed result store
// (WithStore, package slimnoc/store). Every point is addressed by its
// PointKey — the hash of the canonical-JSON form of its expanded spec plus
// the engine version — and durably appended to a JSONL store before it is
// reported, so an interrupted campaign loses at most its in-flight points.
// The resume contract mirrors the sharing contract of WithNetwork /
// WithRouteTable: just as shared networks and compiled tables are
// observationally invisible (results are byte-identical with or without
// them), a store is too — rerunning a sweep against the store of an
// interrupted run completes only the missing points and returns a result
// set byte-identical to an uninterrupted cold run, with served points
// marked by PointResult.Cached:
//
//	st, _ := store.Open("results/store.jsonl")
//	results, err := slimnoc.NewCampaign(slimnoc.WithStore(st)).RunSweep(ctx, sweep)
//
// Because keys hash the full point identity (minus the display label), one
// store deduplicates identical points across sweeps and figures; because
// they include sim.EngineVersion, results from an incompatible engine
// generation are never served.
//
// # Workloads: Pattern x Process x Sizer
//
// TrafficSpec composes a workload from three orthogonal axes plus two
// extras, mirroring the internal/traffic decomposition. The spatial Pattern
// (rnd, shf, rev, adv1, adv2, asym) decides where packets go; the temporal
// Process (RegisterProcess: bernoulli, burst, mmpp, reqreply) decides when
// nodes inject; the size mix (fixed, bimodal) decides packet lengths; the
// hotspot overlay (HotspotFraction/HotspotCount) concentrates a share of
// any pattern's traffic on a few hot nodes; and the closed-loop reqreply
// process replaces the open loop with a self-throttling outstanding-request
// window. All axes preserve the configured mean load and the determinism
// contract (fixed seed => identical injection sequence, zero-allocation
// steady state). The defaults canonicalize to ABSENT fields — Normalized
// rewrites "bernoulli" and "fixed" to "" — so specs written before the
// decomposition keep their canonical bytes, and with them their PointKeys
// and stored results.
//
// SaturationSearch is the campaign mode built on the decomposition: it
// binary-searches the offered load where a configuration's mean latency
// crosses a threshold (SaturationSpec), probing ordinary campaign points on
// the min_load + i*step grid. Probes flow through the campaign's sinks and
// result store, so searches resume like sweeps (a warm rerun simulates
// nothing) and share probe results with any sweep touching the same loads.
//
// # Latency estimates and serve mode
//
// An Estimator answers point queries instead of running statistical
// campaigns: NewEstimator builds a warm engine (network plus compiled
// static route table) from the engine-relevant subset of a RunSpec
// (EstimatorSpec), and Estimate returns the cycle-accurate latency of a
// batch of transfers injected together on an otherwise idle network — a
// single transfer is the zero-load latency of its route and size, a batch
// is one contended episode. Estimators are safe for concurrent use: the
// underlying network and table are immutable, the same sharing contract
// campaigns rely on. Package slimnoc/serve exposes estimators as a
// co-simulation oracle service (JSON-line protocol, engine pool,
// store-backed response cache) consumed by the snserve binary; see
// docs/SERVING.md.
//
// SpecFlags layers the same spec model onto the flag package, giving every
// command-line binary a shared `-spec run.json` + per-field overrides
// convention.
package slimnoc
