package slimnoc

import (
	"strings"
	"testing"
)

// TestTopologyRegistryComplete builds every registered topology from its
// example spec and validates the resulting network.
func TestTopologyRegistryComplete(t *testing.T) {
	names := Topologies()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 topologies, have %v", names)
	}
	for _, name := range names {
		e, ok := TopologyByName(name)
		if !ok {
			t.Errorf("%s: listed but not resolvable", name)
			continue
		}
		if e.Section == "" {
			t.Errorf("%s: no paper section recorded", name)
		}
		if e.Example.Topology != name {
			t.Errorf("%s: example names topology %q", name, e.Example.Topology)
		}
		net, _, err := BuildNetwork(e.Example)
		if err != nil {
			t.Errorf("%s: example does not build: %v", name, err)
			continue
		}
		if err := net.Validate(); err != nil {
			t.Errorf("%s: invalid network: %v", name, err)
		}
	}
}

// TestPresetsResolveAndBuild checks every static preset plus the dynamic
// Slim NoC forms.
func TestPresetsResolveAndBuild(t *testing.T) {
	names := append(Presets(), "sn_basic_54", "sn_subgr_200", "sn_gr_200", "sn_rand_54")
	for _, name := range names {
		ns, err := ResolvePreset(name)
		if err != nil {
			t.Errorf("%s: does not resolve: %v", name, err)
			continue
		}
		if _, ok := TopologyByName(ns.Topology); !ok {
			t.Errorf("%s: resolves to unregistered topology %q", name, ns.Topology)
		}
		net, _, err := BuildNetwork(NetworkSpec{Preset: name})
		if err != nil {
			t.Errorf("%s: does not build: %v", name, err)
			continue
		}
		if net.Name != strings.ToLower(name) {
			t.Errorf("%s: network named %q", name, net.Name)
		}
		if err := net.Validate(); err != nil {
			t.Errorf("%s: invalid network: %v", name, err)
		}
	}
	if _, err := ResolvePreset("sn_weird_200"); err == nil {
		t.Error("unknown layout preset resolved")
	}
	if _, err := ResolvePreset("nope"); err == nil {
		t.Error("unknown preset resolved")
	}
}

// TestRoutingRegistryComplete instantiates every routing algorithm on a
// small torus.
func TestRoutingRegistryComplete(t *testing.T) {
	net, kind, err := BuildNetwork(NetworkSpec{Preset: "t2d54"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Routings() {
		e, ok := routings.lookup(name)
		if !ok {
			t.Errorf("%s: listed but not resolvable", name)
			continue
		}
		pb, _, err := e.New(net, kind, 2)
		if err != nil {
			t.Errorf("%s: does not build: %v", name, err)
			continue
		}
		if pb == nil {
			t.Errorf("%s: nil path builder", name)
			continue
		}
		path, vcs := pb.Route(0, net.Nr-1)
		if len(path) < 2 || len(vcs) != len(path)-1 {
			t.Errorf("%s: bad route %v / %v", name, path, vcs)
		}
	}
}

// TestTrafficRegistryComplete builds every traffic generator from its
// example.
func TestTrafficRegistryComplete(t *testing.T) {
	net, _, err := BuildNetwork(NetworkSpec{Preset: "t2d54"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Traffics() {
		e, ok := TrafficByName(name)
		if !ok {
			t.Errorf("%s: listed but not resolvable", name)
			continue
		}
		if e.Example.Pattern != name {
			t.Errorf("%s: example names pattern %q", name, e.Example.Pattern)
		}
		src, err := e.New(net, e.Example)
		if err != nil {
			t.Errorf("%s: example does not build: %v", name, err)
			continue
		}
		if src == nil {
			t.Errorf("%s: nil source", name)
		}
	}
}

// TestSchemeRegistryComplete resolves every buffering scheme.
func TestSchemeRegistryComplete(t *testing.T) {
	for _, name := range Schemes() {
		e, ok := schemes.lookup(name)
		if !ok {
			t.Errorf("%s: listed but not resolvable", name)
			continue
		}
		cfg, err := e.New(BufferingSpec{Scheme: name, CBCap: 10, EdgeCap: 4}, 9, 2)
		if err != nil {
			t.Errorf("%s: does not resolve: %v", name, err)
			continue
		}
		if cfg.BufCap != nil && cfg.BufCap(5) < 1 {
			t.Errorf("%s: non-positive buffer capacity", name)
		}
	}
}

// TestLayoutRegistryComplete builds the smallest Slim NoC in every layout.
func TestLayoutRegistryComplete(t *testing.T) {
	for _, name := range Layouts() {
		net, _, err := BuildNetwork(NetworkSpec{Topology: "sn", Q: 3, Conc: 3, Layout: name})
		if err != nil {
			t.Errorf("%s: does not build: %v", name, err)
			continue
		}
		if net.Coords == nil {
			t.Errorf("%s: no placement", name)
		}
	}
}

// TestPresetOverrides checks that explicit fields override an expanded
// preset instead of being silently dropped.
func TestPresetOverrides(t *testing.T) {
	net, _, err := BuildNetwork(NetworkSpec{Preset: "sn_subgr_200", Conc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 100 || net.P != 2 {
		t.Errorf("conc override: N=%d P=%d, want 100/2", net.N(), net.P)
	}
	net, _, err = BuildNetwork(NetworkSpec{Preset: "sn_basic_200", Layout: "gr"})
	if err != nil {
		t.Fatal(err)
	}
	if net.Name != "sn_gr_200" {
		t.Errorf("layout override: network %q, want sn_gr_200", net.Name)
	}
	ns, err := ExpandNetwork(NetworkSpec{Preset: "sn_gr_200"})
	if err != nil {
		t.Fatal(err)
	}
	if ns.Q != 5 || ns.Conc != 4 || ns.Layout != "gr" {
		t.Errorf("ExpandNetwork: %+v, want q=5 conc=4 layout=gr", ns)
	}
}

// TestRegisterCustomTopology exercises the extension point end to end: a
// user-registered topology becomes runnable by name with zero caller
// changes.
func TestRegisterCustomTopology(t *testing.T) {
	base, _ := TopologyByName("torus")
	RegisterTopology("test-ring", TopologyEntry{
		Build: func(ns NetworkSpec) (*Network, Kind, error) {
			ns.X, ns.Y, ns.Conc = 6, 1, 2
			return base.Build(ns)
		},
		Section: "test",
		Example: NetworkSpec{Topology: "test-ring"},
	})
	spec := RunSpec{
		Network: NetworkSpec{Topology: "test-ring"},
		Traffic: TrafficSpec{Pattern: "rnd", Rate: 0.05},
		Sim:     SimSpec{WarmupCycles: 100, MeasureCycles: 400, DrainCycles: 1000, Seed: 3},
	}
	res, err := Run(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.Nodes != 12 {
		t.Errorf("custom topology has %d nodes, want 12", res.Network.Nodes)
	}
	if res.Metrics.Delivered == 0 {
		t.Error("custom topology delivered nothing")
	}
}
