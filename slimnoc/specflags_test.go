package slimnoc

import (
	"flag"
	"path/filepath"
	"reflect"
	"testing"
)

func parseFlags(t *testing.T, args ...string) *SpecFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sf := NewSpecFlags().BindCommon(fs).BindNetwork(fs).BindRun(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return sf
}

func TestSpecFlagsDefaults(t *testing.T) {
	sf := parseFlags(t)
	spec, err := sf.Spec(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultSpec()
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("no flags should yield the defaults:\n got  %+v\n want %+v", spec, want)
	}
}

func TestSpecFlagsOverrides(t *testing.T) {
	sf := parseFlags(t,
		"-net", "fbf3", "-pattern", "adv1", "-rate", "0.24",
		"-scheme", "cbr", "-cb", "32", "-vcs", "4", "-smart",
		"-adaptive", "ugal-l", "-seed", "9")
	spec, err := sf.Spec(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Network.Preset != "fbf3" {
		t.Errorf("net: %+v", spec.Network)
	}
	if spec.Traffic.Pattern != "adv1" || spec.Traffic.Rate != 0.24 {
		t.Errorf("traffic: %+v", spec.Traffic)
	}
	if spec.Buffering.Scheme != "cbr" || spec.Buffering.CBCap != 32 {
		t.Errorf("buffering: %+v", spec.Buffering)
	}
	if spec.Routing.Algorithm != "ugal-l" || spec.Routing.VCs != 4 {
		t.Errorf("routing: %+v", spec.Routing)
	}
	if !spec.SMART || spec.Sim.Seed != 9 {
		t.Errorf("smart/seed: %+v", spec)
	}
}

func TestSpecFlagsQBuildsSlimNoC(t *testing.T) {
	sf := parseFlags(t, "-q", "5", "-p", "4", "-layout", "gr")
	spec, err := sf.Spec(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := NetworkSpec{Topology: "sn", Q: 5, Conc: 4, Layout: "gr"}
	if !reflect.DeepEqual(spec.Network, want) {
		t.Errorf("network: %+v, want %+v", spec.Network, want)
	}
}

func TestSpecFlagsFileAndOverride(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	base := testSpec()
	base.Traffic.Rate = 0.3
	if err := SaveSpec(path, base.Normalized()); err != nil {
		t.Fatal(err)
	}
	// Load the file and override just the rate.
	sf := parseFlags(t, "-spec", path, "-rate", "0.05")
	spec, err := sf.Spec(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Network.Preset != "t2d54" {
		t.Errorf("file network lost: %+v", spec.Network)
	}
	if spec.Traffic.Rate != 0.05 {
		t.Errorf("rate override lost: %+v", spec.Traffic)
	}
	if spec.Sim.MeasureCycles != 1500 {
		t.Errorf("file cycles lost: %+v", spec.Sim)
	}
}

func TestSpecFlagsSaveSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "saved.json")
	sf := parseFlags(t, "-net", "t2d54", "-rate", "0.1", "-save-spec", path)
	spec, err := sf.Spec(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, spec) {
		t.Errorf("saved spec differs:\n got  %+v\n want %+v", loaded, spec)
	}
}

func TestSpecFlagsFullMode(t *testing.T) {
	sf := parseFlags(t, "-full")
	spec, err := sf.Spec(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	full := FullSim()
	if spec.Sim.MeasureCycles != full.MeasureCycles || spec.Sim.WarmupCycles != full.WarmupCycles {
		t.Errorf("full mode cycles: %+v", spec.Sim)
	}
}

func TestSpecFlagsRejectBadValues(t *testing.T) {
	sf := parseFlags(t, "-net", "nope")
	if _, err := sf.Spec(DefaultSpec()); err == nil {
		t.Error("unknown preset accepted")
	}
	sf = parseFlags(t, "-scheme", "bottomless")
	if _, err := sf.Spec(DefaultSpec()); err == nil {
		t.Error("unknown scheme accepted")
	}
}
